// Cooperative cancellation: CancelToken unit semantics, the exact
// hop-boundary poll contract of DSLog::ProvQuery + InSituQuery (asserted
// through the dslog.query.hops counter delta), batch-query cancellation,
// and the session-teardown guarantee that a dropped StagedIngest commits
// nothing.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/io.h"
#include "common/metrics.h"
#include "common/random.h"
#include "query/query_engine.h"
#include "storage/dslog.h"
#include "storage/logstore.h"
#include "test_util.h"

namespace dslog {
namespace {

using test_util::GenerateDag;
using test_util::RandomDag;
using test_util::RegisterDag;
using test_util::SampleCells;

TEST(CancelTokenTest, StartsClear) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_EQ(token.polls(), 1);
}

TEST(CancelTokenTest, CancelIsSticky) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_TRUE(token.ShouldStop());
}

TEST(CancelTokenTest, CancelAfterPollsFiresOnExactPoll) {
  CancelToken token;
  token.CancelAfterPolls(3);
  EXPECT_FALSE(token.ShouldStop());  // poll 1
  EXPECT_FALSE(token.ShouldStop());  // poll 2
  EXPECT_TRUE(token.ShouldStop());   // poll 3: armed threshold reached
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.polls(), 3);
}

TEST(CancelTokenTest, CancelIsVisibleAcrossThreads) {
  CancelToken token;
  std::thread t([&token] { token.Cancel(); });
  t.join();
  EXPECT_TRUE(token.cancelled());
}

// --------------------------------------------------- ProvQuery contract --

// Ingests a seeded pipeline and returns the forward whole-chain path plus
// a query covering a few x0 cells.
struct QueryFixture {
  RandomDag dag;
  std::vector<std::string> path;
  BoxTable query;
  int hops = 0;
};

QueryFixture MakeFixture(uint64_t seed, DSLog* log) {
  QueryFixture f;
  f.dag = GenerateDag(seed);
  EXPECT_GE(f.dag.rels.size(), 2u);
  EXPECT_TRUE(RegisterDag(f.dag, log).ok());
  f.path = f.dag.names;
  f.hops = static_cast<int>(f.dag.rels.size());
  Rng rng(seed + 5);
  f.query = BoxTable::FromCells(static_cast<int>(f.dag.shapes[0].size()),
                                SampleCells(f.dag.shapes[0], 6, &rng));
  return f;
}

TEST(ProvQueryCancelTest, PreCancelledReturnsCancelledBeforeAnyHop) {
  DSLog log;
  QueryFixture f = MakeFixture(3, &log);

  // In-situ leg: a pre-cancelled query must not even resolve segments.
  const std::string path = ScratchDir() + "/cancel_pre.dsl";
  ASSERT_TRUE(log.SaveLogStore(path).ok());
  auto insitu = DSLog::OpenInSitu(path);
  ASSERT_TRUE(insitu.ok());

  CancelToken token;
  token.Cancel();
  QueryOptions options;
  options.cancel = &token;

  metrics::Counter& hops_run =
      metrics::Registry::Global().counter("dslog.query.hops");
  const int64_t hops_before = hops_run.Value();
  auto r = insitu.value().ProvQuery(f.path, f.query, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(hops_run.Value(), hops_before) << "no hop join may run";
  EXPECT_EQ(insitu.value().log_store()->stats().decode_count, 0)
      << "no segment may be resolved for a pre-cancelled query";
}

// Poll ordering: a K-hop ProvQuery polls K times while building hops
// (before resolving each segment), then InSituQuery polls once before each
// hop's θ-join. CancelAfterPolls(K+1) therefore stops after hop-build but
// before any join; K+2 lets exactly one join run.
TEST(ProvQueryCancelTest, StopsExactlyBetweenHops) {
  DSLog log;
  QueryFixture f = MakeFixture(4, &log);
  metrics::Counter& hops_run =
      metrics::Registry::Global().counter("dslog.query.hops");

  {
    CancelToken token;
    token.CancelAfterPolls(f.hops + 1);
    QueryOptions options;
    options.cancel = &token;
    const int64_t before = hops_run.Value();
    auto r = log.ProvQuery(f.path, f.query, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
    EXPECT_EQ(hops_run.Value() - before, 0) << "cancelled before first join";
  }
  {
    CancelToken token;
    token.CancelAfterPolls(f.hops + 2);
    QueryOptions options;
    options.cancel = &token;
    const int64_t before = hops_run.Value();
    auto r = log.ProvQuery(f.path, f.query, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
    EXPECT_EQ(hops_run.Value() - before, 1)
        << "exactly one hop joins before the next boundary poll";
  }
}

TEST(ProvQueryCancelTest, UncancelledTokenChangesNothing) {
  DSLog log;
  QueryFixture f = MakeFixture(5, &log);
  auto plain = log.ProvQuery(f.path, f.query);
  ASSERT_TRUE(plain.ok());

  CancelToken token;
  QueryOptions options;
  options.cancel = &token;
  auto tracked = log.ProvQuery(f.path, f.query, options);
  ASSERT_TRUE(tracked.ok());
  EXPECT_EQ(tracked.value().ExpandToCells(), plain.value().ExpandToCells());
  EXPECT_GE(token.polls(), 2 * f.hops) << "every hop boundary must poll";
}

TEST(ProvQueryCancelTest, CancelledCounterIncrements) {
  DSLog log;
  QueryFixture f = MakeFixture(6, &log);
  metrics::Counter& cancelled =
      metrics::Registry::Global().counter("dslog.query.cancelled");
  const int64_t before = cancelled.Value();
  CancelToken token;
  token.CancelAfterPolls(f.hops + 1);
  QueryOptions options;
  options.cancel = &token;
  ASSERT_FALSE(log.ProvQuery(f.path, f.query, options).ok());
  EXPECT_EQ(cancelled.Value() - before, 1);
}

TEST(ProvQueryCancelTest, BatchObservesCancellation) {
  DSLog log;
  QueryFixture f = MakeFixture(7, &log);
  std::vector<std::vector<std::string>> paths(4, f.path);
  std::vector<BoxTable> queries(4, f.query);

  CancelToken token;
  token.Cancel();
  QueryOptions options;
  options.cancel = &token;
  auto r = log.ProvQueryBatch(paths, queries, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(InSituQueryCancelTest, BareCancelledQueryReturnsEmpty) {
  DSLog log;
  QueryFixture f = MakeFixture(8, &log);
  // Build a one-hop vector by hand through FindEdge.
  const CompressedTable* table =
      log.FindEdge(f.dag.names[0], f.dag.names[1]);
  ASSERT_NE(table, nullptr);
  std::vector<QueryHop> hops;
  hops.emplace_back(table, /*forward=*/true);

  CancelToken token;
  token.Cancel();
  QueryOptions options;
  options.cancel = &token;
  BoxTable out = InSituQuery(hops, f.query, options);
  EXPECT_TRUE(out.empty());
  for (bool profile : {false, true}) {
    QueryProfile prof;
    options.profile = profile;
    EXPECT_TRUE(InSituQuery(hops, f.query, options, &prof).empty());
  }
}

// ------------------------------------------------- staged-ingest teardown --

TEST(StagedIngestTest, DroppedStagerCommitsNothing) {
  DSLog log;
  RandomDag dag = GenerateDag(9);
  ASSERT_GE(dag.rels.size(), 2u);
  for (size_t i = 0; i < dag.names.size(); ++i)
    ASSERT_TRUE(log.DefineArray(dag.names[i], dag.shapes[i]).ok());
  if (dag.has_branch) {
    ASSERT_TRUE(log.DefineArray("branch", dag.branch_shape).ok());
  }

  {
    StagedIngest stager(&log);
    for (OperationRegistration& reg : dag.Registrations())
      ASSERT_TRUE(stager.Add(std::move(reg)).ok());
    EXPECT_GT(stager.staged(), 0);
    // Destroyed without Drain — the session-teardown path.
  }
  EXPECT_EQ(log.FindEdge(dag.names[0], dag.names[1]), nullptr)
      << "undrained staged ingest must not commit";
  EXPECT_EQ(log.StorageFootprintBytes(), 0);
}

}  // namespace
}  // namespace dslog
