// Concurrency stress tests: N reader threads issuing ProvQuery /
// ProvQueryBatch against a DSLog while a writer thread interleaves
// DefineArray + RegisterOperation, asserting oracle-consistent results and
// no lost edges. Also unit coverage for the ThreadPool and the batch API's
// sequential equivalence. The whole suite must run clean under
// ThreadSanitizer (the CI tsan job runs it).

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "provrc/provrc.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "query/theta_join.h"
#include "storage/dslog.h"
#include "test_util.h"

namespace dslog {
namespace {

using test_util::SampleCells;
using test_util::ToTupleSet;
using test_util::TupleSet;

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<size_t>(i)], 1);
}

TEST(ThreadPoolTest, ParallelForWorksWithZeroWorkers) {
  ThreadPool pool(0);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(3);
  std::atomic<int64_t> count{0};
  pool.ParallelFor(8, [&](int64_t) {
    // Nested use from a worker (or the participating caller) must complete
    // without deadlocking the fixed pool.
    pool.ParallelFor(5, [&](int64_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count, 40);
}

TEST(ThreadPoolTest, InWorkerThreadDistinguishesCallerFromWorkers) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  std::atomic<bool> worker_saw_flag{false};
  std::atomic<bool> done{false};
  std::mutex mu;
  std::condition_variable cv;
  // Declared after mu/cv so its destructor joins the worker (which may
  // still be inside notify_all) before they are destroyed.
  ThreadPool pool(2);
  pool.Submit([&] {
    worker_saw_flag.store(ThreadPool::InWorkerThread());
    {
      std::lock_guard<std::mutex> lock(mu);
      done.store(true);
    }
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done.load(); });
  EXPECT_TRUE(worker_saw_flag.load());
  // The flag is per-thread, not per-pool: still false on the caller.
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerStaysOnThatWorker) {
  // The inline-on-nesting contract, asserted thread-by-thread: a
  // ParallelFor issued from inside a pool worker must run every iteration
  // serially on that same worker thread (the fixed pool is never
  // re-entered), while the issuing worker observes InWorkerThread().
  std::atomic<bool> nested_on_same_thread{true};
  std::atomic<bool> nested_saw_worker_flag{true};
  std::atomic<bool> done{false};
  std::mutex mu;
  std::condition_variable cv;
  // Pool last: joins the notifying worker before mu/cv are destroyed.
  ThreadPool pool(2);
  pool.Submit([&] {
    const std::thread::id worker_id = std::this_thread::get_id();
    pool.ParallelFor(64, [&](int64_t) {
      if (std::this_thread::get_id() != worker_id)
        nested_on_same_thread.store(false);
      if (!ThreadPool::InWorkerThread()) nested_saw_worker_flag.store(false);
    });
    {
      std::lock_guard<std::mutex> lock(mu);
      done.store(true);
    }
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done.load(); });
  EXPECT_TRUE(nested_on_same_thread.load());
  EXPECT_TRUE(nested_saw_worker_flag.load());
}

TEST(ThreadPoolTest, CallerParticipatesWhenWorkersAreBusy) {
  // Forward-progress half of the caller-participation contract: with every
  // worker parked on a blocking task, ParallelFor must still complete all
  // iterations (on the caller), not wait for a free worker.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  // Pool last: joins the gated workers before gate_mu/gate_cv are
  // destroyed.
  ThreadPool pool(2);
  for (int i = 0; i < 2; ++i)
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&] { return gate_open; });
    });
  const std::thread::id caller_id = std::this_thread::get_id();
  std::atomic<int64_t> on_caller{0};
  pool.ParallelFor(32, [&](int64_t) {
    if (std::this_thread::get_id() == caller_id)
      on_caller.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(on_caller.load(), 32);  // workers never got to help
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
}

TEST(ThreadPoolTest, MaxParallelismOneIsSequential) {
  ThreadPool pool(4);
  int64_t sequential_sum = 0;  // no synchronization: must run on the caller
  pool.ParallelFor(
      50, [&](int64_t i) { sequential_sum += i; }, /*max_parallelism=*/1);
  EXPECT_EQ(sequential_sum, 1225);
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 16; ++i)
    pool.Submit([&] {
      if (ran.fetch_add(1) + 1 == 16) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ran.load() == 16; });
  EXPECT_EQ(ran, 16);
}

// --------------------------------------------------------- chain fixture --

struct ChainStep {
  std::string op_name;
  LineageRelation rel;
  std::vector<int64_t> out_shape;
};

// Deterministic chain of registry unary ops over a small 1-D array.
std::vector<ChainStep> BuildChain(int num_steps, uint64_t seed,
                                  std::vector<int64_t>* first_shape) {
  Rng rng(seed);
  auto pool = OpRegistry::Global().UnaryPipelineNames();
  NDArray current = NDArray::Random({32}, &rng);
  *first_shape = current.shape();
  std::vector<ChainStep> chain;
  int guard = 0;
  while (static_cast<int>(chain.size()) < num_steps && guard < 400) {
    ++guard;
    const ArrayOp* op =
        OpRegistry::Global().Find(pool[rng.Uniform(pool.size())]);
    if (!op->SupportsUnaryShape(current.shape())) continue;
    OpArgs args = op->SampleArgs(current.shape(), &rng);
    auto out = op->Apply({&current}, args);
    if (!out.ok()) continue;
    NDArray next = out.ValueOrDie();
    if (next.size() == 0 || next.size() > 4096) continue;
    auto captured = op->Capture({&current}, next, args);
    if (!captured.ok() || captured.value()[0].num_rows() == 0) continue;
    chain.push_back(
        {op->name(), std::move(captured.ValueOrDie()[0]), next.shape()});
    current = std::move(next);
  }
  return chain;
}

std::vector<std::string> ChainNames(size_t count) {
  std::vector<std::string> names;
  for (size_t i = 0; i < count; ++i) names.push_back("x" + std::to_string(i));
  return names;
}

// ------------------------------------------------------ readers vs writer --

TEST(ConcurrencyStressTest, ReadersVsWriterOracleConsistent) {
  constexpr int kOps = 8;
  constexpr int kReaders = 4;
  constexpr int kIters = 40;

  std::vector<int64_t> first_shape;
  std::vector<ChainStep> chain = BuildChain(kOps, 1234, &first_shape);
  ASSERT_EQ(static_cast<int>(chain.size()), kOps);
  std::vector<std::string> names = ChainNames(chain.size() + 1);
  std::vector<std::vector<int64_t>> shapes = {first_shape};
  for (const ChainStep& step : chain) shapes.push_back(step.out_shape);

  DSLogOptions options;
  options.materialize_forward = true;  // writer also builds ForwardTables
  DSLog log(options);
  ASSERT_TRUE(log.DefineArray(names[0], shapes[0]).ok());

  std::atomic<int> registered{0};
  std::atomic<int> writer_failures{0};
  std::atomic<int> reader_failures{0};
  std::vector<std::string> first_failure(kReaders);

  std::thread writer([&] {
    for (int i = 0; i < kOps; ++i) {
      Status defined = log.DefineArray(names[static_cast<size_t>(i) + 1],
                                       shapes[static_cast<size_t>(i) + 1]);
      OperationRegistration reg;
      reg.op_name = chain[static_cast<size_t>(i)].op_name;
      reg.in_arrs = {names[static_cast<size_t>(i)]};
      reg.out_arr = names[static_cast<size_t>(i) + 1];
      reg.captured.push_back(chain[static_cast<size_t>(i)].rel);
      auto outcome = log.RegisterOperation(std::move(reg));
      if (!defined.ok() || !outcome.ok()) writer_failures.fetch_add(1);
      registered.store(i + 1, std::memory_order_release);
      std::this_thread::yield();
    }
  });

  auto reader = [&](int tid) {
    Rng rng(static_cast<uint64_t>(tid) * 7919 + 3);
    for (int iter = 0; iter < kIters; ++iter) {
      const int upto = registered.load(std::memory_order_acquire);
      if (upto == 0) {
        std::this_thread::yield();
        continue;
      }
      // Build 1-3 path queries over the already-registered prefix; results
      // must agree with the uncompressed oracle regardless of what the
      // writer is doing concurrently.
      const int batch_size = 1 + static_cast<int>(rng.Uniform(3));
      std::vector<std::vector<std::string>> paths;
      std::vector<BoxTable> queries;
      std::vector<TupleSet> want;
      std::vector<int> arities;
      for (int b = 0; b < batch_size; ++b) {
        const int j = 1 + static_cast<int>(rng.Uniform(
                              static_cast<uint64_t>(upto)));
        const bool forward = rng.Bernoulli(0.6);
        const auto& from_shape =
            forward ? shapes[0] : shapes[static_cast<size_t>(j)];
        const auto& to_shape =
            forward ? shapes[static_cast<size_t>(j)] : shapes[0];
        std::vector<int64_t> cells = SampleCells(from_shape, 5, &rng);
        std::vector<std::string> path(
            names.begin(), names.begin() + j + 1);
        std::vector<RelationHop> rhops;
        for (int k = 0; k < j; ++k) rhops.push_back({&chain[static_cast<size_t>(k)].rel, true});
        if (!forward) {
          std::reverse(path.begin(), path.end());
          std::reverse(rhops.begin(), rhops.end());
          for (auto& hop : rhops) hop.forward = false;
        }
        paths.push_back(std::move(path));
        queries.push_back(BoxTable::FromCells(
            static_cast<int>(from_shape.size()), cells));
        want.push_back(ToTupleSet(UncompressedQuery(rhops, cells),
                                  static_cast<int>(to_shape.size())));
        arities.push_back(static_cast<int>(to_shape.size()));
      }

      QueryOptions qopts;
      qopts.num_threads = 1 + static_cast<int>(rng.Uniform(3));
      std::vector<BoxTable> results;
      if (batch_size > 1 || rng.Bernoulli(0.5)) {
        auto r = log.ProvQueryBatch(paths, queries, qopts);
        if (!r.ok()) {
          if (reader_failures.fetch_add(1) == 0)
            first_failure[static_cast<size_t>(tid)] = r.status().ToString();
          continue;
        }
        results = std::move(r).value();
      } else {
        auto r = log.ProvQuery(paths[0], queries[0], qopts);
        if (!r.ok()) {
          if (reader_failures.fetch_add(1) == 0)
            first_failure[static_cast<size_t>(tid)] = r.status().ToString();
          continue;
        }
        results.push_back(std::move(r).value());
      }
      for (size_t b = 0; b < results.size(); ++b) {
        if (ToTupleSet(results[b].ExpandToCells(), arities[b]) != want[b]) {
          if (reader_failures.fetch_add(1) == 0)
            first_failure[static_cast<size_t>(tid)] =
                "oracle mismatch on path to " + paths[b].back();
        }
      }
      // Exercise the concurrent metadata readers too.
      (void)log.reuse_stats();
      (void)log.HasArray(names[static_cast<size_t>(upto)]);
    }
  };

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) readers.emplace_back(reader, t);
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(writer_failures, 0);
  std::string messages;
  for (const std::string& m : first_failure)
    if (!m.empty()) messages += m + "; ";
  EXPECT_EQ(reader_failures, 0) << messages;

  // No lost edges: every registered operation must be queryable.
  EXPECT_EQ(registered, kOps);
  for (int i = 0; i < kOps; ++i)
    EXPECT_NE(log.FindEdge(names[static_cast<size_t>(i)],
                           names[static_cast<size_t>(i) + 1]),
              nullptr)
        << "edge " << i << " lost";

  // Final deterministic check over the full path.
  Rng rng(99);
  std::vector<int64_t> cells = SampleCells(shapes[0], 6, &rng);
  std::vector<RelationHop> rhops;
  for (const ChainStep& step : chain) rhops.push_back({&step.rel, true});
  QueryOptions qopts;
  qopts.num_threads = 4;
  auto full = log.ProvQuery(
      names, BoxTable::FromCells(static_cast<int>(shapes[0].size()), cells),
      qopts);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(ToTupleSet(full.value().ExpandToCells(),
                       static_cast<int>(shapes.back().size())),
            ToTupleSet(UncompressedQuery(rhops, cells),
                       static_cast<int>(shapes.back().size())));
}

// ------------------------------------------------------------- batch API --

class BatchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<int64_t> first_shape;
    chain_ = BuildChain(5, 777, &first_shape);
    ASSERT_EQ(chain_.size(), 5u);
    names_ = ChainNames(chain_.size() + 1);
    shapes_ = {first_shape};
    for (const ChainStep& step : chain_) shapes_.push_back(step.out_shape);
    for (size_t i = 0; i < names_.size(); ++i)
      ASSERT_TRUE(log_.DefineArray(names_[i], shapes_[i]).ok());
    for (size_t i = 0; i < chain_.size(); ++i) {
      OperationRegistration reg;
      reg.op_name = chain_[i].op_name;
      reg.in_arrs = {names_[i]};
      reg.out_arr = names_[i + 1];
      reg.captured.push_back(chain_[i].rel);
      ASSERT_TRUE(log_.RegisterOperation(std::move(reg)).ok());
    }
  }

  std::vector<ChainStep> chain_;
  std::vector<std::string> names_;
  std::vector<std::vector<int64_t>> shapes_;
  DSLog log_;
};

TEST_F(BatchFixture, BatchMatchesSequentialProvQuery) {
  Rng rng(5);
  std::vector<std::vector<std::string>> paths;
  std::vector<BoxTable> queries;
  for (int b = 0; b < 12; ++b) {
    const int j =
        1 + static_cast<int>(rng.Uniform(chain_.size()));
    std::vector<std::string> path(names_.begin(), names_.begin() + j + 1);
    const bool forward = rng.Bernoulli(0.5);
    if (!forward) std::reverse(path.begin(), path.end());
    const auto& from_shape = forward ? shapes_[0] : shapes_[static_cast<size_t>(j)];
    queries.push_back(BoxTable::FromCells(
        static_cast<int>(from_shape.size()),
        SampleCells(from_shape, 4, &rng)));
    paths.push_back(std::move(path));
  }
  QueryOptions parallel;
  parallel.num_threads = 4;
  auto batch = log_.ProvQueryBatch(paths, queries, parallel);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    auto single = log_.ProvQuery(paths[i], queries[i]);
    ASSERT_TRUE(single.ok());
    const int arity = single.value().ndim();
    EXPECT_EQ(ToTupleSet(batch.value()[i].ExpandToCells(), arity),
              ToTupleSet(single.value().ExpandToCells(), arity))
        << "batch entry " << i;
  }
}

// Exact (not just set-) equality of two box tables: same boxes, same order.
bool BoxTablesIdentical(const BoxTable& a, const BoxTable& b) {
  if (a.ndim() != b.ndim() || a.num_boxes() != b.num_boxes()) return false;
  for (int64_t i = 0; i < a.num_boxes(); ++i) {
    auto ba = a.Box(i);
    auto bb = b.Box(i);
    for (size_t k = 0; k < ba.size(); ++k)
      if (ba[k].lo != bb[k].lo || ba[k].hi != bb[k].hi) return false;
  }
  return true;
}

TEST_F(BatchFixture, TreeMergedParallelJoinIsDeterministic) {
  // The per-thread-arena + pairwise-tree epilogue must produce the exact
  // same table on every run (combine order is fixed by part index, not
  // thread scheduling) and stay cell-set-equal to the serial plan.
  CompressedTable table = ProvRcCompress(chain_[0].rel);
  Rng rng(41);
  BoxTable query = BoxTable::FromCells(
      static_cast<int>(shapes_[1].size()),
      SampleCells(shapes_[1], 24, &rng));  // backward: query out attrs

  BoxTable serial = BackwardThetaJoin(query, table, /*num_threads=*/1);
  serial.Merge();
  const int arity = serial.ndim();

  BoxTable first = BackwardThetaJoin(query, table, /*num_threads=*/8,
                                     /*merge_result=*/true);
  EXPECT_EQ(ToTupleSet(first.ExpandToCells(), arity),
            ToTupleSet(serial.ExpandToCells(), arity));
  for (int rep = 0; rep < 5; ++rep) {
    BoxTable again = BackwardThetaJoin(query, table, /*num_threads=*/8,
                                       /*merge_result=*/true);
    EXPECT_TRUE(BoxTablesIdentical(first, again)) << "rep " << rep;
  }

  // Unmerged parallel output must equal the serial concatenation order
  // exactly: the tree reduction is a fixed-order concatenation when no
  // merging is requested.
  BoxTable raw_serial = BackwardThetaJoin(query, table, /*num_threads=*/1);
  BoxTable raw_parallel = BackwardThetaJoin(query, table, /*num_threads=*/8);
  EXPECT_TRUE(BoxTablesIdentical(raw_serial, raw_parallel));
}

TEST_F(BatchFixture, TreeMergedForwardJoinsAreDeterministic) {
  CompressedTable table = ProvRcCompress(chain_[0].rel);
  ForwardTable fwd = ForwardTable::FromBackward(table);
  Rng rng(43);
  BoxTable query = BoxTable::FromCells(
      static_cast<int>(shapes_[0].size()),
      SampleCells(shapes_[0], 24, &rng));  // forward: query in attrs

  BoxTable serial = ForwardThetaJoin(query, table, /*num_threads=*/1);
  serial.Merge();
  const int arity = serial.ndim();

  BoxTable direct = ForwardThetaJoin(query, table, /*num_threads=*/8,
                                     /*merge_result=*/true);
  BoxTable materialized = fwd.Join(query, /*num_threads=*/8,
                                   /*merge_result=*/true);
  EXPECT_EQ(ToTupleSet(direct.ExpandToCells(), arity),
            ToTupleSet(serial.ExpandToCells(), arity));
  EXPECT_EQ(ToTupleSet(materialized.ExpandToCells(), arity),
            ToTupleSet(serial.ExpandToCells(), arity));
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_TRUE(BoxTablesIdentical(
        direct, ForwardThetaJoin(query, table, 8, true)))
        << "direct rep " << rep;
    EXPECT_TRUE(BoxTablesIdentical(materialized, fwd.Join(query, 8, true)))
        << "materialized rep " << rep;
  }
}

TEST_F(BatchFixture, BatchSizeMismatchRejected) {
  auto r = log_.ProvQueryBatch({{names_[0], names_[1]}}, {}, {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BatchFixture, EmptyBatchReturnsEmpty) {
  auto r = log_.ProvQueryBatch({}, {}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST_F(BatchFixture, BatchErrorNamesEntryIndex) {
  std::vector<std::vector<std::string>> paths = {
      {names_[0], names_[1]}, {names_[0], "nonexistent"}};
  std::vector<BoxTable> queries = {
      BoxTable::FromCells(static_cast<int>(shapes_[0].size()), {0}),
      BoxTable::FromCells(static_cast<int>(shapes_[0].size()), {0})};
  auto r = log_.ProvQueryBatch(paths, queries, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find("batch entry 1"), std::string::npos)
      << r.status().message();
}

}  // namespace
}  // namespace dslog
