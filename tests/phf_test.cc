// Property tests for the perfect-hash index (common/phf.h):
// collision freedom across key-set sizes, fingerprint false-positive rate,
// bit-exact round trip through a file and MmapFile, and corruption
// surfacing as Status::Corruption at Bind time.

#include "common/phf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/mmap_file.h"
#include "common/random.h"

namespace dslog {
namespace {

std::vector<uint64_t> DistinctHashes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::set<uint64_t> keys;
  while (keys.size() < n) keys.insert(rng.Next());
  return std::vector<uint64_t>(keys.begin(), keys.end());
}

TEST(PhfTest, BijectionAcrossSizes) {
  for (size_t n : {1ul, 2ul, 3ul, 10ul, 100ul, 1000ul, 10000ul, 100000ul}) {
    auto hashes = DistinctHashes(n, /*seed=*/0x1234 + n);
    auto block = PhfBuilder::Build(hashes);
    ASSERT_TRUE(block.ok()) << block.status().ToString();
    auto view = PhfView::Bind(block.value());
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    ASSERT_EQ(view.value().size(), n);

    // Every member key maps to a distinct position in [0, n).
    std::vector<bool> seen(n, false);
    for (uint64_t h : hashes) {
      int64_t pos = view.value().Lookup(h);
      ASSERT_GE(pos, 0) << "member key rejected, n=" << n;
      ASSERT_LT(pos, static_cast<int64_t>(n));
      ASSERT_FALSE(seen[static_cast<size_t>(pos)])
          << "two keys collided at position " << pos << ", n=" << n;
      seen[static_cast<size_t>(pos)] = true;
    }
  }
}

TEST(PhfTest, BuildsAtMillionKeyScale) {
  // Regression: a minimal (n-slot) table makes the bounded 16-bit
  // displacement search fail with near-certainty around 10^6 keys — the
  // last singleton buckets face O(1) free slots and 2^16 probes cannot
  // find them. The slot-slack + rank-compaction layout must build on the
  // first seed at this scale and stay within the bit budget.
  const size_t n = 1000000;
  auto hashes = DistinctHashes(n, 0xdead);
  auto block = PhfBuilder::Build(hashes);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  auto view = PhfView::Bind(block.value()).ValueOrDie();
  ASSERT_EQ(view.size(), n);
  EXPECT_LE(view.bits_per_key(), 16.0) << view.bits_per_key();

  std::vector<bool> seen(n, false);
  for (uint64_t h : hashes) {
    int64_t pos = view.Lookup(h);
    ASSERT_GE(pos, 0);
    ASSERT_LT(pos, static_cast<int64_t>(n));
    ASSERT_FALSE(seen[static_cast<size_t>(pos)]);
    seen[static_cast<size_t>(pos)] = true;
  }
}

TEST(PhfTest, DeterministicBytes) {
  auto hashes = DistinctHashes(5000, 77);
  auto a = PhfBuilder::Build(hashes);
  auto b = PhfBuilder::Build(hashes);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(PhfTest, FingerprintFalsePositiveRateBounded) {
  const size_t n = 20000;
  auto hashes = DistinctHashes(n, 99);
  auto block = PhfBuilder::Build(hashes);
  ASSERT_TRUE(block.ok());
  auto view = PhfView::Bind(block.value()).ValueOrDie();

  std::set<uint64_t> members(hashes.begin(), hashes.end());
  Rng rng(0xabcdef);
  const int probes = 200000;
  int accepted = 0;
  for (int i = 0; i < probes; ++i) {
    uint64_t h = rng.Next();
    if (members.count(h)) continue;
    if (view.Lookup(h) >= 0) ++accepted;
  }
  // Expected rate is 2^-8 ~ 0.39%; allow generous slack (1%) so the test
  // is about the mechanism, not the exact constant.
  EXPECT_LT(static_cast<double>(accepted) / probes, 0.01)
      << accepted << " of " << probes << " absent keys passed the filter";
  EXPECT_EQ(view.fingerprint_bits(), 8u);
}

TEST(PhfTest, BitsPerKeyWithinBudget) {
  for (size_t n : {1000ul, 100000ul}) {
    auto block = PhfBuilder::Build(DistinctHashes(n, n)).ValueOrDie();
    auto view = PhfView::Bind(block).ValueOrDie();
    EXPECT_LE(view.bits_per_key(), 16.0)
        << "n=" << n << " bits/key=" << view.bits_per_key();
  }
}

TEST(PhfTest, RoundTripThroughMmap) {
  auto hashes = DistinctHashes(3000, 5);
  auto block = PhfBuilder::Build(hashes).ValueOrDie();

  const std::string path = ScratchDir() + "/phf_roundtrip.bin";
  ASSERT_TRUE(WriteFile(path, block).ok());

  for (bool allow_mmap : {true, false}) {
    auto file = MmapFile::Open(path, allow_mmap);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    ASSERT_EQ(file.value().view(), block) << "bytes changed across the file";
    auto view = PhfView::Bind(file.value().view());
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    auto mem_view = PhfView::Bind(block).ValueOrDie();
    for (uint64_t h : hashes) {
      EXPECT_EQ(view.value().Lookup(h), mem_view.Lookup(h));
    }
  }
}

TEST(PhfTest, EmptyAndDuplicateKeySets) {
  auto empty = PhfBuilder::Build({});
  ASSERT_TRUE(empty.ok());
  auto view = PhfView::Bind(empty.value());
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view.value().empty());
  EXPECT_EQ(view.value().Lookup(42), -1);

  auto dup = PhfBuilder::Build({7, 7, 9});
  EXPECT_FALSE(dup.ok());
}

TEST(PhfTest, HeaderCorruptionIsDetectedAtBind) {
  auto block = PhfBuilder::Build(DistinctHashes(500, 3)).ValueOrDie();
  // Flip a byte in each validated header field in turn (magic, version, n,
  // slots, m, fingerprint_bits, reserved); Bind must reject every one. The
  // seed field is exempt: it is not derivable, so only the enclosing footer
  // checksum can vouch for it.
  for (size_t off : {0ul, 4ul, 8ul, 16ul, 24ul, 40ul, 44ul}) {
    std::string bad = block;
    bad[off] = static_cast<char>(bad[off] ^ 0x40);
    auto v = PhfView::Bind(bad);
    ASSERT_FALSE(v.ok()) << "header byte " << off << " flip not detected";
    EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
  }
  // Truncation in either direction is structural corruption too.
  EXPECT_FALSE(PhfView::Bind(std::string_view(block).substr(0, 20)).ok());
  std::string longer = block + std::string(8, '\0');
  EXPECT_FALSE(PhfView::Bind(longer).ok());
}

TEST(PhfTest, PayloadCorruptionNeverYieldsOutOfRangePosition) {
  // Flipped displacement/fingerprint/bitmap/rank bytes are NOT detectable
  // at Bind (the enclosing footer checksum owns payload integrity); the
  // contract here is weaker but essential: lookups still return either -1
  // or an in-range candidate, so a caller that verifies the stored key can
  // never be sent to a wrong segment.
  const size_t n = 2000;
  auto hashes = DistinctHashes(n, 11);
  auto block = PhfBuilder::Build(hashes).ValueOrDie();
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::string bad = block;
    size_t off = 48 + rng.Next() % (bad.size() - 48);
    bad[off] = static_cast<char>(bad[off] ^ (1 + rng.Next() % 255));
    auto v = PhfView::Bind(bad);
    ASSERT_TRUE(v.ok());  // structural header intact
    for (size_t i = 0; i < 100; ++i) {
      int64_t pos = v.value().Lookup(hashes[rng.Next() % n]);
      EXPECT_GE(pos, -1);
      EXPECT_LT(pos, static_cast<int64_t>(n));
    }
  }
}

}  // namespace
}  // namespace dslog
