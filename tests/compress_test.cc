// Unit and property tests for the compression substrate: varint/zigzag,
// bit packing, RLE variants, Huffman, Deflate, and the range coder.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "compress/bitpack.h"
#include "compress/deflate.h"
#include "compress/huffman.h"
#include "compress/range_coder.h"
#include "compress/rle.h"
#include "compress/varint.h"

namespace dslog {
namespace {

// ---------------------------------------------------------------- varint --

TEST(VarintTest, RoundTripBoundaries) {
  std::vector<uint64_t> values = {0,       1,       127,        128,
                                  16383,   16384,   (1ull << 32) - 1,
                                  1ull << 32, ~0ull};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(buf, &pos, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, TruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  size_t pos = 0;
  uint64_t out;
  EXPECT_FALSE(GetVarint64(buf, &pos, &out));
}

TEST(VarintTest, MaxValueUsesTenBytesAndRoundTrips) {
  std::string buf;
  PutVarint64(&buf, ~0ull);
  EXPECT_EQ(buf.size(), 10u);
  EXPECT_EQ(static_cast<uint8_t>(buf.back()), 0x01);  // only bit 63
  size_t pos = 0;
  uint64_t out;
  ASSERT_TRUE(GetVarint64(buf, &pos, &out));
  EXPECT_EQ(out, ~0ull);
}

TEST(VarintTest, OverflowingTenthByteRejected) {
  // Ten continuation-free bytes whose final payload exceeds bit 63: the
  // encoded value does not fit in uint64, so decoding must fail instead of
  // silently wrapping. 0x02 at shift 63 is the smallest overflow — it used
  // to wrap to 0, turning a corrupt length field into a "valid" zero.
  for (uint8_t last : {0x02, 0x7E, 0x7F, 0x03}) {
    std::string buf(9, '\x80');
    buf.push_back(static_cast<char>(last));
    size_t pos = 0;
    uint64_t out;
    EXPECT_FALSE(GetVarint64(buf, &pos, &out))
        << "last byte 0x" << std::hex << static_cast<int>(last);
  }
}

TEST(VarintTest, OverlongEncodingRejected) {
  // Eleven-plus-byte encodings (continuation bit still set at shift 63)
  // must fail even if the trailing payload bits are all zero.
  std::string buf(10, '\x80');
  buf.push_back('\x00');
  size_t pos = 0;
  uint64_t out;
  EXPECT_FALSE(GetVarint64(buf, &pos, &out));
  // A continuation bit on the 10th byte alone is already malformed.
  std::string cont(9, '\x80');
  cont.push_back('\x81');
  cont.push_back('\x00');
  pos = 0;
  EXPECT_FALSE(GetVarint64(cont, &pos, &out));
}

TEST(VarintTest, ZigzagSymmetry) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-2},
                    int64_t{1} << 62, -(int64_t{1} << 62), INT64_MIN,
                    INT64_MAX}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
}

TEST(VarintTest, ZigzagSmallMagnitudesStaySmall) {
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
  EXPECT_EQ(ZigzagEncode(-2), 3u);
}

TEST(VarintTest, SignedRoundTripRandom) {
  Rng rng(7);
  std::string buf;
  std::vector<int64_t> vals;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next());
    vals.push_back(v);
    PutVarintSigned(&buf, v);
  }
  size_t pos = 0;
  for (int64_t v : vals) {
    int64_t got;
    ASSERT_TRUE(GetVarintSigned(buf, &pos, &got));
    EXPECT_EQ(got, v);
  }
}

TEST(VarintTest, FixedWidthRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  size_t pos = 0;
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(buf, &pos, &v32));
  ASSERT_TRUE(GetFixed64(buf, &pos, &v64));
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefull);
}

// --------------------------------------------------------------- bitpack --

TEST(BitPackTest, WidthFor) {
  EXPECT_EQ(BitWidthFor(0), 1);
  EXPECT_EQ(BitWidthFor(1), 1);
  EXPECT_EQ(BitWidthFor(2), 2);
  EXPECT_EQ(BitWidthFor(255), 8);
  EXPECT_EQ(BitWidthFor(256), 9);
  EXPECT_EQ(BitWidthFor(~0ull), 64);
}

class BitPackWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(BitPackWidthTest, RoundTripRandom) {
  int width = GetParam();
  Rng rng(static_cast<uint64_t>(width) * 977);
  std::vector<uint64_t> values;
  uint64_t mask = width == 64 ? ~0ull : ((1ull << width) - 1);
  for (int i = 0; i < 333; ++i) values.push_back(rng.Next() & mask);
  std::string buf;
  BitPack(values, width, &buf);
  EXPECT_EQ(buf.size(), (values.size() * static_cast<size_t>(width) + 7) / 8);
  size_t pos = 0;
  std::vector<uint64_t> out;
  ASSERT_TRUE(BitUnpack(buf, &pos, values.size(), width, &out));
  EXPECT_EQ(out, values);
  EXPECT_EQ(pos, buf.size());
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackWidthTest,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 9, 13, 16, 21,
                                           31, 32, 33, 48, 63, 64));

TEST(BitPackTest, TruncatedFails) {
  std::vector<uint64_t> values(10, 3);
  std::string buf;
  BitPack(values, 7, &buf);
  buf.resize(buf.size() - 1);
  size_t pos = 0;
  std::vector<uint64_t> out;
  EXPECT_FALSE(BitUnpack(buf, &pos, 10, 7, &out));
}

// ------------------------------------------------------------------- rle --

TEST(RlePairsTest, RoundTripRuns) {
  std::vector<int64_t> v;
  for (int i = 0; i < 100; ++i)
    for (int k = 0; k < 17; ++k) v.push_back(i * 3 - 50);
  std::string buf;
  RlePairsEncode(v, &buf);
  EXPECT_LT(buf.size(), v.size());  // strongly compressible
  size_t pos = 0;
  std::vector<int64_t> out;
  ASSERT_TRUE(RlePairsDecode(buf, &pos, &out));
  EXPECT_EQ(out, v);
}

TEST(RlePairsTest, RoundTripRandomNoRuns) {
  Rng rng(42);
  std::vector<int64_t> v;
  for (int i = 0; i < 5000; ++i) v.push_back(static_cast<int64_t>(rng.Next() % 1000000));
  std::string buf;
  RlePairsEncode(v, &buf);
  size_t pos = 0;
  std::vector<int64_t> out;
  ASSERT_TRUE(RlePairsDecode(buf, &pos, &out));
  EXPECT_EQ(out, v);
}

TEST(RlePairsTest, Empty) {
  std::string buf;
  RlePairsEncode({}, &buf);
  size_t pos = 0;
  std::vector<int64_t> out;
  ASSERT_TRUE(RlePairsDecode(buf, &pos, &out));
  EXPECT_TRUE(out.empty());
}

class HybridRleTest : public ::testing::TestWithParam<int> {};

TEST_P(HybridRleTest, RoundTripMixed) {
  int width = GetParam();
  Rng rng(static_cast<uint64_t>(width));
  uint64_t mask = (width == 64) ? ~0ull : ((1ull << width) - 1);
  std::vector<uint64_t> v;
  // Alternate runs and noise.
  for (int block = 0; block < 20; ++block) {
    if (block % 2 == 0) {
      uint64_t val = rng.Next() & mask;
      size_t run = 5 + rng.Uniform(40);
      for (size_t i = 0; i < run; ++i) v.push_back(val);
    } else {
      size_t n = 1 + rng.Uniform(30);
      for (size_t i = 0; i < n; ++i) v.push_back(rng.Next() & mask);
    }
  }
  std::string buf;
  HybridRleEncode(v, width, &buf);
  size_t pos = 0;
  std::vector<uint64_t> out;
  ASSERT_TRUE(HybridRleDecode(buf, &pos, v.size(), width, &out));
  EXPECT_EQ(out, v);
}

INSTANTIATE_TEST_SUITE_P(Widths, HybridRleTest,
                         ::testing::Values(1, 2, 4, 8, 12, 20, 32));

TEST(HybridRleTest, LongRunCompresses) {
  std::vector<uint64_t> v(100000, 7);
  std::string buf;
  HybridRleEncode(v, 4, &buf);
  EXPECT_LT(buf.size(), 32u);
}

// --------------------------------------------------------------- huffman --

TEST(HuffmanTest, CodeLengthsRespectLimit) {
  // Fibonacci-like frequencies force deep optimal trees.
  std::vector<uint64_t> freqs;
  uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    uint64_t c = a + b;
    a = b;
    b = c;
  }
  std::vector<int> lens = BuildHuffmanCodeLengths(freqs, 15);
  for (int l : lens) EXPECT_LE(l, 15);
  // Kraft inequality must hold.
  double kraft = 0;
  for (int l : lens)
    if (l > 0) kraft += std::pow(2.0, -l);
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(HuffmanTest, EncodeDecodeAllByteValues) {
  Rng rng(3);
  std::vector<uint64_t> freqs(256, 0);
  std::vector<int> data;
  for (int i = 0; i < 20000; ++i) {
    int sym = static_cast<int>(rng.Next() % 256);
    // Skewed distribution.
    if (rng.Bernoulli(0.7)) sym = static_cast<int>(rng.Next() % 8);
    data.push_back(sym);
    freqs[static_cast<size_t>(sym)]++;
  }
  std::vector<int> lens = BuildHuffmanCodeLengths(freqs, 15);
  std::vector<uint32_t> codes = CanonicalCodes(lens);
  std::string buf;
  BitWriter writer(&buf);
  for (int s : data)
    writer.Write(codes[static_cast<size_t>(s)], lens[static_cast<size_t>(s)]);
  writer.Finish();

  HuffmanDecoder dec;
  ASSERT_TRUE(dec.Init(lens));
  BitReader reader(buf, 0);
  for (int expected : data) {
    int sym;
    ASSERT_TRUE(dec.Decode(&reader, &sym));
    ASSERT_EQ(sym, expected);
  }
}

TEST(HuffmanTest, SingleSymbolAlphabet) {
  std::vector<uint64_t> freqs(10, 0);
  freqs[4] = 99;
  std::vector<int> lens = BuildHuffmanCodeLengths(freqs, 15);
  EXPECT_EQ(lens[4], 1);
  HuffmanDecoder dec;
  ASSERT_TRUE(dec.Init(lens));
  std::vector<uint32_t> codes = CanonicalCodes(lens);
  std::string buf;
  BitWriter writer(&buf);
  for (int i = 0; i < 5; ++i) writer.Write(codes[4], lens[4]);
  writer.Finish();
  BitReader reader(buf, 0);
  for (int i = 0; i < 5; ++i) {
    int sym;
    ASSERT_TRUE(dec.Decode(&reader, &sym));
    EXPECT_EQ(sym, 4);
  }
}

TEST(HuffmanTest, DecoderRejectsInvalidLengths) {
  // Over-subscribed: three 1-bit codes.
  std::vector<int> lens = {1, 1, 1};
  HuffmanDecoder dec;
  EXPECT_FALSE(dec.Init(lens));
}

// --------------------------------------------------------------- deflate --

std::string RandomText(Rng* rng, size_t n, int alphabet) {
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i)
    s.push_back(static_cast<char>('a' + rng->Next() % static_cast<uint64_t>(alphabet)));
  return s;
}

TEST(DeflateTest, RoundTripEmpty) {
  std::string c = DeflateCompress("");
  auto d = DeflateDecompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), "");
}

TEST(DeflateTest, RoundTripShort) {
  for (std::string s : {std::string("a"), std::string("ab"),
                        std::string("abc"), std::string("aaaa")}) {
    auto d = DeflateDecompress(DeflateCompress(s));
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d.value(), s);
  }
}

TEST(DeflateTest, RoundTripRepetitive) {
  std::string s;
  for (int i = 0; i < 5000; ++i) s += "the quick brown fox ";
  std::string c = DeflateCompress(s);
  EXPECT_LT(c.size(), s.size() / 20);  // highly compressible
  auto d = DeflateDecompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), s);
}

TEST(DeflateTest, RoundTripRandomBinary) {
  Rng rng(11);
  std::string s;
  for (int i = 0; i < 100000; ++i) s.push_back(static_cast<char>(rng.Next() & 0xFF));
  std::string c = DeflateCompress(s);
  auto d = DeflateDecompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), s);
  // Incompressible data must not blow up (stored fallback).
  EXPECT_LE(c.size(), s.size() + 64);
}

class DeflateSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DeflateSweepTest, RoundTrip) {
  auto [size, alphabet] = GetParam();
  Rng rng(static_cast<uint64_t>(size) * 131 + static_cast<uint64_t>(alphabet));
  std::string s = RandomText(&rng, static_cast<size_t>(size), alphabet);
  auto d = DeflateDecompress(DeflateCompress(s));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), s);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeflateSweepTest,
    ::testing::Combine(::testing::Values(1, 10, 100, 1000, 10000, 65537),
                       ::testing::Values(1, 2, 4, 26)));

TEST(DeflateTest, CorruptionDetected) {
  std::string c = DeflateCompress("hello world hello world hello world");
  c[0] = 'X';
  EXPECT_FALSE(DeflateDecompress(c).ok());
}

TEST(DeflateTest, TruncationDetected) {
  std::string s;
  for (int i = 0; i < 1000; ++i) s += "abcdefgh";
  std::string c = DeflateCompress(s);
  c.resize(c.size() / 2);
  EXPECT_FALSE(DeflateDecompress(c).ok());
}

// ----------------------------------------------------------- range coder --

TEST(RangeCoderTest, RoundTripEmpty) {
  auto d = RangeCoderDecompress(RangeCoderCompress(""));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), "");
}

TEST(RangeCoderTest, RoundTripSkewed) {
  Rng rng(5);
  std::string s;
  for (int i = 0; i < 50000; ++i)
    s.push_back(rng.Bernoulli(0.9) ? 'x' : static_cast<char>(rng.Next() & 0xFF));
  std::string c = RangeCoderCompress(s);
  EXPECT_LT(c.size(), s.size());  // entropy < 8 bits/byte
  auto d = RangeCoderDecompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), s);
}

TEST(RangeCoderTest, RoundTripUniformRandom) {
  Rng rng(6);
  std::string s;
  for (int i = 0; i < 30000; ++i) s.push_back(static_cast<char>(rng.Next() & 0xFF));
  auto d = RangeCoderDecompress(RangeCoderCompress(s));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), s);
}

TEST(RangeCoderTest, RoundTripAllSameByte) {
  std::string s(100000, 'z');
  std::string c = RangeCoderCompress(s);
  EXPECT_LT(c.size(), s.size() / 50);
  auto d = RangeCoderDecompress(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), s);
}

class RangeCoderSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(RangeCoderSweepTest, RoundTripSizes) {
  int size = GetParam();
  Rng rng(static_cast<uint64_t>(size) + 99);
  std::string s;
  for (int i = 0; i < size; ++i)
    s.push_back(static_cast<char>('A' + rng.Next() % 7));
  auto d = RangeCoderDecompress(RangeCoderCompress(s));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), s);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RangeCoderSweepTest,
                         ::testing::Values(1, 2, 3, 5, 17, 255, 256, 4096,
                                           100000));

}  // namespace
}  // namespace dslog
