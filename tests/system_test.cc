// System-level tests: relational capture ops, explainable-AI capture, the
// DSLog storage manager (registration, path queries, reuse prediction,
// persistence), and the workload generators — the full
// capture -> compress -> store -> query integration.

#include <cmath>
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "array/ndarray.h"
#include "array/op_registry.h"
#include "common/io.h"
#include "common/random.h"
#include "explain/explain.h"
#include "provrc/provrc.h"
#include "query/query_engine.h"
#include "relational/relational_ops.h"
#include "storage/dslog.h"
#include "storage/signatures.h"
#include "workloads/kaggle_sim.h"
#include "workloads/workflows.h"

namespace dslog {
namespace {

std::set<std::vector<int64_t>> ToTupleSet(const std::vector<int64_t>& flat,
                                          int arity) {
  std::set<std::vector<int64_t>> out;
  for (size_t off = 0; off < flat.size(); off += static_cast<size_t>(arity))
    out.insert(std::vector<int64_t>(flat.begin() + static_cast<long>(off),
                                    flat.begin() + static_cast<long>(off) +
                                        arity));
  return out;
}

// -------------------------------------------------------------- relational --

TEST(RelationalOpsTest, InnerJoinMatchesAndLineage) {
  // A: ids {0,1,2}, B: ids {1,2,2,5}: matches (1,1), (2,2) twice.
  NDArray a = NDArray::FromValues({3, 2}, {0, 10, 1, 11, 2, 12});
  NDArray b = NDArray::FromValues({4, 2}, {1, 21, 2, 22, 2, 23, 5, 25});
  auto r = InnerJoin(a, b, 0, 0).ValueOrDie();
  EXPECT_EQ(r.output.shape()[0], 3);  // (1,1), (2,2), (2,2')
  EXPECT_EQ(r.output.shape()[1], 3);  // a's 2 cols + b's non-key col
  // Every output row's key must exist in both inputs.
  for (int64_t k = 0; k < r.output.shape()[0]; ++k) {
    double key = r.output[k * 3];
    EXPECT_TRUE(key == 1.0 || key == 2.0);
  }
  // Lineage: key column cells trace to B as well.
  EXPECT_GT(r.lineage[1].num_rows(), r.output.shape()[0]);
  EXPECT_EQ(r.lineage.size(), 2u);
}

TEST(RelationalOpsTest, InnerJoinSortedKeysProduceStructuredLineage) {
  // Sorted keys on both sides give near-diagonal match lineage that ProvRC
  // compresses well (Table VII "Inner Join" behaviour).
  int64_t n = 2000;
  NDArray a({n, 2});
  NDArray b({n, 2});
  for (int64_t i = 0; i < n; ++i) {
    a[i * 2] = static_cast<double>(i);
    a[i * 2 + 1] = static_cast<double>(i % 7);
    b[i * 2] = static_cast<double>(i);
    b[i * 2 + 1] = static_cast<double>(i % 5);
  }
  auto r = InnerJoin(a, b, 0, 0).ValueOrDie();
  CompressedTable t = ProvRcCompress(r.lineage[0]);
  EXPECT_LT(t.num_rows(), r.lineage[0].num_rows() / 100);
  EXPECT_TRUE(t.Decompress().EqualAsSet(r.lineage[0]));
}

TEST(RelationalOpsTest, GroupByAllToAllWithinGroups) {
  NDArray t = NDArray::FromValues({6, 2}, {1, 10, 0, 20, 1, 30,
                                           0, 40, 1, 50, 0, 60});
  auto r = GroupByAggregate(t, 0, 1).ValueOrDie();
  ASSERT_EQ(r.output.shape()[0], 2);
  EXPECT_EQ(r.output[0], 0.0);
  EXPECT_EQ(r.output[1], 120.0);  // 20+40+60
  EXPECT_EQ(r.output[2], 1.0);
  EXPECT_EQ(r.output[3], 90.0);  // 10+30+50
  EXPECT_EQ(r.lineage[0].num_rows(), 12);  // 6 rows x 2 output cells
}

TEST(RelationalOpsTest, DropNaNColumnsKeepsClean) {
  NDArray t = NDArray::FromValues({2, 3}, {1, std::nan(""), 3, 4, 5, 6});
  auto r = DropNaNColumns(t).ValueOrDie();
  EXPECT_EQ(r.output.shape()[1], 2);
  EXPECT_EQ(r.output[0], 1.0);
  EXPECT_EQ(r.output[1], 3.0);
}

TEST(RelationalOpsTest, OneHotAppendsIndicators) {
  NDArray t = NDArray::FromValues({2, 1}, {0, 2});
  auto r = OneHotEncode(t, 0, 3).ValueOrDie();
  EXPECT_EQ(r.output.shape()[1], 4);
  EXPECT_EQ(r.output[1], 1.0);  // row 0 one-hot position 0
  EXPECT_EQ(r.output[4 + 3], 1.0);  // row 1 one-hot position 2
}

TEST(RelationalOpsTest, AddColumnsAndConstant) {
  NDArray t = NDArray::FromValues({2, 2}, {1, 2, 3, 4});
  auto r1 = AddColumns(t, 0, 1).ValueOrDie();
  EXPECT_EQ(r1.output[2], 3.0);
  auto r2 = AddConstant(r1.output, 0, 10).ValueOrDie();
  EXPECT_EQ(r2.output[0], 11.0);
}

// ----------------------------------------------------------------- explain --

TEST(ExplainTest, DetectorFindsBrightBlob) {
  NDArray frame = NDArray::Zeros({32, 32});
  for (int64_t y = 10; y < 14; ++y)
    for (int64_t x = 20; x < 24; ++x) frame[y * 32 + x] = 200.0;
  TinyDetector det;
  NDArray d = det.Evaluate(frame).ValueOrDie();
  EXPECT_NEAR(d[0], 22, 2);  // x near the blob
  EXPECT_NEAR(d[1], 12, 2);  // y near the blob
  EXPECT_GT(d[4], 1.0);      // confident
}

TEST(ExplainTest, LimeLineageCoversDetectionCells) {
  NDArray frame = MakeSurveillanceFrame(48, 48, 5);
  TinyDetector det;
  Rng rng(6);
  LimeOptions opts;
  opts.num_samples = 64;
  LineageRelation rel = LimeCapture(frame, det, opts, &rng).ValueOrDie();
  EXPECT_GT(rel.num_rows(), 0);
  EXPECT_EQ(rel.out_ndim(), 1);
  EXPECT_EQ(rel.in_ndim(), 2);
  // Indices in bounds; lineage compresses to far fewer rows (segments are
  // rectangles).
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    EXPECT_LT(rel.Row(r)[0], 6);
    EXPECT_LT(rel.Row(r)[1], 48);
    EXPECT_LT(rel.Row(r)[2], 48);
  }
  CompressedTable t = ProvRcCompress(rel);
  EXPECT_LT(t.num_rows() * 20, rel.num_rows());
  EXPECT_TRUE(t.Decompress().EqualAsSet(rel));
}

TEST(ExplainTest, DRiseLineageThresholded) {
  NDArray frame = MakeSurveillanceFrame(40, 40, 7);
  TinyDetector det;
  Rng rng(8);
  DRiseOptions opts;
  opts.num_masks = 48;
  LineageRelation rel = DRiseCapture(frame, det, opts, &rng).ValueOrDie();
  EXPECT_GT(rel.num_rows(), 0);
  // Thresholding keeps well under the full bipartite size.
  EXPECT_LT(rel.num_rows(), 6 * 40 * 40);
  CompressedTable t = ProvRcCompress(rel);
  EXPECT_TRUE(t.Decompress().EqualAsSet(rel));
}

// ------------------------------------------------------------------ DSLog --

TEST(DSLogTest, DefineAndRegisterAndQuery) {
  DSLog log;
  ASSERT_TRUE(log.DefineArray("x", {16}).ok());
  ASSERT_TRUE(log.DefineArray("y", {16}).ok());
  ASSERT_TRUE(log.DefineArray("z", {1}).ok());
  EXPECT_FALSE(log.DefineArray("x", {2}).ok());  // duplicate

  Rng rng(9);
  NDArray x = NDArray::Random({16}, &rng);
  const ArrayOp* neg = OpRegistry::Global().Find("negative");
  NDArray y = neg->Apply({&x}, OpArgs()).ValueOrDie();
  auto rel1 = neg->Capture({&x}, y, OpArgs()).ValueOrDie();
  const ArrayOp* sum = OpRegistry::Global().Find("sum");
  NDArray z = sum->Apply({&y}, OpArgs()).ValueOrDie();
  auto rel2 = sum->Capture({&y}, z, OpArgs()).ValueOrDie();

  OperationRegistration r1{"negative", {"x"}, "y", {rel1[0]}, OpArgs(), 1, true};
  OperationRegistration r2{"sum", {"y"}, "z", {rel2[0]}, OpArgs(), 2, true};
  ASSERT_TRUE(log.RegisterOperation(std::move(r1)).ok());
  ASSERT_TRUE(log.RegisterOperation(std::move(r2)).ok());

  // Forward x -> z.
  BoxTable q = BoxTable::FromCells(1, {3});
  auto fwd = log.ProvQuery({"x", "y", "z"}, q);
  ASSERT_TRUE(fwd.ok()) << fwd.status().ToString();
  EXPECT_EQ(fwd.value().NumDistinctCells(), 1);  // the single sum cell
  // Backward z -> x: everything contributed.
  BoxTable qz = BoxTable::FromCells(1, {0});
  auto bwd = log.ProvQuery({"z", "y", "x"}, qz);
  ASSERT_TRUE(bwd.ok());
  EXPECT_EQ(bwd.value().NumDistinctCells(), 16);
  // Unknown path segment.
  EXPECT_FALSE(log.ProvQuery({"x", "nope"}, q).ok());
}

TEST(DSLogTest, DimSigReuseAfterOneVerification) {
  DSLog log;
  Rng rng(10);
  const ArrayOp* neg = OpRegistry::Global().Find("negative");
  for (int call = 0; call < 3; ++call) {
    std::string x = "x" + std::to_string(call);
    std::string y = "y" + std::to_string(call);
    ASSERT_TRUE(log.DefineArray(x, {32}).ok());
    ASSERT_TRUE(log.DefineArray(y, {32}).ok());
    NDArray xv = NDArray::Random({32}, &rng);
    NDArray yv = neg->Apply({&xv}, OpArgs()).ValueOrDie();
    auto rels = neg->Capture({&xv}, yv, OpArgs()).ValueOrDie();
    OperationRegistration reg{"negative", {x},     y,
                              {rels[0]},  OpArgs(), xv.ContentHash(),
                              true};
    auto outcome = log.RegisterOperation(std::move(reg));
    ASSERT_TRUE(outcome.ok());
    if (call >= 1) {
      EXPECT_TRUE(outcome.value().dim_hit) << call;
    }
  }
  EXPECT_EQ(log.reuse_stats().dim_promotions, 1);
  EXPECT_GE(log.reuse_stats().gen_promotions, 0);
}

TEST(DSLogTest, ReuseServesLineageWithoutCapture) {
  DSLog log;
  Rng rng(11);
  const ArrayOp* neg = OpRegistry::Global().Find("negative");
  // Two captured calls promote the dim_sig mapping.
  for (int call = 0; call < 2; ++call) {
    std::string x = "a" + std::to_string(call);
    std::string y = "b" + std::to_string(call);
    ASSERT_TRUE(log.DefineArray(x, {24}).ok());
    ASSERT_TRUE(log.DefineArray(y, {24}).ok());
    NDArray xv = NDArray::Random({24}, &rng);
    NDArray yv = neg->Apply({&xv}, OpArgs()).ValueOrDie();
    auto rels = neg->Capture({&xv}, yv, OpArgs()).ValueOrDie();
    OperationRegistration reg{"negative", {x}, y, {rels[0]}, OpArgs(),
                              xv.ContentHash(), true};
    ASSERT_TRUE(log.RegisterOperation(std::move(reg)).ok());
  }
  // Third call: no capture provided; lineage served from the index.
  ASSERT_TRUE(log.DefineArray("a2", {24}).ok());
  ASSERT_TRUE(log.DefineArray("b2", {24}).ok());
  OperationRegistration reg{"negative", {"a2"}, "b2", {}, OpArgs(), 0, true};
  auto outcome = log.RegisterOperation(std::move(reg));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome.value().dim_hit);
  // The served lineage answers queries correctly.
  auto fwd = log.ProvQuery({"a2", "b2"}, BoxTable::FromCells(1, {5}));
  ASSERT_TRUE(fwd.ok());
  auto cells = fwd.value().ExpandToCells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], 5);
}

TEST(DSLogTest, GenSigServesDifferentShape) {
  DSLog log;
  Rng rng(12);
  const ArrayOp* neg = OpRegistry::Global().Find("negative");
  // Calls with two different shapes promote gen_sig.
  int64_t sizes[2] = {16, 28};
  for (int call = 0; call < 2; ++call) {
    std::string x = "g" + std::to_string(call);
    std::string y = "h" + std::to_string(call);
    ASSERT_TRUE(log.DefineArray(x, {sizes[call]}).ok());
    ASSERT_TRUE(log.DefineArray(y, {sizes[call]}).ok());
    NDArray xv = NDArray::Random({sizes[call]}, &rng);
    NDArray yv = neg->Apply({&xv}, OpArgs()).ValueOrDie();
    auto rels = neg->Capture({&xv}, yv, OpArgs()).ValueOrDie();
    OperationRegistration reg{"negative", {x}, y, {rels[0]}, OpArgs(),
                              xv.ContentHash(), true};
    ASSERT_TRUE(log.RegisterOperation(std::move(reg)).ok());
  }
  EXPECT_EQ(log.reuse_stats().gen_promotions, 1);
  // A third, previously-unseen shape is served without capture.
  ASSERT_TRUE(log.DefineArray("g2", {99}).ok());
  ASSERT_TRUE(log.DefineArray("h2", {99}).ok());
  OperationRegistration reg{"negative", {"g2"}, "h2", {}, OpArgs(), 0, true};
  auto outcome = log.RegisterOperation(std::move(reg));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  auto fwd = log.ProvQuery({"g2", "h2"}, BoxTable::FromCells(1, {98}));
  ASSERT_TRUE(fwd.ok());
  auto cells = fwd.value().ExpandToCells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], 98);
}

TEST(DSLogTest, MaterializedForwardMatchesDirect) {
  // The §IV.C forward representation must answer every query identically
  // to the direct join over the backward representation.
  auto wfr = BuildRandomNumpyWorkflow(4, 400, 97);
  ASSERT_TRUE(wfr.ok());
  const Workflow& wf = wfr.value();
  DSLogOptions fwd_opts;
  fwd_opts.materialize_forward = true;
  DSLog direct;
  DSLog materialized(fwd_opts);
  for (DSLog* log : {&direct, &materialized}) {
    for (size_t i = 0; i < wf.array_names.size(); ++i)
      ASSERT_TRUE(log->DefineArray(wf.array_names[i], wf.shapes[i]).ok());
    for (size_t i = 0; i < wf.steps.size(); ++i) {
      OperationRegistration reg;
      reg.op_name = wf.steps[i].op_name;
      reg.in_arrs = {wf.array_names[i]};
      reg.out_arr = wf.array_names[i + 1];
      reg.captured = {wf.steps[i].relation};
      ASSERT_TRUE(log->RegisterOperation(std::move(reg)).ok());
    }
  }
  std::vector<std::string> path(wf.array_names.begin(), wf.array_names.end());
  for (int64_t cell : {int64_t{0}, int64_t{17}, int64_t{399}}) {
    BoxTable q = BoxTable::FromCells(1, {cell});
    auto r1 = direct.ProvQuery(path, q);
    auto r2 = materialized.ProvQuery(path, q);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_EQ(ToTupleSet(r1.value().ExpandToCells(),
                         static_cast<int>(wf.shapes.back().size())),
              ToTupleSet(r2.value().ExpandToCells(),
                         static_cast<int>(wf.shapes.back().size())));
  }
}

TEST(DSLogTest, SaveLoadRoundTrip) {
  std::string dir = ScratchDir() + "/dslog_saveload";
  DSLog log;
  ASSERT_TRUE(log.DefineArray("x", {8}).ok());
  ASSERT_TRUE(log.DefineArray("y", {8}).ok());
  Rng rng(13);
  NDArray xv = NDArray::Random({8}, &rng);
  const ArrayOp* neg = OpRegistry::Global().Find("negative");
  NDArray yv = neg->Apply({&xv}, OpArgs()).ValueOrDie();
  auto rels = neg->Capture({&xv}, yv, OpArgs()).ValueOrDie();
  OperationRegistration reg{"negative", {"x"}, "y", {rels[0]}, OpArgs(), 1,
                            true};
  ASSERT_TRUE(log.RegisterOperation(std::move(reg)).ok());
  ASSERT_TRUE(log.Save(dir).ok());

  DSLog restored;
  ASSERT_TRUE(restored.Load(dir).ok());
  EXPECT_TRUE(restored.HasArray("x"));
  auto q = restored.ProvQuery({"y", "x"}, BoxTable::FromCells(1, {2}));
  ASSERT_TRUE(q.ok());
  auto cells = q.value().ExpandToCells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], 2);
}

TEST(DSLogTest, SaveCrashSimulationLeavesPreviousCatalogLoadable) {
  // Torn-write regression: every Save file goes through temp + rename, so a
  // crash at any point mid-save leaves the previous catalog fully loadable.
  const std::string dir = ScratchDir() + "/dslog_crash_sim";
  Rng rng(21);
  const ArrayOp* neg = OpRegistry::Global().Find("negative");
  NDArray xv = NDArray::Random({8}, &rng);
  NDArray yv = neg->Apply({&xv}, OpArgs()).ValueOrDie();
  auto xy = neg->Capture({&xv}, yv, OpArgs()).ValueOrDie();

  DSLog a;
  ASSERT_TRUE(a.DefineArray("x", {8}).ok());
  ASSERT_TRUE(a.DefineArray("y", {8}).ok());
  OperationRegistration reg_a{"negative", {"x"}, "y", {xy[0]}, OpArgs(), 1,
                              true};
  ASSERT_TRUE(a.RegisterOperation(std::move(reg_a)).ok());
  ASSERT_TRUE(a.Save(dir).ok());

  // Catalog B extends A with two edges, one of which ("a" -> "b", key
  // sorting *before* A's "x" -> "y") carries a reversal relation — so if a
  // partial save could ever rebind A's catalog entries to another edge's
  // file, leg 2's lineage check below would catch the wrong table.
  LineageRelation reversal(1, 1);
  reversal.set_shapes({8}, {8});
  for (int64_t i = 0; i < 8; ++i) {
    const int64_t tuple[2] = {i, 7 - i};
    reversal.AddTuple(tuple);
  }
  DSLog b;
  ASSERT_TRUE(b.DefineArray("a", {8}).ok());
  ASSERT_TRUE(b.DefineArray("b", {8}).ok());
  ASSERT_TRUE(b.DefineArray("x", {8}).ok());
  ASSERT_TRUE(b.DefineArray("y", {8}).ok());
  OperationRegistration reg_b1{"negative", {"x"}, "y", {xy[0]}, OpArgs(), 1,
                               true};
  OperationRegistration reg_b2{"reverse", {"a"}, "b", {reversal}, OpArgs(), 2,
                               true};
  ASSERT_TRUE(b.RegisterOperation(std::move(reg_b1)).ok());
  ASSERT_TRUE(b.RegisterOperation(std::move(reg_b2)).ok());

  // Crash leg 1: the very first edge-file write of B's save dies -> no
  // rename was issued, the directory is byte-identical to A's.
  io_testing::SetAtomicWriteCrashHook([](const std::string& path) {
    return path.find("edge_") != std::string::npos
               ? Status::IOError("simulated crash: " + path)
               : Status::OK();
  });
  EXPECT_FALSE(b.Save(dir).ok());
  io_testing::SetAtomicWriteCrashHook(nullptr);

  DSLog restored;
  ASSERT_TRUE(restored.Load(dir).ok());
  EXPECT_NE(restored.FindEdge("x", "y"), nullptr);
  EXPECT_EQ(restored.FindEdge("a", "b"), nullptr);  // still catalog A
  EXPECT_FALSE(restored.HasArray("a"));

  // Crash leg 2: B's edge files all land but catalog.bin's rename never
  // happens -> the old catalog.bin still commits a consistent A-shaped
  // catalog, and its x -> y entry still resolves to x -> y lineage (edge
  // files are keyed by edge identity, so B's "a" -> "b" table cannot land
  // under a file name A references).
  io_testing::SetAtomicWriteCrashHook([](const std::string& path) {
    return path.ends_with("catalog.bin")
               ? Status::IOError("simulated crash: " + path)
               : Status::OK();
  });
  EXPECT_FALSE(b.Save(dir).ok());
  io_testing::SetAtomicWriteCrashHook(nullptr);

  DSLog restored2;
  ASSERT_TRUE(restored2.Load(dir).ok());
  EXPECT_FALSE(restored2.HasArray("a"));
  auto q = restored2.ProvQuery({"y", "x"}, BoxTable::FromCells(1, {3}));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto cells = q.value().ExpandToCells();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], 3);  // identity lineage, not the reversal's 4

  // A non-crashing save of B then commits the extended catalog.
  ASSERT_TRUE(b.Save(dir).ok());
  DSLog restored3;
  ASSERT_TRUE(restored3.Load(dir).ok());
  EXPECT_NE(restored3.FindEdge("a", "b"), nullptr);

  // Crash leg 3: an edge whose lineage *changed* between saves. The new
  // table lands in a new content-addressed file, so the committed
  // catalog's own file keeps its bytes and the crash restores the old
  // lineage — not a half-updated hybrid.
  DSLog c;
  ASSERT_TRUE(c.DefineArray("x", {8}).ok());
  ASSERT_TRUE(c.DefineArray("y", {8}).ok());
  OperationRegistration reg_c{"reverse", {"x"}, "y", {reversal}, OpArgs(), 3,
                              true};
  ASSERT_TRUE(c.RegisterOperation(std::move(reg_c)).ok());
  io_testing::SetAtomicWriteCrashHook([](const std::string& path) {
    return path.ends_with("catalog.bin")
               ? Status::IOError("simulated crash: " + path)
               : Status::OK();
  });
  EXPECT_FALSE(c.Save(dir).ok());
  io_testing::SetAtomicWriteCrashHook(nullptr);

  DSLog restored4;
  ASSERT_TRUE(restored4.Load(dir).ok());
  auto q4 = restored4.ProvQuery({"y", "x"}, BoxTable::FromCells(1, {3}));
  ASSERT_TRUE(q4.ok()) << q4.status().ToString();
  auto cells4 = q4.value().ExpandToCells();
  ASSERT_EQ(cells4.size(), 1u);
  EXPECT_EQ(cells4[0], 3);  // B's identity lineage, not C's reversal
}

TEST(DSLogTest, ReusePredictorStateSurvivesSaveLoad) {
  // Regression for Load() silently dropping reuse state: a promoted
  // dim_sig mapping must keep serving capture-free registrations after a
  // save/load round trip, with the counters intact.
  const std::string dir = ScratchDir() + "/dslog_reuse_persist";
  DSLog log;
  Rng rng(22);
  const ArrayOp* neg = OpRegistry::Global().Find("negative");
  for (int call = 0; call < 2; ++call) {
    std::string x = "p" + std::to_string(call);
    std::string y = "q" + std::to_string(call);
    ASSERT_TRUE(log.DefineArray(x, {24}).ok());
    ASSERT_TRUE(log.DefineArray(y, {24}).ok());
    NDArray xv = NDArray::Random({24}, &rng);
    NDArray yv = neg->Apply({&xv}, OpArgs()).ValueOrDie();
    auto rels = neg->Capture({&xv}, yv, OpArgs()).ValueOrDie();
    OperationRegistration reg{"negative", {x}, y, {rels[0]}, OpArgs(),
                              xv.ContentHash(), true};
    ASSERT_TRUE(log.RegisterOperation(std::move(reg)).ok());
  }
  ASSERT_EQ(log.reuse_stats().dim_promotions, 1);
  ASSERT_TRUE(log.Save(dir).ok());

  DSLog restored;
  ASSERT_TRUE(restored.Load(dir).ok());
  EXPECT_EQ(restored.reuse_stats().dim_promotions, 1);
  EXPECT_EQ(restored.reuse_stats().dim_hits, log.reuse_stats().dim_hits);

  // Third call, no capture: served from the restored reuse index.
  ASSERT_TRUE(restored.DefineArray("p2", {24}).ok());
  ASSERT_TRUE(restored.DefineArray("q2", {24}).ok());
  OperationRegistration reg{"negative", {"p2"}, "q2", {}, OpArgs(), 0, true};
  auto outcome = restored.RegisterOperation(std::move(reg));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome.value().dim_hit);
  auto fwd = restored.ProvQuery({"p2", "q2"}, BoxTable::FromCells(1, {7}));
  ASSERT_TRUE(fwd.ok());
  EXPECT_EQ(fwd.value().ExpandToCells(), (std::vector<int64_t>{7}));
}

// --------------------------------------------------- predictor seal format --

namespace seal_test {

/// Identity lineage over 8 cells, the shared payload for promoted entries.
std::vector<CompressedTable> OneTable() {
  LineageRelation rel(1, 1);
  rel.set_shapes({8}, {8});
  for (int64_t i = 0; i < 8; ++i) {
    const int64_t tuple[2] = {i, i};
    rel.AddTuple(tuple);
  }
  return {ProvRcCompress(rel)};
}

/// Predictor with `ops` promoted dim signatures op0..op<ops-1> (each
/// registered twice with identical lineage, the m = 1 promotion).
ReusePredictor Promoted(int ops, const std::vector<CompressedTable>& tables) {
  ReusePredictor p;
  for (int i = 0; i < ops; ++i) {
    OpArgs args;
    args.SetInt("k", i);
    for (int rep = 0; rep < 2; ++rep)
      p.ProcessRegistration("op" + std::to_string(i), args, {{8}}, {8},
                            static_cast<uint64_t>(i), tables);
  }
  return p;
}

}  // namespace seal_test

TEST(ReusePredictorTest, SealedStateRoundTripsAndServesPromotedLookups) {
  const std::vector<CompressedTable> tables = seal_test::OneTable();
  ReusePredictor p = seal_test::Promoted(4, tables);
  ASSERT_EQ(p.stats().dim_promotions, 4);

  const std::string sealed_blob = p.SerializeState();
  const std::string legacy_blob = p.SerializeState(/*seal=*/false);
  // seal = false reproduces the legacy RPS1 bytes exactly; the SEAL section
  // is strictly appended, so readers that predate it keep working.
  ASSERT_LT(legacy_blob.size(), sealed_blob.size());
  EXPECT_EQ(sealed_blob.compare(0, legacy_blob.size(), legacy_blob), 0);

  // A SEAL-carrying blob binds the perfect-hash index directly; a legacy
  // blob is sealed in memory after the restore. Either way the restored
  // predictor serves exactly the promoted mappings.
  for (const std::string* blob : {&sealed_blob, &legacy_blob}) {
    ReusePredictor r;
    ASSERT_TRUE(r.RestoreState(*blob).ok());
    EXPECT_TRUE(r.sealed());
    for (int i = 0; i < 4; ++i) {
      OpArgs args;
      args.SetInt("k", i);
      auto predicted = r.Predict("op" + std::to_string(i), args, {{8}}, {8});
      ASSERT_EQ(predicted.size(), 1u);
      EXPECT_TRUE(predicted[0] == tables[0]);
      // Absent op / different shape: clean misses through the same index.
      EXPECT_TRUE(r.Predict("nope" + std::to_string(i), args, {{8}}, {8})
                      .empty());
      EXPECT_TRUE(r.Predict("op" + std::to_string(i), args, {{9}}, {9})
                      .empty());
    }
  }
}

TEST(ReusePredictorTest, PromotionStateChangeUnsealsAndStaysCorrect) {
  const std::vector<CompressedTable> tables = seal_test::OneTable();
  ReusePredictor r;
  ASSERT_TRUE(
      r.RestoreState(seal_test::Promoted(3, tables).SerializeState()).ok());
  ASSERT_TRUE(r.sealed());

  // A misprediction demotes op1 (promoted -> rejected), which invalidates
  // the sealed indexes; lookups fall back to the maps with no behaviour
  // change for the still-promoted ops.
  LineageRelation other(1, 1);
  other.set_shapes({8}, {8});
  const int64_t tuple[2] = {0, 7};
  other.AddTuple(tuple);
  OpArgs args1;
  args1.SetInt("k", 1);
  r.ProcessRegistration("op1", args1, {{8}}, {8}, 99, {ProvRcCompress(other)});
  EXPECT_FALSE(r.sealed());
  EXPECT_EQ(r.stats().mispredictions, 1);
  EXPECT_TRUE(r.Predict("op1", args1, {{8}}, {8}).empty());
  OpArgs args0;
  args0.SetInt("k", 0);
  EXPECT_EQ(r.Predict("op0", args0, {{8}}, {8}).size(), 1u);
}

TEST(ReusePredictorTest, CorruptSealSectionIsRejectedWithoutStateChange) {
  const std::vector<CompressedTable> tables = seal_test::OneTable();
  ReusePredictor p = seal_test::Promoted(3, tables);
  const std::string good = p.SerializeState();
  const size_t legacy_size = p.SerializeState(/*seal=*/false).size();

  // Flip a byte inside the SEAL payload (past the 4-byte magic): the
  // restore must fail as Corruption and leave the target untouched.
  std::string bad = good;
  ASSERT_GT(bad.size(), legacy_size + 8);
  bad[legacy_size + 8] ^= 0x20;

  ReusePredictor r;
  ASSERT_TRUE(r.RestoreState(good).ok());
  Status st = r.RestoreState(bad);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  // Prior state intact and still sealed.
  EXPECT_TRUE(r.sealed());
  OpArgs args0;
  args0.SetInt("k", 0);
  EXPECT_EQ(r.Predict("op0", args0, {{8}}, {8}).size(), 1u);
}

// -------------------------------------------------------------- workflows --

TEST(WorkflowTest, ImageWorkflowShape) {
  auto wf = BuildImageWorkflow(48, 48, 3);
  ASSERT_TRUE(wf.ok()) << wf.status().ToString();
  EXPECT_EQ(wf.value().steps.size(), 5u);
  EXPECT_EQ(wf.value().array_names.size(), 6u);
  // Final array is the 6-cell detection vector.
  EXPECT_EQ(wf.value().shapes.back(), (std::vector<int64_t>{6}));
}

TEST(WorkflowTest, RelationalWorkflowShape) {
  auto wf = BuildRelationalWorkflow(400, 200, 4);
  ASSERT_TRUE(wf.ok()) << wf.status().ToString();
  EXPECT_EQ(wf.value().steps.size(), 5u);
  for (const auto& step : wf.value().steps)
    EXPECT_GT(step.relation.num_rows(), 0) << step.op_name;
}

TEST(WorkflowTest, ResNetWorkflowSevenSteps) {
  auto wf = BuildResNetWorkflow(24, 24, 5);
  ASSERT_TRUE(wf.ok());
  EXPECT_EQ(wf.value().steps.size(), 7u);
  // Conv lineage has ~9 entries per cell; elementwise exactly 1.
  EXPECT_GT(wf.value().steps[0].relation.num_rows(),
            wf.value().steps[1].relation.num_rows() * 7);
}

TEST(WorkflowTest, RandomNumpyWorkflowChains) {
  auto wf = BuildRandomNumpyWorkflow(5, 500, 77);
  ASSERT_TRUE(wf.ok()) << wf.status().ToString();
  EXPECT_EQ(wf.value().steps.size(), 5u);
}

TEST(WorkflowTest, WorkflowQueriesMatchGroundTruthEndToEnd) {
  auto wfr = BuildRandomNumpyWorkflow(4, 300, 11);
  ASSERT_TRUE(wfr.ok());
  const Workflow& wf = wfr.value();
  std::vector<CompressedTable> tables;
  std::vector<QueryHop> hops;
  std::vector<RelationHop> rhops;
  for (const auto& step : wf.steps) tables.push_back(ProvRcCompress(step.relation));
  for (size_t i = 0; i < tables.size(); ++i) {
    hops.push_back({&tables[i], true});
    rhops.push_back({&wf.steps[i].relation, true});
  }
  std::vector<int64_t> cells = {0, 5, 42, 299};
  BoxTable q = BoxTable::FromCells(1, cells);
  BoxTable got = InSituQuery(hops, q);
  std::vector<int64_t> want = UncompressedQuery(rhops, cells);
  int arity = wf.steps.back().relation.out_ndim();
  EXPECT_EQ(ToTupleSet(got.ExpandToCells(), arity), ToTupleSet(want, arity));
}

TEST(WorkflowTest, SurveillanceFrameStatistics) {
  NDArray f = MakeSurveillanceFrame(64, 64, 9);
  double lo = 1e300, hi = -1e300;
  for (int64_t i = 0; i < f.size(); ++i) {
    lo = std::min(lo, f[i]);
    hi = std::max(hi, f[i]);
  }
  EXPECT_GT(lo, 0.0);
  EXPECT_GT(hi, 150.0);  // blobs present
}

TEST(WorkflowTest, TitleBasicsSchemaProperties) {
  NDArray t = MakeTitleBasics(500, 1);
  // tconst sorted; startYear non-decreasing; isAdult in {0, 1}.
  for (int64_t i = 1; i < 500; ++i) {
    EXPECT_LT(t[(i - 1) * 6 + 0], t[i * 6 + 0]);
    EXPECT_LE(t[(i - 1) * 6 + 3], t[i * 6 + 3]);
  }
  for (int64_t i = 0; i < 500; ++i)
    EXPECT_TRUE(t[i * 6 + 2] == 0.0 || t[i * 6 + 2] == 1.0);
}

// -------------------------------------------------------------- kaggle sim --

TEST(KaggleSimTest, SummaryInPlausibleBands) {
  KaggleSummary flight = SimulateKaggleDataset(FlightProfile(), 20, 1);
  KaggleSummary netflix = SimulateKaggleDataset(NetflixProfile(), 20, 2);
  // Compressible share should land in the paper's 60-85% region.
  EXPECT_GT(flight.pct_mean, 55.0);
  EXPECT_LT(flight.pct_mean, 90.0);
  EXPECT_GT(netflix.pct_mean, 50.0);
  EXPECT_LT(netflix.pct_mean, 90.0);
  EXPECT_GT(flight.chain_mean, 4.0);
  EXPECT_GT(flight.total_mean, 20.0);
}

TEST(KaggleSimTest, NotebooksDeterministicPerSeed) {
  NotebookStats a = SimulateNotebook(true, 42);
  NotebookStats b = SimulateNotebook(true, 42);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.compressible_ops, b.compressible_ops);
  EXPECT_EQ(a.longest_chain, b.longest_chain);
}

}  // namespace
}  // namespace dslog
