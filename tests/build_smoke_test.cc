// Build smoke test: exercises one op from every ops_*.cc family through
// OpRegistry::Global(). If a translation unit is dropped from the CMake
// target, its family's registration hook never runs and this fails as a
// test instead of (or in addition to) a link error.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"

namespace dslog {
namespace {

// One representative per registration family (source file).
struct FamilyProbe {
  const char* family;  // ops_*.cc the op is registered from
  const char* op_name;
};

constexpr FamilyProbe kProbes[] = {
    {"ops_elementwise.cc", "negative"},
    {"ops_reduce.cc", "sum"},
    {"ops_linalg.cc", "matmul"},
    {"ops_shape.cc", "transpose"},
    {"ops_select.cc", "sort"},
};

TEST(BuildSmokeTest, EveryOpFamilyIsRegistered) {
  const OpRegistry& registry = OpRegistry::Global();
  for (const FamilyProbe& probe : kProbes) {
    EXPECT_NE(registry.Find(probe.op_name), nullptr)
        << "op '" << probe.op_name << "' missing — is " << probe.family
        << " compiled into the dslog target?";
  }
}

TEST(BuildSmokeTest, RegistrySizeCoversTableNine) {
  // The catalogue mirrors Table IX's 136-operation numpy surface; a large
  // drop here means a whole family failed to register.
  EXPECT_GE(OpRegistry::Global().size(), 100);
}

TEST(BuildSmokeTest, EachFamilyRepresentativeAppliesAndCaptures) {
  const OpRegistry& registry = OpRegistry::Global();
  NDArray a = NDArray::FromValues({2, 2}, {1.0, 2.0, 3.0, 4.0});
  NDArray b = NDArray::FromValues({2, 2}, {5.0, 6.0, 7.0, 8.0});

  for (const FamilyProbe& probe : kProbes) {
    SCOPED_TRACE(probe.op_name);
    const ArrayOp* op = registry.Find(probe.op_name);
    ASSERT_NE(op, nullptr);

    std::vector<const NDArray*> inputs;
    inputs.push_back(&a);
    if (op->num_inputs() == 2) inputs.push_back(&b);
    ASSERT_EQ(static_cast<int>(inputs.size()), op->num_inputs());

    Result<NDArray> out = op->Apply(inputs, OpArgs());
    ASSERT_TRUE(out.ok()) << out.status().ToString();

    Result<std::vector<LineageRelation>> lineage =
        op->Capture(inputs, out.value(), OpArgs());
    ASSERT_TRUE(lineage.ok()) << lineage.status().ToString();
    EXPECT_EQ(lineage.value().size(), inputs.size());
  }
}

}  // namespace
}  // namespace dslog
