// Tests for the ProvRC compressor: paper worked examples, pattern-specific
// row counts, serialization round-trips, index reshaping, and the central
// losslessness property (Decompress(Compress(R)) == R as sets) over both
// captured op lineage and randomized relations.

#include <cmath>

#include <gtest/gtest.h>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"
#include "lineage/lineage_relation.h"
#include "provrc/compressed_table.h"
#include "provrc/provrc.h"
#include "provrc/reshape.h"
#include "provrc/serialize.h"

namespace dslog {
namespace {

LineageRelation CaptureOp(const char* op_name,
                          const std::vector<const NDArray*>& inputs,
                          const OpArgs& args, int which = 0) {
  const ArrayOp* op = OpRegistry::Global().Find(op_name);
  EXPECT_NE(op, nullptr) << op_name;
  NDArray out = op->Apply(inputs, args).ValueOrDie();
  auto rels = op->Capture(inputs, out, args).ValueOrDie();
  return std::move(rels[static_cast<size_t>(which)]);
}

// --------------------------------------------------------- paper examples --

TEST(ProvRcTest, PaperFigure1SumExample) {
  // The running example: B = sum(A, axis=1) over a 3x2 array. After step 1
  // the table is 3 rows (Table I); after step 2 it collapses to one row
  // with b1 = [0,2], a1 relative delta 0, a2 absolute [0,1] (Table II,
  // 0-based here).
  NDArray a = NDArray::FromValues({3, 2}, {0, 3, 1, 5, 2, 1});
  OpArgs args;
  args.SetInt("axis", 1);
  LineageRelation rel = CaptureOp("sum", {&a}, args);

  // Step 1 only (ablation): 3 rows.
  ProvRcOptions step1_only;
  step1_only.enable_relative_transform = false;
  CompressedTable t1 = ProvRcCompress(rel, step1_only);
  EXPECT_EQ(t1.num_rows(), 3);

  // Full ProvRC: 1 row.
  CompressedTable t2 = ProvRcCompress(rel);
  ASSERT_EQ(t2.num_rows(), 1);
  const CompressedRow row = t2.Row(0);
  EXPECT_EQ(row.out[0], (Interval{0, 2}));
  ASSERT_TRUE(row.in[0].is_relative());
  EXPECT_EQ(row.in[0].ref, 0);
  EXPECT_EQ(row.in[0].iv, (Interval{0, 0}));
  ASSERT_FALSE(row.in[1].is_relative());
  EXPECT_EQ(row.in[1].iv, (Interval{0, 1}));

  // Lossless.
  EXPECT_TRUE(t2.Decompress().EqualAsSet(rel));
  EXPECT_TRUE(t1.Decompress().EqualAsSet(rel));
}

TEST(ProvRcTest, PaperFigure2AggregateAllToOne) {
  // 4x4 -> 1x1 aggregate: the all-to-all relationship compresses to a
  // single row of full ranges (paper Fig 2).
  Rng rng(1);
  NDArray a = NDArray::Random({4, 4}, &rng);
  LineageRelation rel = CaptureOp("sum", {&a}, OpArgs());
  CompressedTable t = ProvRcCompress(rel);
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.Row(0).out[0], (Interval{0, 0}));
  EXPECT_FALSE(t.Row(0).in[0].is_relative());
  EXPECT_EQ(t.Row(0).in[0].iv, (Interval{0, 3}));
  EXPECT_EQ(t.Row(0).in[1].iv, (Interval{0, 3}));
  EXPECT_EQ(t.NumPairsRepresented(), 16);
}

TEST(ProvRcTest, PaperFigure3OneToOne) {
  // Element-wise op: one compressed row with relative delta zero.
  Rng rng(2);
  NDArray a = NDArray::Random({1000}, &rng);
  LineageRelation rel = CaptureOp("negative", {&a}, OpArgs());
  CompressedTable t = ProvRcCompress(rel);
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.Row(0).out[0], (Interval{0, 999}));
  ASSERT_TRUE(t.Row(0).in[0].is_relative());
  EXPECT_EQ(t.Row(0).in[0].iv, (Interval{0, 0}));
  EXPECT_TRUE(t.Decompress().EqualAsSet(rel));
}

TEST(ProvRcTest, TwoDimElementwiseSingleRow) {
  Rng rng(3);
  NDArray a = NDArray::Random({20, 30}, &rng);
  NDArray b = NDArray::Random({20, 30}, &rng);
  LineageRelation rel = CaptureOp("add", {&a, &b}, OpArgs(), 1);
  CompressedTable t = ProvRcCompress(rel);
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_TRUE(t.Decompress().EqualAsSet(rel));
}

TEST(ProvRcTest, RepetitionCompressesToRepsRows) {
  // tile with reps=4: four runs, each relative to the output with a
  // different delta -> 4 rows (or fewer if merged; must be <= 4).
  NDArray x = NDArray::FromValues({100}, std::vector<double>(100, 1.0));
  OpArgs args;
  args.SetInt("reps", 4);
  LineageRelation rel = CaptureOp("tile", {&x}, args);
  CompressedTable t = ProvRcCompress(rel);
  EXPECT_LE(t.num_rows(), 4);
  EXPECT_TRUE(t.Decompress().EqualAsSet(rel));
}

TEST(ProvRcTest, MatVecCompressesToOneRowPerRelation) {
  Rng rng(4);
  NDArray a = NDArray::Random({16, 8}, &rng);
  NDArray v = NDArray::Random({8}, &rng);
  const ArrayOp* op = OpRegistry::Global().Find("matmul");
  NDArray out = op->Apply({&a, &v}, OpArgs()).ValueOrDie();
  auto rels = op->Capture({&a, &v}, out, OpArgs()).ValueOrDie();
  // out(i) <- A(i, [0,7]): relative on rows, absolute range on cols.
  CompressedTable ta = ProvRcCompress(rels[0]);
  EXPECT_EQ(ta.num_rows(), 1);
  // out(i) <- v([0,7]): all-to-all.
  CompressedTable tv = ProvRcCompress(rels[1]);
  EXPECT_EQ(tv.num_rows(), 1);
  EXPECT_TRUE(ta.Decompress().EqualAsSet(rels[0]));
  EXPECT_TRUE(tv.Decompress().EqualAsSet(rels[1]));
}

TEST(ProvRcTest, SortWorstCaseKeepsRows) {
  // Random permutation lineage has no contiguous structure: row count stays
  // at the original cardinality (the paper's worst case).
  Rng rng(5);
  NDArray x = NDArray::Random({256}, &rng);
  LineageRelation rel = CaptureOp("sort", {&x}, OpArgs());
  CompressedTable t = ProvRcCompress(rel);
  EXPECT_GT(t.num_rows(), 200);  // essentially incompressible
  EXPECT_TRUE(t.Decompress().EqualAsSet(rel));
}

// ------------------------------------------------------ losslessness sweep --

class OpLosslessTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OpLosslessTest, CompressDecompressRoundTrip) {
  const ArrayOp* op = OpRegistry::Global().Find(GetParam());
  ASSERT_NE(op, nullptr);
  Rng rng(17);
  std::vector<NDArray> storage;
  std::vector<int64_t> shape;
  if (op->num_inputs() == 1) {
    shape = op->SupportsUnaryShape({6, 5}) ? std::vector<int64_t>{6, 5}
                                           : std::vector<int64_t>{30};
    if (!op->SupportsUnaryShape(shape)) GTEST_SKIP();
    storage.push_back(NDArray::Random(shape, &rng));
  } else if (op->num_inputs() == 2) {
    if (GetParam() == "matmul" || GetParam() == "kron") {
      storage.push_back(NDArray::Random({5, 6}, &rng));
      storage.push_back(NDArray::Random({6, 4}, &rng));
    } else if (GetParam() == "cross") {
      storage.push_back(NDArray::Random({5, 3}, &rng));
      storage.push_back(NDArray::Random({5, 3}, &rng));
    } else if (GetParam() == "convolve" || GetParam() == "correlate") {
      storage.push_back(NDArray::Random({24}, &rng));
      storage.push_back(NDArray::Random({5}, &rng));
    } else if (GetParam() == "searchsorted") {
      storage.push_back(NDArray::Arange(16));
      storage.push_back(NDArray::Random({8}, &rng));
    } else {
      storage.push_back(NDArray::Random({18}, &rng));
      storage.push_back(NDArray::Random({18}, &rng));
    }
    shape = storage[0].shape();
  } else {
    storage.push_back(NDArray::RandomInts({12}, 0, 1, &rng));
    storage.push_back(NDArray::Random({12}, &rng));
    storage.push_back(NDArray::Random({12}, &rng));
    shape = {12};
  }
  std::vector<const NDArray*> inputs;
  for (const auto& s : storage) inputs.push_back(&s);
  OpArgs args = op->SampleArgs(shape, &rng);
  auto out = op->Apply(inputs, args);
  if (!out.ok()) GTEST_SKIP();
  auto rels = op->Capture(inputs, out.value(), args).ValueOrDie();
  for (auto& rel : rels) {
    if (rel.num_rows() == 0) continue;
    CompressedTable t = ProvRcCompress(rel);
    EXPECT_TRUE(t.Decompress().EqualAsSet(rel)) << GetParam();
    // Step-1-only ablation must also be lossless.
    ProvRcOptions opt;
    opt.enable_relative_transform = false;
    CompressedTable t1 = ProvRcCompress(rel, opt);
    EXPECT_TRUE(t1.Decompress().EqualAsSet(rel)) << GetParam();
    // Full ProvRC never has more rows than step 1 alone.
    EXPECT_LE(t.num_rows(), t1.num_rows()) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpLosslessTest,
                         ::testing::ValuesIn(OpRegistry::Global().AllNames()));

// Random relations: arbitrary tuple sets must survive the round trip even
// with no exploitable structure.
class RandomRelationTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RandomRelationTest, LosslessOnNoise) {
  auto [l, m, rows] = GetParam();
  Rng rng(static_cast<uint64_t>(l * 100 + m * 10 + rows));
  LineageRelation rel(l, m);
  std::vector<int64_t> out_shape(static_cast<size_t>(l), 8);
  std::vector<int64_t> in_shape(static_cast<size_t>(m), 8);
  rel.set_shapes(out_shape, in_shape);
  std::vector<int64_t> tuple(static_cast<size_t>(l + m));
  for (int r = 0; r < rows; ++r) {
    for (auto& v : tuple) v = rng.UniformRange(0, 7);
    rel.AddTuple(tuple);
  }
  rel.SortAndDedup();
  CompressedTable t = ProvRcCompress(rel);
  EXPECT_TRUE(t.Decompress().EqualAsSet(rel));
  EXPECT_EQ(t.NumPairsRepresented(), rel.num_rows());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomRelationTest,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 10, 100, 500)));

// Structured random relations: random boxes (unions of Cartesian products)
// exercise partial mergeability.
class RandomBoxRelationTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomBoxRelationTest, LosslessOnRandomBoxes) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  LineageRelation rel(2, 2);
  rel.set_shapes({16, 16}, {16, 16});
  std::vector<int64_t> tuple(4);
  for (int box = 0; box < 6; ++box) {
    int64_t b0 = rng.UniformRange(0, 12), b1 = rng.UniformRange(0, 12);
    int64_t a0 = rng.UniformRange(0, 12), a1 = rng.UniformRange(0, 12);
    int64_t w = rng.UniformRange(1, 3);
    for (int64_t i = 0; i < w; ++i)
      for (int64_t j = 0; j < w; ++j)
        for (int64_t k = 0; k < w; ++k)
          for (int64_t n = 0; n < w; ++n) {
            tuple = {b0 + i, b1 + j, a0 + k, a1 + n};
            rel.AddTuple(tuple);
          }
  }
  rel.SortAndDedup();
  CompressedTable t = ProvRcCompress(rel);
  EXPECT_TRUE(t.Decompress().EqualAsSet(rel));
  EXPECT_LT(t.num_rows(), rel.num_rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBoxRelationTest,
                         ::testing::Range(0, 12));

// ------------------------------------------------------------- serialization --

TEST(SerializeTest, RoundTripElementwise) {
  Rng rng(6);
  NDArray a = NDArray::Random({50, 2}, &rng);
  LineageRelation rel = CaptureOp("negative", {&a}, OpArgs());
  CompressedTable t = ProvRcCompress(rel);
  std::string data = SerializeCompressedTable(t);
  auto back = DeserializeCompressedTable(data);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value() == t);
}

TEST(SerializeTest, RoundTripGzip) {
  Rng rng(7);
  NDArray x = NDArray::Random({300}, &rng);
  LineageRelation rel = CaptureOp("sort", {&x}, OpArgs());
  CompressedTable t = ProvRcCompress(rel);
  std::string data = SerializeCompressedTableGzip(t);
  auto back = DeserializeCompressedTableGzip(data);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value() == t);
}

TEST(SerializeTest, CorruptionRejected) {
  CompressedTable t({4}, {4});
  CompressedRow row;
  row.out = {{0, 3}};
  row.in = {InputCell::Relative(0, {0, 0})};
  t.AddRow(row);
  std::string data = SerializeCompressedTable(t);
  data[0] = 'X';
  EXPECT_FALSE(DeserializeCompressedTable(data).ok());
}

TEST(SerializeTest, ZeroArityHeaderRejected) {
  // A crafted header claiming 0 output or input attributes must be
  // Corruption, not a divide-by-zero or an unbounded empty-row loop.
  for (const std::string& data :
       {std::string("PRC1\x00\x00\xff", 7), std::string("PRC1\x00\x01\xff", 7),
        std::string("PRC1\x01\x00\xff", 7)}) {
    auto r = DeserializeCompressedTable(data);
    ASSERT_FALSE(r.ok());
  }
}

TEST(SerializeTest, TruncationFuzzNeverCrashes) {
  // Every prefix of a valid serialization must either decode cleanly (the
  // full buffer) or fail with a Status — never crash or loop.
  Rng rng(77);
  NDArray x = NDArray::Random({64}, &rng);
  LineageRelation rel = CaptureOp("sort", {&x}, OpArgs());
  std::string data = SerializeCompressedTable(ProvRcCompress(rel));
  for (size_t cut = 0; cut < data.size(); ++cut) {
    auto r = DeserializeCompressedTable(data.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of length " << cut << " decoded";
  }
  EXPECT_TRUE(DeserializeCompressedTable(data).ok());
}

TEST(SerializeTest, ByteFlipFuzzNeverCrashes) {
  Rng rng(78);
  NDArray x = NDArray::Random({32}, &rng);
  LineageRelation rel = CaptureOp("negative", {&x}, OpArgs());
  std::string data = SerializeCompressedTable(ProvRcCompress(rel));
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = data;
    size_t pos = rng.Uniform(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.Next() & 0xFF);
    auto r = DeserializeCompressedTable(corrupted);
    // Either rejected or decoded to *some* table; both acceptable, the
    // invariant is no crash / no hang.
    (void)r;
  }
}

TEST(SerializeTest, CompressedElementwiseIsTiny) {
  // A 100k-cell element-wise lineage must serialize to a few dozen bytes —
  // the heart of Table VII's storage reductions.
  Rng rng(8);
  NDArray a = NDArray::Random({100000}, &rng);
  LineageRelation rel = CaptureOp("negative", {&a}, OpArgs());
  CompressedTable t = ProvRcCompress(rel);
  std::string data = SerializeCompressedTable(t);
  EXPECT_LT(data.size(), 64u);
  EXPECT_GT(rel.PayloadBytes(), 1000000);
}

// ---------------------------------------------------------------- reshape --

TEST(ReshapeTest, PaperFigure6AggregateGeneralization) {
  // Aggregate over a 2-cell array -> generalized -> instantiate for 4 cells
  // (paper Fig 6).
  Rng rng(9);
  NDArray small = NDArray::Random({2}, &rng);
  LineageRelation rel2 = CaptureOp("sum", {&small}, OpArgs());
  CompressedTable t2 = ProvRcCompress(rel2);
  GeneralizedTable gen = GeneralizedTable::Generalize(t2);
  EXPECT_TRUE(gen.has_symbolic_cells());

  auto t4 = gen.Instantiate({1}, {4});
  ASSERT_TRUE(t4.ok());
  NDArray big = NDArray::Random({4}, &rng);
  LineageRelation rel4 = CaptureOp("sum", {&big}, OpArgs());
  EXPECT_TRUE(t4.value().Decompress().EqualAsSet(rel4));
}

TEST(ReshapeTest, ElementwiseGeneralizesAcrossShapes) {
  Rng rng(10);
  NDArray a = NDArray::Random({8}, &rng);
  LineageRelation rel = CaptureOp("negative", {&a}, OpArgs());
  GeneralizedTable gen = GeneralizedTable::Generalize(ProvRcCompress(rel));
  for (int64_t n : {3, 17, 100}) {
    NDArray b = NDArray::Random({n}, &rng);
    LineageRelation reln = CaptureOp("negative", {&b}, OpArgs());
    auto t = gen.Instantiate({n}, {n});
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE(t.value().Decompress().EqualAsSet(reln)) << n;
  }
}

TEST(ReshapeTest, TileDoesNotGeneralize) {
  // tile's compressed deltas are shape-dependent: instantiating for another
  // shape must NOT reproduce the true lineage (gen_sig verification fails).
  NDArray x4 = NDArray::FromValues({4}, {1, 2, 3, 4});
  OpArgs args;
  args.SetInt("reps", 2);
  LineageRelation rel4 = CaptureOp("tile", {&x4}, args);
  GeneralizedTable gen = GeneralizedTable::Generalize(ProvRcCompress(rel4));
  NDArray x6 = NDArray::FromValues({6}, {1, 2, 3, 4, 5, 6});
  LineageRelation rel6 = CaptureOp("tile", {&x6}, args);
  auto t6 = gen.Instantiate({12}, {6});
  ASSERT_TRUE(t6.ok());
  EXPECT_FALSE(t6.value().Decompress().EqualAsSet(rel6));
}

TEST(ReshapeTest, CrossDim3TrapGeneralizesWrongly) {
  // The `cross` trap: with (n,3) inputs the last-dimension interval [0,2]
  // generalizes; instantiating at (n,2) produces wrong lineage — the
  // mechanism behind Table IX's one misprediction.
  Rng rng(11);
  NDArray a = NDArray::Random({4, 3}, &rng);
  NDArray b = NDArray::Random({4, 3}, &rng);
  const ArrayOp* op = OpRegistry::Global().Find("cross");
  NDArray out = op->Apply({&a, &b}, OpArgs()).ValueOrDie();
  auto rels = op->Capture({&a, &b}, out, OpArgs()).ValueOrDie();
  GeneralizedTable gen = GeneralizedTable::Generalize(ProvRcCompress(rels[0]));
  // Instantiate for 5 rows and dim 3 works (shape-based reuse)...
  NDArray a5 = NDArray::Random({5, 3}, &rng);
  NDArray b5 = NDArray::Random({5, 3}, &rng);
  NDArray out5 = op->Apply({&a5, &b5}, OpArgs()).ValueOrDie();
  auto rels5 = op->Capture({&a5, &b5}, out5, OpArgs()).ValueOrDie();
  auto t5 = gen.Instantiate(out5.shape(), a5.shape());
  ASSERT_TRUE(t5.ok());
  EXPECT_TRUE(t5.value().Decompress().EqualAsSet(rels5[0]));
  // ...but the pattern silently differs for dim-2 inputs (different output
  // arity) — Instantiate cannot even be applied, or applies incorrectly.
  NDArray a2 = NDArray::Random({5, 2}, &rng);
  NDArray b2 = NDArray::Random({5, 2}, &rng);
  NDArray out2 = op->Apply({&a2, &b2}, OpArgs()).ValueOrDie();
  auto rels2 = op->Capture({&a2, &b2}, out2, OpArgs()).ValueOrDie();
  auto t2 = gen.Instantiate(out2.shape(), a2.shape());
  EXPECT_TRUE(!t2.ok() || !t2.value().Decompress().EqualAsSet(rels2[0]));
}

TEST(ReshapeTest, NoSymbolicCellsForConstantLineage) {
  // A relation whose intervals never span a full dimension stays concrete.
  LineageRelation rel(1, 1);
  rel.set_shapes({10}, {10});
  int64_t o = 3, i = 5;
  rel.Add({&o, 1}, {&i, 1});
  GeneralizedTable gen = GeneralizedTable::Generalize(ProvRcCompress(rel));
  EXPECT_FALSE(gen.has_symbolic_cells());
}

}  // namespace
}  // namespace dslog
