// Unit tests for the interval primitive and the compressed-table cell
// types — the foundations every θ-join property rests on.

#include <gtest/gtest.h>

#include "provrc/compressed_table.h"
#include "provrc/interval.h"

namespace dslog {
namespace {

TEST(IntervalTest, PointAndWidth) {
  Interval p = Interval::Point(7);
  EXPECT_EQ(p.lo, 7);
  EXPECT_EQ(p.hi, 7);
  EXPECT_EQ(p.width(), 1);
  EXPECT_EQ((Interval{3, 9}).width(), 7);
}

TEST(IntervalTest, Contains) {
  Interval iv{2, 5};
  EXPECT_FALSE(iv.Contains(1));
  EXPECT_TRUE(iv.Contains(2));
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_FALSE(iv.Contains(6));
}

TEST(IntervalTest, IntersectSymmetric) {
  Interval a{0, 10}, b{5, 20};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_EQ(a.Intersect(b), (Interval{5, 10}));
  EXPECT_EQ(b.Intersect(a), (Interval{5, 10}));
}

TEST(IntervalTest, DisjointIntersectionInvalid) {
  Interval a{0, 3}, b{5, 9};
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_FALSE(a.Intersect(b).valid());
}

TEST(IntervalTest, SinglePointOverlap) {
  Interval a{0, 5}, b{5, 9};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.Intersect(b), (Interval{5, 5}));
}

TEST(IntervalTest, AdjacentBefore) {
  Interval a{0, 4};
  EXPECT_TRUE(a.AdjacentBefore({5, 9}));
  EXPECT_FALSE(a.AdjacentBefore({4, 9}));  // overlapping, not adjacent
  EXPECT_FALSE(a.AdjacentBefore({6, 9}));  // gap
}

TEST(IntervalTest, ShiftByMinkowski) {
  // {a + d : a in [2,4], d in [-1,1]} = [1, 5].
  EXPECT_EQ((Interval{2, 4}).ShiftBy({-1, 1}), (Interval{1, 5}));
  // Degenerate delta shifts rigidly.
  EXPECT_EQ((Interval{2, 4}).ShiftBy({10, 10}), (Interval{12, 14}));
}

TEST(IntervalTest, CompareLexicographic) {
  EXPECT_LT(CompareIntervals({1, 5}, {2, 3}), 0);
  EXPECT_GT(CompareIntervals({2, 3}, {1, 5}), 0);
  EXPECT_LT(CompareIntervals({1, 3}, {1, 5}), 0);
  EXPECT_EQ(CompareIntervals({1, 5}, {1, 5}), 0);
}

TEST(IntervalTest, ToStringForms) {
  EXPECT_EQ(Interval::Point(4).ToString(), "4");
  EXPECT_EQ((Interval{1, 9}).ToString(), "[1,9]");
}

TEST(InputCellTest, FactoryInvariants) {
  InputCell abs = InputCell::Absolute({3, 8});
  EXPECT_FALSE(abs.is_relative());
  EXPECT_EQ(abs.iv, (Interval{3, 8}));
  InputCell rel = InputCell::Relative(1, {-2, 0});
  EXPECT_TRUE(rel.is_relative());
  EXPECT_EQ(rel.ref, 1);
}

TEST(CompressedTableTest, NumPairsCountsAllToAll) {
  CompressedTable t({4}, {4});
  CompressedRow row;
  row.out = {{0, 3}};
  row.in = {InputCell::Absolute({0, 3})};
  t.AddRow(row);
  EXPECT_EQ(t.NumPairsRepresented(), 16);
  // Relative rows count delta width per output point.
  CompressedTable t2({4}, {4});
  CompressedRow row2;
  row2.out = {{0, 3}};
  row2.in = {InputCell::Relative(0, {0, 0})};
  t2.AddRow(row2);
  EXPECT_EQ(t2.NumPairsRepresented(), 4);
}

TEST(CompressedTableTest, DecompressRelativeRow) {
  // out [1,2], in = out + [0,1]  ->  pairs (1,1),(1,2),(2,2),(2,3).
  CompressedTable t({4}, {4});
  CompressedRow row;
  row.out = {{1, 2}};
  row.in = {InputCell::Relative(0, {0, 1})};
  t.AddRow(row);
  LineageRelation rel = t.Decompress();
  rel.SortAndDedup();
  ASSERT_EQ(rel.num_rows(), 4);
  int64_t want[4][2] = {{1, 1}, {1, 2}, {2, 2}, {2, 3}};
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rel.Row(i)[0], want[i][0]);
    EXPECT_EQ(rel.Row(i)[1], want[i][1]);
  }
}

}  // namespace
}  // namespace dslog
