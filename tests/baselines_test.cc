// Tests for the storage-format baselines: round-trips on structured and
// unstructured relations, relative size ordering on pattern workloads, and
// corruption handling.

#include <gtest/gtest.h>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "baselines/storage_format.h"
#include "common/random.h"
#include "provrc/provrc.h"
#include "provrc/serialize.h"

namespace dslog {
namespace {

LineageRelation CaptureOp(const char* op_name,
                          const std::vector<const NDArray*>& inputs,
                          const OpArgs& args, int which = 0) {
  const ArrayOp* op = OpRegistry::Global().Find(op_name);
  NDArray out = op->Apply(inputs, args).ValueOrDie();
  return std::move(op->Capture(inputs, out, args).ValueOrDie()[
      static_cast<size_t>(which)]);
}

LineageRelation RandomRelation(int l, int m, int rows, uint64_t seed) {
  Rng rng(seed);
  LineageRelation rel(l, m);
  rel.set_shapes(std::vector<int64_t>(static_cast<size_t>(l), 1000),
                 std::vector<int64_t>(static_cast<size_t>(m), 1000));
  std::vector<int64_t> tuple(static_cast<size_t>(l + m));
  for (int r = 0; r < rows; ++r) {
    for (auto& v : tuple) v = rng.UniformRange(0, 999);
    rel.AddTuple(tuple);
  }
  rel.SortAndDedup();
  return rel;
}

class FormatRoundTripTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<StorageFormat> format() const {
    auto all = MakeAllBaselineFormats();
    return std::move(all[static_cast<size_t>(GetParam())]);
  }
};

TEST_P(FormatRoundTripTest, StructuredLineage) {
  auto fmt = format();
  Rng rng(1);
  NDArray a = NDArray::Random({40, 25}, &rng);
  LineageRelation rel = CaptureOp("negative", {&a}, OpArgs());
  std::string data = fmt->Encode(rel);
  auto back = fmt->Decode(data);
  ASSERT_TRUE(back.ok()) << fmt->name() << ": " << back.status().ToString();
  EXPECT_TRUE(back.value().EqualAsSet(rel)) << fmt->name();
  EXPECT_EQ(back.value().out_shape(), rel.out_shape());
  EXPECT_EQ(back.value().in_shape(), rel.in_shape());
}

TEST_P(FormatRoundTripTest, UnstructuredLineage) {
  auto fmt = format();
  LineageRelation rel = RandomRelation(2, 2, 5000, 7);
  auto back = fmt->Decode(fmt->Encode(rel));
  ASSERT_TRUE(back.ok()) << fmt->name();
  EXPECT_TRUE(back.value().EqualAsSet(rel)) << fmt->name();
}

TEST_P(FormatRoundTripTest, EmptyRelation) {
  auto fmt = format();
  LineageRelation rel(1, 1);
  rel.set_shapes({4}, {4});
  auto back = fmt->Decode(fmt->Encode(rel));
  ASSERT_TRUE(back.ok()) << fmt->name();
  EXPECT_EQ(back.value().num_rows(), 0);
}

TEST_P(FormatRoundTripTest, LargeRowGroupBoundary) {
  // Exercises multiple row groups in the columnar format (> 128 Ki rows).
  auto fmt = format();
  Rng rng(2);
  NDArray a = NDArray::Random({150000}, &rng);
  LineageRelation rel = CaptureOp("negative", {&a}, OpArgs());
  auto back = fmt->Decode(fmt->Encode(rel));
  ASSERT_TRUE(back.ok()) << fmt->name();
  EXPECT_EQ(back.value().num_rows(), rel.num_rows());
  EXPECT_TRUE(back.value().EqualAsSet(rel)) << fmt->name();
}

TEST_P(FormatRoundTripTest, CorruptMagicRejected) {
  auto fmt = format();
  LineageRelation rel = RandomRelation(1, 1, 50, 9);
  std::string data = fmt->Encode(rel);
  data[0] = 'x';
  EXPECT_FALSE(fmt->Decode(data).ok()) << fmt->name();
}

INSTANTIATE_TEST_SUITE_P(AllFormats, FormatRoundTripTest,
                         ::testing::Range(0, 5));

TEST(FormatOrderingTest, AggregatePatternSizes) {
  // Aggregation lineage: Parquet-like columnar formats must compress far
  // better than Raw/Array (dictionary/RLE exploits the sorted b column),
  // while ProvRC beats everything (Table VII "Aggregate" row shape).
  Rng rng(3);
  NDArray a = NDArray::Random({300, 300}, &rng);
  OpArgs args;
  args.SetInt("axis", 1);
  LineageRelation rel = CaptureOp("sum", {&a}, args);

  auto formats = MakeAllBaselineFormats();
  std::map<std::string, size_t> sizes;
  for (const auto& f : formats) sizes[f->name()] = f->Encode(rel).size();
  size_t provrc = SerializeCompressedTable(ProvRcCompress(rel)).size();

  EXPECT_LT(sizes["Parquet"], sizes["Raw"]);
  EXPECT_LT(sizes["Parquet-GZip"], sizes["Parquet"]);
  EXPECT_LT(sizes["Raw"], sizes["Array"]);  // varint vs fixed-width
  EXPECT_LT(provrc, sizes["Parquet-GZip"] / 10);  // orders of magnitude vs raw
}

TEST(FormatOrderingTest, SortPatternNobodyWinsBig) {
  // Sort lineage is the adversarial case: ProvRC stays near the entropy
  // bound like everyone else (paper: "worst case for ProvRC").
  Rng rng(4);
  NDArray x = NDArray::Random({50000}, &rng);
  LineageRelation rel = CaptureOp("sort", {&x}, OpArgs());
  size_t provrc = SerializeCompressedTable(ProvRcCompress(rel)).size();
  size_t raw = MakeRawFormat()->Encode(rel).size();
  // Within a small constant of the raw row store, not orders of magnitude.
  EXPECT_GT(provrc * 4, raw / 4);
}

TEST(CsvExportTest, HeaderAndRows) {
  LineageRelation rel(1, 2);
  rel.set_shapes({2}, {2, 2});
  int64_t o[1] = {1};
  int64_t i[2] = {0, 1};
  rel.Add(o, i);
  std::string csv = RelationToCsv(rel);
  EXPECT_EQ(csv, "b1,a1,a2\n1,0,1\n");
}

}  // namespace
}  // namespace dslog
