// QueryProfile end-to-end tests: a columnar LogStore reopened in situ is
// queried with QueryOptions::profile and the per-hop record is asserted
// exactly — edge identity, segment resolution (cold zero-copy borrow vs
// warm LRU hit, on-disk byte counts), join execution (rows, probes, access
// paths, planner estimates), and the invariant that profiling never
// changes the query result. Also covers ProvQueryBatch profile fan-out,
// hand-built InSituQuery hop vectors, and the ToJson/ToText exports.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "lineage/lineage_relation.h"
#include "provrc/compressed_table.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "query/theta_join.h"
#include "storage/dslog.h"
#include "storage/logstore.h"

namespace dslog {
namespace {

constexpr int64_t kN = 64;
constexpr int kSteps = 3;

/// A kSteps-deep 1-D chain a0 -> a1 -> ... where step i maps cell c to
/// (c + i + 1) % kN — every relation is total, so a full-array backward
/// query touches every segment on the path.
void BuildChain(DSLog* log) {
  ASSERT_TRUE(log->DefineArray("a0", {kN}).ok());
  for (int i = 0; i < kSteps; ++i) {
    const std::string in = "a" + std::to_string(i);
    const std::string out = "a" + std::to_string(i + 1);
    ASSERT_TRUE(log->DefineArray(out, {kN}).ok());
    LineageRelation rel(1, 1);
    rel.set_shapes({kN}, {kN});
    for (int64_t c = 0; c < kN; ++c) {
      const int64_t tuple[2] = {(c + i + 1) % kN, c};
      rel.AddTuple(tuple);
    }
    OperationRegistration reg;
    reg.op_name = "step_" + std::to_string(i);
    reg.in_arrs = {in};
    reg.out_arr = out;
    reg.captured.push_back(std::move(rel));
    reg.reuse = false;
    auto outcome = log->RegisterOperation(std::move(reg));
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
}

std::string SaveChainStore(const std::string& file) {
  const std::string path = ScratchDir() + "/" + file;
  DSLog log;
  BuildChain(&log);
  Status st = log.SaveLogStore(path);  // columnar: zero-copy segments
  EXPECT_TRUE(st.ok()) << st.ToString();
  return path;
}

std::vector<std::string> BackwardPath() {
  std::vector<std::string> path;
  for (int i = kSteps; i >= 0; --i) path.push_back("a" + std::to_string(i));
  return path;
}

void ExpectSameBoxes(const BoxTable& a, const BoxTable& b) {
  ASSERT_EQ(a.ndim(), b.ndim());
  ASSERT_EQ(a.num_boxes(), b.num_boxes());
  for (int64_t i = 0; i < a.num_boxes(); ++i) {
    auto ba = a.Box(i);
    auto bb = b.Box(i);
    for (int d = 0; d < a.ndim(); ++d) {
      EXPECT_EQ(ba[static_cast<size_t>(d)].lo, bb[static_cast<size_t>(d)].lo);
      EXPECT_EQ(ba[static_cast<size_t>(d)].hi, bb[static_cast<size_t>(d)].hi);
    }
  }
}

TEST(ProfileTest, ColdRunRecordsZeroCopyResolvesExactly) {
  const std::string path = SaveChainStore("profile_cold.dsl");
  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DSLog log = std::move(opened).value();
  auto store = log.log_store();
  ASSERT_NE(store, nullptr);

  const BoxTable query = BoxTable::FromBox({{0, kN - 1}});
  QueryOptions options;
  options.profile = true;
  QueryProfile profile;
  auto result = log.ProvQuery(BackwardPath(), query, options, &profile);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Profiling must not perturb the result.
  auto plain = log.ProvQuery(BackwardPath(), query);
  ASSERT_TRUE(plain.ok());
  ExpectSameBoxes(result.value(), plain.value());

  ASSERT_EQ(profile.hops.size(), static_cast<size_t>(kSteps));
  EXPECT_FALSE(profile.simd_isa.empty());
  EXPECT_EQ(profile.num_threads, 1);
  EXPECT_TRUE(profile.merge_between_hops);
  EXPECT_EQ(profile.result_boxes, result.value().num_boxes());
  EXPECT_GE(profile.wall_ms, 0.0);

  for (size_t h = 0; h < profile.hops.size(); ++h) {
    const HopProfile& hp = profile.hops[h];
    // Backward path hop h traverses edge a(kSteps-h-1) -> a(kSteps-h).
    const int step = kSteps - static_cast<int>(h) - 1;
    EXPECT_EQ(hp.in_arr, "a" + std::to_string(step));
    EXPECT_EQ(hp.out_arr, "a" + std::to_string(step + 1));
    EXPECT_EQ(hp.op_name, "step_" + std::to_string(step));
    EXPECT_FALSE(hp.forward);
    EXPECT_FALSE(hp.used_forward_table);

    // Cold columnar store: every hop resolves its segment as a zero-copy
    // borrow — no decode, no rows copied, exact on-disk byte count.
    EXPECT_TRUE(hp.from_store);
    EXPECT_FALSE(hp.cache_hit);
    EXPECT_TRUE(hp.borrowed);
    EXPECT_EQ(hp.bytes_decompressed, 0);
    EXPECT_EQ(hp.rows_materialized, 0);
    // v4 footers hold records in PHF-position order, so segment ids no
    // longer track registration order: resolve this hop's segment through
    // the store's edge index.
    auto seg_id = store->FindSegmentId(hp.in_arr, hp.out_arr);
    ASSERT_TRUE(seg_id.ok());
    ASSERT_GE(seg_id.value(), 0);
    const LogStore::SegmentInfo seg =
        store->segment_info(static_cast<size_t>(seg_id.value()));
    ASSERT_EQ(seg.op_name, hp.op_name);
    EXPECT_EQ(hp.segment_bytes, static_cast<int64_t>(seg.length));

    // Join execution: the chain relations are total permutations, so the
    // frontier stays the full array and every hop emits full coverage.
    EXPECT_EQ(hp.table_rows, seg.row_count);
    EXPECT_GE(hp.probes, 1);
    EXPECT_EQ(hp.path_probes[0] + hp.path_probes[1] + hp.path_probes[2],
              hp.probes);
    EXPECT_GT(hp.rows_scanned, 0);
    EXPECT_GE(hp.rows_emitted, hp.result_boxes);
    EXPECT_GT(hp.result_boxes, 0);
    EXPECT_GE(hp.wall_ms, 0.0);
  }
  // The last hop's post-merge output is the query result.
  EXPECT_EQ(profile.hops.back().result_boxes, profile.result_boxes);
}

TEST(ProfileTest, WarmRunHitsTheDecodeCache) {
  const std::string path = SaveChainStore("profile_warm.dsl");
  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DSLog log = std::move(opened).value();

  const BoxTable query = BoxTable::FromBox({{0, kN - 1}});
  QueryOptions options;
  options.profile = true;
  QueryProfile cold, warm;
  ASSERT_TRUE(log.ProvQuery(BackwardPath(), query, options, &cold).ok());
  ASSERT_TRUE(log.ProvQuery(BackwardPath(), query, options, &warm).ok());

  ASSERT_EQ(warm.hops.size(), static_cast<size_t>(kSteps));
  for (const HopProfile& hp : warm.hops) {
    EXPECT_TRUE(hp.from_store);
    EXPECT_TRUE(hp.cache_hit);
    EXPECT_EQ(hp.resolve_us, 0);  // no resolve paid on a hit
    EXPECT_GT(hp.segment_bytes, 0);  // identity fields still filled
  }
  // Matches the store-level counters: every warm hop was a hit.
  const LogStoreStats stats = log.log_store()->stats();
  EXPECT_EQ(stats.cache_hits, kSteps);
  EXPECT_EQ(stats.cache_misses, kSteps);
  EXPECT_EQ(stats.segments_borrowed, kSteps);
  EXPECT_EQ(stats.tables_materialized, 0);
  EXPECT_EQ(stats.rows_materialized, 0);
}

TEST(ProfileTest, BatchProfilesFanOutPerEntry) {
  const std::string path = SaveChainStore("profile_batch.dsl");
  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DSLog log = std::move(opened).value();

  std::vector<std::string> forward_path;
  for (int i = 0; i <= kSteps; ++i)
    forward_path.push_back("a" + std::to_string(i));
  std::vector<std::vector<std::string>> paths = {
      BackwardPath(), forward_path, {"a2", "a1"}};
  std::vector<BoxTable> queries = {BoxTable::FromBox({{0, kN - 1}}),
                                   BoxTable::FromCells(1, {3, 17}),
                                   BoxTable::FromBox({{8, 15}})};

  QueryOptions options;
  options.profile = true;
  options.num_threads = 4;  // profiles must land in their own slots
  std::vector<QueryProfile> profiles;
  auto results = log.ProvQueryBatch(paths, queries, options, &profiles);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results.value().size(), paths.size());
  ASSERT_EQ(profiles.size(), paths.size());

  for (size_t i = 0; i < paths.size(); ++i) {
    ASSERT_EQ(profiles[i].hops.size(), paths[i].size() - 1) << "entry " << i;
    EXPECT_EQ(profiles[i].result_boxes, results.value()[i].num_boxes());
    // Entry i's own ProvQuery must agree with its batch slot.
    auto solo = log.ProvQuery(paths[i], queries[i]);
    ASSERT_TRUE(solo.ok());
    ExpectSameBoxes(results.value()[i], solo.value());
  }
  // Direction per entry: backward, forward, backward.
  EXPECT_FALSE(profiles[0].hops[0].forward);
  EXPECT_TRUE(profiles[1].hops[0].forward);
  EXPECT_FALSE(profiles[2].hops[0].forward);
  EXPECT_EQ(profiles[2].hops[0].in_arr, "a1");
  EXPECT_EQ(profiles[2].hops[0].out_arr, "a2");
}

TEST(ProfileTest, HandBuiltHopsGetJoinFieldsOnly) {
  CompressedTable table({256}, {256});
  CompressedRow row;
  for (int64_t r = 0; r < 200; ++r) {
    row.out = {{r, r + 4}};
    row.in = {InputCell::Absolute({r, r + 1})};
    table.AddRow(row);
  }
  std::vector<QueryHop> hops;
  hops.emplace_back(&table, /*forward=*/false);
  hops.emplace_back(&table, /*forward=*/true);
  BoxTable query(1);
  const Interval box[1] = {{10, 40}};
  query.AddBox(box);

  QueryOptions options;
  options.profile = true;
  QueryProfile profile;
  BoxTable result = InSituQuery(hops, query, options, &profile);
  BoxTable plain = InSituQuery(hops, query);
  ExpectSameBoxes(result, plain);

  ASSERT_EQ(profile.hops.size(), 2u);
  // No DSLog layer involved: edge identity and storage fields stay empty.
  EXPECT_TRUE(profile.hops[0].in_arr.empty());
  EXPECT_FALSE(profile.hops[0].from_store);
  EXPECT_FALSE(profile.hops[0].forward);
  EXPECT_TRUE(profile.hops[1].forward);
  for (const HopProfile& hp : profile.hops) {
    EXPECT_EQ(hp.table_rows, 200);
    EXPECT_GE(hp.probes, 1);
    EXPECT_EQ(hp.path_probes[0] + hp.path_probes[1] + hp.path_probes[2],
              hp.probes);
    EXPECT_GT(hp.rows_scanned, 0);
  }
  EXPECT_EQ(profile.hops[0].probes, query.num_boxes());
  EXPECT_EQ(profile.hops[1].probes, profile.hops[0].result_boxes);
}

TEST(ProfileTest, PlannerEstimatesLandInTheProfile) {
  // 4096 rows: big enough to clear the tiny-table full-scan shortcut, so
  // the planner runs its cost model and the estimates reach the profile.
  CompressedTable table({32768}, {32768});
  CompressedRow row;
  for (int64_t r = 0; r < 4096; ++r) {
    row.out = {{4 * r, 4 * r + 3}};
    row.in = {InputCell::Absolute({r, r})};
    table.AddRow(row);
  }
  std::vector<QueryHop> hops;
  hops.emplace_back(&table, /*forward=*/false);
  BoxTable query(1);
  const Interval box[1] = {{100, 499}};  // overlaps rows 25..124 exactly
  query.AddBox(box);

  QueryOptions options;
  options.profile = true;
  QueryProfile profile;
  BoxTable result = InSituQuery(hops, query, options, &profile);
  EXPECT_GT(result.num_boxes(), 0);

  const HopProfile& hp = profile.hops.at(0);
  EXPECT_EQ(hp.probes, 1);
  EXPECT_EQ(hp.rows_scanned, 100);
  EXPECT_GT(hp.est_rows, 0.0);
  // The model's uniform-spread estimate should land near the truth on
  // this perfectly uniform table.
  EXPECT_GT(hp.est_rows, hp.rows_scanned * 0.25);
  EXPECT_LT(hp.est_rows, hp.rows_scanned * 4.0);
  // All three paths were costed; the chosen one is recorded.
  EXPECT_GT(hp.est_cost_ns[0] + hp.est_cost_ns[1] + hp.est_cost_ns[2], 0.0);
  EXPECT_EQ(hp.path_probes[0] + hp.path_probes[1] + hp.path_probes[2], 1);
}

TEST(ProfileTest, JsonAndTextExports) {
  const std::string path = SaveChainStore("profile_export.dsl");
  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DSLog log = std::move(opened).value();

  QueryOptions options;
  options.profile = true;
  QueryProfile profile;
  auto result = log.ProvQuery(BackwardPath(), BoxTable::FromBox({{0, kN - 1}}),
                              options, &profile);
  ASSERT_TRUE(result.ok());

  const std::string json = profile.ToJson();
  for (const char* field :
       {"\"simd_isa\"", "\"num_threads\"", "\"wall_ms\"", "\"result_boxes\"",
        "\"hops\"", "\"in_arr\"", "\"op_name\"", "\"cache_hit\"",
        "\"borrowed\"", "\"segment_bytes\"", "\"rows_scanned\"",
        "\"est_rows\"", "\"path_probes\"", "\"index_probe\"", "\"full_scan\"",
        "\"step_0\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << "missing " << field;
  }
  // Well-formed enough to balance braces (cheap structural check; CI
  // validates the trace JSON against a real parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  const std::string text = profile.ToText();
  EXPECT_NE(text.find("hop 0"), std::string::npos);
  EXPECT_NE(text.find("hop 2"), std::string::npos);
  EXPECT_NE(text.find("a2 -> a3"), std::string::npos);
  EXPECT_NE(text.find("borrowed"), std::string::npos);
}

}  // namespace
}  // namespace dslog
