// Wire-layer proof: every payload codec round-trips exactly and fails
// cleanly on every strict prefix; the FrameDecoder survives arbitrary
// chunkings and rejects forged length prefixes before buffering; and a
// live DslogServer answers adversarial byte streams — truncated frames,
// oversized lengths, garbage opcodes, mid-frame disconnects, slow-loris
// stalls, seeded fuzz — with typed errors or clean teardown, never a
// crash, and stays serviceable throughout.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "compress/varint.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/wire.h"

namespace dslog {
namespace net {
namespace {

// ------------------------------------------------------ codec round trips --

TEST(WireCodecTest, StringRoundTrip) {
  for (const std::string& s :
       {std::string(), std::string("abc"), std::string("nul\0nul", 7),
        std::string(5000, 'x')}) {
    std::string buf;
    PutString(&buf, s);
    size_t pos = 0;
    std::string out;
    ASSERT_TRUE(GetString(buf, &pos, &out));
    EXPECT_EQ(out, s);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(WireCodecTest, StringRejectsForgedLength) {
  // A length prefix advertising more bytes than exist must fail, not
  // allocate.
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf += "abc";
  size_t pos = 0;
  std::string out;
  EXPECT_FALSE(GetString(buf, &pos, &out));
}

TEST(WireCodecTest, BoolRoundTrip) {
  std::string buf;
  PutBool(&buf, true);
  PutBool(&buf, false);
  size_t pos = 0;
  bool a = false, b = true;
  ASSERT_TRUE(GetBool(buf, &pos, &a));
  ASSERT_TRUE(GetBool(buf, &pos, &b));
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
  EXPECT_FALSE(GetBool(buf, &pos, &a)) << "past the end";
}

TEST(WireCodecTest, StatusRoundTripAllCodes) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kCorruption,
        StatusCode::kIOError, StatusCode::kNotSupported,
        StatusCode::kOutOfRange, StatusCode::kInternal, StatusCode::kCancelled,
        StatusCode::kUnavailable}) {
    const Status in = Status::FromCode(code, "m");
    std::string buf;
    PutStatus(&buf, in);
    size_t pos = 0;
    Status out = Status::OK();
    ASSERT_TRUE(GetStatus(buf, &pos, &out));
    EXPECT_EQ(out.code(), code);
    if (code != StatusCode::kOk) {
      EXPECT_EQ(out.message(), "m");
    }
  }
}

TEST(WireCodecTest, StatusUnknownCodeDecodesAsInternal) {
  std::string buf;
  buf.push_back(static_cast<char>(200));
  PutString(&buf, "future code");
  size_t pos = 0;
  Status out = Status::OK();
  ASSERT_TRUE(GetStatus(buf, &pos, &out));
  EXPECT_EQ(out.code(), StatusCode::kInternal);
}

TEST(WireCodecTest, Int64VectorRoundTrip) {
  for (const std::vector<int64_t>& v :
       {std::vector<int64_t>{}, std::vector<int64_t>{0},
        std::vector<int64_t>{-1, 1, -(1ll << 40), 1ll << 40, INT64_MIN,
                             INT64_MAX}}) {
    std::string buf;
    PutInt64Vector(&buf, v);
    size_t pos = 0;
    std::vector<int64_t> out;
    ASSERT_TRUE(GetInt64Vector(buf, &pos, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

BoxTable MakeBoxes() {
  BoxTable t(2);
  t.AddBox(std::vector<Interval>{{0, 3}, {5, 5}});
  t.AddBox(std::vector<Interval>{{-7, -2}, {0, 1000000}});
  return t;
}

void ExpectSameBoxes(const BoxTable& a, const BoxTable& b) {
  ASSERT_EQ(a.ndim(), b.ndim());
  ASSERT_EQ(a.num_boxes(), b.num_boxes());
  for (int64_t i = 0; i < a.num_boxes(); ++i) {
    auto ba = a.Box(i), bb = b.Box(i);
    for (int d = 0; d < a.ndim(); ++d) {
      EXPECT_EQ(ba[d].lo, bb[d].lo);
      EXPECT_EQ(ba[d].hi, bb[d].hi);
    }
  }
}

TEST(WireCodecTest, BoxTableRoundTripIsExact) {
  for (const BoxTable& t : {BoxTable(), BoxTable(3), MakeBoxes()}) {
    std::string buf;
    PutBoxTable(&buf, t);
    size_t pos = 0;
    BoxTable out;
    ASSERT_TRUE(GetBoxTable(buf, &pos, &out));
    ExpectSameBoxes(t, out);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(WireCodecTest, BoxTableRejectsForgedBoxCount) {
  std::string buf;
  PutVarint64(&buf, 2);          // ndim
  PutVarint64(&buf, 1ull << 50);  // boxes: absurd vs bytes present
  PutVarintSigned(&buf, 1);
  size_t pos = 0;
  BoxTable out;
  EXPECT_FALSE(GetBoxTable(buf, &pos, &out));
}

TEST(WireCodecTest, BoxTableRejectsZeroDimForgedBoxCount) {
  // ndim==0 makes each box zero bytes, so the byte bound alone cannot
  // catch a forged count — decode must reject it outright instead of
  // spinning ~2^61 iterations (a legit 0-dim table always encodes 0).
  std::string buf;
  PutVarint64(&buf, 0);           // ndim
  PutVarint64(&buf, 1ull << 61);  // boxes
  size_t pos = 0;
  BoxTable out;
  EXPECT_FALSE(GetBoxTable(buf, &pos, &out));
}

LineageRelation MakeRelation() {
  LineageRelation rel(1, 2);
  rel.set_shapes({4}, {4, 3});
  const int64_t out0[] = {1}, in0[] = {0, 2};
  const int64_t out1[] = {3}, in1[] = {2, 1};
  rel.Add(out0, in0);
  rel.Add(out1, in1);
  return rel;
}

TEST(WireCodecTest, LineageRelationRoundTrip) {
  const LineageRelation rel = MakeRelation();
  std::string buf;
  PutLineageRelation(&buf, rel);
  size_t pos = 0;
  LineageRelation out;
  ASSERT_TRUE(GetLineageRelation(buf, &pos, &out));
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(out.out_ndim(), rel.out_ndim());
  EXPECT_EQ(out.in_ndim(), rel.in_ndim());
  EXPECT_EQ(out.out_shape(), rel.out_shape());
  EXPECT_EQ(out.in_shape(), rel.in_shape());
  EXPECT_EQ(out.flat(), rel.flat());
}

TEST(WireCodecTest, LineageRelationRejectsZeroArityForgedRowCount) {
  // Same hole as the 0-dim BoxTable: arity 0 rows are zero bytes each.
  std::string buf;
  PutVarint64(&buf, 0);                     // out_ndim
  PutVarint64(&buf, 0);                     // in_ndim
  PutInt64Vector(&buf, {});                 // out_shape
  PutInt64Vector(&buf, {});                 // in_shape
  PutVarint64(&buf, 1ull << 61);            // rows
  size_t pos = 0;
  LineageRelation out;
  EXPECT_FALSE(GetLineageRelation(buf, &pos, &out));
}

TEST(WireCodecTest, ZeroArityRelationWithZeroRowsRoundTrips) {
  const LineageRelation rel(0, 0);
  std::string buf;
  PutLineageRelation(&buf, rel);
  size_t pos = 0;
  LineageRelation out;
  ASSERT_TRUE(GetLineageRelation(buf, &pos, &out));
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(out.num_rows(), 0);
}

TEST(WireCodecTest, QueryOptionsRoundTrip) {
  QueryOptions in;
  in.merge_between_hops = false;
  in.num_threads = 7;
  in.join_path = JoinPath::kSortedSweep;
  in.profile = true;
  std::string buf;
  PutQueryOptions(&buf, in);
  size_t pos = 0;
  QueryOptions out;
  ASSERT_TRUE(GetQueryOptions(buf, &pos, &out));
  EXPECT_EQ(out.merge_between_hops, in.merge_between_hops);
  EXPECT_EQ(out.num_threads, in.num_threads);
  EXPECT_EQ(out.join_path, in.join_path);
  EXPECT_EQ(out.profile, in.profile);
  EXPECT_EQ(out.cancel, nullptr) << "cancel never travels";
}

TEST(WireCodecTest, QueryOptionsRejectsHostileValues) {
  {  // zero threads
    std::string buf;
    PutBool(&buf, true);
    PutVarint64(&buf, 0);
    buf.push_back(0);
    PutBool(&buf, false);
    size_t pos = 0;
    QueryOptions out;
    EXPECT_FALSE(GetQueryOptions(buf, &pos, &out));
  }
  {  // absurd thread count
    std::string buf;
    PutBool(&buf, true);
    PutVarint64(&buf, 1 << 20);
    buf.push_back(0);
    PutBool(&buf, false);
    size_t pos = 0;
    QueryOptions out;
    EXPECT_FALSE(GetQueryOptions(buf, &pos, &out));
  }
  {  // join path beyond kFullScan
    std::string buf;
    PutBool(&buf, true);
    PutVarint64(&buf, 1);
    buf.push_back(17);
    PutBool(&buf, false);
    size_t pos = 0;
    QueryOptions out;
    EXPECT_FALSE(GetQueryOptions(buf, &pos, &out));
  }
}

// -------------------------------------------------- protocol round trips --

OperationRegistration MakeRegistration() {
  OperationRegistration reg;
  reg.op_name = "sum";
  reg.in_arrs = {"A", "A2"};
  reg.out_arr = "B";
  reg.captured = {MakeRelation(), MakeRelation()};
  reg.args.SetInt("axis", 1).SetDouble("scale", 2.5).SetIntList("perm", {2, 0, 1});
  reg.content_hash = 0xDEADBEEFCAFEF00Dull;
  reg.reuse = false;
  return reg;
}

void ExpectSameRegistration(const OperationRegistration& a,
                            const OperationRegistration& b) {
  EXPECT_EQ(a.op_name, b.op_name);
  EXPECT_EQ(a.in_arrs, b.in_arrs);
  EXPECT_EQ(a.out_arr, b.out_arr);
  ASSERT_EQ(a.captured.size(), b.captured.size());
  for (size_t i = 0; i < a.captured.size(); ++i) {
    EXPECT_EQ(a.captured[i].flat(), b.captured[i].flat());
    EXPECT_EQ(a.captured[i].out_shape(), b.captured[i].out_shape());
    EXPECT_EQ(a.captured[i].in_shape(), b.captured[i].in_shape());
  }
  EXPECT_EQ(a.args.Hash(), b.args.Hash());
  EXPECT_EQ(a.content_hash, b.content_hash);
  EXPECT_EQ(a.reuse, b.reuse);
}

TEST(ProtocolTest, HelloRoundTrip) {
  HelloRequest req;
  req.client_name = "tester";
  HelloRequest dreq;
  ASSERT_TRUE(HelloRequest::Decode(req.Encode(), &dreq));
  EXPECT_EQ(dreq.magic, kMagic);
  EXPECT_EQ(dreq.version, kProtocolVersion);
  EXPECT_EQ(dreq.client_name, "tester");

  HelloResponse resp;
  resp.server_name = "srv";
  resp.max_frame_bytes = 123456;
  HelloResponse dresp;
  ASSERT_TRUE(HelloResponse::Decode(resp.Encode(), &dresp));
  EXPECT_EQ(dresp.version, kProtocolVersion);
  EXPECT_EQ(dresp.server_name, "srv");
  EXPECT_EQ(dresp.max_frame_bytes, 123456);
}

TEST(ProtocolTest, OpenStoreAndDefineArrayRoundTrip) {
  OpenStoreRequest os;
  os.store = "tenant-7";
  os.create = false;
  OpenStoreRequest dos;
  ASSERT_TRUE(OpenStoreRequest::Decode(os.Encode(), &dos));
  EXPECT_EQ(dos.store, "tenant-7");
  EXPECT_FALSE(dos.create);

  DefineArrayRequest da;
  da.name = "A";
  da.shape = {3, 2, 9};
  DefineArrayRequest dda;
  ASSERT_TRUE(DefineArrayRequest::Decode(da.Encode(), &dda));
  EXPECT_EQ(dda.name, "A");
  EXPECT_EQ(dda.shape, (std::vector<int64_t>{3, 2, 9}));
}

TEST(ProtocolTest, ReserveIdsRoundTrip) {
  ReserveIdsRequest req;
  req.count = 32;
  ReserveIdsRequest dreq;
  ASSERT_TRUE(ReserveIdsRequest::Decode(req.Encode(), &dreq));
  EXPECT_EQ(dreq.count, 32u);

  ReserveIdsResponse resp;
  resp.base = 1ull << 33;
  resp.count = 32;
  ReserveIdsResponse dresp;
  ASSERT_TRUE(ReserveIdsResponse::Decode(resp.Encode(), &dresp));
  EXPECT_EQ(dresp.base, 1ull << 33);
  EXPECT_EQ(dresp.count, 32u);
}

TEST(ProtocolTest, IngestBatchRoundTrip) {
  IngestBatchRequest req;
  req.ops.push_back({7, MakeRegistration()});
  req.ops.push_back({8, MakeRegistration()});
  IngestBatchRequest dreq;
  ASSERT_TRUE(IngestBatchRequest::Decode(req.Encode(), &dreq));
  ASSERT_EQ(dreq.ops.size(), 2u);
  EXPECT_EQ(dreq.ops[0].op_id, 7u);
  EXPECT_EQ(dreq.ops[1].op_id, 8u);
  ExpectSameRegistration(req.ops[0].reg, dreq.ops[0].reg);
  ExpectSameRegistration(req.ops[1].reg, dreq.ops[1].reg);

  IngestBatchResponse resp;
  resp.staged = 42;
  IngestBatchResponse dresp;
  ASSERT_TRUE(IngestBatchResponse::Decode(resp.Encode(), &dresp));
  EXPECT_EQ(dresp.staged, 42);
}

TEST(ProtocolTest, IngestBatchRejectsForgedOpCountWithoutBallooning) {
  // A count that passes the byte bound but exceeds the ops present must
  // fail on the first missing op, with allocation tracking decoded bytes
  // (not count * sizeof(WireOperation)).
  std::string buf;
  PutVarint64(&buf, 1000);
  buf.append(1000, '\0');  // bytes exist, but they are not 1000 ops
  IngestBatchRequest out;
  EXPECT_FALSE(IngestBatchRequest::Decode(buf, &out));
  EXPECT_LT(out.ops.size(), 1000u)
      << "allocation must track decoded bytes, not the forged count";
}

TEST(ProtocolTest, DrainResponseRoundTrip) {
  DrainResponse resp;
  for (int bits = 0; bits < 8; ++bits) {
    ReuseOutcome o;
    o.base_hit = bits & 1;
    o.dim_hit = bits & 2;
    o.gen_hit = bits & 4;
    resp.outcomes.push_back(o);
  }
  DrainResponse dresp;
  ASSERT_TRUE(DrainResponse::Decode(resp.Encode(), &dresp));
  ASSERT_EQ(dresp.outcomes.size(), 8u);
  for (int bits = 0; bits < 8; ++bits) {
    EXPECT_EQ(dresp.outcomes[bits].base_hit, bool(bits & 1));
    EXPECT_EQ(dresp.outcomes[bits].dim_hit, bool(bits & 2));
    EXPECT_EQ(dresp.outcomes[bits].gen_hit, bool(bits & 4));
  }
}

TEST(ProtocolTest, DrainResponseRejectsUnknownOutcomeBits) {
  std::string buf;
  PutVarint64(&buf, 1);
  buf.push_back(static_cast<char>(0x80));
  DrainResponse out;
  EXPECT_FALSE(DrainResponse::Decode(buf, &out));
}

TEST(ProtocolTest, QueryRoundTrip) {
  QueryRequest req;
  req.path = {"A", "B", "C"};
  req.query = MakeBoxes();
  req.options.num_threads = 4;
  req.options.profile = true;
  QueryRequest dreq;
  ASSERT_TRUE(QueryRequest::Decode(req.Encode(), &dreq));
  EXPECT_EQ(dreq.path, req.path);
  ExpectSameBoxes(req.query, dreq.query);
  EXPECT_EQ(dreq.options.num_threads, 4);
  EXPECT_TRUE(dreq.options.profile);

  QueryResponse resp;
  resp.result = MakeBoxes();
  resp.profile_json = "{\"hops\":[]}";
  QueryResponse dresp;
  ASSERT_TRUE(QueryResponse::Decode(resp.Encode(), &dresp));
  ExpectSameBoxes(resp.result, dresp.result);
  EXPECT_EQ(dresp.profile_json, resp.profile_json);
}

TEST(ProtocolTest, StatusPayloadRoundTrip) {
  Status decoded = DecodeStatusPayload(
      EncodeStatusPayload(Status::Unavailable("server overloaded")));
  EXPECT_EQ(decoded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded.message(), "server overloaded");
  EXPECT_EQ(DecodeStatusPayload("").code(), StatusCode::kInternal);
}

// Every strict prefix of every message encoding must fail to decode —
// never crash, never succeed on partial data — and every encoding must
// reject one trailing byte (strictness).
template <typename T>
void CheckPrefixRejection(const T& msg) {
  const std::string full = msg.Encode();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    T out;
    EXPECT_FALSE(T::Decode(std::string_view(full).substr(0, cut), &out))
        << "prefix of " << cut << "/" << full.size() << " bytes decoded";
  }
  T out;
  EXPECT_TRUE(T::Decode(full, &out));
  EXPECT_FALSE(T::Decode(full + std::string(1, '\0'), &out))
      << "trailing byte accepted";
}

TEST(ProtocolTest, EveryMessageRejectsTruncationAndTrailingBytes) {
  HelloRequest hello;
  hello.client_name = "c";
  CheckPrefixRejection(hello);
  HelloResponse hello_ok;
  hello_ok.server_name = "s";
  CheckPrefixRejection(hello_ok);
  OpenStoreRequest open;
  open.store = "t";
  CheckPrefixRejection(open);
  DefineArrayRequest define;
  define.name = "A";
  define.shape = {3, 2};
  CheckPrefixRejection(define);
  ReserveIdsRequest reserve;
  reserve.count = 5;
  CheckPrefixRejection(reserve);
  ReserveIdsResponse reserved;
  reserved.base = 100;
  reserved.count = 5;
  CheckPrefixRejection(reserved);
  IngestBatchRequest ingest;
  ingest.ops.push_back({1, MakeRegistration()});
  CheckPrefixRejection(ingest);
  IngestBatchResponse ingested;
  ingested.staged = 3;
  CheckPrefixRejection(ingested);
  DrainResponse drained;
  drained.outcomes.resize(2);
  CheckPrefixRejection(drained);
  QueryRequest query;
  query.path = {"A", "B"};
  query.query = MakeBoxes();
  CheckPrefixRejection(query);
  QueryResponse answered;
  answered.result = MakeBoxes();
  CheckPrefixRejection(answered);
  StatsResponse stats;
  stats.json = "{}";
  CheckPrefixRejection(stats);
}

// ------------------------------------------------------- frame decoding --

TEST(FrameDecoderTest, ByteByByteDeliveryMatchesBulk) {
  std::string stream;
  AppendFrame(&stream, Opcode::kQuery, 42, "payload-bytes");
  AppendFrame(&stream, Opcode::kStats, 43, "");

  FrameDecoder bulk;
  bulk.Append(stream);
  Frame a, b;
  ASSERT_TRUE(bulk.Next(&a).value());
  ASSERT_TRUE(bulk.Next(&b).value());
  EXPECT_EQ(bulk.buffered(), 0);

  FrameDecoder drip;
  std::vector<Frame> got;
  for (char c : stream) {
    drip.Append(std::string_view(&c, 1));
    Frame f;
    auto r = drip.Next(&f);
    ASSERT_TRUE(r.ok());
    if (r.value()) got.push_back(std::move(f));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].opcode, a.opcode);
  EXPECT_EQ(got[0].request_id, 42u);
  EXPECT_EQ(got[0].payload, "payload-bytes");
  EXPECT_EQ(got[1].opcode, b.opcode);
  EXPECT_EQ(got[1].request_id, 43u);
  EXPECT_TRUE(got[1].payload.empty());
}

TEST(FrameDecoderTest, PartialFrameReportsBuffered) {
  std::string stream;
  AppendFrame(&stream, Opcode::kHello, 1, "abcdef");
  FrameDecoder d;
  d.Append(std::string_view(stream).substr(0, 7));
  Frame f;
  ASSERT_FALSE(d.Next(&f).value());
  EXPECT_GT(d.buffered(), 0) << "mid-frame bytes must be visible";
  d.Append(std::string_view(stream).substr(7));
  ASSERT_TRUE(d.Next(&f).value());
  EXPECT_EQ(d.buffered(), 0);
}

TEST(FrameDecoderTest, OversizedLengthFailsBeforeBuffering) {
  // Only the 4 length bytes arrive; the decoder must reject immediately
  // instead of waiting for (or allocating) the advertised 4 GB.
  std::string lead;
  PutFixed32(&lead, 0xFFFFFFFFu);
  FrameDecoder d(/*max_frame_bytes=*/1 << 20);
  d.Append(lead);
  Frame f;
  auto r = d.Next(&f);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameDecoderTest, LengthShorterThanHeaderIsCorruption) {
  std::string lead;
  PutFixed32(&lead, kFrameOverhead - 1);
  FrameDecoder d;
  d.Append(lead);
  Frame f;
  auto r = d.Next(&f);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(FrameDecoderTest, LargestLegalPayloadRoundTrips) {
  FrameDecoder d(/*max_frame_bytes=*/4096);
  std::string stream;
  AppendFrame(&stream, Opcode::kIngestBatch, 9, std::string(4096, 'z'));
  d.Append(stream);
  Frame f;
  ASSERT_TRUE(d.Next(&f).value());
  EXPECT_EQ(f.payload.size(), 4096u);
}

// ------------------------------------------------- adversarial, live TCP --

// A raw socket speaking whatever bytes a test wants — the hostile client.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() { Close(); }

  bool ok() const { return fd_ >= 0; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Send(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendFrame(Opcode op, uint32_t id, std::string_view payload) {
    std::string buf;
    AppendFrame(&buf, op, id, payload);
    return Send(buf);
  }

  /// Reads until one frame decodes, EOF, or timeout. nullopt = EOF/timeout.
  std::optional<Frame> ReadFrame() {
    Frame f;
    for (;;) {
      auto r = decoder_.Next(&f);
      if (!r.ok()) return std::nullopt;
      if (r.value()) return f;
      char buf[4096];
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return std::nullopt;
      decoder_.Append(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

  /// True once the server closes its end (recv returns 0) within ~5 s.
  bool WaitForEof() {
    for (;;) {
      char buf[4096];
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;  // timeout or error: not an EOF
    }
  }

  /// Runs the Hello handshake; true on kHelloOk.
  bool Hello() {
    HelloRequest req;
    req.client_name = "raw";
    if (!SendFrame(Opcode::kHello, 1, req.Encode())) return false;
    auto f = ReadFrame();
    return f && f->opcode == static_cast<uint8_t>(Opcode::kHelloOk);
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

std::unique_ptr<DslogServer> StartServer(ServerOptions options = {}) {
  options.worker_threads = 2;
  auto server = std::make_unique<DslogServer>(options);
  EXPECT_TRUE(server->Start().ok());
  return server;
}

// The server is still serviceable: a well-behaved session completes a
// full handshake + stats round trip.
void ExpectServiceable(const DslogServer& server) {
  RawConn probe(server.port());
  ASSERT_TRUE(probe.ok());
  ASSERT_TRUE(probe.Hello());
  ASSERT_TRUE(probe.SendFrame(Opcode::kStats, 2, ""));
  auto f = probe.ReadFrame();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->opcode, static_cast<uint8_t>(Opcode::kStatsOk));
}

void AwaitNoSessions(const DslogServer& server) {
  for (int i = 0; i < 500 && server.active_sessions() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(server.active_sessions(), 0);
}

TEST(AdversarialWireTest, OversizedLengthPrefixGetsTypedErrorThenClose) {
  ServerOptions options;
  options.max_frame_bytes = 1 << 16;
  auto server = StartServer(options);
  RawConn conn(server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Hello());
  std::string lead;
  PutFixed32(&lead, 0xFFFFFFFFu);
  ASSERT_TRUE(conn.Send(lead));
  auto f = conn.ReadFrame();
  ASSERT_TRUE(f.has_value()) << "expected a typed parting error";
  EXPECT_EQ(f->opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(DecodeStatusPayload(f->payload).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.WaitForEof());
  ExpectServiceable(*server);
}

TEST(AdversarialWireTest, LengthShorterThanHeaderGetsTypedErrorThenClose) {
  auto server = StartServer();
  RawConn conn(server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Hello());
  std::string lead;
  PutFixed32(&lead, 2);
  ASSERT_TRUE(conn.Send(lead));
  auto f = conn.ReadFrame();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(DecodeStatusPayload(f->payload).code(), StatusCode::kCorruption);
  EXPECT_TRUE(conn.WaitForEof());
  ExpectServiceable(*server);
}

TEST(AdversarialWireTest, GarbageOpcodeAnswersErrorAndSessionSurvives) {
  auto server = StartServer();
  RawConn conn(server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Hello());
  ASSERT_TRUE(conn.SendFrame(static_cast<Opcode>(0x55), 7, "junk"));
  auto err = conn.ReadFrame();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(err->request_id, 7u);
  // Framing was intact, so the session must still work.
  ASSERT_TRUE(conn.SendFrame(Opcode::kStats, 8, ""));
  auto ok = conn.ReadFrame();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->opcode, static_cast<uint8_t>(Opcode::kStatsOk));
  EXPECT_EQ(ok->request_id, 8u);
}

TEST(AdversarialWireTest, MalformedPayloadAnswersTypedError) {
  auto server = StartServer();
  RawConn conn(server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Hello());
  // A Query frame whose payload is garbage: typed error, session survives.
  ASSERT_TRUE(conn.SendFrame(Opcode::kQuery, 3, "\x01\x02\x03"));
  auto err = conn.ReadFrame();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->opcode, static_cast<uint8_t>(Opcode::kError));
  ASSERT_TRUE(conn.SendFrame(Opcode::kStats, 4, ""));
  auto ok = conn.ReadFrame();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->opcode, static_cast<uint8_t>(Opcode::kStatsOk));
}

TEST(AdversarialWireTest, FirstFrameMustBeHello) {
  auto server = StartServer();
  RawConn conn(server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.SendFrame(Opcode::kStats, 1, ""));
  auto f = conn.ReadFrame();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_TRUE(conn.WaitForEof());
}

TEST(AdversarialWireTest, BadMagicAndWrongVersionAreRejected) {
  auto server = StartServer();
  {
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    HelloRequest req;
    req.magic = 0x12345678;
    ASSERT_TRUE(conn.SendFrame(Opcode::kHello, 1, req.Encode()));
    auto f = conn.ReadFrame();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->opcode, static_cast<uint8_t>(Opcode::kError));
    EXPECT_TRUE(conn.WaitForEof());
  }
  {
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    HelloRequest req;
    req.version = 99;
    ASSERT_TRUE(conn.SendFrame(Opcode::kHello, 1, req.Encode()));
    auto f = conn.ReadFrame();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->opcode, static_cast<uint8_t>(Opcode::kError));
    EXPECT_EQ(DecodeStatusPayload(f->payload).code(),
              StatusCode::kNotSupported);
    EXPECT_TRUE(conn.WaitForEof());
  }
  ExpectServiceable(*server);
}

TEST(AdversarialWireTest, MidFrameDisconnectLeavesServerServiceable) {
  auto server = StartServer();
  for (int i = 0; i < 8; ++i) {
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.Hello());
    std::string frame;
    AppendFrame(&frame, Opcode::kIngestBatch, 2, std::string(1000, 'x'));
    // Ship only half, then vanish.
    ASSERT_TRUE(conn.Send(std::string_view(frame).substr(0, frame.size() / 2)));
    conn.Close();
  }
  ExpectServiceable(*server);
  AwaitNoSessions(*server);
}

TEST(AdversarialWireTest, SlowLorisIsTornDownButQuietIdleIsNot) {
  ServerOptions options;
  options.idle_timeout_ms = 150;
  auto server = StartServer(options);

  // A session idling *between* complete requests is healthy and must
  // survive far past the timeout.
  RawConn quiet(server->port());
  ASSERT_TRUE(quiet.ok());
  ASSERT_TRUE(quiet.Hello());

  // Mid-frame staller: ships a length prefix then trickles nothing.
  RawConn loris(server->port());
  ASSERT_TRUE(loris.ok());
  ASSERT_TRUE(loris.Hello());
  std::string frame;
  AppendFrame(&frame, Opcode::kStats, 2, "");
  ASSERT_TRUE(loris.Send(std::string_view(frame).substr(0, 3)));
  EXPECT_TRUE(loris.WaitForEof()) << "mid-frame stall must be torn down";

  // Pre-Hello silence is also an unmet obligation.
  RawConn mute(server->port());
  ASSERT_TRUE(mute.ok());
  EXPECT_TRUE(mute.WaitForEof()) << "silent pre-Hello session must be torn down";

  // The quiet session outlived several timeout windows; it must still work.
  ASSERT_TRUE(quiet.SendFrame(Opcode::kStats, 2, ""));
  auto f = quiet.ReadFrame();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->opcode, static_cast<uint8_t>(Opcode::kStatsOk));
}

TEST(AdversarialWireTest, SeededFuzzNeverKillsTheServer) {
  ServerOptions options;
  options.max_frame_bytes = 64 << 10;
  options.idle_timeout_ms = 200;
  auto server = StartServer(options);
  Rng rng(20240808);
  for (int conn_idx = 0; conn_idx < 24; ++conn_idx) {
    RawConn conn(server->port());
    ASSERT_TRUE(conn.ok());
    if (rng.Bernoulli(0.5)) conn.Hello();
    std::string junk;
    const int chunks = 1 + static_cast<int>(rng.Uniform(4));
    for (int c = 0; c < chunks; ++c) {
      const size_t len = 1 + rng.Uniform(512);
      for (size_t i = 0; i < len; ++i)
        junk.push_back(static_cast<char>(rng.Uniform(256)));
    }
    conn.Send(junk);
    if (rng.Bernoulli(0.5)) {
      conn.Close();  // vanish mid-garbage
    } else {
      conn.ReadFrame();  // collect whatever typed error comes back
    }
  }
  ExpectServiceable(*server);
  AwaitNoSessions(*server);
}

TEST(AdversarialWireTest, ZeroDimForgedBoxCountQueryAnswersPromptly) {
  // The forged payload that used to pin a worker thread forever: a Query
  // whose BoxTable claims ndim=0 with ~2^61 boxes. Decode must reject it
  // immediately and answer a typed error.
  auto server = StartServer();
  RawConn conn(server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Hello());
  std::string payload;
  PutVarint64(&payload, 0);           // empty path
  PutVarint64(&payload, 0);           // BoxTable ndim
  PutVarint64(&payload, 1ull << 61);  // BoxTable boxes
  ASSERT_TRUE(conn.SendFrame(Opcode::kQuery, 5, payload));
  auto err = conn.ReadFrame();  // RawConn's 5 s recv timeout bounds this
  ASSERT_TRUE(err.has_value()) << "decode spun instead of rejecting";
  EXPECT_EQ(err->opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(err->request_id, 5u);
  ExpectServiceable(*server);
}

TEST(AdversarialWireTest, OversizedResponseAnswersTypedErrorNotCorruption) {
  // With a tiny frame cap the StatsOk JSON cannot be framed; the server
  // must answer a (small) typed error rather than emit a frame the
  // client's decoder would treat as an unsalvageable stream.
  ServerOptions options;
  options.max_frame_bytes = 128;  // the typed error fits, StatsOk does not
  auto server = StartServer(options);
  RawConn conn(server->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Hello());
  ASSERT_TRUE(conn.SendFrame(Opcode::kStats, 3, ""));
  auto f = conn.ReadFrame();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(f->request_id, 3u);
  EXPECT_EQ(DecodeStatusPayload(f->payload).code(), StatusCode::kOutOfRange);
  // Framing stayed intact; the session still works for small responses.
  ASSERT_TRUE(conn.SendFrame(Opcode::kBye, 4, ""));
  auto bye = conn.ReadFrame();
  ASSERT_TRUE(bye.has_value());
  EXPECT_EQ(bye->opcode, static_cast<uint8_t>(Opcode::kByeOk));
}

TEST(AdversarialWireTest, ClientRefusesRequestBeyondNegotiatedFrameCap) {
  ServerOptions options;
  options.max_frame_bytes = 1 << 10;
  auto server = StartServer(options);
  auto connected = DslogClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(connected.ok());
  std::unique_ptr<DslogClient> client = std::move(connected).value();
  EXPECT_EQ(client->server_hello().max_frame_bytes, 1 << 10);
  ASSERT_TRUE(client->OpenStore("t", true).ok());
  // A query whose encoding exceeds the server's cap fails client-side
  // with a typed error instead of getting the session torn down.
  std::vector<std::string> path = {std::string(4096, 'a')};
  Result<BoxTable> r = client->Query(path, BoxTable(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The refused request never hit the wire; the session still works.
  EXPECT_TRUE(client->Bye().ok());
}

}  // namespace
}  // namespace net
}  // namespace dslog
