// Tests for the sort-sweep interval-join kernel: exhaustive equivalence
// against the quadratic nested-loop reference on randomized interval sets.

#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "common/random.h"
#include "provrc/interval_index.h"
#include "query/interval_sweep.h"

namespace dslog {
namespace {

std::set<std::pair<int64_t, int64_t>> SweepPairs(
    const std::vector<Interval>& left, const std::vector<Interval>& right) {
  std::set<std::pair<int64_t, int64_t>> pairs;
  ForEachOverlappingPair(left, right, [&](int64_t i, int64_t j) {
    auto [it, inserted] = pairs.insert({i, j});
    EXPECT_TRUE(inserted) << "pair emitted twice: " << i << "," << j;
  });
  return pairs;
}

std::set<std::pair<int64_t, int64_t>> ReferencePairs(
    const std::vector<Interval>& left, const std::vector<Interval>& right) {
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (size_t i = 0; i < left.size(); ++i)
    for (size_t j = 0; j < right.size(); ++j)
      if (left[i].Intersects(right[j]))
        pairs.insert({static_cast<int64_t>(i), static_cast<int64_t>(j)});
  return pairs;
}

TEST(IntervalSweepTest, EmptySides) {
  EXPECT_TRUE(SweepPairs({}, {}).empty());
  EXPECT_TRUE(SweepPairs({{0, 5}}, {}).empty());
  EXPECT_TRUE(SweepPairs({}, {{0, 5}}).empty());
}

TEST(IntervalSweepTest, TouchingEndpointsCount) {
  // [0,5] and [5,9] overlap at exactly one point.
  auto pairs = SweepPairs({{0, 5}}, {{5, 9}});
  EXPECT_EQ(pairs.size(), 1u);
  // [0,4] and [5,9] do not.
  EXPECT_TRUE(SweepPairs({{0, 4}}, {{5, 9}}).empty());
}

TEST(IntervalSweepTest, DuplicateIntervalsAllPaired) {
  std::vector<Interval> left = {{2, 4}, {2, 4}, {2, 4}};
  std::vector<Interval> right = {{3, 3}, {3, 3}};
  EXPECT_EQ(SweepPairs(left, right).size(), 6u);
}

class IntervalSweepRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSweepRandomTest, MatchesNestedLoop) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  std::vector<Interval> left, right;
  int n = 5 + static_cast<int>(rng.Uniform(120));
  int m = 5 + static_cast<int>(rng.Uniform(120));
  for (int i = 0; i < n; ++i) {
    int64_t lo = rng.UniformRange(0, 200);
    left.push_back({lo, lo + rng.UniformRange(0, 30)});
  }
  for (int j = 0; j < m; ++j) {
    int64_t lo = rng.UniformRange(0, 200);
    right.push_back({lo, lo + rng.UniformRange(0, 30)});
  }
  EXPECT_EQ(SweepPairs(left, right), ReferencePairs(left, right));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSweepRandomTest,
                         ::testing::Range(0, 20));

// Skewed-input stress for the lazily-pruned flat active sets: distributions
// chosen to exercise the swap-erase pruning path (many expirations per
// event), long-lived intervals (active sets that only grow), clustered low
// endpoints (many lo ties between the two sides), and lopsided sizes.
class IntervalSweepStressTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSweepStressTest, MatchesNestedLoopOnSkewedInputs) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 101 + 13);
  const int distribution = seed % 4;
  auto make_side = [&](int n) {
    std::vector<Interval> side;
    for (int i = 0; i < n; ++i) {
      int64_t lo, span;
      switch (distribution) {
        case 0:  // points only: every insertion expires almost immediately
          lo = rng.UniformRange(0, 500);
          span = 0;
          break;
        case 1:  // long intervals: active sets grow large, little pruning
          lo = rng.UniformRange(0, 1000);
          span = rng.UniformRange(200, 600);
          break;
        case 2:  // clustered lows: heavy lo ties across both sides
          lo = 100 + rng.UniformRange(0, 8);
          span = rng.UniformRange(0, 40);
          break;
        default:  // mixed points and wide spans
          lo = rng.UniformRange(0, 300);
          span = rng.Bernoulli(0.5) ? 0 : rng.UniformRange(0, 250);
          break;
      }
      side.push_back({lo, lo + span});
    }
    return side;
  };
  // Lopsided sizes included (one side may be empty or a singleton).
  const int n = static_cast<int>(rng.Uniform(400));
  const int m = seed % 5 == 0 ? static_cast<int>(rng.Uniform(2))
                              : static_cast<int>(rng.Uniform(400));
  std::vector<Interval> left = make_side(n);
  std::vector<Interval> right = make_side(m);
  EXPECT_EQ(SweepPairs(left, right), ReferencePairs(left, right));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSweepStressTest,
                         ::testing::Range(0, 24));

// ------------------------------------------------------------ IntervalIndex --

std::set<std::pair<int64_t, int64_t>> IndexPairs(
    const std::vector<Interval>& rows, const std::vector<Interval>& probes,
    int64_t stride = 1) {
  std::vector<int64_t> lo, hi;
  for (const Interval& iv : rows) {
    lo.push_back(iv.lo);
    hi.push_back(iv.hi);
    for (int64_t pad = 1; pad < stride; ++pad) {
      lo.push_back(-1000000);  // decoy cells the stride must skip
      hi.push_back(-1000000);
    }
  }
  IntervalIndex index(lo.data(), hi.data(), static_cast<int64_t>(rows.size()),
                      stride);
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (size_t j = 0; j < probes.size(); ++j) {
    index.ForEachOverlapping(probes[j], [&](int64_t r) {
      auto [it, inserted] = pairs.insert({r, static_cast<int64_t>(j)});
      EXPECT_TRUE(inserted) << "row emitted twice: " << r << "," << j;
    });
  }
  return pairs;
}

TEST(IntervalIndexTest, EmptyAndSingleton) {
  IntervalIndex empty;
  int hits = 0;
  empty.ForEachOverlapping({0, 100}, [&](int64_t) { ++hits; });
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(IndexPairs({{5, 9}}, {{0, 4}, {9, 9}, {10, 20}}),
            (std::set<std::pair<int64_t, int64_t>>{{0, 1}}));
}

TEST(IntervalIndexTest, StridedColumnsSkipDecoyCells) {
  // Stride 3 mimics the lo/hi arenas of a 1-out/2-in table where only the
  // first attribute is indexed.
  EXPECT_EQ(IndexPairs({{0, 3}, {10, 12}, {2, 7}}, {{3, 10}}, 3),
            (std::set<std::pair<int64_t, int64_t>>{{0, 0}, {1, 0}, {2, 0}}));
}

class IntervalIndexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalIndexRandomTest, MatchesNestedLoop) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2467 + 11);
  auto make_side = [&rng](int count, int64_t domain) {
    std::vector<Interval> side;
    for (int i = 0; i < count; ++i) {
      int64_t lo = rng.UniformRange(0, domain);
      side.push_back({lo, lo + (rng.Bernoulli(0.4)
                                    ? 0
                                    : rng.UniformRange(0, domain / 4))});
    }
    return side;
  };
  const int n = static_cast<int>(rng.Uniform(300));
  const int m = static_cast<int>(rng.Uniform(40));
  std::vector<Interval> rows = make_side(n, 200);
  std::vector<Interval> probes = make_side(m, 200);
  EXPECT_EQ(IndexPairs(rows, probes), ReferencePairs(rows, probes));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalIndexRandomTest,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace dslog
