// θ-join access-path and planner tests: the three IntervalIndex access
// paths (tree probe, SIMD sorted sweep, SIMD full scan) must emit
// identical rows in identical order for any probe; every forced JoinPath
// (and kAuto) must return bit-identical join results per (query,
// num_threads) across a selectivity sweep; and results must match a
// naive brute-force oracle as a set. Also unit-checks the cost model's
// forced regions (tiny table, unknown stats).

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "provrc/compressed_table.h"
#include "provrc/interval_index.h"
#include "query/box.h"
#include "query/join_planner.h"
#include "query/query_engine.h"
#include "query/theta_join.h"

namespace dslog {
namespace {

constexpr JoinPath kForcedPaths[] = {JoinPath::kIndexProbe,
                                     JoinPath::kSortedSweep,
                                     JoinPath::kFullScan};
constexpr JoinPath kAllPaths[] = {JoinPath::kAuto, JoinPath::kIndexProbe,
                                  JoinPath::kSortedSweep, JoinPath::kFullScan};

/// Bit-identical comparison: same boxes in the same order.
::testing::AssertionResult SameTable(const BoxTable& a, const BoxTable& b) {
  if (a.ndim() != b.ndim())
    return ::testing::AssertionFailure() << "ndim " << a.ndim() << " vs "
                                         << b.ndim();
  if (a.num_boxes() != b.num_boxes())
    return ::testing::AssertionFailure()
           << "num_boxes " << a.num_boxes() << " vs " << b.num_boxes();
  for (int64_t i = 0; i < a.num_boxes(); ++i) {
    auto ba = a.Box(i);
    auto bb = b.Box(i);
    for (size_t k = 0; k < ba.size(); ++k) {
      if (!(ba[k] == bb[k]))
        return ::testing::AssertionFailure()
               << "box " << i << " attr " << k << ": [" << ba[k].lo << ","
               << ba[k].hi << "] vs [" << bb[k].lo << "," << bb[k].hi << "]";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Canonically sorted box list (set/multiset comparison for the oracle,
/// which emits in row order while the index paths emit in sorted-lo order).
std::vector<std::vector<Interval>> SortedBoxes(const BoxTable& t) {
  std::vector<std::vector<Interval>> boxes;
  boxes.reserve(static_cast<size_t>(t.num_boxes()));
  for (int64_t i = 0; i < t.num_boxes(); ++i) {
    auto b = t.Box(i);
    boxes.emplace_back(b.begin(), b.end());
  }
  std::sort(boxes.begin(), boxes.end(),
            [](const std::vector<Interval>& a, const std::vector<Interval>& b) {
              for (size_t k = 0; k < a.size(); ++k) {
                if (a[k].lo != b[k].lo) return a[k].lo < b[k].lo;
                if (a[k].hi != b[k].hi) return a[k].hi < b[k].hi;
              }
              return false;
            });
  return boxes;
}

/// Naive branchy backward join, independent of the index and SIMD code:
/// scans every row per query box in row order.
std::vector<std::vector<Interval>> BruteForceBackward(
    const BoxTable& query, const CompressedTableView& t) {
  const int32_t l = t.out_ndim;
  const int32_t m = t.in_ndim;
  const int64_t w = t.stride();
  std::vector<std::vector<Interval>> out;
  for (int64_t qb = 0; qb < query.num_boxes(); ++qb) {
    auto q = query.Box(qb);
    for (int64_t r = 0; r < t.num_rows; ++r) {
      const int64_t* row_lo = t.lo + r * w;
      const int64_t* row_hi = t.hi + r * w;
      std::vector<Interval> ti(static_cast<size_t>(l));
      bool hit = true;
      for (int32_t k = 0; k < l && hit; ++k) {
        ti[static_cast<size_t>(k)] = {
            std::max(q[static_cast<size_t>(k)].lo, row_lo[k]),
            std::min(q[static_cast<size_t>(k)].hi, row_hi[k])};
        hit = ti[static_cast<size_t>(k)].lo <= ti[static_cast<size_t>(k)].hi;
      }
      if (!hit) continue;
      std::vector<Interval> box(static_cast<size_t>(m));
      const int32_t* refs = t.ref + r * m;
      for (int32_t i = 0; i < m; ++i) {
        if (refs[i] >= 0) {
          const Interval& base = ti[static_cast<size_t>(refs[i])];
          box[static_cast<size_t>(i)] = {base.lo + row_lo[l + i],
                                         base.hi + row_hi[l + i]};
        } else {
          box[static_cast<size_t>(i)] = {row_lo[l + i], row_hi[l + i]};
        }
      }
      out.push_back(std::move(box));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const std::vector<Interval>& a, const std::vector<Interval>& b) {
              for (size_t k = 0; k < a.size(); ++k) {
                if (a[k].lo != b[k].lo) return a[k].lo < b[k].lo;
                if (a[k].hi != b[k].hi) return a[k].hi < b[k].hi;
              }
              return false;
            });
  return out;
}

/// The bench's wide table (l=2, m=3): out attr 0 tiles [0, 4*rows) in
/// width-4 strips, so a probe of width W overlaps ~W/4 rows — selectivity
/// is directly controllable.
CompressedTable MakeWideTable(int64_t rows, uint64_t seed) {
  const int64_t domain = rows * 4;
  CompressedTable table({domain, 64}, {domain, 64, 16});
  Rng rng(seed);
  CompressedRow row;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * 4;
    row.out = {{base, base + 3}, {rng.UniformRange(0, 60), 0}};
    row.out[1].hi = row.out[1].lo + 3;
    row.in = {InputCell::Relative(0, {rng.UniformRange(-2, 2),
                                      rng.UniformRange(3, 5)}),
              InputCell::Absolute({rng.UniformRange(0, 32), 0}),
              InputCell::Absolute({rng.UniformRange(0, 12), 0})};
    row.in[1].iv.hi = row.in[1].iv.lo + rng.UniformRange(0, 8);
    row.in[2].iv.hi = row.in[2].iv.lo + rng.UniformRange(0, 3);
    table.AddRow(row);
  }
  return table;
}

/// Query at a target selectivity: probe width = frac * domain.
BoxTable MakeSweepQuery(int64_t rows, double frac, uint64_t seed) {
  const int64_t domain = rows * 4;
  const int64_t width = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(domain) * frac));
  Rng rng(seed);
  BoxTable q(2);
  for (int i = 0; i < 12; ++i) {
    Interval box[2] = {{0, 0}, {0, 63}};
    box[0].lo = rng.UniformRange(0, std::max<int64_t>(0, domain - width));
    box[0].hi = box[0].lo + width - 1;
    q.AddBox(box);
  }
  return q;
}

constexpr double kSelectivities[] = {0.001, 0.01, 0.1, 0.5, 1.0};

// ------------------------------------------------ access-path equivalence --

TEST(AccessPathTest, AllPathsEmitIdenticalRowsInIdenticalOrder) {
  Rng rng(42);
  for (int64_t n : {0ll, 1ll, 3ll, 64ll, 257ll, 1000ll}) {
    std::vector<int64_t> lo(static_cast<size_t>(std::max<int64_t>(1, n)));
    std::vector<int64_t> hi(lo.size());
    for (int64_t i = 0; i < n; ++i) {
      lo[static_cast<size_t>(i)] = rng.UniformRange(0, 500);
      hi[static_cast<size_t>(i)] =
          lo[static_cast<size_t>(i)] + rng.UniformRange(0, 40);
    }
    IntervalIndex index(lo.data(), hi.data(), n, 1);
    std::vector<int32_t> scratch;
    for (int p = 0; p < 200; ++p) {
      Interval probe{rng.UniformRange(-50, 550), 0};
      probe.hi = probe.lo + rng.UniformRange(0, 120);
      std::vector<int64_t> reference;
      index.ForEachOverlapping(probe,
                               [&](int64_t r) { reference.push_back(r); });
      for (AccessPath path : {AccessPath::kIndexProbe, AccessPath::kSortedSweep,
                              AccessPath::kFullScan}) {
        std::vector<int64_t> got;
        index.ForEachOverlapping(probe, path, &scratch,
                                 [&](int64_t r) { got.push_back(r); });
        ASSERT_EQ(got, reference)
            << "n=" << n << " path=" << static_cast<int>(path) << " probe=["
            << probe.lo << "," << probe.hi << "]";
      }
    }
  }
}

// ------------------------------------------------------- planner cost model --

TEST(JoinPlannerTest, TinyTablesAlwaysScan) {
  IntervalColumnStats stats;
  stats.row_count = 64;
  stats.min_lo = 0;
  stats.max_lo = 1000;
  stats.max_hi = 1010;
  stats.sum_width = 64 * 5;
  EXPECT_EQ(ChooseAccessPath({0, 10}, stats), AccessPath::kFullScan);
}

TEST(JoinPlannerTest, UnknownStatsFallBackToIndexProbe) {
  EXPECT_EQ(ChooseAccessPath({0, 1000000}, IntervalColumnStats{}),
            AccessPath::kIndexProbe);
}

TEST(JoinPlannerTest, ExtremeSelectivitiesPickExtremePaths) {
  // 1M narrow rows spread over a wide domain.
  IntervalColumnStats stats;
  stats.row_count = 1 << 20;
  stats.min_lo = 0;
  stats.max_lo = 1 << 22;
  stats.max_hi = (1 << 22) + 4;
  stats.sum_width = stats.row_count * 4;
  // A mid-domain point probe hits ~1 row but would pay a half-table sweep
  // prefix: the tree probe must win. (A point probe at the domain's bottom
  // legitimately favors the sweep — its prefix is near-empty.)
  EXPECT_EQ(ChooseAccessPath({1 << 21, 1 << 21}, stats),
            AccessPath::kIndexProbe);
  // A whole-domain probe hits everything: a vectorized path must win.
  EXPECT_NE(ChooseAccessPath({0, 1 << 22}, stats), AccessPath::kIndexProbe);
}

TEST(JoinPlannerTest, ResolveHonorsForcedPaths) {
  IntervalColumnStats stats;  // invalid
  EXPECT_EQ(ResolveAccessPath(JoinPath::kIndexProbe, {0, 9}, stats),
            AccessPath::kIndexProbe);
  EXPECT_EQ(ResolveAccessPath(JoinPath::kSortedSweep, {0, 9}, stats),
            AccessPath::kSortedSweep);
  EXPECT_EQ(ResolveAccessPath(JoinPath::kFullScan, {0, 9}, stats),
            AccessPath::kFullScan);
  EXPECT_EQ(ResolveAccessPath(JoinPath::kAuto, {0, 9}, stats),
            AccessPath::kIndexProbe);
}

// ------------------------------------------- selectivity-swept differential --

TEST(JoinPathSweepTest, BackwardJoinBitIdenticalAcrossPathsAndOracle) {
  for (int64_t rows : {257ll, 4096ll}) {
    CompressedTable table = MakeWideTable(rows, 99);
    for (double frac : kSelectivities) {
      BoxTable q = MakeSweepQuery(rows, frac, 7);
      const auto oracle = BruteForceBackward(q, table.view());
      for (int num_threads : {1, 4}) {
        for (bool merge : {false, true}) {
          const BoxTable reference = BackwardThetaJoin(
              q, table, num_threads, merge, JoinPath::kIndexProbe);
          if (!merge) {
            EXPECT_EQ(SortedBoxes(reference), oracle)
                << "rows=" << rows << " frac=" << frac
                << " threads=" << num_threads;
          }
          for (JoinPath path : kAllPaths) {
            const BoxTable got =
                BackwardThetaJoin(q, table, num_threads, merge, path);
            EXPECT_TRUE(SameTable(got, reference))
                << "rows=" << rows << " frac=" << frac
                << " threads=" << num_threads << " merge=" << merge
                << " path=" << JoinPathName(path);
          }
        }
      }
    }
  }
}

TEST(JoinPathSweepTest, ForwardJoinBitIdenticalAcrossPaths) {
  for (int64_t rows : {257ll, 2048ll}) {
    CompressedTable table = MakeWideTable(rows, 77);
    ForwardTable fwd = ForwardTable::FromBackward(table.view());
    for (double frac : kSelectivities) {
      // Forward queries probe the input side (3 attrs; attr 0 spans the
      // same domain as out attr 0, shifted by the relative deltas).
      const int64_t domain = rows * 4;
      const int64_t width = std::max<int64_t>(
          1, static_cast<int64_t>(static_cast<double>(domain) * frac));
      Rng rng(13);
      BoxTable q(3);
      for (int i = 0; i < 8; ++i) {
        Interval box[3] = {{0, 0}, {0, 63}, {0, 15}};
        box[0].lo = rng.UniformRange(0, std::max<int64_t>(0, domain - width));
        box[0].hi = box[0].lo + width - 1;
        q.AddBox(box);
      }
      for (int num_threads : {1, 4}) {
        const BoxTable ref_direct = ForwardThetaJoin(
            q, table, num_threads, false, JoinPath::kIndexProbe);
        const BoxTable ref_fwd =
            fwd.Join(q, num_threads, false, JoinPath::kIndexProbe);
        for (JoinPath path : kForcedPaths) {
          EXPECT_TRUE(SameTable(
              ForwardThetaJoin(q, table, num_threads, false, path),
              ref_direct))
              << "direct rows=" << rows << " frac=" << frac
              << " threads=" << num_threads << " path=" << JoinPathName(path);
          EXPECT_TRUE(
              SameTable(fwd.Join(q, num_threads, false, path), ref_fwd))
              << "fwd rows=" << rows << " frac=" << frac
              << " threads=" << num_threads << " path=" << JoinPathName(path);
        }
      }
    }
  }
}

TEST(JoinPathSweepTest, FooterStatsAndIndexStatsPlanIdentically) {
  // Passing explicit (e.g. v3-footer) stats must not change results, only
  // potentially the chosen path.
  CompressedTable table = MakeWideTable(1024, 5);
  const IntervalColumnStats stats = table.view().BuildBackwardIndex().stats();
  for (double frac : kSelectivities) {
    BoxTable q = MakeSweepQuery(1024, frac, 3);
    const BoxTable without = BackwardThetaJoin(q, table.view(), nullptr, 1,
                                               false, JoinPath::kAuto);
    const BoxTable with = BackwardThetaJoin(q, table.view(), nullptr, 1,
                                            false, JoinPath::kAuto, &stats);
    EXPECT_TRUE(SameTable(with, without)) << "frac=" << frac;
  }
}

TEST(JoinPathSweepTest, QueryOptionsForcePathsThroughInSituQuery) {
  CompressedTable table = MakeWideTable(512, 21);
  std::vector<QueryHop> hops;
  hops.emplace_back(&table, /*forward=*/false);
  BoxTable q = MakeSweepQuery(512, 0.05, 9);
  for (int num_threads : {1, 4}) {
    // Bit-identical is per (query, num_threads): the merged-reduction
    // shape depends on the thread count, the access path never does.
    QueryOptions base;
    base.num_threads = num_threads;
    const BoxTable reference = InSituQuery(hops, q, base);
    for (JoinPath path : kForcedPaths) {
      QueryOptions options = base;
      options.join_path = path;
      EXPECT_TRUE(SameTable(InSituQuery(hops, q, options), reference))
          << "path=" << JoinPathName(path) << " threads=" << num_threads;
    }
  }
}

// ----------------------------------------------------- planner auditability --

// The planner's row estimate (JoinCounters::est_rows, summed over probes)
// must track the candidate rows the index actually enumerated across the
// whole selectivity sweep. MakeWideTable is the model's best case (uniform
// width-4 strips), so a generous fixed bound holds with margin; a
// regression in the stats plumbing or the hit-fraction math blows past it.
TEST(JoinPlannerAuditTest, MispredictRatioBoundedAcrossSelectivitySweep) {
  const int64_t rows = 4096;
  CompressedTable table = MakeWideTable(rows, 33);
  double worst_ratio = 1.0;
  for (double frac : kSelectivities) {
    BoxTable q = MakeSweepQuery(rows, frac, 11);
    JoinCounters counters;
    const BoxTable result = BackwardThetaJoin(q, table, 1, false,
                                              JoinPath::kAuto, &counters);
    // Accounting invariants first: every probe resolved to exactly one
    // path, and the estimate was produced for every probe.
    EXPECT_EQ(counters.probes.load(), q.num_boxes()) << "frac=" << frac;
    EXPECT_EQ(counters.path_probes_total(), q.num_boxes()) << "frac=" << frac;
    EXPECT_EQ(counters.rows_emitted.load(), result.num_boxes());

    const auto scanned = static_cast<double>(counters.rows_scanned.load());
    const double est = counters.est_rows();
    ASSERT_GT(scanned, 0.0) << "frac=" << frac;
    ASSERT_GT(est, 0.0) << "frac=" << frac;
    const double ratio = est / scanned;
    // Fixed per-selectivity bound (observed ratios sit in ~[0.8, 1.05]).
    EXPECT_GE(ratio, 0.25) << "frac=" << frac << " est=" << est
                           << " scanned=" << scanned;
    EXPECT_LE(ratio, 4.0) << "frac=" << frac << " est=" << est
                          << " scanned=" << scanned;
    worst_ratio = std::max(worst_ratio, std::max(ratio, 1.0 / ratio));
  }
  // Aggregate: the sweep as a whole must stay near-calibrated.
  EXPECT_LE(worst_ratio, 2.0);
}

// ChooseAccessPath and EstimateAccessPathCosts must never disagree: the
// profile's "cheapest estimated path" has to be the path the join took.
TEST(JoinPlannerAuditTest, EstimateAndChoiceAgree) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    IntervalColumnStats stats;
    stats.row_count = rng.UniformRange(65, 1 << 20);
    stats.min_lo = rng.UniformRange(0, 1000);
    stats.max_lo = stats.min_lo + rng.UniformRange(1, 1 << 22);
    stats.max_hi = stats.max_lo + rng.UniformRange(0, 64);
    stats.sum_width = stats.row_count * rng.UniformRange(1, 32);
    Interval probe{rng.UniformRange(-100, stats.max_hi), 0};
    probe.hi = probe.lo + rng.UniformRange(0, 1 << 21);
    const PathCostEstimate costs = EstimateAccessPathCosts(probe, stats);
    EXPECT_EQ(costs.chosen, ChooseAccessPath(probe, stats))
        << "trial " << trial;
    EXPECT_GE(costs.est_rows, 0.0);
    EXPECT_LE(costs.cost_ns[static_cast<int>(costs.chosen)],
              std::min({costs.cost_ns[0], costs.cost_ns[1], costs.cost_ns[2]}) +
                  1e-9);
  }
}

}  // namespace
}  // namespace dslog
