// Randomized writer-vs-batch-reader differential stress over the sharded
// DSLog catalog: M reader threads run ProvQueryBatch against the serial
// UncompressedQuery oracle while K writer threads ingest through per-thread
// StagedIngest logs, sweeping catalog shard counts (including 1, the old
// single-lock layout) and thread counts. Every case is seeded and
// reproducible: each thread derives its Rng from (case seed, thread id),
// and readers only query chain prefixes whose registration has been
// published, so oracle equality must hold exactly no matter how the
// scheduler interleaves the threads. The whole suite runs under the CI
// ThreadSanitizer job with no filter.

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "storage/dslog.h"
#include "test_util.h"

namespace dslog {
namespace {

using test_util::SampleCells;
using test_util::ToTupleSet;
using test_util::TupleSet;

struct ChainStep {
  std::string op_name;
  LineageRelation rel;
  std::vector<int64_t> out_shape;
};

// Deterministic chain of registry unary ops over a small 1-D array.
std::vector<ChainStep> BuildChain(int num_steps, uint64_t seed,
                                  std::vector<int64_t>* first_shape) {
  Rng rng(seed);
  auto pool = OpRegistry::Global().UnaryPipelineNames();
  NDArray current = NDArray::Random({24}, &rng);
  *first_shape = current.shape();
  std::vector<ChainStep> chain;
  int guard = 0;
  while (static_cast<int>(chain.size()) < num_steps && guard < 400) {
    ++guard;
    const ArrayOp* op =
        OpRegistry::Global().Find(pool[rng.Uniform(pool.size())]);
    if (!op->SupportsUnaryShape(current.shape())) continue;
    OpArgs args = op->SampleArgs(current.shape(), &rng);
    auto out = op->Apply({&current}, args);
    if (!out.ok()) continue;
    NDArray next = out.ValueOrDie();
    if (next.size() == 0 || next.size() > 4096) continue;
    auto captured = op->Capture({&current}, next, args);
    if (!captured.ok() || captured.value()[0].num_rows() == 0) continue;
    chain.push_back(
        {op->name(), std::move(captured.ValueOrDie()[0]), next.shape()});
    current = std::move(next);
  }
  return chain;
}

// One writer's private lineage chain: arrays "w<t>_x<i>", the captured
// relations (the oracle's ground truth), and the high-water mark of
// committed registrations (published with release so readers querying the
// prefix see the drained edges).
struct WriterChain {
  std::vector<std::string> names;
  std::vector<std::vector<int64_t>> shapes;
  std::vector<ChainStep> steps;
  std::atomic<int> registered{0};
};

struct CaseConfig {
  int edge_shards;
  int readers;
  int writers;
};

std::string CaseName(const ::testing::TestParamInfo<CaseConfig>& info) {
  return "Shards" + std::to_string(info.param.edge_shards) + "Readers" +
         std::to_string(info.param.readers) + "Writers" +
         std::to_string(info.param.writers);
}

class ContentionTest : public ::testing::TestWithParam<CaseConfig> {};

TEST_P(ContentionTest, StagedWritersVsBatchReadersMatchOracle) {
  const CaseConfig config = GetParam();
  constexpr int kOpsPerWriter = 6;
  constexpr int kReaderIters = 25;
  const uint64_t case_seed =
      0x5eed0000ull + static_cast<uint64_t>(config.edge_shards) * 1000 +
      static_cast<uint64_t>(config.readers) * 10 +
      static_cast<uint64_t>(config.writers);

  DSLogOptions options;
  options.edge_shards = config.edge_shards;
  DSLog log(options);
  ASSERT_EQ(log.edge_shard_count(), std::max(1, config.edge_shards));

  // Build every chain up front (deterministic), define only the first
  // array; writers define the rest as they go, exercising concurrent
  // DefineArray against the readers' shard traffic.
  std::vector<std::unique_ptr<WriterChain>> chains;
  for (int w = 0; w < config.writers; ++w) {
    auto chain = std::make_unique<WriterChain>();
    std::vector<int64_t> first_shape;
    chain->steps =
        BuildChain(kOpsPerWriter, case_seed * 31 + static_cast<uint64_t>(w),
                   &first_shape);
    ASSERT_EQ(static_cast<int>(chain->steps.size()), kOpsPerWriter);
    chain->shapes.push_back(first_shape);
    for (const ChainStep& step : chain->steps)
      chain->shapes.push_back(step.out_shape);
    for (size_t i = 0; i < chain->shapes.size(); ++i)
      chain->names.push_back("w" + std::to_string(w) + "_x" +
                             std::to_string(i));
    ASSERT_TRUE(log.DefineArray(chain->names[0], chain->shapes[0]).ok());
    chains.push_back(std::move(chain));
  }

  std::atomic<int> writer_failures{0};
  std::atomic<int> reader_failures{0};
  std::vector<std::string> first_failure(
      static_cast<size_t>(config.readers + config.writers));

  auto writer = [&](int wid) {
    WriterChain& chain = *chains[static_cast<size_t>(wid)];
    Rng rng(case_seed * 131 + static_cast<uint64_t>(wid) * 17);
    StagedIngest stager(&log);
    int committed = 0;
    int staged_from = 0;
    for (int i = 0; i < kOpsPerWriter; ++i) {
      Status defined =
          log.DefineArray(chain.names[static_cast<size_t>(i) + 1],
                          chain.shapes[static_cast<size_t>(i) + 1]);
      OperationRegistration reg;
      reg.op_name = chain.steps[static_cast<size_t>(i)].op_name;
      reg.in_arrs = {chain.names[static_cast<size_t>(i)]};
      reg.out_arr = chain.names[static_cast<size_t>(i) + 1];
      reg.captured.push_back(chain.steps[static_cast<size_t>(i)].rel);
      Status added = stager.Add(std::move(reg));
      if (!defined.ok() || !added.ok()) {
        if (writer_failures.fetch_add(1) == 0)
          first_failure[static_cast<size_t>(config.readers + wid)] =
              (defined.ok() ? added : defined).ToString();
        continue;
      }
      // Drain in randomized group sizes (the SmokedDuck batch-commit
      // shape), always on the last op so nothing stays staged.
      const bool drain = i + 1 == kOpsPerWriter || rng.Bernoulli(0.5);
      if (drain) {
        auto outcomes = stager.Drain();
        if (!outcomes.ok()) {
          if (writer_failures.fetch_add(1) == 0)
            first_failure[static_cast<size_t>(config.readers + wid)] =
                outcomes.status().ToString();
          continue;
        }
        if (static_cast<int>(outcomes.value().size()) !=
            i + 1 - staged_from) {
          writer_failures.fetch_add(1);
          continue;
        }
        committed = i + 1;
        staged_from = committed;
        // Publish: readers may now query the committed prefix.
        chain.registered.store(committed, std::memory_order_release);
      }
      std::this_thread::yield();
    }
    EXPECT_EQ(stager.staged(), 0);
    EXPECT_EQ(committed, kOpsPerWriter);
  };

  auto reader = [&](int tid) {
    Rng rng(case_seed * 977 + static_cast<uint64_t>(tid) * 7919 + 3);
    for (int iter = 0; iter < kReaderIters; ++iter) {
      // Pick a chain with at least one committed registration.
      const int w = static_cast<int>(
          rng.Uniform(static_cast<uint64_t>(config.writers)));
      WriterChain& chain = *chains[static_cast<size_t>(w)];
      const int upto = chain.registered.load(std::memory_order_acquire);
      if (upto == 0) {
        std::this_thread::yield();
        continue;
      }
      const int batch_size = 1 + static_cast<int>(rng.Uniform(3));
      std::vector<std::vector<std::string>> paths;
      std::vector<BoxTable> queries;
      std::vector<TupleSet> want;
      std::vector<int> arities;
      for (int b = 0; b < batch_size; ++b) {
        const int j =
            1 + static_cast<int>(rng.Uniform(static_cast<uint64_t>(upto)));
        const bool forward = rng.Bernoulli(0.6);
        const auto& from_shape =
            forward ? chain.shapes[0] : chain.shapes[static_cast<size_t>(j)];
        const auto& to_shape =
            forward ? chain.shapes[static_cast<size_t>(j)] : chain.shapes[0];
        std::vector<int64_t> cells = SampleCells(from_shape, 4, &rng);
        std::vector<std::string> path(chain.names.begin(),
                                      chain.names.begin() + j + 1);
        std::vector<RelationHop> rhops;
        for (int k = 0; k < j; ++k)
          rhops.push_back({&chain.steps[static_cast<size_t>(k)].rel, true});
        if (!forward) {
          std::reverse(path.begin(), path.end());
          std::reverse(rhops.begin(), rhops.end());
          for (auto& hop : rhops) hop.forward = false;
        }
        paths.push_back(std::move(path));
        queries.push_back(
            BoxTable::FromCells(static_cast<int>(from_shape.size()), cells));
        want.push_back(ToTupleSet(UncompressedQuery(rhops, cells),
                                  static_cast<int>(to_shape.size())));
        arities.push_back(static_cast<int>(to_shape.size()));
      }

      QueryOptions qopts;
      qopts.num_threads = 1 + static_cast<int>(rng.Uniform(4));
      qopts.merge_between_hops = rng.Bernoulli(0.8);
      auto r = log.ProvQueryBatch(paths, queries, qopts);
      if (!r.ok()) {
        if (reader_failures.fetch_add(1) == 0)
          first_failure[static_cast<size_t>(tid)] = r.status().ToString();
        continue;
      }
      for (size_t b = 0; b < r.value().size(); ++b) {
        if (ToTupleSet(r.value()[b].ExpandToCells(),
                       arities[static_cast<size_t>(b)]) !=
            want[static_cast<size_t>(b)]) {
          if (reader_failures.fetch_add(1) == 0)
            first_failure[static_cast<size_t>(tid)] =
                "oracle mismatch on path to " + paths[b].back();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < config.writers; ++w) threads.emplace_back(writer, w);
  for (int t = 0; t < config.readers; ++t) threads.emplace_back(reader, t);
  for (std::thread& t : threads) t.join();

  std::string messages;
  for (const std::string& m : first_failure)
    if (!m.empty()) messages += m + "; ";
  EXPECT_EQ(writer_failures, 0) << messages;
  EXPECT_EQ(reader_failures, 0) << messages;

  // No lost edges across any shard, and the quiesced catalog must agree
  // with the oracle over every full chain with full parallelism.
  for (const auto& chain : chains) {
    EXPECT_EQ(chain->registered.load(), kOpsPerWriter);
    for (int i = 0; i < kOpsPerWriter; ++i)
      EXPECT_NE(log.FindEdge(chain->names[static_cast<size_t>(i)],
                             chain->names[static_cast<size_t>(i) + 1]),
                nullptr)
          << "edge " << i << " lost";
    Rng rng(case_seed + 9);
    std::vector<int64_t> cells = SampleCells(chain->shapes[0], 5, &rng);
    std::vector<RelationHop> rhops;
    for (const ChainStep& step : chain->steps)
      rhops.push_back({&step.rel, true});
    QueryOptions qopts;
    qopts.num_threads = 4;
    auto full = log.ProvQuery(
        chain->names,
        BoxTable::FromCells(static_cast<int>(chain->shapes[0].size()), cells),
        qopts);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    EXPECT_EQ(ToTupleSet(full.value().ExpandToCells(),
                         static_cast<int>(chain->shapes.back().size())),
              ToTupleSet(UncompressedQuery(rhops, cells),
                         static_cast<int>(chain->shapes.back().size())));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardAndThreadSweep, ContentionTest,
    ::testing::Values(CaseConfig{1, 2, 1},   // old single-lock layout
                      CaseConfig{1, 4, 2},   // single lock, more contention
                      CaseConfig{2, 3, 2},   // cross-shard collisions likely
                      CaseConfig{16, 2, 1},  // default shard count
                      CaseConfig{16, 4, 2},  // default, full thread load
                      CaseConfig{64, 4, 2}), // more shards than arrays
    CaseName);

// ------------------------------------------------- staged ingest semantics --

TEST(StagedIngestTest, AddRequiresCapturedLineage) {
  DSLog log;
  ASSERT_TRUE(log.DefineArray("a", {8}).ok());
  ASSERT_TRUE(log.DefineArray("b", {8}).ok());
  StagedIngest stager(&log);
  OperationRegistration reg;
  reg.op_name = "negative";
  reg.in_arrs = {"a"};
  reg.out_arr = "b";  // no captured relation: predicted ingest
  Status st = stager.Add(std::move(reg));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stager.staged(), 0);
}

TEST(StagedIngestTest, ErrorDrainCommitsNothingAndKeepsOps) {
  std::vector<int64_t> first_shape;
  std::vector<ChainStep> chain = BuildChain(2, 555, &first_shape);
  ASSERT_EQ(chain.size(), 2u);

  DSLog log;
  ASSERT_TRUE(log.DefineArray("x0", first_shape).ok());
  ASSERT_TRUE(log.DefineArray("x1", chain[0].out_shape).ok());
  StagedIngest stager(&log);

  OperationRegistration good;
  good.op_name = chain[0].op_name;
  good.in_arrs = {"x0"};
  good.out_arr = "x1";
  good.captured.push_back(chain[0].rel);
  ASSERT_TRUE(stager.Add(std::move(good)).ok());

  OperationRegistration bad;
  bad.op_name = chain[1].op_name;
  bad.in_arrs = {"x1"};
  bad.out_arr = "x2_undefined";
  bad.captured.push_back(chain[1].rel);
  ASSERT_TRUE(stager.Add(std::move(bad)).ok());  // validated at Drain

  auto outcomes = stager.Drain();
  EXPECT_FALSE(outcomes.ok());
  EXPECT_EQ(stager.staged(), 2);  // kept for retry
  EXPECT_EQ(log.FindEdge("x0", "x1"), nullptr);  // nothing committed

  // Defining the missing array makes the same staged batch drain cleanly.
  ASSERT_TRUE(log.DefineArray("x2_undefined", chain[1].out_shape).ok());
  auto retry = stager.Drain();
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.value().size(), 2u);
  EXPECT_EQ(stager.staged(), 0);
  EXPECT_NE(log.FindEdge("x0", "x1"), nullptr);
  EXPECT_NE(log.FindEdge("x1", "x2_undefined"), nullptr);
}

TEST(StagedIngestTest, DrainMatchesRegisterOperationResults) {
  std::vector<int64_t> first_shape;
  std::vector<ChainStep> chain = BuildChain(4, 888, &first_shape);
  ASSERT_EQ(chain.size(), 4u);
  std::vector<std::vector<int64_t>> shapes = {first_shape};
  for (const ChainStep& step : chain) shapes.push_back(step.out_shape);

  // Same chain ingested twice: once through RegisterOperation, once staged.
  DSLog direct;
  DSLog staged_log;
  for (size_t i = 0; i < shapes.size(); ++i) {
    std::string name = "x" + std::to_string(i);
    ASSERT_TRUE(direct.DefineArray(name, shapes[i]).ok());
    ASSERT_TRUE(staged_log.DefineArray(name, shapes[i]).ok());
  }
  StagedIngest stager(&staged_log);
  for (size_t i = 0; i < chain.size(); ++i) {
    OperationRegistration reg;
    reg.op_name = chain[i].op_name;
    reg.in_arrs = {"x" + std::to_string(i)};
    reg.out_arr = "x" + std::to_string(i + 1);
    reg.captured.push_back(chain[i].rel);
    OperationRegistration copy = reg;
    copy.captured = {chain[i].rel};
    ASSERT_TRUE(direct.RegisterOperation(std::move(copy)).ok());
    ASSERT_TRUE(stager.Add(std::move(reg)).ok());
  }
  EXPECT_EQ(stager.staged(), 4);
  auto outcomes = stager.Drain();
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  EXPECT_EQ(outcomes.value().size(), 4u);

  // Identical query results through both ingest paths.
  std::vector<std::string> names;
  for (size_t i = 0; i < shapes.size(); ++i)
    names.push_back("x" + std::to_string(i));
  Rng rng(3);
  std::vector<int64_t> cells = SampleCells(shapes[0], 6, &rng);
  BoxTable query =
      BoxTable::FromCells(static_cast<int>(shapes[0].size()), cells);
  auto via_direct = direct.ProvQuery(names, query);
  auto via_staged = staged_log.ProvQuery(names, query);
  ASSERT_TRUE(via_direct.ok());
  ASSERT_TRUE(via_staged.ok());
  const int arity = static_cast<int>(shapes.back().size());
  EXPECT_EQ(ToTupleSet(via_staged.value().ExpandToCells(), arity),
            ToTupleSet(via_direct.value().ExpandToCells(), arity));
}

}  // namespace
}  // namespace dslog
