// Shared helpers for the query-equivalence test suites: flat-tuple set
// conversion (for set-semantics comparison against the uncompressed
// oracle) and random cell sampling over an array shape.

#ifndef DSLOG_TESTS_TEST_UTIL_H_
#define DSLOG_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "array/ndarray.h"
#include "common/random.h"

namespace dslog {
namespace test_util {

using TupleSet = std::set<std::vector<int64_t>>;

/// Groups a flattened tuple stream into a set of `arity`-length tuples.
inline TupleSet ToTupleSet(const std::vector<int64_t>& flat, int arity) {
  TupleSet out;
  for (size_t off = 0; off < flat.size(); off += static_cast<size_t>(arity))
    out.insert(std::vector<int64_t>(
        flat.begin() + static_cast<long>(off),
        flat.begin() + static_cast<long>(off) + arity));
  return out;
}

/// Samples up to `count` distinct cells of `shape`, as flattened index
/// tuples.
inline std::vector<int64_t> SampleCells(const std::vector<int64_t>& shape,
                                        int64_t count, Rng* rng) {
  NDArray probe(shape);
  count = std::min(count, probe.size());
  std::vector<int64_t> cells;
  std::vector<int64_t> idx(shape.size());
  for (int64_t flat : rng->SampleWithoutReplacement(probe.size(), count)) {
    probe.UnravelIndex(flat, idx);
    cells.insert(cells.end(), idx.begin(), idx.end());
  }
  return cells;
}

}  // namespace test_util
}  // namespace dslog

#endif  // DSLOG_TESTS_TEST_UTIL_H_
