// Shared helpers for the query-equivalence test suites: flat-tuple set
// conversion (for set-semantics comparison against the uncompressed
// oracle), random cell sampling over an array shape, and the seeded
// random-pipeline generator the differential suites (in-process and over
// the network server) both ingest from.

#ifndef DSLOG_TESTS_TEST_UTIL_H_
#define DSLOG_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"
#include "common/status.h"
#include "lineage/lineage_relation.h"
#include "storage/dslog.h"

namespace dslog {
namespace test_util {

using TupleSet = std::set<std::vector<int64_t>>;

/// Groups a flattened tuple stream into a set of `arity`-length tuples.
inline TupleSet ToTupleSet(const std::vector<int64_t>& flat, int arity) {
  TupleSet out;
  for (size_t off = 0; off < flat.size(); off += static_cast<size_t>(arity))
    out.insert(std::vector<int64_t>(
        flat.begin() + static_cast<long>(off),
        flat.begin() + static_cast<long>(off) + arity));
  return out;
}

/// Samples up to `count` distinct cells of `shape`, as flattened index
/// tuples.
inline std::vector<int64_t> SampleCells(const std::vector<int64_t>& shape,
                                        int64_t count, Rng* rng) {
  NDArray probe(shape);
  count = std::min(count, probe.size());
  std::vector<int64_t> cells;
  std::vector<int64_t> idx(shape.size());
  for (int64_t flat : rng->SampleWithoutReplacement(probe.size(), count)) {
    probe.UnravelIndex(flat, idx);
    cells.insert(cells.end(), idx.begin(), idx.end());
  }
  return cells;
}

// A random linear pipeline x0 -> x1 -> ... -> xn plus (when generation
// succeeds) one branch op off an intermediate array, for mixed-direction
// paths: branch -> x_{branch_from} is a backward hop, the rest forward.
struct RandomDag {
  std::vector<std::string> names;  // chain array names x0..xn
  std::vector<std::vector<int64_t>> shapes;
  std::vector<std::string> op_names;  // op_names[i]: x_i -> x_{i+1}
  std::vector<LineageRelation> rels;  // rels[i]: x_i -> x_{i+1}
  bool has_branch = false;
  int branch_from = 0;  // index of the branched array
  std::string branch_op;
  std::vector<int64_t> branch_shape;
  LineageRelation branch_rel;  // x_{branch_from} -> "branch"

  /// The registrations that ingest this pipeline, in chain order (branch
  /// last). Relations are copied so one dag can feed several catalogs.
  std::vector<OperationRegistration> Registrations() const {
    std::vector<OperationRegistration> regs;
    for (size_t i = 0; i < rels.size(); ++i) {
      OperationRegistration reg;
      reg.op_name = op_names[i];
      reg.in_arrs = {names[i]};
      reg.out_arr = names[i + 1];
      reg.captured.push_back(rels[i]);
      regs.push_back(std::move(reg));
    }
    if (has_branch) {
      OperationRegistration reg;
      reg.op_name = branch_op;
      reg.in_arrs = {names[static_cast<size_t>(branch_from)]};
      reg.out_arr = "branch";
      reg.captured.push_back(branch_rel);
      regs.push_back(std::move(reg));
    }
    return regs;
  }
};

inline RandomDag GenerateDag(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  auto pool = OpRegistry::Global().UnaryPipelineNames();
  RandomDag dag;

  std::vector<NDArray> arrays;
  arrays.push_back(rng.Bernoulli(0.5) ? NDArray::Random({48}, &rng)
                                      : NDArray::Random({8, 6}, &rng));
  dag.names.push_back("x0");
  dag.shapes.push_back(arrays[0].shape());

  const int target_steps = 3 + static_cast<int>(seed % 3);
  int guard = 0;
  while (static_cast<int>(dag.rels.size()) < target_steps && guard < 300) {
    ++guard;
    const NDArray& current = arrays.back();
    const ArrayOp* op =
        OpRegistry::Global().Find(pool[rng.Uniform(pool.size())]);
    if (!op->SupportsUnaryShape(current.shape())) continue;
    OpArgs args = op->SampleArgs(current.shape(), &rng);
    auto out = op->Apply({&current}, args);
    if (!out.ok()) continue;
    NDArray next = out.ValueOrDie();
    if (next.size() == 0 || next.size() > 20000) continue;
    auto captured = op->Capture({&current}, next, args);
    if (!captured.ok() || captured.value()[0].num_rows() == 0) continue;
    dag.rels.push_back(std::move(captured.ValueOrDie()[0]));
    dag.op_names.push_back(op->name());
    arrays.push_back(std::move(next));
    dag.names.push_back("x" + std::to_string(arrays.size() - 1));
    dag.shapes.push_back(arrays.back().shape());
  }

  // Branch op off an intermediate array (never the last, so mixed paths
  // always have at least one forward hop after the backward one).
  const int n = static_cast<int>(dag.rels.size());
  for (int attempt = 0; attempt < 60 && n >= 2 && !dag.has_branch; ++attempt) {
    int from = 1 + static_cast<int>(rng.Uniform(static_cast<uint64_t>(n - 1)));
    const NDArray& src = arrays[static_cast<size_t>(from)];
    const ArrayOp* op =
        OpRegistry::Global().Find(pool[rng.Uniform(pool.size())]);
    if (!op->SupportsUnaryShape(src.shape())) continue;
    OpArgs args = op->SampleArgs(src.shape(), &rng);
    auto out = op->Apply({&src}, args);
    if (!out.ok()) continue;
    NDArray b = out.ValueOrDie();
    if (b.size() == 0 || b.size() > 20000) continue;
    auto captured = op->Capture({&src}, b, args);
    if (!captured.ok() || captured.value()[0].num_rows() == 0) continue;
    dag.has_branch = true;
    dag.branch_from = from;
    dag.branch_op = op->name();
    dag.branch_shape = b.shape();
    dag.branch_rel = std::move(captured.ValueOrDie()[0]);
  }
  return dag;
}

/// Defines the dag's arrays and registers every operation into `log`.
inline Status RegisterDag(const RandomDag& dag, DSLog* log) {
  for (size_t i = 0; i < dag.names.size(); ++i)
    DSLOG_RETURN_IF_ERROR(log->DefineArray(dag.names[i], dag.shapes[i]));
  if (dag.has_branch)
    DSLOG_RETURN_IF_ERROR(log->DefineArray("branch", dag.branch_shape));
  for (OperationRegistration& reg : dag.Registrations()) {
    auto outcome = log->RegisterOperation(std::move(reg));
    if (!outcome.ok()) return outcome.status();
  }
  return Status::OK();
}

}  // namespace test_util
}  // namespace dslog

#endif  // DSLOG_TESTS_TEST_UTIL_H_
