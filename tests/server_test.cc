// End-to-end proof of the lineage service: seeded random pipelines are
// ingested over the wire through the batching IngestHandle and queried
// through DslogClient, with every answer compared cell-for-cell against
// the in-process catalog the server mounts (same DSLog the handlers use)
// AND the UncompressedQuery ground truth — across query direction, the
// merge knob, and thread counts. Plus: tenant namespace isolation, typed
// admission-control sheds at both bounds, staged-ingest teardown on
// session drop, wire-level cancellation, and a multi-threaded stress mix
// of ingest + queries on one shared tenant (TSan-clean).

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/random.h"
#include "net/client.h"
#include "net/server.h"
#include "query/query_engine.h"
#include "storage/dslog.h"
#include "test_util.h"

namespace dslog {
namespace net {
namespace {

using test_util::GenerateDag;
using test_util::RandomDag;
using test_util::SampleCells;
using test_util::ToTupleSet;
using test_util::TupleSet;

std::unique_ptr<DslogServer> StartServer(ServerOptions options = {}) {
  options.worker_threads = 4;
  auto server = std::make_unique<DslogServer>(options);
  EXPECT_TRUE(server->Start().ok());
  return server;
}

Result<std::unique_ptr<DslogClient>> Connect(const DslogServer& server) {
  return DslogClient::Connect("127.0.0.1", server.port());
}

// Ingests `dag` through `handle` with every array name prefixed (so
// several threads can share one tenant namespace). Returns ok only if
// every Add and the final Drain succeed.
Status IngestDag(DslogClient* client, IngestHandle* handle,
                 const RandomDag& dag, const std::string& prefix) {
  for (size_t i = 0; i < dag.names.size(); ++i)
    DSLOG_RETURN_IF_ERROR(
        client->DefineArray(prefix + dag.names[i], dag.shapes[i]));
  if (dag.has_branch)
    DSLOG_RETURN_IF_ERROR(
        client->DefineArray(prefix + "branch", dag.branch_shape));
  for (OperationRegistration& reg : dag.Registrations()) {
    for (std::string& in : reg.in_arrs) in = prefix + in;
    reg.out_arr = prefix + reg.out_arr;
    DSLOG_RETURN_IF_ERROR(handle->Add(reg).status());
  }
  return handle->Drain().status();
}

TEST(ServerLifecycleTest, StartStopIsCleanAndIdempotent) {
  DslogServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  EXPECT_EQ(server.active_sessions(), 0);
  server.Stop();
  server.Stop();  // idempotent
}

TEST(ServerLifecycleTest, HelloHandshakeNegotiates) {
  auto server = StartServer();
  auto client = Connect(*server);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client.value()->server_hello().server_name, "dslog_server");
  EXPECT_EQ(client.value()->server_hello().max_frame_bytes,
            kDefaultMaxFrameBytes);
  EXPECT_TRUE(client.value()->Bye().ok());
}

// ------------------------------------------------- differential coverage --

class ServerDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ServerDifferentialTest, WireAnswersMatchOracleAndGroundTruth) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomDag dag = GenerateDag(seed);
  const int n = static_cast<int>(dag.rels.size());
  ASSERT_GE(n, 2) << "pipeline generation starved, seed " << seed;

  auto server = StartServer();
  auto connected = Connect(*server);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<DslogClient> client = std::move(connected).value();
  const std::string tenant = "seed" + std::to_string(seed);
  ASSERT_TRUE(client->OpenStore(tenant).ok());

  // Tiny blocks force the netplay path to exercise multi-block shipping
  // and id-block refills, not just one lucky round trip.
  IngestHandle handle(client.get(), /*id_block_size=*/3,
                      /*data_block_bytes=*/512);
  ASSERT_TRUE(IngestDag(client.get(), &handle, dag, "").ok());
  EXPECT_EQ(handle.ops_added(), n + (dag.has_branch ? 1 : 0));
  EXPECT_GE(handle.blocks_shipped(), (handle.ops_added() + 2) / 3)
      << "3-op data blocks must ship as multiple batches";

  // The handlers' own catalog doubles as the in-process oracle.
  const DSLog* oracle = server->store(tenant);
  ASSERT_NE(oracle, nullptr);

  Rng rng(seed * 31 + 7);
  struct Direction {
    std::vector<std::string> path;
    std::vector<RelationHop> rhops;
    std::vector<int64_t> cells;
    int query_ndim;
    int result_arity;
    const char* label;
  };
  std::vector<Direction> directions;
  {
    Direction fwd;
    fwd.path = dag.names;
    for (int i = 0; i < n; ++i) fwd.rhops.push_back({&dag.rels[i], true});
    fwd.cells = SampleCells(dag.shapes[0], 8, &rng);
    fwd.query_ndim = static_cast<int>(dag.shapes[0].size());
    fwd.result_arity = static_cast<int>(dag.shapes.back().size());
    fwd.label = "forward";
    directions.push_back(std::move(fwd));

    Direction bwd;
    bwd.path.assign(dag.names.rbegin(), dag.names.rend());
    for (int i = n - 1; i >= 0; --i) bwd.rhops.push_back({&dag.rels[i], false});
    bwd.cells = SampleCells(dag.shapes.back(), 8, &rng);
    bwd.query_ndim = static_cast<int>(dag.shapes.back().size());
    bwd.result_arity = static_cast<int>(dag.shapes[0].size());
    bwd.label = "backward";
    directions.push_back(std::move(bwd));

    if (dag.has_branch) {
      Direction mixed;
      mixed.path = {"branch"};
      mixed.rhops.push_back({&dag.branch_rel, false});
      for (int i = dag.branch_from; i < n; ++i) {
        mixed.path.push_back(dag.names[static_cast<size_t>(i)]);
        mixed.rhops.push_back({&dag.rels[i], true});
      }
      mixed.path.push_back(dag.names.back());
      mixed.cells = SampleCells(dag.branch_shape, 8, &rng);
      mixed.query_ndim = static_cast<int>(dag.branch_shape.size());
      mixed.result_arity = static_cast<int>(dag.shapes.back().size());
      mixed.label = "mixed";
      directions.push_back(std::move(mixed));
    }
  }

  for (const Direction& dir : directions) {
    const BoxTable q = BoxTable::FromCells(dir.query_ndim, dir.cells);
    const TupleSet want =
        ToTupleSet(UncompressedQuery(dir.rhops, dir.cells), dir.result_arity);
    for (bool merge : {true, false}) {
      for (int threads : {1, 4}) {
        QueryOptions options;
        options.merge_between_hops = merge;
        options.num_threads = threads;
        const std::string label = std::string(dir.label) +
                                  " seed=" + std::to_string(seed) +
                                  " merge=" + std::to_string(merge) +
                                  " threads=" + std::to_string(threads);
        auto wire = client->Query(dir.path, q, options);
        ASSERT_TRUE(wire.ok()) << label << ": " << wire.status().ToString();
        EXPECT_EQ(ToTupleSet(wire.value().ExpandToCells(), dir.result_arity),
                  want)
            << label << " (wire vs ground truth)";

        auto local = oracle->ProvQuery(dir.path, q, options);
        ASSERT_TRUE(local.ok()) << label;
        EXPECT_EQ(wire.value().ExpandToCells(), local.value().ExpandToCells())
            << label << " (wire vs in-process oracle must be bit-identical)";
      }
    }
  }

  // Profiled query: the server ships QueryProfile JSON alongside.
  {
    QueryOptions options;
    options.profile = true;
    std::string profile_json;
    auto r = client->Query(directions[0].path,
                           BoxTable::FromCells(directions[0].query_ndim,
                                               directions[0].cells),
                           options, &profile_json);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(profile_json.find("hops"), std::string::npos)
        << "profile JSON missing: " << profile_json;
  }
  EXPECT_TRUE(client->Bye().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServerDifferentialTest,
                         ::testing::Range(0, 6));

// ----------------------------------------------------- sessions & tenancy --

TEST(ServerSessionTest, TenantNamespacesAreIsolated) {
  auto server = StartServer();
  auto a = Connect(*server);
  auto b = Connect(*server);
  ASSERT_TRUE(a.ok() && b.ok());

  RandomDag dag = GenerateDag(1);
  ASSERT_GE(dag.rels.size(), 2u);
  ASSERT_TRUE(a.value()->OpenStore("tenant-a").ok());
  ASSERT_TRUE(b.value()->OpenStore("tenant-b").ok());
  IngestHandle handle(a.value().get());
  ASSERT_TRUE(IngestDag(a.value().get(), &handle, dag, "").ok());

  Rng rng(7);
  const BoxTable q =
      BoxTable::FromCells(static_cast<int>(dag.shapes[0].size()),
                          SampleCells(dag.shapes[0], 4, &rng));
  // Tenant A sees its pipeline; tenant B must not.
  EXPECT_TRUE(a.value()->Query(dag.names, q).ok());
  auto cross = b.value()->Query(dag.names, q);
  EXPECT_FALSE(cross.ok()) << "tenant-b must not see tenant-a's arrays";

  // Same array names, fresh definitions in B: no clash with A's.
  ASSERT_TRUE(b.value()->DefineArray(dag.names[0], {2, 2}).ok());
  EXPECT_NE(server->store("tenant-a"), server->store("tenant-b"));
}

TEST(ServerSessionTest, ReserveIdsAreDisjointAcrossSessions) {
  auto server = StartServer();
  auto a = Connect(*server);
  auto b = Connect(*server);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a.value()->OpenStore("shared").ok());
  ASSERT_TRUE(b.value()->OpenStore("shared").ok());
  auto ra = a.value()->ReserveOpIds(100);
  auto rb = b.value()->ReserveOpIds(100);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_NE(ra.value().first, 0u) << "id 0 is reserved";
  const uint64_t a_lo = ra.value().first, a_hi = a_lo + ra.value().second;
  const uint64_t b_lo = rb.value().first, b_hi = b_lo + rb.value().second;
  EXPECT_TRUE(a_hi <= b_lo || b_hi <= a_lo)
      << "blocks overlap: [" << a_lo << "," << a_hi << ") vs [" << b_lo << ","
      << b_hi << ")";
}

TEST(ServerSessionTest, OpenStoreRejectedWhileIngestIsStaged) {
  auto server = StartServer();
  auto client = Connect(*server);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->OpenStore("first").ok());

  RandomDag dag = GenerateDag(2);
  IngestHandle handle(client.value().get(), /*id_block_size=*/4,
                      /*data_block_bytes=*/1 << 20);
  for (size_t i = 0; i < dag.names.size(); ++i)
    ASSERT_TRUE(
        client.value()->DefineArray(dag.names[i], dag.shapes[i]).ok());
  if (dag.has_branch) {
    ASSERT_TRUE(client.value()->DefineArray("branch", dag.branch_shape).ok());
  }
  auto regs = dag.Registrations();
  ASSERT_TRUE(handle.Add(regs[0]).ok());
  ASSERT_TRUE(handle.Flush().ok());  // now staged server-side, undrained

  EXPECT_FALSE(client.value()->OpenStore("second").ok())
      << "switching stores would orphan staged ingest";
  ASSERT_TRUE(handle.Drain().ok());
  EXPECT_TRUE(client.value()->OpenStore("second").ok())
      << "after Drain the session may rebind";
}

TEST(ServerSessionTest, DroppedSessionCommitsNoStagedIngest) {
  auto server = StartServer();
  RandomDag dag = GenerateDag(3);
  ASSERT_GE(dag.rels.size(), 2u);
  {
    auto client = Connect(*server);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value()->OpenStore("doomed").ok());
    IngestHandle handle(client.value().get(), /*id_block_size=*/4,
                        /*data_block_bytes=*/1 << 20);
    for (size_t i = 0; i < dag.names.size(); ++i)
      ASSERT_TRUE(
          client.value()->DefineArray(dag.names[i], dag.shapes[i]).ok());
    auto regs = dag.Registrations();
    for (auto& reg : regs) {
      if (reg.out_arr != "branch") {
        ASSERT_TRUE(handle.Add(reg).ok());
      }
    }
    ASSERT_TRUE(handle.Flush().ok());
    // Client destroyed without Drain or Bye: an abrupt disconnect.
  }
  for (int i = 0; i < 500 && server->active_sessions() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(server->active_sessions(), 0);
  const DSLog* store = server->store("doomed");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->FindEdge(dag.names[0], dag.names[1]), nullptr)
      << "teardown must discard the session's staged ingest";
}

// ---------------------------------------------------- admission control --

TEST(ServerOverloadTest, AcceptBoundShedsTypedUnavailable) {
  ServerOptions options;
  options.max_sessions = 1;
  auto server = StartServer(options);
  auto first = Connect(*server);
  ASSERT_TRUE(first.ok());

  auto second = Connect(*server);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable)
      << second.status().ToString();

  // The admitted session is unaffected by the shed.
  EXPECT_TRUE(first.value()->ServerStats().ok());
  EXPECT_TRUE(first.value()->Bye().ok());

  // Capacity freed: a later connection is admitted.
  for (int i = 0; i < 500 && server->active_sessions() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto third = Connect(*server);
  EXPECT_TRUE(third.ok()) << third.status().ToString();
}

TEST(ServerOverloadTest, InflightBoundShedsTypedUnavailable) {
  ServerOptions options;
  options.max_inflight_requests = 0;  // every dispatch sheds
  auto server = StartServer(options);
  metrics::Counter& shed =
      metrics::Registry::Global().counter("dslog.server.overloaded");
  const int64_t before = shed.Value();
  auto client = Connect(*server);
  // The Hello itself is shed — typed, in order, not a protocol error.
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable)
      << client.status().ToString();
  EXPECT_GE(shed.Value() - before, 1);
}

// -------------------------------------------------------- cancellation --

TEST(ServerCancelTest, CancelFrameIsSafeAndSessionSurvives) {
  auto server = StartServer();
  auto connected = Connect(*server);
  ASSERT_TRUE(connected.ok());
  std::unique_ptr<DslogClient> client = std::move(connected).value();
  ASSERT_TRUE(client->OpenStore("cancel").ok());
  RandomDag dag = GenerateDag(4);
  ASSERT_GE(dag.rels.size(), 2u);
  IngestHandle handle(client.get());
  ASSERT_TRUE(IngestDag(client.get(), &handle, dag, "").ok());

  Rng rng(11);
  const BoxTable q =
      BoxTable::FromCells(static_cast<int>(dag.shapes[0].size()),
                          SampleCells(dag.shapes[0], 6, &rng));
  // Race a Cancel against the in-flight query. Either the query finished
  // first (a full answer) or it was cancelled (typed kCancelled); both are
  // legal — what is *required* is that the session survives and the next
  // request works.
  std::thread canceller([&client] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const Status st = client->Cancel();
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  auto r = client->Query(dag.names, q);
  canceller.join();
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
        << r.status().ToString();
  }
  EXPECT_TRUE(client->ServerStats().ok())
      << "session must remain usable after a cancel";
  EXPECT_TRUE(client->Bye().ok());
}

TEST(ServerCancelTest, CancelBeforeQueryCancelsNothingButIsHarmless) {
  auto server = StartServer();
  auto client = Connect(*server);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->Cancel().ok());  // nothing in flight
  EXPECT_TRUE(client.value()->ServerStats().ok());
}

// ------------------------------------------------------ concurrency mix --

// Several threads share one server AND one tenant namespace, each
// ingesting its own prefixed pipeline through an IngestHandle while
// querying it. TSan (the CI job runs this suite under
// -fsanitize=thread) must stay silent, every answer must match the
// ground truth, and the server must end with zero sessions.
TEST(ServerStressTest, ConcurrentIngestAndQueriesOnSharedTenant) {
  auto server = StartServer();
  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &failures, t] {
      auto fail = [&failures](const std::string& why) {
        ADD_FAILURE() << why;
        failures.fetch_add(1);
      };
      auto connected = Connect(*server);
      if (!connected.ok()) return fail("connect: " +
                                       connected.status().ToString());
      std::unique_ptr<DslogClient> client = std::move(connected).value();
      if (!client->OpenStore("stress").ok()) return fail("open store");

      const uint64_t seed = static_cast<uint64_t>(t % 3);
      RandomDag dag = GenerateDag(seed);
      if (dag.rels.size() < 2u) return fail("starved dag");
      const std::string prefix = "t" + std::to_string(t) + "_";
      IngestHandle handle(client.get(), /*id_block_size=*/2,
                          /*data_block_bytes=*/256);
      Status ingested = IngestDag(client.get(), &handle, dag, prefix);
      if (!ingested.ok()) return fail("ingest: " + ingested.ToString());

      Rng rng(seed * 13 + static_cast<uint64_t>(t));
      std::vector<std::string> path;
      for (const std::string& name : dag.names) path.push_back(prefix + name);
      std::vector<RelationHop> rhops;
      for (const LineageRelation& rel : dag.rels)
        rhops.push_back({&rel, true});
      for (int round = 0; round < 4; ++round) {
        std::vector<int64_t> cells = SampleCells(dag.shapes[0], 5, &rng);
        const BoxTable q = BoxTable::FromCells(
            static_cast<int>(dag.shapes[0].size()), cells);
        QueryOptions options;
        options.num_threads = 1 + (round % 2) * 3;
        auto r = client->Query(path, q, options);
        if (!r.ok()) return fail("query: " + r.status().ToString());
        const int arity = static_cast<int>(dag.shapes.back().size());
        if (ToTupleSet(r.value().ExpandToCells(), arity) !=
            ToTupleSet(UncompressedQuery(rhops, cells), arity))
          return fail("thread " + std::to_string(t) + " round " +
                      std::to_string(round) + ": wire answer != ground truth");
      }
      if (!client->Bye().ok()) fail("bye");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int i = 0; i < 500 && server->active_sessions() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(server->active_sessions(), 0);
}

}  // namespace
}  // namespace net
}  // namespace dslog
