// Randomized differential test: seeded random multi-hop pipelines over the
// op registry, registered into DSLog catalogs and queried in situ, compared
// cell-for-cell (expanded, deduped) against the UncompressedQuery ground
// truth — across query direction (forward, backward, mixed), the
// merge_between_hops and materialize_forward knobs, and single- versus
// multi-threaded θ-join evaluation. This extends the hand-built equivalence
// cases in query_test.cc with pipeline-level randomized coverage.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "common/io.h"
#include "common/random.h"
#include "provrc/provrc.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "query/theta_join.h"
#include "storage/dslog.h"
#include "test_util.h"

namespace dslog {
namespace {

using test_util::GenerateDag;
using test_util::RandomDag;
using test_util::RegisterDag;
using test_util::SampleCells;
using test_util::ToTupleSet;
using test_util::TupleSet;

// Runs one path query against every catalog variant (in-memory, forward-
// materialized, and the save -> OpenInSitu leg) under every knob
// combination and compares the expanded, deduplicated cell set to the
// oracle.
struct LogVariant {
  const DSLog* log;
  const char* name;
};

void ExpectMatchesOracle(const std::vector<LogVariant>& variants,
                         const std::vector<std::string>& path,
                         const BoxTable& query,
                         const std::vector<RelationHop>& rhops,
                         const std::vector<int64_t>& query_cells,
                         int result_arity, const std::string& label) {
  const TupleSet want =
      ToTupleSet(UncompressedQuery(rhops, query_cells), result_arity);
  for (const LogVariant& variant : variants) {
    for (bool merge : {true, false}) {
      for (int threads : {1, 4}) {
        QueryOptions options;
        options.merge_between_hops = merge;
        options.num_threads = threads;
        auto got = variant.log->ProvQuery(path, query, options);
        ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
        EXPECT_EQ(ToTupleSet(got.value().ExpandToCells(), result_arity), want)
            << label << " variant=" << variant.name << " merge=" << merge
            << " threads=" << threads;
      }
    }
  }
}

class DifferentialPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialPipelineTest, InSituMatchesUncompressedOracle) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomDag dag = GenerateDag(seed);
  const int n = static_cast<int>(dag.rels.size());
  ASSERT_GE(n, 2) << "pipeline generation starved, seed " << seed;

  DSLog plain;
  DSLogOptions mat_options;
  mat_options.materialize_forward = true;
  DSLog materialized(mat_options);
  ASSERT_TRUE(RegisterDag(dag, &plain).ok());
  ASSERT_TRUE(RegisterDag(dag, &materialized).ok());

  // In-situ leg: persist the catalog as a LogStore file and serve the same
  // queries through the mapped, lazily-decoded path (at 1 and 4 threads,
  // like the others).
  const std::string store_path =
      ScratchDir() + "/differential_" + std::to_string(seed) + ".dsl";
  ASSERT_TRUE(plain.SaveLogStore(store_path).ok());
  auto insitu_opened = DSLog::OpenInSitu(store_path);
  ASSERT_TRUE(insitu_opened.ok()) << insitu_opened.status().ToString();
  const DSLog& insitu = insitu_opened.value();
  const std::vector<LogVariant> variants = {
      {&plain, "plain"}, {&materialized, "materialized"}, {&insitu, "insitu"}};

  Rng rng(seed * 31 + 7);

  // Forward: x0 -> xn.
  {
    std::vector<int64_t> cells = SampleCells(dag.shapes[0], 8, &rng);
    BoxTable q =
        BoxTable::FromCells(static_cast<int>(dag.shapes[0].size()), cells);
    std::vector<RelationHop> rhops;
    for (int i = 0; i < n; ++i) rhops.push_back({&dag.rels[i], true});
    ExpectMatchesOracle(variants, dag.names, q, rhops, cells,
                        static_cast<int>(dag.shapes.back().size()),
                        "forward seed=" + std::to_string(seed));
  }

  // Backward: xn -> x0.
  {
    std::vector<int64_t> cells = SampleCells(dag.shapes.back(), 8, &rng);
    BoxTable q = BoxTable::FromCells(
        static_cast<int>(dag.shapes.back().size()), cells);
    std::vector<std::string> path(dag.names.rbegin(), dag.names.rend());
    std::vector<RelationHop> rhops;
    for (int i = n - 1; i >= 0; --i) rhops.push_back({&dag.rels[i], false});
    ExpectMatchesOracle(variants, path, q, rhops, cells,
                        static_cast<int>(dag.shapes[0].size()),
                        "backward seed=" + std::to_string(seed));
  }

  // Mixed direction: branch -> x_{branch_from} (backward) -> ... -> xn
  // (forward).
  if (dag.has_branch) {
    std::vector<int64_t> cells = SampleCells(dag.branch_shape, 8, &rng);
    BoxTable q =
        BoxTable::FromCells(static_cast<int>(dag.branch_shape.size()), cells);
    std::vector<std::string> path = {"branch"};
    std::vector<RelationHop> rhops = {{&dag.branch_rel, false}};
    for (int i = dag.branch_from; i < n; ++i) {
      path.push_back(dag.names[static_cast<size_t>(i)]);
      rhops.push_back({&dag.rels[i], true});
    }
    path.push_back(dag.names.back());
    ExpectMatchesOracle(variants, path, q, rhops, cells,
                        static_cast<int>(dag.shapes.back().size()),
                        "mixed seed=" + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialPipelineTest,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------- AoS join oracle --

// Reference θ-joins over materialized array-of-structs rows — a direct
// port of the pre-columnar kernels (per-row vectors, linear scan, no
// interval index). The SoA kernels must stay set-equal to these on every
// hop of the randomized pipelines, across direction and thread count.
BoxTable AosBackwardJoin(const BoxTable& query,
                         const std::vector<CompressedRow>& rows, int l,
                         int m) {
  BoxTable result(m);
  std::vector<Interval> t(static_cast<size_t>(l));
  std::vector<Interval> out_box(static_cast<size_t>(m));
  for (int64_t qb = 0; qb < query.num_boxes(); ++qb) {
    auto q = query.Box(qb);
    for (const CompressedRow& row : rows) {
      bool hit = true;
      for (int k = 0; k < l && hit; ++k) {
        t[static_cast<size_t>(k)] =
            q[static_cast<size_t>(k)].Intersect(row.out[static_cast<size_t>(k)]);
        hit = t[static_cast<size_t>(k)].valid();
      }
      if (!hit) continue;
      for (int i = 0; i < m; ++i) {
        const InputCell& cell = row.in[static_cast<size_t>(i)];
        out_box[static_cast<size_t>(i)] =
            cell.is_relative() ? t[static_cast<size_t>(cell.ref)].ShiftBy(cell.iv)
                               : cell.iv;
      }
      result.AddBox(out_box);
    }
  }
  return result;
}

BoxTable AosForwardJoin(const BoxTable& query,
                        const std::vector<CompressedRow>& rows, int l, int m) {
  BoxTable result(l);
  std::vector<Interval> t(static_cast<size_t>(m));
  std::vector<Interval> out_box(static_cast<size_t>(l));
  auto implied = [](const CompressedRow& row, int i) {
    const InputCell& cell = row.in[static_cast<size_t>(i)];
    return cell.is_relative()
               ? row.out[static_cast<size_t>(cell.ref)].ShiftBy(cell.iv)
               : cell.iv;
  };
  for (int64_t qb = 0; qb < query.num_boxes(); ++qb) {
    auto q = query.Box(qb);
    for (const CompressedRow& row : rows) {
      bool hit = true;
      for (int i = 0; i < m && hit; ++i) {
        t[static_cast<size_t>(i)] =
            q[static_cast<size_t>(i)].Intersect(implied(row, i));
        hit = t[static_cast<size_t>(i)].valid();
      }
      if (!hit) continue;
      for (int j = 0; j < l; ++j)
        out_box[static_cast<size_t>(j)] = row.out[static_cast<size_t>(j)];
      bool feasible = true;
      for (int i = 0; i < m && feasible; ++i) {
        const InputCell& cell = row.in[static_cast<size_t>(i)];
        if (!cell.is_relative()) continue;
        const Interval& ti = t[static_cast<size_t>(i)];
        Interval& target = out_box[static_cast<size_t>(cell.ref)];
        target = target.Intersect({ti.lo - cell.iv.hi, ti.hi - cell.iv.lo});
        feasible = target.valid();
      }
      if (!feasible) continue;
      result.AddBox(out_box);
    }
  }
  return result;
}

class SoAVsAosJoinTest : public ::testing::TestWithParam<int> {};

TEST_P(SoAVsAosJoinTest, KernelsMatchAosOracleOnRandomPipelines) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) + 100;
  RandomDag dag = GenerateDag(seed);
  ASSERT_GE(dag.rels.size(), 2u) << "pipeline generation starved, seed "
                                 << seed;
  Rng rng(seed * 101 + 3);

  for (size_t h = 0; h < dag.rels.size(); ++h) {
    CompressedTable table = ProvRcCompress(dag.rels[h]);
    const int l = table.out_ndim();
    const int m = table.in_ndim();
    std::vector<CompressedRow> rows;
    rows.reserve(static_cast<size_t>(table.num_rows()));
    for (int64_t r = 0; r < table.num_rows(); ++r) rows.push_back(table.Row(r));

    BoxTable back_q = BoxTable::FromCells(
        l, SampleCells(dag.shapes[h + 1], 6, &rng));
    BoxTable fwd_q =
        BoxTable::FromCells(m, SampleCells(dag.shapes[h], 6, &rng));
    const std::string label =
        "seed=" + std::to_string(seed) + " hop=" + std::to_string(h);

    for (bool merge : {true, false}) {
      for (int threads : {1, 4}) {
        BoxTable back = BackwardThetaJoin(back_q, table, threads);
        BoxTable want_back = AosBackwardJoin(back_q, rows, l, m);
        if (merge) {
          back.Merge();
          want_back.Merge();
        }
        EXPECT_EQ(ToTupleSet(back.ExpandToCells(), m),
                  ToTupleSet(want_back.ExpandToCells(), m))
            << label << " backward merge=" << merge << " threads=" << threads;

        BoxTable fwd = ForwardThetaJoin(fwd_q, table, threads);
        BoxTable want_fwd = AosForwardJoin(fwd_q, rows, l, m);
        BoxTable fwd_mat =
            ForwardTable::FromBackward(table).Join(fwd_q, threads);
        if (merge) {
          fwd.Merge();
          want_fwd.Merge();
          fwd_mat.Merge();
        }
        EXPECT_EQ(ToTupleSet(fwd.ExpandToCells(), l),
                  ToTupleSet(want_fwd.ExpandToCells(), l))
            << label << " forward merge=" << merge << " threads=" << threads;
        EXPECT_EQ(ToTupleSet(fwd_mat.ExpandToCells(), l),
                  ToTupleSet(want_fwd.ExpandToCells(), l))
            << label << " forward-materialized merge=" << merge
            << " threads=" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoAVsAosJoinTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace dslog
