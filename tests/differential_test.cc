// Randomized differential test: seeded random multi-hop pipelines over the
// op registry, registered into DSLog catalogs and queried in situ, compared
// cell-for-cell (expanded, deduped) against the UncompressedQuery ground
// truth — across query direction (forward, backward, mixed), the
// merge_between_hops and materialize_forward knobs, and single- versus
// multi-threaded θ-join evaluation. This extends the hand-built equivalence
// cases in query_test.cc with pipeline-level randomized coverage.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "common/io.h"
#include "common/random.h"
#include "provrc/provrc.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "query/theta_join.h"
#include "storage/dslog.h"
#include "test_util.h"

namespace dslog {
namespace {

using test_util::SampleCells;
using test_util::ToTupleSet;
using test_util::TupleSet;

// A random linear pipeline x0 -> x1 -> ... -> xn plus (when generation
// succeeds) one branch op off an intermediate array, for mixed-direction
// paths: branch -> x_{branch_from} is a backward hop, the rest forward.
struct RandomDag {
  std::vector<std::string> names;  // chain array names x0..xn
  std::vector<std::vector<int64_t>> shapes;
  std::vector<std::string> op_names;       // op_names[i]: x_i -> x_{i+1}
  std::vector<LineageRelation> rels;       // rels[i]: x_i -> x_{i+1}
  bool has_branch = false;
  int branch_from = 0;                     // index of the branched array
  std::string branch_op;
  std::vector<int64_t> branch_shape;
  LineageRelation branch_rel;              // x_{branch_from} -> "branch"
};

RandomDag GenerateDag(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 17);
  auto pool = OpRegistry::Global().UnaryPipelineNames();
  RandomDag dag;

  std::vector<NDArray> arrays;
  arrays.push_back(rng.Bernoulli(0.5) ? NDArray::Random({48}, &rng)
                                      : NDArray::Random({8, 6}, &rng));
  dag.names.push_back("x0");
  dag.shapes.push_back(arrays[0].shape());

  const int target_steps = 3 + static_cast<int>(seed % 3);
  int guard = 0;
  while (static_cast<int>(dag.rels.size()) < target_steps && guard < 300) {
    ++guard;
    const NDArray& current = arrays.back();
    const ArrayOp* op =
        OpRegistry::Global().Find(pool[rng.Uniform(pool.size())]);
    if (!op->SupportsUnaryShape(current.shape())) continue;
    OpArgs args = op->SampleArgs(current.shape(), &rng);
    auto out = op->Apply({&current}, args);
    if (!out.ok()) continue;
    NDArray next = out.ValueOrDie();
    if (next.size() == 0 || next.size() > 20000) continue;
    auto captured = op->Capture({&current}, next, args);
    if (!captured.ok() || captured.value()[0].num_rows() == 0) continue;
    dag.rels.push_back(std::move(captured.ValueOrDie()[0]));
    dag.op_names.push_back(op->name());
    arrays.push_back(std::move(next));
    dag.names.push_back("x" + std::to_string(arrays.size() - 1));
    dag.shapes.push_back(arrays.back().shape());
  }

  // Branch op off an intermediate array (never the last, so mixed paths
  // always have at least one forward hop after the backward one).
  const int n = static_cast<int>(dag.rels.size());
  for (int attempt = 0; attempt < 60 && n >= 2 && !dag.has_branch; ++attempt) {
    int from = 1 + static_cast<int>(rng.Uniform(static_cast<uint64_t>(n - 1)));
    const NDArray& src = arrays[static_cast<size_t>(from)];
    const ArrayOp* op =
        OpRegistry::Global().Find(pool[rng.Uniform(pool.size())]);
    if (!op->SupportsUnaryShape(src.shape())) continue;
    OpArgs args = op->SampleArgs(src.shape(), &rng);
    auto out = op->Apply({&src}, args);
    if (!out.ok()) continue;
    NDArray b = out.ValueOrDie();
    if (b.size() == 0 || b.size() > 20000) continue;
    auto captured = op->Capture({&src}, b, args);
    if (!captured.ok() || captured.value()[0].num_rows() == 0) continue;
    dag.has_branch = true;
    dag.branch_from = from;
    dag.branch_op = op->name();
    dag.branch_shape = b.shape();
    dag.branch_rel = std::move(captured.ValueOrDie()[0]);
  }
  return dag;
}

void RegisterDag(const RandomDag& dag, DSLog* log) {
  for (size_t i = 0; i < dag.names.size(); ++i)
    ASSERT_TRUE(log->DefineArray(dag.names[i], dag.shapes[i]).ok());
  if (dag.has_branch) {
    ASSERT_TRUE(log->DefineArray("branch", dag.branch_shape).ok());
  }
  for (size_t i = 0; i < dag.rels.size(); ++i) {
    OperationRegistration reg;
    reg.op_name = dag.op_names[i];
    reg.in_arrs = {dag.names[i]};
    reg.out_arr = dag.names[i + 1];
    reg.captured.push_back(dag.rels[i]);
    auto outcome = log->RegisterOperation(std::move(reg));
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
  if (dag.has_branch) {
    OperationRegistration reg;
    reg.op_name = dag.branch_op;
    reg.in_arrs = {dag.names[static_cast<size_t>(dag.branch_from)]};
    reg.out_arr = "branch";
    reg.captured.push_back(dag.branch_rel);
    auto outcome = log->RegisterOperation(std::move(reg));
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
}

// Runs one path query against every catalog variant (in-memory, forward-
// materialized, and the save -> OpenInSitu leg) under every knob
// combination and compares the expanded, deduplicated cell set to the
// oracle.
struct LogVariant {
  const DSLog* log;
  const char* name;
};

void ExpectMatchesOracle(const std::vector<LogVariant>& variants,
                         const std::vector<std::string>& path,
                         const BoxTable& query,
                         const std::vector<RelationHop>& rhops,
                         const std::vector<int64_t>& query_cells,
                         int result_arity, const std::string& label) {
  const TupleSet want =
      ToTupleSet(UncompressedQuery(rhops, query_cells), result_arity);
  for (const LogVariant& variant : variants) {
    for (bool merge : {true, false}) {
      for (int threads : {1, 4}) {
        QueryOptions options;
        options.merge_between_hops = merge;
        options.num_threads = threads;
        auto got = variant.log->ProvQuery(path, query, options);
        ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
        EXPECT_EQ(ToTupleSet(got.value().ExpandToCells(), result_arity), want)
            << label << " variant=" << variant.name << " merge=" << merge
            << " threads=" << threads;
      }
    }
  }
}

class DifferentialPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialPipelineTest, InSituMatchesUncompressedOracle) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomDag dag = GenerateDag(seed);
  const int n = static_cast<int>(dag.rels.size());
  ASSERT_GE(n, 2) << "pipeline generation starved, seed " << seed;

  DSLog plain;
  DSLogOptions mat_options;
  mat_options.materialize_forward = true;
  DSLog materialized(mat_options);
  RegisterDag(dag, &plain);
  RegisterDag(dag, &materialized);
  if (::testing::Test::HasFatalFailure()) return;

  // In-situ leg: persist the catalog as a LogStore file and serve the same
  // queries through the mapped, lazily-decoded path (at 1 and 4 threads,
  // like the others).
  const std::string store_path =
      ScratchDir() + "/differential_" + std::to_string(seed) + ".dsl";
  ASSERT_TRUE(plain.SaveLogStore(store_path).ok());
  auto insitu_opened = DSLog::OpenInSitu(store_path);
  ASSERT_TRUE(insitu_opened.ok()) << insitu_opened.status().ToString();
  const DSLog& insitu = insitu_opened.value();
  const std::vector<LogVariant> variants = {
      {&plain, "plain"}, {&materialized, "materialized"}, {&insitu, "insitu"}};

  Rng rng(seed * 31 + 7);

  // Forward: x0 -> xn.
  {
    std::vector<int64_t> cells = SampleCells(dag.shapes[0], 8, &rng);
    BoxTable q =
        BoxTable::FromCells(static_cast<int>(dag.shapes[0].size()), cells);
    std::vector<RelationHop> rhops;
    for (int i = 0; i < n; ++i) rhops.push_back({&dag.rels[i], true});
    ExpectMatchesOracle(variants, dag.names, q, rhops, cells,
                        static_cast<int>(dag.shapes.back().size()),
                        "forward seed=" + std::to_string(seed));
  }

  // Backward: xn -> x0.
  {
    std::vector<int64_t> cells = SampleCells(dag.shapes.back(), 8, &rng);
    BoxTable q = BoxTable::FromCells(
        static_cast<int>(dag.shapes.back().size()), cells);
    std::vector<std::string> path(dag.names.rbegin(), dag.names.rend());
    std::vector<RelationHop> rhops;
    for (int i = n - 1; i >= 0; --i) rhops.push_back({&dag.rels[i], false});
    ExpectMatchesOracle(variants, path, q, rhops, cells,
                        static_cast<int>(dag.shapes[0].size()),
                        "backward seed=" + std::to_string(seed));
  }

  // Mixed direction: branch -> x_{branch_from} (backward) -> ... -> xn
  // (forward).
  if (dag.has_branch) {
    std::vector<int64_t> cells = SampleCells(dag.branch_shape, 8, &rng);
    BoxTable q =
        BoxTable::FromCells(static_cast<int>(dag.branch_shape.size()), cells);
    std::vector<std::string> path = {"branch"};
    std::vector<RelationHop> rhops = {{&dag.branch_rel, false}};
    for (int i = dag.branch_from; i < n; ++i) {
      path.push_back(dag.names[static_cast<size_t>(i)]);
      rhops.push_back({&dag.rels[i], true});
    }
    path.push_back(dag.names.back());
    ExpectMatchesOracle(variants, path, q, rhops, cells,
                        static_cast<int>(dag.shapes.back().size()),
                        "mixed seed=" + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialPipelineTest,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------- AoS join oracle --

// Reference θ-joins over materialized array-of-structs rows — a direct
// port of the pre-columnar kernels (per-row vectors, linear scan, no
// interval index). The SoA kernels must stay set-equal to these on every
// hop of the randomized pipelines, across direction and thread count.
BoxTable AosBackwardJoin(const BoxTable& query,
                         const std::vector<CompressedRow>& rows, int l,
                         int m) {
  BoxTable result(m);
  std::vector<Interval> t(static_cast<size_t>(l));
  std::vector<Interval> out_box(static_cast<size_t>(m));
  for (int64_t qb = 0; qb < query.num_boxes(); ++qb) {
    auto q = query.Box(qb);
    for (const CompressedRow& row : rows) {
      bool hit = true;
      for (int k = 0; k < l && hit; ++k) {
        t[static_cast<size_t>(k)] =
            q[static_cast<size_t>(k)].Intersect(row.out[static_cast<size_t>(k)]);
        hit = t[static_cast<size_t>(k)].valid();
      }
      if (!hit) continue;
      for (int i = 0; i < m; ++i) {
        const InputCell& cell = row.in[static_cast<size_t>(i)];
        out_box[static_cast<size_t>(i)] =
            cell.is_relative() ? t[static_cast<size_t>(cell.ref)].ShiftBy(cell.iv)
                               : cell.iv;
      }
      result.AddBox(out_box);
    }
  }
  return result;
}

BoxTable AosForwardJoin(const BoxTable& query,
                        const std::vector<CompressedRow>& rows, int l, int m) {
  BoxTable result(l);
  std::vector<Interval> t(static_cast<size_t>(m));
  std::vector<Interval> out_box(static_cast<size_t>(l));
  auto implied = [](const CompressedRow& row, int i) {
    const InputCell& cell = row.in[static_cast<size_t>(i)];
    return cell.is_relative()
               ? row.out[static_cast<size_t>(cell.ref)].ShiftBy(cell.iv)
               : cell.iv;
  };
  for (int64_t qb = 0; qb < query.num_boxes(); ++qb) {
    auto q = query.Box(qb);
    for (const CompressedRow& row : rows) {
      bool hit = true;
      for (int i = 0; i < m && hit; ++i) {
        t[static_cast<size_t>(i)] =
            q[static_cast<size_t>(i)].Intersect(implied(row, i));
        hit = t[static_cast<size_t>(i)].valid();
      }
      if (!hit) continue;
      for (int j = 0; j < l; ++j)
        out_box[static_cast<size_t>(j)] = row.out[static_cast<size_t>(j)];
      bool feasible = true;
      for (int i = 0; i < m && feasible; ++i) {
        const InputCell& cell = row.in[static_cast<size_t>(i)];
        if (!cell.is_relative()) continue;
        const Interval& ti = t[static_cast<size_t>(i)];
        Interval& target = out_box[static_cast<size_t>(cell.ref)];
        target = target.Intersect({ti.lo - cell.iv.hi, ti.hi - cell.iv.lo});
        feasible = target.valid();
      }
      if (!feasible) continue;
      result.AddBox(out_box);
    }
  }
  return result;
}

class SoAVsAosJoinTest : public ::testing::TestWithParam<int> {};

TEST_P(SoAVsAosJoinTest, KernelsMatchAosOracleOnRandomPipelines) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) + 100;
  RandomDag dag = GenerateDag(seed);
  ASSERT_GE(dag.rels.size(), 2u) << "pipeline generation starved, seed "
                                 << seed;
  Rng rng(seed * 101 + 3);

  for (size_t h = 0; h < dag.rels.size(); ++h) {
    CompressedTable table = ProvRcCompress(dag.rels[h]);
    const int l = table.out_ndim();
    const int m = table.in_ndim();
    std::vector<CompressedRow> rows;
    rows.reserve(static_cast<size_t>(table.num_rows()));
    for (int64_t r = 0; r < table.num_rows(); ++r) rows.push_back(table.Row(r));

    BoxTable back_q = BoxTable::FromCells(
        l, SampleCells(dag.shapes[h + 1], 6, &rng));
    BoxTable fwd_q =
        BoxTable::FromCells(m, SampleCells(dag.shapes[h], 6, &rng));
    const std::string label =
        "seed=" + std::to_string(seed) + " hop=" + std::to_string(h);

    for (bool merge : {true, false}) {
      for (int threads : {1, 4}) {
        BoxTable back = BackwardThetaJoin(back_q, table, threads);
        BoxTable want_back = AosBackwardJoin(back_q, rows, l, m);
        if (merge) {
          back.Merge();
          want_back.Merge();
        }
        EXPECT_EQ(ToTupleSet(back.ExpandToCells(), m),
                  ToTupleSet(want_back.ExpandToCells(), m))
            << label << " backward merge=" << merge << " threads=" << threads;

        BoxTable fwd = ForwardThetaJoin(fwd_q, table, threads);
        BoxTable want_fwd = AosForwardJoin(fwd_q, rows, l, m);
        BoxTable fwd_mat =
            ForwardTable::FromBackward(table).Join(fwd_q, threads);
        if (merge) {
          fwd.Merge();
          want_fwd.Merge();
          fwd_mat.Merge();
        }
        EXPECT_EQ(ToTupleSet(fwd.ExpandToCells(), l),
                  ToTupleSet(want_fwd.ExpandToCells(), l))
            << label << " forward merge=" << merge << " threads=" << threads;
        EXPECT_EQ(ToTupleSet(fwd_mat.ExpandToCells(), l),
                  ToTupleSet(want_fwd.ExpandToCells(), l))
            << label << " forward-materialized merge=" << merge
            << " threads=" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoAVsAosJoinTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace dslog
