// LogStore subsystem tests: the single-file on-disk format (round trip,
// incremental append, legacy-directory conversion), the lazy in-situ query
// path (decode counters, LRU bounds, concurrent readers), the mmap
// abstraction with its read fallback, and corruption handling (flipped
// segment bytes, truncated footers — every failure must surface as
// Status::Corruption, never UB; the CI ASan job runs this whole suite).

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "array/ndarray.h"
#include "array/op_registry.h"
#include "common/hash.h"
#include "common/io.h"
#include "common/mmap_file.h"
#include "compress/varint.h"
#include "common/random.h"
#include "lineage/lineage_relation.h"
#include "provrc/provrc.h"
#include "provrc/serialize.h"
#include "query/box.h"
#include "storage/dslog.h"
#include "storage/logstore.h"
#include "test_util.h"

namespace dslog {
namespace {

using test_util::ToTupleSet;

std::string TestPath(const std::string& name) {
  return ScratchDir() + "/" + name;
}

/// Identity lineage over a 1-D array of `n` cells: out i <- in i.
LineageRelation IdentityRelation(int64_t n) {
  LineageRelation rel(1, 1);
  rel.set_shapes({n}, {n});
  for (int64_t i = 0; i < n; ++i) {
    const int64_t tuple[2] = {i, i};
    rel.AddTuple(tuple);
  }
  return rel;
}

/// Shifted lineage: out i <- in (i + 1) mod n. Distinct per-edge content so
/// replaced/corrupted segments are distinguishable from identity.
LineageRelation ShiftRelation(int64_t n) {
  LineageRelation rel(1, 1);
  rel.set_shapes({n}, {n});
  for (int64_t i = 0; i < n; ++i) {
    const int64_t tuple[2] = {i, (i + 1) % n};
    rel.AddTuple(tuple);
  }
  return rel;
}

/// Registers the chain a<first> -> ... -> a<first+num_edges> of identity
/// edges over {width} arrays (defining all arrays that do not exist yet).
void BuildChain(DSLog* log, int first, int num_edges, int64_t width) {
  if (first == 0) {
    ASSERT_TRUE(log->DefineArray("a0", {width}).ok());
  }
  for (int i = first; i < first + num_edges; ++i) {
    std::string in = "a" + std::to_string(i);
    std::string out = "a" + std::to_string(i + 1);
    ASSERT_TRUE(log->DefineArray(out, {width}).ok());
    OperationRegistration reg;
    reg.op_name = "chain_step";
    reg.in_arrs = {in};
    reg.out_arr = out;
    reg.captured.push_back(IdentityRelation(width));
    reg.reuse = false;
    auto outcome = log->RegisterOperation(std::move(reg));
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
}

std::vector<std::string> ChainPath(int from, int to) {
  std::vector<std::string> path;
  const int step = from <= to ? 1 : -1;
  for (int i = from;; i += step) {
    path.push_back("a" + std::to_string(i));
    if (i == to) break;
  }
  return path;
}

// ---------------------------------------------------------------- MmapFile --

TEST(MmapFileTest, MapsAndFallsBackIdentically) {
  const std::string path = TestPath("mmap_basic.bin");
  const std::string payload = "hello mapped world";
  ASSERT_TRUE(WriteFile(path, payload).ok());
  auto mapped = MmapFile::Open(path, /*allow_mmap=*/true);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().mapped());
  EXPECT_EQ(mapped.value().view(), payload);
  auto fallback = MmapFile::Open(path, /*allow_mmap=*/false);
  ASSERT_TRUE(fallback.ok());
  EXPECT_FALSE(fallback.value().mapped());
  EXPECT_EQ(fallback.value().view(), payload);
  EXPECT_EQ(fallback.value().view(6, 6), "mapped");
}

TEST(MmapFileTest, MissingFileIsIOErrorAndEmptyFileIsEmpty) {
  EXPECT_FALSE(MmapFile::Open(TestPath("nonexistent.bin")).ok());
  const std::string path = TestPath("mmap_empty.bin");
  ASSERT_TRUE(WriteFile(path, "").ok());
  auto file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file.value().size(), 0u);
}

TEST(MmapFileTest, MoveTransfersView) {
  const std::string path = TestPath("mmap_move.bin");
  ASSERT_TRUE(WriteFile(path, "payload").ok());
  for (bool allow_mmap : {true, false}) {
    auto opened = MmapFile::Open(path, allow_mmap);
    ASSERT_TRUE(opened.ok());
    MmapFile moved = std::move(opened).ValueOrDie();
    MmapFile again = std::move(moved);
    EXPECT_EQ(again.view(), "payload");
  }
}

// -------------------------------------------------------------- round trip --

TEST(LogStoreTest, RoundTripMatchesInMemoryCatalog) {
  DSLog log;
  BuildChain(&log, 0, 8, 16);
  // Both segment layouts must round-trip identical query results; the
  // gzip layout additionally preserves the in-memory footprint accounting
  // (columnar trades bytes for zero-copy scans, so its file is bigger).
  for (SegmentLayout layout :
       {SegmentLayout::kColumnar, SegmentLayout::kProvRcGzip}) {
    const std::string path = TestPath(
        layout == SegmentLayout::kColumnar ? "roundtrip_v2.dsl"
                                           : "roundtrip_v1.dsl");
    ASSERT_TRUE(log.SaveLogStore(path, layout).ok());

    auto opened = DSLog::OpenInSitu(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const DSLog& insitu = opened.value();
    EXPECT_TRUE(insitu.HasArray("a0"));
    EXPECT_TRUE(insitu.HasArray("a8"));
    EXPECT_EQ(insitu.ArrayShape("a3").ValueOrDie(),
              (std::vector<int64_t>{16}));

    for (const auto& path_arrays :
         {ChainPath(0, 8), ChainPath(8, 0), ChainPath(5, 2)}) {
      BoxTable q = BoxTable::FromCells(1, {3, 7});
      auto want = log.ProvQuery(path_arrays, q);
      auto got = insitu.ProvQuery(path_arrays, q);
      ASSERT_TRUE(want.ok() && got.ok()) << got.status().ToString();
      EXPECT_EQ(ToTupleSet(got.value().ExpandToCells(), 1),
                ToTupleSet(want.value().ExpandToCells(), 1));
    }

    auto store = insitu.log_store();
    ASSERT_NE(store, nullptr);
    EXPECT_TRUE(store->mapped());
    EXPECT_EQ(store->stats().segment_count, 8);
    for (const auto& seg : store->segments()) {
      EXPECT_EQ(seg.layout, layout);
      EXPECT_GT(seg.row_count, 0);
    }
    if (layout == SegmentLayout::kProvRcGzip)
      EXPECT_EQ(insitu.StorageFootprintBytes(), log.StorageFootprintBytes());
    else
      EXPECT_GT(insitu.StorageFootprintBytes(), 0);
  }
}

TEST(LogStoreTest, ReadFallbackServesIdenticalResults) {
  DSLog log;
  BuildChain(&log, 0, 4, 8);
  const std::string path = TestPath("fallback.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());
  InSituOptions options;
  options.store.use_mmap = false;
  auto opened = DSLog::OpenInSitu(path, options);
  ASSERT_TRUE(opened.ok());
  EXPECT_FALSE(opened.value().log_store()->mapped());
  auto got = opened.value().ProvQuery(ChainPath(4, 0), BoxTable::FromCells(1, {5}));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().ExpandToCells(), (std::vector<int64_t>{5}));
}

// ------------------------------------------------------------- lazy decode --

TEST(LogStoreTest, BackwardQueryDecodesUnderTenPercentOfSegments) {
  // The v1 (ProvRC-GZip) leg: on a >= 500-edge catalog, a backward path
  // query must decode only the segments on its path (< 10% of the log).
  // Also the compatibility guarantee that gzip stores keep opening and
  // querying through OpenInSitu now that columnar is the write default.
  DSLog log;
  BuildChain(&log, 0, 500, 8);
  const std::string path = TestPath("large_chain.dsl");
  ASSERT_TRUE(log.SaveLogStore(path, SegmentLayout::kProvRcGzip).ok());

  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const DSLog& insitu = opened.value();
  ASSERT_EQ(insitu.log_store()->stats().segment_count, 500);
  EXPECT_EQ(insitu.log_store()->stats().segments_touched, 0);

  // Backward over the last five edges of the chain.
  BoxTable q = BoxTable::FromCells(1, {2});
  auto got = insitu.ProvQuery(ChainPath(500, 495), q);
  auto want = log.ProvQuery(ChainPath(500, 495), q);
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ(ToTupleSet(got.value().ExpandToCells(), 1),
            ToTupleSet(want.value().ExpandToCells(), 1));

  LogStoreStats stats = insitu.log_store()->stats();
  EXPECT_EQ(stats.segments_touched, 5);  // exactly the path's edges
  EXPECT_LT(stats.segments_touched, stats.segment_count / 10);
  EXPECT_GT(stats.bytes_decompressed, 0);

  // Re-running the query is pure cache hits: no new decodes.
  ASSERT_TRUE(insitu.ProvQuery(ChainPath(500, 495), q).ok());
  LogStoreStats again = insitu.log_store()->stats();
  EXPECT_EQ(again.segments_touched, 5);
  EXPECT_EQ(again.decode_count, stats.decode_count);
  EXPECT_GT(again.cache_hits, stats.cache_hits);
}

TEST(LogStoreTest, ColumnarQueryIsZeroCopy) {
  // The acceptance bar for the columnar layout: a path query over a v2
  // store borrows its segments straight from the mapping — zero bytes
  // decompressed and zero rows materialized into owned arenas (no per-row
  // allocation anywhere in the decode path), with only the path's
  // segments touched.
  DSLog log;
  BuildChain(&log, 0, 64, 16);
  const std::string path = TestPath("columnar_chain.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());  // default layout = columnar

  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const DSLog& insitu = opened.value();
  ASSERT_TRUE(insitu.log_store()->mapped());

  BoxTable q = BoxTable::FromCells(1, {2});
  auto got = insitu.ProvQuery(ChainPath(64, 59), q);
  auto want = log.ProvQuery(ChainPath(64, 59), q);
  ASSERT_TRUE(got.ok() && want.ok()) << got.status().ToString();
  EXPECT_EQ(ToTupleSet(got.value().ExpandToCells(), 1),
            ToTupleSet(want.value().ExpandToCells(), 1));

  LogStoreStats stats = insitu.log_store()->stats();
  EXPECT_EQ(stats.segments_touched, 5);  // exactly the path's edges
  EXPECT_EQ(stats.segments_borrowed, 5);
  EXPECT_EQ(stats.bytes_decompressed, 0);
  EXPECT_EQ(stats.tables_materialized, 0);
  EXPECT_EQ(stats.rows_materialized, 0);

  // Repeat queries are pure cache hits on the pinned views.
  ASSERT_TRUE(insitu.ProvQuery(ChainPath(64, 59), q).ok());
  LogStoreStats again = insitu.log_store()->stats();
  EXPECT_EQ(again.decode_count, stats.decode_count);
  EXPECT_GT(again.cache_hits, stats.cache_hits);
  EXPECT_EQ(again.rows_materialized, 0);
}

TEST(LogStoreTest, MixedLayoutStoreServesBothSegmentKinds) {
  // A gzip store extended by a columnar append is a legitimate mixed-
  // version file: old segments keep decoding, new ones borrow, and the
  // footer records which is which.
  DSLog log;
  BuildChain(&log, 0, 4, 16);
  const std::string path = TestPath("mixed_layout.dsl");
  ASSERT_TRUE(log.SaveLogStore(path, SegmentLayout::kProvRcGzip).ok());
  BuildChain(&log, 4, 4, 16);
  ASSERT_TRUE(log.AppendLogStore(path).ok());  // appends columnar

  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const DSLog& insitu = opened.value();
  int v1 = 0, v2 = 0;
  for (const auto& seg : insitu.log_store()->segments()) {
    if (seg.layout == SegmentLayout::kProvRcGzip)
      ++v1;
    else
      ++v2;
  }
  EXPECT_EQ(v1, 4);
  EXPECT_EQ(v2, 4);

  // One query spanning both halves of the chain exercises both decode
  // paths in a single traversal.
  BoxTable q = BoxTable::FromCells(1, {9});
  auto got = insitu.ProvQuery(ChainPath(0, 8), q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().ExpandToCells(), (std::vector<int64_t>{9}));
  LogStoreStats stats = insitu.log_store()->stats();
  EXPECT_EQ(stats.tables_materialized, 4);
  EXPECT_EQ(stats.segments_borrowed, 4);
  EXPECT_GT(stats.bytes_decompressed, 0);
}

TEST(LogStoreTest, ColumnarHeapFallbackStillAnswersQueries) {
  // With mmap disabled the file lands in a heap buffer; columnar segments
  // still serve correct results (borrowing when the buffer happens to be
  // aligned, materializing owned tables otherwise — both are valid).
  DSLog log;
  BuildChain(&log, 0, 6, 16);
  const std::string path = TestPath("columnar_fallback.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());
  InSituOptions options;
  options.store.use_mmap = false;
  auto opened = DSLog::OpenInSitu(path, options);
  ASSERT_TRUE(opened.ok());
  EXPECT_FALSE(opened.value().log_store()->mapped());
  auto got =
      opened.value().ProvQuery(ChainPath(6, 0), BoxTable::FromCells(1, {5}));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().ExpandToCells(), (std::vector<int64_t>{5}));
}

TEST(LogStoreTest, TinyCacheEvictsButStaysCorrect) {
  DSLog log;
  BuildChain(&log, 0, 40, 64);
  const std::string path = TestPath("tiny_cache.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());

  InSituOptions options;
  options.store.cache_capacity_bytes = 2048;  // a handful of decoded tables
  auto opened = DSLog::OpenInSitu(path, options);
  ASSERT_TRUE(opened.ok());
  const DSLog& insitu = opened.value();

  BoxTable q = BoxTable::FromCells(1, {11});
  for (int rep = 0; rep < 3; ++rep) {
    auto got = insitu.ProvQuery(ChainPath(0, 40), q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value().ExpandToCells(), (std::vector<int64_t>{11}));
  }
  LogStoreStats stats = insitu.log_store()->stats();
  EXPECT_EQ(stats.segments_touched, 40);
  EXPECT_GT(stats.evictions, 0);
  // Eviction forced re-decodes on the later sweeps.
  EXPECT_GT(stats.decode_count, stats.segments_touched);
}

TEST(LogStoreTest, FindEdgeDecodesLazilyAndStaysValid) {
  DSLog log;
  BuildChain(&log, 0, 3, 8);
  const std::string path = TestPath("findedge.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());
  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok());
  const CompressedTable* table = opened.value().FindEdge("a0", "a1");
  ASSERT_NE(table, nullptr);
  EXPECT_GT(table->num_rows(), 0);
  EXPECT_EQ(opened.value().FindEdge("a0", "nope"), nullptr);
}

// ------------------------------------------------------------------ append --

TEST(LogStoreTest, AppendPersistsNewOperationsIncrementally) {
  DSLog log;
  BuildChain(&log, 0, 4, 16);
  const std::string path = TestPath("append.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());
  const int64_t size_after_save =
      static_cast<int64_t>(std::filesystem::file_size(path));

  // Register four more operations and append only those.
  BuildChain(&log, 4, 4, 16);
  ASSERT_TRUE(log.AppendLogStore(path).ok());

  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().log_store()->stats().segment_count, 8);
  EXPECT_GT(static_cast<int64_t>(std::filesystem::file_size(path)),
            size_after_save);
  auto got =
      opened.value().ProvQuery(ChainPath(0, 8), BoxTable::FromCells(1, {9}));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().ExpandToCells(), (std::vector<int64_t>{9}));

  // A second append with nothing new keeps the file valid and complete.
  ASSERT_TRUE(log.AppendLogStore(path).ok());
  auto reopened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().log_store()->stats().segment_count, 8);
}

TEST(LogStoreTest, AppendRepersistsEdgeWhoseLineageChanged) {
  // A re-registered edge (same in/out arrays, different lineage) must be
  // re-persisted by AppendLogStore — only byte-identical segments may be
  // skipped.
  const std::string path = TestPath("append_changed.dsl");
  DSLog log;
  ASSERT_TRUE(log.DefineArray("u", {8}).ok());
  ASSERT_TRUE(log.DefineArray("v", {8}).ok());
  auto register_edge = [&](LineageRelation rel) {
    OperationRegistration reg;
    reg.op_name = "step";
    reg.in_arrs = {"u"};
    reg.out_arr = "v";
    reg.captured.push_back(std::move(rel));
    reg.reuse = false;
    ASSERT_TRUE(log.RegisterOperation(std::move(reg)).ok());
  };
  register_edge(IdentityRelation(8));
  ASSERT_TRUE(log.SaveLogStore(path).ok());

  register_edge(ShiftRelation(8));  // overwrite with different lineage
  ASSERT_TRUE(log.AppendLogStore(path).ok());

  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto got = opened.value().ProvQuery({"u", "v"}, BoxTable::FromCells(1, {0}));
  ASSERT_TRUE(got.ok());
  // Shifted lineage: input 0 feeds output 7 — not the stale identity's 0.
  EXPECT_EQ(got.value().ExpandToCells(), (std::vector<int64_t>{7}));

  // Appending again with unchanged content adds no segment bytes.
  const auto size_before = std::filesystem::file_size(path);
  ASSERT_TRUE(log.AppendLogStore(path).ok());
  EXPECT_EQ(std::filesystem::file_size(path), size_before);
}

TEST(LogStoreTest, WriterReplacementNewestSegmentWins) {
  const std::string path = TestPath("replace.dsl");
  {
    auto writer = LogStoreWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    writer.value().PutArray("x", {8});
    writer.value().PutArray("y", {8});
    ASSERT_TRUE(writer.value()
                    .AppendEdge("x", "y", "op",
                                ProvRcCompress(IdentityRelation(8)))
                    .ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  {
    auto writer = LogStoreWriter::OpenForAppend(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_TRUE(writer.value().HasEdge("x", "y"));
    ASSERT_TRUE(writer.value()
                    .AppendEdge("x", "y", "op",
                                ProvRcCompress(ShiftRelation(8)))
                    .ok());
    ASSERT_TRUE(writer.value().Finish().ok());
  }
  auto store = LogStore::Open(path);
  ASSERT_TRUE(store.ok());
  ASSERT_EQ(store.value()->segments().size(), 1u);
  auto table = store.value()->Table(0);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table.value()->Decompress().EqualAsSet(ShiftRelation(8)));
  EXPECT_FALSE(store.value()->Table(7).ok());  // out of range
}

TEST(LogStoreTest, ConvertedLegacyDirectoryServesQueriesAndPredictor) {
  // Promote a dim_sig mapping, save legacy, convert, and check both the
  // lineage and the reuse state crossed over.
  DSLog log;
  Rng rng(71);
  const ArrayOp* neg = OpRegistry::Global().Find("negative");
  for (int call = 0; call < 2; ++call) {
    std::string x = "cx" + std::to_string(call);
    std::string y = "cy" + std::to_string(call);
    ASSERT_TRUE(log.DefineArray(x, {24}).ok());
    ASSERT_TRUE(log.DefineArray(y, {24}).ok());
    NDArray xv = NDArray::Random({24}, &rng);
    NDArray yv = neg->Apply({&xv}, OpArgs()).ValueOrDie();
    auto rels = neg->Capture({&xv}, yv, OpArgs()).ValueOrDie();
    OperationRegistration reg{"negative", {x}, y, {rels[0]}, OpArgs(),
                              xv.ContentHash(), true};
    ASSERT_TRUE(log.RegisterOperation(std::move(reg)).ok());
  }
  ASSERT_EQ(log.reuse_stats().dim_promotions, 1);

  const std::string dir = TestPath("convert_dir");
  const std::string path = TestPath("converted.dsl");
  ASSERT_TRUE(log.Save(dir).ok());
  ASSERT_TRUE(ConvertLegacyDirToLogStore(dir, path).ok());

  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DSLog& insitu = opened.value();
  auto got = insitu.ProvQuery({"cy0", "cx0"}, BoxTable::FromCells(1, {4}));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().ExpandToCells(), (std::vector<int64_t>{4}));
  EXPECT_EQ(insitu.reuse_stats().dim_promotions, 1);

  // The restored predictor serves a third call without capture.
  ASSERT_TRUE(insitu.DefineArray("cx2", {24}).ok());
  ASSERT_TRUE(insitu.DefineArray("cy2", {24}).ok());
  OperationRegistration reg{"negative", {"cx2"}, "cy2", {}, OpArgs(), 0, true};
  auto outcome = insitu.RegisterOperation(std::move(reg));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome.value().dim_hit);
}

// -------------------------------------------------------------- corruption --

TEST(LogStoreCorruptionTest, FlippedSegmentByteIsDetectedAtDecode) {
  DSLog log;
  BuildChain(&log, 0, 6, 32);
  const std::string path = TestPath("corrupt_segment.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());

  // Locate segment a2 -> a3 through a clean open, then flip one byte.
  uint64_t offset = 0, length = 0;
  {
    auto store = LogStore::Open(path);
    ASSERT_TRUE(store.ok());
    for (const auto& seg : store.value()->segments())
      if (seg.in_arr == "a2" && seg.out_arr == "a3") {
        offset = seg.offset;
        length = seg.length;
      }
    ASSERT_GT(length, 0u);
  }
  std::string bytes = ReadFileToString(path).ValueOrDie();
  bytes[offset + length / 2] = static_cast<char>(
      static_cast<uint8_t>(bytes[offset + length / 2]) ^ 0xFF);
  ASSERT_TRUE(WriteFile(path, bytes).ok());

  // The open itself succeeds (footer intact); only touching the corrupt
  // segment fails, and with Corruption, not UB.
  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto clean = opened.value().ProvQuery(ChainPath(0, 2),
                                        BoxTable::FromCells(1, {1}));
  EXPECT_TRUE(clean.ok()) << clean.status().ToString();
  auto corrupt = opened.value().ProvQuery(ChainPath(0, 6),
                                          BoxTable::FromCells(1, {1}));
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kCorruption)
      << corrupt.status().ToString();
}

TEST(LogStoreCorruptionTest, ColumnarRefOutOfRangeIsCorruptionEvenUnchecked) {
  // Structural validation must hold even with checksums off: a corrupt
  // relative ref in a borrowed columnar segment would index out of the
  // join kernels' scratch, so the borrow itself has to reject it.
  DSLog log;
  BuildChain(&log, 0, 2, 8);
  const std::string path = TestPath("corrupt_ref.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());

  // v4 stores the segment records in PHF-position order, so locate the
  // a0->a1 edge (the one the query below touches) by name, not by index.
  uint64_t offset = 0, length = 0;
  {
    auto store = LogStore::Open(path);
    ASSERT_TRUE(store.ok());
    for (const auto& seg : store.value()->segments())
      if (seg.in_arr == "a0" && seg.out_arr == "a1") {
        ASSERT_EQ(seg.layout, SegmentLayout::kColumnar);
        offset = seg.offset;
        length = seg.length;
      }
    ASSERT_GT(length, 0u);
  }
  // The int32 ref array is the (8-padded) tail of a columnar image; force
  // its low byte to a huge attribute index.
  std::string bytes = ReadFileToString(path).ValueOrDie();
  bytes[offset + length - 8] = 0x7F;
  ASSERT_TRUE(WriteFile(path, bytes).ok());

  InSituOptions options;
  options.store.verify_checksums = false;
  auto opened = DSLog::OpenInSitu(path, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto got = opened.value().ProvQuery({"a1", "a0"}, BoxTable::FromCells(1, {0}));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
      << got.status().ToString();
}

TEST(LogStoreCorruptionTest, ColumnarTruncatedSegmentIsCorruption) {
  // A columnar segment whose bytes cannot hold the advertised row count
  // (image-size mismatch) must fail closed at first touch.
  DSLog log;
  BuildChain(&log, 0, 2, 8);
  const std::string path = TestPath("corrupt_truncated_v2.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());
  uint64_t offset = 0;
  {
    auto store = LogStore::Open(path);
    ASSERT_TRUE(store.ok());
    for (const auto& seg : store.value()->segments())
      if (seg.in_arr == "a0" && seg.out_arr == "a1") offset = seg.offset;
    ASSERT_GT(offset, 0u);
  }
  // Inflate the claimed row count inside the segment header (offset 16).
  std::string bytes = ReadFileToString(path).ValueOrDie();
  bytes[offset + 16] = 0x40;
  ASSERT_TRUE(WriteFile(path, bytes).ok());
  InSituOptions options;
  options.store.verify_checksums = false;  // reach the structural check
  auto opened = DSLog::OpenInSitu(path, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto got = opened.value().ProvQuery({"a1", "a0"}, BoxTable::FromCells(1, {0}));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
      << got.status().ToString();
}

TEST(LogStoreCorruptionTest, TruncationsAndGarbageAreCorruption) {
  DSLog log;
  BuildChain(&log, 0, 3, 16);
  const std::string path = TestPath("corrupt_footer.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());
  const std::string intact = ReadFileToString(path).ValueOrDie();

  auto expect_corruption = [&](std::string mutated, const char* label) {
    const std::string mutated_path = TestPath("corrupt_variant.dsl");
    ASSERT_TRUE(WriteFile(mutated_path, std::move(mutated)).ok());
    auto opened = DSLog::OpenInSitu(mutated_path);
    ASSERT_FALSE(opened.ok()) << label;
    EXPECT_EQ(opened.status().code(), StatusCode::kCorruption)
        << label << ": " << opened.status().ToString();
  };

  // Truncated footer/trailer (the torn-append signature).
  expect_corruption(intact.substr(0, intact.size() - 10), "truncated trailer");
  expect_corruption(intact.substr(0, intact.size() / 2), "truncated footer");
  expect_corruption(intact.substr(0, 4), "shorter than header");
  expect_corruption("", "empty file");
  // Bad header magic.
  {
    std::string bad = intact;
    bad[0] = 'X';
    expect_corruption(std::move(bad), "bad header magic");
  }
  // Flipped byte inside the footer (checksum mismatch).
  {
    std::string bad = intact;
    bad[bad.size() - 30] = static_cast<char>(
        static_cast<uint8_t>(bad[bad.size() - 30]) ^ 0xFF);
    expect_corruption(std::move(bad), "footer byte flip");
  }
  // The original still opens.
  EXPECT_TRUE(DSLog::OpenInSitu(path).ok());
}

TEST(LogStoreCorruptionTest, OverflowingFooterVarintIsCorruption) {
  // Hand-crafted file whose footer *checksum is valid* but whose
  // array-count varint is a ten-byte encoding overflowing uint64. The old
  // decoder silently wrapped it to 0 and then "successfully" parsed the
  // rest, opening an empty store from a corrupt footer; the decoder must
  // reject the overflow as Corruption instead.
  std::string footer;
  PutVarint64(&footer, 3);     // format version
  footer.append(9, '\x80');    // continuation bytes up to shift 63
  footer.push_back('\x02');    // 10th byte: bit 64 set -> overflow -> "0"
  PutVarint64(&footer, 0);     // num_segments (parses fine after the wrap)
  PutVarint64(&footer, 0);     // predictor-state length
  std::string file("DSLSTOR1");
  const uint64_t footer_offset = file.size();
  file += footer;
  PutFixed64(&file, footer_offset);
  PutFixed64(&file, Hash64(footer));  // checksum must NOT mask the varint
  file += "DSLF";
  const std::string path = TestPath("overflow_varint.dsl");
  ASSERT_TRUE(WriteFile(path, file).ok());
  auto opened = LogStore::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption)
      << opened.status().ToString();
}

TEST(LogStoreTest, V3FooterCarriesSegmentStats) {
  DSLog log;
  BuildChain(&log, 0, 2, 32);
  const std::string path = TestPath("stats_v3.dsl");
  LogStoreWriterOptions v3;
  v3.footer_version = 3;
  ASSERT_TRUE(log.SaveLogStore(path, SegmentLayout::kColumnar, v3).ok());
  auto store = LogStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->format_version(), 3u);
  ASSERT_EQ(store.value()->segments().size(), 2u);
  for (size_t id = 0; id < store.value()->segments().size(); ++id) {
    const LogStore::SegmentInfo& seg = store.value()->segments()[id];
    // Identity lineage over 32 cells compresses to one relative interval
    // row covering out attr 0 = [0, 31]. The footer stats must match the
    // resolved index's exact stats without touching the segment bytes.
    ASSERT_TRUE(seg.out0_stats.valid());
    EXPECT_EQ(seg.out0_stats.row_count, 1);
    EXPECT_EQ(seg.out0_stats.min_lo, 0);
    EXPECT_EQ(seg.out0_stats.max_hi, 31);
    EXPECT_EQ(seg.out0_stats.sum_width, 32);
    auto pinned = store.value()->View(id);
    ASSERT_TRUE(pinned.ok());
    const IntervalColumnStats& exact = pinned.value().index->stats();
    EXPECT_EQ(seg.out0_stats.row_count, exact.row_count);
    EXPECT_EQ(seg.out0_stats.min_lo, exact.min_lo);
    EXPECT_EQ(seg.out0_stats.max_lo, exact.max_lo);
    EXPECT_EQ(seg.out0_stats.max_hi, exact.max_hi);
    EXPECT_EQ(seg.out0_stats.sum_width, exact.sum_width);
  }
}

// --------------------------------------------------------- v4 perfect hash --

TEST(LogStoreV4Test, RoundTripBindsPerfectHashIndex) {
  DSLog log;
  BuildChain(&log, 0, 6, 16);
  const std::string path = TestPath("phf_roundtrip.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());

  auto store = LogStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->format_version(), 4u);
  EXPECT_EQ(store.value()->edge_index_kind(), LogStore::EdgeIndexKind::kPhf);
  EXPECT_GT(store.value()->index_bits_per_key(), 0.0);
  EXPECT_EQ(store.value()->index_fingerprint_bits(), 8u);

  // Every stored edge resolves to the segment carrying its names; absent
  // edges resolve to -1. Neither direction builds the fallback name map or
  // touches segment bytes.
  for (size_t id = 0; id < store.value()->segment_count(); ++id) {
    const LogStore::SegmentInfo seg = store.value()->segment_info(id);
    auto found = store.value()->FindSegmentId(seg.in_arr, seg.out_arr);
    ASSERT_TRUE(found.ok()) << found.status().ToString();
    EXPECT_EQ(found.value(), static_cast<int64_t>(id));
    auto missing = store.value()->FindSegmentId(seg.out_arr, seg.in_arr);
    ASSERT_TRUE(missing.ok());
    EXPECT_EQ(missing.value(), -1);
  }
  EXPECT_FALSE(store.value()->name_index_built());
  EXPECT_EQ(store.value()->stats().decode_count, 0);
}

TEST(LogStoreV4Test, PhfDisabledReaderServesIdenticalResults) {
  DSLog log;
  BuildChain(&log, 0, 5, 16);
  const std::string path = TestPath("phf_kill_switch.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());

  // Same v4 file, PHF kill switch on: lazy-map fallback, same answers.
  LogStoreOptions no_phf;
  no_phf.use_phf_index = false;
  auto fallback = LogStore::Open(path, no_phf);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(fallback.value()->format_version(), 4u);
  EXPECT_EQ(fallback.value()->edge_index_kind(),
            LogStore::EdgeIndexKind::kLazyMap);
  EXPECT_EQ(fallback.value()->index_bits_per_key(), 0.0);
  auto phf = LogStore::Open(path);
  ASSERT_TRUE(phf.ok());
  for (size_t id = 0; id < phf.value()->segment_count(); ++id) {
    const LogStore::SegmentInfo seg = phf.value()->segment_info(id);
    auto a = phf.value()->FindSegmentId(seg.in_arr, seg.out_arr);
    auto b = fallback.value()->FindSegmentId(seg.in_arr, seg.out_arr);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
  EXPECT_TRUE(fallback.value()->name_index_built());

  // A v4 file written without the index opens on the map path too.
  DSLog log2;
  BuildChain(&log2, 0, 3, 16);
  const std::string bare = TestPath("phf_not_written.dsl");
  LogStoreWriterOptions no_build;
  no_build.build_phf = false;
  ASSERT_TRUE(log2.SaveLogStore(bare, SegmentLayout::kColumnar, no_build).ok());
  auto opened = LogStore::Open(bare);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value()->format_version(), 4u);
  EXPECT_EQ(opened.value()->edge_index_kind(),
            LogStore::EdgeIndexKind::kLazyMap);
  auto found = opened.value()->FindSegmentId("a0", "a1");
  ASSERT_TRUE(found.ok());
  EXPECT_GE(found.value(), 0);
}

TEST(LogStoreV4Test, V3StoreOpensOnMapPathWithSameAnswers) {
  DSLog log;
  BuildChain(&log, 0, 4, 16);
  const std::string v3_path = TestPath("compat_v3.dsl");
  const std::string v4_path = TestPath("compat_v4.dsl");
  LogStoreWriterOptions v3;
  v3.footer_version = 3;
  ASSERT_TRUE(log.SaveLogStore(v3_path, SegmentLayout::kColumnar, v3).ok());
  ASSERT_TRUE(log.SaveLogStore(v4_path).ok());

  auto old_store = LogStore::Open(v3_path);
  ASSERT_TRUE(old_store.ok()) << old_store.status().ToString();
  EXPECT_EQ(old_store.value()->format_version(), 3u);
  EXPECT_EQ(old_store.value()->edge_index_kind(),
            LogStore::EdgeIndexKind::kLazyMap);

  // Both versions of the same catalog answer identically, lookups and
  // queries alike.
  auto a = DSLog::OpenInSitu(v3_path);
  auto b = DSLog::OpenInSitu(v4_path);
  ASSERT_TRUE(a.ok() && b.ok());
  for (bool backward : {true, false}) {
    const auto path = backward ? ChainPath(4, 0) : ChainPath(0, 4);
    auto ra = a.value().ProvQuery(path, BoxTable::FromCells(1, {3}));
    auto rb = b.value().ProvQuery(path, BoxTable::FromCells(1, {3}));
    ASSERT_TRUE(ra.ok() && rb.ok())
        << ra.status().ToString() << " / " << rb.status().ToString();
    EXPECT_EQ(ToTupleSet(ra.value().ExpandToCells(), 1),
              ToTupleSet(rb.value().ExpandToCells(), 1));
  }
}

TEST(LogStoreV4Test, AppendResealsV3StoreAsV4) {
  DSLog log;
  BuildChain(&log, 0, 3, 16);
  const std::string path = TestPath("reseal_v3_to_v4.dsl");
  LogStoreWriterOptions v3;
  v3.footer_version = 3;
  ASSERT_TRUE(log.SaveLogStore(path, SegmentLayout::kColumnar, v3).ok());

  // Extend the chain and append with default writer options: the store is
  // resealed under the v4 footer, old segments intact, index over all edges.
  auto reopened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  BuildChain(&reopened.value(), 3, 2, 16);
  ASSERT_TRUE(reopened.value().AppendLogStore(path).ok());

  auto store = LogStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->format_version(), 4u);
  EXPECT_EQ(store.value()->edge_index_kind(), LogStore::EdgeIndexKind::kPhf);
  EXPECT_EQ(store.value()->segment_count(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto found = store.value()->FindSegmentId("a" + std::to_string(i),
                                              "a" + std::to_string(i + 1));
    ASSERT_TRUE(found.ok());
    EXPECT_GE(found.value(), 0) << "edge a" << i << " -> a" << i + 1;
  }
  // End-to-end over the resealed file.
  auto full = DSLog::OpenInSitu(path);
  ASSERT_TRUE(full.ok());
  auto r = full.value().ProvQuery(ChainPath(5, 0), BoxTable::FromCells(1, {7}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().ExpandToCells(), (std::vector<int64_t>{7}));
}

TEST(LogStoreV4Test, IndexStaysUnder16BitsPerKeyAtScale) {
  // The 48-byte PHF header amortizes away by a few hundred keys; the
  // steady-state cost is ~4 bits of displacement + 8 bits of fingerprint
  // per key plus the <= 25% empty-slot overhead of m = ceil(n/4) buckets.
  const std::string path = TestPath("phf_bits_per_key.dsl");
  CompressedTable table = ProvRcCompress(IdentityRelation(4));
  const std::string bytes = SerializeCompressedTableColumnar(table);
  const IntervalColumnStats stats = ComputeOut0Stats(table);
  auto writer = LogStoreWriter::Create(path, {});
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  constexpr int kEdges = 2048;
  writer.value().PutArray("hub", {4});
  for (int i = 0; i < kEdges; ++i)
    writer.value().PutArray("leaf" + std::to_string(i), {4});
  for (int i = 0; i < kEdges; ++i) {
    ASSERT_TRUE(writer.value()
                    .AppendRawSegment("hub", "leaf" + std::to_string(i), "op",
                                      bytes, SegmentLayout::kColumnar,
                                      table.num_rows(), stats)
                    .ok());
  }
  ASSERT_TRUE(writer.value().Finish().ok());

  auto store = LogStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->edge_index_kind(), LogStore::EdgeIndexKind::kPhf);
  EXPECT_LE(store.value()->index_bits_per_key(), 16.0);
  // v4 stores segments in PHF-position order, so the id is arbitrary; it
  // must resolve to the segment carrying the probed names.
  auto hit = store.value()->FindSegmentId("hub", "leaf2047");
  ASSERT_TRUE(hit.ok());
  ASSERT_GE(hit.value(), 0);
  const LogStore::SegmentInfo seg =
      store.value()->segment_info(static_cast<size_t>(hit.value()));
  EXPECT_EQ(seg.in_arr, "hub");
  EXPECT_EQ(seg.out_arr, "leaf2047");
  auto miss = store.value()->FindSegmentId("hub", "leaf2048");
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss.value(), -1);
}

TEST(LogStoreV4Test, NegativeProbesTouchNoSegmentBytes) {
  DSLog log;
  BuildChain(&log, 0, 4, 16);
  const std::string path = TestPath("phf_negative.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());

  auto opened = DSLog::OpenInSitu(path);
  ASSERT_TRUE(opened.ok());
  for (int i = 0; i < 32; ++i) {
    auto r = opened.value().ProvQuery({"a0", "absent" + std::to_string(i)},
                                      BoxTable::FromCells(1, {0}));
    EXPECT_FALSE(r.ok());
  }
  std::shared_ptr<const LogStore> store = opened.value().log_store();
  EXPECT_EQ(store->stats().decode_count, 0);
  EXPECT_FALSE(store->name_index_built());
}

TEST(LogStoreCorruptionTest, FlippedPhfIndexByteIsCorruptionAtOpen) {
  DSLog log;
  BuildChain(&log, 0, 4, 16);
  const std::string path = TestPath("phf_corrupt.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());
  auto file = ReadFileToString(path);
  ASSERT_TRUE(file.ok());
  std::string bytes = std::move(file).ValueOrDie();
  // The PHF block sits at the end of the footer, just before the 20-byte
  // trailer; the footer checksum covers it, so a flipped displacement or
  // fingerprint byte must fail verification at Open (never a wrong or
  // missing lookup later).
  bytes[bytes.size() - 25] ^= 0x40;
  ASSERT_TRUE(WriteFile(path, bytes).ok());
  auto opened = LogStore::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption)
      << opened.status().ToString();
}

// ------------------------------------------------------------- concurrency --

TEST(LogStoreConcurrencyTest, ParallelInSituReadersWithEvictionChurn) {
  DSLog log;
  BuildChain(&log, 0, 32, 32);
  const std::string path = TestPath("concurrent.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());

  InSituOptions options;
  options.store.cache_capacity_bytes = 4096;  // force eviction under load
  auto opened = DSLog::OpenInSitu(path, options);
  ASSERT_TRUE(opened.ok());
  const DSLog& insitu = opened.value();

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 40;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kQueriesPerThread; ++i) {
        int from = static_cast<int>(rng.Uniform(33));
        int to = static_cast<int>(rng.Uniform(33));
        if (from == to) to = (to + 1) % 33;
        const int64_t cell = static_cast<int64_t>(rng.Uniform(32));
        auto got = insitu.ProvQuery(ChainPath(from, to),
                                    BoxTable::FromCells(1, {cell}));
        if (!got.ok() ||
            got.value().ExpandToCells() != std::vector<int64_t>{cell})
          ++failures[t];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
  EXPECT_EQ(insitu.log_store()->stats().segments_touched, 32);
}

TEST(LogStoreConcurrencyTest, ShardedLruChurnOnSharedEdges) {
  // Eviction-churn stress for the striped cache: a per-shard budget small
  // enough that almost every resolve evicts, 8 threads hammering the SAME
  // few edges (maximum same-shard collision pressure), swept across shard
  // counts including 1 (the old single-lock cache).
  DSLog log;
  BuildChain(&log, 0, 6, 32);
  const std::string path = TestPath("sharded_churn.dsl");
  ASSERT_TRUE(log.SaveLogStore(path).ok());

  for (int shards : {1, 3, 8}) {
    InSituOptions options;
    options.store.cache_shards = shards;
    // 6 bytes total => ~1 byte per shard: every entry exceeds its shard's
    // budget, so each insert evicts the previous resident immediately.
    options.store.cache_capacity_bytes = 6;
    auto opened = DSLog::OpenInSitu(path, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const DSLog& insitu = opened.value();

    constexpr int kThreads = 8;
    constexpr int kQueriesPerThread = 30;
    std::vector<int> failures(kThreads, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(2000 + static_cast<uint64_t>(shards) * 100 +
                static_cast<uint64_t>(t));
        for (int i = 0; i < kQueriesPerThread; ++i) {
          // Only 7 arrays: every thread keeps re-touching the same edges,
          // so hits, misses, evictions, and resolve races all interleave.
          int from = static_cast<int>(rng.Uniform(7));
          int to = static_cast<int>(rng.Uniform(7));
          if (from == to) to = (to + 1) % 7;
          const int64_t cell = static_cast<int64_t>(rng.Uniform(32));
          auto got = insitu.ProvQuery(ChainPath(from, to),
                                      BoxTable::FromCells(1, {cell}));
          if (!got.ok() ||
              got.value().ExpandToCells() != std::vector<int64_t>{cell})
            ++failures[t];
        }
      });
    }
    for (auto& thread : threads) thread.join();
    for (int t = 0; t < kThreads; ++t)
      EXPECT_EQ(failures[t], 0) << "shards=" << shards << " thread=" << t;

    LogStoreStats stats = insitu.log_store()->stats();
    EXPECT_EQ(stats.segments_touched, 6) << "shards=" << shards;
    // The tiny budget must actually have churned the cache, and the
    // aggregate counters must balance across shards: every query is at
    // least one lookup (hit or miss), and every miss resolved — racing
    // resolvers may each count a decode, so decode_count can exceed the
    // number of cache insertions but never undershoot distinct segments.
    // With >= 6 shards each of the 6 segments is alone in its stripe and
    // can never be evicted (the cache keeps the just-inserted entry), so
    // the churn assertion only applies while stripes are shared.
    if (shards < 6)
      EXPECT_GT(stats.evictions, 0) << "shards=" << shards;
    else
      EXPECT_EQ(stats.evictions, 0) << "shards=" << shards;
    EXPECT_GE(stats.cache_hits + stats.cache_misses,
              static_cast<int64_t>(kThreads) * kQueriesPerThread)
        << "shards=" << shards;
    EXPECT_GE(stats.decode_count, stats.segments_touched)
        << "shards=" << shards;
  }
}

TEST(LogStoreConcurrencyTest, StatsSnapshotsAreConsistentUnderLoad) {
  // The LogStoreStats satellite: a stats() reader racing 8 View() writer
  // threads must never observe a torn snapshot. The live counters are
  // per-shard relaxed atomics written only under the shard mutex, and
  // stats() sums per-shard cuts taken under each mutex — so the invariants
  // documented on LogStoreStats must hold in EVERY intermediate snapshot,
  // not just at quiescence. Mixed-layout store so both fill kinds
  // (materialized gzip decode, zero-copy columnar borrow) are in play.
  DSLog log;
  BuildChain(&log, 0, 4, 32);
  const std::string path = TestPath("stats_consistency.dsl");
  ASSERT_TRUE(log.SaveLogStore(path, SegmentLayout::kProvRcGzip).ok());
  BuildChain(&log, 4, 4, 32);
  ASSERT_TRUE(log.AppendLogStore(path).ok());

  auto opened = LogStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const LogStore& store = *opened.value();
  const int64_t num_segments = static_cast<int64_t>(store.segments().size());
  ASSERT_EQ(num_segments, 8);

  constexpr int kThreads = 8;
  constexpr int kViewsPerThread = 200;
  std::atomic<bool> stop{false};
  std::atomic<int> view_failures{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const LogStoreStats s = store.stats();
      EXPECT_EQ(s.segment_count, num_segments);
      EXPECT_LE(s.segments_touched, num_segments);
      EXPECT_LE(s.segments_touched, s.decode_count);
      EXPECT_LE(s.decode_count, s.cache_misses);
      EXPECT_EQ(s.tables_materialized + s.segments_borrowed, s.decode_count);
      EXPECT_GE(s.cache_hits, 0);
      EXPECT_GE(s.bytes_decompressed, 0);
      EXPECT_GE(s.rows_materialized, 0);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(3000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kViewsPerThread; ++i) {
        const size_t id = static_cast<size_t>(rng.Uniform(
            static_cast<uint64_t>(num_segments)));
        if (!store.View(id).ok()) ++view_failures;
      }
    });
  }
  for (auto& thread : writers) thread.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(view_failures.load(), 0);

  // At quiescence the totals are exact: every View() was a hit or a miss,
  // all 8 segments were touched, gzip fills materialized rows while
  // columnar fills borrowed.
  const LogStoreStats s = store.stats();
  EXPECT_EQ(s.cache_hits + s.cache_misses,
            static_cast<int64_t>(kThreads) * kViewsPerThread);
  EXPECT_EQ(s.segments_touched, num_segments);
  EXPECT_EQ(s.tables_materialized + s.segments_borrowed, s.decode_count);
  EXPECT_GT(s.tables_materialized, 0);  // the 4 gzip segments
  EXPECT_GT(s.segments_borrowed, 0);    // the 4 columnar segments
  EXPECT_GT(s.bytes_decompressed, 0);
  EXPECT_GT(s.rows_materialized, 0);
}

}  // namespace
}  // namespace dslog
