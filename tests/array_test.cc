// Tests for the ndarray substrate and the 136-operation catalogue: shape
// arithmetic, value semantics, lineage capture correctness, and the
// catalogue counts that Table IX depends on.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"

namespace dslog {
namespace {

// ----------------------------------------------------------------- NDArray --

TEST(NDArrayTest, ZerosShapeAndSize) {
  NDArray a({3, 4});
  EXPECT_EQ(a.ndim(), 2);
  EXPECT_EQ(a.size(), 12);
  EXPECT_EQ(a.shape(), (std::vector<int64_t>{3, 4}));
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], 0.0);
}

TEST(NDArrayTest, StridesRowMajor) {
  NDArray a({2, 3, 4});
  EXPECT_EQ(a.strides(), (std::vector<int64_t>{12, 4, 1}));
}

TEST(NDArrayTest, FlatAndUnravelInverse) {
  NDArray a({3, 5, 7});
  std::vector<int64_t> idx(3);
  for (int64_t flat = 0; flat < a.size(); ++flat) {
    a.UnravelIndex(flat, idx);
    EXPECT_EQ(a.FlatIndex(idx), flat);
  }
}

TEST(NDArrayTest, AtAccess) {
  NDArray a({2, 2});
  std::vector<int64_t> idx = {1, 0};
  a.At(idx) = 42.0;
  EXPECT_EQ(a[2], 42.0);
}

TEST(NDArrayTest, FromValuesChecksSize) {
  NDArray a = NDArray::FromValues({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(a.At(std::vector<int64_t>{1, 1}), 4.0);
}

TEST(NDArrayTest, ContentHashDistinguishesValues) {
  Rng rng(1);
  NDArray a = NDArray::Random({4, 4}, &rng);
  NDArray b = a;
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  b[0] += 1.0;
  EXPECT_NE(a.ContentHash(), b.ContentHash());
}

TEST(NDArrayTest, ArangeValues) {
  NDArray a = NDArray::Arange(5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(a[i], static_cast<double>(i));
}

// ---------------------------------------------------------------- registry --

TEST(OpRegistryTest, CatalogueCountsMatchTableIX) {
  const OpRegistry& r = OpRegistry::Global();
  EXPECT_EQ(r.NamesByCategory(OpCategory::kElementwise).size(), 75u);
  EXPECT_EQ(r.NamesByCategory(OpCategory::kComplex).size(), 61u);
  EXPECT_EQ(r.size(), 136);
}

TEST(OpRegistryTest, FindKnownOps) {
  const OpRegistry& r = OpRegistry::Global();
  for (const char* name : {"negative", "add", "sum", "matmul", "sort",
                           "tile", "cross", "convolve", "transpose"}) {
    EXPECT_NE(r.Find(name), nullptr) << name;
  }
  EXPECT_EQ(r.Find("no_such_op"), nullptr);
}

TEST(OpRegistryTest, UnaryPipelinePoolIsLarge) {
  // The paper samples random pipelines from 76 unary-compatible numpy ops.
  auto names = OpRegistry::Global().UnaryPipelineNames();
  EXPECT_GE(names.size(), 60u);
  for (const auto& n : names)
    EXPECT_EQ(OpRegistry::Global().Find(n)->num_inputs(), 1) << n;
}

// ------------------------------------------------------- lineage correctness --

LineageRelation CaptureSingle(const char* op_name,
                              const std::vector<const NDArray*>& inputs,
                              const OpArgs& args, NDArray* output,
                              int which = 0) {
  const ArrayOp* op = OpRegistry::Global().Find(op_name);
  EXPECT_NE(op, nullptr) << op_name;
  auto out = op->Apply(inputs, args);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  *output = out.ValueOrDie();
  auto rels = op->Capture(inputs, *output, args);
  EXPECT_TRUE(rels.ok()) << rels.status().ToString();
  return std::move(rels.ValueOrDie()[static_cast<size_t>(which)]);
}

TEST(OpLineageTest, NegativeIdentity) {
  Rng rng(2);
  NDArray x = NDArray::Random({3, 2}, &rng);
  NDArray out;
  LineageRelation rel = CaptureSingle("negative", {&x}, OpArgs(), &out);
  EXPECT_EQ(rel.num_rows(), 6);
  for (int64_t i = 0; i < rel.num_rows(); ++i) {
    auto row = rel.Row(i);
    EXPECT_EQ(row[0], row[2]);  // b1 == a1
    EXPECT_EQ(row[1], row[3]);  // b2 == a2
  }
  for (int64_t i = 0; i < x.size(); ++i) EXPECT_EQ(out[i], -x[i]);
}

TEST(OpLineageTest, SumAxis1MatchesPaperFigure1) {
  // B = sum(A, axis=1) over a 3x2 array: lineage rows (b1, a1, a2) must be
  // exactly {(i, i, j) : i in 0..2, j in 0..1} (paper Fig 1, 0-based).
  NDArray a = NDArray::FromValues({3, 2}, {0, 3, 1, 5, 2, 1});
  OpArgs args;
  args.SetInt("axis", 1);
  NDArray out;
  LineageRelation rel = CaptureSingle("sum", {&a}, args, &out);
  EXPECT_EQ(out.size(), 3);
  EXPECT_EQ(out[0], 3.0);
  EXPECT_EQ(out[1], 6.0);
  EXPECT_EQ(out[2], 3.0);
  rel.SortAndDedup();
  ASSERT_EQ(rel.num_rows(), 6);
  int64_t want[6][3] = {{0, 0, 0}, {0, 0, 1}, {1, 1, 0},
                        {1, 1, 1}, {2, 2, 0}, {2, 2, 1}};
  for (int64_t i = 0; i < 6; ++i) {
    auto row = rel.Row(i);
    EXPECT_EQ(row[0], want[i][0]);
    EXPECT_EQ(row[1], want[i][1]);
    EXPECT_EQ(row[2], want[i][2]);
  }
}

TEST(OpLineageTest, FullSumIsAllToOne) {
  Rng rng(3);
  NDArray x = NDArray::Random({4, 4}, &rng);
  NDArray out;
  LineageRelation rel = CaptureSingle("sum", {&x}, OpArgs(), &out);
  EXPECT_EQ(rel.num_rows(), 16);
  double total = 0;
  for (int64_t i = 0; i < x.size(); ++i) total += x[i];
  EXPECT_NEAR(out[0], total, 1e-9);
}

TEST(OpLineageTest, AmaxOnlyExtremalCells) {
  NDArray x = NDArray::FromValues({5}, {1, 9, 3, 9, 2});
  NDArray out;
  LineageRelation rel = CaptureSingle("amax", {&x}, OpArgs(), &out);
  EXPECT_EQ(out[0], 9.0);
  rel.SortAndDedup();
  ASSERT_EQ(rel.num_rows(), 2);
  EXPECT_EQ(rel.Row(0)[1], 1);
  EXPECT_EQ(rel.Row(1)[1], 3);
}

TEST(OpLineageTest, MedianOddPicksMiddle) {
  NDArray x = NDArray::FromValues({5}, {5, 1, 4, 2, 3});
  NDArray out;
  LineageRelation rel = CaptureSingle("median", {&x}, OpArgs(), &out);
  EXPECT_EQ(out[0], 3.0);
  ASSERT_EQ(rel.num_rows(), 1);
  EXPECT_EQ(rel.Row(0)[1], 4);  // value 3 sits at index 4
}

TEST(OpLineageTest, SortPermutation) {
  NDArray x = NDArray::FromValues({4}, {30, 10, 40, 20});
  NDArray out;
  LineageRelation rel = CaptureSingle("sort", {&x}, OpArgs(), &out);
  EXPECT_EQ(out[0], 10.0);
  EXPECT_EQ(out[3], 40.0);
  ASSERT_EQ(rel.num_rows(), 4);
  // out rank -> original position: 0<-1, 1<-3, 2<-0, 3<-2.
  rel.SortAndDedup();
  EXPECT_EQ(rel.Row(0)[1], 1);
  EXPECT_EQ(rel.Row(1)[1], 3);
  EXPECT_EQ(rel.Row(2)[1], 0);
  EXPECT_EQ(rel.Row(3)[1], 2);
}

TEST(OpLineageTest, MatmulBothInputs) {
  Rng rng(4);
  NDArray a = NDArray::Random({3, 4}, &rng);
  NDArray b = NDArray::Random({4, 2}, &rng);
  const ArrayOp* op = OpRegistry::Global().Find("matmul");
  NDArray out = op->Apply({&a, &b}, OpArgs()).ValueOrDie();
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{3, 2}));
  auto rels = op->Capture({&a, &b}, out, OpArgs()).ValueOrDie();
  ASSERT_EQ(rels.size(), 2u);
  EXPECT_EQ(rels[0].num_rows(), 3 * 2 * 4);
  EXPECT_EQ(rels[1].num_rows(), 3 * 2 * 4);
  // Check numeric correctness of one output cell.
  double acc = 0;
  for (int64_t t = 0; t < 4; ++t) acc += a[1 * 4 + t] * b[t * 2 + 1];
  EXPECT_NEAR(out[1 * 2 + 1], acc, 1e-9);
}

TEST(OpLineageTest, TransposeMapsIndices) {
  Rng rng(5);
  NDArray x = NDArray::Random({2, 3}, &rng);
  NDArray out;
  LineageRelation rel = CaptureSingle("transpose", {&x}, OpArgs(), &out);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{3, 2}));
  for (int64_t i = 0; i < rel.num_rows(); ++i) {
    auto row = rel.Row(i);
    EXPECT_EQ(row[0], row[3]);  // out row == in col
    EXPECT_EQ(row[1], row[2]);  // out col == in row
  }
  EXPECT_EQ(out.At(std::vector<int64_t>{2, 1}), x.At(std::vector<int64_t>{1, 2}));
}

TEST(OpLineageTest, TileWrapsIndices) {
  NDArray x = NDArray::FromValues({3}, {7, 8, 9});
  OpArgs args;
  args.SetInt("reps", 3);
  NDArray out;
  LineageRelation rel = CaptureSingle("tile", {&x}, args, &out);
  EXPECT_EQ(out.size(), 9);
  for (int64_t i = 0; i < 9; ++i) EXPECT_EQ(out[i], x[i % 3]);
  for (int64_t i = 0; i < rel.num_rows(); ++i)
    EXPECT_EQ(rel.Row(i)[1], rel.Row(i)[0] % 3);
}

TEST(OpLineageTest, RollShiftsLineage) {
  NDArray x = NDArray::FromValues({5}, {0, 1, 2, 3, 4});
  OpArgs args;
  args.SetInt("shift", 2);
  NDArray out;
  LineageRelation rel = CaptureSingle("roll", {&x}, args, &out);
  EXPECT_EQ(out[2], 0.0);
  EXPECT_EQ(out[0], 3.0);
  for (int64_t i = 0; i < rel.num_rows(); ++i)
    EXPECT_EQ((rel.Row(i)[1] + 2) % 5, rel.Row(i)[0]);
}

TEST(OpLineageTest, ConvolveFullWindow) {
  NDArray a = NDArray::FromValues({5}, {1, 2, 3, 4, 5});
  NDArray v = NDArray::FromValues({3}, {1, 0, -1});
  const ArrayOp* op = OpRegistry::Global().Find("convolve");
  NDArray out = op->Apply({&a, &v}, OpArgs()).ValueOrDie();
  EXPECT_EQ(out.size(), 7);
  auto rels = op->Capture({&a, &v}, out, OpArgs()).ValueOrDie();
  // out[0] depends only on a[0], v[0].
  LineageRelation& ra = rels[0];
  ra.SortAndDedup();
  EXPECT_EQ(ra.Row(0)[0], 0);
  EXPECT_EQ(ra.Row(0)[1], 0);
  // Every (k, i) pair satisfies 0 <= k - i < m.
  for (int64_t r = 0; r < ra.num_rows(); ++r) {
    int64_t k = ra.Row(r)[0], i = ra.Row(r)[1];
    EXPECT_GE(k - i, 0);
    EXPECT_LT(k - i, 3);
  }
}

TEST(OpLineageTest, PadBorderHasNoLineage) {
  NDArray x = NDArray::FromValues({2, 2}, {1, 2, 3, 4});
  OpArgs args;
  args.SetInt("pad_width", 1);
  NDArray out;
  LineageRelation rel = CaptureSingle("pad", {&x}, args, &out);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{4, 4}));
  EXPECT_EQ(rel.num_rows(), 4);  // only interior cells have sources
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out.At(std::vector<int64_t>{1, 1}), 1.0);
}

TEST(OpLineageTest, CrossDim3VersusDim2Patterns) {
  Rng rng(6);
  NDArray a3 = NDArray::Random({4, 3}, &rng);
  NDArray b3 = NDArray::Random({4, 3}, &rng);
  const ArrayOp* op = OpRegistry::Global().Find("cross");
  NDArray out3 = op->Apply({&a3, &b3}, OpArgs()).ValueOrDie();
  EXPECT_EQ(out3.shape(), (std::vector<int64_t>{4, 3}));
  auto rels3 = op->Capture({&a3, &b3}, out3, OpArgs()).ValueOrDie();
  EXPECT_EQ(rels3[0].out_ndim(), 2);

  NDArray a2 = NDArray::Random({4, 2}, &rng);
  NDArray b2 = NDArray::Random({4, 2}, &rng);
  NDArray out2 = op->Apply({&a2, &b2}, OpArgs()).ValueOrDie();
  EXPECT_EQ(out2.shape(), (std::vector<int64_t>{4}));
  auto rels2 = op->Capture({&a2, &b2}, out2, OpArgs()).ValueOrDie();
  EXPECT_EQ(rels2[0].out_ndim(), 1);  // different pattern => gen_sig trap
  // Numeric check: z-component of 2-D cross.
  EXPECT_NEAR(out2[0], a2[0] * b2[1] - a2[1] * b2[0], 1e-12);
}

TEST(OpLineageTest, WhereSelectsBranch) {
  NDArray c = NDArray::FromValues({4}, {1, 0, 1, 0});
  NDArray a = NDArray::FromValues({4}, {10, 11, 12, 13});
  NDArray b = NDArray::FromValues({4}, {20, 21, 22, 23});
  const ArrayOp* op = OpRegistry::Global().Find("where");
  NDArray out = op->Apply({&c, &a, &b}, OpArgs()).ValueOrDie();
  EXPECT_EQ(out[0], 10.0);
  EXPECT_EQ(out[1], 21.0);
  auto rels = op->Capture({&c, &a, &b}, out, OpArgs()).ValueOrDie();
  EXPECT_EQ(rels[0].num_rows(), 4);  // cond always contributes
  EXPECT_EQ(rels[1].num_rows(), 2);  // a at cells 0, 2
  EXPECT_EQ(rels[2].num_rows(), 2);  // b at cells 1, 3
}

TEST(OpLineageTest, CumsumPrefixLineage) {
  NDArray x = NDArray::FromValues({4}, {1, 2, 3, 4});
  NDArray out;
  LineageRelation rel = CaptureSingle("cumsum", {&x}, OpArgs(), &out);
  EXPECT_EQ(out[3], 10.0);
  EXPECT_EQ(rel.num_rows(), 4 + 3 + 2 + 1);
}

// Every value-independent unary op must produce identical lineage for two
// different random inputs of the same shape (the dim_sig property).
class ValueIndependenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ValueIndependenceTest, LineageSameAcrossValues) {
  const ArrayOp* op = OpRegistry::Global().Find(GetParam());
  ASSERT_NE(op, nullptr);
  if (op->value_dependent() || op->num_inputs() != 1) GTEST_SKIP();
  std::vector<int64_t> shape = op->SupportsUnaryShape({6, 4}) ? std::vector<int64_t>{6, 4}
                                                              : std::vector<int64_t>{24};
  if (!op->SupportsUnaryShape(shape)) GTEST_SKIP();
  Rng rng1(100), rng2(200);
  NDArray x1 = NDArray::Random(shape, &rng1);
  NDArray x2 = NDArray::Random(shape, &rng2);
  OpArgs args = op->SampleArgs(shape, &rng1);
  auto o1 = op->Apply({&x1}, args);
  auto o2 = op->Apply({&x2}, args);
  if (!o1.ok() || !o2.ok()) GTEST_SKIP();
  auto r1 = op->Capture({&x1}, o1.value(), args).ValueOrDie();
  auto r2 = op->Capture({&x2}, o2.value(), args).ValueOrDie();
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i)
    EXPECT_TRUE(r1[i].EqualAsSet(r2[i])) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, ValueIndependenceTest,
    ::testing::ValuesIn(OpRegistry::Global().UnaryPipelineNames()));

// Lineage indices must always be within the bounds of the participating
// arrays, for every op in the catalogue.
class LineageBoundsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LineageBoundsTest, IndicesInBounds) {
  const ArrayOp* op = OpRegistry::Global().Find(GetParam());
  ASSERT_NE(op, nullptr);
  Rng rng(31);
  std::vector<NDArray> storage;
  std::vector<const NDArray*> inputs;
  std::vector<int64_t> shape;
  if (op->num_inputs() == 1) {
    shape = op->SupportsUnaryShape({5, 4}) ? std::vector<int64_t>{5, 4}
                                           : std::vector<int64_t>{20};
    if (!op->SupportsUnaryShape(shape)) GTEST_SKIP();
    storage.push_back(NDArray::Random(shape, &rng));
  } else if (op->num_inputs() == 2) {
    // Pick shapes compatible with every binary op in the catalogue.
    if (GetParam() == "matmul" || GetParam() == "kron") {
      storage.push_back(NDArray::Random({4, 5}, &rng));
      storage.push_back(NDArray::Random({5, 3}, &rng));
    } else if (GetParam() == "cross") {
      storage.push_back(NDArray::Random({4, 3}, &rng));
      storage.push_back(NDArray::Random({4, 3}, &rng));
    } else if (GetParam() == "convolve" || GetParam() == "correlate") {
      storage.push_back(NDArray::Random({16}, &rng));
      storage.push_back(NDArray::Random({3}, &rng));
    } else if (GetParam() == "searchsorted") {
      NDArray s = NDArray::Arange(16);
      storage.push_back(std::move(s));
      storage.push_back(NDArray::Random({8}, &rng));
    } else {
      storage.push_back(NDArray::Random({12}, &rng));
      storage.push_back(NDArray::Random({12}, &rng));
    }
    shape = storage[0].shape();
  } else {
    storage.push_back(NDArray::RandomInts({10}, 0, 1, &rng));
    storage.push_back(NDArray::Random({10}, &rng));
    storage.push_back(NDArray::Random({10}, &rng));
    shape = {10};
  }
  for (const auto& s : storage) inputs.push_back(&s);
  OpArgs args = op->SampleArgs(shape, &rng);
  auto out = op->Apply(inputs, args);
  if (!out.ok()) GTEST_SKIP();
  auto rels = op->Capture(inputs, out.value(), args);
  ASSERT_TRUE(rels.ok()) << rels.status().ToString();
  ASSERT_EQ(rels.value().size(), static_cast<size_t>(op->num_inputs()));
  for (size_t which = 0; which < rels.value().size(); ++which) {
    const LineageRelation& rel = rels.value()[which];
    const NDArray& in = *inputs[which];
    for (int64_t r = 0; r < rel.num_rows(); ++r) {
      auto row = rel.Row(r);
      for (int k = 0; k < rel.out_ndim(); ++k) {
        ASSERT_GE(row[static_cast<size_t>(k)], 0);
        ASSERT_LT(row[static_cast<size_t>(k)],
                  out.value().shape()[static_cast<size_t>(k)]);
      }
      for (int k = 0; k < rel.in_ndim(); ++k) {
        ASSERT_GE(row[static_cast<size_t>(rel.out_ndim() + k)], 0);
        ASSERT_LT(row[static_cast<size_t>(rel.out_ndim() + k)],
                  in.shape()[static_cast<size_t>(k)]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, LineageBoundsTest,
    ::testing::ValuesIn(OpRegistry::Global().AllNames()));

// ------------------------------------------------------------- relations --

TEST(LineageRelationTest, SortAndDedupRemovesDuplicates) {
  LineageRelation rel(1, 1);
  int64_t a = 1, b = 2;
  rel.Add({&a, 1}, {&b, 1});
  rel.Add({&b, 1}, {&a, 1});
  rel.Add({&a, 1}, {&b, 1});
  rel.SortAndDedup();
  EXPECT_EQ(rel.num_rows(), 2);
  EXPECT_EQ(rel.Row(0)[0], 1);
  EXPECT_EQ(rel.Row(1)[0], 2);
}

TEST(LineageRelationTest, EqualAsSetIgnoresOrder) {
  LineageRelation r1(1, 1), r2(1, 1);
  for (int64_t i = 0; i < 10; ++i) {
    int64_t j = 9 - i;
    r1.Add({&i, 1}, {&i, 1});
    r2.Add({&j, 1}, {&j, 1});
  }
  EXPECT_TRUE(r1.EqualAsSet(r2));
  int64_t x = 99;
  r2.Add({&x, 1}, {&x, 1});
  EXPECT_FALSE(r1.EqualAsSet(r2));
}

}  // namespace
}  // namespace dslog
