// Metrics-registry and trace-span tests: counter/gauge/histogram
// semantics, log2 bucketing, snapshot consistency under concurrent
// writers (the 8-writer x snapshot-reader stress is the TSan target),
// registry identity/export, trace span capture + runtime gating, and the
// zero-overhead contract (an unprofiled query must leave every
// profile-only metric and the trace buffers untouched).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "provrc/compressed_table.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "query/theta_join.h"

namespace dslog {
namespace {

using metrics::Counter;
using metrics::Gauge;
using metrics::Histogram;
using metrics::Registry;
using metrics::RegistrySnapshot;

// --------------------------------------------------------------- counters --

TEST(CounterTest, AddIncrementValueReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  c.Add(-2);
  EXPECT_EQ(c.Value(), 40);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 4);
  g.Set(100);
  EXPECT_EQ(g.Value(), 100);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

// -------------------------------------------------------------- histogram --

TEST(HistogramTest, Log2Buckets) {
  // Bucket 0 holds v <= 0; bucket b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketFor(-5), 0);
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(2), 2);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 3);
  EXPECT_EQ(Histogram::BucketFor(1023), 10);
  EXPECT_EQ(Histogram::BucketFor(1024), 11);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024);
}

TEST(HistogramTest, RecordCountSumMaxQuantiles) {
  Histogram h;
  for (int64_t v : {1, 1, 2, 4, 8, 100, 1000}) h.Record(v);
  EXPECT_EQ(h.count(), 7);
  EXPECT_EQ(h.sum(), 1116);
  EXPECT_EQ(h.max(), 1000);
  metrics::HistogramSnapshot snap;
  snap.count = h.count();
  snap.sum = h.sum();
  snap.max = h.max();
  for (int b = 0; b < Histogram::kBuckets; ++b)
    snap.buckets[static_cast<size_t>(b)] = h.bucket(b);
  // Quantiles resolve to bucket lower bounds (conservative).
  EXPECT_EQ(snap.Quantile(0.0), 1);
  EXPECT_EQ(snap.Quantile(0.5), 4);
  EXPECT_EQ(snap.Quantile(1.0), 512);
  EXPECT_NEAR(snap.Mean(), 1116.0 / 7.0, 1e-9);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.max(), 0);
}

// --------------------------------------------------------------- registry --

TEST(RegistryTest, SameNameSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(b.Value(), 5);
  EXPECT_NE(&reg.counter("y"), &a);
  // Distinct kinds live in distinct namespaces even under one name.
  reg.gauge("x").Set(17);
  EXPECT_EQ(reg.counter("x").Value(), 5);
}

TEST(RegistryTest, SnapshotAndExport) {
  Registry reg;
  reg.counter("queries").Add(3);
  reg.gauge("depth").Set(2);
  reg.histogram("lat_us").Record(100);
  reg.histogram("lat_us").Record(300);

  RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("queries"), 3);
  EXPECT_EQ(snap.CounterValue("absent"), 0);
  ASSERT_NE(snap.FindGauge("depth"), nullptr);
  EXPECT_EQ(snap.FindGauge("depth")->value, 2);
  ASSERT_NE(snap.FindHistogram("lat_us"), nullptr);
  EXPECT_EQ(snap.FindHistogram("lat_us")->count, 2);
  EXPECT_EQ(snap.FindHistogram("lat_us")->sum, 400);

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"queries\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("queries = 3"), std::string::npos);

  reg.Reset();
  EXPECT_EQ(reg.Snapshot().CounterValue("queries"), 0);
  EXPECT_EQ(reg.Snapshot().FindHistogram("lat_us")->count, 0);
}

TEST(RegistryTest, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&Registry::Global(), &Registry::Global());
}

// The TSan target: 8 writers hammer one counter and one histogram while a
// reader loops Snapshot(). Snapshots must never be torn (counter value
// within [0, total]; histogram count >= any previously observed count —
// monotonic without resets) and the final values must be exact.
TEST(RegistryStressTest, EightWritersVsSnapshotReader) {
  Registry reg;
  Counter& c = reg.counter("stress.counter");
  Histogram& h = reg.histogram("stress.hist");
  constexpr int kWriters = 8;
  constexpr int64_t kPerThread = 20000;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    int64_t prev_count = 0;
    int64_t prev_value = 0;
    while (!stop.load(std::memory_order_acquire)) {
      RegistrySnapshot snap = reg.Snapshot();
      const int64_t v = snap.CounterValue("stress.counter");
      const auto* hist = snap.FindHistogram("stress.hist");
      ASSERT_NE(hist, nullptr);
      EXPECT_GE(v, prev_value);
      EXPECT_LE(v, kWriters * kPerThread);
      EXPECT_GE(hist->count, prev_count);
      EXPECT_LE(hist->count, kWriters * kPerThread);
      prev_value = v;
      prev_count = hist->count;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t)
    writers.emplace_back([&c, &h, t] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Record(1 + ((i + t) & 255));
      }
    });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(c.Value(), kWriters * kPerThread);
  RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.FindHistogram("stress.hist")->count, kWriters * kPerThread);
}

// ------------------------------------------------------------ trace spans --

TEST(TraceTest, DisabledByDefaultAndRuntimeGated) {
  trace::Clear();
  ASSERT_FALSE(trace::Enabled());
  { trace::Span span("should_not_record", "test"); }
  EXPECT_EQ(trace::EventCount(), 0);

  if (!trace::kCompiledIn) {
    // DSLOG_TRACE=OFF build: spans are empty structs; export is refused.
    trace::SetEnabled(true);
    { trace::Span span("still_nothing", "test"); }
    EXPECT_EQ(trace::EventCount(), 0);
    trace::SetEnabled(false);
    return;
  }

  {
    trace::EnabledScope on(true);
    ASSERT_TRUE(trace::Enabled());
    trace::Span span("recorded", "test");
    span.Arg("k", 7);
  }
  EXPECT_FALSE(trace::Enabled());  // EnabledScope restored the prior state
  EXPECT_EQ(trace::EventCount(), 1);
  const std::string json = trace::ExportJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": 7"), std::string::npos);
  trace::Clear();
  EXPECT_EQ(trace::EventCount(), 0);
}

TEST(TraceTest, SpanStartedWhileDisabledStaysSilent) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  trace::Clear();
  trace::Span span("started_disabled", "test");
  trace::SetEnabled(true);  // enabling mid-span must not record it
  span.Arg("late", 1);
  trace::SetEnabled(false);
  EXPECT_EQ(trace::EventCount(), 0);
}

// ---------------------------------------------------- zero-overhead gate --

CompressedTable MakeSmallTable() {
  CompressedTable table({256}, {256});
  CompressedRow row;
  for (int64_t r = 0; r < 200; ++r) {
    row.out = {{r, r + 4}};
    row.in = {InputCell::Relative(0, {0, 0})};
    table.AddRow(row);
  }
  return table;
}

// An unprofiled query must not touch any profile-only metric (the
// "dslog.query.profiled" counter, the per-query latency histogram) and
// must not emit trace events — this is the registry-visible face of the
// "no instrumentation on the hot path unless asked" contract.
TEST(ZeroOverheadTest, UnprofiledQueryTouchesNoProfileMetrics) {
  CompressedTable table = MakeSmallTable();
  std::vector<QueryHop> hops;
  hops.emplace_back(&table, /*forward=*/false);
  BoxTable query(1);
  const Interval box[1] = {{10, 40}};
  query.AddBox(box);

  RegistrySnapshot before = Registry::Global().Snapshot();
  const auto* wall_before = before.FindHistogram("dslog.query.wall_us");
  const int64_t wall_count_before =
      wall_before != nullptr ? wall_before->count : 0;
  const int64_t events_before = trace::EventCount();

  QueryOptions options;  // profile defaults to false
  QueryProfile ignored;
  // Even with a profile object handed in, profile=false must keep the
  // fast path: the struct stays empty and nothing profile-only moves.
  BoxTable result = InSituQuery(hops, query, options, &ignored);
  EXPECT_GT(result.num_boxes(), 0);
  EXPECT_TRUE(ignored.hops.empty());

  RegistrySnapshot after = Registry::Global().Snapshot();
  EXPECT_EQ(after.CounterValue("dslog.query.profiled"),
            before.CounterValue("dslog.query.profiled"));
  const auto* wall_after = after.FindHistogram("dslog.query.wall_us");
  const int64_t wall_count_after =
      wall_after != nullptr ? wall_after->count : 0;
  EXPECT_EQ(wall_count_after, wall_count_before);
  EXPECT_EQ(trace::EventCount(), events_before);
  // The unprofiled counterpart metrics *do* move (they are relaxed adds
  // outside the join loops, not per-candidate work).
  EXPECT_EQ(after.CounterValue("dslog.query.count"),
            before.CounterValue("dslog.query.count") + 1);
}

// With counters == nullptr (every unprofiled call site) the kernels must
// skip the planner-estimate bookkeeping entirely: a JoinCounters object
// never passed in stays all-zero, and passing one only changes the join's
// instrumentation, never its result.
TEST(ZeroOverheadTest, CountersAreOptInAndResultInvariant) {
  CompressedTable table = MakeSmallTable();
  BoxTable query(1);
  const Interval box[1] = {{10, 40}};
  query.AddBox(box);

  BoxTable plain = BackwardThetaJoin(query, table);
  JoinCounters counters;
  BoxTable counted = BackwardThetaJoin(query, table, 1, false, JoinPath::kAuto,
                                       &counters);
  ASSERT_EQ(plain.num_boxes(), counted.num_boxes());
  EXPECT_EQ(counters.probes.load(), 1);
  EXPECT_GT(counters.rows_scanned.load(), 0);
  EXPECT_EQ(counters.rows_emitted.load(), counted.num_boxes());
  EXPECT_EQ(counters.path_probes_total(), 1);
}

}  // namespace
}  // namespace dslog
