// Tests for the in-situ query processor: the paper's worked θ-join example,
// forward/backward equivalence against uncompressed natural joins (the
// central correctness property), multi-hop pipelines, and the merge
// optimization.

#include <set>

#include <gtest/gtest.h>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"
#include "provrc/provrc.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "query/theta_join.h"

namespace dslog {
namespace {

LineageRelation CaptureOp(const char* op_name,
                          const std::vector<const NDArray*>& inputs,
                          const OpArgs& args, NDArray* output,
                          int which = 0) {
  const ArrayOp* op = OpRegistry::Global().Find(op_name);
  EXPECT_NE(op, nullptr) << op_name;
  *output = op->Apply(inputs, args).ValueOrDie();
  auto rels = op->Capture(inputs, *output, args).ValueOrDie();
  return std::move(rels[static_cast<size_t>(which)]);
}

std::set<std::vector<int64_t>> ToTupleSet(const std::vector<int64_t>& flat,
                                          int arity) {
  std::set<std::vector<int64_t>> out;
  for (size_t off = 0; off < flat.size(); off += static_cast<size_t>(arity))
    out.insert(std::vector<int64_t>(flat.begin() + static_cast<long>(off),
                                    flat.begin() + static_cast<long>(off) +
                                        arity));
  return out;
}

// ---------------------------------------------------------------- BoxTable --

TEST(BoxTableTest, FromCellsMergesAdjacent) {
  BoxTable t = BoxTable::FromCells(1, {1, 2, 3, 4, 9, 12, 13, 14, 15});
  // The paper's range() example: {[1,4], [9], [12,15]}.
  EXPECT_EQ(t.num_boxes(), 3);
}

TEST(BoxTableTest, Merge2DGrid) {
  // A full 4x4 grid of cells collapses to a single box.
  std::vector<int64_t> cells;
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 4; ++j) {
      cells.push_back(i);
      cells.push_back(j);
    }
  BoxTable t = BoxTable::FromCells(2, cells);
  ASSERT_EQ(t.num_boxes(), 1);
  EXPECT_EQ(t.Box(0)[0], (Interval{0, 3}));
  EXPECT_EQ(t.Box(0)[1], (Interval{0, 3}));
}

TEST(BoxTableTest, MergeDropsDuplicates) {
  BoxTable t(1);
  Interval iv{3, 7};
  t.AddBox({&iv, 1});
  t.AddBox({&iv, 1});
  t.Merge();
  EXPECT_EQ(t.num_boxes(), 1);
}

TEST(BoxTableTest, MergeCoalescesOverlaps) {
  BoxTable t(1);
  Interval a{0, 5}, b{3, 9};
  t.AddBox({&a, 1});
  t.AddBox({&b, 1});
  t.Merge();
  ASSERT_EQ(t.num_boxes(), 1);
  EXPECT_EQ(t.Box(0)[0], (Interval{0, 9}));
}

TEST(BoxTableTest, ExpandToCellsDedups) {
  BoxTable t(1);
  Interval a{0, 3}, b{2, 5};
  t.AddBox({&a, 1});
  t.AddBox({&b, 1});
  EXPECT_EQ(t.NumDistinctCells(), 6);
}

// ------------------------------------------------------- worked example --

TEST(ThetaJoinTest, PaperSectionVExample) {
  // Stored table (paper Table II, 0-based): b1=[0,2], a1 rel delta 0,
  // a2 abs [0,1]. Backward query for b1 in [0,1] must return
  // a1 in [0,1], a2 in [0,1] (paper Table VI).
  CompressedTable table({3}, {3, 2});
  CompressedRow row;
  row.out = {{0, 2}};
  row.in = {InputCell::Relative(0, {0, 0}), InputCell::Absolute({0, 1})};
  table.AddRow(row);

  BoxTable q(1);
  Interval qiv{0, 1};
  q.AddBox({&qiv, 1});
  BoxTable result = BackwardThetaJoin(q, table);
  ASSERT_EQ(result.num_boxes(), 1);
  EXPECT_EQ(result.Box(0)[0], (Interval{0, 1}));
  EXPECT_EQ(result.Box(0)[1], (Interval{0, 1}));
}

TEST(ThetaJoinTest, RangeJoinNoOverlapYieldsEmpty) {
  CompressedTable table({10}, {10});
  CompressedRow row;
  row.out = {{0, 4}};
  row.in = {InputCell::Absolute({0, 4})};
  table.AddRow(row);
  BoxTable q(1);
  Interval qiv{7, 9};
  q.AddBox({&qiv, 1});
  EXPECT_TRUE(BackwardThetaJoin(q, table).empty());
  EXPECT_TRUE(ForwardThetaJoin(q, table).empty());
}

TEST(ThetaJoinTest, ForwardClampsToRowBound) {
  // Row: out [5, 9], input relative delta [-2, 0] (a = b - 2 .. b).
  // Querying inputs [3, 4]: implied inputs are [3, 9]; t = [3,4];
  // feasible outputs = [3 - 0, 4 + 2] = [3, 6] clamped to [5, 9] -> [5, 6].
  CompressedTable table({10}, {10});
  CompressedRow row;
  row.out = {{5, 9}};
  row.in = {InputCell::Relative(0, {-2, 0})};
  table.AddRow(row);
  BoxTable q(1);
  Interval qiv{3, 4};
  q.AddBox({&qiv, 1});
  BoxTable result = ForwardThetaJoin(q, table);
  ASSERT_EQ(result.num_boxes(), 1);
  EXPECT_EQ(result.Box(0)[0], (Interval{5, 6}));
}

// ----------------------------------------- equivalence with ground truth --

// For each single-op lineage: random queries, both directions, in-situ
// result must equal the uncompressed natural-join result.
class SingleHopEquivalenceTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(SingleHopEquivalenceTest, MatchesUncompressedJoin) {
  const ArrayOp* op = OpRegistry::Global().Find(GetParam());
  ASSERT_NE(op, nullptr);
  if (op->num_inputs() != 1) GTEST_SKIP();
  Rng rng(23);
  std::vector<int64_t> shape = op->SupportsUnaryShape({7, 5})
                                   ? std::vector<int64_t>{7, 5}
                                   : std::vector<int64_t>{35};
  if (!op->SupportsUnaryShape(shape)) GTEST_SKIP();
  NDArray x = NDArray::Random(shape, &rng);
  OpArgs args = op->SampleArgs(shape, &rng);
  auto outr = op->Apply({&x}, args);
  if (!outr.ok()) GTEST_SKIP();
  NDArray out = outr.ValueOrDie();
  auto rels = op->Capture({&x}, out, args).ValueOrDie();
  LineageRelation& rel = rels[0];
  if (rel.num_rows() == 0) GTEST_SKIP();
  CompressedTable table = ProvRcCompress(rel);
  ForwardTable fwd = ForwardTable::FromBackward(table);

  for (int trial = 0; trial < 4; ++trial) {
    // Backward: random output cells.
    {
      std::vector<int64_t> cells;
      std::vector<int64_t> idx(static_cast<size_t>(out.ndim()));
      int64_t k = std::max<int64_t>(1, out.size() / 4);
      for (int64_t flat : rng.SampleWithoutReplacement(out.size(), k)) {
        out.UnravelIndex(flat, idx);
        cells.insert(cells.end(), idx.begin(), idx.end());
      }
      BoxTable q = BoxTable::FromCells(out.ndim(), cells);
      BoxTable got = BackwardThetaJoin(q, table);
      got.Merge();
      std::vector<int64_t> want =
          RelationJoinStep(rel, /*forward=*/false, cells);
      EXPECT_EQ(ToTupleSet(got.ExpandToCells(), rel.in_ndim()),
                ToTupleSet(want, rel.in_ndim()))
          << GetParam() << " backward";
    }
    // Forward: random input cells; direct join and materialized forward
    // table must both match.
    {
      std::vector<int64_t> cells;
      std::vector<int64_t> idx(static_cast<size_t>(x.ndim()));
      int64_t k = std::max<int64_t>(1, x.size() / 4);
      for (int64_t flat : rng.SampleWithoutReplacement(x.size(), k)) {
        x.UnravelIndex(flat, idx);
        cells.insert(cells.end(), idx.begin(), idx.end());
      }
      BoxTable q = BoxTable::FromCells(x.ndim(), cells);
      BoxTable got = ForwardThetaJoin(q, table);
      got.Merge();
      BoxTable got_mat = fwd.Join(q);
      got_mat.Merge();
      std::vector<int64_t> want = RelationJoinStep(rel, /*forward=*/true, cells);
      auto want_set = ToTupleSet(want, rel.out_ndim());
      EXPECT_EQ(ToTupleSet(got.ExpandToCells(), rel.out_ndim()), want_set)
          << GetParam() << " forward";
      EXPECT_EQ(ToTupleSet(got_mat.ExpandToCells(), rel.out_ndim()), want_set)
          << GetParam() << " forward materialized";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, SingleHopEquivalenceTest,
    ::testing::ValuesIn(OpRegistry::Global().UnaryPipelineNames()));

// Random-relation equivalence: no structure at all.
class RandomRelationQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomRelationQueryTest, BothDirectionsMatch) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  LineageRelation rel(2, 2);
  rel.set_shapes({10, 10}, {10, 10});
  std::vector<int64_t> tuple(4);
  for (int r = 0; r < 300; ++r) {
    for (auto& v : tuple) v = rng.UniformRange(0, 9);
    rel.AddTuple(tuple);
  }
  rel.SortAndDedup();
  CompressedTable table = ProvRcCompress(rel);
  ForwardTable fwd = ForwardTable::FromBackward(table);

  std::vector<int64_t> cells;
  for (int i = 0; i < 5; ++i) {
    cells.push_back(rng.UniformRange(0, 9));
    cells.push_back(rng.UniformRange(0, 9));
  }
  BoxTable q = BoxTable::FromCells(2, cells);

  BoxTable back = BackwardThetaJoin(q, table);
  EXPECT_EQ(ToTupleSet(back.ExpandToCells(), 2),
            ToTupleSet(RelationJoinStep(rel, false, cells), 2));
  BoxTable fwd1 = ForwardThetaJoin(q, table);
  BoxTable fwd2 = fwd.Join(q);
  auto want = ToTupleSet(RelationJoinStep(rel, true, cells), 2);
  EXPECT_EQ(ToTupleSet(fwd1.ExpandToCells(), 2), want);
  EXPECT_EQ(ToTupleSet(fwd2.ExpandToCells(), 2), want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRelationQueryTest,
                         ::testing::Range(0, 10));

// ------------------------------------------------------------- multi-hop --

TEST(MultiHopTest, ForwardPipelineMatchesGroundTruth) {
  // x -> negative -> y -> sum(axis) -> z over a 2-D array; forward query
  // from x cells to z cells.
  Rng rng(42);
  NDArray x = NDArray::Random({8, 6}, &rng);
  NDArray y, z;
  LineageRelation r1 = CaptureOp("negative", {&x}, OpArgs(), &y);
  OpArgs sum_args;
  sum_args.SetInt("axis", 1);
  LineageRelation r2 = CaptureOp("sum", {&y}, sum_args, &z);
  CompressedTable t1 = ProvRcCompress(r1);
  CompressedTable t2 = ProvRcCompress(r2);

  std::vector<int64_t> cells = {0, 0, 3, 4, 7, 5};
  BoxTable q = BoxTable::FromCells(2, cells);
  BoxTable got = InSituQuery({{&t1, true}, {&t2, true}}, q);
  std::vector<int64_t> want =
      UncompressedQuery({{&r1, true}, {&r2, true}}, cells);
  EXPECT_EQ(ToTupleSet(got.ExpandToCells(), 1), ToTupleSet(want, 1));
}

TEST(MultiHopTest, BackwardPipelineMatchesGroundTruth) {
  Rng rng(43);
  NDArray x = NDArray::Random({40}, &rng);
  NDArray y, z;
  OpArgs roll_args;
  roll_args.SetInt("shift", 7);
  LineageRelation r1 = CaptureOp("roll", {&x}, roll_args, &y);
  LineageRelation r2 = CaptureOp("cumsum", {&y}, OpArgs(), &z);
  CompressedTable t1 = ProvRcCompress(r1);
  CompressedTable t2 = ProvRcCompress(r2);

  std::vector<int64_t> cells = {5, 17, 39};
  BoxTable q = BoxTable::FromCells(1, cells);
  // Backward: z -> y -> x.
  BoxTable got = InSituQuery({{&t2, false}, {&t1, false}}, q);
  std::vector<int64_t> want =
      UncompressedQuery({{&r2, false}, {&r1, false}}, cells);
  EXPECT_EQ(ToTupleSet(got.ExpandToCells(), 1), ToTupleSet(want, 1));
}

TEST(MultiHopTest, MixedDirectionPath) {
  // Two ops sharing input x: y1 = negative(x), y2 = flip(x). Path
  // y1 -> x -> y2 uses a backward hop then a forward hop.
  Rng rng(44);
  NDArray x = NDArray::Random({30}, &rng);
  NDArray y1, y2;
  LineageRelation r1 = CaptureOp("negative", {&x}, OpArgs(), &y1);
  LineageRelation r2 = CaptureOp("flip", {&x}, OpArgs(), &y2);
  CompressedTable t1 = ProvRcCompress(r1);
  CompressedTable t2 = ProvRcCompress(r2);

  std::vector<int64_t> cells = {3, 4, 5, 20};
  BoxTable q = BoxTable::FromCells(1, cells);
  BoxTable got = InSituQuery({{&t1, false}, {&t2, true}}, q);
  std::vector<int64_t> want =
      UncompressedQuery({{&r1, false}, {&r2, true}}, cells);
  EXPECT_EQ(ToTupleSet(got.ExpandToCells(), 1), ToTupleSet(want, 1));
}

TEST(MultiHopTest, NoMergeMatchesMergedResults) {
  Rng rng(45);
  NDArray x = NDArray::Random({64}, &rng);
  NDArray y, z;
  LineageRelation r1 = CaptureOp("sqrt", {&x}, OpArgs(), &y);
  OpArgs args;
  args.SetInt("reps", 2);
  LineageRelation r2 = CaptureOp("tile", {&y}, args, &z);
  CompressedTable t1 = ProvRcCompress(r1);
  CompressedTable t2 = ProvRcCompress(r2);
  std::vector<int64_t> cells = {0, 1, 2, 3, 10, 63};
  BoxTable q = BoxTable::FromCells(1, cells);
  QueryOptions no_merge;
  no_merge.merge_between_hops = false;
  BoxTable merged = InSituQuery({{&t1, true}, {&t2, true}}, q);
  BoxTable unmerged = InSituQuery({{&t1, true}, {&t2, true}}, q, no_merge);
  EXPECT_EQ(ToTupleSet(merged.ExpandToCells(), 1),
            ToTupleSet(unmerged.ExpandToCells(), 1));
  EXPECT_LE(merged.num_boxes(), unmerged.num_boxes());
}

// Longer random pipelines: chain 4 random unary ops, compare forward query
// results against ground truth (integration property).
class RandomPipelineQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPipelineQueryTest, ForwardMatchesGroundTruth) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1337 + 5);
  auto pool = OpRegistry::Global().UnaryPipelineNames();
  NDArray current = NDArray::Random({48}, &rng);
  NDArray first = current;
  std::vector<LineageRelation> rels;
  std::vector<CompressedTable> tables;
  int steps = 0;
  int guard = 0;
  while (steps < 4 && guard < 200) {
    ++guard;
    const ArrayOp* op =
        OpRegistry::Global().Find(pool[rng.Uniform(pool.size())]);
    if (!op->SupportsUnaryShape(current.shape())) continue;
    OpArgs args = op->SampleArgs(current.shape(), &rng);
    auto out = op->Apply({&current}, args);
    if (!out.ok()) continue;
    NDArray next = out.ValueOrDie();
    if (next.size() == 0 || next.size() > 200000) continue;
    auto captured = op->Capture({&current}, next, args);
    if (!captured.ok() || captured.value()[0].num_rows() == 0) continue;
    rels.push_back(std::move(captured.ValueOrDie()[0]));
    tables.push_back(ProvRcCompress(rels.back()));
    current = std::move(next);
    ++steps;
  }
  ASSERT_EQ(steps, 4);

  std::vector<int64_t> cells;
  std::vector<int64_t> idx(first.shape().size());
  for (int64_t flat : rng.SampleWithoutReplacement(first.size(), 6)) {
    first.UnravelIndex(flat, idx);
    cells.insert(cells.end(), idx.begin(), idx.end());
  }
  BoxTable q = BoxTable::FromCells(first.ndim(), cells);
  std::vector<QueryHop> hops;
  std::vector<RelationHop> rhops;
  for (size_t i = 0; i < tables.size(); ++i) {
    hops.push_back({&tables[i], true});
    rhops.push_back({&rels[i], true});
  }
  BoxTable got = InSituQuery(hops, q);
  std::vector<int64_t> want = UncompressedQuery(rhops, cells);
  int arity = rels.back().out_ndim();
  EXPECT_EQ(ToTupleSet(got.ExpandToCells(), arity), ToTupleSet(want, arity));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineQueryTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace dslog
