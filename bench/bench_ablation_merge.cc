// Ablation A1: effect of the between-hop projection + merge row reduction
// (§V.B.3, the DSLog vs DSLog-NoMerge gap in Fig 9). Reports per-hop
// intermediate box counts and end-to-end latency with the merge step on
// and off, over random numpy pipelines.

#include <cstdio>

#include "bench_util.h"
#include "query/query_engine.h"
#include "query/theta_join.h"

using namespace dslog;
using namespace dslog::bench;

int main(int argc, char** argv) {
  JsonReporter json("ablation_merge", argc, argv);
  std::printf("=== Ablation: θ-join merge step (on vs off) ===\n\n");
  std::printf("%-10s %6s | %14s %14s | %12s %12s %8s\n", "workflow", "ops",
              "boxes(merge)", "boxes(no-merge)", "merge (s)", "no-merge (s)",
              "speedup");
  PrintRule(100);

  for (int w = 0; w < 6; ++w) {
    auto wfr = BuildRandomNumpyWorkflow(8, 20000, static_cast<uint64_t>(500 + w));
    if (!wfr.ok()) continue;
    const Workflow& wf = wfr.value();
    std::vector<CompressedTable> tables;
    for (const auto& step : wf.steps) tables.push_back(ProvRcCompress(step.relation));
    std::vector<QueryHop> hops;
    for (const auto& t : tables) hops.push_back({&t, true});

    Rng rng(static_cast<uint64_t>(w));
    std::vector<int64_t> cells = SampleQueryCells(wf, 4000, &rng);
    BoxTable q = BoxTable::FromCells(static_cast<int>(wf.shapes[0].size()), cells);

    // Count final boxes and time both configurations.
    QueryOptions merged_opts, unmerged_opts;
    unmerged_opts.merge_between_hops = false;

    WallTimer t1;
    BoxTable with_merge = InSituQuery(hops, q, merged_opts);
    double merge_s = t1.ElapsedSeconds();
    WallTimer t2;
    BoxTable without_merge = InSituQuery(hops, q, unmerged_opts);
    double no_merge_s = t2.ElapsedSeconds();

    std::printf("%-10d %6zu | %14lld %14lld | %12.4f %12.4f %7.2fx\n", w,
                wf.steps.size(), static_cast<long long>(with_merge.num_boxes()),
                static_cast<long long>(without_merge.num_boxes()), merge_s,
                no_merge_s, no_merge_s / std::max(1e-9, merge_s));
    json.Add()
        .Num("workflow", w)
        .Num("ops", static_cast<double>(wf.steps.size()))
        .Num("boxes_merge", static_cast<double>(with_merge.num_boxes()))
        .Num("boxes_no_merge", static_cast<double>(without_merge.num_boxes()))
        .Num("merge_s", merge_s)
        .Num("no_merge_s", no_merge_s);
  }
  PrintRule(100);
  std::printf(
      "\nReading: merging collapses intermediate box tables (often to a\n"
      "single box), bounding the cost of each subsequent range join — the\n"
      "paper's DSLog-NoMerge gap. With the sort-sweep range join the\n"
      "penalty for unmerged tables is smaller than under a nested-loop\n"
      "join, so the merge pays off chiefly when boxes actually coalesce;\n"
      "its own cost is bounded and small.\n");
  return 0;
}
