// Reproduces ICDE'24 Fig 7 (A, B): compression latency as a function of
// input size, for (A) one-to-one element-wise lineage and (B) one-axis
// aggregation lineage. Latency covers the full convert + compress + flush
// path to disk, matching the paper's definition.

#include <cstdio>

#include "bench_util.h"
#include "common/io.h"

using namespace dslog;
using namespace dslog::bench;

namespace {

double MeasureFormatLatency(const StorageFormat& format,
                            const LineageRelation& rel,
                            const std::string& path) {
  WallTimer timer;
  std::string data = format.Encode(rel);
  Status st = WriteFile(path, data);
  DSLOG_CHECK(st.ok()) << st.ToString();
  return timer.ElapsedSeconds();
}

double MeasureProvRcLatency(const LineageRelation& rel, bool gzip,
                            const std::string& path) {
  WallTimer timer;
  CompressedTable t = ProvRcCompress(rel);
  std::string data =
      gzip ? SerializeCompressedTableGzip(t) : SerializeCompressedTable(t);
  Status st = WriteFile(path, data);
  DSLOG_CHECK(st.ok()) << st.ToString();
  return timer.ElapsedSeconds();
}

void RunSweep(const char* title, JsonReporter* json,
              const std::function<LineageRelation(int64_t)>& make) {
  std::printf("--- %s ---\n", title);
  std::printf("%12s |", "cells");
  auto formats = MakeAllBaselineFormats();
  for (const auto& f : formats) std::printf(" %12s", f->name().c_str());
  std::printf(" %12s %12s\n", "ProvRC", "ProvRC-GZip");
  PrintRule(110);
  std::string path = ScratchDir() + "/fig7.bin";
  for (int64_t cells : {1000, 10000, 100000, 1000000}) {
    LineageRelation rel = make(cells);
    std::printf("%12lld |", static_cast<long long>(cells));
    auto& rec = json->Add().Str("sweep", title).Num(
        "cells", static_cast<double>(cells));
    for (const auto& f : formats) {
      double s = MeasureFormatLatency(*f, rel, path);
      std::printf(" %12.4f", s);
      rec.Num(f->name() + "_s", s);
    }
    double provrc_s = MeasureProvRcLatency(rel, false, path);
    double provrc_gz_s = MeasureProvRcLatency(rel, true, path);
    std::printf(" %12.4f", provrc_s);
    std::printf(" %12.4f\n", provrc_gz_s);
    rec.Num("ProvRC_s", provrc_s).Num("ProvRC-GZip_s", provrc_gz_s);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("fig7_latency", argc, argv);
  std::printf("=== Fig 7: compression latency vs input size (seconds) ===\n\n");
  Rng rng(7);

  // (A) one-to-one element-wise lineage.
  RunSweep("(A) element-wise (one-to-one)", &json, [&rng](int64_t cells) {
    NDArray a = NDArray::Random({cells}, &rng);
    return CaptureRegistryOp("negative", {&a}, OpArgs());
  });

  // (B) one-axis aggregation lineage (rows x 1000 summed over axis 1).
  RunSweep("(B) one-axis aggregation", &json, [&rng](int64_t cells) {
    int64_t rows = std::max<int64_t>(1, cells / 1000);
    NDArray a = NDArray::Random({rows, 1000}, &rng);
    OpArgs args;
    args.SetInt("axis", 1);
    return CaptureRegistryOp("sum", {&a}, args);
  });

  std::printf(
      "Expected shape (paper): all algorithms within roughly an order of\n"
      "magnitude, latency growing with input size; ProvRC(-GZip) fastest on\n"
      "aggregation patterns (tiny output), slower on large element-wise\n"
      "tables relative to the columnar baselines.\n");
  return 0;
}
