// Reproduces ICDE'24 Fig 8 (A, B, C): forward query latency versus query
// selectivity over three workflows — (A) the image/CV-debugging pipeline,
// (B) the relational pre-processing pipeline, (C) a ResNet block — for
// DSLog (in-situ over ProvRC-GZip) against Parquet, Parquet-GZip, Turbo-RC
// and the vectorized Array baseline.

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"

using namespace dslog;
using namespace dslog::bench;

namespace {

constexpr double kTimeoutSeconds = 30.0;

void RunWorkflow(const Workflow& wf, JsonReporter* json) {
  std::printf("--- %s workflow (%zu steps, first array %s cells) ---\n",
              wf.name.c_str(), wf.steps.size(),
              JoinInts(wf.shapes[0], "x").c_str());
  PreparedWorkflow prep = PrepareWorkflow(wf);
  auto formats = MakeAllBaselineFormats();

  int64_t total_cells = 1;
  for (int64_t d : wf.shapes[0]) total_cells *= d;

  std::printf("%12s %10s | %10s %10s %10s %10s %10s\n", "selectivity",
              "cells", "DSLog", "Parquet", "Parq-GZip", "Turbo-RC", "Array");
  PrintRule(94);
  Rng rng(88);
  for (double sel : {0.0005, 0.005, 0.05, 0.25}) {
    int64_t count = std::max<int64_t>(1, static_cast<int64_t>(
                                             sel * static_cast<double>(total_cells)));
    std::vector<int64_t> cells = SampleQueryCells(wf, count, &rng);
    int qdim = static_cast<int>(wf.shapes[0].size());

    double dslog_s = QueryDSLog(prep.dslog_buffers, cells, qdim, /*merge=*/true);
    // Formats: index 2 = Parquet, 3 = Parquet-GZip, 4 = Turbo-RC.
    double parquet_s = QueryBaselineFormat(*formats[2], prep.format_buffers[2],
                                           cells, kTimeoutSeconds);
    double pgzip_s = QueryBaselineFormat(*formats[3], prep.format_buffers[3],
                                         cells, kTimeoutSeconds);
    double turbo_s = QueryBaselineFormat(*formats[4], prep.format_buffers[4],
                                         cells, kTimeoutSeconds);
    double array_s = QueryArrayVectorized(prep.format_buffers[1], cells, qdim,
                                          kTimeoutSeconds);
    auto print = [](double s) {
      if (s < 0)
        std::printf(" %10s", "timeout");
      else
        std::printf(" %10.4f", s);
    };
    std::printf("%12.4f %10lld |", sel, static_cast<long long>(count));
    print(dslog_s);
    print(parquet_s);
    print(pgzip_s);
    print(turbo_s);
    print(array_s);
    std::printf("\n");
    json->Add()
        .Str("workflow", wf.name)
        .Num("selectivity", sel)
        .Num("query_cells", static_cast<double>(count))
        .Num("dslog_s", dslog_s)
        .Num("parquet_s", parquet_s)
        .Num("parquet_gzip_s", pgzip_s)
        .Num("turbo_rc_s", turbo_s)
        .Num("array_s", array_s);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("fig8_workflows", argc, argv);
  std::printf("=== Fig 8: query latency vs selectivity (seconds) ===\n\n");

  auto image = BuildImageWorkflow(128, 128, 81);
  DSLOG_CHECK(image.ok()) << image.status().ToString();
  RunWorkflow(image.value(), &json);

  auto relational = BuildRelationalWorkflow(40000, 25000, 82);
  DSLOG_CHECK(relational.ok()) << relational.status().ToString();
  RunWorkflow(relational.value(), &json);

  auto resnet = BuildResNetWorkflow(48, 48, 83);
  DSLOG_CHECK(resnet.ok()) << resnet.status().ToString();
  RunWorkflow(resnet.value(), &json);

  std::printf(
      "Expected shape (paper): DSLog lowest latency except possibly the most\n"
      "selective image queries; Array worst (timeouts on less selective\n"
      "queries); Turbo-RC pays full decompression; DSLog's advantage is\n"
      "largest on the highly regular ResNet workflow.\n");
  return 0;
}
