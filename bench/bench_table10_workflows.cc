// Reproduces ICDE'24 Table X: the qualitative estimate of ProvRC-
// compressible operations and longest operation chains in Kaggle data
// science workflows. Twenty notebooks are simulated per dataset archetype
// (Flight-like, Netflix-like); per-category compressibility is *measured*
// by compressing miniature lineage instances (see workloads/kaggle_sim).

#include <cstdio>

#include "bench_util.h"
#include "workloads/kaggle_sim.h"

using namespace dslog;
using namespace dslog::bench;

namespace {

void PrintRow(const KaggleSummary& s, JsonReporter* json) {
  std::printf("%-10s %8.1f +- %-6.1f %8.1f +- %-6.1f %7.1f +- %-5.1f %8.1f +- %-6.1f\n",
              s.dataset.c_str(), s.total_mean, s.total_std,
              s.compressible_mean, s.compressible_std, s.pct_mean, s.pct_std,
              s.chain_mean, s.chain_std);
  json->Add()
      .Str("dataset", s.dataset)
      .Num("total_mean", s.total_mean)
      .Num("total_std", s.total_std)
      .Num("compressible_mean", s.compressible_mean)
      .Num("compressible_std", s.compressible_std)
      .Num("pct_mean", s.pct_mean)
      .Num("pct_std", s.pct_std)
      .Num("chain_mean", s.chain_mean)
      .Num("chain_std", s.chain_std);
}

KaggleSummary Combine(const KaggleSummary& a, const KaggleSummary& b) {
  KaggleSummary t;
  t.dataset = "Total";
  t.total_mean = (a.total_mean + b.total_mean) / 2;
  t.total_std = (a.total_std + b.total_std) / 2;
  t.compressible_mean = (a.compressible_mean + b.compressible_mean) / 2;
  t.compressible_std = (a.compressible_std + b.compressible_std) / 2;
  t.pct_mean = (a.pct_mean + b.pct_mean) / 2;
  t.pct_std = (a.pct_std + b.pct_std) / 2;
  t.chain_mean = (a.chain_mean + b.chain_mean) / 2;
  t.chain_std = (a.chain_std + b.chain_std) / 2;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("table10_workflows", argc, argv);
  std::printf("=== Table X: compressible operations in Kaggle workflows ===\n");
  std::printf("(20 simulated notebooks per dataset archetype)\n\n");
  std::printf("%-10s %18s %18s %16s %18s\n", "Dataset", "Total Op.",
              "Compressible Op.", "Compr. (%)", "Longest Chain");
  PrintRule(86);
  KaggleSummary flight = SimulateKaggleDataset(FlightProfile(), 20, 1);
  KaggleSummary netflix = SimulateKaggleDataset(NetflixProfile(), 20, 2);
  PrintRow(flight, &json);
  PrintRow(netflix, &json);
  PrintRow(Combine(flight, netflix), &json);
  PrintRule(86);
  std::printf(
      "\nExpected shape (paper): ~55-60 total ops with large variance,\n"
      "66-77%% compressible, longest chains ~14-16 with smaller variance\n"
      "than total op counts; exploration-heavy datasets compress less.\n");
  return 0;
}
