// Reproduces ICDE'24 Table VII: lineage storage size on disk for the twelve
// evaluation operations under every format (Raw, Array, Parquet,
// Parquet-GZip, Turbo-RC, ProvRC, ProvRC-GZip), with ratios relative to
// Raw. Workloads are scaled to laptop size (see docs/ARCHITECTURE.md); the
// comparison shape — who wins where, by how many orders of magnitude — is
// the reproduced quantity.

#include <cstdio>

#include "bench_util.h"

using namespace dslog;
using namespace dslog::bench;

int main(int argc, char** argv) {
  JsonReporter json("table7_compression", argc, argv);
  std::printf("=== Table VII: lineage storage size by format ===\n");
  std::printf("(sizes in KB; Rel%% = size / Raw size * 100)\n\n");

  auto workloads = BuildTable7Workloads(/*seed=*/20240501);
  auto formats = MakeAllBaselineFormats();

  std::printf("%-14s %10s |", "Name", "Rows");
  for (const auto& f : formats) std::printf(" %12s %8s |", f->name().c_str(), "Rel%");
  std::printf(" %12s %8s | %12s %8s\n", "ProvRC", "Rel%", "ProvRC-GZip", "Rel%");
  PrintRule(160);

  for (const auto& w : workloads) {
    std::printf("%-14s %10lld |", w.name.c_str(),
                static_cast<long long>(w.TotalRows()));
    int64_t raw_bytes = 0;
    std::vector<int64_t> sizes;
    for (const auto& f : formats) {
      int64_t bytes = FormatBytes(*f, w.relations);
      if (f->name() == "Raw") raw_bytes = bytes;
      sizes.push_back(bytes);
    }
    for (int64_t bytes : sizes) {
      std::printf(" %12.2f %8.4f |", bytes / 1024.0,
                  100.0 * static_cast<double>(bytes) /
                      static_cast<double>(raw_bytes));
    }
    int64_t provrc = ProvRcBytes(w.relations, /*gzip=*/false);
    int64_t provrc_gz = ProvRcBytes(w.relations, /*gzip=*/true);
    std::printf(" %12.3f %8.4f | %12.3f %8.4f\n", provrc / 1024.0,
                100.0 * static_cast<double>(provrc) / static_cast<double>(raw_bytes),
                provrc_gz / 1024.0,
                100.0 * static_cast<double>(provrc_gz) / static_cast<double>(raw_bytes));
    auto& rec = json.Add()
                    .Str("workload", w.name)
                    .Num("rows", static_cast<double>(w.TotalRows()));
    for (size_t f = 0; f < formats.size(); ++f)
      rec.Num(formats[f]->name() + "_bytes", static_cast<double>(sizes[f]));
    rec.Num("ProvRC_bytes", static_cast<double>(provrc))
        .Num("ProvRC-GZip_bytes", static_cast<double>(provrc_gz));
  }
  PrintRule(160);
  std::printf(
      "\nExpected shape (paper): ProvRC wins by orders of magnitude on the six\n"
      "pattern-structured ops, stays competitive on partially-structured ones\n"
      "(ImgFilter/Lime/DRISE/Inner Join), and degrades to entropy coding on\n"
      "Sort/Group By where ProvRC-GZip recovers most of the gap.\n");
  return 0;
}
