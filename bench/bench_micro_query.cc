// Micro-benchmarks (google-benchmark) for the query kernels: ProvRC
// compression itself, backward/forward θ-joins, and box-table merging.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/simd.h"
#include "provrc/provrc.h"
#include "query/box.h"
#include "query/theta_join.h"
#include "storage/signatures.h"

namespace dslog {
namespace {

LineageRelation MakeSortLineage(int64_t n) {
  Rng rng(4);
  NDArray x = NDArray::Random({n}, &rng);
  const ArrayOp* op = OpRegistry::Global().Find("sort");
  NDArray out = op->Apply({&x}, OpArgs()).ValueOrDie();
  return std::move(op->Capture({&x}, out, OpArgs()).ValueOrDie()[0]);
}

LineageRelation MakeAggregateLineage(int64_t rows) {
  Rng rng(5);
  NDArray x = NDArray::Random({rows, 100}, &rng);
  OpArgs args;
  args.SetInt("axis", 1);
  const ArrayOp* op = OpRegistry::Global().Find("sum");
  NDArray out = op->Apply({&x}, args).ValueOrDie();
  return std::move(op->Capture({&x}, out, args).ValueOrDie()[0]);
}

void BM_ProvRcCompressStructured(benchmark::State& state) {
  LineageRelation rel = MakeAggregateLineage(state.range(0));
  for (auto _ : state) {
    CompressedTable t = ProvRcCompress(rel);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * rel.num_rows());
}
BENCHMARK(BM_ProvRcCompressStructured)->Arg(100)->Arg(1000);

void BM_ProvRcCompressUnstructured(benchmark::State& state) {
  LineageRelation rel = MakeSortLineage(state.range(0));
  for (auto _ : state) {
    CompressedTable t = ProvRcCompress(rel);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * rel.num_rows());
}
BENCHMARK(BM_ProvRcCompressUnstructured)->Arg(1 << 12)->Arg(1 << 15);

void BM_BackwardThetaJoin(benchmark::State& state) {
  // Unstructured table (many rows) joined with a moderate query.
  CompressedTable table = ProvRcCompress(MakeSortLineage(state.range(0)));
  Rng rng(6);
  std::vector<int64_t> cells;
  for (int i = 0; i < 64; ++i) cells.push_back(rng.UniformRange(0, state.range(0) - 1));
  BoxTable q = BoxTable::FromCells(1, cells);
  for (auto _ : state) {
    BoxTable r = BackwardThetaJoin(q, table);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_BackwardThetaJoin)->Arg(1 << 12)->Arg(1 << 15);

// The wide-table case: many rows, multi-attribute (l=2, m=3), built
// directly so row count and interval spread are controlled. Backward joins
// over it are the headline kernel for the columnar layout + interval index.
CompressedTable MakeWideTable(int64_t rows) {
  const int64_t domain = rows * 4;
  CompressedTable table({domain, 64}, {domain, 64, 16});
  Rng rng(9);
  CompressedRow row;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * 4;
    row.out = {{base, base + 3}, {rng.UniformRange(0, 60), 0}};
    row.out[1].hi = row.out[1].lo + 3;
    row.in = {InputCell::Relative(0, {rng.UniformRange(-2, 2),
                                      rng.UniformRange(3, 5)}),
              InputCell::Absolute({rng.UniformRange(0, 32), 0}),
              InputCell::Absolute({rng.UniformRange(0, 12), 0})};
    row.in[1].iv.hi = row.in[1].iv.lo + rng.UniformRange(0, 8);
    row.in[2].iv.hi = row.in[2].iv.lo + rng.UniformRange(0, 3);
    table.AddRow(row);
  }
  return table;
}

void BM_BackwardThetaJoinWide(benchmark::State& state) {
  CompressedTable table = MakeWideTable(state.range(0));
  const int64_t domain = state.range(0) * 4;
  Rng rng(10);
  BoxTable q(2);
  for (int i = 0; i < 64; ++i) {
    Interval box[2] = {{0, 0}, {0, 63}};
    box[0].lo = rng.UniformRange(0, domain - 16);
    box[0].hi = box[0].lo + 15;
    q.AddBox(box);
  }
  for (auto _ : state) {
    BoxTable r = BackwardThetaJoin(q, table);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_BackwardThetaJoinWide)->Arg(1 << 12)->Arg(1 << 15);

// The planner-calibration sweep: backward join over the wide table at a
// controlled selectivity (probes of width sel_ppm * domain / 1e6 overlap
// about that fraction of the rows, whose out-attr-0 intervals tile the
// domain), with the access path forced per JoinPath value (0 = auto). The
// measured per-path curves are what the cost constants in
// query/join_planner.cc are fitted to, and the committed crossover table
// in docs/ARCHITECTURE.md renders them.
void BM_BackwardJoinSweep(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const int64_t sel_ppm = state.range(1);
  const auto path = static_cast<JoinPath>(state.range(2));
  CompressedTable table = MakeWideTable(rows);
  const int64_t domain = rows * 4;
  const int64_t width =
      std::max<int64_t>(1, domain * sel_ppm / 1000000);
  Rng rng(11);
  BoxTable q(2);
  for (int i = 0; i < 16; ++i) {
    Interval box[2] = {{0, 0}, {0, 63}};
    box[0].lo = rng.UniformRange(0, std::max<int64_t>(0, domain - width));
    box[0].hi = box[0].lo + width - 1;
    q.AddBox(box);
  }
  for (auto _ : state) {
    BoxTable r = BackwardThetaJoin(q, table, 1, false, path);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(JoinPathName(path));
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_BackwardJoinSweep)
    ->ArgNames({"rows", "sel_ppm", "path"})
    ->ArgsProduct({{1 << 12, 1 << 15},
                   {100, 1000, 10000, 100000, 300000, 1000000},
                   {0, 1, 2, 3}});

void BM_ForwardThetaJoin(benchmark::State& state) {
  CompressedTable table = ProvRcCompress(MakeSortLineage(state.range(0)));
  Rng rng(7);
  std::vector<int64_t> cells;
  for (int i = 0; i < 64; ++i) cells.push_back(rng.UniformRange(0, state.range(0) - 1));
  BoxTable q = BoxTable::FromCells(1, cells);
  for (auto _ : state) {
    BoxTable r = ForwardThetaJoin(q, table);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_ForwardThetaJoin)->Arg(1 << 12)->Arg(1 << 15);

// ------------------------------------------------- reuse-predictor keys --
//
// The predictor used to build its dim/gen/base keys with an ostringstream
// per lookup and rehash the op arguments once per key builder. The current
// path hashes the arguments once and either streams key bytes into a
// reserved string (map path) or through the hash alone (sealed path).
// BM_PredictorLegacyKeyBuild is a faithful replica of the retired builder,
// kept here so the delta stays measurable.

constexpr int64_t kPredictorOps = 512;

std::string PredictorOpName(int64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "op%05lld", static_cast<long long>(i));
  return buf;
}

/// Predictor with kPredictorOps promoted dim/gen signatures (each op
/// registered twice with identical lineage, the §VI.C m = 1 promotion).
ReusePredictor MakePromotedPredictor() {
  LineageRelation rel(1, 1);
  rel.set_shapes({4}, {4});
  rel.mutable_flat() = {0, 0};
  const std::vector<CompressedTable> tables = {ProvRcCompress(rel)};
  ReusePredictor p;
  for (int64_t i = 0; i < kPredictorOps; ++i) {
    OpArgs args;
    args.SetInt("k", i);
    for (int rep = 0; rep < 2; ++rep)
      p.ProcessRegistration(PredictorOpName(i), args, {{4}}, {4},
                            /*content_hash=*/static_cast<uint64_t>(i), tables);
  }
  return p;
}

std::string LegacyDimKey(const std::string& op_name, const OpArgs& args,
                         const std::vector<std::vector<int64_t>>& in_shapes) {
  std::ostringstream key;
  key << op_name << '#' << args.Hash();
  for (const auto& shape : in_shapes) {
    key << '|';
    for (size_t i = 0; i < shape.size(); ++i) {
      if (i) key << ',';
      key << shape[i];
    }
  }
  return key.str();
}

std::string LegacyGenKey(const std::string& op_name, const OpArgs& args) {
  std::ostringstream key;
  key << op_name << '#' << args.Hash();
  return key.str();
}

void BM_PredictorLegacyKeyBuild(benchmark::State& state) {
  OpArgs args;
  args.SetInt("k", 7);
  const std::string op = PredictorOpName(7);
  const std::vector<std::vector<int64_t>> shapes = {{4}};
  int64_t i = 0;
  for (auto _ : state) {
    // One Predict's worth of key construction: dim key then gen key, the
    // argument hash recomputed by each builder (as the old code did).
    std::string dim = LegacyDimKey(op, args, shapes);
    std::string gen = LegacyGenKey(op, args);
    benchmark::DoNotOptimize(dim);
    benchmark::DoNotOptimize(gen);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictorLegacyKeyBuild);

// range(0): 0 = map path (unsealed), 1 = sealed perfect-hash path.
// range(1): 0 = promoted hit, 1 = absent op (miss).
void BM_PredictorPredict(benchmark::State& state) {
  ReusePredictor p = MakePromotedPredictor();
  if (state.range(0) == 1) {
    ReusePredictor restored;
    Status st = restored.RestoreState(p.SerializeState());
    if (!st.ok() || !restored.sealed()) {
      state.SkipWithError("predictor did not seal");
      return;
    }
    p = std::move(restored);
  }
  const bool miss = state.range(1) == 1;
  std::vector<OpArgs> args(static_cast<size_t>(kPredictorOps));
  std::vector<std::string> ops(static_cast<size_t>(kPredictorOps));
  for (int64_t i = 0; i < kPredictorOps; ++i) {
    args[static_cast<size_t>(i)].SetInt("k", i);
    ops[static_cast<size_t>(i)] =
        miss ? "absent" + PredictorOpName(i) : PredictorOpName(i);
  }
  int64_t i = 0;
  for (auto _ : state) {
    const auto idx = static_cast<size_t>(i++ % kPredictorOps);
    auto tables = p.Predict(ops[idx], args[idx], {{4}}, {4});
    benchmark::DoNotOptimize(tables);
  }
  state.SetLabel(std::string(state.range(0) ? "sealed" : "map") + "/" +
                 (miss ? "miss" : "hit"));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictorPredict)
    ->ArgNames({"sealed", "miss"})
    ->ArgsProduct({{0, 1}, {0, 1}});

void BM_BoxTableMerge(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    state.PauseTiming();
    BoxTable t(2);
    for (int64_t i = 0; i < state.range(0); ++i) {
      Interval box[2] = {Interval::Point(rng.UniformRange(0, 99)),
                         Interval::Point(rng.UniformRange(0, 99))};
      t.AddBox(box);
    }
    state.ResumeTiming();
    t.Merge();
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BoxTableMerge)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
}  // namespace dslog

// Custom main instead of BENCHMARK_MAIN(): stamps the dslog build type and
// SIMD ISA into the benchmark context so every emitted JSON/console report
// says what was actually measured (the library_build_type field describes
// the libbenchmark package, not this code).
int main(int argc, char** argv) {
  benchmark::AddCustomContext("dslog_build_type", dslog::bench::kBuildType);
  benchmark::AddCustomContext("dslog_simd_isa", dslog::simd::kIsaName);
  if (dslog::bench::kDebugBuild) {
    std::fprintf(stderr,
                 "WARNING: dslog compiled without NDEBUG; these numbers are "
                 "not comparable to release measurements\n");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
