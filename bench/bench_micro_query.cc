// Micro-benchmarks (google-benchmark) for the query kernels: ProvRC
// compression itself, backward/forward θ-joins, and box-table merging.

#include <benchmark/benchmark.h>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"
#include "provrc/provrc.h"
#include "query/box.h"
#include "query/theta_join.h"

namespace dslog {
namespace {

LineageRelation MakeSortLineage(int64_t n) {
  Rng rng(4);
  NDArray x = NDArray::Random({n}, &rng);
  const ArrayOp* op = OpRegistry::Global().Find("sort");
  NDArray out = op->Apply({&x}, OpArgs()).ValueOrDie();
  return std::move(op->Capture({&x}, out, OpArgs()).ValueOrDie()[0]);
}

LineageRelation MakeAggregateLineage(int64_t rows) {
  Rng rng(5);
  NDArray x = NDArray::Random({rows, 100}, &rng);
  OpArgs args;
  args.SetInt("axis", 1);
  const ArrayOp* op = OpRegistry::Global().Find("sum");
  NDArray out = op->Apply({&x}, args).ValueOrDie();
  return std::move(op->Capture({&x}, out, args).ValueOrDie()[0]);
}

void BM_ProvRcCompressStructured(benchmark::State& state) {
  LineageRelation rel = MakeAggregateLineage(state.range(0));
  for (auto _ : state) {
    CompressedTable t = ProvRcCompress(rel);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * rel.num_rows());
}
BENCHMARK(BM_ProvRcCompressStructured)->Arg(100)->Arg(1000);

void BM_ProvRcCompressUnstructured(benchmark::State& state) {
  LineageRelation rel = MakeSortLineage(state.range(0));
  for (auto _ : state) {
    CompressedTable t = ProvRcCompress(rel);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * rel.num_rows());
}
BENCHMARK(BM_ProvRcCompressUnstructured)->Arg(1 << 12)->Arg(1 << 15);

void BM_BackwardThetaJoin(benchmark::State& state) {
  // Unstructured table (many rows) joined with a moderate query.
  CompressedTable table = ProvRcCompress(MakeSortLineage(state.range(0)));
  Rng rng(6);
  std::vector<int64_t> cells;
  for (int i = 0; i < 64; ++i) cells.push_back(rng.UniformRange(0, state.range(0) - 1));
  BoxTable q = BoxTable::FromCells(1, cells);
  for (auto _ : state) {
    BoxTable r = BackwardThetaJoin(q, table);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_BackwardThetaJoin)->Arg(1 << 12)->Arg(1 << 15);

// The wide-table case: many rows, multi-attribute (l=2, m=3), built
// directly so row count and interval spread are controlled. Backward joins
// over it are the headline kernel for the columnar layout + interval index.
CompressedTable MakeWideTable(int64_t rows) {
  const int64_t domain = rows * 4;
  CompressedTable table({domain, 64}, {domain, 64, 16});
  Rng rng(9);
  CompressedRow row;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * 4;
    row.out = {{base, base + 3}, {rng.UniformRange(0, 60), 0}};
    row.out[1].hi = row.out[1].lo + 3;
    row.in = {InputCell::Relative(0, {rng.UniformRange(-2, 2),
                                      rng.UniformRange(3, 5)}),
              InputCell::Absolute({rng.UniformRange(0, 32), 0}),
              InputCell::Absolute({rng.UniformRange(0, 12), 0})};
    row.in[1].iv.hi = row.in[1].iv.lo + rng.UniformRange(0, 8);
    row.in[2].iv.hi = row.in[2].iv.lo + rng.UniformRange(0, 3);
    table.AddRow(row);
  }
  return table;
}

void BM_BackwardThetaJoinWide(benchmark::State& state) {
  CompressedTable table = MakeWideTable(state.range(0));
  const int64_t domain = state.range(0) * 4;
  Rng rng(10);
  BoxTable q(2);
  for (int i = 0; i < 64; ++i) {
    Interval box[2] = {{0, 0}, {0, 63}};
    box[0].lo = rng.UniformRange(0, domain - 16);
    box[0].hi = box[0].lo + 15;
    q.AddBox(box);
  }
  for (auto _ : state) {
    BoxTable r = BackwardThetaJoin(q, table);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_BackwardThetaJoinWide)->Arg(1 << 12)->Arg(1 << 15);

void BM_ForwardThetaJoin(benchmark::State& state) {
  CompressedTable table = ProvRcCompress(MakeSortLineage(state.range(0)));
  Rng rng(7);
  std::vector<int64_t> cells;
  for (int i = 0; i < 64; ++i) cells.push_back(rng.UniformRange(0, state.range(0) - 1));
  BoxTable q = BoxTable::FromCells(1, cells);
  for (auto _ : state) {
    BoxTable r = ForwardThetaJoin(q, table);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_ForwardThetaJoin)->Arg(1 << 12)->Arg(1 << 15);

void BM_BoxTableMerge(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    state.PauseTiming();
    BoxTable t(2);
    for (int64_t i = 0; i < state.range(0); ++i) {
      Interval box[2] = {Interval::Point(rng.UniformRange(0, 99)),
                         Interval::Point(rng.UniformRange(0, 99))};
      t.AddBox(box);
    }
    state.ResumeTiming();
    t.Merge();
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BoxTableMerge)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
}  // namespace dslog

BENCHMARK_MAIN();
