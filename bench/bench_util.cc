#include "bench_util.h"

#include <cmath>
#include <cstring>
#include <thread>

#include "common/io.h"
#include "common/metrics.h"
#include "query/box.h"
#include "query/query_engine.h"

namespace dslog {
namespace bench {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Integral values render without an exponent/fraction for readability.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

}  // namespace

JsonReporter::Record& JsonReporter::Record::Str(const std::string& key,
                                                const std::string& value) {
  fields_.push_back({key, JsonEscape(value)});
  return *this;
}

JsonReporter::Record& JsonReporter::Record::Num(const std::string& key,
                                                double value) {
  fields_.push_back({key, JsonNumber(value)});
  return *this;
}

JsonReporter::JsonReporter(std::string bench_name, int argc, char** argv,
                           std::string default_path)
    : bench_name_(std::move(bench_name)), path_(std::move(default_path)) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr,
                   "JsonReporter: --json requires a path argument; no JSON "
                   "will be written\n");
      break;
    }
    path_ = argv[i + 1];
    break;
  }
}

JsonReporter::~JsonReporter() { Write(); }

JsonReporter::Record& JsonReporter::Add() {
  records_.emplace_back();
  return records_.back();
}

namespace {

void SetRendered(std::vector<std::pair<std::string, std::string>>* fields,
                 const std::string& key, std::string rendered) {
  for (auto& [k, v] : *fields) {
    if (k == key) {
      v = std::move(rendered);
      return;
    }
  }
  fields->push_back({key, std::move(rendered)});
}

}  // namespace

void JsonReporter::TopStr(const std::string& key, const std::string& value) {
  SetRendered(&top_fields_, key, JsonEscape(value));
}

void JsonReporter::TopNum(const std::string& key, double value) {
  SetRendered(&top_fields_, key, JsonNumber(value));
}

void JsonReporter::TopBool(const std::string& key, bool value) {
  SetRendered(&top_fields_, key, value ? "true" : "false");
}

void JsonReporter::Write() {
  if (written_ || path_.empty()) return;
  written_ = true;
  // Every document carries the dslog build type; debug documents are
  // additionally tagged so downstream tooling can reject them. TopStr can
  // not override these — a debug artifact must never claim to be release.
  TopStr("dslog_build_type", kBuildType);
  if (kDebugBuild) {
    TopBool("debug_build", true);
    std::fprintf(stderr,
                 "JsonReporter: WARNING: dslog compiled without NDEBUG; "
                 "writing debug-tagged (non-comparable) numbers to %s\n",
                 path_.c_str());
  }
  std::string doc = "{\"bench\": " + JsonEscape(bench_name_) +
                    ", \"num_cpus\": " +
                    JsonNumber(static_cast<double>(
                        std::thread::hardware_concurrency()));
  for (const auto& [key, value] : top_fields_)
    doc += ", " + JsonEscape(key) + ": " + value;
  // Every document carries a snapshot of the process-wide metrics registry
  // (counters/gauges/histograms accumulated while the bench ran), so a
  // perf number is always archived next to the cache/pool/join activity
  // that produced it. CI rejects JsonReporter documents without this block.
  doc += ", \"metrics\": " + metrics::Registry::Global().Snapshot().ToJson();
  doc += ", \"records\": [";
  bool first_record = true;
  for (const Record& r : records_) {
    if (!first_record) doc += ',';
    first_record = false;
    doc += "\n  {";
    bool first_field = true;
    for (const auto& [key, value] : r.fields_) {
      if (!first_field) doc += ", ";
      first_field = false;
      doc += JsonEscape(key) + ": " + value;
    }
    doc += '}';
  }
  doc += "\n]}";

  std::string out = doc + "\n";
  if (!nested_key_.empty()) {
    // Splice this document as a top-level field of the host document
    // already at path_, replacing any previous section with the same key
    // (always the last field, so a truncate-and-reappend is exact).
    auto host = ReadFileToString(path_);
    bool spliced = false;
    if (host.ok()) {
      std::string text = std::move(host).ValueOrDie();
      while (!text.empty() &&
             (text.back() == '\n' || text.back() == '\r' ||
              text.back() == ' '))
        text.pop_back();
      const std::string marker = ", " + JsonEscape(nested_key_) + ": {";
      size_t cut = text.rfind(marker);
      if (cut == std::string::npos && !text.empty() && text.back() == '}')
        cut = text.size() - 1;  // strip the host's closing brace
      if (cut != std::string::npos) {
        text.resize(cut);
        text += ", " + JsonEscape(nested_key_) + ": " + doc + "}\n";
        out = std::move(text);
        spliced = true;
      }
    }
    if (!spliced)
      std::fprintf(stderr,
                   "JsonReporter: %s missing or not a JSON object; writing "
                   "the %s document standalone\n",
                   path_.c_str(), nested_key_.c_str());
  }
  Status st = WriteFile(path_, out);
  if (!st.ok()) {
    std::fprintf(stderr, "JsonReporter: cannot write %s: %s\n", path_.c_str(),
                 st.ToString().c_str());
  } else {
    std::fprintf(stderr, "[json] wrote %zu record(s) to %s\n", records_.size(),
                 path_.c_str());
  }
}

double QueryBaselineFormat(const StorageFormat& format,
                           const std::vector<std::string>& buffers,
                           const std::vector<int64_t>& query_cells,
                           double timeout_seconds) {
  WallTimer timer;
  std::vector<int64_t> frontier = query_cells;
  for (const std::string& buffer : buffers) {
    auto rel = format.Decode(buffer);
    DSLOG_CHECK(rel.ok()) << rel.status().ToString();
    frontier = RelationJoinStep(rel.value(), /*forward=*/true, frontier);
    if (timer.ElapsedSeconds() > timeout_seconds) return -1.0;
    if (frontier.empty()) break;
  }
  return timer.ElapsedSeconds();
}

double QueryArrayVectorized(const std::vector<std::string>& buffers,
                            const std::vector<int64_t>& query_cells,
                            int query_ndim, double timeout_seconds) {
  auto format = MakeArrayFormat();
  WallTimer timer;
  constexpr int64_t kBatch = 1000;
  std::vector<int64_t> frontier = query_cells;
  int arity = query_ndim;
  for (const std::string& buffer : buffers) {
    auto relr = format->Decode(buffer);
    DSLOG_CHECK(relr.ok()) << relr.status().ToString();
    const LineageRelation& rel = relr.value();
    const int l = rel.out_ndim();
    const int m = rel.in_ndim();
    DSLOG_CHECK(arity == m) << "arity drift";
    // Vectorized equality: for each batch of query tuples, compare every
    // relation row's input side against the batch (the numpy == strategy).
    LineageRelation matched(l, 0);
    std::vector<int64_t> next;
    int64_t num_q = static_cast<int64_t>(frontier.size()) / m;
    for (int64_t q0 = 0; q0 < num_q; q0 += kBatch) {
      int64_t q1 = std::min(num_q, q0 + kBatch);
      for (int64_t r = 0; r < rel.num_rows(); ++r) {
        auto row = rel.Row(r);
        for (int64_t q = q0; q < q1; ++q) {
          bool eq = true;
          for (int k = 0; k < m && eq; ++k)
            eq = row[static_cast<size_t>(l + k)] ==
                 frontier[static_cast<size_t>(q * m + k)];
          if (eq) {
            next.insert(next.end(), row.begin(), row.begin() + l);
            break;
          }
        }
      }
      if (timer.ElapsedSeconds() > timeout_seconds) return -1.0;
    }
    // Dedup the emitted side.
    LineageRelation dedup(l, 0);
    dedup.mutable_flat() = std::move(next);
    dedup.SortAndDedup();
    frontier = dedup.flat();
    arity = l;
    if (frontier.empty()) break;
  }
  return timer.ElapsedSeconds();
}

double QueryDSLog(const std::vector<std::string>& buffers,
                  const std::vector<int64_t>& query_cells, int query_ndim,
                  bool merge) {
  WallTimer timer;
  std::vector<CompressedTable> tables;
  tables.reserve(buffers.size());
  for (const std::string& buffer : buffers) {
    auto t = DeserializeCompressedTableGzip(buffer);
    DSLOG_CHECK(t.ok()) << t.status().ToString();
    tables.push_back(std::move(t).ValueOrDie());
  }
  std::vector<QueryHop> hops;
  for (const auto& t : tables) hops.push_back({&t, /*forward=*/true});
  BoxTable q = BoxTable::FromCells(query_ndim, query_cells);
  QueryOptions options;
  options.merge_between_hops = merge;
  BoxTable result = InSituQuery(hops, q, options);
  (void)result;
  return timer.ElapsedSeconds();
}

std::vector<int64_t> SampleQueryCells(const Workflow& wf, int64_t count,
                                      Rng* rng) {
  const std::vector<int64_t>& shape = wf.shapes[0];
  int64_t total = 1;
  for (int64_t d : shape) total *= d;
  count = std::min(count, total);
  NDArray probe(shape);  // index helper
  std::vector<int64_t> cells;
  std::vector<int64_t> idx(shape.size());
  for (int64_t flat : rng->SampleWithoutReplacement(total, count)) {
    probe.UnravelIndex(flat, idx);
    cells.insert(cells.end(), idx.begin(), idx.end());
  }
  return cells;
}

}  // namespace bench
}  // namespace dslog
