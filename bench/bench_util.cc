#include "bench_util.h"

#include "query/box.h"
#include "query/query_engine.h"

namespace dslog {
namespace bench {

double QueryBaselineFormat(const StorageFormat& format,
                           const std::vector<std::string>& buffers,
                           const std::vector<int64_t>& query_cells,
                           double timeout_seconds) {
  WallTimer timer;
  std::vector<int64_t> frontier = query_cells;
  for (const std::string& buffer : buffers) {
    auto rel = format.Decode(buffer);
    DSLOG_CHECK(rel.ok()) << rel.status().ToString();
    frontier = RelationJoinStep(rel.value(), /*forward=*/true, frontier);
    if (timer.ElapsedSeconds() > timeout_seconds) return -1.0;
    if (frontier.empty()) break;
  }
  return timer.ElapsedSeconds();
}

double QueryArrayVectorized(const std::vector<std::string>& buffers,
                            const std::vector<int64_t>& query_cells,
                            int query_ndim, double timeout_seconds) {
  auto format = MakeArrayFormat();
  WallTimer timer;
  constexpr int64_t kBatch = 1000;
  std::vector<int64_t> frontier = query_cells;
  int arity = query_ndim;
  for (const std::string& buffer : buffers) {
    auto relr = format->Decode(buffer);
    DSLOG_CHECK(relr.ok()) << relr.status().ToString();
    const LineageRelation& rel = relr.value();
    const int l = rel.out_ndim();
    const int m = rel.in_ndim();
    DSLOG_CHECK(arity == m) << "arity drift";
    // Vectorized equality: for each batch of query tuples, compare every
    // relation row's input side against the batch (the numpy == strategy).
    LineageRelation matched(l, 0);
    std::vector<int64_t> next;
    int64_t num_q = static_cast<int64_t>(frontier.size()) / m;
    for (int64_t q0 = 0; q0 < num_q; q0 += kBatch) {
      int64_t q1 = std::min(num_q, q0 + kBatch);
      for (int64_t r = 0; r < rel.num_rows(); ++r) {
        auto row = rel.Row(r);
        for (int64_t q = q0; q < q1; ++q) {
          bool eq = true;
          for (int k = 0; k < m && eq; ++k)
            eq = row[static_cast<size_t>(l + k)] ==
                 frontier[static_cast<size_t>(q * m + k)];
          if (eq) {
            next.insert(next.end(), row.begin(), row.begin() + l);
            break;
          }
        }
      }
      if (timer.ElapsedSeconds() > timeout_seconds) return -1.0;
    }
    // Dedup the emitted side.
    LineageRelation dedup(l, 0);
    dedup.mutable_flat() = std::move(next);
    dedup.SortAndDedup();
    frontier = dedup.flat();
    arity = l;
    if (frontier.empty()) break;
  }
  return timer.ElapsedSeconds();
}

double QueryDSLog(const std::vector<std::string>& buffers,
                  const std::vector<int64_t>& query_cells, int query_ndim,
                  bool merge) {
  WallTimer timer;
  std::vector<CompressedTable> tables;
  tables.reserve(buffers.size());
  for (const std::string& buffer : buffers) {
    auto t = DeserializeCompressedTableGzip(buffer);
    DSLOG_CHECK(t.ok()) << t.status().ToString();
    tables.push_back(std::move(t).ValueOrDie());
  }
  std::vector<QueryHop> hops;
  for (const auto& t : tables) hops.push_back({&t, /*forward=*/true});
  BoxTable q = BoxTable::FromCells(query_ndim, query_cells);
  QueryOptions options;
  options.merge_between_hops = merge;
  BoxTable result = InSituQuery(hops, q, options);
  (void)result;
  return timer.ElapsedSeconds();
}

std::vector<int64_t> SampleQueryCells(const Workflow& wf, int64_t count,
                                      Rng* rng) {
  const std::vector<int64_t>& shape = wf.shapes[0];
  int64_t total = 1;
  for (int64_t d : shape) total *= d;
  count = std::min(count, total);
  NDArray probe(shape);  // index helper
  std::vector<int64_t> cells;
  std::vector<int64_t> idx(shape.size());
  for (int64_t flat : rng->SampleWithoutReplacement(total, count)) {
    probe.UnravelIndex(flat, idx);
    cells.insert(cells.end(), idx.begin(), idx.end());
  }
  return cells;
}

}  // namespace bench
}  // namespace dslog
