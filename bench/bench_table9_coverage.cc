// Reproduces ICDE'24 Table IX: coverage of ProvRC compression and of
// automatic reuse prediction (dim_sig / gen_sig, m = 1) over the 136
// operations of the numpy-equivalent catalogue, 20 runs each with varying
// input shapes and values. Also reproduces the paper's single
// misprediction: `cross` generalizes incorrectly across its last dimension.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "storage/signatures.h"

using namespace dslog;
using namespace dslog::bench;

namespace {

constexpr int kRuns = 20;

// Inputs for an op at a given shape variant (0, 1, 2).
struct OpInputs {
  std::vector<NDArray> arrays;
  std::vector<const NDArray*> ptrs() const {
    std::vector<const NDArray*> p;
    for (const auto& a : arrays) p.push_back(&a);
    return p;
  }
};

bool MakeOpInputs(const ArrayOp& op, int variant, Rng* rng, OpInputs* inputs) {
  const std::string& name = op.name();
  inputs->arrays.clear();
  int64_t n1 = 96 + 48 * variant;   // 1-D sizes per variant
  int64_t r2 = 8 + 2 * variant;     // 2-D rows per variant
  if (name == "matmul" || name == "kron") {
    inputs->arrays.push_back(NDArray::Random({r2, 6}, rng));
    inputs->arrays.push_back(NDArray::Random({6, 5}, rng));
    return true;
  }
  if (name == "cross") {
    // Variants 0/1 use dim 3; variant 2 uses dim 2 — the paper's trap.
    int64_t d = variant == 2 ? 2 : 3;
    inputs->arrays.push_back(NDArray::Random({r2, d}, rng));
    inputs->arrays.push_back(NDArray::Random({r2, d}, rng));
    return true;
  }
  if (name == "convolve" || name == "correlate") {
    inputs->arrays.push_back(NDArray::Random({n1}, rng));
    inputs->arrays.push_back(NDArray::Random({5}, rng));
    return true;
  }
  if (name == "searchsorted") {
    inputs->arrays.push_back(NDArray::Arange(n1));
    inputs->arrays.push_back(NDArray::Random({24}, rng));
    return true;
  }
  if (op.num_inputs() == 3) {
    inputs->arrays.push_back(NDArray::RandomInts({n1}, 0, 1, rng));
    inputs->arrays.push_back(NDArray::Random({n1}, rng));
    inputs->arrays.push_back(NDArray::Random({n1}, rng));
    return true;
  }
  if (op.num_inputs() == 2) {
    inputs->arrays.push_back(NDArray::Random({n1}, rng));
    inputs->arrays.push_back(NDArray::Random({n1}, rng));
    return true;
  }
  // Unary: prefer 2-D when supported, else 1-D.
  std::vector<int64_t> shape2 = {r2, 12};
  if (op.SupportsUnaryShape(shape2)) {
    inputs->arrays.push_back(NDArray::Random(shape2, rng));
    return true;
  }
  std::vector<int64_t> shape1 = {n1};
  if (op.SupportsUnaryShape(shape1)) {
    inputs->arrays.push_back(NDArray::Random(shape1, rng));
    return true;
  }
  return false;
}

struct OpOutcome {
  bool evaluated = false;
  bool compressed = false;
  bool dim_covered = false;
  bool gen_covered = false;
  int64_t errors = 0;
};

OpOutcome EvaluateOp(const ArrayOp& op, uint64_t seed) {
  OpOutcome outcome;
  Rng rng(seed);
  ReusePredictor predictor;

  // Fixed args sampled once (signatures include args).
  OpInputs probe;
  if (!MakeOpInputs(op, 0, &rng, &probe)) return outcome;
  OpArgs args = op.SampleArgs(probe.arrays[0].shape(), &rng);

  bool all_compressed = true;
  bool any_run = false;
  for (int run = 0; run < kRuns; ++run) {
    int variant = (run / 2) % 3;  // [0,0,1,1,2,2,...]: repeats then new shape
    OpInputs inputs;
    if (!MakeOpInputs(op, variant, &rng, &inputs)) continue;
    auto out = op.Apply(inputs.ptrs(), args);
    if (!out.ok()) continue;
    auto rels = op.Capture(inputs.ptrs(), out.value(), args);
    if (!rels.ok()) continue;
    any_run = true;

    // Compression criterion: serialized ProvRC < 50% of the raw CSV file.
    int64_t provrc_bytes = 0, csv_bytes = 0;
    std::vector<CompressedTable> tables;
    for (const auto& rel : rels.value()) {
      CompressedTable t = ProvRcCompress(rel);
      provrc_bytes += static_cast<int64_t>(SerializeCompressedTable(t).size());
      csv_bytes += static_cast<int64_t>(RelationToCsv(rel).size());
      tables.push_back(std::move(t));
    }
    if (csv_bytes > 0 &&
        static_cast<double>(provrc_bytes) >= 0.5 * static_cast<double>(csv_bytes))
      all_compressed = false;

    std::vector<std::vector<int64_t>> in_shapes;
    uint64_t content_hash = 0;
    for (const auto& a : inputs.arrays) {
      in_shapes.push_back(a.shape());
      content_hash = HashCombine(content_hash, a.ContentHash());
    }
    predictor.ProcessRegistration(op.name(), args, in_shapes,
                                  out.value().shape(), content_hash, tables);
  }
  outcome.evaluated = any_run;
  outcome.compressed = any_run && all_compressed;
  outcome.dim_covered =
      predictor.stats().dim_promotions > 0 && predictor.stats().mispredictions == 0;
  outcome.gen_covered =
      predictor.stats().gen_promotions > 0 && predictor.stats().mispredictions == 0;
  outcome.errors = predictor.stats().mispredictions;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("table9_coverage", argc, argv);
  std::printf("=== Table IX: numpy API coverage of compression and reuse ===\n");
  std::printf("(%d runs per op; shapes vary across runs)\n\n", kRuns);

  const OpRegistry& registry = OpRegistry::Global();
  struct Tally {
    int total = 0, compressed = 0, dim = 0, gen = 0;
    int64_t errors = 0;
  };
  Tally element, complex_ops;
  std::vector<std::string> error_ops;

  for (const std::string& name : registry.AllNames()) {
    const ArrayOp* op = registry.Find(name);
    OpOutcome o = EvaluateOp(*op, Hash64(name));
    Tally& t = op->category() == OpCategory::kElementwise ? element : complex_ops;
    ++t.total;
    if (o.compressed) ++t.compressed;
    if (o.dim_covered) ++t.dim;
    if (o.gen_covered) ++t.gen;
    t.errors += o.errors;
    if (o.errors > 0) error_ops.push_back(name);
  }

  auto row = [&json](const char* label, const Tally& t) {
    std::printf("%-10s %5d %10d %6.1f%% %8d %6.1f%% %8d %6.1f%% %8lld\n",
                label, t.total, t.compressed,
                100.0 * t.compressed / t.total, t.dim, 100.0 * t.dim / t.total,
                t.gen, 100.0 * t.gen / t.total,
                static_cast<long long>(t.errors));
    json.Add()
        .Str("category", label)
        .Num("ops", t.total)
        .Num("compressed", t.compressed)
        .Num("dim_sig", t.dim)
        .Num("gen_sig", t.gen)
        .Num("errors", static_cast<double>(t.errors));
  };
  std::printf("%-10s %5s %10s %7s %8s %7s %8s %7s %8s\n", "Op.", "Tot.",
              "ProvRC", "%", "dim_sig", "%", "gen_sig", "%", "Error");
  PrintRule(84);
  row("element", element);
  row("complex", complex_ops);
  Tally total{element.total + complex_ops.total,
              element.compressed + complex_ops.compressed,
              element.dim + complex_ops.dim, element.gen + complex_ops.gen,
              element.errors + complex_ops.errors};
  row("total", total);
  PrintRule(84);
  std::printf("mispredicting ops:");
  for (const auto& n : error_ops) std::printf(" %s", n.c_str());
  std::printf("\n\nExpected shape (paper): element 75/75/75 across the board;\n"
              "complex ~90%% compressed, dim_sig slightly lower, gen_sig ~40%%;\n"
              "exactly `cross` mispredicts under gen_sig with m = 1.\n");
  return 0;
}
