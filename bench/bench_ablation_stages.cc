// Ablation A2: contribution of each ProvRC stage. For every Table VII
// operation, compares (1) multi-attribute range encoding alone (step 1),
// (2) full ProvRC (+ relative transform, step 2), and (3) ProvRC-GZip,
// in both compressed row counts and serialized bytes. Quantifies the
// design choice docs/ARCHITECTURE.md calls out: the relative transform is what
// collapses one-to-one and matmul-style patterns.

#include <cstdio>

#include "bench_util.h"

using namespace dslog;
using namespace dslog::bench;

int main(int argc, char** argv) {
  JsonReporter json("ablation_stages", argc, argv);
  std::printf("=== Ablation: ProvRC stages (step 1 only vs full vs +gzip) ===\n\n");
  std::printf("%-14s %10s | %12s %12s | %12s %12s %12s\n", "Name", "Rows",
              "rows(step1)", "rows(full)", "KB(step1)", "KB(full)", "KB(gzip)");
  PrintRule(104);

  auto workloads = BuildTable7Workloads(/*seed=*/20240502);
  ProvRcOptions step1_only;
  step1_only.enable_relative_transform = false;

  for (const auto& w : workloads) {
    int64_t rows1 = 0, rows2 = 0;
    for (const auto& rel : w.relations) {
      rows1 += ProvRcCompress(rel, step1_only).num_rows();
      rows2 += ProvRcCompress(rel).num_rows();
    }
    int64_t b1 = ProvRcBytes(w.relations, false, step1_only);
    int64_t b2 = ProvRcBytes(w.relations, false);
    int64_t b3 = ProvRcBytes(w.relations, true);
    std::printf("%-14s %10lld | %12lld %12lld | %12.3f %12.3f %12.3f\n",
                w.name.c_str(), static_cast<long long>(w.TotalRows()),
                static_cast<long long>(rows1), static_cast<long long>(rows2),
                b1 / 1024.0, b2 / 1024.0, b3 / 1024.0);
    json.Add()
        .Str("workload", w.name)
        .Num("raw_rows", static_cast<double>(w.TotalRows()))
        .Num("rows_step1", static_cast<double>(rows1))
        .Num("rows_full", static_cast<double>(rows2))
        .Num("bytes_step1", static_cast<double>(b1))
        .Num("bytes_full", static_cast<double>(b2))
        .Num("bytes_gzip", static_cast<double>(b3));
  }
  PrintRule(104);
  std::printf(
      "\nReading: step 1 alone suffices for pure rectangular patterns\n"
      "(Aggregate); the relative transform is required for one-to-one and\n"
      "mixed patterns (Negative, Repetition, Matrix*); gzip matters only for\n"
      "unstructured lineage (Sort, Group By, Inner Join).\n");
  return 0;
}
