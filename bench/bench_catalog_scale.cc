// bench_catalog_scale: catalog-open, first-probe, and negative-probe
// latency at 10^5-10^6 stored edges, v3 (map-indexed footer) against v4
// (perfect-hash sealed index). The store is synthetic — a dense bipartite
// edge set over ~2*sqrt(edges) arrays, every segment the same tiny
// pre-serialized one-row columnar table — so the measurement isolates the
// catalog index itself: footer parse + index bind at open, index probe +
// one small segment resolve on the first query, pure index rejection on
// the negative probes.
//
//   bench_catalog_scale [--edges N] [--reps R] [--json PATH]
//
// With --json the records splice into PATH as the "catalog_scale" section
// of the host document (BENCH_storage.json in CI), preserving the host
// bench's records.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/io.h"
#include "common/strings.h"
#include "common/timer.h"
#include "lineage/lineage_relation.h"
#include "provrc/provrc.h"
#include "provrc/serialize.h"
#include "query/box.h"
#include "storage/dslog.h"
#include "storage/logstore.h"

namespace dslog {
namespace bench {
namespace {

std::string InArr(int64_t i) {
  return Format("in%05lld", static_cast<long long>(i));
}
std::string OutArr(int64_t j) {
  return Format("out%05lld", static_cast<long long>(j));
}

/// One tiny identity segment, shared (byte-identical) by every edge.
struct SegmentPayload {
  std::string bytes;
  int64_t row_count = 0;
  IntervalColumnStats out0_stats;
};

SegmentPayload MakePayload() {
  LineageRelation rel(1, 1);
  rel.set_shapes({4}, {4});
  rel.mutable_flat() = {0, 0};  // out cell 0 <- in cell 0
  CompressedTable table = ProvRcCompress(rel);
  SegmentPayload payload;
  payload.bytes = SerializeCompressedTableColumnar(table);
  payload.row_count = table.num_rows();
  payload.out0_stats = ComputeOut0Stats(table);
  return payload;
}

/// Writes a store with exactly `edges` bipartite edges under the given
/// footer version (v3: legacy map index; v4: perfect-hash index).
void BuildStore(const std::string& path, int64_t edges, int64_t side,
                uint32_t footer_version, const SegmentPayload& payload) {
  LogStoreWriterOptions options;
  options.footer_version = footer_version;
  options.build_phf = footer_version >= 4;
  auto writer = LogStoreWriter::Create(path, options);
  DSLOG_CHECK(writer.ok()) << writer.status().ToString();
  for (int64_t i = 0; i < side; ++i) {
    writer.value().PutArray(InArr(i), {4});
    writer.value().PutArray(OutArr(i), {4});
  }
  int64_t written = 0;
  for (int64_t i = 0; i < side && written < edges; ++i) {
    for (int64_t j = 0; j < side && written < edges; ++j) {
      Status st = writer.value().AppendRawSegment(
          InArr(i), OutArr(j), "op", payload.bytes, SegmentLayout::kColumnar,
          payload.row_count, payload.out0_stats);
      DSLOG_CHECK(st.ok()) << st.ToString();
      ++written;
    }
  }
  Status st = writer.value().Finish();
  DSLOG_CHECK(st.ok()) << st.ToString();
}

struct Timings {
  double open_us = 0;
  double first_probe_us = 0;
  double negative_probe_us = 0;
};

/// One rep: a timed open + timed first (positive) probe, then a second,
/// untimed open whose only traffic is negative probes — asserting that
/// absent-edge lookups resolve from the index alone, with zero segment
/// bytes decoded and (on v4) without ever building the fallback name map.
Timings MeasureOnce(const std::string& path, int64_t side) {
  Timings t;
  {
    WallTimer timer;
    auto opened = DSLog::OpenInSitu(path);
    DSLOG_CHECK(opened.ok()) << opened.status().ToString();
    t.open_us = timer.ElapsedSeconds() * 1e6;
    const BoxTable query = BoxTable::FromCells(1, {0});
    WallTimer probe;
    auto result =
        opened.value().ProvQuery({InArr(side / 2), OutArr(side / 2)}, query);
    t.first_probe_us = probe.ElapsedSeconds() * 1e6;
    DSLOG_CHECK(result.ok()) << result.status().ToString();
  }
  {
    auto opened = DSLog::OpenInSitu(path);
    DSLOG_CHECK(opened.ok()) << opened.status().ToString();
    const BoxTable query = BoxTable::FromCells(1, {0});
    constexpr int kNegativeProbes = 256;
    WallTimer probe;
    for (int i = 0; i < kNegativeProbes; ++i) {
      auto result = opened.value().ProvQuery(
          {InArr(i % 7), Format("absent%04d", i)}, query);
      DSLOG_CHECK(!result.ok());
    }
    t.negative_probe_us =
        probe.ElapsedSeconds() * 1e6 / kNegativeProbes;
    std::shared_ptr<const LogStore> store = opened.value().log_store();
    const LogStoreStats stats = store->stats();
    DSLOG_CHECK(stats.decode_count == 0)
        << "negative probes touched " << stats.decode_count << " segment(s)";
    if (store->edge_index_kind() == LogStore::EdgeIndexKind::kPhf)
      DSLOG_CHECK(!store->name_index_built())
          << "v4 store built the fallback name map";
  }
  return t;
}

}  // namespace

int Main(int argc, char** argv) {
  int64_t edges = 100000;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--edges") == 0 && i + 1 < argc)
      edges = std::atoll(argv[++i]);
    else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = std::atoi(argv[++i]);
  }
  DSLOG_CHECK(edges > 0 && reps > 0);
  const int64_t side =
      static_cast<int64_t>(std::ceil(std::sqrt(static_cast<double>(edges))));

  JsonReporter json("catalog_scale", argc, argv);
  json.set_nested_key("catalog_scale");
  json.TopNum("edges", static_cast<double>(edges));

  const SegmentPayload payload = MakePayload();
  std::printf("catalog scale: %lld edges (%lld x %lld bipartite), %d reps\n",
              static_cast<long long>(edges), static_cast<long long>(side),
              static_cast<long long>(side), reps);
  PrintRule(96);
  std::printf("%-4s %14s %16s %18s %14s %14s\n", "ver", "open_us",
              "first_probe_us", "negative_probe_us", "file_bytes",
              "bits/key");
  PrintRule(96);

  double open_first[2] = {0, 0};  // v3, v4 means of open + first probe
  for (uint32_t version : {3u, 4u}) {
    const std::string path =
        ScratchDir() + Format("/bench_catalog_scale_v%u.dsl", version);
    BuildStore(path, edges, side, version, payload);

    Timings mean;
    for (int r = 0; r < reps; ++r) {
      Timings t = MeasureOnce(path, side);
      mean.open_us += t.open_us / reps;
      mean.first_probe_us += t.first_probe_us / reps;
      mean.negative_probe_us += t.negative_probe_us / reps;
    }
    open_first[version - 3] = mean.open_us + mean.first_probe_us;

    auto store = LogStore::Open(path);
    DSLOG_CHECK(store.ok()) << store.status().ToString();
    const int64_t file_bytes = store.value()->file_size();
    // Bytes the catalog (everything but the segment payloads, the fixed
    // header, and the 20-byte trailer) costs per edge.
    const int64_t payload_bytes =
        static_cast<int64_t>(store.value()->segment_info(0).offset) +
        edges * static_cast<int64_t>(payload.bytes.size()) + 20;
    const double footer_bytes_per_edge =
        static_cast<double>(file_bytes - payload_bytes) /
        static_cast<double>(edges);
    const bool phf =
        store.value()->edge_index_kind() == LogStore::EdgeIndexKind::kPhf;
    const double bits_per_key = store.value()->index_bits_per_key();

    std::printf("v%-3u %14.1f %16.1f %18.3f %14lld %14.2f\n", version,
                mean.open_us, mean.first_probe_us, mean.negative_probe_us,
                static_cast<long long>(file_bytes), bits_per_key);

    json.Add()
        .Str("version", Format("v%u", version))
        .Str("index_kind", phf ? "phf" : "lazy_map")
        .Num("edges", static_cast<double>(edges))
        .Num("reps", reps)
        .Num("catalog_open_us", mean.open_us)
        .Num("first_probe_us", mean.first_probe_us)
        .Num("open_plus_first_probe_us", mean.open_us + mean.first_probe_us)
        .Num("negative_probe_us", mean.negative_probe_us)
        .Num("file_bytes", static_cast<double>(file_bytes))
        .Num("footer_bytes_per_edge", footer_bytes_per_edge)
        .Num("index_bits_per_key", bits_per_key)
        .Num("index_fingerprint_bits",
             static_cast<double>(store.value()->index_fingerprint_bits()));
    (void)RemoveFileIfExists(path);
  }

  const double speedup =
      open_first[1] > 0 ? open_first[0] / open_first[1] : 0.0;
  json.TopNum("open_first_probe_speedup", speedup);
  PrintRule(96);
  std::printf("v4 open+first-probe speedup over v3: %.1fx\n", speedup);
  return 0;
}

}  // namespace bench
}  // namespace dslog

int main(int argc, char** argv) { return dslog::bench::Main(argc, argv); }
