// Reproduces ICDE'24 Fig 9 (A, B): average forward-query latency over
// randomly generated numpy workflows with five and ten chained operations,
// including the Raw baseline and the DSLog-NoMerge ablation. Minimum and
// maximum latencies across workflows are reported alongside the mean
// (the paper's interval bars).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace dslog;
using namespace dslog::bench;

namespace {

constexpr double kTimeoutSeconds = 30.0;
constexpr int64_t kInitialCells = 20000;  // paper: 100k (scaled down)
constexpr int kWorkflows = 8;             // paper: 20
constexpr int64_t kQueryCells = 200;      // fixed-size random query range

struct Series {
  std::vector<double> values;
  void Add(double v) {
    if (v >= 0) values.push_back(v);
  }
  double Mean() const {
    if (values.empty()) return -1;
    double s = 0;
    for (double v : values) s += v;
    return s / static_cast<double>(values.size());
  }
  double Min() const {
    return values.empty() ? -1 : *std::min_element(values.begin(), values.end());
  }
  double Max() const {
    return values.empty() ? -1 : *std::max_element(values.begin(), values.end());
  }
};

void RunExperiment(int num_ops, JsonReporter* json) {
  std::printf("--- (%s) random numpy workflows, %d operations each ---\n",
              num_ops == 5 ? "A" : "B", num_ops);
  auto formats = MakeAllBaselineFormats();
  // Series order: DSLog, DSLog-NoMerge, Raw, Parquet, Parquet-GZip,
  // Turbo-RC, Array.
  const char* names[] = {"DSLog",     "DSLog-NoMerge", "Raw",  "Parquet",
                         "Parq-GZip", "Turbo-RC",      "Array"};
  Series series[7];
  int built = 0;
  for (int w = 0; w < kWorkflows * 3 && built < kWorkflows; ++w) {
    auto wfr = BuildRandomNumpyWorkflow(num_ops, kInitialCells,
                                        static_cast<uint64_t>(1000 + w));
    if (!wfr.ok()) continue;
    ++built;
    const Workflow& wf = wfr.value();
    PreparedWorkflow prep = PrepareWorkflow(wf);
    Rng rng(static_cast<uint64_t>(99 + w));
    std::vector<int64_t> cells = SampleQueryCells(wf, kQueryCells, &rng);
    int qdim = static_cast<int>(wf.shapes[0].size());

    series[0].Add(QueryDSLog(prep.dslog_buffers, cells, qdim, true));
    series[1].Add(QueryDSLog(prep.dslog_buffers, cells, qdim, false));
    series[2].Add(QueryBaselineFormat(*formats[0], prep.format_buffers[0],
                                      cells, kTimeoutSeconds));
    series[3].Add(QueryBaselineFormat(*formats[2], prep.format_buffers[2],
                                      cells, kTimeoutSeconds));
    series[4].Add(QueryBaselineFormat(*formats[3], prep.format_buffers[3],
                                      cells, kTimeoutSeconds));
    series[5].Add(QueryBaselineFormat(*formats[4], prep.format_buffers[4],
                                      cells, kTimeoutSeconds));
    series[6].Add(QueryArrayVectorized(prep.format_buffers[1], cells, qdim,
                                       kTimeoutSeconds));
  }
  std::printf("%-14s %12s %12s %12s  (over %d workflows)\n", "method",
              "mean (s)", "min (s)", "max (s)", built);
  PrintRule(66);
  for (int i = 0; i < 7; ++i) {
    std::printf("%-14s %12.4f %12.4f %12.4f\n", names[i], series[i].Mean(),
                series[i].Min(), series[i].Max());
    json->Add()
        .Num("num_ops", num_ops)
        .Str("method", names[i])
        .Num("workflows", built)
        .Num("mean_s", series[i].Mean())
        .Num("min_s", series[i].Min())
        .Num("max_s", series[i].Max());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("fig9_random", argc, argv);
  std::printf("=== Fig 9: query latency on random numpy workflows ===\n");
  std::printf("(initial arrays: %lld cells; query: %lld-cell random range)\n\n",
              static_cast<long long>(kInitialCells),
              static_cast<long long>(kQueryCells));
  RunExperiment(5, &json);
  RunExperiment(10, &json);
  std::printf(
      "Expected shape (paper): DSLog at or near the best latency with a\n"
      "smaller advantage than Fig 8 (up to ~20x over the next baseline);\n"
      "DSLog-NoMerge strictly worse than DSLog; large min/max spread across\n"
      "workflows; ten-op pipelines cost a few times more than five-op ones.\n");
  return 0;
}
