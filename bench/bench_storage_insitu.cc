// Cold-open time-to-first-result: LogStore OpenInSitu versus legacy
// directory Load, across both segment layouts. Registers the three Fig-8
// workflows (image, relational, ResNet) plus a population of Fig-9 random
// numpy workflows in one catalog (a serving catalog holds far more lineage
// than any one query touches), persists it three ways — legacy directory,
// v1 ProvRC-GZip LogStore, v2 columnar LogStore — then measures, per
// Fig-8 workflow, how long a cold process takes to answer its first
// backward full-path query. Legacy Load eagerly gunzips every edge;
// in-situ v1 gunzips only the path's segments; in-situ v2 borrows them
// zero-copy from the mapping (bytes_decompressed and rows_materialized
// both 0). Emits the machine-readable BENCH_storage.json baseline
// (override with `--json <path>`).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "query/box.h"
#include "storage/dslog.h"

using namespace dslog;
using namespace dslog::bench;

namespace {

struct WorkflowPath {
  std::string name;
  std::vector<std::string> backward_path;  // last array -> first array
  BoxTable query;                          // one box over the last array
};

void RegisterWorkflow(const Workflow& wf, DSLog* log, WorkflowPath* out) {
  std::vector<std::string> names;
  for (size_t i = 0; i < wf.array_names.size(); ++i) {
    names.push_back(wf.name + "_" + std::to_string(i));
    Status st = log->DefineArray(names.back(), wf.shapes[i]);
    DSLOG_CHECK(st.ok()) << st.ToString();
  }
  for (size_t s = 0; s < wf.steps.size(); ++s) {
    OperationRegistration reg;
    reg.op_name = wf.steps[s].op_name;
    reg.in_arrs = {names[s]};
    reg.out_arr = names[s + 1];
    reg.captured.push_back(wf.steps[s].relation);
    reg.reuse = false;
    auto outcome = log->RegisterOperation(std::move(reg));
    DSLOG_CHECK(outcome.ok()) << outcome.status().ToString();
  }
  out->name = wf.name;
  out->backward_path.assign(names.rbegin(), names.rend());
  std::vector<Interval> box;
  for (int64_t d : wf.shapes.back())
    box.push_back({0, std::max<int64_t>(0, d / 8)});
  out->query = BoxTable::FromBox(std::move(box));
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("storage_insitu", argc, argv, "BENCH_storage.json");
  int reps = 5;
  int extra_workflows = 32;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--extra-workflows") == 0)
      extra_workflows = std::atoi(argv[i + 1]);
  }

  std::printf("=== Cold-open first-query latency: LogStore vs legacy Load ===\n\n");

  DSLog log;
  std::vector<WorkflowPath> paths(3);
  {
    auto image = BuildImageWorkflow(96, 96, 81);
    DSLOG_CHECK(image.ok()) << image.status().ToString();
    RegisterWorkflow(image.value(), &log, &paths[0]);
    auto relational = BuildRelationalWorkflow(20000, 12000, 82);
    DSLOG_CHECK(relational.ok()) << relational.status().ToString();
    RegisterWorkflow(relational.value(), &log, &paths[1]);
    auto resnet = BuildResNetWorkflow(40, 40, 83);
    DSLOG_CHECK(resnet.ok()) << resnet.status().ToString();
    RegisterWorkflow(resnet.value(), &log, &paths[2]);
    // The rest of the catalog: random numpy pipelines nobody queries here.
    // Legacy Load still decompresses all of them before the first result.
    for (int i = 0; i < extra_workflows; ++i) {
      auto random = BuildRandomNumpyWorkflow(5, 30000, 9000 + i);
      DSLOG_CHECK(random.ok()) << random.status().ToString();
      Workflow wf = std::move(random).ValueOrDie();
      wf.name = "rand" + std::to_string(i);
      WorkflowPath unused;
      RegisterWorkflow(wf, &log, &unused);
    }
  }

  const std::string dir = ScratchDir() + "/bench_storage_legacy";
  const std::string file_v1 = ScratchDir() + "/bench_storage_v1.dsl";
  const std::string file_v2 = ScratchDir() + "/bench_storage_v2.dsl";
  {
    Status st = log.Save(dir);
    DSLOG_CHECK(st.ok()) << st.ToString();
    st = log.SaveLogStore(file_v1, SegmentLayout::kProvRcGzip);
    DSLOG_CHECK(st.ok()) << st.ToString();
    st = log.SaveLogStore(file_v2);  // default layout = columnar
    DSLOG_CHECK(st.ok()) << st.ToString();
  }
  std::printf("catalog: 3 Fig-8 + %d random workflows, %lld segments\n"
              "on disk: legacy gzip %lld bytes | v1 store %lld bytes | "
              "v2 columnar store %lld bytes\n\n",
              extra_workflows,
              static_cast<long long>(
                  DSLog::OpenInSitu(file_v1).ValueOrDie().log_store()->stats()
                      .segment_count),
              static_cast<long long>(log.StorageFootprintBytes()),
              static_cast<long long>(
                  DSLog::OpenInSitu(file_v1).ValueOrDie().log_store()
                      ->file_size()),
              static_cast<long long>(
                  DSLog::OpenInSitu(file_v2).ValueOrDie().log_store()
                      ->file_size()));

  std::printf("%-12s %11s %11s %11s %8s %8s %12s %10s\n", "workflow",
              "legacy (s)", "v1 (s)", "v2 (s)", "v1 spd", "v2 spd",
              "v1 MB gunzip", "v2 rowsmat");
  PrintRule(92);

  for (const WorkflowPath& wp : paths) {
    double legacy_s = 0.0, v1_s = 0.0, v2_s = 0.0;
    int64_t legacy_bytes = 0, v1_bytes = 0, touched = 0, total_segs = 0;
    int64_t v2_rows_materialized = 0, v2_borrowed = 0;
    for (int r = 0; r < reps; ++r) {
      {
        WallTimer timer;
        DSLog cold;
        Status st = cold.Load(dir);
        DSLOG_CHECK(st.ok()) << st.ToString();
        auto got = cold.ProvQuery(wp.backward_path, wp.query);
        DSLOG_CHECK(got.ok()) << got.status().ToString();
        legacy_s += timer.ElapsedSeconds();
        // Legacy Load gunzips every stored edge before the query can run.
        legacy_bytes = log.StorageFootprintBytes();
      }
      {
        WallTimer timer;
        auto cold = DSLog::OpenInSitu(file_v1);
        DSLOG_CHECK(cold.ok()) << cold.status().ToString();
        auto got = cold.value().ProvQuery(wp.backward_path, wp.query);
        DSLOG_CHECK(got.ok()) << got.status().ToString();
        v1_s += timer.ElapsedSeconds();
        LogStoreStats stats = cold.value().log_store()->stats();
        v1_bytes = stats.bytes_decompressed;
        touched = stats.segments_touched;
        total_segs = stats.segment_count;
      }
      {
        WallTimer timer;
        auto cold = DSLog::OpenInSitu(file_v2);
        DSLOG_CHECK(cold.ok()) << cold.status().ToString();
        auto got = cold.value().ProvQuery(wp.backward_path, wp.query);
        DSLOG_CHECK(got.ok()) << got.status().ToString();
        v2_s += timer.ElapsedSeconds();
        LogStoreStats stats = cold.value().log_store()->stats();
        v2_rows_materialized = stats.rows_materialized;
        v2_borrowed = stats.segments_borrowed;
        DSLOG_CHECK(stats.bytes_decompressed == 0)
            << "v2 store decompressed bytes";
      }
    }
    legacy_s /= reps;
    v1_s /= reps;
    v2_s /= reps;
    const double v1_speedup = v1_s > 0 ? legacy_s / v1_s : 0.0;
    const double v2_speedup = v2_s > 0 ? legacy_s / v2_s : 0.0;
    std::printf("%-12s %11.5f %11.5f %11.5f %7.1fx %7.1fx %12.2f %10lld\n",
                wp.name.c_str(), legacy_s, v1_s, v2_s, v1_speedup, v2_speedup,
                static_cast<double>(v1_bytes) / 1e6,
                static_cast<long long>(v2_rows_materialized));
    json.Add()
        .Str("workflow", wp.name)
        .Num("reps", reps)
        .Num("legacy_open_query_s", legacy_s)
        .Num("insitu_open_query_s", v1_s)
        .Num("insitu_v2_open_query_s", v2_s)
        .Num("speedup", v1_speedup)
        .Num("v2_speedup", v2_speedup)
        .Num("legacy_bytes_decompressed", static_cast<double>(legacy_bytes))
        .Num("insitu_bytes_decompressed", static_cast<double>(v1_bytes))
        .Num("v2_bytes_decompressed", 0.0)
        .Num("v2_rows_materialized", static_cast<double>(v2_rows_materialized))
        .Num("v2_segments_borrowed", static_cast<double>(v2_borrowed))
        .Num("segments_touched", static_cast<double>(touched))
        .Num("segment_count", static_cast<double>(total_segs));
  }

  std::printf(
      "\nExpected shape: OpenInSitu answers the first query >= 5x sooner than\n"
      "legacy Load+query (it maps the file and resolves only the touched\n"
      "path). The v2 columnar store additionally decompresses zero bytes and\n"
      "materializes zero rows — its segments are scanned in place.\n");
  return 0;
}
