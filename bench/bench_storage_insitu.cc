// Cold-open time-to-first-result: LogStore OpenInSitu versus legacy
// directory Load. Registers the three Fig-8 workflows (image, relational,
// ResNet) plus a population of Fig-9 random numpy workflows in one catalog
// (a serving catalog holds far more lineage than any one query touches),
// persists it both ways, then measures — per Fig-8 workflow — how long a
// cold process takes to answer its first backward full-path query, and how
// many compressed bytes each path decompresses (legacy Load eagerly
// gunzips every edge; OpenInSitu only the edges the query touches). Emits
// the machine-readable BENCH_storage.json baseline (override with
// `--json <path>`).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/io.h"
#include "common/timer.h"
#include "query/box.h"
#include "storage/dslog.h"

using namespace dslog;
using namespace dslog::bench;

namespace {

struct WorkflowPath {
  std::string name;
  std::vector<std::string> backward_path;  // last array -> first array
  BoxTable query;                          // one box over the last array
};

void RegisterWorkflow(const Workflow& wf, DSLog* log, WorkflowPath* out) {
  std::vector<std::string> names;
  for (size_t i = 0; i < wf.array_names.size(); ++i) {
    names.push_back(wf.name + "_" + std::to_string(i));
    Status st = log->DefineArray(names.back(), wf.shapes[i]);
    DSLOG_CHECK(st.ok()) << st.ToString();
  }
  for (size_t s = 0; s < wf.steps.size(); ++s) {
    OperationRegistration reg;
    reg.op_name = wf.steps[s].op_name;
    reg.in_arrs = {names[s]};
    reg.out_arr = names[s + 1];
    reg.captured.push_back(wf.steps[s].relation);
    reg.reuse = false;
    auto outcome = log->RegisterOperation(std::move(reg));
    DSLOG_CHECK(outcome.ok()) << outcome.status().ToString();
  }
  out->name = wf.name;
  out->backward_path.assign(names.rbegin(), names.rend());
  std::vector<Interval> box;
  for (int64_t d : wf.shapes.back())
    box.push_back({0, std::max<int64_t>(0, d / 8)});
  out->query = BoxTable::FromBox(std::move(box));
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("storage_insitu", argc, argv, "BENCH_storage.json");
  int reps = 5;
  int extra_workflows = 32;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--extra-workflows") == 0)
      extra_workflows = std::atoi(argv[i + 1]);
  }

  std::printf("=== Cold-open first-query latency: LogStore vs legacy Load ===\n\n");

  DSLog log;
  std::vector<WorkflowPath> paths(3);
  {
    auto image = BuildImageWorkflow(96, 96, 81);
    DSLOG_CHECK(image.ok()) << image.status().ToString();
    RegisterWorkflow(image.value(), &log, &paths[0]);
    auto relational = BuildRelationalWorkflow(20000, 12000, 82);
    DSLOG_CHECK(relational.ok()) << relational.status().ToString();
    RegisterWorkflow(relational.value(), &log, &paths[1]);
    auto resnet = BuildResNetWorkflow(40, 40, 83);
    DSLOG_CHECK(resnet.ok()) << resnet.status().ToString();
    RegisterWorkflow(resnet.value(), &log, &paths[2]);
    // The rest of the catalog: random numpy pipelines nobody queries here.
    // Legacy Load still decompresses all of them before the first result.
    for (int i = 0; i < extra_workflows; ++i) {
      auto random = BuildRandomNumpyWorkflow(5, 30000, 9000 + i);
      DSLOG_CHECK(random.ok()) << random.status().ToString();
      Workflow wf = std::move(random).ValueOrDie();
      wf.name = "rand" + std::to_string(i);
      WorkflowPath unused;
      RegisterWorkflow(wf, &log, &unused);
    }
  }

  const std::string dir = ScratchDir() + "/bench_storage_legacy";
  const std::string file = ScratchDir() + "/bench_storage.dsl";
  {
    Status st = log.Save(dir);
    DSLOG_CHECK(st.ok()) << st.ToString();
    st = log.SaveLogStore(file);
    DSLOG_CHECK(st.ok()) << st.ToString();
  }
  std::printf("catalog: 3 Fig-8 + %d random workflows, %lld segments, "
              "%lld bytes on disk\n\n",
              extra_workflows,
              static_cast<long long>(
                  DSLog::OpenInSitu(file).ValueOrDie().log_store()->stats()
                      .segment_count),
              static_cast<long long>(log.StorageFootprintBytes()));

  std::printf("%-14s %14s %14s %9s %16s %14s\n", "workflow", "legacy (s)",
              "insitu (s)", "speedup", "legacy MB gunzip", "insitu MB");
  PrintRule(88);

  for (const WorkflowPath& wp : paths) {
    double legacy_s = 0.0, insitu_s = 0.0;
    int64_t legacy_bytes = 0, insitu_bytes = 0, touched = 0, total_segs = 0;
    for (int r = 0; r < reps; ++r) {
      {
        WallTimer timer;
        DSLog cold;
        Status st = cold.Load(dir);
        DSLOG_CHECK(st.ok()) << st.ToString();
        auto got = cold.ProvQuery(wp.backward_path, wp.query);
        DSLOG_CHECK(got.ok()) << got.status().ToString();
        legacy_s += timer.ElapsedSeconds();
        // Legacy Load gunzips every stored edge before the query can run.
        legacy_bytes = log.StorageFootprintBytes();
      }
      {
        WallTimer timer;
        auto cold = DSLog::OpenInSitu(file);
        DSLOG_CHECK(cold.ok()) << cold.status().ToString();
        auto got = cold.value().ProvQuery(wp.backward_path, wp.query);
        DSLOG_CHECK(got.ok()) << got.status().ToString();
        insitu_s += timer.ElapsedSeconds();
        LogStoreStats stats = cold.value().log_store()->stats();
        insitu_bytes = stats.bytes_decompressed;
        touched = stats.segments_touched;
        total_segs = stats.segment_count;
      }
    }
    legacy_s /= reps;
    insitu_s /= reps;
    const double speedup = insitu_s > 0 ? legacy_s / insitu_s : 0.0;
    std::printf("%-14s %14.5f %14.5f %8.1fx %16.2f %14.2f\n", wp.name.c_str(),
                legacy_s, insitu_s, speedup,
                static_cast<double>(legacy_bytes) / 1e6,
                static_cast<double>(insitu_bytes) / 1e6);
    json.Add()
        .Str("workflow", wp.name)
        .Num("reps", reps)
        .Num("legacy_open_query_s", legacy_s)
        .Num("insitu_open_query_s", insitu_s)
        .Num("speedup", speedup)
        .Num("legacy_bytes_decompressed", static_cast<double>(legacy_bytes))
        .Num("insitu_bytes_decompressed", static_cast<double>(insitu_bytes))
        .Num("segments_touched", static_cast<double>(touched))
        .Num("segment_count", static_cast<double>(total_segs));
  }

  std::printf(
      "\nExpected shape: OpenInSitu answers the first query >= 5x sooner than\n"
      "legacy Load+query (it maps the file and decompresses only the touched\n"
      "path), and its decompressed-bytes column stays a small fraction of the\n"
      "legacy column (which always pays for the whole catalog).\n");
  return 0;
}
