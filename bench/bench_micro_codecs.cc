// Micro-benchmarks (google-benchmark) for the compression substrate:
// varint, bit packing, hybrid RLE, Deflate, and the range coder on
// synthetic distributions. These quantify the constants behind the
// Fig 7 / Table VII results.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "compress/bitpack.h"
#include "compress/deflate.h"
#include "compress/range_coder.h"
#include "compress/rle.h"
#include "compress/varint.h"

namespace dslog {
namespace {

std::vector<int64_t> MakeSortedValues(int64_t n) {
  Rng rng(1);
  std::vector<int64_t> v(static_cast<size_t>(n));
  int64_t acc = 0;
  for (auto& x : v) {
    acc += static_cast<int64_t>(rng.Uniform(4));
    x = acc;
  }
  return v;
}

std::string MakeSkewedBytes(int64_t n) {
  Rng rng(2);
  std::string s;
  s.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    s.push_back(rng.Bernoulli(0.8) ? 'a' : static_cast<char>(rng.Next() & 0xFF));
  return s;
}

void BM_VarintEncode(benchmark::State& state) {
  auto values = MakeSortedValues(state.range(0));
  for (auto _ : state) {
    std::string buf;
    for (int64_t v : values) PutVarint64(&buf, static_cast<uint64_t>(v));
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VarintEncode)->Arg(1 << 12)->Arg(1 << 16);

void BM_BitPack(benchmark::State& state) {
  Rng rng(3);
  std::vector<uint64_t> values(static_cast<size_t>(state.range(0)));
  for (auto& v : values) v = rng.Next() & 0xFFF;
  for (auto _ : state) {
    std::string buf;
    BitPack(values, 12, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BitPack)->Arg(1 << 12)->Arg(1 << 16);

void BM_HybridRleRuns(benchmark::State& state) {
  std::vector<uint64_t> values(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < values.size(); ++i) values[i] = i / 64;  // long runs
  int bw = BitWidthFor(values.back());
  for (auto _ : state) {
    std::string buf;
    HybridRleEncode(values, bw, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HybridRleRuns)->Arg(1 << 12)->Arg(1 << 16);

void BM_DeflateCompress(benchmark::State& state) {
  std::string input = MakeSkewedBytes(state.range(0));
  for (auto _ : state) {
    std::string c = DeflateCompress(input);
    benchmark::DoNotOptimize(c);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeflateCompress)->Arg(1 << 14)->Arg(1 << 18);

void BM_DeflateDecompress(benchmark::State& state) {
  std::string compressed = DeflateCompress(MakeSkewedBytes(state.range(0)));
  for (auto _ : state) {
    auto d = DeflateDecompress(compressed);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeflateDecompress)->Arg(1 << 14)->Arg(1 << 18);

void BM_RangeCoderCompress(benchmark::State& state) {
  std::string input = MakeSkewedBytes(state.range(0));
  for (auto _ : state) {
    std::string c = RangeCoderCompress(input);
    benchmark::DoNotOptimize(c);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RangeCoderCompress)->Arg(1 << 14)->Arg(1 << 17);

void BM_RangeCoderDecompress(benchmark::State& state) {
  std::string compressed = RangeCoderCompress(MakeSkewedBytes(state.range(0)));
  for (auto _ : state) {
    auto d = RangeCoderDecompress(compressed);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RangeCoderDecompress)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace
}  // namespace dslog

BENCHMARK_MAIN();
