// Shared helpers for the benchmark harnesses: the twelve Table VII
// operations (scaled to laptop size; see docs/ARCHITECTURE.md for the
// mapping), format size/latency measurement, and table printing.

#ifndef DSLOG_BENCH_BENCH_UTIL_H_
#define DSLOG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "baselines/storage_format.h"
#include "common/check.h"
#include "common/random.h"
#include "common/timer.h"
#include "explain/explain.h"
#include "lineage/lineage_relation.h"
#include "provrc/provrc.h"
#include "provrc/serialize.h"
#include "relational/relational_ops.h"
#include "workloads/workflows.h"

namespace dslog {
namespace bench {

/// Build type of the dslog code compiled into this bench binary (distinct
/// from google-benchmark's own library_build_type, which describes the
/// system libbenchmark package). Debug-build numbers are not comparable to
/// release numbers; JsonReporter stamps this into every document and tags
/// debug documents so they can never be mistaken for real measurements.
#ifdef NDEBUG
inline constexpr bool kDebugBuild = false;
inline constexpr const char kBuildType[] = "release";
#else
inline constexpr bool kDebugBuild = true;
inline constexpr const char kBuildType[] = "debug";
#endif

/// One Table VII workload: an operation name plus the captured lineage
/// relations it produced (one per input array).
struct Table7Workload {
  std::string name;
  std::vector<LineageRelation> relations;

  int64_t TotalRows() const {
    int64_t n = 0;
    for (const auto& r : relations) n += r.num_rows();
    return n;
  }
};

inline LineageRelation CaptureRegistryOp(
    const char* op_name, const std::vector<const NDArray*>& inputs,
    const OpArgs& args, int which = 0) {
  const ArrayOp* op = OpRegistry::Global().Find(op_name);
  DSLOG_CHECK(op != nullptr) << op_name;
  NDArray out = op->Apply(inputs, args).ValueOrDie();
  return std::move(
      op->Capture(inputs, out, args).ValueOrDie()[static_cast<size_t>(which)]);
}

/// Builds the twelve Table VII workloads at the configured scale.
inline std::vector<Table7Workload> BuildTable7Workloads(uint64_t seed) {
  Rng rng(seed);
  std::vector<Table7Workload> workloads;

  auto add = [&workloads](std::string name, std::vector<LineageRelation> rels) {
    workloads.push_back({std::move(name), std::move(rels)});
  };

  // 1. Negative: element-wise over a 500x1000 array.
  {
    NDArray a = NDArray::Random({500, 1000}, &rng);
    add("Negative", {CaptureRegistryOp("negative", {&a}, OpArgs())});
  }
  // 2. Addition: two 500x1000 inputs (one relation per input).
  {
    NDArray a = NDArray::Random({500, 1000}, &rng);
    NDArray b = NDArray::Random({500, 1000}, &rng);
    const ArrayOp* op = OpRegistry::Global().Find("add");
    NDArray out = op->Apply({&a, &b}, OpArgs()).ValueOrDie();
    auto rels = op->Capture({&a, &b}, out, OpArgs()).ValueOrDie();
    add("Addition", std::move(rels));
  }
  // 3. Aggregate: sum over axis 1 of 500x1000.
  {
    NDArray a = NDArray::Random({500, 1000}, &rng);
    OpArgs args;
    args.SetInt("axis", 1);
    add("Aggregate", {CaptureRegistryOp("sum", {&a}, args)});
  }
  // 4. Repetition: tile a 250k-cell vector x4.
  {
    NDArray a = NDArray::Random({250000}, &rng);
    OpArgs args;
    args.SetInt("reps", 4);
    add("Repetition", {CaptureRegistryOp("tile", {&a}, args)});
  }
  // 5. Matrix*Vector: (300x300) . (300).
  {
    NDArray a = NDArray::Random({300, 300}, &rng);
    NDArray v = NDArray::Random({300}, &rng);
    const ArrayOp* op = OpRegistry::Global().Find("matmul");
    NDArray out = op->Apply({&a, &v}, OpArgs()).ValueOrDie();
    auto rels = op->Capture({&a, &v}, out, OpArgs()).ValueOrDie();
    add("Matrix*Vector", std::move(rels));
  }
  // 6. Matrix*Matrix: (64x64) . (64x64).
  {
    NDArray a = NDArray::Random({64, 64}, &rng);
    NDArray b = NDArray::Random({64, 64}, &rng);
    const ArrayOp* op = OpRegistry::Global().Find("matmul");
    NDArray out = op->Apply({&a, &b}, OpArgs()).ValueOrDie();
    auto rels = op->Capture({&a, &b}, out, OpArgs()).ValueOrDie();
    add("Matrix*Matrix", std::move(rels));
  }
  // 7. Sort: random 500k-cell vector (ProvRC worst case).
  {
    NDArray a = NDArray::Random({500000}, &rng);
    add("Sort", {CaptureRegistryOp("sort", {&a}, OpArgs())});
  }
  // 8. ImgFilter: 3x3 convolution over a 300x300 frame.
  {
    NDArray frame = MakeSurveillanceFrame(300, 300, seed + 1);
    const double k[9] = {0.1, 0.1, 0.1, 0.1, 0.2, 0.1, 0.1, 0.1, 0.1};
    auto conv = Conv3x3Same(frame, k).ValueOrDie();
    add("ImgFilter", {std::move(conv.second)});
  }
  // 9/10. LIME and DRISE over the tiny detector on a synthetic frame.
  {
    NDArray frame = MakeSurveillanceFrame(128, 128, seed + 2);
    TinyDetector detector;
    Rng xrng(seed + 3);
    add("Lime",
        {LimeCapture(frame, detector, LimeOptions{}, &xrng).ValueOrDie()});
    add("DRISE",
        {DRiseCapture(frame, detector, DRiseOptions{}, &xrng).ValueOrDie()});
  }
  // 11. Group By: IMDB-like basics grouped by unsorted isAdult.
  {
    NDArray basics = MakeTitleBasics(200000, seed + 4);
    auto grouped = GroupByAggregate(basics, 2, 3).ValueOrDie();
    add("Group By", {std::move(grouped.lineage[0])});
  }
  // 12. Inner Join: basics x episode on sorted tconst.
  {
    NDArray basics = MakeTitleBasics(120000, seed + 5);
    NDArray episode = MakeTitleEpisode(80000, 120000, seed + 6);
    auto joined = InnerJoin(basics, episode, 0, 0).ValueOrDie();
    add("Inner Join", std::move(joined.lineage));
  }
  return workloads;
}

/// Serialized ProvRC size over all relations of a workload.
inline int64_t ProvRcBytes(const std::vector<LineageRelation>& rels,
                           bool gzip, const ProvRcOptions& options = {}) {
  int64_t total = 0;
  for (const auto& rel : rels) {
    CompressedTable t = ProvRcCompress(rel, options);
    total += static_cast<int64_t>(gzip ? SerializeCompressedTableGzip(t).size()
                                       : SerializeCompressedTable(t).size());
  }
  return total;
}

/// Serialized baseline-format size over all relations of a workload.
inline int64_t FormatBytes(const StorageFormat& format,
                           const std::vector<LineageRelation>& rels) {
  int64_t total = 0;
  for (const auto& rel : rels)
    total += static_cast<int64_t>(format.Encode(rel).size());
  return total;
}

inline void PrintRule(int width = 118) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// --------------------------------------------------- machine-readable out --

/// Structured benchmark output, shared by every bench harness. Construct one
/// in main:
///
///   JsonReporter json("fig8_workflows", argc, argv);
///   json.Add().Str("workflow", name).Num("selectivity", sel).Num("s", t);
///
/// Passing `--json <path>` on the command line (or a non-empty
/// `default_path`) enables it; on destruction the accumulated records are
/// written as one JSON document:
///   {"bench": "<name>", "num_cpus": N, ..., "records": [{...}, ...]}
/// so successive runs can be archived as a perf trajectory. `num_cpus`
/// (std::thread::hardware_concurrency of the bench host) is recorded in
/// every document automatically, so a scaling number can never again be
/// read without knowing how many cores produced it. Additional top-level
/// fields go through TopStr/TopNum/TopBool (e.g. the degraded_host tag).
class JsonReporter {
 public:
  /// One flat record of string/number fields, insertion-ordered.
  class Record {
   public:
    Record& Str(const std::string& key, const std::string& value);
    Record& Num(const std::string& key, double value);

   private:
    friend class JsonReporter;
    /// key -> already-rendered JSON literal.
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// Parses `--json <path>` out of argv. Unrecognized arguments are left
  /// for the bench's own parsing.
  JsonReporter(std::string bench_name, int argc, char** argv,
               std::string default_path = "");
  ~JsonReporter();
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Starts a new record. The reference stays valid for the reporter's
  /// lifetime (deque-backed), so it can be filled incrementally.
  Record& Add();

  /// Sets a top-level document field (next to "bench" and "num_cpus",
  /// outside "records"). Re-setting a key overwrites it.
  void TopStr(const std::string& key, const std::string& value);
  void TopNum(const std::string& key, double value);
  void TopBool(const std::string& key, bool value);

  /// Nested mode: Write() splices this reporter's document as the value of
  /// top-level field `key` inside the JsonReporter document already at
  /// path(), instead of overwriting the file. Re-splicing replaces a
  /// previous section with the same key, so repeated runs are idempotent;
  /// when the host file is missing or not a JSON object the document is
  /// written standalone. Lets a satellite bench (bench_catalog_scale) ride
  /// inside an archived document (BENCH_storage.json) without clobbering
  /// the host bench's records.
  void set_nested_key(std::string key) { nested_key_ = std::move(key); }

  /// Writes the document now; otherwise the destructor does. No-op when
  /// disabled or already written.
  void Write();

 private:
  std::string bench_name_;
  std::string path_;
  std::string nested_key_;
  /// key -> already-rendered JSON literal, insertion-ordered.
  std::vector<std::pair<std::string, std::string>> top_fields_;
  std::deque<Record> records_;
  bool written_ = false;
};

// ------------------------------------------------------- query measurement --

/// A workflow whose lineage has been encoded once per storage format
/// (setup cost excluded from query latency, as in the paper: tables are
/// already stored when the user issues prov_query).
struct PreparedWorkflow {
  const Workflow* workflow = nullptr;
  /// Per-format, per-step encoded buffers (format order of
  /// MakeAllBaselineFormats).
  std::vector<std::vector<std::string>> format_buffers;
  /// Serialized ProvRC-GZip tables per step (DSLog storage).
  std::vector<std::string> dslog_buffers;
};

inline PreparedWorkflow PrepareWorkflow(const Workflow& wf) {
  PreparedWorkflow prep;
  prep.workflow = &wf;
  auto formats = MakeAllBaselineFormats();
  prep.format_buffers.resize(formats.size());
  for (size_t f = 0; f < formats.size(); ++f)
    for (const auto& step : wf.steps)
      prep.format_buffers[f].push_back(formats[f]->Encode(step.relation));
  for (const auto& step : wf.steps)
    prep.dslog_buffers.push_back(
        SerializeCompressedTableGzip(ProvRcCompress(step.relation)));
  return prep;
}

/// Forward query over one baseline format: decode every hop's table, then
/// chain hash natural joins. Returns latency in seconds, or -1 on timeout.
double QueryBaselineFormat(const StorageFormat& format,
                           const std::vector<std::string>& buffers,
                           const std::vector<int64_t>& query_cells,
                           double timeout_seconds);

/// Forward query over the Array format using the vectorized equality scan
/// the paper evaluates (batched == comparisons, no hash index).
double QueryArrayVectorized(const std::vector<std::string>& buffers,
                            const std::vector<int64_t>& query_cells,
                            int query_ndim, double timeout_seconds);

/// Forward query through DSLog: deserialize the compressed tables and run
/// the in-situ θ-join chain.
double QueryDSLog(const std::vector<std::string>& buffers,
                  const std::vector<int64_t>& query_cells, int query_ndim,
                  bool merge);

/// Samples `count` distinct flattened cells of the workflow's first array
/// and returns them as index tuples (flattened).
std::vector<int64_t> SampleQueryCells(const Workflow& wf, int64_t count,
                                      Rng* rng);

}  // namespace bench
}  // namespace dslog

#endif  // DSLOG_BENCH_BENCH_UTIL_H_
