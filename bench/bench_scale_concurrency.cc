// Batched lineage-query throughput versus thread count: registers the three
// Fig-8 workflows (image, relational, ResNet) in one DSLog catalog, builds a
// mixed batch of forward and backward path queries over them, and measures
// DSLog::ProvQueryBatch throughput at 1/2/4/8 threads. Emits the
// machine-readable BENCH_concurrency.json baseline (override with
// `--json <path>`) so the perf trajectory can be regressed against.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/timer.h"
#include "query/box.h"
#include "storage/dslog.h"

using namespace dslog;
using namespace dslog::bench;

namespace {

struct QueryBatch {
  std::vector<std::vector<std::string>> paths;
  std::vector<BoxTable> queries;
};

// Registers a workflow's chain into `log` with arrays named
// "<wf.name>_<i>" and appends forward + backward queries over it.
void AddWorkflow(const Workflow& wf, int64_t forward_queries_per_selectivity,
                 DSLog* log, QueryBatch* batch, Rng* rng) {
  std::vector<std::string> names;
  names.reserve(wf.array_names.size());
  for (size_t i = 0; i < wf.array_names.size(); ++i) {
    names.push_back(wf.name + "_" + std::to_string(i));
    Status st = log->DefineArray(names.back(), wf.shapes[i]);
    DSLOG_CHECK(st.ok()) << st.ToString();
  }
  for (size_t s = 0; s < wf.steps.size(); ++s) {
    OperationRegistration reg;
    reg.op_name = wf.steps[s].op_name;
    reg.in_arrs = {names[s]};
    reg.out_arr = names[s + 1];
    reg.captured.push_back(wf.steps[s].relation);
    reg.reuse = false;
    auto outcome = log->RegisterOperation(std::move(reg));
    DSLOG_CHECK(outcome.ok()) << outcome.status().ToString();
  }

  int64_t total_cells = 1;
  for (int64_t d : wf.shapes[0]) total_cells *= d;
  const int qdim = static_cast<int>(wf.shapes[0].size());

  // Forward full-path queries at the Fig-8 selectivities.
  for (double sel : {0.0005, 0.005, 0.05}) {
    for (int64_t k = 0; k < forward_queries_per_selectivity; ++k) {
      int64_t count = std::max<int64_t>(
          1, static_cast<int64_t>(sel * static_cast<double>(total_cells)));
      batch->paths.push_back(names);
      batch->queries.push_back(
          BoxTable::FromCells(qdim, SampleQueryCells(wf, count, rng)));
    }
  }
  // Backward full-path queries from a sampled box of the last array.
  const std::vector<int64_t>& last_shape = wf.shapes.back();
  for (int64_t k = 0; k < forward_queries_per_selectivity; ++k) {
    std::vector<Interval> box;
    for (int64_t d : last_shape) {
      int64_t lo = rng->UniformRange(0, std::max<int64_t>(0, d - 1));
      int64_t hi = std::min<int64_t>(d - 1, lo + std::max<int64_t>(1, d / 8));
      box.push_back({lo, hi});
    }
    batch->paths.push_back(
        std::vector<std::string>(names.rbegin(), names.rend()));
    batch->queries.push_back(BoxTable::FromBox(std::move(box)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json("scale_concurrency", argc, argv, "BENCH_concurrency.json");
  int64_t queries_per_bucket = 8;
  double min_seconds = 1.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--queries-per-bucket") == 0)
      queries_per_bucket = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--min-seconds") == 0)
      min_seconds = std::atof(argv[i + 1]);
  }

  std::printf("=== Batched query throughput vs threads (Fig-8 workflows) ===\n\n");

  const int num_cpus = static_cast<int>(std::thread::hardware_concurrency());
  const int max_threads = 8;  // widest row of the sweep below
  const bool degraded_host = num_cpus < max_threads;
  if (degraded_host) {
    std::printf(
        "*** WARNING: this host reports %d CPU(s) but the sweep runs up to\n"
        "*** %d threads. Speedup rows beyond %d threads measure scheduler\n"
        "*** contention, NOT scaling — the JSON is tagged degraded_host so\n"
        "*** these numbers cannot masquerade as a scaling result. Re-run on\n"
        "*** a >= %d-core machine for a meaningful curve.\n\n",
        num_cpus, max_threads, std::max(1, num_cpus), max_threads);
    json.TopBool("degraded_host", true);
  }

  DSLog log;
  QueryBatch batch;
  Rng rng(20240729);

  auto image = BuildImageWorkflow(96, 96, 81);
  DSLOG_CHECK(image.ok()) << image.status().ToString();
  AddWorkflow(image.value(), queries_per_bucket, &log, &batch, &rng);

  auto relational = BuildRelationalWorkflow(20000, 12000, 82);
  DSLOG_CHECK(relational.ok()) << relational.status().ToString();
  AddWorkflow(relational.value(), queries_per_bucket, &log, &batch, &rng);

  auto resnet = BuildResNetWorkflow(40, 40, 83);
  DSLOG_CHECK(resnet.ok()) << resnet.status().ToString();
  AddWorkflow(resnet.value(), queries_per_bucket, &log, &batch, &rng);

  const int64_t entries = static_cast<int64_t>(batch.paths.size());
  std::printf("batch: %lld path queries over 3 workflows, storage %lld bytes\n\n",
              static_cast<long long>(entries),
              static_cast<long long>(log.StorageFootprintBytes()));
  std::printf("%8s %10s %12s %12s %10s\n", "threads", "reps", "seconds",
              "queries/s", "speedup");
  PrintRule(58);

  double qps_1 = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    QueryOptions options;
    options.num_threads = threads;
    // Warmup (also validates the batch: every entry must succeed).
    {
      auto r = log.ProvQueryBatch(batch.paths, batch.queries, options);
      DSLOG_CHECK(r.ok()) << r.status().ToString();
      DSLOG_CHECK(static_cast<int64_t>(r.value().size()) == entries);
    }
    // Reset the registry so the per-bucket record carries only this thread
    // count's pool/merge activity (the document-level "metrics" block then
    // reflects the last bucket — each row's numbers live in its record).
    metrics::Registry::Global().Reset();
    WallTimer timer;
    int64_t reps = 0;
    do {
      auto r = log.ProvQueryBatch(batch.paths, batch.queries, options);
      DSLOG_CHECK(r.ok()) << r.status().ToString();
      ++reps;
    } while (timer.ElapsedSeconds() < min_seconds);
    const double seconds = timer.ElapsedSeconds();
    const metrics::RegistrySnapshot snap =
        metrics::Registry::Global().Snapshot();
    const double qps =
        static_cast<double>(entries * reps) / seconds;
    if (threads == 1) qps_1 = qps;
    const double speedup = qps_1 > 0 ? qps / qps_1 : 0.0;
    std::printf("%8d %10lld %12.4f %12.1f %9.2fx\n", threads,
                static_cast<long long>(reps), seconds, qps, speedup);
    auto& rec = json.Add();
    rec.Num("threads", threads)
        .Num("batch_entries", static_cast<double>(entries))
        .Num("reps", static_cast<double>(reps))
        .Num("seconds", seconds)
        .Num("qps", qps)
        .Num("speedup_vs_1", speedup)
        .Num("pool_tasks_submitted", static_cast<double>(snap.CounterValue(
                                         "dslog.pool.tasks_submitted")))
        .Num("pool_pfor_calls", static_cast<double>(
                                    snap.CounterValue("dslog.pool.pfor_calls")))
        .Num("pool_pfor_inline",
             static_cast<double>(snap.CounterValue("dslog.pool.pfor_inline")))
        .Num("tree_merges", static_cast<double>(
                                snap.CounterValue("dslog.join.tree_merges")));
    if (const auto* depth = snap.FindHistogram("dslog.pool.queue_depth")) {
      rec.Num("pool_queue_depth_p50", static_cast<double>(depth->Quantile(0.5)))
          .Num("pool_queue_depth_p95",
               static_cast<double>(depth->Quantile(0.95)))
          .Num("pool_queue_depth_max", static_cast<double>(depth->max));
    }
    if (const auto* merge = snap.FindHistogram("dslog.join.tree_merge_us")) {
      rec.Num("tree_merge_us_total", static_cast<double>(merge->sum))
          .Num("tree_merge_us_p95", static_cast<double>(merge->Quantile(0.95)));
    }
  }

  std::printf(
      "\nExpected shape: near-linear scaling while cores last (batch entries\n"
      "are independent shared-lock readers); the 8-thread row should reach\n"
      ">= 3x the single-thread throughput on a >= 4-core machine.\n");
  return 0;
}
