// Wire-level stress harness for dslog_server: holds >= 1000 concurrent
// client sessions against one in-process server, drives query + stats
// round trips from every session, and reports per-request latency
// percentiles, throughput, and the server's own error counters — the
// admission-control demonstration (a tiny-capacity server shedding typed
// kOverloaded answers) rides along as a second record. The run fails
// (exit 1) if any protocol error is counted or the target concurrency was
// never reached, so CI can gate on it. Emits BENCH_server.json.
//
//   bench_server_stress [--sessions N] [--rounds R] [--drivers K]
//                       [--json PATH]

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "net/client.h"
#include "net/server.h"
#include "query/box.h"
#include "storage/dslog.h"

using namespace dslog;
using namespace dslog::bench;
using dslog::net::DslogClient;
using dslog::net::DslogServer;
using dslog::net::IngestHandle;
using dslog::net::ServerOptions;

namespace {

// Each session's fd plus the server-side fd: leave generous headroom.
void RaiseFdLimit(int sessions) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  const rlim_t want = static_cast<rlim_t>(sessions) * 2 + 512;
  if (lim.rlim_cur >= want) return;
  lim.rlim_cur = std::min<rlim_t>(want, lim.rlim_max);
  setrlimit(RLIMIT_NOFILE, &lim);
}

// The paper's running example as the served pipeline: B = sum(A, axis=1),
// C = cumsum(B) — two hops so queries exercise a real multi-hop join.
Status IngestPipeline(DslogClient* client) {
  DSLOG_RETURN_IF_ERROR(client->OpenStore("bench"));
  DSLOG_RETURN_IF_ERROR(client->DefineArray("A", {64, 8}));
  DSLOG_RETURN_IF_ERROR(client->DefineArray("B", {64}));
  DSLOG_RETURN_IF_ERROR(client->DefineArray("C", {64}));
  Rng rng(42);
  NDArray a = NDArray::Random({64, 8}, &rng);

  OperationRegistration sum_reg;
  sum_reg.op_name = "sum";
  sum_reg.in_arrs = {"A"};
  sum_reg.out_arr = "B";
  OpArgs sum_args;
  sum_args.SetInt("axis", 1);
  const ArrayOp* sum = OpRegistry::Global().Find("sum");
  NDArray b = sum->Apply({&a}, sum_args).ValueOrDie();
  sum_reg.captured = sum->Capture({&a}, b, sum_args).ValueOrDie();
  sum_reg.args = sum_args;

  OperationRegistration cum_reg;
  cum_reg.op_name = "cumsum";
  cum_reg.in_arrs = {"B"};
  cum_reg.out_arr = "C";
  const ArrayOp* cumsum = OpRegistry::Global().Find("cumsum");
  OpArgs cum_args = cumsum->SampleArgs(b.shape(), &rng);
  NDArray c = cumsum->Apply({&b}, cum_args).ValueOrDie();
  cum_reg.captured = cumsum->Capture({&b}, c, cum_args).ValueOrDie();
  cum_reg.args = cum_args;

  IngestHandle handle(client);
  DSLOG_RETURN_IF_ERROR(handle.Add(sum_reg).status());
  DSLOG_RETURN_IF_ERROR(handle.Add(cum_reg).status());
  return handle.Drain().status();
}

struct DriverResult {
  std::vector<double> latencies_ms;
  int64_t requests = 0;
  int64_t errors = 0;
};

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0;
  std::sort(sorted_ms->begin(), sorted_ms->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ms->size() - 1) + 0.5);
  return (*sorted_ms)[std::min(idx, sorted_ms->size() - 1)];
}

int64_t CounterValue(const char* name) {
  return metrics::Registry::Global().counter(name).Value();
}

}  // namespace

int main(int argc, char** argv) {
  int sessions = 1000;
  int rounds = 3;
  int drivers = 8;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--sessions") && i + 1 < argc) {
      sessions = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--rounds") && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--drivers") && i + 1 < argc) {
      drivers = std::atoi(argv[++i]);
    }
  }
  drivers = std::max(1, std::min(drivers, sessions));
  RaiseFdLimit(sessions);
  JsonReporter json("server_stress", argc, argv, "BENCH_server.json");

  const int64_t proto_errors_before =
      CounterValue("dslog.server.protocol_errors");

  ServerOptions options;
  options.max_sessions = sessions + 64;
  options.max_inflight_requests = sessions + 64;
  options.worker_threads = 8;
  DslogServer server(options);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  {
    auto seeder = DslogClient::Connect("127.0.0.1", server.port());
    if (!seeder.ok() || !IngestPipeline(seeder.value().get()).ok()) {
      std::fprintf(stderr, "pipeline ingest failed\n");
      return 1;
    }
    Status bye = seeder.value()->Bye();
    if (!bye.ok()) {
      std::fprintf(stderr, "bye failed: %s\n", bye.ToString().c_str());
      return 1;
    }
  }

  // Phase 1: every driver connects its share of sessions and holds them
  // open; the query phase starts only once ALL are connected, so the
  // server really is serving `sessions` concurrent sessions.
  std::atomic<int> connected{0};
  std::atomic<int> connect_failures{0};
  std::atomic<bool> go{false};
  std::vector<DriverResult> results(static_cast<size_t>(drivers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(drivers));
  WallTimer total_timer;
  for (int d = 0; d < drivers; ++d) {
    threads.emplace_back([&, d] {
      DriverResult& result = results[static_cast<size_t>(d)];
      const int lo = sessions * d / drivers;
      const int hi = sessions * (d + 1) / drivers;
      std::vector<std::unique_ptr<DslogClient>> clients;
      clients.reserve(static_cast<size_t>(hi - lo));
      for (int i = lo; i < hi; ++i) {
        auto c = DslogClient::Connect("127.0.0.1", server.port());
        if (!c.ok()) {
          connect_failures.fetch_add(1);
          continue;
        }
        if (!c.value()->OpenStore("bench", /*create=*/false).ok()) {
          connect_failures.fetch_add(1);
          continue;
        }
        clients.push_back(std::move(c).value());
      }
      connected.fetch_add(static_cast<int>(clients.size()));
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

      const BoxTable fwd = BoxTable::FromCells(2, {1, 1, 2, 3});
      const BoxTable bwd = BoxTable::FromCells(1, {0, 5});
      for (int round = 0; round < rounds; ++round) {
        for (size_t k = 0; k < clients.size(); ++k) {
          WallTimer t;
          const bool forward = (round + static_cast<int>(k)) % 2 == 0;
          auto r = forward ? clients[k]->Query({"A", "B", "C"}, fwd)
                           : clients[k]->Query({"C", "B", "A"}, bwd);
          result.latencies_ms.push_back(t.ElapsedMillis());
          ++result.requests;
          if (!r.ok() || r.value().empty()) ++result.errors;
        }
      }
      for (auto& client : clients)
        if (!client->Bye().ok()) ++result.errors;
    });
  }

  // Wait out phase 1, confirm the concurrency target, then fire.
  while (connected.load() + connect_failures.load() < sessions)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const int64_t peak_sessions = server.active_sessions();
  WallTimer query_timer;
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const double query_seconds = query_timer.ElapsedSeconds();
  const double total_seconds = total_timer.ElapsedSeconds();

  std::vector<double> all_ms;
  int64_t requests = 0, errors = 0;
  for (DriverResult& r : results) {
    all_ms.insert(all_ms.end(), r.latencies_ms.begin(), r.latencies_ms.end());
    requests += r.requests;
    errors += r.errors;
  }
  const double p50 = Percentile(&all_ms, 0.50);
  const double p99 = Percentile(&all_ms, 0.99);
  const double qps =
      query_seconds > 0 ? static_cast<double>(requests) / query_seconds : 0;
  server.Stop();
  const int64_t protocol_errors =
      CounterValue("dslog.server.protocol_errors") - proto_errors_before;

  // Admission-control demonstration: a 4-session server hammered by 32
  // connects must shed the excess with typed kUnavailable answers (and no
  // protocol errors), while the admitted sessions keep working.
  int64_t shed_typed = 0, shed_admitted = 0;
  {
    ServerOptions tiny;
    tiny.max_sessions = 4;
    tiny.worker_threads = 2;
    DslogServer small(tiny);
    if (!small.Start().ok()) {
      std::fprintf(stderr, "tiny server start failed\n");
      return 1;
    }
    std::vector<std::unique_ptr<DslogClient>> held;
    for (int i = 0; i < 32; ++i) {
      auto c = DslogClient::Connect("127.0.0.1", small.port());
      if (c.ok()) {
        held.push_back(std::move(c).value());
        ++shed_admitted;
      } else if (c.status().code() == StatusCode::kUnavailable) {
        ++shed_typed;
      }
    }
    for (auto& client : held)
      if (!client->ServerStats().ok()) ++errors;
  }

  std::printf(
      "sessions=%d (peak %lld)  requests=%lld  qps=%.0f  p50=%.3fms  "
      "p99=%.3fms  errors=%lld  protocol_errors=%lld  sheds(typed)=%lld\n",
      sessions, static_cast<long long>(peak_sessions),
      static_cast<long long>(requests), qps, p50, p99,
      static_cast<long long>(errors), static_cast<long long>(protocol_errors),
      static_cast<long long>(shed_typed));

  json.TopNum("sessions_target", sessions);
  json.TopNum("peak_sessions", static_cast<double>(peak_sessions));
  json.TopNum("total_seconds", total_seconds);
  auto& rec = json.Add();
  rec.Str("phase", "steady_state")
      .Num("sessions", static_cast<double>(peak_sessions))
      .Num("drivers", drivers)
      .Num("rounds", rounds)
      .Num("requests", static_cast<double>(requests))
      .Num("qps", qps)
      .Num("p50_ms", p50)
      .Num("p99_ms", p99)
      .Num("request_errors", static_cast<double>(errors))
      .Num("protocol_errors", static_cast<double>(protocol_errors))
      .Num("connect_failures", static_cast<double>(connect_failures.load()));
  auto& adm = json.Add();
  adm.Str("phase", "admission_control")
      .Num("capacity", 4)
      .Num("offered", 32)
      .Num("admitted", static_cast<double>(shed_admitted))
      .Num("shed_typed_unavailable", static_cast<double>(shed_typed));

  const bool ok = protocol_errors == 0 && errors == 0 &&
                  connect_failures.load() == 0 && peak_sessions >= sessions &&
                  shed_typed > 0 && shed_admitted == 4;
  if (!ok) std::fprintf(stderr, "FAILED stress invariants\n");
  return ok ? 0 : 1;
}
