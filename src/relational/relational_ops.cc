#include "relational/relational_ops.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

namespace dslog {

namespace {

// Identity lineage between the shared (row, col) region of two 2-D tables,
// with an optional column remap out_col -> in_col.
void AddCellCopy(LineageRelation* rel, int64_t out_row, int64_t out_col,
                 int64_t in_row, int64_t in_col) {
  int64_t o[2] = {out_row, out_col};
  int64_t i[2] = {in_row, in_col};
  rel->Add(o, i);
}

}  // namespace

Result<RelationalResult> InnerJoin(const NDArray& a, const NDArray& b,
                                   int key_a, int key_b) {
  if (a.ndim() != 2 || b.ndim() != 2)
    return Status::InvalidArgument("InnerJoin: 2-D tables required");
  int64_t ca = a.shape()[1], cb = b.shape()[1];
  if (key_a >= ca || key_b >= cb)
    return Status::InvalidArgument("InnerJoin: key column out of range");

  // Hash build on B's key.
  std::unordered_map<int64_t, std::vector<int64_t>> build;
  for (int64_t j = 0; j < b.shape()[0]; ++j)
    build[static_cast<int64_t>(b[j * cb + key_b])].push_back(j);

  std::vector<std::pair<int64_t, int64_t>> matches;  // (row in A, row in B)
  for (int64_t i = 0; i < a.shape()[0]; ++i) {
    auto it = build.find(static_cast<int64_t>(a[i * ca + key_a]));
    if (it == build.end()) continue;
    for (int64_t j : it->second) matches.push_back({i, j});
  }

  int64_t out_cols = ca + cb - 1;
  NDArray out({static_cast<int64_t>(matches.size()), out_cols});
  RelationalResult result;
  LineageRelation ra(2, 2), rb(2, 2);
  ra.set_shapes(out.shape(), a.shape());
  rb.set_shapes(out.shape(), b.shape());

  for (size_t k = 0; k < matches.size(); ++k) {
    auto [i, j] = matches[k];
    int64_t row = static_cast<int64_t>(k);
    for (int64_t c = 0; c < ca; ++c) {
      out[row * out_cols + c] = a[i * ca + c];
      AddCellCopy(&ra, row, c, i, c);
      if (c == key_a) AddCellCopy(&rb, row, c, j, key_b);
    }
    int64_t oc = ca;
    for (int64_t c = 0; c < cb; ++c) {
      if (c == key_b) continue;
      out[row * out_cols + oc] = b[j * cb + c];
      AddCellCopy(&rb, row, oc, j, c);
      ++oc;
    }
  }
  result.output = std::move(out);
  result.lineage.push_back(std::move(ra));
  result.lineage.push_back(std::move(rb));
  return result;
}

Result<RelationalResult> GroupByAggregate(const NDArray& table, int group_col,
                                          int value_col) {
  if (table.ndim() != 2)
    return Status::InvalidArgument("GroupByAggregate: 2-D table required");
  int64_t cols = table.shape()[1];
  if (group_col >= cols || value_col >= cols)
    return Status::InvalidArgument("GroupByAggregate: column out of range");

  std::map<int64_t, std::vector<int64_t>> groups;  // value -> member rows
  for (int64_t i = 0; i < table.shape()[0]; ++i)
    groups[static_cast<int64_t>(table[i * cols + group_col])].push_back(i);

  NDArray out({static_cast<int64_t>(groups.size()), 2});
  LineageRelation rel(2, 2);
  rel.set_shapes(out.shape(), table.shape());
  int64_t k = 0;
  for (const auto& [value, rows] : groups) {
    double sum = 0;
    for (int64_t i : rows) sum += table[i * cols + value_col];
    out[k * 2 + 0] = static_cast<double>(value);
    out[k * 2 + 1] = sum;
    for (int64_t i : rows) {
      AddCellCopy(&rel, k, 0, i, group_col);
      AddCellCopy(&rel, k, 1, i, value_col);
    }
    ++k;
  }
  RelationalResult result;
  result.output = std::move(out);
  result.lineage.push_back(std::move(rel));
  return result;
}

Result<RelationalResult> DropNaNColumns(const NDArray& table) {
  if (table.ndim() != 2)
    return Status::InvalidArgument("DropNaNColumns: 2-D table required");
  int64_t rows = table.shape()[0], cols = table.shape()[1];
  std::vector<int64_t> kept;
  for (int64_t c = 0; c < cols; ++c) {
    bool has_nan = false;
    for (int64_t i = 0; i < rows && !has_nan; ++i)
      has_nan = std::isnan(table[i * cols + c]);
    if (!has_nan) kept.push_back(c);
  }
  if (kept.empty()) return Status::InvalidArgument("DropNaNColumns: all NaN");
  NDArray out({rows, static_cast<int64_t>(kept.size())});
  LineageRelation rel(2, 2);
  rel.set_shapes(out.shape(), table.shape());
  for (int64_t i = 0; i < rows; ++i)
    for (size_t kc = 0; kc < kept.size(); ++kc) {
      out[i * static_cast<int64_t>(kept.size()) + static_cast<int64_t>(kc)] =
          table[i * cols + kept[kc]];
      AddCellCopy(&rel, i, static_cast<int64_t>(kc), i, kept[kc]);
    }
  RelationalResult result;
  result.output = std::move(out);
  result.lineage.push_back(std::move(rel));
  return result;
}

Result<RelationalResult> AddColumns(const NDArray& table, int col1, int col2) {
  if (table.ndim() != 2)
    return Status::InvalidArgument("AddColumns: 2-D table required");
  int64_t rows = table.shape()[0], cols = table.shape()[1];
  if (col1 >= cols || col2 >= cols)
    return Status::InvalidArgument("AddColumns: column out of range");
  NDArray out({rows, cols + 1});
  LineageRelation rel(2, 2);
  rel.set_shapes(out.shape(), table.shape());
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t c = 0; c < cols; ++c) {
      out[i * (cols + 1) + c] = table[i * cols + c];
      AddCellCopy(&rel, i, c, i, c);
    }
    out[i * (cols + 1) + cols] = table[i * cols + col1] + table[i * cols + col2];
    AddCellCopy(&rel, i, cols, i, col1);
    AddCellCopy(&rel, i, cols, i, col2);
  }
  RelationalResult result;
  result.output = std::move(out);
  result.lineage.push_back(std::move(rel));
  return result;
}

Result<RelationalResult> OneHotEncode(const NDArray& table, int col,
                                      int num_values) {
  if (table.ndim() != 2)
    return Status::InvalidArgument("OneHotEncode: 2-D table required");
  int64_t rows = table.shape()[0], cols = table.shape()[1];
  if (col >= cols) return Status::InvalidArgument("OneHotEncode: bad column");
  NDArray out({rows, cols + num_values});
  LineageRelation rel(2, 2);
  rel.set_shapes(out.shape(), table.shape());
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t c = 0; c < cols; ++c) {
      out[i * (cols + num_values) + c] = table[i * cols + c];
      AddCellCopy(&rel, i, c, i, c);
    }
    int64_t code = static_cast<int64_t>(table[i * cols + col]);
    for (int v = 0; v < num_values; ++v) {
      out[i * (cols + num_values) + cols + v] = (code == v) ? 1.0 : 0.0;
      AddCellCopy(&rel, i, cols + v, i, col);
    }
  }
  RelationalResult result;
  result.output = std::move(out);
  result.lineage.push_back(std::move(rel));
  return result;
}

Result<RelationalResult> AddConstant(const NDArray& table, int col, double c) {
  if (table.ndim() != 2)
    return Status::InvalidArgument("AddConstant: 2-D table required");
  int64_t rows = table.shape()[0], cols = table.shape()[1];
  if (col >= cols) return Status::InvalidArgument("AddConstant: bad column");
  NDArray out = table;
  LineageRelation rel(2, 2);
  rel.set_shapes(out.shape(), table.shape());
  for (int64_t i = 0; i < rows; ++i) {
    out[i * cols + col] += c;
    for (int64_t cc = 0; cc < cols; ++cc) AddCellCopy(&rel, i, cc, i, cc);
  }
  RelationalResult result;
  result.output = std::move(out);
  result.lineage.push_back(std::move(rel));
  return result;
}

}  // namespace dslog
