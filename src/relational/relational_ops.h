// Relational operations with custom cell-level lineage capture
// (ICDE'24 §VII.A.3): inner join and group-by, plus the pre-processing
// steps of the relational workflow in Fig 8B. Relational tables are
// represented as 2-D arrays in canonical order (§II.A), with string-like
// attributes dictionary-coded to integers by the workload generators.

#ifndef DSLOG_RELATIONAL_RELATIONAL_OPS_H_
#define DSLOG_RELATIONAL_RELATIONAL_OPS_H_

#include <vector>

#include "array/ndarray.h"
#include "common/result.h"
#include "lineage/lineage_relation.h"

namespace dslog {

/// Output of a relational operation: the result table plus one lineage
/// relation per input table (same order as the inputs).
struct RelationalResult {
  NDArray output;
  std::vector<LineageRelation> lineage;
};

/// Equality inner join A.key_a == B.key_b. Output columns: all of A, then
/// all of B except key_b. Copied cells trace to their source cell; the key
/// column traces to both matching key cells.
Result<RelationalResult> InnerJoin(const NDArray& a, const NDArray& b,
                                   int key_a, int key_b);

/// SUM aggregation of `value_col` grouped by `group_col`. Output: one row
/// per distinct group value (ascending), columns (group, sum). Every row of
/// a group contributes to both output cells of that group (all-to-all
/// within the group) — unstructured lineage when groups interleave.
Result<RelationalResult> GroupByAggregate(const NDArray& table, int group_col,
                                          int value_col);

/// Drops every column containing at least one NaN; kept cells trace
/// one-to-one (value-dependent).
Result<RelationalResult> DropNaNColumns(const NDArray& table);

/// Appends a column holding col1 + col2.
Result<RelationalResult> AddColumns(const NDArray& table, int col1, int col2);

/// Appends `num_values` indicator columns one-hot-encoding integer codes in
/// `col` (codes outside [0, num_values) yield all-zero indicators).
Result<RelationalResult> OneHotEncode(const NDArray& table, int col,
                                      int num_values);

/// Adds a constant to one column (in a copy); identity lineage.
Result<RelationalResult> AddConstant(const NDArray& table, int col, double c);

}  // namespace dslog

#endif  // DSLOG_RELATIONAL_RELATIONAL_OPS_H_
