// Explainable-AI lineage capture (ICDE'24 §VII.A.2). The paper runs LIME
// and D-RISE over YOLOv4 detections on a VIRAT surveillance frame; this
// module substitutes a deterministic tiny convolutional "detector" over a
// synthetic frame and implements both perturbation-based attribution
// methods from scratch. Both produce a bipartite weighted contribution
// between input pixels and the 6-cell detection vector, thresholded into
// lineage — the same partially-structured lineage shape Table VII's
// Lime/DRISE rows exercise.

#ifndef DSLOG_EXPLAIN_EXPLAIN_H_
#define DSLOG_EXPLAIN_EXPLAIN_H_

#include "array/ndarray.h"
#include "common/result.h"
#include "lineage/lineage_relation.h"

namespace dslog {

class Rng;

/// Deterministic convolutional scorer: 3x3 edge/blob filters + pooling,
/// producing a 6-cell detection vector (x, y, w, h, confidence, class) for
/// the strongest blob in the frame.
class TinyDetector {
 public:
  TinyDetector();

  /// `frame` must be 2-D (grayscale). Returns the detection vector.
  Result<NDArray> Evaluate(const NDArray& frame) const;

 private:
  std::vector<double> kernel_;  // 3x3 blob kernel
};

struct LimeOptions {
  int grid = 8;            ///< superpixel grid (grid x grid segments)
  int num_samples = 128;   ///< perturbation samples
  double threshold = 0.05; ///< |weight| significance threshold
};

/// LIME capture: segments the frame into grid superpixels, samples random
/// maskings, fits a least-squares surrogate per detection cell, and links
/// every pixel of each significant segment to that cell.
Result<LineageRelation> LimeCapture(const NDArray& frame,
                                    const TinyDetector& detector,
                                    const LimeOptions& options, Rng* rng);

struct DRiseOptions {
  int num_masks = 128;      ///< random coarse masks
  int mask_grid = 6;        ///< coarse mask resolution
  double keep_prob = 0.5;   ///< probability a coarse cell is kept
  double threshold = 0.55;  ///< saliency quantile threshold
};

/// D-RISE capture: aggregates detection-similarity-weighted random masks
/// into a saliency map and links every above-threshold pixel to every
/// detection cell.
Result<LineageRelation> DRiseCapture(const NDArray& frame,
                                     const TinyDetector& detector,
                                     const DRiseOptions& options, Rng* rng);

}  // namespace dslog

#endif  // DSLOG_EXPLAIN_EXPLAIN_H_
