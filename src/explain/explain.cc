#include "explain/explain.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace dslog {

namespace {

// Solves the S x S linear system A w = b in place (Gaussian elimination
// with partial pivoting). Returns false when singular.
bool SolveLinearSystem(std::vector<double>* a, std::vector<double>* b, int n) {
  auto& A = *a;
  auto& B = *b;
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int r = col + 1; r < n; ++r)
      if (std::fabs(A[static_cast<size_t>(r * n + col)]) >
          std::fabs(A[static_cast<size_t>(pivot * n + col)]))
        pivot = r;
    if (std::fabs(A[static_cast<size_t>(pivot * n + col)]) < 1e-12) return false;
    if (pivot != col) {
      for (int c = 0; c < n; ++c)
        std::swap(A[static_cast<size_t>(col * n + c)],
                  A[static_cast<size_t>(pivot * n + c)]);
      std::swap(B[static_cast<size_t>(col)], B[static_cast<size_t>(pivot)]);
    }
    double d = A[static_cast<size_t>(col * n + col)];
    for (int r = col + 1; r < n; ++r) {
      double f = A[static_cast<size_t>(r * n + col)] / d;
      if (f == 0) continue;
      for (int c = col; c < n; ++c)
        A[static_cast<size_t>(r * n + c)] -= f * A[static_cast<size_t>(col * n + c)];
      B[static_cast<size_t>(r)] -= f * B[static_cast<size_t>(col)];
    }
  }
  for (int col = n - 1; col >= 0; --col) {
    double v = B[static_cast<size_t>(col)];
    for (int c = col + 1; c < n; ++c)
      v -= A[static_cast<size_t>(col * n + c)] * B[static_cast<size_t>(c)];
    B[static_cast<size_t>(col)] = v / A[static_cast<size_t>(col * n + col)];
  }
  return true;
}

}  // namespace

TinyDetector::TinyDetector()
    : kernel_{0.5, 1.0, 0.5, 1.0, 2.0, 1.0, 0.5, 1.0, 0.5} {}

Result<NDArray> TinyDetector::Evaluate(const NDArray& frame) const {
  if (frame.ndim() != 2)
    return Status::InvalidArgument("TinyDetector: 2-D frame required");
  int64_t h = frame.shape()[0], w = frame.shape()[1];
  if (h < 3 || w < 3)
    return Status::InvalidArgument("TinyDetector: frame too small");
  // Blob response map (valid convolution).
  double best = -1e300;
  int64_t by = 1, bx = 1;
  for (int64_t y = 1; y + 1 < h; ++y) {
    for (int64_t x = 1; x + 1 < w; ++x) {
      double acc = 0;
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx)
          acc += kernel_[static_cast<size_t>((dy + 1) * 3 + (dx + 1))] *
                 frame[(y + dy) * w + (x + dx)];
      if (acc > best) {
        best = acc;
        by = y;
        bx = x;
      }
    }
  }
  // Box extent: grow while response stays above half peak.
  double mean = 0;
  for (int64_t i = 0; i < frame.size(); ++i) mean += frame[i];
  mean /= static_cast<double>(frame.size());
  NDArray det({6});
  det[0] = static_cast<double>(bx);
  det[1] = static_cast<double>(by);
  det[2] = static_cast<double>(std::min<int64_t>(w / 4, 8));
  det[3] = static_cast<double>(std::min<int64_t>(h / 4, 8));
  det[4] = best / (9.0 * (std::fabs(mean) + 1e-9));  // confidence
  det[5] = best > 9.0 * mean ? 1.0 : 0.0;            // "car" class flag
  return det;
}

Result<LineageRelation> LimeCapture(const NDArray& frame,
                                    const TinyDetector& detector,
                                    const LimeOptions& options, Rng* rng) {
  DSLOG_ASSIGN_OR_RETURN(NDArray base, detector.Evaluate(frame));
  int64_t h = frame.shape()[0], w = frame.shape()[1];
  const int grid = options.grid;
  const int segments = grid * grid;
  auto segment_of = [&](int64_t y, int64_t x) {
    int sy = static_cast<int>(y * grid / h);
    int sx = static_cast<int>(x * grid / w);
    return sy * grid + sx;
  };

  // Perturbation samples: binary segment masks + detector responses.
  const int n = options.num_samples;
  std::vector<double> masks(static_cast<size_t>(n) * segments);
  std::vector<std::vector<double>> responses(
      6, std::vector<double>(static_cast<size_t>(n)));
  NDArray perturbed = frame;
  for (int s = 0; s < n; ++s) {
    for (int g = 0; g < segments; ++g)
      masks[static_cast<size_t>(s * segments + g)] =
          rng->Bernoulli(0.5) ? 1.0 : 0.0;
    for (int64_t y = 0; y < h; ++y)
      for (int64_t x = 0; x < w; ++x)
        perturbed[y * w + x] =
            frame[y * w + x] *
            masks[static_cast<size_t>(s * segments + segment_of(y, x))];
    DSLOG_ASSIGN_OR_RETURN(NDArray det, detector.Evaluate(perturbed));
    for (int d = 0; d < 6; ++d)
      responses[static_cast<size_t>(d)][static_cast<size_t>(s)] = det[d];
  }

  // Ridge-regularized least squares per detection cell:
  // (X^T X + eps I) w = X^T y.
  std::vector<double> xtx(static_cast<size_t>(segments) * segments, 0.0);
  for (int s = 0; s < n; ++s)
    for (int g1 = 0; g1 < segments; ++g1) {
      double v1 = masks[static_cast<size_t>(s * segments + g1)];
      if (v1 == 0) continue;
      for (int g2 = 0; g2 < segments; ++g2)
        xtx[static_cast<size_t>(g1 * segments + g2)] +=
            v1 * masks[static_cast<size_t>(s * segments + g2)];
    }
  for (int g = 0; g < segments; ++g)
    xtx[static_cast<size_t>(g * segments + g)] += 1e-3;

  LineageRelation rel(1, 2);
  rel.set_shapes({6}, frame.shape());
  for (int d = 0; d < 6; ++d) {
    std::vector<double> a = xtx;
    std::vector<double> b(static_cast<size_t>(segments), 0.0);
    for (int s = 0; s < n; ++s) {
      double y = responses[static_cast<size_t>(d)][static_cast<size_t>(s)] -
                 base[d];
      for (int g = 0; g < segments; ++g)
        b[static_cast<size_t>(g)] +=
            masks[static_cast<size_t>(s * segments + g)] * y;
    }
    if (!SolveLinearSystem(&a, &b, segments)) continue;
    double max_w = 1e-12;
    for (double v : b) max_w = std::max(max_w, std::fabs(v));
    for (int g = 0; g < segments; ++g) {
      if (std::fabs(b[static_cast<size_t>(g)]) / max_w < options.threshold)
        continue;
      // Link every pixel of this significant segment to detection cell d.
      int sy = g / grid, sx = g % grid;
      int64_t y0 = sy * h / grid, y1 = (sy + 1) * h / grid;
      int64_t x0 = sx * w / grid, x1 = (sx + 1) * w / grid;
      int64_t od[1] = {d};
      for (int64_t y = y0; y < y1; ++y)
        for (int64_t x = x0; x < x1; ++x) {
          int64_t in_idx[2] = {y, x};
          rel.Add(od, in_idx);
        }
    }
  }
  return rel;
}

Result<LineageRelation> DRiseCapture(const NDArray& frame,
                                     const TinyDetector& detector,
                                     const DRiseOptions& options, Rng* rng) {
  DSLOG_ASSIGN_OR_RETURN(NDArray base, detector.Evaluate(frame));
  int64_t h = frame.shape()[0], w = frame.shape()[1];
  const int grid = options.mask_grid;

  std::vector<double> saliency(static_cast<size_t>(frame.size()), 0.0);
  std::vector<double> mask(static_cast<size_t>(grid) * grid);
  NDArray masked = frame;
  for (int s = 0; s < options.num_masks; ++s) {
    for (auto& v : mask) v = rng->Bernoulli(options.keep_prob) ? 1.0 : 0.0;
    auto mask_at = [&](int64_t y, int64_t x) {
      int gy = static_cast<int>(y * grid / h);
      int gx = static_cast<int>(x * grid / w);
      return mask[static_cast<size_t>(gy * grid + gx)];
    };
    for (int64_t y = 0; y < h; ++y)
      for (int64_t x = 0; x < w; ++x)
        masked[y * w + x] = frame[y * w + x] * mask_at(y, x);
    DSLOG_ASSIGN_OR_RETURN(NDArray det, detector.Evaluate(masked));
    // Detection similarity: cosine between detection vectors.
    double dot = 0, na = 0, nb = 0;
    for (int d = 0; d < 6; ++d) {
      dot += det[d] * base[d];
      na += det[d] * det[d];
      nb += base[d] * base[d];
    }
    double sim = dot / (std::sqrt(na * nb) + 1e-12);
    for (int64_t y = 0; y < h; ++y)
      for (int64_t x = 0; x < w; ++x)
        saliency[static_cast<size_t>(y * w + x)] += sim * mask_at(y, x);
  }

  // Threshold at the requested quantile of the saliency distribution.
  std::vector<double> sorted = saliency;
  std::sort(sorted.begin(), sorted.end());
  double cut = sorted[static_cast<size_t>(
      std::min<double>(options.threshold * static_cast<double>(sorted.size()),
                       static_cast<double>(sorted.size() - 1)))];

  LineageRelation rel(1, 2);
  rel.set_shapes({6}, frame.shape());
  for (int64_t y = 0; y < h; ++y)
    for (int64_t x = 0; x < w; ++x) {
      if (saliency[static_cast<size_t>(y * w + x)] < cut) continue;
      for (int64_t d = 0; d < 6; ++d) {
        int64_t od[1] = {d};
        int64_t in_idx[2] = {y, x};
        rel.Add({od, 1}, in_idx);
      }
    }
  return rel;
}

}  // namespace dslog
