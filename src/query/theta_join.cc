#include "query/theta_join.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"
#include "query/interval_sweep.h"

namespace dslog {

namespace {

// Collects attribute-0 intervals of the query boxes.
std::vector<Interval> QueryAttr0(const BoxTable& query) {
  std::vector<Interval> ivs;
  ivs.reserve(static_cast<size_t>(query.num_boxes()));
  for (int64_t qb = 0; qb < query.num_boxes(); ++qb)
    ivs.push_back(query.Box(qb)[0]);
  return ivs;
}

// Partitioned θ-join driver: splits the query boxes into `num_threads`
// contiguous slices, runs `join` (the single-threaded join closed over the
// stored table) per slice on the shared pool, and concatenates the partial
// BoxTables. Set-equivalent to join(query); the caller applies Merge()
// once on the concatenation, exactly as in the single-threaded plan.
template <typename JoinFn>
BoxTable PartitionedJoin(const BoxTable& query, int result_ndim,
                         int num_threads, JoinFn&& join) {
  const int64_t nq = query.num_boxes();
  const int64_t chunks = std::min<int64_t>(num_threads, nq);
  if (chunks <= 1) return join(query);
  std::vector<BoxTable> parts(static_cast<size_t>(chunks));
  ThreadPool::Shared().ParallelFor(
      chunks,
      [&](int64_t c) {
        parts[static_cast<size_t>(c)] =
            join(query.Slice(c * nq / chunks, (c + 1) * nq / chunks));
      },
      num_threads);
  BoxTable result(result_ndim);
  for (const BoxTable& part : parts) result.Append(part);
  return result;
}

}  // namespace

BoxTable BackwardThetaJoin(const BoxTable& query, const CompressedTable& table,
                           int num_threads) {
  DSLOG_CHECK(query.ndim() == table.out_ndim())
      << "backward query arity mismatch";
  if (num_threads > 1) {
    return PartitionedJoin(query, table.in_ndim(), num_threads,
                           [&table](const BoxTable& q) {
                             return BackwardThetaJoin(q, table, 1);
                           });
  }
  const int l = table.out_ndim();
  const int m = table.in_ndim();
  BoxTable result(m);
  std::vector<Interval> t(static_cast<size_t>(l));
  std::vector<Interval> out_box(static_cast<size_t>(m));

  // Range join on output attribute 0 by sort-sweep; remaining attributes
  // verified per candidate pair.
  std::vector<Interval> row_attr0;
  row_attr0.reserve(static_cast<size_t>(table.num_rows()));
  for (const CompressedRow& row : table.rows()) row_attr0.push_back(row.out[0]);

  ForEachOverlappingPair(
      row_attr0, QueryAttr0(query), [&](int64_t ri, int64_t qb) {
        const CompressedRow& row = table.rows()[static_cast<size_t>(ri)];
        auto q = query.Box(qb);
        // Step 1: joint intersection over the output attributes.
        bool hit = true;
        for (int k = 0; k < l && hit; ++k) {
          t[static_cast<size_t>(k)] = q[static_cast<size_t>(k)].Intersect(
              row.out[static_cast<size_t>(k)]);
          hit = t[static_cast<size_t>(k)].valid();
        }
        if (!hit) return;
        // Step 2: de-relativize (rel_back): a = b + delta over the
        // intersected output interval t.
        for (int i = 0; i < m; ++i) {
          const InputCell& cell = row.in[static_cast<size_t>(i)];
          if (cell.is_relative()) {
            const Interval& tb = t[static_cast<size_t>(cell.ref)];
            out_box[static_cast<size_t>(i)] = tb.ShiftBy(cell.iv);
          } else {
            out_box[static_cast<size_t>(i)] = cell.iv;
          }
        }
        result.AddBox(out_box);
      });
  return result;
}

BoxTable ForwardThetaJoin(const BoxTable& query, const CompressedTable& table,
                          int num_threads) {
  DSLOG_CHECK(query.ndim() == table.in_ndim())
      << "forward query arity mismatch";
  if (num_threads > 1) {
    return PartitionedJoin(query, table.out_ndim(), num_threads,
                           [&table](const BoxTable& q) {
                             return ForwardThetaJoin(q, table, 1);
                           });
  }
  const int l = table.out_ndim();
  const int m = table.in_ndim();
  BoxTable result(l);
  std::vector<Interval> t(static_cast<size_t>(m));
  std::vector<Interval> out_box(static_cast<size_t>(l));

  // Implied absolute input intervals per row (attribute 0 drives the sweep).
  auto implied = [](const CompressedRow& row, int i) {
    const InputCell& cell = row.in[static_cast<size_t>(i)];
    return cell.is_relative()
               ? row.out[static_cast<size_t>(cell.ref)].ShiftBy(cell.iv)
               : cell.iv;
  };
  std::vector<Interval> row_attr0;
  row_attr0.reserve(static_cast<size_t>(table.num_rows()));
  for (const CompressedRow& row : table.rows())
    row_attr0.push_back(implied(row, 0));

  ForEachOverlappingPair(
      row_attr0, QueryAttr0(query), [&](int64_t ri, int64_t qb) {
        const CompressedRow& row = table.rows()[static_cast<size_t>(ri)];
        auto q = query.Box(qb);
        // Range join on the implied absolute input intervals.
        bool hit = true;
        for (int i = 0; i < m && hit; ++i) {
          t[static_cast<size_t>(i)] =
              q[static_cast<size_t>(i)].Intersect(implied(row, i));
          hit = t[static_cast<size_t>(i)].valid();
        }
        if (!hit) return;
        // De-relativize forward (clamped rel_for): each relative input
        // constrains its referenced output attribute to
        // [t.lo - d.hi, t.hi - d.lo], intersected with the row's bound.
        for (int j = 0; j < l; ++j)
          out_box[static_cast<size_t>(j)] = row.out[static_cast<size_t>(j)];
        bool feasible = true;
        for (int i = 0; i < m && feasible; ++i) {
          const InputCell& cell = row.in[static_cast<size_t>(i)];
          if (!cell.is_relative()) continue;
          const Interval& ti = t[static_cast<size_t>(i)];
          Interval constraint{ti.lo - cell.iv.hi, ti.hi - cell.iv.lo};
          Interval& target = out_box[static_cast<size_t>(cell.ref)];
          target = target.Intersect(constraint);
          feasible = target.valid();
        }
        if (!feasible) return;
        result.AddBox(out_box);
      });
  return result;
}

ForwardTable ForwardTable::FromBackward(const CompressedTable& table) {
  ForwardTable fwd;
  fwd.out_shape_ = table.out_shape();
  fwd.in_shape_ = table.in_shape();
  const int l = table.out_ndim();
  const int m = table.in_ndim();
  fwd.rows_.reserve(static_cast<size_t>(table.num_rows()));
  for (const CompressedRow& row : table.rows()) {
    Row fr;
    fr.in.resize(static_cast<size_t>(m));
    fr.out.resize(static_cast<size_t>(l));
    for (int j = 0; j < l; ++j)
      fr.out[static_cast<size_t>(j)].bound = row.out[static_cast<size_t>(j)];
    for (int i = 0; i < m; ++i) {
      const InputCell& cell = row.in[static_cast<size_t>(i)];
      if (cell.is_relative()) {
        fr.in[static_cast<size_t>(i)] =
            row.out[static_cast<size_t>(cell.ref)].ShiftBy(cell.iv);
        fr.out[static_cast<size_t>(cell.ref)].refs.push_back(
            {static_cast<int32_t>(i), cell.iv});
      } else {
        fr.in[static_cast<size_t>(i)] = cell.iv;
      }
    }
    fwd.rows_.push_back(std::move(fr));
  }
  return fwd;
}

BoxTable ForwardTable::Join(const BoxTable& query, int num_threads) const {
  DSLOG_CHECK(query.ndim() == in_ndim()) << "forward query arity mismatch";
  if (num_threads > 1) {
    return PartitionedJoin(
        query, out_ndim(), num_threads,
        [this](const BoxTable& q) { return Join(q, 1); });
  }
  const int l = out_ndim();
  const int m = in_ndim();
  BoxTable result(l);
  std::vector<Interval> t(static_cast<size_t>(m));
  std::vector<Interval> out_box(static_cast<size_t>(l));

  std::vector<Interval> row_attr0;
  row_attr0.reserve(rows_.size());
  for (const Row& row : rows_) row_attr0.push_back(row.in[0]);

  ForEachOverlappingPair(
      row_attr0, QueryAttr0(query), [&](int64_t ri, int64_t qb) {
        const Row& row = rows_[static_cast<size_t>(ri)];
        auto q = query.Box(qb);
        bool hit = true;
        for (int i = 0; i < m && hit; ++i) {
          t[static_cast<size_t>(i)] = q[static_cast<size_t>(i)].Intersect(
              row.in[static_cast<size_t>(i)]);
          hit = t[static_cast<size_t>(i)].valid();
        }
        if (!hit) return;
        bool feasible = true;
        for (int j = 0; j < l && feasible; ++j) {
          const OutputCell& cell = row.out[static_cast<size_t>(j)];
          Interval v = cell.bound;
          for (const auto& [ref, delta] : cell.refs) {
            const Interval& ti = t[static_cast<size_t>(ref)];
            v = v.Intersect({ti.lo - delta.hi, ti.hi - delta.lo});
            if (!v.valid()) break;
          }
          feasible = v.valid();
          out_box[static_cast<size_t>(j)] = v;
        }
        if (!feasible) return;
        result.AddBox(out_box);
      });
  return result;
}

}  // namespace dslog
