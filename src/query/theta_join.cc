#include "query/theta_join.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"

namespace dslog {

namespace {

// Plain-integer accumulator a kernel fills and flushes once at return.
// Keeps the profiling contract visible in the code: the per-candidate
// callbacks touch only these locals (registers), and the one FlushTo call
// per kernel invocation is the only place atomics appear.
struct LocalJoinCounters {
  int64_t probes = 0;
  int64_t rows_scanned = 0;
  int64_t rows_emitted = 0;
  int64_t path_probes[3] = {0, 0, 0};
  double est_rows = 0.0;
  double est_cost_ns[3] = {0.0, 0.0, 0.0};

  void FlushTo(JoinCounters* counters) const {
    if (counters == nullptr) return;
    counters->probes.fetch_add(probes, std::memory_order_relaxed);
    counters->rows_scanned.fetch_add(rows_scanned, std::memory_order_relaxed);
    counters->rows_emitted.fetch_add(rows_emitted, std::memory_order_relaxed);
    counters->est_rows_x1000.fetch_add(
        static_cast<int64_t>(std::llround(est_rows * 1000.0)),
        std::memory_order_relaxed);
    for (int k = 0; k < 3; ++k) {
      counters->path_probes[k].fetch_add(path_probes[k],
                                         std::memory_order_relaxed);
      counters->est_cost_ns_x1000[k].fetch_add(
          static_cast<int64_t>(std::llround(est_cost_ns[k] * 1000.0)),
          std::memory_order_relaxed);
    }
  }
};

// Per-probe path resolution, profiled flavor: records the planner's cost
// breakdown alongside the (identical) decision. The unprofiled kernels
// call ResolveAccessPath directly instead — no estimates, no bookkeeping.
AccessPath ResolveAndRecord(JoinPath join_path, const Interval& probe,
                            const IntervalColumnStats& stats,
                            LocalJoinCounters* local) {
  const PathCostEstimate e = EstimateAccessPathCosts(probe, stats);
  const AccessPath path = join_path == JoinPath::kAuto
                              ? e.chosen
                              : ResolveAccessPath(join_path, probe, stats);
  ++local->probes;
  ++local->path_probes[static_cast<int>(path)];
  local->est_rows += e.est_rows;
  for (int k = 0; k < 3; ++k) local->est_cost_ns[k] += e.cost_ns[k];
  return path;
}

// Pairwise tree reduction of per-worker output arenas on the shared pool.
// Round k combines fixed index pairs (2p, 2p+1) — an odd tail rides to the
// next round untouched — so the combine order (and therefore the exact
// output, merged or not) depends only on the part count, never on thread
// scheduling. Without merging, the reduction is pure concatenation in part
// order; with merging, every combine re-canonicalizes, keeping each
// intermediate table small instead of paying one big Merge at the end.
BoxTable TreeMergeParts(std::vector<BoxTable> parts, int result_ndim,
                        bool merge_result, int num_threads) {
  if (parts.empty()) return BoxTable(result_ndim);
  if (parts.size() == 1) return std::move(parts.front());
  // The reduction only runs for parallel joins, so two clock reads + a few
  // relaxed adds per call are amortized into the combine work.
  static metrics::Counter& merges =
      metrics::Registry::Global().counter("dslog.join.tree_merges");
  static metrics::Histogram& merge_us =
      metrics::Registry::Global().histogram("dslog.join.tree_merge_us");
  trace::Span span("TreeMergeParts", "join");
  span.Arg("parts", static_cast<int64_t>(parts.size()));
  WallTimer timer;
  while (parts.size() > 1) {
    const size_t pairs = parts.size() / 2;
    std::vector<BoxTable> next(parts.size() - pairs);
    ThreadPool::Shared().ParallelFor(
        static_cast<int64_t>(pairs),
        [&](int64_t p) {
          const size_t at = static_cast<size_t>(p);
          BoxTable combined = std::move(parts[2 * at]);
          combined.Append(parts[2 * at + 1]);
          if (merge_result) combined.Merge();
          next[at] = std::move(combined);
        },
        num_threads);
    if (parts.size() % 2 == 1) next.back() = std::move(parts.back());
    parts = std::move(next);
  }
  merges.Increment();
  merge_us.Record(static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
  return std::move(parts.front());
}

// Partitioned θ-join driver: splits the query boxes into `num_threads`
// contiguous slices, runs `join` (the single-threaded join closed over the
// stored table and its shared index) per slice into a private arena on the
// shared pool, then tree-reduces the arenas. Set-equivalent to
// join(query); with merge_result each worker canonicalizes its own arena
// before the merging reduction (no single-threaded epilogue remains).
template <typename JoinFn>
BoxTable PartitionedJoin(const BoxTable& query, int result_ndim,
                         int num_threads, bool merge_result, JoinFn&& join) {
  const int64_t nq = query.num_boxes();
  const int64_t chunks = std::min<int64_t>(num_threads, nq);
  if (chunks <= 1) {
    BoxTable result = join(query);
    if (merge_result) result.Merge();
    return result;
  }
  std::vector<BoxTable> parts(static_cast<size_t>(chunks));
  ThreadPool::Shared().ParallelFor(
      chunks,
      [&](int64_t c) {
        BoxTable part = join(query.Slice(c * nq / chunks, (c + 1) * nq / chunks));
        if (merge_result) part.Merge();
        parts[static_cast<size_t>(c)] = std::move(part);
      },
      num_threads);
  return TreeMergeParts(std::move(parts), result_ndim, merge_result,
                        num_threads);
}

// Planner input for a kernel: caller-provided stats (from the hop's v3
// footer entry) when valid, else the index's exact build-time stats.
const IntervalColumnStats& EffectiveStats(const IntervalColumnStats* stats,
                                          const IntervalIndex& index) {
  return (stats != nullptr && stats->valid()) ? *stats : index.stats();
}

// Single-threaded backward kernel over the columns. Each query box
// resolves its access path (forced or planned per probe) and enumerates
// the index through it; the candidate positions of the vectorized paths
// compact into `scratch` (common/simd.h), reused across boxes. Candidate
// emission order is path-invariant, so so is the output.
BoxTable BackwardKernel(const BoxTable& query, const CompressedTableView& t,
                        const IntervalIndex& index, JoinPath join_path,
                        const IntervalColumnStats& stats,
                        JoinCounters* counters) {
  const int32_t l = t.out_ndim;
  const int32_t m = t.in_ndim;
  const int64_t w = t.stride();
  BoxTable result(m);
  std::vector<int64_t> t_lo(static_cast<size_t>(l)), t_hi(static_cast<size_t>(l));
  std::vector<Interval> out_box(static_cast<size_t>(m));
  std::vector<int32_t> scratch;
  LocalJoinCounters local;

  for (int64_t qb = 0; qb < query.num_boxes(); ++qb) {
    const auto q = query.Box(qb);
    const AccessPath path =
        counters == nullptr
            ? ResolveAccessPath(join_path, q[0], stats)
            : ResolveAndRecord(join_path, q[0], stats, &local);
    index.ForEachOverlapping(q[0], path, &scratch, [&](int64_t r) {
      ++local.rows_scanned;
      const int64_t* row_lo = t.lo + r * w;
      const int64_t* row_hi = t.hi + r * w;
      // Step 1: joint intersection over the output attributes (attribute 0
      // overlaps by construction of the index probe). Branchless: every
      // attribute folds into `hit`, no early exit in the loop body.
      bool hit = true;
      for (int32_t k = 0; k < l; ++k) {
        const int64_t lo = std::max(q[static_cast<size_t>(k)].lo, row_lo[k]);
        const int64_t hi = std::min(q[static_cast<size_t>(k)].hi, row_hi[k]);
        t_lo[static_cast<size_t>(k)] = lo;
        t_hi[static_cast<size_t>(k)] = hi;
        hit &= lo <= hi;
      }
      if (!hit) return;
      // Step 2: de-relativize (rel_back): a = b + delta over the
      // intersected output interval t. Absolute cells (ref < 0) shift by
      // a zero base — one arithmetic select per bound, no per-kind branch.
      const int32_t* refs = t.ref + r * m;
      for (int32_t i = 0; i < m; ++i) {
        const int32_t rf = refs[i];
        const int64_t base_lo = rf >= 0 ? t_lo[static_cast<size_t>(rf)] : 0;
        const int64_t base_hi = rf >= 0 ? t_hi[static_cast<size_t>(rf)] : 0;
        out_box[static_cast<size_t>(i)] = {base_lo + row_lo[l + i],
                                           base_hi + row_hi[l + i]};
      }
      result.AddBox(out_box);
    });
  }
  local.rows_emitted = result.num_boxes();
  local.FlushTo(counters);
  return result;
}

// Single-threaded forward kernel over the columns, probing `index` (built
// over the rows' implied absolute input-attribute-0 intervals).
BoxTable ForwardKernel(const BoxTable& query, const CompressedTableView& t,
                       const IntervalIndex& index, JoinPath join_path,
                       JoinCounters* counters) {
  const int32_t l = t.out_ndim;
  const int32_t m = t.in_ndim;
  const int64_t w = t.stride();
  BoxTable result(l);
  std::vector<Interval> ti(static_cast<size_t>(m));
  std::vector<Interval> out_box(static_cast<size_t>(l));
  std::vector<int32_t> scratch;
  const IntervalColumnStats& stats = index.stats();
  LocalJoinCounters local;

  for (int64_t qb = 0; qb < query.num_boxes(); ++qb) {
    const auto q = query.Box(qb);
    const AccessPath path =
        counters == nullptr
            ? ResolveAccessPath(join_path, q[0], stats)
            : ResolveAndRecord(join_path, q[0], stats, &local);
    index.ForEachOverlapping(q[0], path, &scratch, [&](int64_t r) {
      ++local.rows_scanned;
      const int64_t* row_lo = t.lo + r * w;
      const int64_t* row_hi = t.hi + r * w;
      const int32_t* refs = t.ref + r * m;
      // Range join on the implied absolute input intervals.
      bool hit = true;
      for (int32_t i = 0; i < m; ++i) {
        const int32_t rf = refs[i];
        const int64_t base_lo = rf >= 0 ? row_lo[rf] : 0;
        const int64_t base_hi = rf >= 0 ? row_hi[rf] : 0;
        const int64_t lo =
            std::max(q[static_cast<size_t>(i)].lo, base_lo + row_lo[l + i]);
        const int64_t hi =
            std::min(q[static_cast<size_t>(i)].hi, base_hi + row_hi[l + i]);
        ti[static_cast<size_t>(i)] = {lo, hi};
        hit &= lo <= hi;
      }
      if (!hit) return;
      // De-relativize forward (clamped rel_for): each relative input
      // constrains its referenced output attribute to
      // [t.lo - d.hi, t.hi - d.lo], intersected with the row's bound.
      for (int32_t j = 0; j < l; ++j)
        out_box[static_cast<size_t>(j)] = {row_lo[j], row_hi[j]};
      bool feasible = true;
      for (int32_t i = 0; i < m; ++i) {
        const int32_t rf = refs[i];
        if (rf < 0) continue;
        const Interval& t_i = ti[static_cast<size_t>(i)];
        Interval& target = out_box[static_cast<size_t>(rf)];
        target.lo = std::max(target.lo, t_i.lo - row_hi[l + i]);
        target.hi = std::min(target.hi, t_i.hi - row_lo[l + i]);
        feasible &= target.lo <= target.hi;
      }
      if (!feasible) return;
      result.AddBox(out_box);
    });
  }
  local.rows_emitted = result.num_boxes();
  local.FlushTo(counters);
  return result;
}

}  // namespace

BoxTable BackwardThetaJoin(const BoxTable& query,
                           const CompressedTableView& table,
                           const IntervalIndex* index, int num_threads,
                           bool merge_result, JoinPath join_path,
                           const IntervalColumnStats* stats,
                           JoinCounters* counters) {
  DSLOG_CHECK(query.ndim() == table.out_ndim)
      << "backward query arity mismatch";
  IntervalIndex ephemeral;
  if (index == nullptr) {
    ephemeral = table.BuildBackwardIndex();
    index = &ephemeral;
  }
  const IntervalColumnStats& effective = EffectiveStats(stats, *index);
  if (num_threads > 1) {
    return PartitionedJoin(query, table.in_ndim, num_threads, merge_result,
                           [&table, index, join_path, &effective,
                            counters](const BoxTable& q) {
                             return BackwardKernel(q, table, *index, join_path,
                                                   effective, counters);
                           });
  }
  BoxTable result =
      BackwardKernel(query, table, *index, join_path, effective, counters);
  if (merge_result) result.Merge();
  return result;
}

BoxTable BackwardThetaJoin(const BoxTable& query, const CompressedTable& table,
                           int num_threads, bool merge_result,
                           JoinPath join_path, JoinCounters* counters) {
  std::shared_ptr<const IntervalIndex> index = table.BackwardIndex();
  return BackwardThetaJoin(query, table.view(), index.get(), num_threads,
                           merge_result, join_path, /*stats=*/nullptr,
                           counters);
}

BoxTable ForwardThetaJoin(const BoxTable& query,
                          const CompressedTableView& table, int num_threads,
                          bool merge_result, JoinPath join_path,
                          JoinCounters* counters) {
  DSLOG_CHECK(query.ndim() == table.in_ndim) << "forward query arity mismatch";
  // Implied absolute input-attribute-0 intervals drive the probe; they
  // depend on de-relativization, so the index is per call (its build cost
  // matches the sort the old sweep paid every call).
  const int32_t l = table.out_ndim;
  const int64_t w = table.stride();
  std::vector<int64_t> lo0(static_cast<size_t>(table.num_rows));
  std::vector<int64_t> hi0(static_cast<size_t>(table.num_rows));
  for (int64_t r = 0; r < table.num_rows; ++r) {
    const int64_t* row_lo = table.lo + r * w;
    const int64_t* row_hi = table.hi + r * w;
    const int32_t rf = table.ref[r * table.in_ndim];
    const int64_t base_lo = rf >= 0 ? row_lo[rf] : 0;
    const int64_t base_hi = rf >= 0 ? row_hi[rf] : 0;
    lo0[static_cast<size_t>(r)] = base_lo + row_lo[l];
    hi0[static_cast<size_t>(r)] = base_hi + row_hi[l];
  }
  IntervalIndex index(lo0.data(), hi0.data(), table.num_rows, 1);
  if (num_threads > 1) {
    return PartitionedJoin(query, table.out_ndim, num_threads, merge_result,
                           [&table, &index, join_path,
                            counters](const BoxTable& q) {
                             return ForwardKernel(q, table, index, join_path,
                                                  counters);
                           });
  }
  BoxTable result = ForwardKernel(query, table, index, join_path, counters);
  if (merge_result) result.Merge();
  return result;
}

BoxTable ForwardThetaJoin(const BoxTable& query, const CompressedTable& table,
                          int num_threads, bool merge_result,
                          JoinPath join_path, JoinCounters* counters) {
  return ForwardThetaJoin(query, table.view(), num_threads, merge_result,
                          join_path, counters);
}

ForwardTable ForwardTable::FromBackward(const CompressedTableView& table) {
  ForwardTable fwd;
  fwd.out_shape_.assign(table.out_shape, table.out_shape + table.out_ndim);
  fwd.in_shape_.assign(table.in_shape, table.in_shape + table.in_ndim);
  const int32_t l = table.out_ndim;
  const int32_t m = table.in_ndim;
  const int64_t n = table.num_rows;
  const int64_t w = table.stride();
  fwd.num_rows_ = n;
  fwd.in_lo_.resize(static_cast<size_t>(n * m));
  fwd.in_hi_.resize(static_cast<size_t>(n * m));
  fwd.out_lo_.resize(static_cast<size_t>(n * l));
  fwd.out_hi_.resize(static_cast<size_t>(n * l));
  fwd.ref_start_.assign(static_cast<size_t>(n * l) + 1, 0);

  // Pass 1: columns and per-(row, output attr) constraint counts.
  for (int64_t r = 0; r < n; ++r) {
    const int64_t* row_lo = table.lo + r * w;
    const int64_t* row_hi = table.hi + r * w;
    const int32_t* refs = table.ref + r * m;
    for (int32_t j = 0; j < l; ++j) {
      fwd.out_lo_[static_cast<size_t>(r * l + j)] = row_lo[j];
      fwd.out_hi_[static_cast<size_t>(r * l + j)] = row_hi[j];
    }
    for (int32_t i = 0; i < m; ++i) {
      const int32_t rf = refs[i];
      const int64_t base_lo = rf >= 0 ? row_lo[rf] : 0;
      const int64_t base_hi = rf >= 0 ? row_hi[rf] : 0;
      fwd.in_lo_[static_cast<size_t>(r * m + i)] = base_lo + row_lo[l + i];
      fwd.in_hi_[static_cast<size_t>(r * m + i)] = base_hi + row_hi[l + i];
      if (rf >= 0) ++fwd.ref_start_[static_cast<size_t>(r * l + rf) + 1];
    }
  }
  // Prefix-sum the counts into CSR offsets, then pass 2 fills the slots.
  for (size_t c = 1; c < fwd.ref_start_.size(); ++c)
    fwd.ref_start_[c] += fwd.ref_start_[c - 1];
  const int32_t total = fwd.ref_start_.back();
  fwd.ref_in_.resize(static_cast<size_t>(total));
  fwd.ref_dlo_.resize(static_cast<size_t>(total));
  fwd.ref_dhi_.resize(static_cast<size_t>(total));
  std::vector<int32_t> cursor(fwd.ref_start_.begin(), fwd.ref_start_.end() - 1);
  for (int64_t r = 0; r < n; ++r) {
    const int64_t* row_lo = table.lo + r * w;
    const int64_t* row_hi = table.hi + r * w;
    const int32_t* refs = table.ref + r * m;
    for (int32_t i = 0; i < m; ++i) {
      const int32_t rf = refs[i];
      if (rf < 0) continue;
      int32_t& slot = cursor[static_cast<size_t>(r * l + rf)];
      fwd.ref_in_[static_cast<size_t>(slot)] = i;
      fwd.ref_dlo_[static_cast<size_t>(slot)] = row_lo[l + i];
      fwd.ref_dhi_[static_cast<size_t>(slot)] = row_hi[l + i];
      ++slot;
    }
  }
  fwd.in0_index_ = IntervalIndex(fwd.in_lo_.data(), fwd.in_hi_.data(), n,
                                 static_cast<int64_t>(m));
  return fwd;
}

BoxTable ForwardTable::Join(const BoxTable& query, int num_threads,
                            bool merge_result, JoinPath join_path,
                            JoinCounters* counters) const {
  DSLOG_CHECK(query.ndim() == in_ndim()) << "forward query arity mismatch";
  if (num_threads > 1 || merge_result) {
    return PartitionedJoin(
        query, out_ndim(), num_threads, merge_result,
        [this, join_path, counters](const BoxTable& q) {
          return Join(q, 1, false, join_path, counters);
        });
  }
  const int32_t l = static_cast<int32_t>(out_ndim());
  const int32_t m = static_cast<int32_t>(in_ndim());
  BoxTable result(l);
  std::vector<Interval> ti(static_cast<size_t>(m));
  std::vector<Interval> out_box(static_cast<size_t>(l));
  std::vector<int32_t> scratch;
  const IntervalColumnStats& stats = in0_index_.stats();
  LocalJoinCounters local;

  for (int64_t qb = 0; qb < query.num_boxes(); ++qb) {
    const auto q = query.Box(qb);
    const AccessPath path =
        counters == nullptr
            ? ResolveAccessPath(join_path, q[0], stats)
            : ResolveAndRecord(join_path, q[0], stats, &local);
    in0_index_.ForEachOverlapping(q[0], path, &scratch, [&](int64_t r) {
      ++local.rows_scanned;
      const int64_t* row_in_lo = in_lo_.data() + r * m;
      const int64_t* row_in_hi = in_hi_.data() + r * m;
      bool hit = true;
      for (int32_t i = 0; i < m; ++i) {
        const int64_t lo = std::max(q[static_cast<size_t>(i)].lo, row_in_lo[i]);
        const int64_t hi = std::min(q[static_cast<size_t>(i)].hi, row_in_hi[i]);
        ti[static_cast<size_t>(i)] = {lo, hi};
        hit &= lo <= hi;
      }
      if (!hit) return;
      bool feasible = true;
      for (int32_t j = 0; j < l && feasible; ++j) {
        const size_t c = static_cast<size_t>(r * l + j);
        Interval v = {out_lo_[c], out_hi_[c]};
        for (int32_t s = ref_start_[c]; s < ref_start_[c + 1]; ++s) {
          const Interval& t_i = ti[static_cast<size_t>(ref_in_[static_cast<size_t>(s)])];
          v.lo = std::max(v.lo, t_i.lo - ref_dhi_[static_cast<size_t>(s)]);
          v.hi = std::min(v.hi, t_i.hi - ref_dlo_[static_cast<size_t>(s)]);
          if (v.lo > v.hi) break;
        }
        feasible = v.lo <= v.hi;
        out_box[static_cast<size_t>(j)] = v;
      }
      if (!feasible) return;
      result.AddBox(out_box);
    });
  }
  local.rows_emitted = result.num_boxes();
  local.FlushTo(counters);
  return result;
}

}  // namespace dslog
