#include "query/box.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "common/check.h"

namespace dslog {

BoxTable BoxTable::FromCells(int ndim, const std::vector<int64_t>& cells) {
  DSLOG_CHECK(ndim > 0);
  DSLOG_CHECK(cells.size() % static_cast<size_t>(ndim) == 0);
  BoxTable t(ndim);
  t.flat_.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i)
    t.flat_.push_back(Interval::Point(cells[i]));
  t.Merge();
  return t;
}

void BoxTable::Append(const BoxTable& other) {
  if (other.empty()) return;
  DSLOG_CHECK(other.ndim_ == ndim_) << "Append arity mismatch";
  flat_.insert(flat_.end(), other.flat_.begin(), other.flat_.end());
}

BoxTable BoxTable::Slice(int64_t begin, int64_t end) const {
  DSLOG_CHECK(0 <= begin && begin <= end && end <= num_boxes());
  BoxTable t(ndim_);
  t.flat_.assign(flat_.begin() + begin * ndim_, flat_.begin() + end * ndim_);
  return t;
}

BoxTable BoxTable::FromBox(std::vector<Interval> box) {
  BoxTable t(static_cast<int>(box.size()));
  t.flat_ = std::move(box);
  return t;
}

void BoxTable::Merge() {
  if (ndim_ == 0 || flat_.empty()) return;
  // One coalescing pass per attribute, last attribute first (mirrors the
  // ProvRC step-1 order), plus duplicate elimination.
  for (int target = ndim_ - 1; target >= 0; --target) {
    int64_t n = num_boxes();
    std::vector<int64_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      auto ba = Box(a);
      auto bb = Box(b);
      for (int k = 0; k < ndim_; ++k) {
        if (k == target) continue;
        int c = CompareIntervals(ba[static_cast<size_t>(k)], bb[static_cast<size_t>(k)]);
        if (c != 0) return c < 0;
      }
      return CompareIntervals(ba[static_cast<size_t>(target)],
                              bb[static_cast<size_t>(target)]) < 0;
    });

    std::vector<Interval> merged;
    merged.reserve(flat_.size());
    std::vector<Interval> acc;
    bool open = false;
    auto flush = [&]() {
      if (open) merged.insert(merged.end(), acc.begin(), acc.end());
      open = false;
    };
    for (int64_t idx : order) {
      auto box = Box(idx);
      if (!open) {
        acc.assign(box.begin(), box.end());
        open = true;
        continue;
      }
      bool same_others = true;
      for (int k = 0; k < ndim_ && same_others; ++k)
        if (k != target &&
            !(acc[static_cast<size_t>(k)] == box[static_cast<size_t>(k)]))
          same_others = false;
      const Interval& cur = acc[static_cast<size_t>(target)];
      const Interval& next = box[static_cast<size_t>(target)];
      if (same_others && cur == next) continue;  // exact duplicate box
      if (same_others && cur.AdjacentBefore(next)) {
        acc[static_cast<size_t>(target)].hi = next.hi;
        continue;
      }
      // Also coalesce overlapping intervals (unions stay unions).
      if (same_others && next.lo <= cur.hi + 1) {
        acc[static_cast<size_t>(target)].hi = std::max(cur.hi, next.hi);
        continue;
      }
      flush();
      acc.assign(box.begin(), box.end());
      open = true;
    }
    flush();
    flat_ = std::move(merged);
  }
}

std::vector<int64_t> BoxTable::ExpandToCells() const {
  std::set<std::vector<int64_t>> cells;
  std::vector<int64_t> point(static_cast<size_t>(ndim_));
  for (int64_t b = 0; b < num_boxes(); ++b) {
    auto box = Box(b);
    for (size_t k = 0; k < box.size(); ++k) point[k] = box[k].lo;
    while (true) {
      cells.insert(point);
      int k = ndim_;
      bool done = true;
      while (k > 0) {
        --k;
        if (point[static_cast<size_t>(k)] < box[static_cast<size_t>(k)].hi) {
          ++point[static_cast<size_t>(k)];
          for (int j = k + 1; j < ndim_; ++j)
            point[static_cast<size_t>(j)] = box[static_cast<size_t>(j)].lo;
          done = false;
          break;
        }
      }
      if (done) break;
    }
  }
  std::vector<int64_t> out;
  out.reserve(cells.size() * static_cast<size_t>(ndim_));
  for (const auto& c : cells) out.insert(out.end(), c.begin(), c.end());
  return out;
}

std::string BoxTable::DebugString(int64_t max_boxes) const {
  std::ostringstream os;
  os << "BoxTable(ndim=" << ndim_ << ", boxes=" << num_boxes() << ")\n";
  int64_t n = std::min(num_boxes(), max_boxes);
  for (int64_t i = 0; i < n; ++i) {
    os << "  (";
    auto box = Box(i);
    for (size_t k = 0; k < box.size(); ++k) {
      if (k) os << ", ";
      os << box[k].ToString();
    }
    os << ")\n";
  }
  if (num_boxes() > max_boxes) os << "  ...\n";
  return os.str();
}

}  // namespace dslog
