// Sort-sweep interval join: enumerates all (left, right) index pairs whose
// intervals overlap, in O((n + m) log(n + m) + output). This is the range
// join kernel behind the θ-joins (§V.B step 1) — the first attribute is
// joined by sweep, remaining attributes are verified per candidate pair.

#ifndef DSLOG_QUERY_INTERVAL_SWEEP_H_
#define DSLOG_QUERY_INTERVAL_SWEEP_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "provrc/interval.h"

namespace dslog {

/// Calls fn(left_index, right_index) for every pair with
/// left[i].Intersects(right[j]). Both vectors may be in any order. Pairs
/// are emitted in no particular order.
template <typename Fn>
void ForEachOverlappingPair(const std::vector<Interval>& left,
                            const std::vector<Interval>& right, Fn&& fn) {
  // Event sweep over interval low endpoints. The active sets are flat
  // (hi, index) vectors pruned in the same pass that emits pairs: events
  // arrive in nondecreasing lo order, so an active entry whose hi falls
  // below the current event's lo can never overlap anything again and is
  // swap-erased on sight. This replaces the former std::multiset active
  // sets — the emission scan already visits every live entry per event, so
  // ordered-container node allocation and rebalancing bought nothing and
  // dominated the join inner loop's allocator traffic.
  struct Item {
    int64_t lo;
    int64_t hi;
    int64_t index;
  };
  std::vector<Item> ls, rs;
  ls.reserve(left.size());
  rs.reserve(right.size());
  for (size_t i = 0; i < left.size(); ++i)
    ls.push_back({left[i].lo, left[i].hi, static_cast<int64_t>(i)});
  for (size_t j = 0; j < right.size(); ++j)
    rs.push_back({right[j].lo, right[j].hi, static_cast<int64_t>(j)});
  auto by_lo = [](const Item& a, const Item& b) { return a.lo < b.lo; };
  std::sort(ls.begin(), ls.end(), by_lo);
  std::sort(rs.begin(), rs.end(), by_lo);

  std::vector<std::pair<int64_t, int64_t>> active_left, active_right;
  size_t li = 0, ri = 0;
  while (li < ls.size() || ri < rs.size()) {
    bool take_left =
        ri >= rs.size() || (li < ls.size() && ls[li].lo <= rs[ri].lo);
    const Item& item = take_left ? ls[li++] : rs[ri++];
    auto& opposite = take_left ? active_right : active_left;
    auto& own = take_left ? active_left : active_right;
    for (size_t k = 0; k < opposite.size();) {
      if (opposite[k].first < item.lo) {  // expired: ends before we start
        opposite[k] = opposite.back();
        opposite.pop_back();
      } else {
        if (take_left)
          fn(item.index, opposite[k].second);
        else
          fn(opposite[k].second, item.index);
        ++k;
      }
    }
    own.push_back({item.hi, item.index});
  }
}

}  // namespace dslog

#endif  // DSLOG_QUERY_INTERVAL_SWEEP_H_
