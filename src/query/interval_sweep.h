// Sort-sweep interval join: enumerates all (left, right) index pairs whose
// intervals overlap, in O((n + m) log(n + m) + output). This is the range
// join kernel behind the θ-joins (§V.B step 1) — the first attribute is
// joined by sweep, remaining attributes are verified per candidate pair.

#ifndef DSLOG_QUERY_INTERVAL_SWEEP_H_
#define DSLOG_QUERY_INTERVAL_SWEEP_H_

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "provrc/interval.h"

namespace dslog {

/// Calls fn(left_index, right_index) for every pair with
/// left[i].Intersects(right[j]). Both vectors may be in any order.
template <typename Fn>
void ForEachOverlappingPair(const std::vector<Interval>& left,
                            const std::vector<Interval>& right, Fn&& fn) {
  // Event sweep over interval low endpoints with lazily-pruned active sets
  // ordered by high endpoint.
  struct Item {
    int64_t lo;
    int64_t hi;
    int64_t index;
  };
  std::vector<Item> ls, rs;
  ls.reserve(left.size());
  rs.reserve(right.size());
  for (size_t i = 0; i < left.size(); ++i)
    ls.push_back({left[i].lo, left[i].hi, static_cast<int64_t>(i)});
  for (size_t j = 0; j < right.size(); ++j)
    rs.push_back({right[j].lo, right[j].hi, static_cast<int64_t>(j)});
  auto by_lo = [](const Item& a, const Item& b) { return a.lo < b.lo; };
  std::sort(ls.begin(), ls.end(), by_lo);
  std::sort(rs.begin(), rs.end(), by_lo);

  // Active sets ordered by (hi, index) for range pruning.
  std::multiset<std::pair<int64_t, int64_t>> active_left, active_right;
  size_t li = 0, ri = 0;
  while (li < ls.size() || ri < rs.size()) {
    bool take_left =
        ri >= rs.size() || (li < ls.size() && ls[li].lo <= rs[ri].lo);
    if (take_left) {
      const Item& item = ls[li++];
      // Drop right intervals that end before this left interval starts.
      active_right.erase(active_right.begin(),
                         active_right.lower_bound({item.lo, INT64_MIN}));
      for (const auto& [hi, j] : active_right) fn(item.index, j);
      active_left.insert({item.hi, item.index});
    } else {
      const Item& item = rs[ri++];
      active_left.erase(active_left.begin(),
                        active_left.lower_bound({item.lo, INT64_MIN}));
      for (const auto& [hi, i] : active_left) fn(i, item.index);
      active_right.insert({item.hi, item.index});
    }
  }
}

}  // namespace dslog

#endif  // DSLOG_QUERY_INTERVAL_SWEEP_H_
