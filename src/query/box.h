// BoxTable: a union of axis-aligned integer boxes (one interval per
// attribute). Queries (Q'), θ-join intermediates (T), and query results are
// all box tables (ICDE'24 §V). Includes the projection/merge row-reduction
// optimization of §V.B.3.

#ifndef DSLOG_QUERY_BOX_H_
#define DSLOG_QUERY_BOX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "provrc/interval.h"

namespace dslog {

/// Union of k-dimensional boxes over array indices.
class BoxTable {
 public:
  BoxTable() = default;
  explicit BoxTable(int ndim) : ndim_(ndim) {}

  int ndim() const { return ndim_; }
  int64_t num_boxes() const {
    return ndim_ == 0 ? 0 : static_cast<int64_t>(flat_.size()) / ndim_;
  }
  bool empty() const { return flat_.empty(); }

  void AddBox(std::span<const Interval> box) {
    flat_.insert(flat_.end(), box.begin(), box.end());
  }

  /// Appends every box of `other` (same arity required). Used to
  /// concatenate per-worker partial results of a partitioned θ-join.
  void Append(const BoxTable& other);

  /// The contiguous sub-table of boxes [begin, end) as one bulk copy (the
  /// per-worker query slice of a partitioned θ-join).
  BoxTable Slice(int64_t begin, int64_t end) const;

  std::span<const Interval> Box(int64_t i) const {
    return {flat_.data() + i * ndim_, static_cast<size_t>(ndim_)};
  }
  std::span<Interval> MutableBox(int64_t i) {
    return {flat_.data() + i * ndim_, static_cast<size_t>(ndim_)};
  }

  /// Builds a degenerate-box table from explicit cell indices (flattened
  /// tuples of length ndim), then range-encodes it.
  static BoxTable FromCells(int ndim, const std::vector<int64_t>& cells);

  /// Builds a single-box table.
  static BoxTable FromBox(std::vector<Interval> box);

  /// Coalesces adjacent boxes attribute-by-attribute (the same greedy
  /// multi-attribute range encoding ProvRC uses) and drops exact duplicates.
  void Merge();

  /// Expands to explicit sorted, deduplicated cell tuples. Intended for
  /// result checking and small final answers.
  std::vector<int64_t> ExpandToCells() const;

  /// Number of distinct cells covered (computed via expansion; test helper).
  int64_t NumDistinctCells() const {
    return static_cast<int64_t>(ExpandToCells().size()) / std::max(1, ndim_);
  }

  std::string DebugString(int64_t max_boxes = 20) const;

 private:
  int ndim_ = 0;
  std::vector<Interval> flat_;
};

}  // namespace dslog

#endif  // DSLOG_QUERY_BOX_H_
