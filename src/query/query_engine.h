// Multi-hop lineage query evaluation over compressed tables: the left-to-
// right θ-join plan with projection + row-reduction merge between hops
// (ICDE'24 §V.B.3). Also hosts the uncompressed natural-join evaluation
// used as ground truth and by the storage-format baselines.

#ifndef DSLOG_QUERY_QUERY_ENGINE_H_
#define DSLOG_QUERY_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "lineage/lineage_relation.h"
#include "provrc/compressed_table.h"
#include "provrc/interval_index.h"
#include "query/box.h"
#include "query/join_planner.h"

namespace dslog {

class ForwardTable;

/// One step in a query path: a columnar view of the hop's stored table
/// (owned arenas or bytes borrowed from an mmap'd LogStore segment) plus
/// the traversal direction. `forward` means the traversal goes from the
/// stored relation's input array to its output array. When a materialized
/// forward representation (§IV.C) is available it can be supplied in
/// `forward_table` and is used for forward hops instead of the direct join
/// over the backward representation.
struct QueryHop {
  QueryHop() = default;
  /// Hop over an owned table: captures its view and shares its cached
  /// backward index. The table itself must outlive the hop (as before);
  /// the pin keeps only the index alive.
  QueryHop(const CompressedTable* table, bool forward,
           const ForwardTable* forward_table = nullptr)
      : table(table->view()), forward(forward), forward_table(forward_table) {
    auto idx = table->BackwardIndex();
    index = idx.get();
    pin = std::move(idx);
  }

  CompressedTableView table;
  bool forward = false;
  const ForwardTable* forward_table = nullptr;
  /// Sorted interval index over the table's output attribute 0 (backward
  /// hops probe it instead of scanning). nullptr = build ephemerally.
  const IntervalIndex* index = nullptr;
  /// Keeps the view's backing storage (and `index`) alive for the query:
  /// hops over lazily-decoded LogStore segments pin the cache entry here
  /// so a concurrent eviction cannot free it mid-query.
  std::shared_ptr<const void> pin;
  /// Output-attribute-0 interval-column stats for the join planner,
  /// available without touching the segment bytes (v3 LogStore footers
  /// carry them). Backward hops only — a forward hop's probe column is
  /// derived per call, so its planner uses the per-call index's stats.
  /// Default (invalid) falls back to the hop index's exact stats.
  IntervalColumnStats stats;
};

/// Per-hop observability record of a profiled query. Storage fields are
/// filled by DSLog::ProvQuery (which knows the edge and how its segment
/// resolved); join fields by InSituQuery from the hop's JoinCounters.
struct HopProfile {
  // --- edge identity (empty for hand-built InSituQuery hop vectors) ---
  std::string in_arr;
  std::string out_arr;
  std::string op_name;
  bool forward = false;
  /// Forward hop served by the materialized §IV.C representation.
  bool used_forward_table = false;

  // --- segment resolution (LogStore-backed hops only) ---
  bool from_store = false;  // hop resolved through a LogStore segment
  bool cache_hit = false;   // served from the decode LRU, no resolve paid
  bool borrowed = false;    // v2 zero-copy borrow (no decode, no copy)
  int64_t segment_bytes = 0;        // on-disk segment length
  int64_t bytes_decompressed = 0;   // gzip input consumed by this resolve
  int64_t rows_materialized = 0;    // rows copied into owned arenas
  int64_t resolve_us = 0;           // checksum + decode + index build

  // --- θ-join execution ---
  int64_t table_rows = 0;    // rows of the hop's stored table
  int64_t probes = 0;        // query boxes probed into the hop
  int64_t rows_scanned = 0;  // candidate rows the interval index enumerated
  int64_t rows_emitted = 0;  // boxes emitted by the kernels (pre-Merge)
  int64_t result_boxes = 0;  // boxes handed to the next hop (post-Merge)
  /// The path the caller requested (kAuto = planner decides per probe).
  JoinPath requested_path = JoinPath::kAuto;
  /// Probes resolved to each concrete AccessPath (index by AccessPath:
  /// kIndexProbe, kSortedSweep, kFullScan).
  int64_t path_probes[3] = {0, 0, 0};
  /// Planner-expected candidate rows (sum over probes) — compare against
  /// rows_scanned for the mispredict ratio.
  double est_rows = 0.0;
  /// Planner cost-model output per path in relative ns (sum over probes).
  double est_cost_ns[3] = {0.0, 0.0, 0.0};
  double wall_ms = 0.0;
};

/// Observability record of one profiled query (QueryOptions::profile).
/// Collection costs one JoinCounters flush per kernel invocation and a few
/// clock reads per hop — nothing in the per-candidate inner loops.
struct QueryProfile {
  std::string simd_isa;  // compile-time SIMD dispatch (common/simd.h)
  int num_threads = 1;
  bool merge_between_hops = true;
  double wall_ms = 0.0;
  int64_t result_boxes = 0;
  std::vector<HopProfile> hops;

  /// One JSON object (stable field order; hops as an array).
  std::string ToJson() const;
  /// Human-readable multi-line dump (one hop per line).
  std::string ToText() const;
};

struct QueryOptions {
  /// Projection + adjacent-interval merge between hops (§V.B.3). Disabling
  /// reproduces the DSLog-NoMerge baseline of Fig 9.
  bool merge_between_hops = true;
  /// Threads used to evaluate each θ-join: >= 2 partitions the hop's
  /// query-box table across the shared ThreadPool, each worker filling (and
  /// with merge_between_hops, canonicalizing) a private output arena, with
  /// the arenas combined pairwise tree-wise on the pool — no
  /// single-threaded Merge epilogue. 1 is the paper's single-threaded plan.
  /// Results are set-equivalent across settings. DSLog::ProvQueryBatch
  /// also uses this as the fan-out width across batch entries.
  int num_threads = 1;
  /// Access-path selection for every θ-join probe of the query. kAuto
  /// lets the cost-based planner (query/join_planner.h) choose per probe
  /// from the hop's interval-column stats; the other values force the
  /// index probe / SIMD sorted sweep / SIMD full scan. Any setting
  /// returns bit-identical results — this knob only trades time.
  JoinPath join_path = JoinPath::kAuto;
  /// Collect a QueryProfile (pass one to InSituQuery/ProvQuery) and enable
  /// trace spans (common/trace.h) for the query's duration. false keeps
  /// the hot path exactly as unprofiled builds always ran it: no planner
  /// estimates, no atomics in join inner loops, no clock reads per hop.
  bool profile = false;
  /// Cooperative cancellation, polled at hop boundaries only (never inside
  /// a join inner loop): DSLog::ProvQuery polls before resolving each
  /// hop's segment, InSituQuery before running each hop's θ-join. Non-
  /// owning — the token must outlive the query (the network server keeps
  /// one per in-flight request and cancels it on a Cancel frame or session
  /// teardown). A cancelled ProvQuery returns Status::Cancelled with every
  /// hop pin released; a cancelled bare InSituQuery returns an empty
  /// table. nullptr (the default) costs nothing.
  CancelToken* cancel = nullptr;
};

/// Evaluates a multi-hop in-situ query: `query` holds boxes over the first
/// array on the path; the result holds boxes over the last array.
/// With `options.profile` set and `profile` non-null, fills `profile` with
/// per-hop execution detail; hop entries that already exist (DSLog::
/// ProvQuery pre-fills edge identity and segment-resolution fields) keep
/// those fields and gain the join fields.
BoxTable InSituQuery(const std::vector<QueryHop>& hops, const BoxTable& query,
                     const QueryOptions& options = {},
                     QueryProfile* profile = nullptr);

/// One step over an *uncompressed* relation. `frontier` holds flattened
/// cell tuples of the current array (arity = relation side arity).
/// Returns the flattened tuples of the far side. Hash natural join.
std::vector<int64_t> RelationJoinStep(const LineageRelation& relation,
                                      bool forward,
                                      const std::vector<int64_t>& frontier);

/// Multi-hop uncompressed query (the Raw/baseline execution path and the
/// ground truth for property tests).
struct RelationHop {
  const LineageRelation* relation = nullptr;
  bool forward = false;
};
std::vector<int64_t> UncompressedQuery(const std::vector<RelationHop>& hops,
                                       const std::vector<int64_t>& query_cells);

}  // namespace dslog

#endif  // DSLOG_QUERY_QUERY_ENGINE_H_
