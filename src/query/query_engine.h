// Multi-hop lineage query evaluation over compressed tables: the left-to-
// right θ-join plan with projection + row-reduction merge between hops
// (ICDE'24 §V.B.3). Also hosts the uncompressed natural-join evaluation
// used as ground truth and by the storage-format baselines.

#ifndef DSLOG_QUERY_QUERY_ENGINE_H_
#define DSLOG_QUERY_QUERY_ENGINE_H_

#include <memory>
#include <vector>

#include "lineage/lineage_relation.h"
#include "provrc/compressed_table.h"
#include "provrc/interval_index.h"
#include "query/box.h"
#include "query/join_planner.h"

namespace dslog {

class ForwardTable;

/// One step in a query path: a columnar view of the hop's stored table
/// (owned arenas or bytes borrowed from an mmap'd LogStore segment) plus
/// the traversal direction. `forward` means the traversal goes from the
/// stored relation's input array to its output array. When a materialized
/// forward representation (§IV.C) is available it can be supplied in
/// `forward_table` and is used for forward hops instead of the direct join
/// over the backward representation.
struct QueryHop {
  QueryHop() = default;
  /// Hop over an owned table: captures its view and shares its cached
  /// backward index. The table itself must outlive the hop (as before);
  /// the pin keeps only the index alive.
  QueryHop(const CompressedTable* table, bool forward,
           const ForwardTable* forward_table = nullptr)
      : table(table->view()), forward(forward), forward_table(forward_table) {
    auto idx = table->BackwardIndex();
    index = idx.get();
    pin = std::move(idx);
  }

  CompressedTableView table;
  bool forward = false;
  const ForwardTable* forward_table = nullptr;
  /// Sorted interval index over the table's output attribute 0 (backward
  /// hops probe it instead of scanning). nullptr = build ephemerally.
  const IntervalIndex* index = nullptr;
  /// Keeps the view's backing storage (and `index`) alive for the query:
  /// hops over lazily-decoded LogStore segments pin the cache entry here
  /// so a concurrent eviction cannot free it mid-query.
  std::shared_ptr<const void> pin;
  /// Output-attribute-0 interval-column stats for the join planner,
  /// available without touching the segment bytes (v3 LogStore footers
  /// carry them). Backward hops only — a forward hop's probe column is
  /// derived per call, so its planner uses the per-call index's stats.
  /// Default (invalid) falls back to the hop index's exact stats.
  IntervalColumnStats stats;
};

struct QueryOptions {
  /// Projection + adjacent-interval merge between hops (§V.B.3). Disabling
  /// reproduces the DSLog-NoMerge baseline of Fig 9.
  bool merge_between_hops = true;
  /// Threads used to evaluate each θ-join: >= 2 partitions the hop's
  /// query-box table across the shared ThreadPool, each worker filling (and
  /// with merge_between_hops, canonicalizing) a private output arena, with
  /// the arenas combined pairwise tree-wise on the pool — no
  /// single-threaded Merge epilogue. 1 is the paper's single-threaded plan.
  /// Results are set-equivalent across settings. DSLog::ProvQueryBatch
  /// also uses this as the fan-out width across batch entries.
  int num_threads = 1;
  /// Access-path selection for every θ-join probe of the query. kAuto
  /// lets the cost-based planner (query/join_planner.h) choose per probe
  /// from the hop's interval-column stats; the other values force the
  /// index probe / SIMD sorted sweep / SIMD full scan. Any setting
  /// returns bit-identical results — this knob only trades time.
  JoinPath join_path = JoinPath::kAuto;
};

/// Evaluates a multi-hop in-situ query: `query` holds boxes over the first
/// array on the path; the result holds boxes over the last array.
BoxTable InSituQuery(const std::vector<QueryHop>& hops, const BoxTable& query,
                     const QueryOptions& options = {});

/// One step over an *uncompressed* relation. `frontier` holds flattened
/// cell tuples of the current array (arity = relation side arity).
/// Returns the flattened tuples of the far side. Hash natural join.
std::vector<int64_t> RelationJoinStep(const LineageRelation& relation,
                                      bool forward,
                                      const std::vector<int64_t>& frontier);

/// Multi-hop uncompressed query (the Raw/baseline execution path and the
/// ground truth for property tests).
struct RelationHop {
  const LineageRelation* relation = nullptr;
  bool forward = false;
};
std::vector<int64_t> UncompressedQuery(const std::vector<RelationHop>& hops,
                                       const std::vector<int64_t>& query_cells);

}  // namespace dslog

#endif  // DSLOG_QUERY_QUERY_ENGINE_H_
