// The θ-join access-path planner: picks, per probe, how a hop enumerates
// its interval index — tree probe, sorted sweep, or full vectorized scan
// (provrc/interval_index.h) — from a cost model over the per-segment
// interval-column stats carried in v3 LogStore footers (or computed at
// index build). The model's per-element costs are *measured*, not guessed:
// they come from the selectivity-swept BM_BackwardJoinSweep cases in
// bench/bench_micro_query.cc (see docs/ARCHITECTURE.md for the crossover
// table). Every path returns bit-identical results, so the planner only
// ever trades time, never answers; QueryOptions::join_path forces a path
// for tests, benches, and pathological inputs.

#ifndef DSLOG_QUERY_JOIN_PLANNER_H_
#define DSLOG_QUERY_JOIN_PLANNER_H_

#include <cstdint>

#include "provrc/interval.h"
#include "provrc/interval_index.h"

namespace dslog {

/// User-facing path selection (QueryOptions::join_path and the θ-join
/// entry points). kAuto defers to the cost model per probe; the other
/// values force the matching AccessPath for every probe of the join.
enum class JoinPath : uint8_t {
  kAuto = 0,
  kIndexProbe = 1,
  kSortedSweep = 2,
  kFullScan = 3,
};

const char* JoinPathName(JoinPath path);

/// Cost-model choice for one probe against a column with `stats`.
/// Estimates the probe's prefix fraction (rows with lo <= probe.hi) and
/// hit fraction under a uniform-lo model and picks the cheapest
/// enumeration. Falls back to the tree probe when stats are unknown (it
/// is the only path whose cost stays output-sensitive).
AccessPath ChooseAccessPath(const Interval& probe,
                            const IntervalColumnStats& stats);

/// The planner's full cost breakdown for one probe — the auditable form
/// recorded into QueryProfile when QueryOptions::profile is set. `chosen`
/// always equals ChooseAccessPath(probe, stats); the costs and expected
/// candidate count expose *why*, so mispredict ratios (estimated vs actual
/// rows) can be asserted against the model.
struct PathCostEstimate {
  /// Modeled enumeration cost in relative ns, indexed by AccessPath
  /// (kIndexProbe, kSortedSweep, kFullScan). Zero when the decision came
  /// from a shortcut (tiny table, unknown stats) — no costs were compared.
  double cost_ns[3] = {0.0, 0.0, 0.0};
  /// Expected candidate rows the probe enumerates (hit fraction x rows)
  /// under the uniform-lo model; 0 when stats are unknown.
  double est_rows = 0.0;
  AccessPath chosen = AccessPath::kIndexProbe;
};

/// ChooseAccessPath plus the model internals. Only the profiled kernels
/// call this — the unprofiled hot path keeps the estimate-free form.
PathCostEstimate EstimateAccessPathCosts(const Interval& probe,
                                         const IntervalColumnStats& stats);

/// Resolves a (possibly kAuto) JoinPath into the concrete AccessPath for
/// one probe.
inline AccessPath ResolveAccessPath(JoinPath path, const Interval& probe,
                                    const IntervalColumnStats& stats) {
  switch (path) {
    case JoinPath::kIndexProbe:
      return AccessPath::kIndexProbe;
    case JoinPath::kSortedSweep:
      return AccessPath::kSortedSweep;
    case JoinPath::kFullScan:
      return AccessPath::kFullScan;
    case JoinPath::kAuto:
      break;
  }
  return ChooseAccessPath(probe, stats);
}

}  // namespace dslog

#endif  // DSLOG_QUERY_JOIN_PLANNER_H_
