#include "query/query_engine.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/simd.h"
#include "common/timer.h"
#include "common/trace.h"
#include "query/theta_join.h"

namespace dslog {

namespace {

constexpr const char* kAccessPathNames[3] = {"index_probe", "sorted_sweep",
                                             "full_scan"};

/// One hop's θ-join, dispatched by direction/representation. `counters`
/// rides through to the kernels (nullptr = unprofiled).
BoxTable RunHop(const QueryHop& hop, const BoxTable& current, int num_threads,
                bool merge, JoinPath join_path, JoinCounters* counters) {
  if (hop.forward) {
    return hop.forward_table != nullptr
               ? hop.forward_table->Join(current, num_threads, merge,
                                         join_path, counters)
               : ForwardThetaJoin(current, hop.table, num_threads, merge,
                                  join_path, counters);
  }
  return BackwardThetaJoin(current, hop.table, hop.index, num_threads, merge,
                           join_path, &hop.stats, counters);
}

}  // namespace

BoxTable InSituQuery(const std::vector<QueryHop>& hops, const BoxTable& query,
                     const QueryOptions& options, QueryProfile* profile) {
  DSLOG_CHECK(!hops.empty());
  const int num_threads = std::max(1, options.num_threads);
  // merge_between_hops is pushed into the joins: each worker canonicalizes
  // its private arena and the pairwise tree reduction re-merges, so no
  // single-threaded Merge epilogue runs here between hops.
  const bool merge = options.merge_between_hops;
  static metrics::Counter& queries =
      metrics::Registry::Global().counter("dslog.query.count");
  static metrics::Counter& hops_run =
      metrics::Registry::Global().counter("dslog.query.hops");
  queries.Increment();

  if (!options.profile || profile == nullptr) {
    // The unprofiled hot path: identical join calls to every prior
    // release, plus two relaxed counter adds per query/hop — no planner
    // estimates, no clock reads, no atomics inside the kernels.
    BoxTable current = query;
    for (const QueryHop& hop : hops) {
      // Inter-hop cancellation boundary: a cancelled query abandons its
      // partial frontier and returns empty (ProvQuery maps the armed token
      // to Status::Cancelled; bare callers poll the token themselves).
      if (options.cancel != nullptr && options.cancel->ShouldStop())
        return BoxTable();
      current = RunHop(hop, current, num_threads, merge, options.join_path,
                       nullptr);
      hops_run.Increment();
      if (current.empty()) break;
    }
    return current;
  }

  // Profiled path: tracing on for the query's duration, per-hop timers and
  // JoinCounters. The counters themselves are only touched once per kernel
  // invocation (see JoinCounters in query/theta_join.h).
  static metrics::Counter& profiled =
      metrics::Registry::Global().counter("dslog.query.profiled");
  static metrics::Histogram& query_us =
      metrics::Registry::Global().histogram("dslog.query.wall_us");
  profiled.Increment();
  trace::EnabledScope trace_on(true);
  trace::Span query_span("InSituQuery", "query");
  query_span.Arg("hops", static_cast<int64_t>(hops.size()));
  query_span.Arg("query_boxes", query.num_boxes());
  WallTimer query_timer;
  if (profile->hops.size() != hops.size()) profile->hops.resize(hops.size());
  profile->simd_isa = simd::kIsaName;
  profile->num_threads = num_threads;
  profile->merge_between_hops = merge;

  BoxTable current = query;
  for (size_t h = 0; h < hops.size(); ++h) {
    if (options.cancel != nullptr && options.cancel->ShouldStop())
      return BoxTable();
    const QueryHop& hop = hops[h];
    HopProfile& hp = profile->hops[h];
    hp.forward = hop.forward;
    hp.used_forward_table = hop.forward && hop.forward_table != nullptr;
    hp.table_rows = hop.table.num_rows;
    hp.requested_path = options.join_path;
    trace::Span hop_span(hop.forward ? "hop.forward" : "hop.backward",
                         "query");
    hop_span.Arg("hop", static_cast<int64_t>(h));
    hop_span.Arg("query_boxes", current.num_boxes());
    JoinCounters counters;
    WallTimer hop_timer;
    current = RunHop(hop, current, num_threads, merge, options.join_path,
                     &counters);
    hp.wall_ms = hop_timer.ElapsedMillis();
    hp.probes = counters.probes.load(std::memory_order_relaxed);
    hp.rows_scanned = counters.rows_scanned.load(std::memory_order_relaxed);
    hp.rows_emitted = counters.rows_emitted.load(std::memory_order_relaxed);
    hp.result_boxes = current.num_boxes();
    hp.est_rows = counters.est_rows();
    for (int k = 0; k < 3; ++k) {
      hp.path_probes[k] =
          counters.path_probes[k].load(std::memory_order_relaxed);
      hp.est_cost_ns[k] = counters.est_cost_ns(k);
    }
    hops_run.Increment();
    hop_span.Arg("rows_scanned", hp.rows_scanned);
    hop_span.Arg("result_boxes", hp.result_boxes);
    if (current.empty()) break;
  }
  profile->wall_ms = query_timer.ElapsedMillis();
  profile->result_boxes = current.num_boxes();
  query_us.Record(
      static_cast<int64_t>(std::llround(profile->wall_ms * 1000.0)));
  return current;
}

namespace {

std::string ProfileJsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string Num(double v) {
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace

std::string QueryProfile::ToJson() const {
  std::string out = "{\"simd_isa\": " + ProfileJsonEscape(simd_isa) +
                    ", \"num_threads\": " + Num(num_threads) +
                    ", \"merge_between_hops\": " +
                    (merge_between_hops ? "true" : "false") +
                    ", \"wall_ms\": " + Num(wall_ms) +
                    ", \"result_boxes\": " +
                    Num(static_cast<double>(result_boxes)) + ", \"hops\": [";
  for (size_t h = 0; h < hops.size(); ++h) {
    const HopProfile& hp = hops[h];
    if (h > 0) out += ',';
    out += "\n  {\"hop\": " + Num(static_cast<double>(h)) +
           ", \"in_arr\": " + ProfileJsonEscape(hp.in_arr) +
           ", \"out_arr\": " + ProfileJsonEscape(hp.out_arr) +
           ", \"op_name\": " + ProfileJsonEscape(hp.op_name) +
           ", \"forward\": " + (hp.forward ? "true" : "false") +
           ", \"used_forward_table\": " +
           (hp.used_forward_table ? "true" : "false") +
           ", \"from_store\": " + (hp.from_store ? "true" : "false") +
           ", \"cache_hit\": " + (hp.cache_hit ? "true" : "false") +
           ", \"borrowed\": " + (hp.borrowed ? "true" : "false") +
           ", \"segment_bytes\": " + Num(static_cast<double>(hp.segment_bytes)) +
           ", \"bytes_decompressed\": " +
           Num(static_cast<double>(hp.bytes_decompressed)) +
           ", \"rows_materialized\": " +
           Num(static_cast<double>(hp.rows_materialized)) +
           ", \"resolve_us\": " + Num(static_cast<double>(hp.resolve_us)) +
           ", \"table_rows\": " + Num(static_cast<double>(hp.table_rows)) +
           ", \"probes\": " + Num(static_cast<double>(hp.probes)) +
           ", \"rows_scanned\": " + Num(static_cast<double>(hp.rows_scanned)) +
           ", \"rows_emitted\": " + Num(static_cast<double>(hp.rows_emitted)) +
           ", \"result_boxes\": " + Num(static_cast<double>(hp.result_boxes)) +
           ", \"requested_path\": " +
           ProfileJsonEscape(JoinPathName(hp.requested_path)) +
           ", \"est_rows\": " + Num(hp.est_rows) + ", \"path_probes\": {";
    for (int k = 0; k < 3; ++k) {
      if (k > 0) out += ", ";
      out += ProfileJsonEscape(kAccessPathNames[k]) + ": " +
             Num(static_cast<double>(hp.path_probes[k]));
    }
    out += "}, \"est_cost_ns\": {";
    for (int k = 0; k < 3; ++k) {
      if (k > 0) out += ", ";
      out += ProfileJsonEscape(kAccessPathNames[k]) + ": " +
             Num(hp.est_cost_ns[k]);
    }
    out += "}, \"wall_ms\": " + Num(hp.wall_ms) + "}";
  }
  out += "\n]}";
  return out;
}

std::string QueryProfile::ToText() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "query: %.3f ms, %" PRId64
                " result boxes, %d thread(s), simd=%s, merge=%s\n",
                wall_ms, result_boxes, num_threads, simd_isa.c_str(),
                merge_between_hops ? "on" : "off");
  std::string out = buf;
  for (size_t h = 0; h < hops.size(); ++h) {
    const HopProfile& hp = hops[h];
    std::string edge = hp.in_arr.empty() && hp.out_arr.empty()
                           ? std::string("<anonymous>")
                           : hp.in_arr + " -> " + hp.out_arr;
    std::snprintf(buf, sizeof(buf),
                  "  hop %zu [%s%s] %s: rows=%" PRId64 " probes=%" PRId64
                  " scanned=%" PRId64 " (est %.0f) emitted=%" PRId64
                  " -> %" PRId64 " boxes, %.3f ms\n",
                  h, hp.forward ? "fwd" : "bwd",
                  hp.used_forward_table ? "+table" : "", edge.c_str(),
                  hp.table_rows, hp.probes, hp.rows_scanned, hp.est_rows,
                  hp.rows_emitted, hp.result_boxes, hp.wall_ms);
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "        paths: probe=%" PRId64 " sweep=%" PRId64 " scan=%" PRId64
        "%s%s; storage: %s%s\n",
        hp.path_probes[0], hp.path_probes[1], hp.path_probes[2],
        hp.requested_path == JoinPath::kAuto ? "" : " forced=",
        hp.requested_path == JoinPath::kAuto ? ""
                                             : JoinPathName(hp.requested_path),
        !hp.from_store    ? "resident"
        : hp.cache_hit    ? "cache-hit"
        : hp.borrowed     ? "borrowed"
                          : "decoded",
        hp.from_store ? "" : " table");
    out += buf;
    if (hp.from_store && !hp.cache_hit) {
      std::snprintf(buf, sizeof(buf),
                    "        resolve: %" PRId64 " us, %" PRId64
                    " segment bytes, %" PRId64 " decompressed, %" PRId64
                    " rows materialized\n",
                    hp.resolve_us, hp.segment_bytes, hp.bytes_decompressed,
                    hp.rows_materialized);
      out += buf;
    }
  }
  return out;
}

namespace {

// Hash-set of flattened tuples: identity is the full tuple content.
struct TupleSet {
  explicit TupleSet(int arity) : arity_(arity) {}

  bool Insert(const int64_t* tuple) {
    uint64_t h = Hash64(tuple, static_cast<size_t>(arity_) * sizeof(int64_t));
    auto [it, inserted] = index_.insert({h, {}});
    auto& bucket = it->second;
    if (!inserted) {
      for (size_t off : bucket) {
        if (std::equal(tuple, tuple + arity_, data_.data() + off)) return false;
      }
    }
    bucket.push_back(data_.size());
    data_.insert(data_.end(), tuple, tuple + arity_);
    return true;
  }

  bool Contains(const int64_t* tuple) const {
    uint64_t h = Hash64(tuple, static_cast<size_t>(arity_) * sizeof(int64_t));
    auto it = index_.find(h);
    if (it == index_.end()) return false;
    for (size_t off : it->second)
      if (std::equal(tuple, tuple + arity_, data_.data() + off)) return true;
    return false;
  }

  const std::vector<int64_t>& data() const { return data_; }

 private:
  int arity_;
  std::vector<int64_t> data_;
  std::unordered_map<uint64_t, std::vector<size_t>> index_;
};

}  // namespace

std::vector<int64_t> RelationJoinStep(const LineageRelation& relation,
                                      bool forward,
                                      const std::vector<int64_t>& frontier) {
  // In the stored relation, row = (out tuple | in tuple). A forward
  // traversal matches on the *input* side and emits the output side.
  const int l = relation.out_ndim();
  const int m = relation.in_ndim();
  const int match_arity = forward ? m : l;
  const int emit_arity = forward ? l : m;
  const int match_offset = forward ? l : 0;
  const int emit_offset = forward ? 0 : l;

  DSLOG_CHECK(frontier.size() % static_cast<size_t>(match_arity) == 0);
  TupleSet probe(match_arity);
  for (size_t off = 0; off < frontier.size();
       off += static_cast<size_t>(match_arity))
    probe.Insert(frontier.data() + off);

  TupleSet result(emit_arity);
  for (int64_t r = 0; r < relation.num_rows(); ++r) {
    auto row = relation.Row(r);
    if (!probe.Contains(row.data() + match_offset)) continue;
    result.Insert(row.data() + emit_offset);
  }
  return result.data();
}

std::vector<int64_t> UncompressedQuery(const std::vector<RelationHop>& hops,
                                       const std::vector<int64_t>& query_cells) {
  DSLOG_CHECK(!hops.empty());
  std::vector<int64_t> frontier = query_cells;
  for (const RelationHop& hop : hops) {
    frontier = RelationJoinStep(*hop.relation, hop.forward, frontier);
    if (frontier.empty()) break;
  }
  return frontier;
}

}  // namespace dslog
