#include "query/query_engine.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"
#include "query/theta_join.h"

namespace dslog {

BoxTable InSituQuery(const std::vector<QueryHop>& hops, const BoxTable& query,
                     const QueryOptions& options) {
  DSLOG_CHECK(!hops.empty());
  const int num_threads = std::max(1, options.num_threads);
  // merge_between_hops is pushed into the joins: each worker canonicalizes
  // its private arena and the pairwise tree reduction re-merges, so no
  // single-threaded Merge epilogue runs here between hops.
  const bool merge = options.merge_between_hops;
  BoxTable current = query;
  for (const QueryHop& hop : hops) {
    if (hop.forward) {
      current = hop.forward_table != nullptr
                    ? hop.forward_table->Join(current, num_threads, merge,
                                              options.join_path)
                    : ForwardThetaJoin(current, hop.table, num_threads, merge,
                                       options.join_path);
    } else {
      current = BackwardThetaJoin(current, hop.table, hop.index, num_threads,
                                  merge, options.join_path, &hop.stats);
    }
    if (current.empty()) break;
  }
  return current;
}

namespace {

// Hash-set of flattened tuples: identity is the full tuple content.
struct TupleSet {
  explicit TupleSet(int arity) : arity_(arity) {}

  bool Insert(const int64_t* tuple) {
    uint64_t h = Hash64(tuple, static_cast<size_t>(arity_) * sizeof(int64_t));
    auto [it, inserted] = index_.insert({h, {}});
    auto& bucket = it->second;
    if (!inserted) {
      for (size_t off : bucket) {
        if (std::equal(tuple, tuple + arity_, data_.data() + off)) return false;
      }
    }
    bucket.push_back(data_.size());
    data_.insert(data_.end(), tuple, tuple + arity_);
    return true;
  }

  bool Contains(const int64_t* tuple) const {
    uint64_t h = Hash64(tuple, static_cast<size_t>(arity_) * sizeof(int64_t));
    auto it = index_.find(h);
    if (it == index_.end()) return false;
    for (size_t off : it->second)
      if (std::equal(tuple, tuple + arity_, data_.data() + off)) return true;
    return false;
  }

  const std::vector<int64_t>& data() const { return data_; }

 private:
  int arity_;
  std::vector<int64_t> data_;
  std::unordered_map<uint64_t, std::vector<size_t>> index_;
};

}  // namespace

std::vector<int64_t> RelationJoinStep(const LineageRelation& relation,
                                      bool forward,
                                      const std::vector<int64_t>& frontier) {
  // In the stored relation, row = (out tuple | in tuple). A forward
  // traversal matches on the *input* side and emits the output side.
  const int l = relation.out_ndim();
  const int m = relation.in_ndim();
  const int match_arity = forward ? m : l;
  const int emit_arity = forward ? l : m;
  const int match_offset = forward ? l : 0;
  const int emit_offset = forward ? 0 : l;

  DSLOG_CHECK(frontier.size() % static_cast<size_t>(match_arity) == 0);
  TupleSet probe(match_arity);
  for (size_t off = 0; off < frontier.size();
       off += static_cast<size_t>(match_arity))
    probe.Insert(frontier.data() + off);

  TupleSet result(emit_arity);
  for (int64_t r = 0; r < relation.num_rows(); ++r) {
    auto row = relation.Row(r);
    if (!probe.Contains(row.data() + match_offset)) continue;
    result.Insert(row.data() + emit_offset);
  }
  return result.data();
}

std::vector<int64_t> UncompressedQuery(const std::vector<RelationHop>& hops,
                                       const std::vector<int64_t>& query_cells) {
  DSLOG_CHECK(!hops.empty());
  std::vector<int64_t> frontier = query_cells;
  for (const RelationHop& hop : hops) {
    frontier = RelationJoinStep(*hop.relation, hop.forward, frontier);
    if (frontier.empty()) break;
  }
  return frontier;
}

}  // namespace dslog
