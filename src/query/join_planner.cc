#include "query/join_planner.h"

#include <algorithm>
#include <bit>

namespace dslog {

const char* JoinPathName(JoinPath path) {
  switch (path) {
    case JoinPath::kAuto:
      return "auto";
    case JoinPath::kIndexProbe:
      return "index_probe";
    case JoinPath::kSortedSweep:
      return "sorted_sweep";
    case JoinPath::kFullScan:
      return "full_scan";
  }
  return "unknown";
}

namespace {

// Measured per-element enumeration costs, in relative ns, fitted to the
// Release-build BM_BackwardJoinSweep selectivity sweep (bench/
// bench_micro_query.cc; crossover table in docs/ARCHITECTURE.md). Only the
// *enumeration* is modeled — the per-hit join body (intersection,
// de-relativization, output append) is identical across paths and cancels.
//   kProbePerHitNs:  tree leaf visit + callback per emitted row.
//   kProbePerLevelNs: descent overhead per tree level.
//   kSweepPerRowNs:  SIMD hi-filter cost per prefix row.
//   kScanPerRowNs:   SIMD overlap-filter cost per indexed row.
//   kSearchPerLevelNs: binary-search step for the sweep's prefix bound.
// Fit (AVX2, 2.1 GHz): probe-vs-sweep deltas at 16k/131k-row tables give
// 5.3 ns/hit; the low-selectivity sweep/scan columns give 0.24 and
// 0.27 ns/row. The level costs are below measurement noise and kept at
// plausible defaults — they only matter for sub-256-row tables.
constexpr double kProbePerHitNs = 5.3;
constexpr double kProbePerLevelNs = 4.0;
constexpr double kSweepPerRowNs = 0.24;
constexpr double kScanPerRowNs = 0.27;
constexpr double kSearchPerLevelNs = 2.0;

struct ModelCosts {
  double probe = 0.0;
  double sweep = 0.0;
  double scan = 0.0;
  double est_rows = 0.0;  // hit_frac * n
};

// The uniform-lo cost model, shared by the decision-only and the auditable
// entry points so the two can never drift. Requires stats.valid() and
// row_count >= 1 (valid stats imply min_lo <= max_lo, so lo_span >= 1).
ModelCosts ComputeModelCosts(const Interval& probe,
                             const IntervalColumnStats& stats) {
  const double dn = static_cast<double>(stats.row_count);
  const double levels = static_cast<double>(
      std::bit_width(static_cast<uint64_t>(stats.row_count)));
  const double lo_span =
      static_cast<double>(stats.max_lo - stats.min_lo) + 1.0;
  const double probe_width = static_cast<double>(probe.hi - probe.lo) + 1.0;

  // Uniform-lo model: a row's lo is uniform over [min_lo, max_lo] with
  // expected width avg_width. Prefix fraction = P(lo <= probe.hi); hit
  // fraction = P(lo in [probe.lo - width + 1, probe.hi]).
  auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };
  const double prefix_frac = clamp01(
      (static_cast<double>(probe.hi - stats.min_lo) + 1.0) / lo_span);
  const double hit_frac = std::min(
      prefix_frac, clamp01((probe_width + stats.avg_width() - 1.0) / lo_span));

  ModelCosts costs;
  costs.probe = kProbePerLevelNs * levels + kProbePerHitNs * hit_frac * dn;
  costs.sweep = kSearchPerLevelNs * levels + kSweepPerRowNs * prefix_frac * dn;
  costs.scan = kScanPerRowNs * dn;
  costs.est_rows = hit_frac * dn;
  return costs;
}

// Ties break toward the output-sensitive probe, then the sweep: when the
// model is uncertain the path with the smaller worst case wins.
AccessPath PickCheapest(const ModelCosts& costs) {
  if (costs.probe <= costs.sweep && costs.probe <= costs.scan)
    return AccessPath::kIndexProbe;
  if (costs.sweep <= costs.scan) return AccessPath::kSortedSweep;
  return AccessPath::kFullScan;
}

}  // namespace

AccessPath ChooseAccessPath(const Interval& probe,
                            const IntervalColumnStats& stats) {
  const int64_t n = stats.row_count;
  // Tiny tables sit below every crossover: the whole column fits in a few
  // vector registers, so scan unconditionally.
  if (n >= 0 && n <= 64) return AccessPath::kFullScan;
  // Without stats the hit count is unknowable; the tree probe is the only
  // path whose cost stays bounded by the actual output.
  if (!stats.valid()) return AccessPath::kIndexProbe;
  return PickCheapest(ComputeModelCosts(probe, stats));
}

PathCostEstimate EstimateAccessPathCosts(const Interval& probe,
                                         const IntervalColumnStats& stats) {
  PathCostEstimate e;
  const int64_t n = stats.row_count;
  // Shortcuts mirror ChooseAccessPath exactly. The expected candidate
  // count is still reported when stats allow it (small tables are planned
  // by rule, but their estimate remains auditable); the per-path costs are
  // left 0 — no costs were compared, and reporting fabricated ones would
  // make mispredict audits chase decisions the model never made.
  if (n >= 0 && n <= 64) {
    e.chosen = AccessPath::kFullScan;
    if (stats.valid() && n >= 1) e.est_rows = ComputeModelCosts(probe, stats).est_rows;
    return e;
  }
  if (!stats.valid()) {
    e.chosen = AccessPath::kIndexProbe;
    return e;
  }
  const ModelCosts costs = ComputeModelCosts(probe, stats);
  e.cost_ns[static_cast<int>(AccessPath::kIndexProbe)] = costs.probe;
  e.cost_ns[static_cast<int>(AccessPath::kSortedSweep)] = costs.sweep;
  e.cost_ns[static_cast<int>(AccessPath::kFullScan)] = costs.scan;
  e.est_rows = costs.est_rows;
  e.chosen = PickCheapest(costs);
  return e;
}

}  // namespace dslog
