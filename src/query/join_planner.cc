#include "query/join_planner.h"

#include <algorithm>
#include <bit>

namespace dslog {

const char* JoinPathName(JoinPath path) {
  switch (path) {
    case JoinPath::kAuto:
      return "auto";
    case JoinPath::kIndexProbe:
      return "index_probe";
    case JoinPath::kSortedSweep:
      return "sorted_sweep";
    case JoinPath::kFullScan:
      return "full_scan";
  }
  return "unknown";
}

namespace {

// Measured per-element enumeration costs, in relative ns, fitted to the
// Release-build BM_BackwardJoinSweep selectivity sweep (bench/
// bench_micro_query.cc; crossover table in docs/ARCHITECTURE.md). Only the
// *enumeration* is modeled — the per-hit join body (intersection,
// de-relativization, output append) is identical across paths and cancels.
//   kProbePerHitNs:  tree leaf visit + callback per emitted row.
//   kProbePerLevelNs: descent overhead per tree level.
//   kSweepPerRowNs:  SIMD hi-filter cost per prefix row.
//   kScanPerRowNs:   SIMD overlap-filter cost per indexed row.
//   kSearchPerLevelNs: binary-search step for the sweep's prefix bound.
// Fit (AVX2, 2.1 GHz): probe-vs-sweep deltas at 16k/131k-row tables give
// 5.3 ns/hit; the low-selectivity sweep/scan columns give 0.24 and
// 0.27 ns/row. The level costs are below measurement noise and kept at
// plausible defaults — they only matter for sub-256-row tables.
constexpr double kProbePerHitNs = 5.3;
constexpr double kProbePerLevelNs = 4.0;
constexpr double kSweepPerRowNs = 0.24;
constexpr double kScanPerRowNs = 0.27;
constexpr double kSearchPerLevelNs = 2.0;

}  // namespace

AccessPath ChooseAccessPath(const Interval& probe,
                            const IntervalColumnStats& stats) {
  const int64_t n = stats.row_count;
  // Tiny tables sit below every crossover: the whole column fits in a few
  // vector registers, so scan unconditionally.
  if (n >= 0 && n <= 64) return AccessPath::kFullScan;
  // Without stats the hit count is unknowable; the tree probe is the only
  // path whose cost stays bounded by the actual output.
  if (!stats.valid()) return AccessPath::kIndexProbe;

  const double dn = static_cast<double>(n);
  const double levels = static_cast<double>(
      std::bit_width(static_cast<uint64_t>(n)));
  const double lo_span =
      static_cast<double>(stats.max_lo - stats.min_lo) + 1.0;
  const double probe_width = static_cast<double>(probe.hi - probe.lo) + 1.0;

  // Uniform-lo model: a row's lo is uniform over [min_lo, max_lo] with
  // expected width avg_width. Prefix fraction = P(lo <= probe.hi); hit
  // fraction = P(lo in [probe.lo - width + 1, probe.hi]).
  auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };
  const double prefix_frac = clamp01(
      (static_cast<double>(probe.hi - stats.min_lo) + 1.0) / lo_span);
  const double hit_frac = std::min(
      prefix_frac, clamp01((probe_width + stats.avg_width() - 1.0) / lo_span));

  const double cost_probe =
      kProbePerLevelNs * levels + kProbePerHitNs * hit_frac * dn;
  const double cost_sweep =
      kSearchPerLevelNs * levels + kSweepPerRowNs * prefix_frac * dn;
  const double cost_scan = kScanPerRowNs * dn;

  // Ties break toward the output-sensitive probe, then the sweep: when the
  // model is uncertain the path with the smaller worst case wins.
  if (cost_probe <= cost_sweep && cost_probe <= cost_scan)
    return AccessPath::kIndexProbe;
  if (cost_sweep <= cost_scan) return AccessPath::kSortedSweep;
  return AccessPath::kFullScan;
}

}  // namespace dslog
