// The in-situ θ-join (ICDE'24 §V.B): a range join over interval cells plus
// de-relativization of relative attributes — evaluated directly on the
// compressed table, with no decompression.
//
// Backward joins take a query over the table's *output* attributes (which
// are absolute) and return the linked input cells via rel_back.
// Forward joins take a query over *input* attributes; they run either
// directly against the backward representation or against a materialized
// ForwardTable (the §IV.C alternative representation), using the clamped
// rel_for de-relativization. (The published rel_for formula is garbled; see
// docs/ARCHITECTURE.md for the derivation used here, which property tests
// validate against the uncompressed ground truth.)

#ifndef DSLOG_QUERY_THETA_JOIN_H_
#define DSLOG_QUERY_THETA_JOIN_H_

#include <vector>

#include "provrc/compressed_table.h"
#include "query/box.h"

namespace dslog {

// All three joins accept a `num_threads` knob: when >= 2 the query-box
// table is partitioned into contiguous slices evaluated on the shared
// ThreadPool and the per-worker results are concatenated. The output is
// set-equivalent to the single-threaded join (box order may differ; the
// caller's Merge() pass canonicalizes as usual).

/// Backward θ-join: query boxes over output attributes -> input-cell boxes.
BoxTable BackwardThetaJoin(const BoxTable& query, const CompressedTable& table,
                           int num_threads = 1);

/// Forward θ-join evaluated directly on the backward representation:
/// query boxes over input attributes -> output-cell boxes.
BoxTable ForwardThetaJoin(const BoxTable& query, const CompressedTable& table,
                          int num_threads = 1);

/// Materialized forward representation (inputs absolute, outputs possibly
/// relative with clamping bounds) as described in §IV.C / Table III.
class ForwardTable {
 public:
  struct OutputCell {
    /// Absolute interval when no relative constraint applies.
    Interval bound;
    /// Relative constraints: pairs of (input attribute index, delta interval
    /// a_ref - b). Empty means the cell is absolute (= bound).
    std::vector<std::pair<int32_t, Interval>> refs;
  };
  struct Row {
    std::vector<Interval> in;  // absolute input intervals
    std::vector<OutputCell> out;
  };

  static ForwardTable FromBackward(const CompressedTable& table);

  int in_ndim() const { return static_cast<int>(in_shape_.size()); }
  int out_ndim() const { return static_cast<int>(out_shape_.size()); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Forward θ-join over the materialized representation.
  BoxTable Join(const BoxTable& query, int num_threads = 1) const;

 private:
  std::vector<int64_t> out_shape_;
  std::vector<int64_t> in_shape_;
  std::vector<Row> rows_;
};

}  // namespace dslog

#endif  // DSLOG_QUERY_THETA_JOIN_H_
