// The in-situ θ-join (ICDE'24 §V.B): a range join over interval cells plus
// de-relativization of relative attributes — evaluated directly on the
// compressed table, with no decompression.
//
// All kernels scan the flat columnar layout through a CompressedTableView,
// so they run identically over an owned table and over bytes borrowed from
// an mmap'd v2 LogStore segment (true in-situ). The backward join is
// index-backed: a per-table sorted interval index over output attribute 0
// (provrc/interval_index.h) prunes candidate rows to the probe's overlap
// set instead of scanning — pass the table's cached index, or let the
// kernel build an ephemeral one (equivalent to the old per-query sweep).
//
// Backward joins take a query over the table's *output* attributes (which
// are absolute) and return the linked input cells via rel_back.
// Forward joins take a query over *input* attributes; they run either
// directly against the backward representation or against a materialized
// ForwardTable (the §IV.C alternative representation), using the clamped
// rel_for de-relativization. (The published rel_for formula is garbled; see
// docs/ARCHITECTURE.md for the derivation used here, which property tests
// validate against the uncompressed ground truth.)
//
// Every join takes a JoinPath: how each probe enumerates the interval
// index — pruned tree probe, SIMD sorted sweep, or SIMD full scan
// (provrc/interval_index.h). The default kAuto asks the cost-based planner
// (query/join_planner.h) per probe, using the hop's interval-column stats
// (v3 LogStore footers carry them per segment; otherwise the index's own
// exact stats). All paths emit candidates in the same order, so the result
// is bit-identical whatever the planner (or a forced path) picks.

#ifndef DSLOG_QUERY_THETA_JOIN_H_
#define DSLOG_QUERY_THETA_JOIN_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "provrc/compressed_table.h"
#include "provrc/interval_index.h"
#include "query/box.h"
#include "query/join_planner.h"

namespace dslog {

/// Instrumentation sink for one join call (query profiling). The contract
/// that keeps profiling out of the hot path: kernels count into plain
/// local integers and flush them here ONCE per kernel invocation — with a
/// partitioned join, once per partition — so the per-candidate inner loop
/// never touches an atomic, profiled or not. With `counters == nullptr`
/// (the default everywhere) the kernels also skip the planner's
/// cost-estimate bookkeeping entirely. Planner estimates accumulate as
/// fixed-point x1000 integers so the sink needs no atomic<double>.
struct JoinCounters {
  /// Query boxes evaluated (index probes issued).
  std::atomic<int64_t> probes{0};
  /// Candidate rows enumerated by the interval index across all probes.
  std::atomic<int64_t> rows_scanned{0};
  /// Boxes emitted by the kernels, before any Merge canonicalization.
  std::atomic<int64_t> rows_emitted{0};
  /// Probes resolved to each concrete AccessPath (index by AccessPath).
  std::atomic<int64_t> path_probes[3] = {};
  /// Planner-expected candidate rows, x1000 (sum over probes).
  std::atomic<int64_t> est_rows_x1000{0};
  /// Planner per-path cost model output in ns x1000 (index by AccessPath).
  std::atomic<int64_t> est_cost_ns_x1000[3] = {};

  int64_t path_probes_total() const {
    return path_probes[0].load(std::memory_order_relaxed) +
           path_probes[1].load(std::memory_order_relaxed) +
           path_probes[2].load(std::memory_order_relaxed);
  }
  double est_rows() const {
    return static_cast<double>(
               est_rows_x1000.load(std::memory_order_relaxed)) /
           1000.0;
  }
  double est_cost_ns(int path) const {
    return static_cast<double>(
               est_cost_ns_x1000[path].load(std::memory_order_relaxed)) /
           1000.0;
  }
};

// All joins accept a `num_threads` knob: when >= 2 the query-box table is
// partitioned into contiguous slices, each evaluated into its own private
// output arena on the shared ThreadPool (sharing one table index), and the
// arenas are combined pairwise tree-wise on the pool — workers never write
// a shared result. The output is set-equivalent to the single-threaded
// join, and for a fixed (query, num_threads) it is bit-identical across
// runs: partition bounds and the pairwise combine order are fixed by
// index, not by thread scheduling.
//
// All joins also accept `merge_result`: when true each worker Merge()s its
// own arena and every pairwise combine re-Merges, so the canonicalization
// that used to run single-threaded over the full concatenation is spread
// across the pool (this is the parallel epilogue ProvQuery uses). false
// reproduces the raw concatenation exactly (the caller may Merge itself).

/// Backward θ-join: query boxes over output attributes -> input-cell boxes.
/// `index` is the table's out-attr-0 interval index; pass nullptr to have
/// the kernel build an ephemeral one for this call. `stats` are the probe
/// column's stats for the planner (e.g. from the segment's v3 footer
/// entry); nullptr or invalid stats fall back to the index's own.
BoxTable BackwardThetaJoin(const BoxTable& query,
                           const CompressedTableView& table,
                           const IntervalIndex* index = nullptr,
                           int num_threads = 1, bool merge_result = false,
                           JoinPath join_path = JoinPath::kAuto,
                           const IntervalColumnStats* stats = nullptr,
                           JoinCounters* counters = nullptr);

/// Convenience overload over an owned table: uses (and lazily builds) the
/// table's cached index.
BoxTable BackwardThetaJoin(const BoxTable& query, const CompressedTable& table,
                           int num_threads = 1, bool merge_result = false,
                           JoinPath join_path = JoinPath::kAuto,
                           JoinCounters* counters = nullptr);

/// Forward θ-join evaluated directly on the backward representation:
/// query boxes over input attributes -> output-cell boxes. The probe
/// column (implied absolute input attribute 0) depends on per-row
/// de-relativization, so the index is built per call — the planner always
/// uses that index's exact stats (footer stats describe the *output*
/// column and do not apply here).
BoxTable ForwardThetaJoin(const BoxTable& query,
                          const CompressedTableView& table,
                          int num_threads = 1, bool merge_result = false,
                          JoinPath join_path = JoinPath::kAuto,
                          JoinCounters* counters = nullptr);

BoxTable ForwardThetaJoin(const BoxTable& query, const CompressedTable& table,
                          int num_threads = 1, bool merge_result = false,
                          JoinPath join_path = JoinPath::kAuto,
                          JoinCounters* counters = nullptr);

/// Materialized forward representation (inputs absolute, outputs possibly
/// relative with clamping bounds) as described in §IV.C / Table III.
/// Stored as flat columns: absolute input intervals and output bounds in
/// lo/hi arenas, relative constraints in a CSR side table keyed by
/// (row, output attribute), plus a prebuilt interval index over input
/// attribute 0 so every forward hop probes instead of scanning.
class ForwardTable {
 public:
  static ForwardTable FromBackward(const CompressedTable& table) {
    return FromBackward(table.view());
  }
  static ForwardTable FromBackward(const CompressedTableView& table);

  int in_ndim() const { return static_cast<int>(in_shape_.size()); }
  int out_ndim() const { return static_cast<int>(out_shape_.size()); }
  int64_t num_rows() const { return num_rows_; }

  /// Absolute input interval of (row, input attribute).
  Interval in_iv(int64_t r, int32_t i) const {
    const size_t at = static_cast<size_t>(r * in_ndim() + i);
    return {in_lo_[at], in_hi_[at]};
  }
  /// Clamping bound of (row, output attribute).
  Interval out_bound(int64_t r, int32_t j) const {
    const size_t at = static_cast<size_t>(r * out_ndim() + j);
    return {out_lo_[at], out_hi_[at]};
  }

  /// Forward θ-join over the materialized representation.
  BoxTable Join(const BoxTable& query, int num_threads = 1,
                bool merge_result = false,
                JoinPath join_path = JoinPath::kAuto,
                JoinCounters* counters = nullptr) const;

 private:
  std::vector<int64_t> out_shape_;
  std::vector<int64_t> in_shape_;
  int64_t num_rows_ = 0;
  std::vector<int64_t> in_lo_, in_hi_;    // num_rows * in_ndim, absolute
  std::vector<int64_t> out_lo_, out_hi_;  // num_rows * out_ndim, bounds
  /// CSR over (row, output attribute): constraints [ref_start_[c],
  /// ref_start_[c + 1]) with c = r * out_ndim + j. Each constraint is the
  /// (input attribute, delta interval) of one relative input cell that
  /// references output attribute j.
  std::vector<int32_t> ref_start_;
  std::vector<int32_t> ref_in_;
  std::vector<int64_t> ref_dlo_, ref_dhi_;
  IntervalIndex in0_index_;  // over the absolute input attribute 0
};

}  // namespace dslog

#endif  // DSLOG_QUERY_THETA_JOIN_H_
