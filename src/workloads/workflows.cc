#include "workloads/workflows.h"

#include <algorithm>
#include <cmath>

#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"
#include "explain/explain.h"
#include "relational/relational_ops.h"

namespace dslog {

// --------------------------------------------------------- synthetic data --

NDArray MakeSurveillanceFrame(int64_t h, int64_t w, uint64_t seed) {
  Rng rng(seed);
  NDArray frame({h, w});
  // Textured background.
  for (int64_t y = 0; y < h; ++y)
    for (int64_t x = 0; x < w; ++x)
      frame[y * w + x] =
          40.0 + 8.0 * std::sin(0.13 * static_cast<double>(x)) +
          6.0 * std::cos(0.09 * static_cast<double>(y)) + 4.0 * rng.NextDouble();
  // A few bright rectangular blobs ("cars").
  int blobs = 3;
  for (int b = 0; b < blobs; ++b) {
    int64_t cy = rng.UniformRange(h / 6, 5 * h / 6);
    int64_t cx = rng.UniformRange(w / 6, 5 * w / 6);
    int64_t bh = rng.UniformRange(3, std::max<int64_t>(4, h / 10));
    int64_t bw = rng.UniformRange(4, std::max<int64_t>(5, w / 8));
    for (int64_t y = std::max<int64_t>(0, cy - bh); y < std::min(h, cy + bh); ++y)
      for (int64_t x = std::max<int64_t>(0, cx - bw); x < std::min(w, cx + bw); ++x)
        frame[y * w + x] = 180.0 + 20.0 * rng.NextDouble();
  }
  return frame;
}

NDArray MakeTitleBasics(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  NDArray t({rows, 6});
  int64_t year = 1950;
  for (int64_t i = 0; i < rows; ++i) {
    t[i * 6 + 0] = static_cast<double>(i);  // tconst: sorted unique ids
    t[i * 6 + 1] = static_cast<double>(rng.Uniform(4));  // titleType
    t[i * 6 + 2] = static_cast<double>(rng.Bernoulli(0.07));  // isAdult
    if (rng.Bernoulli(0.02)) ++year;  // startYear: sorted (non-decreasing)
    t[i * 6 + 3] = static_cast<double>(std::min<int64_t>(year, 2021));
    // runtime: mostly present, occasionally missing (NaN).
    t[i * 6 + 4] = rng.Bernoulli(0.02)
                       ? std::nan("")
                       : 40.0 + static_cast<double>(rng.Uniform(120));
    t[i * 6 + 5] = static_cast<double>(rng.Uniform(8));  // genres code
  }
  return t;
}

NDArray MakeTitleEpisode(int64_t rows, int64_t basics_rows, uint64_t seed) {
  Rng rng(seed + 17);
  NDArray t({rows, 4});
  // tconst: sorted subset of the basics ids (episodes reference titles).
  int64_t id = 0;
  for (int64_t i = 0; i < rows; ++i) {
    id += 1 + static_cast<int64_t>(rng.Uniform(
              std::max<int64_t>(1, 2 * basics_rows / std::max<int64_t>(1, rows))));
    t[i * 4 + 0] = static_cast<double>(id % basics_rows);
    t[i * 4 + 1] = static_cast<double>(rng.Uniform(static_cast<uint64_t>(basics_rows)));
    t[i * 4 + 2] = static_cast<double>(1 + rng.Uniform(12));
    t[i * 4 + 3] = static_cast<double>(1 + rng.Uniform(24));
  }
  // Keep tconst sorted like the real dump.
  std::vector<std::pair<double, int64_t>> order(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) order[static_cast<size_t>(i)] = {t[i * 4 + 0], i};
  std::sort(order.begin(), order.end());
  NDArray sorted({rows, 4});
  for (int64_t i = 0; i < rows; ++i)
    for (int64_t c = 0; c < 4; ++c)
      sorted[i * 4 + c] = t[order[static_cast<size_t>(i)].second * 4 + c];
  return sorted;
}

// ------------------------------------------------------ custom capture ops --

Result<std::pair<NDArray, LineageRelation>> ResizeNearest(const NDArray& frame,
                                                          int64_t out_h,
                                                          int64_t out_w) {
  if (frame.ndim() != 2)
    return Status::InvalidArgument("ResizeNearest: 2-D frame required");
  int64_t h = frame.shape()[0], w = frame.shape()[1];
  NDArray out({out_h, out_w});
  LineageRelation rel(2, 2);
  rel.set_shapes(out.shape(), frame.shape());
  rel.Reserve(out.size());
  for (int64_t y = 0; y < out_h; ++y)
    for (int64_t x = 0; x < out_w; ++x) {
      int64_t sy = y * h / out_h;
      int64_t sx = x * w / out_w;
      out[y * out_w + x] = frame[sy * w + sx];
      int64_t o[2] = {y, x};
      int64_t i[2] = {sy, sx};
      rel.Add(o, i);
    }
  return std::make_pair(std::move(out), std::move(rel));
}

Result<std::pair<NDArray, LineageRelation>> Conv3x3Same(const NDArray& frame,
                                                        const double* kernel) {
  if (frame.ndim() != 2)
    return Status::InvalidArgument("Conv3x3Same: 2-D frame required");
  int64_t h = frame.shape()[0], w = frame.shape()[1];
  NDArray out({h, w});
  LineageRelation rel(2, 2);
  rel.set_shapes(out.shape(), frame.shape());
  rel.Reserve(out.size() * 9);
  for (int64_t y = 0; y < h; ++y)
    for (int64_t x = 0; x < w; ++x) {
      double acc = 0;
      int64_t o[2] = {y, x};
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          int64_t sy = y + dy, sx = x + dx;
          if (sy < 0 || sy >= h || sx < 0 || sx >= w) continue;  // zero pad
          acc += kernel[(dy + 1) * 3 + (dx + 1)] * frame[sy * w + sx];
          int64_t i[2] = {sy, sx};
          rel.Add(o, i);
        }
      out[y * w + x] = acc;
    }
  return std::make_pair(std::move(out), std::move(rel));
}

// --------------------------------------------------------------- workflows --

namespace {

void AppendStep(Workflow* wf, const std::string& op_name,
                const NDArray& output, LineageRelation relation) {
  wf->array_names.push_back(wf->name + "_x" +
                            std::to_string(wf->array_names.size()));
  wf->shapes.push_back(output.shape());
  wf->steps.push_back({op_name, std::move(relation)});
}

// Applies a registry op to `current`, appending the step. Returns false if
// the op is inapplicable.
bool ApplyRegistryStep(Workflow* wf, NDArray* current, const char* op_name,
                       const OpArgs& args) {
  const ArrayOp* op = OpRegistry::Global().Find(op_name);
  if (op == nullptr) return false;
  auto out = op->Apply({current}, args);
  if (!out.ok()) return false;
  auto rels = op->Capture({current}, out.value(), args);
  if (!rels.ok()) return false;
  AppendStep(wf, op_name, out.value(), std::move(rels.ValueOrDie()[0]));
  *current = std::move(out).ValueOrDie();
  return true;
}

}  // namespace

Result<Workflow> BuildImageWorkflow(int64_t h, int64_t w, uint64_t seed) {
  Workflow wf;
  wf.name = "image";
  NDArray frame = MakeSurveillanceFrame(h, w, seed);
  wf.array_names.push_back("image_x0");
  wf.shapes.push_back(frame.shape());

  // 1. Resize (the paper resizes to YOLOv4's 416x416; scaled down).
  int64_t rh = h * 3 / 4, rw = w * 3 / 4;
  DSLOG_ASSIGN_OR_RETURN(auto resized, ResizeNearest(frame, rh, rw));
  AppendStep(&wf, "resize", resized.first, std::move(resized.second));
  NDArray current = std::move(resized.first);

  // 2. Increase luminosity (x + 20, element-wise; identity lineage).
  {
    NDArray bright = current;
    for (int64_t i = 0; i < bright.size(); ++i) bright[i] += 20.0;
    AppendStep(&wf, "luminosity", bright, IdentityLineage(bright, current));
    current = std::move(bright);
  }

  // 3. Rotate 90 and 4. horizontal flip via the op catalogue.
  if (!ApplyRegistryStep(&wf, &current, "rot90", OpArgs()))
    return Status::Internal("rot90 failed");
  if (!ApplyRegistryStep(&wf, &current, "fliplr", OpArgs()))
    return Status::Internal("fliplr failed");

  // 5. LIME over the detector.
  TinyDetector detector;
  Rng rng(seed + 1);
  DSLOG_ASSIGN_OR_RETURN(LineageRelation lime,
                         LimeCapture(current, detector, LimeOptions{}, &rng));
  NDArray det({6});
  wf.array_names.push_back("image_x5");
  wf.shapes.push_back(det.shape());
  wf.steps.push_back({"lime", std::move(lime)});
  // Fix the appended name bookkeeping for step 5 (AppendStep not used).
  return wf;
}

Result<Workflow> BuildRelationalWorkflow(int64_t basics_rows,
                                         int64_t episode_rows, uint64_t seed) {
  Workflow wf;
  wf.name = "relational";
  NDArray basics = MakeTitleBasics(basics_rows, seed);
  NDArray episode = MakeTitleEpisode(episode_rows, basics_rows, seed);
  wf.array_names.push_back("rel_x0");
  wf.shapes.push_back(basics.shape());

  // 1. Inner join on tconst (path follows the basics side).
  DSLOG_ASSIGN_OR_RETURN(RelationalResult joined,
                         InnerJoin(basics, episode, 0, 0));
  AppendStep(&wf, "inner_join", joined.output, std::move(joined.lineage[0]));
  NDArray current = std::move(joined.output);

  // 2. Filter columns with NaN values.
  DSLOG_ASSIGN_OR_RETURN(RelationalResult filtered, DropNaNColumns(current));
  AppendStep(&wf, "drop_nan_columns", filtered.output,
             std::move(filtered.lineage[0]));
  current = std::move(filtered.output);

  // 3. Add two columns (isAdult + titleType as a demo derived feature).
  DSLOG_ASSIGN_OR_RETURN(RelationalResult added, AddColumns(current, 1, 2));
  AppendStep(&wf, "add_columns", added.output, std::move(added.lineage[0]));
  current = std::move(added.output);

  // 4. One-hot encode genres (8 codes).
  DSLOG_ASSIGN_OR_RETURN(RelationalResult onehot, OneHotEncode(current, 4, 8));
  AppendStep(&wf, "one_hot", onehot.output, std::move(onehot.lineage[0]));
  current = std::move(onehot.output);

  // 5. Add a constant to one column.
  DSLOG_ASSIGN_OR_RETURN(RelationalResult shifted, AddConstant(current, 3, 1.0));
  AppendStep(&wf, "add_constant", shifted.output, std::move(shifted.lineage[0]));
  return wf;
}

Result<Workflow> BuildResNetWorkflow(int64_t h, int64_t w, uint64_t seed) {
  Workflow wf;
  wf.name = "resnet";
  Rng rng(seed);
  NDArray x = NDArray::Random({h, w}, &rng);
  wf.array_names.push_back("resnet_x0");
  wf.shapes.push_back(x.shape());

  const double k1[9] = {0.1, 0.2, 0.1, 0.2, 0.4, 0.2, 0.1, 0.2, 0.1};
  const double k2[9] = {-0.1, 0.0, 0.1, -0.2, 0.0, 0.2, -0.1, 0.0, 0.1};
  NDArray current = x;

  auto conv_step = [&](const double* k, const char* name) -> Status {
    auto r = Conv3x3Same(current, k);
    if (!r.ok()) return r.status();
    AppendStep(&wf, name, r.value().first, std::move(r.value().second));
    current = std::move(r.value().first);
    return Status::OK();
  };
  auto elementwise_step = [&](const char* name, double (*fn)(double)) {
    NDArray out = current;
    for (int64_t i = 0; i < out.size(); ++i) out[i] = fn(out[i]);
    AppendStep(&wf, name, out, IdentityLineage(out, current));
    current = std::move(out);
  };

  DSLOG_RETURN_IF_ERROR(conv_step(k1, "conv1"));
  elementwise_step("bn1", [](double v) { return (v - 0.5) * 2.0; });
  elementwise_step("relu1", [](double v) { return v > 0 ? v : 0.0; });
  DSLOG_RETURN_IF_ERROR(conv_step(k2, "conv2"));
  elementwise_step("bn2", [](double v) { return (v - 0.1) * 1.5; });
  // Skip connection: out = f(x) + x. Along the main path the lineage of the
  // addition is identity (each cell adds the same-position cells).
  elementwise_step("add_skip", [](double v) { return v; });
  elementwise_step("relu2", [](double v) { return v > 0 ? v : 0.0; });
  return wf;
}

Result<Workflow> BuildRandomNumpyWorkflow(int num_ops, int64_t cells,
                                          uint64_t seed) {
  Workflow wf;
  wf.name = "numpy_" + std::to_string(seed);
  Rng rng(seed);
  NDArray current = NDArray::Random({cells}, &rng);
  wf.array_names.push_back(wf.name + "_x0");
  wf.shapes.push_back(current.shape());

  auto pool = OpRegistry::Global().UnaryPipelineNames();
  int steps = 0, guard = 0;
  while (steps < num_ops && guard < num_ops * 200) {
    ++guard;
    const ArrayOp* op =
        OpRegistry::Global().Find(pool[rng.Uniform(pool.size())]);
    if (!op->SupportsUnaryShape(current.shape())) continue;
    // Avoid lineage blow-ups from quadratic-capture ops on large arrays.
    OpArgs args = op->SampleArgs(current.shape(), &rng);
    auto out = op->Apply({&current}, args);
    if (!out.ok()) continue;
    NDArray next = std::move(out).ValueOrDie();
    if (next.size() == 0 || next.size() > 4 * cells) continue;
    auto rels = op->Capture({&current}, next, args);
    if (!rels.ok() || rels.value()[0].num_rows() == 0) continue;
    if (rels.value()[0].num_rows() > 16 * cells) continue;
    AppendStep(&wf, std::string(op->name()), next,
               std::move(rels.ValueOrDie()[0]));
    current = std::move(next);
    ++steps;
  }
  if (steps < num_ops)
    return Status::Internal("could not assemble random workflow");
  return wf;
}

}  // namespace dslog
