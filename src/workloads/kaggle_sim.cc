#include "workloads/kaggle_sim.h"

#include <cmath>
#include <functional>
#include <map>

#include "array/ndarray.h"
#include "array/op.h"
#include "array/op_registry.h"
#include "baselines/storage_format.h"
#include "common/random.h"
#include "provrc/provrc.h"
#include "provrc/serialize.h"
#include "relational/relational_ops.h"

namespace dslog {

namespace {

// Operation categories appearing in data-science notebooks, with a
// representative operation used to *measure* compressibility.
enum class OpCategory2 {
  kElementwiseTransform,  // column math, scaling, casting
  kAggregate,             // describe(), sum(), mean()
  kJoinSorted,            // merge on a sorted key
  kOneHot,                // categorical encoding
  kConcat,                // concat/append frames
  kMatrix,                // model algebra (fit/predict internals)
  kValueFilter,           // df[df.col > x] — value-dependent
  kGroupByUnsorted,       // groupby on an unsorted key
  kSortValues,            // sort_values
  kDropDuplicates,        // unique
};

// Classifies each category as "matches a ProvRC pattern" the way the
// paper's manual inspection does: an operation is compressible when its
// compressed row count stays (near-)constant as the input scales — i.e.,
// its lineage matches the rectangular / absolute-output / relative-output
// patterns of §IV. Measured by compressing miniature instances at two
// scales and comparing row counts.
const std::map<OpCategory2, bool>& CompressibilityByCategory() {
  static const std::map<OpCategory2, bool>* table = [] {
    auto* t = new std::map<OpCategory2, bool>();
    Rng rng(99);
    // capture(n) must produce the category's lineage at scale n.
    auto classify = [](const std::function<LineageRelation(int64_t)>& capture) {
      int64_t rows_small = ProvRcCompress(capture(64)).num_rows();
      int64_t rows_big = ProvRcCompress(capture(256)).num_rows();
      // Pattern-structured lineage keeps a scale-free compressed form.
      return rows_big <= 2 * rows_small && rows_big <= 24;
    };
    auto op1 = [&rng](const char* name) {
      return [name, &rng](int64_t n) {
        const ArrayOp* op = OpRegistry::Global().Find(name);
        NDArray x = NDArray::Random({n}, &rng);
        OpArgs args;
        NDArray out = op->Apply({&x}, args).ValueOrDie();
        return op->Capture({&x}, out, args).ValueOrDie()[0];
      };
    };

    (*t)[OpCategory2::kElementwiseTransform] = classify(op1("sqrt"));
    (*t)[OpCategory2::kAggregate] = classify(op1("sum"));
    (*t)[OpCategory2::kSortValues] = classify(op1("sort"));
    (*t)[OpCategory2::kDropDuplicates] = classify(op1("unique"));
    (*t)[OpCategory2::kMatrix] = classify([&rng](int64_t n) {
      const ArrayOp* op = OpRegistry::Global().Find("matmul");
      int64_t d = std::max<int64_t>(2, n / 16);
      NDArray a = NDArray::Random({d, d}, &rng);
      NDArray b = NDArray::Random({d, d}, &rng);
      NDArray out = op->Apply({&a, &b}, OpArgs()).ValueOrDie();
      return op->Capture({&a, &b}, out, OpArgs()).ValueOrDie()[0];
    });
    (*t)[OpCategory2::kJoinSorted] = classify([&rng](int64_t n) {
      NDArray basics = NDArray::RandomInts({n, 3}, 0, n - 1, &rng);
      for (int64_t i = 0; i < n; ++i) basics[i * 3] = static_cast<double>(i);
      NDArray other = basics;
      return InnerJoin(basics, other, 0, 0).ValueOrDie().lineage[0];
    });
    (*t)[OpCategory2::kOneHot] = classify([&rng](int64_t n) {
      NDArray table = NDArray::RandomInts({n, 2}, 0, 5, &rng);
      return OneHotEncode(table, 1, 6).ValueOrDie().lineage[0];
    });
    (*t)[OpCategory2::kConcat] = classify([&rng](int64_t n) {
      const ArrayOp* op = OpRegistry::Global().Find("concatenate");
      NDArray a = NDArray::Random({n, 2}, &rng);
      NDArray b = NDArray::Random({n, 2}, &rng);
      NDArray out = op->Apply({&a, &b}, OpArgs()).ValueOrDie();
      return op->Capture({&a, &b}, out, OpArgs()).ValueOrDie()[0];
    });
    (*t)[OpCategory2::kValueFilter] = classify([&rng](int64_t n) {
      // Rows kept based on values — scattered identity lineage.
      NDArray table = NDArray::Random({n, 2}, &rng);
      std::vector<int64_t> kept_rows;
      for (int64_t i = 0; i < n; ++i)
        if (table[i * 2] < 0.5) kept_rows.push_back(i);
      LineageRelation rel(2, 2);
      rel.set_shapes({static_cast<int64_t>(kept_rows.size()), 2}, {n, 2});
      for (size_t k = 0; k < kept_rows.size(); ++k)
        for (int64_t c = 0; c < 2; ++c) {
          int64_t o[2] = {static_cast<int64_t>(k), c};
          int64_t in[2] = {kept_rows[k], c};
          rel.Add(o, in);
        }
      return rel;
    });
    (*t)[OpCategory2::kGroupByUnsorted] = classify([&rng](int64_t n) {
      NDArray table = NDArray::RandomInts({n, 2}, 0, 3, &rng);
      return GroupByAggregate(table, 0, 1).ValueOrDie().lineage[0];
    });
    return t;
  }();
  return *table;
}

// Category mixture per archetype (weights sum to 1). Calibrated so the
// compressible share lands near the paper's 66-77% band.
struct Mixture {
  std::vector<std::pair<OpCategory2, double>> weights;
};

Mixture ExplorationMixture() {
  return {{{OpCategory2::kElementwiseTransform, 0.26},
           {OpCategory2::kAggregate, 0.16},
           {OpCategory2::kValueFilter, 0.20},
           {OpCategory2::kGroupByUnsorted, 0.10},
           {OpCategory2::kSortValues, 0.06},
           {OpCategory2::kDropDuplicates, 0.04},
           {OpCategory2::kJoinSorted, 0.06},
           {OpCategory2::kOneHot, 0.05},
           {OpCategory2::kConcat, 0.07}}};
}

Mixture MlMixture() {
  return {{{OpCategory2::kElementwiseTransform, 0.34},
           {OpCategory2::kAggregate, 0.10},
           {OpCategory2::kValueFilter, 0.10},
           {OpCategory2::kGroupByUnsorted, 0.04},
           {OpCategory2::kSortValues, 0.03},
           {OpCategory2::kDropDuplicates, 0.02},
           {OpCategory2::kJoinSorted, 0.08},
           {OpCategory2::kOneHot, 0.13},
           {OpCategory2::kMatrix, 0.10},
           {OpCategory2::kConcat, 0.06}}};
}

OpCategory2 SampleCategory(const Mixture& mix, Rng* rng) {
  double r = rng->NextDouble();
  double acc = 0;
  for (const auto& [cat, w] : mix.weights) {
    acc += w;
    if (r <= acc) return cat;
  }
  return mix.weights.back().first;
}

}  // namespace

NotebookStats SimulateNotebook(bool exploration_heavy, uint64_t seed) {
  Rng rng(seed);
  const auto& compressible = CompressibilityByCategory();
  Mixture mix = exploration_heavy ? ExplorationMixture() : MlMixture();

  NotebookStats stats;
  // Exploration notebooks are longer on average (more, shorter cells);
  // ML notebooks are shorter with longer dependent chains.
  double mean_ops = exploration_heavy ? 65.0 : 45.0;
  double std_ops = exploration_heavy ? 40.0 : 30.0;
  stats.total_ops = std::max(
      4, static_cast<int>(std::lround(mean_ops + std_ops * rng.NextGaussian())));

  // Dependency structure: each op either extends the current chain or
  // branches from an earlier array (restarting a chain of length 1).
  double extend_prob = exploration_heavy ? 0.82 : 0.90;
  int current_chain = 0;
  for (int i = 0; i < stats.total_ops; ++i) {
    OpCategory2 cat = SampleCategory(mix, &rng);
    if (compressible.at(cat)) ++stats.compressible_ops;
    if (current_chain == 0 || rng.Bernoulli(extend_prob)) {
      ++current_chain;
    } else {
      current_chain = 1;
    }
    stats.longest_chain = std::max(stats.longest_chain, current_chain);
  }
  return stats;
}

KaggleSummary SimulateKaggleDataset(const KaggleDatasetProfile& profile,
                                    int notebooks, uint64_t seed) {
  Rng rng(seed);
  std::vector<NotebookStats> all;
  for (int i = 0; i < notebooks; ++i)
    all.push_back(SimulateNotebook(rng.Bernoulli(profile.exploration_share),
                                   seed * 977 + static_cast<uint64_t>(i)));

  auto mean_std = [](const std::vector<double>& v, double* mean, double* sd) {
    double m = 0;
    for (double x : v) m += x;
    m /= static_cast<double>(v.size());
    double acc = 0;
    for (double x : v) acc += (x - m) * (x - m);
    *mean = m;
    *sd = std::sqrt(acc / static_cast<double>(v.size()));
  };
  std::vector<double> totals, comps, pcts, chains;
  for (const auto& s : all) {
    totals.push_back(s.total_ops);
    comps.push_back(s.compressible_ops);
    pcts.push_back(100.0 * s.compressible_ops / std::max(1, s.total_ops));
    chains.push_back(s.longest_chain);
  }
  KaggleSummary summary;
  summary.dataset = profile.name;
  mean_std(totals, &summary.total_mean, &summary.total_std);
  mean_std(comps, &summary.compressible_mean, &summary.compressible_std);
  mean_std(pcts, &summary.pct_mean, &summary.pct_std);
  mean_std(chains, &summary.chain_mean, &summary.chain_std);
  return summary;
}

KaggleDatasetProfile FlightProfile() { return {"Flight", 0.45}; }
KaggleDatasetProfile NetflixProfile() { return {"Netflix", 0.65}; }

}  // namespace dslog
