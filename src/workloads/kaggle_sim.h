// Kaggle-notebook simulator for the Table X coverage estimate. The paper
// manually inspected 20 "Trending" notebooks for two datasets (Flight
// Delays, Netflix Shows) and classified each array operation as
// ProvRC-compressible. Here notebooks are sampled from two archetypes
// (data exploration vs. machine learning) whose op-category mixtures are
// calibrated to the published statistics; each category's compressibility
// is *measured* by compressing a miniature instance of a representative
// operation, not hard-coded.

#ifndef DSLOG_WORKLOADS_KAGGLE_SIM_H_
#define DSLOG_WORKLOADS_KAGGLE_SIM_H_

#include <string>
#include <vector>

namespace dslog {

/// Dataset archetype: mixture weights between exploration and ML notebooks.
struct KaggleDatasetProfile {
  std::string name;
  /// Probability a sampled notebook is exploration-heavy (vs. ML-heavy).
  double exploration_share = 0.5;
};

/// Per-notebook simulation outcome.
struct NotebookStats {
  int total_ops = 0;
  int compressible_ops = 0;
  int longest_chain = 0;
};

/// Aggregates over a set of notebooks (Table X row).
struct KaggleSummary {
  std::string dataset;
  double total_mean = 0, total_std = 0;
  double compressible_mean = 0, compressible_std = 0;
  double pct_mean = 0, pct_std = 0;
  double chain_mean = 0, chain_std = 0;
};

/// Simulates one notebook trace.
NotebookStats SimulateNotebook(bool exploration_heavy, uint64_t seed);

/// Simulates `notebooks` notebooks for a dataset profile and aggregates.
KaggleSummary SimulateKaggleDataset(const KaggleDatasetProfile& profile,
                                    int notebooks, uint64_t seed);

/// The two dataset profiles of Table X.
KaggleDatasetProfile FlightProfile();
KaggleDatasetProfile NetflixProfile();

}  // namespace dslog

#endif  // DSLOG_WORKLOADS_KAGGLE_SIM_H_
