// Workload generators for the evaluation (ICDE'24 §VII): the hand-built
// image and relational pipelines of Fig 8A/8B (Table VIII), the ResNet
// block of Fig 8C, the random numpy pipelines of Fig 9, plus the synthetic
// stand-ins for the paper's external datasets (VIRAT frame, IMDB tables).

#ifndef DSLOG_WORKLOADS_WORKFLOWS_H_
#define DSLOG_WORKLOADS_WORKFLOWS_H_

#include <string>
#include <vector>

#include "array/ndarray.h"
#include "common/result.h"
#include "lineage/lineage_relation.h"

namespace dslog {

class Rng;

/// A linear chain of operations X0 -> X1 -> ... -> Xn with captured
/// cell-level lineage per step.
struct Workflow {
  std::string name;
  /// n+1 array names; shapes[i] is the shape of array i.
  std::vector<std::string> array_names;
  std::vector<std::vector<int64_t>> shapes;
  /// steps[i] holds op name + the lineage relation X_i -> X_{i+1}.
  struct Step {
    std::string op_name;
    LineageRelation relation;
  };
  std::vector<Step> steps;
};

// ------------------------------------------------------- synthetic inputs --

/// Synthetic grayscale surveillance frame: textured background plus a few
/// bright blobs ("cars") — the VIRAT stand-in.
NDArray MakeSurveillanceFrame(int64_t h, int64_t w, uint64_t seed);

/// Synthetic IMDB-like title.basics table (columns: tconst [sorted ids],
/// titleType, isAdult [unsorted 0/1], startYear [sorted], runtime, genres
/// [codes]); rows x 6, dictionary-coded to doubles.
NDArray MakeTitleBasics(int64_t rows, uint64_t seed);

/// Synthetic IMDB-like title.episode table (columns: tconst, parentTconst,
/// season, episode); rows x 4. tconst values overlap MakeTitleBasics ids.
NDArray MakeTitleEpisode(int64_t rows, int64_t basics_rows, uint64_t seed);

// ------------------------------------------------------------- workflows --

/// Fig 8A: resize -> luminosity -> rotate90 -> horizontal flip -> LIME.
Result<Workflow> BuildImageWorkflow(int64_t h, int64_t w, uint64_t seed);

/// Fig 8B: inner join on tconst -> drop NaN columns -> add two columns ->
/// one-hot encode genres -> add constant.
Result<Workflow> BuildRelationalWorkflow(int64_t basics_rows,
                                         int64_t episode_rows, uint64_t seed);

/// Fig 8C: seven steps of a ResNet block (conv, bn, relu, conv, bn,
/// +skip [lineage follows the main path], relu).
Result<Workflow> BuildResNetWorkflow(int64_t h, int64_t w, uint64_t seed);

/// Fig 9: a chain of `num_ops` unary ops sampled from the catalogue's
/// pipeline-compatible pool, starting from a 1-D array of `cells` cells.
Result<Workflow> BuildRandomNumpyWorkflow(int num_ops, int64_t cells,
                                          uint64_t seed);

// --------------------------------------------------- custom capture ops --

/// Nearest-neighbour resize with cell lineage (out <- nearest source cell).
Result<std::pair<NDArray, LineageRelation>> ResizeNearest(const NDArray& frame,
                                                          int64_t out_h,
                                                          int64_t out_w);

/// 3x3 same-padding convolution with window lineage (ResNet conv step).
Result<std::pair<NDArray, LineageRelation>> Conv3x3Same(const NDArray& frame,
                                                        const double* kernel);

}  // namespace dslog

#endif  // DSLOG_WORKLOADS_WORKFLOWS_H_
