// Colstore: the Parquet-like columnar baseline. Layout: row groups of
// kRowGroupSize tuples; within a group each column chunk is independently
// encoded with the cheapest of PLAIN / DICT(+hybrid RLE/bit-pack) / DELTA
// and optionally wrapped in Deflate (the Parquet-GZip configuration).

#include <algorithm>
#include <cstring>
#include <map>

#include "baselines/storage_format.h"
#include "compress/bitpack.h"
#include "compress/deflate.h"
#include "compress/rle.h"
#include "compress/varint.h"

namespace dslog {

namespace {

constexpr char kMagic[4] = {'C', 'O', 'L', '1'};
constexpr int64_t kRowGroupSize = 1 << 17;  // 128 Ki tuples per group

enum Encoding : uint8_t {
  kPlain = 0,
  kDict = 1,
  kDelta = 2,
};

// ------------------------------------------------------- chunk encodings --

std::string EncodePlain(const std::vector<int64_t>& col) {
  std::string out;
  out.resize(col.size() * sizeof(int64_t));
  std::memcpy(out.data(), col.data(), col.size() * sizeof(int64_t));
  return out;
}

bool DecodePlain(const std::string& buf, size_t count,
                 std::vector<int64_t>* out) {
  if (buf.size() != count * sizeof(int64_t)) return false;
  size_t base = out->size();
  out->resize(base + count);
  std::memcpy(out->data() + base, buf.data(), count * sizeof(int64_t));
  return true;
}

[[maybe_unused]] std::string EncodeDelta(const std::vector<int64_t>& col) {
  std::string out;
  int64_t prev = 0;
  for (int64_t v : col) {
    PutVarintSigned(&out, v - prev);
    prev = v;
  }
  return out;
}

bool DecodeDelta(const std::string& buf, size_t count,
                 std::vector<int64_t>* out) {
  size_t pos = 0;
  int64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    int64_t d;
    if (!GetVarintSigned(buf, &pos, &d)) return false;
    prev += d;
    out->push_back(prev);
  }
  return pos == buf.size();
}

// Dictionary encoding: sorted distinct values (delta-varint) + hybrid
// RLE/bit-packed indices (the Parquet RLE_DICTIONARY analogue).
std::string EncodeDict(const std::vector<int64_t>& col, bool* feasible) {
  std::map<int64_t, uint64_t> dict;
  for (int64_t v : col) dict.emplace(v, 0);
  // Dictionaries close to the chunk cardinality do not pay off.
  if (dict.size() * 2 > col.size() + 16) {
    *feasible = false;
    return {};
  }
  *feasible = true;
  uint64_t next = 0;
  for (auto& [v, id] : dict) id = next++;
  std::string out;
  PutVarint64(&out, dict.size());
  int64_t prev = 0;
  for (const auto& [v, id] : dict) {
    PutVarintSigned(&out, v - prev);
    prev = v;
  }
  int bw = BitWidthFor(dict.size() - 1);
  out.push_back(static_cast<char>(bw));
  std::vector<uint64_t> indices;
  indices.reserve(col.size());
  for (int64_t v : col) indices.push_back(dict.at(v));
  HybridRleEncode(indices, bw, &out);
  return out;
}

bool DecodeDict(const std::string& buf, size_t count,
                std::vector<int64_t>* out) {
  size_t pos = 0;
  uint64_t dict_size;
  if (!GetVarint64(buf, &pos, &dict_size)) return false;
  std::vector<int64_t> dict(dict_size);
  int64_t prev = 0;
  for (auto& v : dict) {
    int64_t d;
    if (!GetVarintSigned(buf, &pos, &d)) return false;
    prev += d;
    v = prev;
  }
  if (pos >= buf.size()) return false;
  int bw = static_cast<uint8_t>(buf[pos++]);
  std::vector<uint64_t> indices;
  if (!HybridRleDecode(buf, &pos, count, bw, &indices)) return false;
  for (uint64_t id : indices) {
    if (id >= dict_size) return false;
    out->push_back(dict[id]);
  }
  return true;
}

class ColstoreFormat : public StorageFormat {
 public:
  explicit ColstoreFormat(bool deflate_pages) : deflate_pages_(deflate_pages) {}

  std::string name() const override {
    return deflate_pages_ ? "Parquet-GZip" : "Parquet";
  }

  std::string Encode(const LineageRelation& rel) const override {
    std::string out;
    out.append(kMagic, 4);
    PutVarint64(&out, static_cast<uint64_t>(rel.out_ndim()));
    PutVarint64(&out, static_cast<uint64_t>(rel.in_ndim()));
    for (int64_t d : rel.out_shape()) PutVarint64(&out, static_cast<uint64_t>(d));
    for (int64_t d : rel.in_shape()) PutVarint64(&out, static_cast<uint64_t>(d));
    PutVarint64(&out, static_cast<uint64_t>(rel.num_rows()));
    out.push_back(deflate_pages_ ? 1 : 0);

    const int arity = rel.arity();
    const int64_t nrows = rel.num_rows();
    std::vector<int64_t> col;
    for (int64_t group_start = 0; group_start < nrows;
         group_start += kRowGroupSize) {
      int64_t group_rows = std::min(kRowGroupSize, nrows - group_start);
      for (int c = 0; c < arity; ++c) {
        col.clear();
        col.reserve(static_cast<size_t>(group_rows));
        for (int64_t r = 0; r < group_rows; ++r)
          col.push_back(rel.flat()[static_cast<size_t>(
              (group_start + r) * arity + c)]);
        // Parquet's default encoding choice: dictionary when the chunk's
        // cardinality makes it worthwhile, plain otherwise. (A DELTA
        // encoder exists in this file for completeness but is not part of
        // the default selection, mirroring parquet-mr V1 behaviour — the
        // configuration the paper benchmarks against.)
        bool dict_ok = false;
        std::string dict_buf = EncodeDict(col, &dict_ok);
        std::string plain_buf;
        Encoding enc;
        std::string* best;
        if (dict_ok && dict_buf.size() < col.size() * sizeof(int64_t)) {
          enc = kDict;
          best = &dict_buf;
        } else {
          plain_buf = EncodePlain(col);
          enc = kPlain;
          best = &plain_buf;
        }
        std::string payload =
            deflate_pages_ ? DeflateCompress(*best) : std::move(*best);
        out.push_back(static_cast<char>(enc));
        PutVarint64(&out, payload.size());
        out.append(payload);
      }
    }
    return out;
  }

  Result<LineageRelation> Decode(const std::string& data) const override {
    if (data.size() < 4 || std::memcmp(data.data(), kMagic, 4) != 0)
      return Status::Corruption("COL1: bad magic");
    size_t pos = 4;
    uint64_t l, m;
    if (!GetVarint64(data, &pos, &l) || !GetVarint64(data, &pos, &m))
      return Status::Corruption("COL1: bad arity");
    if (l > 64 || m > 64) return Status::Corruption("COL1: absurd arity");
    std::vector<int64_t> out_shape(l), in_shape(m);
    for (auto& d : out_shape) {
      uint64_t v;
      if (!GetVarint64(data, &pos, &v)) return Status::Corruption("COL1: shape");
      d = static_cast<int64_t>(v);
    }
    for (auto& d : in_shape) {
      uint64_t v;
      if (!GetVarint64(data, &pos, &v)) return Status::Corruption("COL1: shape");
      d = static_cast<int64_t>(v);
    }
    uint64_t nrows;
    if (!GetVarint64(data, &pos, &nrows))
      return Status::Corruption("COL1: rows");
    if (pos >= data.size() && nrows > 0)
      return Status::Corruption("COL1: truncated");
    bool deflated = nrows > 0 || pos < data.size()
                        ? static_cast<uint8_t>(data[pos++]) != 0
                        : false;

    const int arity = static_cast<int>(l + m);
    LineageRelation rel(static_cast<int>(l), static_cast<int>(m));
    rel.set_shapes(out_shape, in_shape);
    std::vector<std::vector<int64_t>> cols(static_cast<size_t>(arity));
    for (uint64_t group_start = 0; group_start < nrows;
         group_start += kRowGroupSize) {
      uint64_t group_rows =
          std::min<uint64_t>(kRowGroupSize, nrows - group_start);
      for (int c = 0; c < arity; ++c) {
        if (pos >= data.size()) return Status::Corruption("COL1: truncated");
        Encoding enc = static_cast<Encoding>(data[pos++]);
        uint64_t sz;
        if (!GetVarint64(data, &pos, &sz))
          return Status::Corruption("COL1: chunk size");
        if (pos + sz > data.size())
          return Status::Corruption("COL1: truncated chunk");
        std::string payload = data.substr(pos, sz);
        pos += sz;
        if (deflated) {
          auto raw = DeflateDecompress(payload);
          if (!raw.ok()) return raw.status();
          payload = std::move(raw).value();
        }
        bool ok = false;
        switch (enc) {
          case kPlain:
            ok = DecodePlain(payload, group_rows, &cols[static_cast<size_t>(c)]);
            break;
          case kDict:
            ok = DecodeDict(payload, group_rows, &cols[static_cast<size_t>(c)]);
            break;
          case kDelta:
            ok = DecodeDelta(payload, group_rows, &cols[static_cast<size_t>(c)]);
            break;
        }
        if (!ok) return Status::Corruption("COL1: bad chunk payload");
      }
    }
    // Re-interleave columns into row-major tuples.
    rel.mutable_flat().resize(static_cast<size_t>(nrows) * arity);
    for (int c = 0; c < arity; ++c) {
      if (cols[static_cast<size_t>(c)].size() != nrows)
        return Status::Corruption("COL1: column length mismatch");
      for (uint64_t r = 0; r < nrows; ++r)
        rel.mutable_flat()[static_cast<size_t>(r * arity + c)] =
            cols[static_cast<size_t>(c)][r];
    }
    return rel;
  }

 private:
  bool deflate_pages_;
};

}  // namespace

std::unique_ptr<StorageFormat> MakeColstoreFormat(bool deflate_pages) {
  return std::make_unique<ColstoreFormat>(deflate_pages);
}

}  // namespace dslog
