// Raw (row-oriented varint tuples) and Array (dense fixed-width) formats.

#include <cstring>

#include "baselines/storage_format.h"
#include "compress/varint.h"

namespace dslog {

namespace {

constexpr char kRawMagic[4] = {'R', 'A', 'W', '1'};
constexpr char kArrMagic[4] = {'A', 'R', 'R', '1'};

// Shared header: arities and shapes.
void PutHeader(const LineageRelation& rel, std::string* out) {
  PutVarint64(out, static_cast<uint64_t>(rel.out_ndim()));
  PutVarint64(out, static_cast<uint64_t>(rel.in_ndim()));
  for (int64_t d : rel.out_shape()) PutVarint64(out, static_cast<uint64_t>(d));
  for (int64_t d : rel.in_shape()) PutVarint64(out, static_cast<uint64_t>(d));
  PutVarint64(out, static_cast<uint64_t>(rel.num_rows()));
}

bool GetHeader(const std::string& data, size_t* pos, LineageRelation* rel,
               uint64_t* nrows) {
  uint64_t l, m;
  if (!GetVarint64(data, pos, &l) || !GetVarint64(data, pos, &m)) return false;
  if (l > 64 || m > 64) return false;
  std::vector<int64_t> out_shape(l), in_shape(m);
  for (auto& d : out_shape) {
    uint64_t v;
    if (!GetVarint64(data, pos, &v)) return false;
    d = static_cast<int64_t>(v);
  }
  for (auto& d : in_shape) {
    uint64_t v;
    if (!GetVarint64(data, pos, &v)) return false;
    d = static_cast<int64_t>(v);
  }
  if (!GetVarint64(data, pos, nrows)) return false;
  *rel = LineageRelation(static_cast<int>(l), static_cast<int>(m));
  rel->set_shapes(out_shape, in_shape);
  return true;
}

class RawFormat : public StorageFormat {
 public:
  std::string name() const override { return "Raw"; }

  std::string Encode(const LineageRelation& rel) const override {
    std::string out;
    out.append(kRawMagic, 4);
    PutHeader(rel, &out);
    // Row-oriented: tuple values varint-packed in order, no cross-row
    // compression (row-store layout).
    for (int64_t v : rel.flat()) PutVarint64(&out, static_cast<uint64_t>(v));
    return out;
  }

  Result<LineageRelation> Decode(const std::string& data) const override {
    if (data.size() < 4 || std::memcmp(data.data(), kRawMagic, 4) != 0)
      return Status::Corruption("RAW1: bad magic");
    size_t pos = 4;
    LineageRelation rel;
    uint64_t nrows;
    if (!GetHeader(data, &pos, &rel, &nrows))
      return Status::Corruption("RAW1: bad header");
    size_t total = static_cast<size_t>(nrows) * rel.arity();
    rel.mutable_flat().reserve(total);
    for (size_t i = 0; i < total; ++i) {
      uint64_t v;
      if (!GetVarint64(data, &pos, &v))
        return Status::Corruption("RAW1: truncated tuples");
      rel.mutable_flat().push_back(static_cast<int64_t>(v));
    }
    return rel;
  }
};

class ArrayFormat : public StorageFormat {
 public:
  std::string name() const override { return "Array"; }

  std::string Encode(const LineageRelation& rel) const override {
    std::string out;
    out.append(kArrMagic, 4);
    PutHeader(rel, &out);
    // Dense fixed-width payload, numpy-style: rows x arity int64 cells.
    size_t start = out.size();
    out.resize(start + rel.flat().size() * sizeof(int64_t));
    if (!rel.flat().empty())  // empty vector may hand memcpy a null src
      std::memcpy(out.data() + start, rel.flat().data(),
                  rel.flat().size() * sizeof(int64_t));
    return out;
  }

  Result<LineageRelation> Decode(const std::string& data) const override {
    if (data.size() < 4 || std::memcmp(data.data(), kArrMagic, 4) != 0)
      return Status::Corruption("ARR1: bad magic");
    size_t pos = 4;
    LineageRelation rel;
    uint64_t nrows;
    if (!GetHeader(data, &pos, &rel, &nrows))
      return Status::Corruption("ARR1: bad header");
    size_t total = static_cast<size_t>(nrows) * rel.arity();
    if (data.size() - pos != total * sizeof(int64_t))
      return Status::Corruption("ARR1: payload size mismatch");
    rel.mutable_flat().resize(total);
    if (total > 0)  // empty vector may hand memcpy a null dst
      std::memcpy(rel.mutable_flat().data(), data.data() + pos,
                  total * sizeof(int64_t));
    return rel;
  }
};

}  // namespace

std::unique_ptr<StorageFormat> MakeRawFormat() {
  return std::make_unique<RawFormat>();
}

std::unique_ptr<StorageFormat> MakeArrayFormat() {
  return std::make_unique<ArrayFormat>();
}

std::string RelationToCsv(const LineageRelation& relation) {
  std::string out;
  for (int k = 0; k < relation.out_ndim(); ++k) {
    if (k) out += ",";
    out += "b" + std::to_string(k + 1);
  }
  for (int k = 0; k < relation.in_ndim(); ++k) {
    out += ",a" + std::to_string(k + 1);
  }
  out += "\n";
  const int arity = relation.arity();
  for (int64_t r = 0; r < relation.num_rows(); ++r) {
    auto row = relation.Row(r);
    for (int k = 0; k < arity; ++k) {
      if (k) out += ",";
      out += std::to_string(row[static_cast<size_t>(k)]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace dslog
