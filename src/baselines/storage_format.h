// Storage-format baselines for lineage tables (ICDE'24 §VII.B): the
// formats ProvRC is compared against in Table VII and the query
// experiments. Each format encodes an uncompressed lineage relation to a
// byte buffer (what would be written to disk) and decodes it back for
// query processing (baselines join over decompressed relations; only
// DSLog queries in situ).

#ifndef DSLOG_BASELINES_STORAGE_FORMAT_H_
#define DSLOG_BASELINES_STORAGE_FORMAT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "lineage/lineage_relation.h"

namespace dslog {

/// Abstract lineage storage format.
class StorageFormat {
 public:
  virtual ~StorageFormat() = default;

  virtual std::string name() const = 0;

  /// Serializes the relation (the on-disk representation).
  virtual std::string Encode(const LineageRelation& relation) const = 0;

  /// Recovers the relation (baselines must decompress before querying).
  virtual Result<LineageRelation> Decode(const std::string& data) const = 0;
};

/// Row-oriented tuples, varint-packed per value — the "Raw" baseline
/// (Ground-style row store; DuckDB-equivalent layout in the paper).
std::unique_ptr<StorageFormat> MakeRawFormat();

/// Dense fixed-width int64 ndarray file — the "Array" (numpy) baseline.
std::unique_ptr<StorageFormat> MakeArrayFormat();

/// Parquet-like columnar format: row groups, per-chunk choice of PLAIN /
/// DICT+hybrid-RLE / DELTA encodings. `deflate_pages` adds general-purpose
/// compression per column chunk (the Parquet-GZip baseline).
std::unique_ptr<StorageFormat> MakeColstoreFormat(bool deflate_pages);

/// Per-column RLE + order-0 range coding — the "Turbo-RC" baseline
/// (run-length + integer entropy coding; no cross-column structure).
std::unique_ptr<StorageFormat> MakeTurboRcFormat();

/// All baselines in Table VII order: Raw, Array, Parquet, Parquet-GZip,
/// Turbo-RC.
std::vector<std::unique_ptr<StorageFormat>> MakeAllBaselineFormats();

/// Renders the relation as a CSV file body (header + one line per tuple) —
/// the "raw CSV" reference of the Table IX coverage criterion.
std::string RelationToCsv(const LineageRelation& relation);

}  // namespace dslog

#endif  // DSLOG_BASELINES_STORAGE_FORMAT_H_
