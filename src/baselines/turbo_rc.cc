// Turbo-RC: per-column run-length encoding followed by order-0 range
// (entropy) coding. Deliberately exploits no cross-column or relative
// structure — the paper observes it is "the most consistent" baseline for
// exactly that reason.

#include <cstring>

#include "baselines/storage_format.h"
#include "compress/range_coder.h"
#include "compress/rle.h"
#include "compress/varint.h"

namespace dslog {

namespace {

constexpr char kMagic[4] = {'T', 'R', 'C', '1'};

class TurboRcFormat : public StorageFormat {
 public:
  std::string name() const override { return "Turbo-RC"; }

  std::string Encode(const LineageRelation& rel) const override {
    std::string out;
    out.append(kMagic, 4);
    PutVarint64(&out, static_cast<uint64_t>(rel.out_ndim()));
    PutVarint64(&out, static_cast<uint64_t>(rel.in_ndim()));
    for (int64_t d : rel.out_shape()) PutVarint64(&out, static_cast<uint64_t>(d));
    for (int64_t d : rel.in_shape()) PutVarint64(&out, static_cast<uint64_t>(d));
    PutVarint64(&out, static_cast<uint64_t>(rel.num_rows()));

    const int arity = rel.arity();
    const int64_t nrows = rel.num_rows();
    std::vector<int64_t> col(static_cast<size_t>(nrows));
    for (int c = 0; c < arity; ++c) {
      for (int64_t r = 0; r < nrows; ++r)
        col[static_cast<size_t>(r)] =
            rel.flat()[static_cast<size_t>(r * arity + c)];
      // RLE front end (values are *not* delta-coded: plain run-length as in
      // the paper's description), then entropy-coded bytes.
      std::string rle;
      RlePairsEncode(col, &rle);
      std::string coded = RangeCoderCompress(rle);
      PutVarint64(&out, coded.size());
      out.append(coded);
    }
    return out;
  }

  Result<LineageRelation> Decode(const std::string& data) const override {
    if (data.size() < 4 || std::memcmp(data.data(), kMagic, 4) != 0)
      return Status::Corruption("TRC1: bad magic");
    size_t pos = 4;
    uint64_t l, m;
    if (!GetVarint64(data, &pos, &l) || !GetVarint64(data, &pos, &m))
      return Status::Corruption("TRC1: bad arity");
    if (l > 64 || m > 64) return Status::Corruption("TRC1: absurd arity");
    std::vector<int64_t> out_shape(l), in_shape(m);
    for (auto& d : out_shape) {
      uint64_t v;
      if (!GetVarint64(data, &pos, &v)) return Status::Corruption("TRC1: shape");
      d = static_cast<int64_t>(v);
    }
    for (auto& d : in_shape) {
      uint64_t v;
      if (!GetVarint64(data, &pos, &v)) return Status::Corruption("TRC1: shape");
      d = static_cast<int64_t>(v);
    }
    uint64_t nrows;
    if (!GetVarint64(data, &pos, &nrows))
      return Status::Corruption("TRC1: rows");

    const int arity = static_cast<int>(l + m);
    LineageRelation rel(static_cast<int>(l), static_cast<int>(m));
    rel.set_shapes(out_shape, in_shape);
    rel.mutable_flat().resize(static_cast<size_t>(nrows) * arity);
    for (int c = 0; c < arity; ++c) {
      uint64_t sz;
      if (!GetVarint64(data, &pos, &sz))
        return Status::Corruption("TRC1: column size");
      if (pos + sz > data.size())
        return Status::Corruption("TRC1: truncated column");
      auto rle = RangeCoderDecompress(data.substr(pos, sz));
      pos += sz;
      if (!rle.ok()) return rle.status();
      std::vector<int64_t> col;
      size_t rle_pos = 0;
      if (!RlePairsDecode(rle.value(), &rle_pos, &col) || col.size() != nrows)
        return Status::Corruption("TRC1: bad column payload");
      for (uint64_t r = 0; r < nrows; ++r)
        rel.mutable_flat()[static_cast<size_t>(r * arity + c)] = col[r];
    }
    return rel;
  }
};

}  // namespace

std::unique_ptr<StorageFormat> MakeTurboRcFormat() {
  return std::make_unique<TurboRcFormat>();
}

std::vector<std::unique_ptr<StorageFormat>> MakeAllBaselineFormats() {
  std::vector<std::unique_ptr<StorageFormat>> formats;
  formats.push_back(MakeRawFormat());
  formats.push_back(MakeArrayFormat());
  formats.push_back(MakeColstoreFormat(/*deflate_pages=*/false));
  formats.push_back(MakeColstoreFormat(/*deflate_pages=*/true));
  formats.push_back(MakeTurboRcFormat());
  return formats;
}

}  // namespace dslog
