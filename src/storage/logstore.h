// LogStore: the single-file, segmented on-disk catalog format behind
// DSLog::OpenInSitu. Layout:
//
//   +------------------+ offset 0
//   | header  "DSLSTOR1"|  8 bytes
//   +------------------+ offset 8
//   | segment 0        |  one serialized CompressedTable per stored edge,
//   | segment 1        |  back to back; two layouts coexist in one file:
//   | ...              |    v1 = ProvRC-GZip (compact, decode-to-owned)
//   |                  |    v2 = PRC2 columnar (8-aligned; the on-disk
//   |                  |         bytes are the kernels' scan format)
//   +------------------+ footer_offset
//   | footer           |  footer version 1-3: varint-coded — format
//   |                  |  version, array catalog, edge index (names, op,
//   |                  |  offset, length, FNV-64 checksum, layout, row
//   |                  |  count, planner stats per segment), predictor blob
//   |                  |
//   |                  |  footer version 4 (8-aligned in the file): the
//   |                  |  varint prelude (version, array catalog, predictor
//   |                  |  blob), zero-padding to 8, then a flat index read
//   |                  |  in place with zero deserialization —
//   |                  |    u64 num_segments | u64 name_heap_size
//   |                  |    | u64 phf_size
//   |                  |    | fixed 88-byte segment records x num_segments
//   |                  |    | name heap | pad to 8 | PHF block (common/phf)
//   |                  |  Records sit in minimal-perfect-hash position
//   |                  |  order: the PHF position of an edge key IS its
//   |                  |  segment id, so an edge probe is hash -> PHF ->
//   |                  |  one name memcmp, with no map ever materialized.
//   +------------------+ file_size - 20
//   | trailer          |  fixed64 footer_offset | fixed64 footer checksum
//   |                  |  | magic "DSLF"
//   +------------------+ file_size
//
// A reader maps the file once (mmap, with a whole-file read fallback) and
// parses only the footer; segments resolve lazily on first touch through a
// size-bounded LRU cache. A v1 segment decompresses into an owned table;
// a v2 segment is *borrowed*: the cache entry holds a CompressedTableView
// aliasing the mapped bytes plus the backward-join interval index — zero
// bytes decompressed, zero rows materialized (LogStoreStats counts both).
// Segment checksums are verified at first touch (and the footer checksum
// at open), turning any flipped byte or truncation into Status::Corruption
// instead of UB. Version-4 footers checksum with the wide 8-byte-lane hash
// (hash.h Hash64Wide) so open stays fast on million-edge catalogs; varint
// footers keep the original byte-wise FNV for compatibility.
//
// Edge lookup: a v4 reader binds a PhfView over the footer's PHF block —
// O(1) per probe, the per-key fingerprint rejects absent edges before any
// record or segment byte is read, and a candidate hit is confirmed against
// the name heap so a false fingerprint match can never serve a wrong
// segment. v1-v3 files (and v4 opened with use_phf_index=false) fall back
// to an edge-name map built lazily on the first name lookup, so
// stats()-only and id-addressed opens never pay for it.
//
// Thread-safety: LogStore is safe for concurrent readers. The decode cache
// is lock-striped: segments map to cache_shards shards (id mod shard
// count), each with its own mutex, LRU list, and byte budget, so readers
// resolving different segments never contend on one cache lock.
// Decompression/index builds run outside every lock (two threads racing on
// the same cold segment may both resolve it — both results are valid and
// one wins the cache slot).
//
// Writing goes through LogStoreWriter: Create() builds a fresh file and
// commits it atomically (temp file + rename) in Finish(); OpenForAppend()
// extends an existing file in place by overwriting its footer with new
// segments and writing a fresh footer/trailer — a crash mid-append leaves
// an invalid trailer, which Open() reports as Corruption (detected, never
// silently torn), while all previously committed segment bytes remain
// intact in the file.

#ifndef DSLOG_STORAGE_LOGSTORE_H_
#define DSLOG_STORAGE_LOGSTORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/mmap_file.h"
#include "common/phf.h"
#include "common/result.h"
#include "common/status.h"
#include "provrc/compressed_table.h"
#include "provrc/interval_index.h"

namespace dslog {

/// Canonical map key for an edge in_arr -> out_arr, shared by the DSLog
/// catalog, the legacy directory format, and the LogStoreWriter index —
/// one scheme, so dedup/replace decisions always agree.
inline std::string EdgeStoreKey(std::string_view in_arr,
                                std::string_view out_arr) {
  std::string key;
  key.reserve(in_arr.size() + 1 + out_arr.size());
  key.append(in_arr);
  key.push_back('\x1f');
  key.append(out_arr);
  return key;
}

/// FNV-64 of EdgeStoreKey(in_arr, out_arr) computed piecewise — no key
/// string is ever materialized. This is the key hash the v4 PHF index is
/// built over; writer and reader must agree on it byte for byte.
inline uint64_t EdgeKeyHash(std::string_view in_arr,
                            std::string_view out_arr) {
  uint64_t h = Hash64(in_arr);
  h = Hash64("\x1f", 1, h);
  return Hash64(out_arr, h);
}

/// Exact output-attribute-0 interval-column stats of a table — one strided
/// pass. Writers stamp these into v3 footers so readers can plan θ-joins
/// against a segment without resolving it.
IntervalColumnStats ComputeOut0Stats(const CompressedTable& table);

/// On-disk encoding of one segment's table bytes.
enum class SegmentLayout : uint32_t {
  /// ProvRC-GZip (the paper's storage default): smallest bytes, decoded
  /// into an owned table on first touch.
  kProvRcGzip = 1,
  /// PRC2 flat columnar: the scan format itself — queried zero-copy from
  /// the mapping. Larger on disk; no decode latency or allocation.
  kColumnar = 2,
};

struct LogStoreOptions {
  /// Budget for resolved segments kept resident (approximate bytes: decoded
  /// tables for v1, interval indexes for borrowed v2 views). Least-recently-
  /// used segments are evicted past it; in-flight queries keep their pinned
  /// entries alive regardless.
  int64_t cache_capacity_bytes = 64ll << 20;
  /// Verify the per-segment FNV-64 checksum before first use of a segment.
  bool verify_checksums = true;
  /// Map the file (the in-situ fast path). false forces the whole-file
  /// read fallback — same behaviour, heap-backed.
  bool use_mmap = true;
  /// Lock stripes of the decode cache. Each shard owns segments with
  /// id % cache_shards == shard, a private LRU list, and an equal slice of
  /// cache_capacity_bytes (never below 1 byte, so eviction still engages
  /// on tiny budgets). Clamped to >= 1; 1 reproduces the old single-lock
  /// cache (contention tests sweep this).
  int cache_shards = 8;
  /// Bind the v4 footer's minimal-perfect-hash edge index at Open. false
  /// forces the lazy name-map fallback even on v4 files — compat testing
  /// and a kill switch; results must be identical either way.
  bool use_phf_index = true;
};

/// Decode/cache counters (test + bench observability). This is the
/// *snapshot* type returned by LogStore::stats(); the live counters are
/// per-cache-shard relaxed atomics mutated under the owning shard's mutex,
/// so a snapshot taken under that mutex is internally consistent for the
/// shard (its invariants hold: decode_count <= cache_misses,
/// tables_materialized + segments_borrowed == decode_count,
/// segments_touched <= decode_count). Cross-shard skew is bounded to
/// events that complete while stats() walks the shards — every event is
/// counted in exactly one shard, so totals are exact once readers quiesce.
struct LogStoreStats {
  int64_t segment_count = 0;
  /// Distinct segments resolved at least once since open.
  int64_t segments_touched = 0;
  /// Total cache-fill events (>= segments_touched when eviction re-fills).
  int64_t decode_count = 0;
  /// Compressed bytes consumed by gzip decodes (0 on a pure-v2 store).
  int64_t bytes_decompressed = 0;
  /// Cache fills that built an owned CompressedTable (v1 decodes and v2
  /// alignment fallbacks).
  int64_t tables_materialized = 0;
  /// Rows copied into owned arenas by those fills. A zero-copy v2 path
  /// query keeps this at 0 — the acceptance signal that no per-row data
  /// was allocated in the decode path.
  int64_t rows_materialized = 0;
  /// Cache fills that borrowed a v2 view straight from the mapping.
  int64_t segments_borrowed = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t evictions = 0;
};

/// Read side: a mapped log file serving lazily-resolved edge tables.
class LogStore {
 public:
  struct SegmentInfo {
    std::string in_arr;
    std::string out_arr;
    std::string op_name;
    uint64_t offset = 0;  // absolute file offset of the segment bytes
    uint64_t length = 0;
    uint64_t checksum = 0;  // FNV-64 over the segment bytes
    SegmentLayout layout = SegmentLayout::kProvRcGzip;
    int64_t row_count = -1;  // -1 = unknown (v1 footers predate the field)
    /// Output-attribute-0 interval-column stats (v3 footers): the join
    /// planner's cost-model inputs, readable without touching the segment
    /// bytes. Invalid (default) on pre-v3 footers and on raw-shuttled
    /// segments whose source had no stats — the planner then falls back
    /// to the resolved index's exact stats.
    IntervalColumnStats out0_stats;
  };

  /// A resolved segment: the scan view, its backward-join index, and a pin
  /// keeping both (and any owned arena behind the view) alive across cache
  /// evictions for as long as the caller holds it.
  struct PinnedTable {
    CompressedTableView view;
    const IntervalIndex* index = nullptr;
    std::shared_ptr<const void> pin;
  };

  /// Maps `path`, validates header/trailer/footer (footer checksum
  /// included), and indexes the segments. No segment is resolved.
  static Result<std::unique_ptr<LogStore>> Open(
      const std::string& path, const LogStoreOptions& options = {});

  const std::map<std::string, std::vector<int64_t>>& arrays() const {
    return arrays_;
  }

  /// Number of indexed segments. O(1) for every footer version.
  size_t segment_count() const { return num_segments_; }

  /// Metadata of segment `id` by value. v1-v3: a copy of the parsed entry.
  /// v4: decoded on the fly from the footer's flat record (three short
  /// string copies) — use the field-level accessors below on hot paths.
  SegmentInfo segment_info(size_t id) const;

  /// On-disk byte length of segment `id` without materializing names.
  int64_t segment_length(size_t id) const;

  /// Join-planner stats of segment `id` without materializing names.
  IntervalColumnStats segment_out0_stats(size_t id) const;

  /// All segment metadata. v1-v3: the eagerly parsed vector. v4: built on
  /// first call (one pass over the flat records) — conversion, save and
  /// inspect convenience, not a query path.
  const std::vector<SegmentInfo>& segments() const;

  /// Segment id of edge in_arr -> out_arr, or -1 when the store holds no
  /// such edge. v4 + PHF: one hash, one O(1) PHF probe, one name memcmp —
  /// the fingerprint rejects absent edges before any record bytes are
  /// touched, and the name check means a fingerprint false positive can
  /// never return a wrong segment. Fallback (v1-v3, or use_phf_index
  /// false): an owned edge-name map built lazily on the first call.
  Result<int64_t> FindSegmentId(std::string_view in_arr,
                                std::string_view out_arr) const;

  /// How edge lookups resolve on this store (observability: inspect tool,
  /// benches).
  enum class EdgeIndexKind { kPhf, kLazyMap };
  EdgeIndexKind edge_index_kind() const {
    return phf_enabled_ ? EdgeIndexKind::kPhf : EdgeIndexKind::kLazyMap;
  }
  /// Index size accounting; 0 bits/key on the map path (nothing on disk).
  double index_bits_per_key() const {
    return phf_enabled_ ? phf_.bits_per_key() : 0.0;
  }
  uint32_t index_fingerprint_bits() const {
    return phf_enabled_ ? phf_.fingerprint_bits() : 0;
  }
  /// True once the lazy fallback name map exists (test hook: proves that
  /// stats()-only and id-addressed opens never built it).
  bool name_index_built() const {
    return name_map_built_.load(std::memory_order_acquire);
  }

  /// Serialized ReusePredictor state ("" when the file carries none).
  const std::string& predictor_state() const { return predictor_state_; }

  /// Per-call observability record of one View() resolution (profiling).
  /// Costs nothing beyond two clock reads on the cold-resolve path; the
  /// cache-hit path fills only the booleans/bytes.
  struct ViewEvent {
    bool cache_hit = false;
    bool borrowed = false;             // v2 zero-copy borrow
    int64_t segment_bytes = 0;         // on-disk segment length
    int64_t bytes_decompressed = 0;    // gzip input consumed (0 on hit/v2)
    int64_t rows_materialized = 0;     // rows copied into owned arenas
    int64_t resolve_us = 0;            // checksum + decode + index build
  };

  /// The scan view of segment `id`, resolving on first touch (gzip decode
  /// for v1, zero-copy borrow for v2) and serving repeats from the LRU
  /// cache. This is the query path. `ev`, when non-null, receives how this
  /// call resolved (profiled queries thread it into their HopProfile).
  Result<PinnedTable> View(size_t id, ViewEvent* ev = nullptr) const;

  /// The segment as an owned CompressedTable (bench/test hook and legacy
  /// transcodes). v1 serves the cached decode; v2 materializes a fresh
  /// owned copy per call — query code should use View().
  Result<std::shared_ptr<const CompressedTable>> Table(size_t id) const;

  /// Raw (still-serialized) bytes of segment `id` — zero-copy view into
  /// the mapping. Lets converters/appenders shuttle segments without a
  /// decode/re-encode round trip.
  std::string_view SegmentView(size_t id) const;

  LogStoreStats stats() const;

  const std::string& path() const { return path_; }
  int64_t file_size() const { return static_cast<int64_t>(file_.size()); }
  uint32_t format_version() const { return format_version_; }
  bool mapped() const { return file_.mapped(); }

 private:
  LogStore() = default;

  /// One cached resolution: `table` owns the arenas for v1 decodes (null
  /// for v2 borrows, whose view aliases the mapping), `index` is always
  /// built. Handed out via shared_ptr so pins survive eviction.
  struct ResolvedSegment {
    std::shared_ptr<const CompressedTable> table;
    CompressedTableView view;
    IntervalIndex index;
  };

  struct CacheEntry {
    std::shared_ptr<const ResolvedSegment> segment;
    int64_t charge = 0;
    std::list<size_t>::iterator lru_it;
  };

  /// Checksum-verifies (first touch) and resolves segment bytes into a
  /// ResolvedSegment. Runs outside the cache lock.
  Result<std::shared_ptr<const ResolvedSegment>> ResolveSegment(
      size_t id, int64_t* charge, int64_t* decompressed, bool* borrowed,
      int64_t* rows_copied) const;

  /// Live per-shard counters: relaxed atomics *written only under the
  /// owning shard's mutex* (so the per-shard invariants documented on
  /// LogStoreStats always hold between mutations) but readable without it
  /// — stats() still takes the mutex per shard so each shard's snapshot is
  /// a consistent cut, while TSan sees no data race from any lock-free
  /// probing of individual fields.
  struct ShardStats {
    std::atomic<int64_t> segments_touched{0};
    std::atomic<int64_t> decode_count{0};
    std::atomic<int64_t> bytes_decompressed{0};
    std::atomic<int64_t> tables_materialized{0};
    std::atomic<int64_t> rows_materialized{0};
    std::atomic<int64_t> segments_borrowed{0};
    std::atomic<int64_t> cache_hits{0};
    std::atomic<int64_t> cache_misses{0};
    std::atomic<int64_t> evictions{0};
  };

  /// One lock stripe of the decode cache: segments with
  /// id % num_cache_shards_ == this shard's index. Stats are kept per
  /// shard and summed in stats() so the hot path never touches a shared
  /// counter.
  struct CacheShard {
    std::mutex mu;  // guards everything below (stats: writes only)
    std::unordered_map<size_t, CacheEntry> cache;
    std::list<size_t> lru;  // front = most recent
    int64_t bytes = 0;
    ShardStats stats;
  };

  CacheShard& ShardFor(size_t id) const {
    return cache_shards_[id % num_cache_shards_];
  }

  /// v4 flat-record field reads (memcpy-based: the heap-read fallback has
  /// no alignment guarantee).
  uint64_t RecU64(size_t id, size_t field_offset) const;
  int64_t RecI64(size_t id, size_t field_offset) const;
  uint32_t RecU32(size_t id, size_t field_offset) const;
  /// Name-heap views of a v4 record. false when the record's name extent
  /// falls outside the heap — impossible on a checksum-verified footer,
  /// surfaced as Corruption rather than UB if it ever happens.
  bool SegNames(size_t id, std::string_view* in_arr, std::string_view* out_arr,
                std::string_view* op_name) const;
  /// Builds the lazy fallback name map (first name lookup only).
  void BuildNameMap() const;

  std::string path_;
  MmapFile file_;
  LogStoreOptions options_;
  uint32_t format_version_ = 0;
  std::map<std::string, std::vector<int64_t>> arrays_;
  size_t num_segments_ = 0;
  /// v1-v3: filled at Open. v4: materialized lazily by segments() from the
  /// flat records (guarded by segments_once_; immutable afterwards).
  mutable std::vector<SegmentInfo> segments_;
  mutable std::once_flag segments_once_;
  /// v4 footer views into the mapped file (empty on v1-v3).
  std::string_view seg_records_;
  std::string_view name_heap_;
  /// Bound PHF edge index (v4 with use_phf_index; empty block -> disabled).
  PhfView phf_;
  bool phf_enabled_ = false;
  /// Lazy fallback edge-name map: EdgeStoreKey -> segment id. Built at
  /// most once, on the first name lookup that cannot go through the PHF.
  mutable std::once_flag name_map_once_;
  mutable std::unordered_map<std::string, size_t> name_map_;
  mutable std::atomic<bool> name_map_built_{false};
  mutable bool name_map_corrupt_ = false;  // set during BuildNameMap only
  std::string predictor_state_;

  /// Striped cache state. The array and shard count are fixed at Open
  /// (before any concurrency), so ShardFor needs no lock. A LogStore is
  /// only handed out behind unique_ptr/shared_ptr, so the non-movable
  /// shard array is fine. Per-shard byte budget: see cache_shards docs.
  size_t num_cache_shards_ = 1;
  int64_t shard_capacity_bytes_ = 0;
  mutable std::unique_ptr<CacheShard[]> cache_shards_;
  /// Per-segment resolved-once flag. Entry `id` is only read/written under
  /// its owning shard's mutex — distinct ids are distinct memory locations,
  /// so cross-shard access is race-free without a global lock.
  mutable std::vector<uint8_t> touched_;
};

struct LogStoreWriterOptions {
  /// Footer version Finish() seals with. 4 (default) writes the flat
  /// PHF-indexed footer; 3 writes the legacy varint footer for compat
  /// testing and A/B benches. Reading is always version-agnostic.
  uint32_t footer_version = 4;
  /// Build the minimal-perfect-hash edge index into v4 footers. When off
  /// (or if construction fails, e.g. a 64-bit key-hash collision) the
  /// footer carries an empty PHF block and readers use the lazy map.
  bool build_phf = true;
};

/// Write side: builds or extends a LogStore file.
class LogStoreWriter {
 public:
  /// Starts a fresh store. Nothing exists at `path` until Finish(), which
  /// commits the whole file atomically (temp + rename).
  static Result<LogStoreWriter> Create(std::string path,
                                       const LogStoreWriterOptions& options = {});

  /// Opens an existing store for incremental append: prior arrays, edges,
  /// and predictor state are retained; new segments are written over the
  /// old footer and a fresh footer/trailer seals the file in Finish().
  /// The sealed footer version is options.footer_version regardless of
  /// what the file carried — appending to a v3 store reseals it as v4.
  static Result<LogStoreWriter> OpenForAppend(
      std::string path, const LogStoreWriterOptions& options = {});

  /// Registers (or re-registers, idempotently) an array.
  void PutArray(const std::string& name, std::vector<int64_t> shape);

  /// True when an edge in_arr -> out_arr is already indexed (so appenders
  /// can skip segments that are already on disk).
  bool HasEdge(const std::string& in_arr, const std::string& out_arr) const;

  /// The indexed segment for an edge, or nullptr. Appenders compare its
  /// checksum/length against the candidate bytes to detect (and persist)
  /// re-registered edges whose lineage changed.
  const LogStore::SegmentInfo* FindSegment(const std::string& in_arr,
                                           const std::string& out_arr) const;

  /// Serializes `table` in `layout` and appends it as the segment for edge
  /// in_arr -> out_arr, replacing any previous index entry for the same
  /// edge (the older segment's bytes become dead space). Columnar segments
  /// are 8-aligned in the file so readers can borrow them zero-copy.
  Status AppendEdge(const std::string& in_arr, const std::string& out_arr,
                    const std::string& op_name, const CompressedTable& table,
                    SegmentLayout layout = SegmentLayout::kColumnar);

  /// Same, but with pre-serialized segment bytes in `layout` (e.g. another
  /// store's SegmentView or a legacy gzip edge file) — no decode/re-encode.
  /// `row_count` and `out0_stats` are carried into the footer (-1 = unknown
  /// count; default-invalid stats when the source carried none).
  Status AppendRawSegment(const std::string& in_arr,
                          const std::string& out_arr,
                          const std::string& op_name,
                          std::string_view bytes,
                          SegmentLayout layout = SegmentLayout::kProvRcGzip,
                          int64_t row_count = -1,
                          const IntervalColumnStats& out0_stats = {});

  /// Attaches the serialized reuse-predictor state ("" to clear).
  void SetPredictorState(std::string blob);

  /// Writes footer + trailer and commits. The writer is spent afterwards.
  Status Finish();

  int64_t segment_count() const {
    return static_cast<int64_t>(segments_.size());
  }

 private:
  LogStoreWriter() = default;

  LogStoreWriterOptions options_;
  bool appending_ = false;
  std::string path_;
  uint64_t base_offset_ = 0;   // file offset where new_bytes_ lands
  uint64_t old_file_size_ = 0; // append mode: size before reopening
  std::string new_bytes_;      // segments appended since open
  std::map<std::string, std::vector<int64_t>> arrays_;
  std::vector<LogStore::SegmentInfo> segments_;
  std::map<std::string, size_t> edge_index_;  // EdgeKey -> segments_ index
  std::string predictor_state_;
  bool finished_ = false;
};

}  // namespace dslog

#endif  // DSLOG_STORAGE_LOGSTORE_H_
