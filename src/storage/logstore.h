// LogStore: the single-file, segmented on-disk catalog format behind
// DSLog::OpenInSitu. Layout:
//
//   +------------------+ offset 0
//   | header  "DSLSTOR1"|  8 bytes
//   +------------------+ offset 8
//   | segment 0        |  one serialized CompressedTable per stored edge,
//   | segment 1        |  back to back; two layouts coexist in one file:
//   | ...              |    v1 = ProvRC-GZip (compact, decode-to-owned)
//   |                  |    v2 = PRC2 columnar (8-aligned; the on-disk
//   |                  |         bytes are the kernels' scan format)
//   +------------------+ footer_offset
//   | footer           |  varint-coded: format version, array catalog,
//   |                  |  edge index (names, op, offset, length, FNV-64
//   |                  |  checksum, layout, row count per segment),
//   |                  |  reuse-predictor blob
//   +------------------+ file_size - 20
//   | trailer          |  fixed64 footer_offset | fixed64 footer checksum
//   |                  |  | magic "DSLF"
//   +------------------+ file_size
//
// A reader maps the file once (mmap, with a whole-file read fallback) and
// parses only the footer; segments resolve lazily on first touch through a
// size-bounded LRU cache. A v1 segment decompresses into an owned table;
// a v2 segment is *borrowed*: the cache entry holds a CompressedTableView
// aliasing the mapped bytes plus the backward-join interval index — zero
// bytes decompressed, zero rows materialized (LogStoreStats counts both).
// Segment checksums are verified at first touch (and the footer checksum
// at open), turning any flipped byte or truncation into Status::Corruption
// instead of UB.
//
// Thread-safety: LogStore is safe for concurrent readers. The decode cache
// is lock-striped: segments map to cache_shards shards (id mod shard
// count), each with its own mutex, LRU list, and byte budget, so readers
// resolving different segments never contend on one cache lock.
// Decompression/index builds run outside every lock (two threads racing on
// the same cold segment may both resolve it — both results are valid and
// one wins the cache slot).
//
// Writing goes through LogStoreWriter: Create() builds a fresh file and
// commits it atomically (temp file + rename) in Finish(); OpenForAppend()
// extends an existing file in place by overwriting its footer with new
// segments and writing a fresh footer/trailer — a crash mid-append leaves
// an invalid trailer, which Open() reports as Corruption (detected, never
// silently torn), while all previously committed segment bytes remain
// intact in the file.

#ifndef DSLOG_STORAGE_LOGSTORE_H_
#define DSLOG_STORAGE_LOGSTORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mmap_file.h"
#include "common/result.h"
#include "common/status.h"
#include "provrc/compressed_table.h"
#include "provrc/interval_index.h"

namespace dslog {

/// Canonical map key for an edge in_arr -> out_arr, shared by the DSLog
/// catalog, the legacy directory format, and the LogStoreWriter index —
/// one scheme, so dedup/replace decisions always agree.
inline std::string EdgeStoreKey(const std::string& in_arr,
                                const std::string& out_arr) {
  return in_arr + "\x1f" + out_arr;
}

/// Exact output-attribute-0 interval-column stats of a table — one strided
/// pass. Writers stamp these into v3 footers so readers can plan θ-joins
/// against a segment without resolving it.
IntervalColumnStats ComputeOut0Stats(const CompressedTable& table);

/// On-disk encoding of one segment's table bytes.
enum class SegmentLayout : uint32_t {
  /// ProvRC-GZip (the paper's storage default): smallest bytes, decoded
  /// into an owned table on first touch.
  kProvRcGzip = 1,
  /// PRC2 flat columnar: the scan format itself — queried zero-copy from
  /// the mapping. Larger on disk; no decode latency or allocation.
  kColumnar = 2,
};

struct LogStoreOptions {
  /// Budget for resolved segments kept resident (approximate bytes: decoded
  /// tables for v1, interval indexes for borrowed v2 views). Least-recently-
  /// used segments are evicted past it; in-flight queries keep their pinned
  /// entries alive regardless.
  int64_t cache_capacity_bytes = 64ll << 20;
  /// Verify the per-segment FNV-64 checksum before first use of a segment.
  bool verify_checksums = true;
  /// Map the file (the in-situ fast path). false forces the whole-file
  /// read fallback — same behaviour, heap-backed.
  bool use_mmap = true;
  /// Lock stripes of the decode cache. Each shard owns segments with
  /// id % cache_shards == shard, a private LRU list, and an equal slice of
  /// cache_capacity_bytes (never below 1 byte, so eviction still engages
  /// on tiny budgets). Clamped to >= 1; 1 reproduces the old single-lock
  /// cache (contention tests sweep this).
  int cache_shards = 8;
};

/// Decode/cache counters (test + bench observability). This is the
/// *snapshot* type returned by LogStore::stats(); the live counters are
/// per-cache-shard relaxed atomics mutated under the owning shard's mutex,
/// so a snapshot taken under that mutex is internally consistent for the
/// shard (its invariants hold: decode_count <= cache_misses,
/// tables_materialized + segments_borrowed == decode_count,
/// segments_touched <= decode_count). Cross-shard skew is bounded to
/// events that complete while stats() walks the shards — every event is
/// counted in exactly one shard, so totals are exact once readers quiesce.
struct LogStoreStats {
  int64_t segment_count = 0;
  /// Distinct segments resolved at least once since open.
  int64_t segments_touched = 0;
  /// Total cache-fill events (>= segments_touched when eviction re-fills).
  int64_t decode_count = 0;
  /// Compressed bytes consumed by gzip decodes (0 on a pure-v2 store).
  int64_t bytes_decompressed = 0;
  /// Cache fills that built an owned CompressedTable (v1 decodes and v2
  /// alignment fallbacks).
  int64_t tables_materialized = 0;
  /// Rows copied into owned arenas by those fills. A zero-copy v2 path
  /// query keeps this at 0 — the acceptance signal that no per-row data
  /// was allocated in the decode path.
  int64_t rows_materialized = 0;
  /// Cache fills that borrowed a v2 view straight from the mapping.
  int64_t segments_borrowed = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t evictions = 0;
};

/// Read side: a mapped log file serving lazily-resolved edge tables.
class LogStore {
 public:
  struct SegmentInfo {
    std::string in_arr;
    std::string out_arr;
    std::string op_name;
    uint64_t offset = 0;  // absolute file offset of the segment bytes
    uint64_t length = 0;
    uint64_t checksum = 0;  // FNV-64 over the segment bytes
    SegmentLayout layout = SegmentLayout::kProvRcGzip;
    int64_t row_count = -1;  // -1 = unknown (v1 footers predate the field)
    /// Output-attribute-0 interval-column stats (v3 footers): the join
    /// planner's cost-model inputs, readable without touching the segment
    /// bytes. Invalid (default) on pre-v3 footers and on raw-shuttled
    /// segments whose source had no stats — the planner then falls back
    /// to the resolved index's exact stats.
    IntervalColumnStats out0_stats;
  };

  /// A resolved segment: the scan view, its backward-join index, and a pin
  /// keeping both (and any owned arena behind the view) alive across cache
  /// evictions for as long as the caller holds it.
  struct PinnedTable {
    CompressedTableView view;
    const IntervalIndex* index = nullptr;
    std::shared_ptr<const void> pin;
  };

  /// Maps `path`, validates header/trailer/footer (footer checksum
  /// included), and indexes the segments. No segment is resolved.
  static Result<std::unique_ptr<LogStore>> Open(
      const std::string& path, const LogStoreOptions& options = {});

  const std::map<std::string, std::vector<int64_t>>& arrays() const {
    return arrays_;
  }
  const std::vector<SegmentInfo>& segments() const { return segments_; }
  /// Serialized ReusePredictor state ("" when the file carries none).
  const std::string& predictor_state() const { return predictor_state_; }

  /// Per-call observability record of one View() resolution (profiling).
  /// Costs nothing beyond two clock reads on the cold-resolve path; the
  /// cache-hit path fills only the booleans/bytes.
  struct ViewEvent {
    bool cache_hit = false;
    bool borrowed = false;             // v2 zero-copy borrow
    int64_t segment_bytes = 0;         // on-disk segment length
    int64_t bytes_decompressed = 0;    // gzip input consumed (0 on hit/v2)
    int64_t rows_materialized = 0;     // rows copied into owned arenas
    int64_t resolve_us = 0;            // checksum + decode + index build
  };

  /// The scan view of segment `id`, resolving on first touch (gzip decode
  /// for v1, zero-copy borrow for v2) and serving repeats from the LRU
  /// cache. This is the query path. `ev`, when non-null, receives how this
  /// call resolved (profiled queries thread it into their HopProfile).
  Result<PinnedTable> View(size_t id, ViewEvent* ev = nullptr) const;

  /// The segment as an owned CompressedTable (bench/test hook and legacy
  /// transcodes). v1 serves the cached decode; v2 materializes a fresh
  /// owned copy per call — query code should use View().
  Result<std::shared_ptr<const CompressedTable>> Table(size_t id) const;

  /// Raw (still-serialized) bytes of segment `id` — zero-copy view into
  /// the mapping. Lets converters/appenders shuttle segments without a
  /// decode/re-encode round trip.
  std::string_view SegmentView(size_t id) const {
    const SegmentInfo& seg = segments_[id];
    return file_.view(static_cast<size_t>(seg.offset),
                      static_cast<size_t>(seg.length));
  }

  LogStoreStats stats() const;

  const std::string& path() const { return path_; }
  int64_t file_size() const { return static_cast<int64_t>(file_.size()); }
  uint32_t format_version() const { return format_version_; }
  bool mapped() const { return file_.mapped(); }

 private:
  LogStore() = default;

  /// One cached resolution: `table` owns the arenas for v1 decodes (null
  /// for v2 borrows, whose view aliases the mapping), `index` is always
  /// built. Handed out via shared_ptr so pins survive eviction.
  struct ResolvedSegment {
    std::shared_ptr<const CompressedTable> table;
    CompressedTableView view;
    IntervalIndex index;
  };

  struct CacheEntry {
    std::shared_ptr<const ResolvedSegment> segment;
    int64_t charge = 0;
    std::list<size_t>::iterator lru_it;
  };

  /// Checksum-verifies (first touch) and resolves segment bytes into a
  /// ResolvedSegment. Runs outside the cache lock.
  Result<std::shared_ptr<const ResolvedSegment>> ResolveSegment(
      size_t id, int64_t* charge, int64_t* decompressed, bool* borrowed,
      int64_t* rows_copied) const;

  /// Live per-shard counters: relaxed atomics *written only under the
  /// owning shard's mutex* (so the per-shard invariants documented on
  /// LogStoreStats always hold between mutations) but readable without it
  /// — stats() still takes the mutex per shard so each shard's snapshot is
  /// a consistent cut, while TSan sees no data race from any lock-free
  /// probing of individual fields.
  struct ShardStats {
    std::atomic<int64_t> segments_touched{0};
    std::atomic<int64_t> decode_count{0};
    std::atomic<int64_t> bytes_decompressed{0};
    std::atomic<int64_t> tables_materialized{0};
    std::atomic<int64_t> rows_materialized{0};
    std::atomic<int64_t> segments_borrowed{0};
    std::atomic<int64_t> cache_hits{0};
    std::atomic<int64_t> cache_misses{0};
    std::atomic<int64_t> evictions{0};
  };

  /// One lock stripe of the decode cache: segments with
  /// id % num_cache_shards_ == this shard's index. Stats are kept per
  /// shard and summed in stats() so the hot path never touches a shared
  /// counter.
  struct CacheShard {
    std::mutex mu;  // guards everything below (stats: writes only)
    std::unordered_map<size_t, CacheEntry> cache;
    std::list<size_t> lru;  // front = most recent
    int64_t bytes = 0;
    ShardStats stats;
  };

  CacheShard& ShardFor(size_t id) const {
    return cache_shards_[id % num_cache_shards_];
  }

  std::string path_;
  MmapFile file_;
  LogStoreOptions options_;
  uint32_t format_version_ = 0;
  std::map<std::string, std::vector<int64_t>> arrays_;
  std::vector<SegmentInfo> segments_;
  std::string predictor_state_;

  /// Striped cache state. The array and shard count are fixed at Open
  /// (before any concurrency), so ShardFor needs no lock. A LogStore is
  /// only handed out behind unique_ptr/shared_ptr, so the non-movable
  /// shard array is fine. Per-shard byte budget: see cache_shards docs.
  size_t num_cache_shards_ = 1;
  int64_t shard_capacity_bytes_ = 0;
  mutable std::unique_ptr<CacheShard[]> cache_shards_;
  /// Per-segment resolved-once flag. Entry `id` is only read/written under
  /// its owning shard's mutex — distinct ids are distinct memory locations,
  /// so cross-shard access is race-free without a global lock.
  mutable std::vector<uint8_t> touched_;
};

/// Write side: builds or extends a LogStore file.
class LogStoreWriter {
 public:
  /// Starts a fresh store. Nothing exists at `path` until Finish(), which
  /// commits the whole file atomically (temp + rename).
  static Result<LogStoreWriter> Create(std::string path);

  /// Opens an existing store for incremental append: prior arrays, edges,
  /// and predictor state are retained; new segments are written over the
  /// old footer and a fresh footer/trailer seals the file in Finish().
  static Result<LogStoreWriter> OpenForAppend(std::string path);

  /// Registers (or re-registers, idempotently) an array.
  void PutArray(const std::string& name, std::vector<int64_t> shape);

  /// True when an edge in_arr -> out_arr is already indexed (so appenders
  /// can skip segments that are already on disk).
  bool HasEdge(const std::string& in_arr, const std::string& out_arr) const;

  /// The indexed segment for an edge, or nullptr. Appenders compare its
  /// checksum/length against the candidate bytes to detect (and persist)
  /// re-registered edges whose lineage changed.
  const LogStore::SegmentInfo* FindSegment(const std::string& in_arr,
                                           const std::string& out_arr) const;

  /// Serializes `table` in `layout` and appends it as the segment for edge
  /// in_arr -> out_arr, replacing any previous index entry for the same
  /// edge (the older segment's bytes become dead space). Columnar segments
  /// are 8-aligned in the file so readers can borrow them zero-copy.
  Status AppendEdge(const std::string& in_arr, const std::string& out_arr,
                    const std::string& op_name, const CompressedTable& table,
                    SegmentLayout layout = SegmentLayout::kColumnar);

  /// Same, but with pre-serialized segment bytes in `layout` (e.g. another
  /// store's SegmentView or a legacy gzip edge file) — no decode/re-encode.
  /// `row_count` and `out0_stats` are carried into the footer (-1 = unknown
  /// count; default-invalid stats when the source carried none).
  Status AppendRawSegment(const std::string& in_arr,
                          const std::string& out_arr,
                          const std::string& op_name,
                          std::string_view bytes,
                          SegmentLayout layout = SegmentLayout::kProvRcGzip,
                          int64_t row_count = -1,
                          const IntervalColumnStats& out0_stats = {});

  /// Attaches the serialized reuse-predictor state ("" to clear).
  void SetPredictorState(std::string blob);

  /// Writes footer + trailer and commits. The writer is spent afterwards.
  Status Finish();

  int64_t segment_count() const {
    return static_cast<int64_t>(segments_.size());
  }

 private:
  LogStoreWriter() = default;

  bool appending_ = false;
  std::string path_;
  uint64_t base_offset_ = 0;   // file offset where new_bytes_ lands
  uint64_t old_file_size_ = 0; // append mode: size before reopening
  std::string new_bytes_;      // segments appended since open
  std::map<std::string, std::vector<int64_t>> arrays_;
  std::vector<LogStore::SegmentInfo> segments_;
  std::map<std::string, size_t> edge_index_;  // EdgeKey -> segments_ index
  std::string predictor_state_;
  bool finished_ = false;
};

}  // namespace dslog

#endif  // DSLOG_STORAGE_LOGSTORE_H_
