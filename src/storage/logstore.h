// LogStore: the single-file, segmented on-disk catalog format behind
// DSLog::OpenInSitu. Layout:
//
//   +------------------+ offset 0
//   | header  "DSLSTOR1"|  8 bytes
//   +------------------+ offset 8
//   | segment 0        |  one ProvRC-GZip-serialized CompressedTable
//   | segment 1        |  per stored edge, back to back
//   | ...              |
//   +------------------+ footer_offset
//   | footer           |  varint-coded: format version, array catalog,
//   |                  |  edge index (names, op, offset, length, FNV-64
//   |                  |  checksum per segment), reuse-predictor blob
//   +------------------+ file_size - 20
//   | trailer          |  fixed64 footer_offset | fixed64 footer checksum
//   |                  |  | magic "DSLF"
//   +------------------+ file_size
//
// A reader maps the file once (mmap, with a whole-file read fallback) and
// parses only the footer; segment bytes are decompressed lazily on first
// touch through a size-bounded LRU cache of decoded tables, so a path
// query pays only for the edges it traverses. Segment checksums are
// verified at decode time (and the footer checksum at open), turning any
// flipped byte or truncation into Status::Corruption instead of UB.
//
// Thread-safety: LogStore is safe for concurrent readers; the decode cache
// has its own mutex and decompression runs outside it (two threads racing
// on the same cold segment may both decode it — both results are valid and
// one wins the cache slot).
//
// Writing goes through LogStoreWriter: Create() builds a fresh file and
// commits it atomically (temp file + rename) in Finish(); OpenForAppend()
// extends an existing file in place by overwriting its footer with new
// segments and writing a fresh footer/trailer — a crash mid-append leaves
// an invalid trailer, which Open() reports as Corruption (detected, never
// silently torn), while all previously committed segment bytes remain
// intact in the file.

#ifndef DSLOG_STORAGE_LOGSTORE_H_
#define DSLOG_STORAGE_LOGSTORE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mmap_file.h"
#include "common/result.h"
#include "common/status.h"
#include "provrc/compressed_table.h"

namespace dslog {

/// Canonical map key for an edge in_arr -> out_arr, shared by the DSLog
/// catalog, the legacy directory format, and the LogStoreWriter index —
/// one scheme, so dedup/replace decisions always agree.
inline std::string EdgeStoreKey(const std::string& in_arr,
                                const std::string& out_arr) {
  return in_arr + "\x1f" + out_arr;
}

struct LogStoreOptions {
  /// Budget for decoded CompressedTables kept resident (approximate decoded
  /// bytes). Least-recently-used segments are evicted past it; in-flight
  /// queries keep their pinned tables alive regardless.
  int64_t cache_capacity_bytes = 64ll << 20;
  /// Verify the per-segment FNV-64 checksum before decoding a segment.
  bool verify_checksums = true;
  /// Map the file (the in-situ fast path). false forces the whole-file
  /// read fallback — same behaviour, heap-backed.
  bool use_mmap = true;
};

/// Decode/cache counters (test + bench observability).
struct LogStoreStats {
  int64_t segment_count = 0;
  /// Distinct segments decoded at least once since open.
  int64_t segments_touched = 0;
  /// Total decode events (>= segments_touched when eviction re-decodes).
  int64_t decode_count = 0;
  /// Compressed bytes consumed by decode events.
  int64_t bytes_decompressed = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t evictions = 0;
};

/// Read side: a mapped log file serving lazily-decoded edge tables.
class LogStore {
 public:
  struct SegmentInfo {
    std::string in_arr;
    std::string out_arr;
    std::string op_name;
    uint64_t offset = 0;  // absolute file offset of the segment bytes
    uint64_t length = 0;
    uint64_t checksum = 0;  // FNV-64 over the segment bytes
  };

  /// Maps `path`, validates header/trailer/footer (footer checksum
  /// included), and indexes the segments. No segment is decompressed.
  static Result<std::unique_ptr<LogStore>> Open(
      const std::string& path, const LogStoreOptions& options = {});

  const std::map<std::string, std::vector<int64_t>>& arrays() const {
    return arrays_;
  }
  const std::vector<SegmentInfo>& segments() const { return segments_; }
  /// Serialized ReusePredictor state ("" when the file carries none).
  const std::string& predictor_state() const { return predictor_state_; }

  /// The decoded table of segment `id`, decompressing on first touch and
  /// serving repeats from the LRU cache. The returned shared_ptr pins the
  /// table across evictions for as long as the caller holds it.
  Result<std::shared_ptr<const CompressedTable>> Table(size_t id) const;

  /// Raw (still-compressed) bytes of segment `id` — zero-copy view into
  /// the mapping. Lets converters/appenders shuttle segments without a
  /// decompress/recompress round trip.
  std::string_view SegmentView(size_t id) const {
    const SegmentInfo& seg = segments_[id];
    return file_.view(static_cast<size_t>(seg.offset),
                      static_cast<size_t>(seg.length));
  }

  LogStoreStats stats() const;

  const std::string& path() const { return path_; }
  int64_t file_size() const { return static_cast<int64_t>(file_.size()); }
  uint32_t format_version() const { return format_version_; }
  bool mapped() const { return file_.mapped(); }

 private:
  LogStore() = default;

  struct CacheEntry {
    std::shared_ptr<const CompressedTable> table;
    int64_t charge = 0;
    std::list<size_t>::iterator lru_it;
  };

  std::string path_;
  MmapFile file_;
  LogStoreOptions options_;
  uint32_t format_version_ = 0;
  std::map<std::string, std::vector<int64_t>> arrays_;
  std::vector<SegmentInfo> segments_;
  std::string predictor_state_;

  mutable std::mutex cache_mu_;  // guards everything below
  mutable std::unordered_map<size_t, CacheEntry> cache_;
  mutable std::list<size_t> lru_;  // front = most recent
  mutable int64_t cache_bytes_ = 0;
  mutable std::vector<uint8_t> touched_;  // per-segment decoded-once flag
  mutable LogStoreStats stats_;
};

/// Write side: builds or extends a LogStore file.
class LogStoreWriter {
 public:
  /// Starts a fresh store. Nothing exists at `path` until Finish(), which
  /// commits the whole file atomically (temp + rename).
  static Result<LogStoreWriter> Create(std::string path);

  /// Opens an existing store for incremental append: prior arrays, edges,
  /// and predictor state are retained; new segments are written over the
  /// old footer and a fresh footer/trailer seals the file in Finish().
  static Result<LogStoreWriter> OpenForAppend(std::string path);

  /// Registers (or re-registers, idempotently) an array.
  void PutArray(const std::string& name, std::vector<int64_t> shape);

  /// True when an edge in_arr -> out_arr is already indexed (so appenders
  /// can skip segments that are already on disk).
  bool HasEdge(const std::string& in_arr, const std::string& out_arr) const;

  /// The indexed segment for an edge, or nullptr. Appenders compare its
  /// checksum/length against the candidate bytes to detect (and persist)
  /// re-registered edges whose lineage changed.
  const LogStore::SegmentInfo* FindSegment(const std::string& in_arr,
                                           const std::string& out_arr) const;

  /// Serializes `table` (ProvRC-GZip) and appends it as the segment for
  /// edge in_arr -> out_arr, replacing any previous index entry for the
  /// same edge (the older segment's bytes become dead space).
  Status AppendEdge(const std::string& in_arr, const std::string& out_arr,
                    const std::string& op_name, const CompressedTable& table);

  /// Same, but with pre-serialized ProvRC-GZip bytes (e.g. another store's
  /// SegmentView or a legacy edge file) — no decompress/recompress.
  Status AppendRawSegment(const std::string& in_arr,
                          const std::string& out_arr,
                          const std::string& op_name,
                          std::string_view gzip_bytes);

  /// Attaches the serialized reuse-predictor state ("" to clear).
  void SetPredictorState(std::string blob);

  /// Writes footer + trailer and commits. The writer is spent afterwards.
  Status Finish();

  int64_t segment_count() const {
    return static_cast<int64_t>(segments_.size());
  }

 private:
  LogStoreWriter() = default;

  bool appending_ = false;
  std::string path_;
  uint64_t base_offset_ = 0;   // file offset where new_bytes_ lands
  uint64_t old_file_size_ = 0; // append mode: size before reopening
  std::string new_bytes_;      // segments appended since open
  std::map<std::string, std::vector<int64_t>> arrays_;
  std::vector<LogStore::SegmentInfo> segments_;
  std::map<std::string, size_t> edge_index_;  // EdgeKey -> segments_ index
  std::string predictor_state_;
  bool finished_ = false;
};

}  // namespace dslog

#endif  // DSLOG_STORAGE_LOGSTORE_H_
