#include "storage/logstore.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/hash.h"
#include "common/io.h"
#include "compress/varint.h"
#include "provrc/serialize.h"

namespace dslog {

namespace {

constexpr char kHeaderMagic[8] = {'D', 'S', 'L', 'S', 'T', 'O', 'R', '1'};
constexpr char kTrailerMagic[4] = {'D', 'S', 'L', 'F'};
constexpr size_t kHeaderSize = sizeof(kHeaderMagic);
// fixed64 footer_offset + fixed64 footer checksum + trailer magic.
constexpr size_t kTrailerSize = 8 + 8 + sizeof(kTrailerMagic);
constexpr uint32_t kFormatVersion = 1;

struct ParsedFooter {
  uint32_t format_version = 0;
  uint64_t footer_offset = 0;
  std::map<std::string, std::vector<int64_t>> arrays;
  std::vector<LogStore::SegmentInfo> segments;
  std::string predictor_state;
};

/// Validates header + trailer of a whole-file view and decodes the footer.
Status ParseFile(std::string_view file, const std::string& path,
                 ParsedFooter* out) {
  if (file.size() < kHeaderSize + kTrailerSize)
    return Status::Corruption("logstore too short: " + path);
  if (std::memcmp(file.data(), kHeaderMagic, kHeaderSize) != 0)
    return Status::Corruption("logstore bad header magic: " + path);
  size_t tpos = file.size() - kTrailerSize;
  uint64_t footer_offset, footer_hash;
  if (!GetFixed64(file, &tpos, &footer_offset) ||
      !GetFixed64(file, &tpos, &footer_hash) ||
      std::memcmp(file.data() + tpos, kTrailerMagic, sizeof(kTrailerMagic)) !=
          0)
    return Status::Corruption("logstore bad trailer: " + path);
  if (footer_offset < kHeaderSize ||
      footer_offset > file.size() - kTrailerSize)
    return Status::Corruption("logstore footer offset out of range: " + path);
  std::string_view footer = file.substr(
      static_cast<size_t>(footer_offset),
      file.size() - kTrailerSize - static_cast<size_t>(footer_offset));
  if (Hash64(footer) != footer_hash)
    return Status::Corruption("logstore footer checksum mismatch: " + path);

  out->footer_offset = footer_offset;
  size_t pos = 0;
  uint64_t version;
  if (!GetVarint64(footer, &pos, &version) || version == 0 ||
      version > kFormatVersion)
    return Status::Corruption("logstore unsupported format version: " + path);
  out->format_version = static_cast<uint32_t>(version);

  uint64_t num_arrays;
  if (!GetVarint64(footer, &pos, &num_arrays))
    return Status::Corruption("logstore footer: array count");
  for (uint64_t i = 0; i < num_arrays; ++i) {
    std::string name;
    uint64_t ndim;
    if (!GetLengthPrefixed(footer, &pos, &name) ||
        !GetVarint64(footer, &pos, &ndim) || ndim > 64)
      return Status::Corruption("logstore footer: array entry");
    std::vector<int64_t> shape(ndim);
    for (auto& d : shape) {
      uint64_t v;
      if (!GetVarint64(footer, &pos, &v))
        return Status::Corruption("logstore footer: array shape");
      d = static_cast<int64_t>(v);
    }
    out->arrays[std::move(name)] = std::move(shape);
  }

  uint64_t num_segments;
  if (!GetVarint64(footer, &pos, &num_segments))
    return Status::Corruption("logstore footer: segment count");
  for (uint64_t i = 0; i < num_segments; ++i) {
    LogStore::SegmentInfo seg;
    if (!GetLengthPrefixed(footer, &pos, &seg.in_arr) ||
        !GetLengthPrefixed(footer, &pos, &seg.out_arr) ||
        !GetLengthPrefixed(footer, &pos, &seg.op_name) ||
        !GetVarint64(footer, &pos, &seg.offset) ||
        !GetVarint64(footer, &pos, &seg.length) ||
        !GetFixed64(footer, &pos, &seg.checksum))
      return Status::Corruption("logstore footer: segment entry");
    if (seg.offset < kHeaderSize || seg.offset > footer_offset ||
        seg.length > footer_offset - seg.offset)
      return Status::Corruption("logstore footer: segment out of bounds: " +
                                seg.in_arr + " -> " + seg.out_arr);
    out->segments.push_back(std::move(seg));
  }

  if (!GetLengthPrefixed(footer, &pos, &out->predictor_state))
    return Status::Corruption("logstore footer: predictor state");
  return Status::OK();
}

std::string EncodeFooter(
    const std::map<std::string, std::vector<int64_t>>& arrays,
    const std::vector<LogStore::SegmentInfo>& segments,
    const std::string& predictor_state) {
  std::string footer;
  PutVarint64(&footer, kFormatVersion);
  PutVarint64(&footer, arrays.size());
  for (const auto& [name, shape] : arrays) {
    PutLengthPrefixed(&footer, name);
    PutVarint64(&footer, shape.size());
    for (int64_t d : shape) PutVarint64(&footer, static_cast<uint64_t>(d));
  }
  PutVarint64(&footer, segments.size());
  for (const LogStore::SegmentInfo& seg : segments) {
    PutLengthPrefixed(&footer, seg.in_arr);
    PutLengthPrefixed(&footer, seg.out_arr);
    PutLengthPrefixed(&footer, seg.op_name);
    PutVarint64(&footer, seg.offset);
    PutVarint64(&footer, seg.length);
    PutFixed64(&footer, seg.checksum);
  }
  PutLengthPrefixed(&footer, predictor_state);
  return footer;
}

std::string EncodeTrailer(uint64_t footer_offset, const std::string& footer) {
  std::string trailer;
  PutFixed64(&trailer, footer_offset);
  PutFixed64(&trailer, Hash64(footer));
  trailer.append(kTrailerMagic, sizeof(kTrailerMagic));
  return trailer;
}

/// Resident-memory estimate of a decoded table (cache accounting).
int64_t ApproxDecodedBytes(const CompressedTable& table) {
  return 64 + table.num_rows() *
                  (static_cast<int64_t>(table.out_ndim()) * sizeof(Interval) +
                   static_cast<int64_t>(table.in_ndim()) * sizeof(InputCell));
}

}  // namespace

// ----------------------------------------------------------------- reader --

Result<std::unique_ptr<LogStore>> LogStore::Open(
    const std::string& path, const LogStoreOptions& options) {
  DSLOG_ASSIGN_OR_RETURN(MmapFile file,
                         MmapFile::Open(path, options.use_mmap));
  ParsedFooter footer;
  DSLOG_RETURN_IF_ERROR(ParseFile(file.view(), path, &footer));
  std::unique_ptr<LogStore> store(new LogStore());
  store->path_ = path;
  store->file_ = std::move(file);
  store->options_ = options;
  store->format_version_ = footer.format_version;
  store->arrays_ = std::move(footer.arrays);
  store->segments_ = std::move(footer.segments);
  store->predictor_state_ = std::move(footer.predictor_state);
  store->touched_.assign(store->segments_.size(), 0);
  return store;
}

Result<std::shared_ptr<const CompressedTable>> LogStore::Table(
    size_t id) const {
  if (id >= segments_.size())
    return Status::InvalidArgument("logstore segment id out of range");
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(id);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++stats_.cache_hits;
      return it->second.table;
    }
    ++stats_.cache_misses;
  }

  // Decode outside the cache lock so cold segments decompress in parallel.
  const SegmentInfo& seg = segments_[id];
  std::string_view bytes = SegmentView(id);
  if (options_.verify_checksums && Hash64(bytes) != seg.checksum)
    return Status::Corruption("logstore segment checksum mismatch: " +
                              seg.in_arr + " -> " + seg.out_arr + " in " +
                              path_);
  auto decoded = DeserializeCompressedTableGzip(bytes);
  if (!decoded.ok())
    return decoded.status().WithMessagePrefix(
        "logstore segment " + seg.in_arr + " -> " + seg.out_arr + ": ");
  auto table = std::make_shared<const CompressedTable>(
      std::move(decoded).ValueOrDie());
  const int64_t charge = ApproxDecodedBytes(*table);

  std::lock_guard<std::mutex> lock(cache_mu_);
  ++stats_.decode_count;
  stats_.bytes_decompressed += static_cast<int64_t>(bytes.size());
  if (!touched_[id]) {
    touched_[id] = 1;
    ++stats_.segments_touched;
  }
  auto it = cache_.find(id);
  if (it != cache_.end()) return it->second.table;  // lost the decode race
  lru_.push_front(id);
  cache_[id] = CacheEntry{table, charge, lru_.begin()};
  cache_bytes_ += charge;
  // Evict past the budget, never the entry just inserted (a single table
  // larger than the whole budget must still be servable).
  while (cache_bytes_ > options_.cache_capacity_bytes && lru_.size() > 1) {
    size_t victim = lru_.back();
    lru_.pop_back();
    auto vit = cache_.find(victim);
    cache_bytes_ -= vit->second.charge;
    cache_.erase(vit);
    ++stats_.evictions;
  }
  return table;
}

LogStoreStats LogStore::stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  LogStoreStats out = stats_;
  out.segment_count = static_cast<int64_t>(segments_.size());
  return out;
}

// ----------------------------------------------------------------- writer --

Result<LogStoreWriter> LogStoreWriter::Create(std::string path) {
  LogStoreWriter writer;
  writer.path_ = std::move(path);
  writer.base_offset_ = kHeaderSize;
  return writer;
}

Result<LogStoreWriter> LogStoreWriter::OpenForAppend(std::string path) {
  DSLOG_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  ParsedFooter footer;
  DSLOG_RETURN_IF_ERROR(ParseFile(file.view(), path, &footer));
  LogStoreWriter writer;
  writer.appending_ = true;
  writer.path_ = std::move(path);
  writer.base_offset_ = footer.footer_offset;
  writer.old_file_size_ = file.size();
  writer.arrays_ = std::move(footer.arrays);
  writer.segments_ = std::move(footer.segments);
  writer.predictor_state_ = std::move(footer.predictor_state);
  for (size_t i = 0; i < writer.segments_.size(); ++i)
    writer.edge_index_[EdgeStoreKey(writer.segments_[i].in_arr,
                               writer.segments_[i].out_arr)] = i;
  return writer;
}

void LogStoreWriter::PutArray(const std::string& name,
                              std::vector<int64_t> shape) {
  arrays_[name] = std::move(shape);
}

bool LogStoreWriter::HasEdge(const std::string& in_arr,
                             const std::string& out_arr) const {
  return edge_index_.count(EdgeStoreKey(in_arr, out_arr)) > 0;
}

const LogStore::SegmentInfo* LogStoreWriter::FindSegment(
    const std::string& in_arr, const std::string& out_arr) const {
  auto it = edge_index_.find(EdgeStoreKey(in_arr, out_arr));
  return it == edge_index_.end() ? nullptr : &segments_[it->second];
}

Status LogStoreWriter::AppendEdge(const std::string& in_arr,
                                  const std::string& out_arr,
                                  const std::string& op_name,
                                  const CompressedTable& table) {
  return AppendRawSegment(in_arr, out_arr, op_name,
                          SerializeCompressedTableGzip(table));
}

Status LogStoreWriter::AppendRawSegment(const std::string& in_arr,
                                        const std::string& out_arr,
                                        const std::string& op_name,
                                        std::string_view gzip_bytes) {
  if (finished_) return Status::Internal("logstore writer already finished");
  LogStore::SegmentInfo seg;
  seg.in_arr = in_arr;
  seg.out_arr = out_arr;
  seg.op_name = op_name;
  seg.offset = base_offset_ + new_bytes_.size();
  seg.length = gzip_bytes.size();
  seg.checksum = Hash64(gzip_bytes);
  new_bytes_.append(gzip_bytes);
  auto [it, inserted] =
      edge_index_.try_emplace(EdgeStoreKey(in_arr, out_arr), segments_.size());
  if (inserted) {
    segments_.push_back(std::move(seg));
  } else {
    // Replacement: newest segment wins; the old bytes become dead space
    // (reclaimed by a future Create()-based rewrite).
    segments_[it->second] = std::move(seg);
  }
  return Status::OK();
}

void LogStoreWriter::SetPredictorState(std::string blob) {
  predictor_state_ = std::move(blob);
}

Status LogStoreWriter::Finish() {
  if (finished_) return Status::Internal("logstore writer already finished");
  finished_ = true;
  const uint64_t footer_offset = base_offset_ + new_bytes_.size();
  std::string footer = EncodeFooter(arrays_, segments_, predictor_state_);
  std::string trailer = EncodeTrailer(footer_offset, footer);

  if (!appending_) {
    std::string file;
    file.reserve(kHeaderSize + new_bytes_.size() + footer.size() +
                 trailer.size());
    file.append(kHeaderMagic, kHeaderSize);
    file.append(new_bytes_);
    file.append(footer);
    file.append(trailer);
    return WriteFileAtomic(path_, file);
  }

  std::fstream out(path_,
                   std::ios::in | std::ios::out | std::ios::binary);
  if (!out) return Status::IOError("cannot open for append: " + path_);
  out.seekp(static_cast<std::streamoff>(base_offset_));
  out.write(new_bytes_.data(),
            static_cast<std::streamsize>(new_bytes_.size()));
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  out.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  out.flush();
  if (!out) return Status::IOError("short append: " + path_);
  out.close();
  const uint64_t new_size = footer_offset + footer.size() + trailer.size();
  if (new_size < old_file_size_) {
    std::error_code ec;
    std::filesystem::resize_file(path_, new_size, ec);
    if (ec) return Status::IOError("truncate failed: " + path_);
  }
  return Status::OK();
}

}  // namespace dslog
