#include "storage/logstore.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/hash.h"
#include "common/io.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "compress/varint.h"
#include "provrc/serialize.h"

namespace dslog {

namespace {

constexpr char kHeaderMagic[8] = {'D', 'S', 'L', 'S', 'T', 'O', 'R', '1'};
constexpr char kTrailerMagic[4] = {'D', 'S', 'L', 'F'};
constexpr size_t kHeaderSize = sizeof(kHeaderMagic);
// fixed64 footer_offset + fixed64 footer checksum + trailer magic.
constexpr size_t kTrailerSize = 8 + 8 + sizeof(kTrailerMagic);
// Version 2 adds per-segment layout + row count to the footer. Version 3
// adds per-segment output-attribute-0 interval-column stats (join-planner
// inputs). Version 4 replaces the varint segment index with the flat
// PHF-indexed block documented in logstore.h (fixed records + name heap +
// minimal-perfect-hash edge index; wide footer checksum). Version-1 files
// (all segments ProvRC-GZip, no row counts), version-2 files (no stats)
// and version-3 files all still open.
constexpr uint32_t kFormatVersion = 4;

// v4 fixed segment record: field offsets within one 88-byte record. All
// fields little-endian; the record block starts 8-aligned in the file and
// 88 is a multiple of 8, so every field is naturally aligned under mmap
// (reads still go through memcpy for the heap-read fallback).
constexpr size_t kRecOffset = 0;     // u64 absolute file offset
constexpr size_t kRecLength = 8;     // u64 segment byte length
constexpr size_t kRecChecksum = 16;  // u64 FNV-64 of the segment bytes
constexpr size_t kRecNameOff = 24;   // u64 offset into the name heap
constexpr size_t kRecRowCount = 32;  // i64 (-1 unknown)
constexpr size_t kRecSumWidth = 40;  // i64 planner stats (-1 unknown)
constexpr size_t kRecMinLo = 48;     // i64
constexpr size_t kRecMaxLo = 56;     // i64
constexpr size_t kRecMaxHi = 64;     // i64
constexpr size_t kRecInLen = 72;     // u32 in_arr name length
constexpr size_t kRecOutLen = 76;    // u32 out_arr name length
constexpr size_t kRecOpLen = 80;     // u32 op_name length
constexpr size_t kRecLayout = 84;    // u32 SegmentLayout
constexpr size_t kRecSize = 88;

inline size_t Pad8(size_t v) { return (v + 7) & ~static_cast<size_t>(7); }

inline uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline void AppendU64(std::string* s, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  s->append(buf, 8);
}

inline void AppendU32(std::string* s, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  s->append(buf, 4);
}

struct ParsedFooter {
  uint32_t format_version = 0;
  uint64_t footer_offset = 0;
  std::map<std::string, std::vector<int64_t>> arrays;
  /// v1-v3 only: the eagerly parsed segment entries.
  std::vector<LogStore::SegmentInfo> segments;
  /// v4 only: zero-copy views into the footer (valid while the file view
  /// they were parsed from lives).
  uint64_t num_segments = 0;
  std::string_view seg_records;
  std::string_view name_heap;
  std::string_view phf_block;
  std::string predictor_state;
};

/// Decodes one v4 flat record into an owned SegmentInfo. Name extents are
/// trusted only after a bounds check; out-of-heap names (impossible on a
/// checksum-verified footer) come back empty rather than reading wild.
LogStore::SegmentInfo DecodeV4Record(std::string_view records,
                                     std::string_view heap, size_t id) {
  const char* rec = records.data() + id * kRecSize;
  LogStore::SegmentInfo seg;
  seg.offset = LoadU64(rec + kRecOffset);
  seg.length = LoadU64(rec + kRecLength);
  seg.checksum = LoadU64(rec + kRecChecksum);
  seg.row_count = static_cast<int64_t>(LoadU64(rec + kRecRowCount));
  IntervalColumnStats& st = seg.out0_stats;
  st.sum_width = static_cast<int64_t>(LoadU64(rec + kRecSumWidth));
  st.min_lo = static_cast<int64_t>(LoadU64(rec + kRecMinLo));
  st.max_lo = static_cast<int64_t>(LoadU64(rec + kRecMaxLo));
  st.max_hi = static_cast<int64_t>(LoadU64(rec + kRecMaxHi));
  st.row_count = st.sum_width >= 0 ? seg.row_count : -1;
  seg.layout = static_cast<SegmentLayout>(LoadU32(rec + kRecLayout));
  const uint64_t name_off = LoadU64(rec + kRecNameOff);
  const uint64_t in_len = LoadU32(rec + kRecInLen);
  const uint64_t out_len = LoadU32(rec + kRecOutLen);
  const uint64_t op_len = LoadU32(rec + kRecOpLen);
  if (name_off <= heap.size() &&
      in_len + out_len + op_len <= heap.size() - name_off) {
    const char* base = heap.data() + name_off;
    seg.in_arr.assign(base, in_len);
    seg.out_arr.assign(base + in_len, out_len);
    seg.op_name.assign(base + in_len + out_len, op_len);
  }
  return seg;
}

/// Validates header + trailer of a whole-file view and decodes the footer.
Status ParseFile(std::string_view file, const std::string& path,
                 ParsedFooter* out) {
  if (file.size() < kHeaderSize + kTrailerSize)
    return Status::Corruption("logstore too short: " + path);
  if (std::memcmp(file.data(), kHeaderMagic, kHeaderSize) != 0)
    return Status::Corruption("logstore bad header magic: " + path);
  size_t tpos = file.size() - kTrailerSize;
  uint64_t footer_offset, footer_hash;
  if (!GetFixed64(file, &tpos, &footer_offset) ||
      !GetFixed64(file, &tpos, &footer_hash) ||
      std::memcmp(file.data() + tpos, kTrailerMagic, sizeof(kTrailerMagic)) !=
          0)
    return Status::Corruption("logstore bad trailer: " + path);
  if (footer_offset < kHeaderSize ||
      footer_offset > file.size() - kTrailerSize)
    return Status::Corruption("logstore footer offset out of range: " + path);
  std::string_view footer = file.substr(
      static_cast<size_t>(footer_offset),
      file.size() - kTrailerSize - static_cast<size_t>(footer_offset));

  // The footer version picks the footer checksum function, so peek it
  // before verifying: v4 uses the wide 8-byte-lane hash (footers scale
  // with the catalog; byte-wise FNV over a 100 MB footer would dominate a
  // million-edge open), v1-v3 keep byte-wise FNV for compatibility.
  size_t pos = 0;
  uint64_t version;
  if (!GetVarint64(footer, &pos, &version) || version == 0 ||
      version > kFormatVersion)
    return Status::Corruption("logstore unsupported format version: " + path);
  const uint64_t computed_hash =
      version >= 4 ? Hash64Wide(footer) : Hash64(footer);
  if (computed_hash != footer_hash)
    return Status::Corruption("logstore footer checksum mismatch: " + path);

  out->footer_offset = footer_offset;
  out->format_version = static_cast<uint32_t>(version);

  uint64_t num_arrays;
  if (!GetVarint64(footer, &pos, &num_arrays))
    return Status::Corruption("logstore footer: array count");
  for (uint64_t i = 0; i < num_arrays; ++i) {
    std::string name;
    uint64_t ndim;
    if (!GetLengthPrefixed(footer, &pos, &name) ||
        !GetVarint64(footer, &pos, &ndim) || ndim > 64)
      return Status::Corruption("logstore footer: array entry");
    std::vector<int64_t> shape(ndim);
    for (auto& d : shape) {
      uint64_t v;
      if (!GetVarint64(footer, &pos, &v))
        return Status::Corruption("logstore footer: array shape");
      d = static_cast<int64_t>(v);
    }
    out->arrays[std::move(name)] = std::move(shape);
  }

  if (out->format_version >= 4) {
    // Flat footer: predictor blob ends the varint prelude, then padding to
    // 8 (the footer itself starts 8-aligned in the file, enforced by the
    // writer and checked here, so footer-relative alignment is absolute
    // alignment), then the zero-deserialization index block.
    if (footer_offset % 8 != 0)
      return Status::Corruption("logstore v4 footer misaligned: " + path);
    if (!GetLengthPrefixed(footer, &pos, &out->predictor_state))
      return Status::Corruption("logstore footer: predictor state");
    pos = Pad8(pos);
    if (footer.size() < pos || footer.size() - pos < 24)
      return Status::Corruption("logstore v4 footer: index header: " + path);
    out->num_segments = LoadU64(footer.data() + pos);
    const uint64_t heap_size = LoadU64(footer.data() + pos + 8);
    const uint64_t phf_size = LoadU64(footer.data() + pos + 16);
    pos += 24;
    const size_t remaining = footer.size() - pos;
    if (out->num_segments > remaining / kRecSize)
      return Status::Corruption("logstore v4 footer: record count: " + path);
    const size_t rec_bytes = static_cast<size_t>(out->num_segments) * kRecSize;
    if (heap_size > remaining - rec_bytes ||
        phf_size > remaining - rec_bytes - heap_size)
      return Status::Corruption("logstore v4 footer: block sizes: " + path);
    out->seg_records = footer.substr(pos, rec_bytes);
    pos += rec_bytes;
    out->name_heap = footer.substr(pos, static_cast<size_t>(heap_size));
    pos = Pad8(pos + static_cast<size_t>(heap_size));
    if (footer.size() < pos || footer.size() - pos != phf_size)
      return Status::Corruption("logstore v4 footer: trailing bytes: " + path);
    out->phf_block = footer.substr(pos, static_cast<size_t>(phf_size));
    return Status::OK();
  }

  uint64_t num_segments;
  if (!GetVarint64(footer, &pos, &num_segments))
    return Status::Corruption("logstore footer: segment count");
  for (uint64_t i = 0; i < num_segments; ++i) {
    LogStore::SegmentInfo seg;
    if (!GetLengthPrefixed(footer, &pos, &seg.in_arr) ||
        !GetLengthPrefixed(footer, &pos, &seg.out_arr) ||
        !GetLengthPrefixed(footer, &pos, &seg.op_name) ||
        !GetVarint64(footer, &pos, &seg.offset) ||
        !GetVarint64(footer, &pos, &seg.length) ||
        !GetFixed64(footer, &pos, &seg.checksum))
      return Status::Corruption("logstore footer: segment entry");
    if (out->format_version >= 2) {
      uint64_t layout;
      int64_t row_count;
      if (!GetVarint64(footer, &pos, &layout) ||
          (layout != 1 && layout != 2) ||
          !GetVarintSigned(footer, &pos, &row_count) || row_count < -1)
        return Status::Corruption("logstore footer: segment layout");
      seg.layout = static_cast<SegmentLayout>(layout);
      seg.row_count = row_count;
    } else {
      seg.layout = SegmentLayout::kProvRcGzip;
      seg.row_count = -1;
    }
    if (out->format_version >= 3) {
      // Planner stats: sum_width = -1 marks "unknown" (e.g. raw-shuttled
      // segments whose source predates stats); the bound fields are only
      // meaningful when the stats are known.
      IntervalColumnStats& st = seg.out0_stats;
      if (!GetVarintSigned(footer, &pos, &st.sum_width) ||
          st.sum_width < -1 ||
          !GetVarintSigned(footer, &pos, &st.min_lo) ||
          !GetVarintSigned(footer, &pos, &st.max_lo) ||
          !GetVarintSigned(footer, &pos, &st.max_hi) ||
          (st.sum_width >= 0 && (seg.row_count < 0 || st.min_lo > st.max_lo)))
        return Status::Corruption("logstore footer: segment stats");
      st.row_count = st.sum_width >= 0 ? seg.row_count : -1;
    }
    if (seg.offset < kHeaderSize || seg.offset > footer_offset ||
        seg.length > footer_offset - seg.offset)
      return Status::Corruption("logstore footer: segment out of bounds: " +
                                seg.in_arr + " -> " + seg.out_arr);
    out->segments.push_back(std::move(seg));
  }

  if (!GetLengthPrefixed(footer, &pos, &out->predictor_state))
    return Status::Corruption("logstore footer: predictor state");
  return Status::OK();
}

std::string EncodeFooter(
    const std::map<std::string, std::vector<int64_t>>& arrays,
    const std::vector<LogStore::SegmentInfo>& segments,
    const std::string& predictor_state) {
  std::string footer;
  PutVarint64(&footer, 3);  // legacy varint footer version
  PutVarint64(&footer, arrays.size());
  for (const auto& [name, shape] : arrays) {
    PutLengthPrefixed(&footer, name);
    PutVarint64(&footer, shape.size());
    for (int64_t d : shape) PutVarint64(&footer, static_cast<uint64_t>(d));
  }
  PutVarint64(&footer, segments.size());
  for (const LogStore::SegmentInfo& seg : segments) {
    PutLengthPrefixed(&footer, seg.in_arr);
    PutLengthPrefixed(&footer, seg.out_arr);
    PutLengthPrefixed(&footer, seg.op_name);
    PutVarint64(&footer, seg.offset);
    PutVarint64(&footer, seg.length);
    PutFixed64(&footer, seg.checksum);
    PutVarint64(&footer, static_cast<uint64_t>(seg.layout));
    PutVarintSigned(&footer, seg.row_count);
    PutVarintSigned(&footer, seg.out0_stats.sum_width);
    PutVarintSigned(&footer, seg.out0_stats.min_lo);
    PutVarintSigned(&footer, seg.out0_stats.max_lo);
    PutVarintSigned(&footer, seg.out0_stats.max_hi);
  }
  PutLengthPrefixed(&footer, predictor_state);
  return footer;
}

/// Encodes the v4 flat footer. `segments` must already sit in final id
/// order (PHF position order when `phf_block` is non-empty); `phf_block`
/// may be empty, in which case readers use the lazy map fallback.
std::string EncodeFooterV4(
    const std::map<std::string, std::vector<int64_t>>& arrays,
    const std::vector<LogStore::SegmentInfo>& segments,
    const std::string& predictor_state, const std::string& phf_block) {
  std::string footer;
  PutVarint64(&footer, 4);
  PutVarint64(&footer, arrays.size());
  for (const auto& [name, shape] : arrays) {
    PutLengthPrefixed(&footer, name);
    PutVarint64(&footer, shape.size());
    for (int64_t d : shape) PutVarint64(&footer, static_cast<uint64_t>(d));
  }
  PutLengthPrefixed(&footer, predictor_state);
  footer.resize(Pad8(footer.size()), '\0');

  std::string heap;
  std::string records;
  records.reserve(segments.size() * kRecSize);
  for (const LogStore::SegmentInfo& seg : segments) {
    const uint64_t name_off = heap.size();
    heap.append(seg.in_arr);
    heap.append(seg.out_arr);
    heap.append(seg.op_name);
    AppendU64(&records, seg.offset);
    AppendU64(&records, seg.length);
    AppendU64(&records, seg.checksum);
    AppendU64(&records, name_off);
    AppendU64(&records, static_cast<uint64_t>(seg.row_count));
    AppendU64(&records, static_cast<uint64_t>(seg.out0_stats.sum_width));
    AppendU64(&records, static_cast<uint64_t>(seg.out0_stats.min_lo));
    AppendU64(&records, static_cast<uint64_t>(seg.out0_stats.max_lo));
    AppendU64(&records, static_cast<uint64_t>(seg.out0_stats.max_hi));
    AppendU32(&records, static_cast<uint32_t>(seg.in_arr.size()));
    AppendU32(&records, static_cast<uint32_t>(seg.out_arr.size()));
    AppendU32(&records, static_cast<uint32_t>(seg.op_name.size()));
    AppendU32(&records, static_cast<uint32_t>(seg.layout));
  }
  AppendU64(&footer, segments.size());
  AppendU64(&footer, heap.size());
  AppendU64(&footer, phf_block.size());
  footer.append(records);
  footer.append(heap);
  footer.resize(Pad8(footer.size()), '\0');
  footer.append(phf_block);
  return footer;
}

std::string EncodeTrailer(uint64_t footer_offset, const std::string& footer,
                          uint32_t footer_version) {
  std::string trailer;
  PutFixed64(&trailer, footer_offset);
  PutFixed64(&trailer,
             footer_version >= 4 ? Hash64Wide(footer) : Hash64(footer));
  trailer.append(kTrailerMagic, sizeof(kTrailerMagic));
  return trailer;
}

/// Resident-memory estimate of an owned decoded table (cache accounting).
int64_t ApproxDecodedBytes(const CompressedTable& table) {
  return 64 + table.num_rows() * (table.stride() * 16 +
                                  static_cast<int64_t>(table.in_ndim()) * 4);
}

/// Process-wide mirror of the per-store cache counters (the exact per-store
/// numbers stay on LogStore::stats(); the registry aggregates across all
/// open stores for dashboards/benches). References resolved once.
struct LogStoreMetrics {
  metrics::Counter& cache_hits;
  metrics::Counter& cache_misses;
  metrics::Counter& decodes;
  metrics::Counter& borrows;
  metrics::Counter& bytes_decompressed;
  metrics::Counter& rows_materialized;
  metrics::Counter& evictions;
  metrics::Histogram& resolve_us;

  static LogStoreMetrics& Get() {
    static LogStoreMetrics* m = [] {
      metrics::Registry& reg = metrics::Registry::Global();
      return new LogStoreMetrics{
          reg.counter("dslog.logstore.cache_hits"),
          reg.counter("dslog.logstore.cache_misses"),
          reg.counter("dslog.logstore.decodes"),
          reg.counter("dslog.logstore.borrows"),
          reg.counter("dslog.logstore.bytes_decompressed"),
          reg.counter("dslog.logstore.rows_materialized"),
          reg.counter("dslog.logstore.evictions"),
          reg.histogram("dslog.logstore.resolve_us"),
      };
    }();
    return *m;
  }
};

/// All ShardStats writes happen under the owning shard's mutex; relaxed
/// stores keep lock-free readers race-free (see header).
inline void BumpRelaxed(std::atomic<int64_t>& c, int64_t d = 1) {
  c.fetch_add(d, std::memory_order_relaxed);
}

}  // namespace

IntervalColumnStats ComputeOut0Stats(const CompressedTable& table) {
  const CompressedTableView v = table.view();
  const int64_t n = v.num_rows;
  const int64_t w = v.stride();
  IntervalColumnStats st;
  st.row_count = n;
  st.sum_width = 0;
  if (n == 0) return st;  // valid, empty column
  st.min_lo = v.lo[0];
  st.max_lo = v.lo[0];
  st.max_hi = v.hi[0];
  for (int64_t r = 0; r < n; ++r) {
    const int64_t lo = v.lo[r * w];
    const int64_t hi = v.hi[r * w];
    st.min_lo = std::min(st.min_lo, lo);
    st.max_lo = std::max(st.max_lo, lo);
    st.max_hi = std::max(st.max_hi, hi);
    st.sum_width += hi - lo + 1;
  }
  return st;
}

// ----------------------------------------------------------------- reader --

Result<std::unique_ptr<LogStore>> LogStore::Open(
    const std::string& path, const LogStoreOptions& options) {
  DSLOG_ASSIGN_OR_RETURN(MmapFile file,
                         MmapFile::Open(path, options.use_mmap));
  ParsedFooter footer;
  DSLOG_RETURN_IF_ERROR(ParseFile(file.view(), path, &footer));
  // ParsedFooter's v4 views point into `file`'s buffer; capture their
  // offsets before the move so they can be re-based onto store->file_
  // (a moved heap-fallback buffer is not guaranteed address-stable).
  const char* old_base = file.view().data();
  const auto view_offset = [old_base](std::string_view v) {
    return v.empty() ? 0 : static_cast<size_t>(v.data() - old_base);
  };
  const size_t rec_off = view_offset(footer.seg_records);
  const size_t heap_off = view_offset(footer.name_heap);
  const size_t phf_off = view_offset(footer.phf_block);
  std::unique_ptr<LogStore> store(new LogStore());
  store->path_ = path;
  store->file_ = std::move(file);
  store->options_ = options;
  store->format_version_ = footer.format_version;
  store->arrays_ = std::move(footer.arrays);
  store->predictor_state_ = std::move(footer.predictor_state);
  if (footer.format_version >= 4) {
    store->num_segments_ = static_cast<size_t>(footer.num_segments);
    std::string_view whole = store->file_.view();
    store->seg_records_ = whole.substr(rec_off, footer.seg_records.size());
    store->name_heap_ = whole.substr(heap_off, footer.name_heap.size());
    if (options.use_phf_index && !footer.phf_block.empty()) {
      auto phf = PhfView::Bind(whole.substr(phf_off, footer.phf_block.size()));
      if (!phf.ok())
        return phf.status().WithMessagePrefix("logstore " + path + ": ");
      if (phf.value().size() != footer.num_segments)
        return Status::Corruption("logstore PHF size != segment count: " +
                                  path);
      store->phf_ = phf.value();
      store->phf_enabled_ = true;
    }
  } else {
    store->segments_ = std::move(footer.segments);
    store->num_segments_ = store->segments_.size();
  }
  store->touched_.assign(store->num_segments_, 0);
  store->num_cache_shards_ =
      static_cast<size_t>(std::max(1, options.cache_shards));
  // Equal budget slices, floored at 1 byte so the eviction loop still
  // engages when a tiny test budget divides to zero.
  store->shard_capacity_bytes_ =
      std::max<int64_t>(1, options.cache_capacity_bytes /
                               static_cast<int64_t>(store->num_cache_shards_));
  store->cache_shards_ =
      std::make_unique<CacheShard[]>(store->num_cache_shards_);
  return store;
}

uint64_t LogStore::RecU64(size_t id, size_t field_offset) const {
  return LoadU64(seg_records_.data() + id * kRecSize + field_offset);
}

int64_t LogStore::RecI64(size_t id, size_t field_offset) const {
  return static_cast<int64_t>(RecU64(id, field_offset));
}

uint32_t LogStore::RecU32(size_t id, size_t field_offset) const {
  return LoadU32(seg_records_.data() + id * kRecSize + field_offset);
}

bool LogStore::SegNames(size_t id, std::string_view* in_arr,
                        std::string_view* out_arr,
                        std::string_view* op_name) const {
  const uint64_t name_off = RecU64(id, kRecNameOff);
  const uint64_t in_len = RecU32(id, kRecInLen);
  const uint64_t out_len = RecU32(id, kRecOutLen);
  const uint64_t op_len = RecU32(id, kRecOpLen);
  if (name_off > name_heap_.size() ||
      in_len + out_len + op_len > name_heap_.size() - name_off)
    return false;
  *in_arr = name_heap_.substr(static_cast<size_t>(name_off),
                              static_cast<size_t>(in_len));
  *out_arr = name_heap_.substr(static_cast<size_t>(name_off + in_len),
                               static_cast<size_t>(out_len));
  *op_name = name_heap_.substr(static_cast<size_t>(name_off + in_len + out_len),
                               static_cast<size_t>(op_len));
  return true;
}

LogStore::SegmentInfo LogStore::segment_info(size_t id) const {
  if (format_version_ < 4) return segments_[id];
  return DecodeV4Record(seg_records_, name_heap_, id);
}

int64_t LogStore::segment_length(size_t id) const {
  if (format_version_ < 4) return static_cast<int64_t>(segments_[id].length);
  return RecI64(id, kRecLength);
}

IntervalColumnStats LogStore::segment_out0_stats(size_t id) const {
  if (format_version_ < 4) return segments_[id].out0_stats;
  IntervalColumnStats st;
  st.sum_width = RecI64(id, kRecSumWidth);
  st.min_lo = RecI64(id, kRecMinLo);
  st.max_lo = RecI64(id, kRecMaxLo);
  st.max_hi = RecI64(id, kRecMaxHi);
  st.row_count = st.sum_width >= 0 ? RecI64(id, kRecRowCount) : -1;
  return st;
}

const std::vector<LogStore::SegmentInfo>& LogStore::segments() const {
  if (format_version_ < 4) return segments_;
  std::call_once(segments_once_, [this] {
    segments_.reserve(num_segments_);
    for (size_t i = 0; i < num_segments_; ++i)
      segments_.push_back(DecodeV4Record(seg_records_, name_heap_, i));
  });
  return segments_;
}

std::string_view LogStore::SegmentView(size_t id) const {
  uint64_t offset, length;
  if (format_version_ < 4) {
    offset = segments_[id].offset;
    length = segments_[id].length;
  } else {
    offset = RecU64(id, kRecOffset);
    length = RecU64(id, kRecLength);
  }
  return file_.view(static_cast<size_t>(offset), static_cast<size_t>(length));
}

void LogStore::BuildNameMap() const {
  std::call_once(name_map_once_, [this] {
    name_map_.reserve(num_segments_);
    for (size_t i = 0; i < num_segments_; ++i) {
      if (format_version_ < 4) {
        name_map_[EdgeStoreKey(segments_[i].in_arr, segments_[i].out_arr)] = i;
      } else {
        std::string_view in_arr, out_arr, op_name;
        if (!SegNames(i, &in_arr, &out_arr, &op_name)) {
          name_map_corrupt_ = true;
          return;
        }
        name_map_[EdgeStoreKey(in_arr, out_arr)] = i;
      }
    }
    name_map_built_.store(true, std::memory_order_release);
  });
}

Result<int64_t> LogStore::FindSegmentId(std::string_view in_arr,
                                        std::string_view out_arr) const {
  static metrics::Counter& probes =
      metrics::Registry::Global().counter("dslog.logstore.index_probes");
  static metrics::Counter& rejects =
      metrics::Registry::Global().counter("dslog.logstore.index_rejects");
  probes.Increment();
  if (num_segments_ == 0) {
    rejects.Increment();
    return -1;
  }
  if (phf_enabled_) {
    const int64_t pos = phf_.Lookup(EdgeKeyHash(in_arr, out_arr));
    if (pos < 0) {
      rejects.Increment();
      return -1;
    }
    // A PHF hit is only a candidate (fingerprints pass absent keys with
    // probability ~2^-8): confirm against the stored names before serving
    // the id — never a wrong segment, still zero segment bytes touched.
    std::string_view rec_in, rec_out, rec_op;
    if (!SegNames(static_cast<size_t>(pos), &rec_in, &rec_out, &rec_op))
      return Status::Corruption("logstore record names out of heap bounds: " +
                                path_);
    if (rec_in == in_arr && rec_out == out_arr) return pos;
    rejects.Increment();
    return -1;
  }
  BuildNameMap();
  if (name_map_corrupt_)
    return Status::Corruption("logstore record names out of heap bounds: " +
                              path_);
  auto it = name_map_.find(EdgeStoreKey(in_arr, out_arr));
  if (it == name_map_.end()) {
    rejects.Increment();
    return -1;
  }
  return static_cast<int64_t>(it->second);
}

Result<std::shared_ptr<const LogStore::ResolvedSegment>>
LogStore::ResolveSegment(size_t id, int64_t* charge, int64_t* decompressed,
                         bool* borrowed, int64_t* rows_copied) const {
  const SegmentInfo seg = segment_info(id);
  if (seg.offset < kHeaderSize || seg.offset > file_.size() ||
      seg.length > file_.size() - seg.offset)
    return Status::Corruption("logstore segment out of bounds: " + seg.in_arr +
                              " -> " + seg.out_arr + " in " + path_);
  std::string_view bytes = SegmentView(id);
  if (options_.verify_checksums && Hash64(bytes) != seg.checksum)
    return Status::Corruption("logstore segment checksum mismatch: " +
                              seg.in_arr + " -> " + seg.out_arr + " in " +
                              path_);
  auto resolved = std::make_shared<ResolvedSegment>();
  *decompressed = 0;
  *borrowed = false;
  *rows_copied = 0;
  if (seg.layout == SegmentLayout::kColumnar) {
    auto view = BorrowColumnarTable(bytes);
    if (view.ok()) {
      // Zero-copy: the view aliases the mapping, which this LogStore (and
      // therefore any pin holding the ResolvedSegment via the DSLog that
      // owns the store) keeps alive. Only the index is built.
      resolved->view = view.value();
      resolved->index = resolved->view.BuildBackwardIndex();
      *borrowed = true;
      *charge = 64 + resolved->index.bytes();
      return std::shared_ptr<const ResolvedSegment>(std::move(resolved));
    }
    if (view.status().code() != StatusCode::kNotSupported)
      return view.status().WithMessagePrefix("logstore segment " + seg.in_arr +
                                             " -> " + seg.out_arr + ": ");
    // Unaligned mapping (heap fallback reads can land anywhere): decode to
    // an owned table below.
    auto decoded = DeserializeCompressedTableColumnar(bytes);
    if (!decoded.ok())
      return decoded.status().WithMessagePrefix(
          "logstore segment " + seg.in_arr + " -> " + seg.out_arr + ": ");
    resolved->table = std::make_shared<const CompressedTable>(
        std::move(decoded).ValueOrDie());
  } else {
    auto decoded = DeserializeCompressedTableGzip(bytes);
    if (!decoded.ok())
      return decoded.status().WithMessagePrefix(
          "logstore segment " + seg.in_arr + " -> " + seg.out_arr + ": ");
    *decompressed = static_cast<int64_t>(bytes.size());
    resolved->table = std::make_shared<const CompressedTable>(
        std::move(decoded).ValueOrDie());
  }
  resolved->view = resolved->table->view();
  resolved->index = resolved->view.BuildBackwardIndex();
  *rows_copied = resolved->table->num_rows();
  *charge = ApproxDecodedBytes(*resolved->table) + resolved->index.bytes();
  return std::shared_ptr<const ResolvedSegment>(std::move(resolved));
}

Result<LogStore::PinnedTable> LogStore::View(size_t id, ViewEvent* ev) const {
  if (id >= num_segments_)
    return Status::InvalidArgument("logstore segment id out of range");
  LogStoreMetrics& lsm = LogStoreMetrics::Get();
  CacheShard& shard = ShardFor(id);
  if (ev != nullptr) ev->segment_bytes = segment_length(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.cache.find(id);
    if (it != shard.cache.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      BumpRelaxed(shard.stats.cache_hits);
      lsm.cache_hits.Increment();
      if (ev != nullptr) ev->cache_hit = true;
      const auto& seg = it->second.segment;
      return PinnedTable{seg->view, &seg->index, seg};
    }
    BumpRelaxed(shard.stats.cache_misses);
    lsm.cache_misses.Increment();
  }

  // Resolve outside the shard lock so cold segments decode in parallel —
  // even two segments of the same shard only serialize on the map update.
  // One span + two clock reads per cold resolve: amortized into the
  // checksum + decode + index build it brackets.
  trace::Span resolve_span("LogStore.Resolve", "storage");
  resolve_span.Arg("segment", static_cast<int64_t>(id));
  WallTimer resolve_timer;
  int64_t charge = 0, decompressed = 0, rows_copied = 0;
  bool borrowed = false;
  DSLOG_ASSIGN_OR_RETURN(
      std::shared_ptr<const ResolvedSegment> resolved,
      ResolveSegment(id, &charge, &decompressed, &borrowed, &rows_copied));
  const int64_t resolve_us =
      static_cast<int64_t>(resolve_timer.ElapsedSeconds() * 1e6);
  resolve_span.Arg("borrowed", borrowed ? 1 : 0);
  resolve_span.Arg("rows_materialized", rows_copied);
  lsm.resolve_us.Record(resolve_us);
  lsm.decodes.Increment();
  if (borrowed)
    lsm.borrows.Increment();
  else
    lsm.rows_materialized.Add(rows_copied);
  if (decompressed > 0) lsm.bytes_decompressed.Add(decompressed);
  if (ev != nullptr) {
    ev->borrowed = borrowed;
    ev->bytes_decompressed = decompressed;
    ev->rows_materialized = rows_copied;
    ev->resolve_us = resolve_us;
  }

  std::lock_guard<std::mutex> lock(shard.mu);
  BumpRelaxed(shard.stats.decode_count);
  BumpRelaxed(shard.stats.bytes_decompressed, decompressed);
  BumpRelaxed(shard.stats.rows_materialized, rows_copied);
  if (borrowed)
    BumpRelaxed(shard.stats.segments_borrowed);
  else
    BumpRelaxed(shard.stats.tables_materialized);
  if (!touched_[id]) {  // id's shard lock guards touched_[id]; see decl
    touched_[id] = 1;
    BumpRelaxed(shard.stats.segments_touched);
  }
  auto it = shard.cache.find(id);
  if (it != shard.cache.end()) {  // lost the resolve race
    const auto& seg = it->second.segment;
    return PinnedTable{seg->view, &seg->index, seg};
  }
  shard.lru.push_front(id);
  shard.cache[id] = CacheEntry{resolved, charge, shard.lru.begin()};
  shard.bytes += charge;
  // Evict past the shard's budget slice, never the entry just inserted (a
  // single segment larger than the whole budget must still be servable).
  while (shard.bytes > shard_capacity_bytes_ && shard.lru.size() > 1) {
    size_t victim = shard.lru.back();
    shard.lru.pop_back();
    auto vit = shard.cache.find(victim);
    shard.bytes -= vit->second.charge;
    shard.cache.erase(vit);
    BumpRelaxed(shard.stats.evictions);
    lsm.evictions.Increment();
  }
  return PinnedTable{resolved->view, &resolved->index, resolved};
}

Result<std::shared_ptr<const CompressedTable>> LogStore::Table(
    size_t id) const {
  if (id >= num_segments_)
    return Status::InvalidArgument("logstore segment id out of range");
  DSLOG_ASSIGN_OR_RETURN(PinnedTable pinned, View(id));
  // v1 (and unaligned-v2) resolutions already own a table: alias it so the
  // returned pointer shares the cache entry's lifetime.
  auto resolved =
      std::static_pointer_cast<const ResolvedSegment>(pinned.pin);
  if (resolved->table != nullptr) return resolved->table;
  // Borrowed v2 view: materialize an owned copy for this caller.
  auto owned = DeserializeCompressedTableColumnar(SegmentView(id));
  if (!owned.ok())
    return owned.status().WithMessagePrefix("logstore segment materialize: ");
  return std::make_shared<const CompressedTable>(std::move(owned).ValueOrDie());
}

LogStoreStats LogStore::stats() const {
  // Sum per-shard counters. Taking each shard's mutex makes that shard's
  // contribution a consistent cut (all writes happen under it), so the
  // per-shard invariants documented on LogStoreStats carry into the sum.
  // Concurrent readers may land between shard reads; every counted event
  // is in exactly one shard, so totals are exact once readers quiesce.
  LogStoreStats out;
  for (size_t i = 0; i < num_cache_shards_; ++i) {
    CacheShard& shard = cache_shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    const ShardStats& s = shard.stats;
    const auto ld = [](const std::atomic<int64_t>& v) {
      return v.load(std::memory_order_relaxed);
    };
    out.segments_touched += ld(s.segments_touched);
    out.decode_count += ld(s.decode_count);
    out.bytes_decompressed += ld(s.bytes_decompressed);
    out.tables_materialized += ld(s.tables_materialized);
    out.rows_materialized += ld(s.rows_materialized);
    out.segments_borrowed += ld(s.segments_borrowed);
    out.cache_hits += ld(s.cache_hits);
    out.cache_misses += ld(s.cache_misses);
    out.evictions += ld(s.evictions);
  }
  out.segment_count = static_cast<int64_t>(num_segments_);
  return out;
}

// ----------------------------------------------------------------- writer --

namespace {
Status ValidateWriterOptions(const LogStoreWriterOptions& options) {
  if (options.footer_version != 3 && options.footer_version != 4)
    return Status::InvalidArgument("logstore writer: footer_version must be 3 "
                                   "or 4");
  return Status::OK();
}
}  // namespace

Result<LogStoreWriter> LogStoreWriter::Create(
    std::string path, const LogStoreWriterOptions& options) {
  DSLOG_RETURN_IF_ERROR(ValidateWriterOptions(options));
  LogStoreWriter writer;
  writer.options_ = options;
  writer.path_ = std::move(path);
  writer.base_offset_ = kHeaderSize;
  return writer;
}

Result<LogStoreWriter> LogStoreWriter::OpenForAppend(
    std::string path, const LogStoreWriterOptions& options) {
  DSLOG_RETURN_IF_ERROR(ValidateWriterOptions(options));
  DSLOG_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  ParsedFooter footer;
  DSLOG_RETURN_IF_ERROR(ParseFile(file.view(), path, &footer));
  LogStoreWriter writer;
  writer.options_ = options;
  writer.appending_ = true;
  writer.path_ = std::move(path);
  writer.base_offset_ = footer.footer_offset;
  writer.old_file_size_ = file.size();
  writer.arrays_ = std::move(footer.arrays);
  if (footer.format_version >= 4) {
    // Materialize the flat records into owned entries: the writer keeps
    // them across the life of `file`'s mapping.
    writer.segments_.reserve(static_cast<size_t>(footer.num_segments));
    for (uint64_t i = 0; i < footer.num_segments; ++i)
      writer.segments_.push_back(
          DecodeV4Record(footer.seg_records, footer.name_heap,
                         static_cast<size_t>(i)));
  } else {
    writer.segments_ = std::move(footer.segments);
  }
  writer.predictor_state_ = std::move(footer.predictor_state);
  for (size_t i = 0; i < writer.segments_.size(); ++i)
    writer.edge_index_[EdgeStoreKey(writer.segments_[i].in_arr,
                                    writer.segments_[i].out_arr)] = i;
  return writer;
}

void LogStoreWriter::PutArray(const std::string& name,
                              std::vector<int64_t> shape) {
  arrays_[name] = std::move(shape);
}

bool LogStoreWriter::HasEdge(const std::string& in_arr,
                             const std::string& out_arr) const {
  return edge_index_.count(EdgeStoreKey(in_arr, out_arr)) > 0;
}

const LogStore::SegmentInfo* LogStoreWriter::FindSegment(
    const std::string& in_arr, const std::string& out_arr) const {
  auto it = edge_index_.find(EdgeStoreKey(in_arr, out_arr));
  return it == edge_index_.end() ? nullptr : &segments_[it->second];
}

Status LogStoreWriter::AppendEdge(const std::string& in_arr,
                                  const std::string& out_arr,
                                  const std::string& op_name,
                                  const CompressedTable& table,
                                  SegmentLayout layout) {
  return AppendRawSegment(in_arr, out_arr, op_name,
                          layout == SegmentLayout::kColumnar
                              ? SerializeCompressedTableColumnar(table)
                              : SerializeCompressedTableGzip(table),
                          layout, table.num_rows(), ComputeOut0Stats(table));
}

Status LogStoreWriter::AppendRawSegment(const std::string& in_arr,
                                        const std::string& out_arr,
                                        const std::string& op_name,
                                        std::string_view bytes,
                                        SegmentLayout layout,
                                        int64_t row_count,
                                        const IntervalColumnStats& out0_stats) {
  if (finished_) return Status::Internal("logstore writer already finished");
  // Columnar segments must start 8-aligned in the file so a mapped reader
  // can reinterpret the arenas in place; pad with dead bytes if the write
  // cursor (header is already 8) sits mid-word after gzip segments.
  if (layout == SegmentLayout::kColumnar) {
    while ((base_offset_ + new_bytes_.size()) % 8 != 0)
      new_bytes_.push_back('\0');
  }
  LogStore::SegmentInfo seg;
  seg.in_arr = in_arr;
  seg.out_arr = out_arr;
  seg.op_name = op_name;
  seg.offset = base_offset_ + new_bytes_.size();
  seg.length = bytes.size();
  seg.checksum = Hash64(bytes);
  seg.layout = layout;
  seg.row_count = row_count;
  seg.out0_stats = out0_stats;
  new_bytes_.append(bytes);
  auto [it, inserted] =
      edge_index_.try_emplace(EdgeStoreKey(in_arr, out_arr), segments_.size());
  if (inserted) {
    segments_.push_back(std::move(seg));
  } else {
    // Replacement: newest segment wins; the old bytes become dead space
    // (reclaimed by a future Create()-based rewrite).
    segments_[it->second] = std::move(seg);
  }
  return Status::OK();
}

void LogStoreWriter::SetPredictorState(std::string blob) {
  predictor_state_ = std::move(blob);
}

Status LogStoreWriter::Finish() {
  if (finished_) return Status::Internal("logstore writer already finished");
  finished_ = true;
  std::string footer;
  if (options_.footer_version >= 4) {
    // The flat footer must start 8-aligned in the file (its records are
    // read in place); pad the segment area out to a word boundary.
    while ((base_offset_ + new_bytes_.size()) % 8 != 0)
      new_bytes_.push_back('\0');
    std::string phf_block;
    if (options_.build_phf && !segments_.empty()) {
      std::vector<uint64_t> hashes;
      hashes.reserve(segments_.size());
      for (const LogStore::SegmentInfo& seg : segments_)
        hashes.push_back(EdgeKeyHash(seg.in_arr, seg.out_arr));
      auto built = PhfBuilder::Build(hashes);
      if (built.ok()) {
        // Permute the metadata records into PHF-position order so the PHF
        // position of an edge key IS its segment id — no value array, no
        // indirection. Only footer record order changes; segment bytes and
        // offsets are untouched. Construction can only fail on a 64-bit
        // key-hash collision (or seed exhaustion); the footer then ships
        // an empty PHF block and readers fall back to the lazy map.
        auto phf = PhfView::Bind(built.value());
        DSLOG_CHECK(phf.ok()) << phf.status().ToString();
        std::vector<LogStore::SegmentInfo> permuted(segments_.size());
        for (size_t i = 0; i < segments_.size(); ++i) {
          const int64_t pos = phf.value().Lookup(hashes[i]);
          DSLOG_CHECK(pos >= 0 &&
                      pos < static_cast<int64_t>(segments_.size()));
          permuted[static_cast<size_t>(pos)] = std::move(segments_[i]);
        }
        segments_ = std::move(permuted);
        phf_block = std::move(built).ValueOrDie();
      }
    }
    footer = EncodeFooterV4(arrays_, segments_, predictor_state_, phf_block);
  } else {
    footer = EncodeFooter(arrays_, segments_, predictor_state_);
  }
  const uint64_t footer_offset = base_offset_ + new_bytes_.size();
  std::string trailer =
      EncodeTrailer(footer_offset, footer, options_.footer_version);

  if (!appending_) {
    std::string file;
    file.reserve(kHeaderSize + new_bytes_.size() + footer.size() +
                 trailer.size());
    file.append(kHeaderMagic, kHeaderSize);
    file.append(new_bytes_);
    file.append(footer);
    file.append(trailer);
    return WriteFileAtomic(path_, file);
  }

  std::fstream out(path_,
                   std::ios::in | std::ios::out | std::ios::binary);
  if (!out) return Status::IOError("cannot open for append: " + path_);
  out.seekp(static_cast<std::streamoff>(base_offset_));
  out.write(new_bytes_.data(),
            static_cast<std::streamsize>(new_bytes_.size()));
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  out.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  out.flush();
  if (!out) return Status::IOError("short append: " + path_);
  out.close();
  const uint64_t new_size = footer_offset + footer.size() + trailer.size();
  if (new_size < old_file_size_) {
    std::error_code ec;
    std::filesystem::resize_file(path_, new_size, ec);
    if (ec) return Status::IOError("truncate failed: " + path_);
  }
  return Status::OK();
}

}  // namespace dslog
