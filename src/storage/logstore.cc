#include "storage/logstore.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/hash.h"
#include "common/io.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "compress/varint.h"
#include "provrc/serialize.h"

namespace dslog {

namespace {

constexpr char kHeaderMagic[8] = {'D', 'S', 'L', 'S', 'T', 'O', 'R', '1'};
constexpr char kTrailerMagic[4] = {'D', 'S', 'L', 'F'};
constexpr size_t kHeaderSize = sizeof(kHeaderMagic);
// fixed64 footer_offset + fixed64 footer checksum + trailer magic.
constexpr size_t kTrailerSize = 8 + 8 + sizeof(kTrailerMagic);
// Version 2 adds per-segment layout + row count to the footer. Version 3
// adds per-segment output-attribute-0 interval-column stats (join-planner
// inputs). Version-1 files (all segments ProvRC-GZip, no row counts) and
// version-2 files (no stats) still open.
constexpr uint32_t kFormatVersion = 3;

struct ParsedFooter {
  uint32_t format_version = 0;
  uint64_t footer_offset = 0;
  std::map<std::string, std::vector<int64_t>> arrays;
  std::vector<LogStore::SegmentInfo> segments;
  std::string predictor_state;
};

/// Validates header + trailer of a whole-file view and decodes the footer.
Status ParseFile(std::string_view file, const std::string& path,
                 ParsedFooter* out) {
  if (file.size() < kHeaderSize + kTrailerSize)
    return Status::Corruption("logstore too short: " + path);
  if (std::memcmp(file.data(), kHeaderMagic, kHeaderSize) != 0)
    return Status::Corruption("logstore bad header magic: " + path);
  size_t tpos = file.size() - kTrailerSize;
  uint64_t footer_offset, footer_hash;
  if (!GetFixed64(file, &tpos, &footer_offset) ||
      !GetFixed64(file, &tpos, &footer_hash) ||
      std::memcmp(file.data() + tpos, kTrailerMagic, sizeof(kTrailerMagic)) !=
          0)
    return Status::Corruption("logstore bad trailer: " + path);
  if (footer_offset < kHeaderSize ||
      footer_offset > file.size() - kTrailerSize)
    return Status::Corruption("logstore footer offset out of range: " + path);
  std::string_view footer = file.substr(
      static_cast<size_t>(footer_offset),
      file.size() - kTrailerSize - static_cast<size_t>(footer_offset));
  if (Hash64(footer) != footer_hash)
    return Status::Corruption("logstore footer checksum mismatch: " + path);

  out->footer_offset = footer_offset;
  size_t pos = 0;
  uint64_t version;
  if (!GetVarint64(footer, &pos, &version) || version == 0 ||
      version > kFormatVersion)
    return Status::Corruption("logstore unsupported format version: " + path);
  out->format_version = static_cast<uint32_t>(version);

  uint64_t num_arrays;
  if (!GetVarint64(footer, &pos, &num_arrays))
    return Status::Corruption("logstore footer: array count");
  for (uint64_t i = 0; i < num_arrays; ++i) {
    std::string name;
    uint64_t ndim;
    if (!GetLengthPrefixed(footer, &pos, &name) ||
        !GetVarint64(footer, &pos, &ndim) || ndim > 64)
      return Status::Corruption("logstore footer: array entry");
    std::vector<int64_t> shape(ndim);
    for (auto& d : shape) {
      uint64_t v;
      if (!GetVarint64(footer, &pos, &v))
        return Status::Corruption("logstore footer: array shape");
      d = static_cast<int64_t>(v);
    }
    out->arrays[std::move(name)] = std::move(shape);
  }

  uint64_t num_segments;
  if (!GetVarint64(footer, &pos, &num_segments))
    return Status::Corruption("logstore footer: segment count");
  for (uint64_t i = 0; i < num_segments; ++i) {
    LogStore::SegmentInfo seg;
    if (!GetLengthPrefixed(footer, &pos, &seg.in_arr) ||
        !GetLengthPrefixed(footer, &pos, &seg.out_arr) ||
        !GetLengthPrefixed(footer, &pos, &seg.op_name) ||
        !GetVarint64(footer, &pos, &seg.offset) ||
        !GetVarint64(footer, &pos, &seg.length) ||
        !GetFixed64(footer, &pos, &seg.checksum))
      return Status::Corruption("logstore footer: segment entry");
    if (out->format_version >= 2) {
      uint64_t layout;
      int64_t row_count;
      if (!GetVarint64(footer, &pos, &layout) ||
          (layout != 1 && layout != 2) ||
          !GetVarintSigned(footer, &pos, &row_count) || row_count < -1)
        return Status::Corruption("logstore footer: segment layout");
      seg.layout = static_cast<SegmentLayout>(layout);
      seg.row_count = row_count;
    } else {
      seg.layout = SegmentLayout::kProvRcGzip;
      seg.row_count = -1;
    }
    if (out->format_version >= 3) {
      // Planner stats: sum_width = -1 marks "unknown" (e.g. raw-shuttled
      // segments whose source predates stats); the bound fields are only
      // meaningful when the stats are known.
      IntervalColumnStats& st = seg.out0_stats;
      if (!GetVarintSigned(footer, &pos, &st.sum_width) ||
          st.sum_width < -1 ||
          !GetVarintSigned(footer, &pos, &st.min_lo) ||
          !GetVarintSigned(footer, &pos, &st.max_lo) ||
          !GetVarintSigned(footer, &pos, &st.max_hi) ||
          (st.sum_width >= 0 && (seg.row_count < 0 || st.min_lo > st.max_lo)))
        return Status::Corruption("logstore footer: segment stats");
      st.row_count = st.sum_width >= 0 ? seg.row_count : -1;
    }
    if (seg.offset < kHeaderSize || seg.offset > footer_offset ||
        seg.length > footer_offset - seg.offset)
      return Status::Corruption("logstore footer: segment out of bounds: " +
                                seg.in_arr + " -> " + seg.out_arr);
    out->segments.push_back(std::move(seg));
  }

  if (!GetLengthPrefixed(footer, &pos, &out->predictor_state))
    return Status::Corruption("logstore footer: predictor state");
  return Status::OK();
}

std::string EncodeFooter(
    const std::map<std::string, std::vector<int64_t>>& arrays,
    const std::vector<LogStore::SegmentInfo>& segments,
    const std::string& predictor_state) {
  std::string footer;
  PutVarint64(&footer, kFormatVersion);
  PutVarint64(&footer, arrays.size());
  for (const auto& [name, shape] : arrays) {
    PutLengthPrefixed(&footer, name);
    PutVarint64(&footer, shape.size());
    for (int64_t d : shape) PutVarint64(&footer, static_cast<uint64_t>(d));
  }
  PutVarint64(&footer, segments.size());
  for (const LogStore::SegmentInfo& seg : segments) {
    PutLengthPrefixed(&footer, seg.in_arr);
    PutLengthPrefixed(&footer, seg.out_arr);
    PutLengthPrefixed(&footer, seg.op_name);
    PutVarint64(&footer, seg.offset);
    PutVarint64(&footer, seg.length);
    PutFixed64(&footer, seg.checksum);
    PutVarint64(&footer, static_cast<uint64_t>(seg.layout));
    PutVarintSigned(&footer, seg.row_count);
    PutVarintSigned(&footer, seg.out0_stats.sum_width);
    PutVarintSigned(&footer, seg.out0_stats.min_lo);
    PutVarintSigned(&footer, seg.out0_stats.max_lo);
    PutVarintSigned(&footer, seg.out0_stats.max_hi);
  }
  PutLengthPrefixed(&footer, predictor_state);
  return footer;
}

std::string EncodeTrailer(uint64_t footer_offset, const std::string& footer) {
  std::string trailer;
  PutFixed64(&trailer, footer_offset);
  PutFixed64(&trailer, Hash64(footer));
  trailer.append(kTrailerMagic, sizeof(kTrailerMagic));
  return trailer;
}

/// Resident-memory estimate of an owned decoded table (cache accounting).
int64_t ApproxDecodedBytes(const CompressedTable& table) {
  return 64 + table.num_rows() * (table.stride() * 16 +
                                  static_cast<int64_t>(table.in_ndim()) * 4);
}

/// Process-wide mirror of the per-store cache counters (the exact per-store
/// numbers stay on LogStore::stats(); the registry aggregates across all
/// open stores for dashboards/benches). References resolved once.
struct LogStoreMetrics {
  metrics::Counter& cache_hits;
  metrics::Counter& cache_misses;
  metrics::Counter& decodes;
  metrics::Counter& borrows;
  metrics::Counter& bytes_decompressed;
  metrics::Counter& rows_materialized;
  metrics::Counter& evictions;
  metrics::Histogram& resolve_us;

  static LogStoreMetrics& Get() {
    static LogStoreMetrics* m = [] {
      metrics::Registry& reg = metrics::Registry::Global();
      return new LogStoreMetrics{
          reg.counter("dslog.logstore.cache_hits"),
          reg.counter("dslog.logstore.cache_misses"),
          reg.counter("dslog.logstore.decodes"),
          reg.counter("dslog.logstore.borrows"),
          reg.counter("dslog.logstore.bytes_decompressed"),
          reg.counter("dslog.logstore.rows_materialized"),
          reg.counter("dslog.logstore.evictions"),
          reg.histogram("dslog.logstore.resolve_us"),
      };
    }();
    return *m;
  }
};

/// All ShardStats writes happen under the owning shard's mutex; relaxed
/// stores keep lock-free readers race-free (see header).
inline void BumpRelaxed(std::atomic<int64_t>& c, int64_t d = 1) {
  c.fetch_add(d, std::memory_order_relaxed);
}

}  // namespace

IntervalColumnStats ComputeOut0Stats(const CompressedTable& table) {
  const CompressedTableView v = table.view();
  const int64_t n = v.num_rows;
  const int64_t w = v.stride();
  IntervalColumnStats st;
  st.row_count = n;
  st.sum_width = 0;
  if (n == 0) return st;  // valid, empty column
  st.min_lo = v.lo[0];
  st.max_lo = v.lo[0];
  st.max_hi = v.hi[0];
  for (int64_t r = 0; r < n; ++r) {
    const int64_t lo = v.lo[r * w];
    const int64_t hi = v.hi[r * w];
    st.min_lo = std::min(st.min_lo, lo);
    st.max_lo = std::max(st.max_lo, lo);
    st.max_hi = std::max(st.max_hi, hi);
    st.sum_width += hi - lo + 1;
  }
  return st;
}

// ----------------------------------------------------------------- reader --

Result<std::unique_ptr<LogStore>> LogStore::Open(
    const std::string& path, const LogStoreOptions& options) {
  DSLOG_ASSIGN_OR_RETURN(MmapFile file,
                         MmapFile::Open(path, options.use_mmap));
  ParsedFooter footer;
  DSLOG_RETURN_IF_ERROR(ParseFile(file.view(), path, &footer));
  std::unique_ptr<LogStore> store(new LogStore());
  store->path_ = path;
  store->file_ = std::move(file);
  store->options_ = options;
  store->format_version_ = footer.format_version;
  store->arrays_ = std::move(footer.arrays);
  store->segments_ = std::move(footer.segments);
  store->predictor_state_ = std::move(footer.predictor_state);
  store->touched_.assign(store->segments_.size(), 0);
  store->num_cache_shards_ =
      static_cast<size_t>(std::max(1, options.cache_shards));
  // Equal budget slices, floored at 1 byte so the eviction loop still
  // engages when a tiny test budget divides to zero.
  store->shard_capacity_bytes_ =
      std::max<int64_t>(1, options.cache_capacity_bytes /
                               static_cast<int64_t>(store->num_cache_shards_));
  store->cache_shards_ =
      std::make_unique<CacheShard[]>(store->num_cache_shards_);
  return store;
}

Result<std::shared_ptr<const LogStore::ResolvedSegment>>
LogStore::ResolveSegment(size_t id, int64_t* charge, int64_t* decompressed,
                         bool* borrowed, int64_t* rows_copied) const {
  const SegmentInfo& seg = segments_[id];
  std::string_view bytes = SegmentView(id);
  if (options_.verify_checksums && Hash64(bytes) != seg.checksum)
    return Status::Corruption("logstore segment checksum mismatch: " +
                              seg.in_arr + " -> " + seg.out_arr + " in " +
                              path_);
  auto resolved = std::make_shared<ResolvedSegment>();
  *decompressed = 0;
  *borrowed = false;
  *rows_copied = 0;
  if (seg.layout == SegmentLayout::kColumnar) {
    auto view = BorrowColumnarTable(bytes);
    if (view.ok()) {
      // Zero-copy: the view aliases the mapping, which this LogStore (and
      // therefore any pin holding the ResolvedSegment via the DSLog that
      // owns the store) keeps alive. Only the index is built.
      resolved->view = view.value();
      resolved->index = resolved->view.BuildBackwardIndex();
      *borrowed = true;
      *charge = 64 + resolved->index.bytes();
      return std::shared_ptr<const ResolvedSegment>(std::move(resolved));
    }
    if (view.status().code() != StatusCode::kNotSupported)
      return view.status().WithMessagePrefix("logstore segment " + seg.in_arr +
                                             " -> " + seg.out_arr + ": ");
    // Unaligned mapping (heap fallback reads can land anywhere): decode to
    // an owned table below.
    auto decoded = DeserializeCompressedTableColumnar(bytes);
    if (!decoded.ok())
      return decoded.status().WithMessagePrefix(
          "logstore segment " + seg.in_arr + " -> " + seg.out_arr + ": ");
    resolved->table = std::make_shared<const CompressedTable>(
        std::move(decoded).ValueOrDie());
  } else {
    auto decoded = DeserializeCompressedTableGzip(bytes);
    if (!decoded.ok())
      return decoded.status().WithMessagePrefix(
          "logstore segment " + seg.in_arr + " -> " + seg.out_arr + ": ");
    *decompressed = static_cast<int64_t>(bytes.size());
    resolved->table = std::make_shared<const CompressedTable>(
        std::move(decoded).ValueOrDie());
  }
  resolved->view = resolved->table->view();
  resolved->index = resolved->view.BuildBackwardIndex();
  *rows_copied = resolved->table->num_rows();
  *charge = ApproxDecodedBytes(*resolved->table) + resolved->index.bytes();
  return std::shared_ptr<const ResolvedSegment>(std::move(resolved));
}

Result<LogStore::PinnedTable> LogStore::View(size_t id, ViewEvent* ev) const {
  if (id >= segments_.size())
    return Status::InvalidArgument("logstore segment id out of range");
  LogStoreMetrics& lsm = LogStoreMetrics::Get();
  CacheShard& shard = ShardFor(id);
  if (ev != nullptr)
    ev->segment_bytes = static_cast<int64_t>(segments_[id].length);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.cache.find(id);
    if (it != shard.cache.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      BumpRelaxed(shard.stats.cache_hits);
      lsm.cache_hits.Increment();
      if (ev != nullptr) ev->cache_hit = true;
      const auto& seg = it->second.segment;
      return PinnedTable{seg->view, &seg->index, seg};
    }
    BumpRelaxed(shard.stats.cache_misses);
    lsm.cache_misses.Increment();
  }

  // Resolve outside the shard lock so cold segments decode in parallel —
  // even two segments of the same shard only serialize on the map update.
  // One span + two clock reads per cold resolve: amortized into the
  // checksum + decode + index build it brackets.
  trace::Span resolve_span("LogStore.Resolve", "storage");
  resolve_span.Arg("segment", static_cast<int64_t>(id));
  WallTimer resolve_timer;
  int64_t charge = 0, decompressed = 0, rows_copied = 0;
  bool borrowed = false;
  DSLOG_ASSIGN_OR_RETURN(
      std::shared_ptr<const ResolvedSegment> resolved,
      ResolveSegment(id, &charge, &decompressed, &borrowed, &rows_copied));
  const int64_t resolve_us =
      static_cast<int64_t>(resolve_timer.ElapsedSeconds() * 1e6);
  resolve_span.Arg("borrowed", borrowed ? 1 : 0);
  resolve_span.Arg("rows_materialized", rows_copied);
  lsm.resolve_us.Record(resolve_us);
  lsm.decodes.Increment();
  if (borrowed)
    lsm.borrows.Increment();
  else
    lsm.rows_materialized.Add(rows_copied);
  if (decompressed > 0) lsm.bytes_decompressed.Add(decompressed);
  if (ev != nullptr) {
    ev->borrowed = borrowed;
    ev->bytes_decompressed = decompressed;
    ev->rows_materialized = rows_copied;
    ev->resolve_us = resolve_us;
  }

  std::lock_guard<std::mutex> lock(shard.mu);
  BumpRelaxed(shard.stats.decode_count);
  BumpRelaxed(shard.stats.bytes_decompressed, decompressed);
  BumpRelaxed(shard.stats.rows_materialized, rows_copied);
  if (borrowed)
    BumpRelaxed(shard.stats.segments_borrowed);
  else
    BumpRelaxed(shard.stats.tables_materialized);
  if (!touched_[id]) {  // id's shard lock guards touched_[id]; see decl
    touched_[id] = 1;
    BumpRelaxed(shard.stats.segments_touched);
  }
  auto it = shard.cache.find(id);
  if (it != shard.cache.end()) {  // lost the resolve race
    const auto& seg = it->second.segment;
    return PinnedTable{seg->view, &seg->index, seg};
  }
  shard.lru.push_front(id);
  shard.cache[id] = CacheEntry{resolved, charge, shard.lru.begin()};
  shard.bytes += charge;
  // Evict past the shard's budget slice, never the entry just inserted (a
  // single segment larger than the whole budget must still be servable).
  while (shard.bytes > shard_capacity_bytes_ && shard.lru.size() > 1) {
    size_t victim = shard.lru.back();
    shard.lru.pop_back();
    auto vit = shard.cache.find(victim);
    shard.bytes -= vit->second.charge;
    shard.cache.erase(vit);
    BumpRelaxed(shard.stats.evictions);
    lsm.evictions.Increment();
  }
  return PinnedTable{resolved->view, &resolved->index, resolved};
}

Result<std::shared_ptr<const CompressedTable>> LogStore::Table(
    size_t id) const {
  if (id >= segments_.size())
    return Status::InvalidArgument("logstore segment id out of range");
  DSLOG_ASSIGN_OR_RETURN(PinnedTable pinned, View(id));
  // v1 (and unaligned-v2) resolutions already own a table: alias it so the
  // returned pointer shares the cache entry's lifetime.
  auto resolved =
      std::static_pointer_cast<const ResolvedSegment>(pinned.pin);
  if (resolved->table != nullptr) return resolved->table;
  // Borrowed v2 view: materialize an owned copy for this caller.
  auto owned = DeserializeCompressedTableColumnar(SegmentView(id));
  if (!owned.ok())
    return owned.status().WithMessagePrefix("logstore segment materialize: ");
  return std::make_shared<const CompressedTable>(std::move(owned).ValueOrDie());
}

LogStoreStats LogStore::stats() const {
  // Sum per-shard counters. Taking each shard's mutex makes that shard's
  // contribution a consistent cut (all writes happen under it), so the
  // per-shard invariants documented on LogStoreStats carry into the sum.
  // Concurrent readers may land between shard reads; every counted event
  // is in exactly one shard, so totals are exact once readers quiesce.
  LogStoreStats out;
  for (size_t i = 0; i < num_cache_shards_; ++i) {
    CacheShard& shard = cache_shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    const ShardStats& s = shard.stats;
    const auto ld = [](const std::atomic<int64_t>& v) {
      return v.load(std::memory_order_relaxed);
    };
    out.segments_touched += ld(s.segments_touched);
    out.decode_count += ld(s.decode_count);
    out.bytes_decompressed += ld(s.bytes_decompressed);
    out.tables_materialized += ld(s.tables_materialized);
    out.rows_materialized += ld(s.rows_materialized);
    out.segments_borrowed += ld(s.segments_borrowed);
    out.cache_hits += ld(s.cache_hits);
    out.cache_misses += ld(s.cache_misses);
    out.evictions += ld(s.evictions);
  }
  out.segment_count = static_cast<int64_t>(segments_.size());
  return out;
}

// ----------------------------------------------------------------- writer --

Result<LogStoreWriter> LogStoreWriter::Create(std::string path) {
  LogStoreWriter writer;
  writer.path_ = std::move(path);
  writer.base_offset_ = kHeaderSize;
  return writer;
}

Result<LogStoreWriter> LogStoreWriter::OpenForAppend(std::string path) {
  DSLOG_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  ParsedFooter footer;
  DSLOG_RETURN_IF_ERROR(ParseFile(file.view(), path, &footer));
  LogStoreWriter writer;
  writer.appending_ = true;
  writer.path_ = std::move(path);
  writer.base_offset_ = footer.footer_offset;
  writer.old_file_size_ = file.size();
  writer.arrays_ = std::move(footer.arrays);
  writer.segments_ = std::move(footer.segments);
  writer.predictor_state_ = std::move(footer.predictor_state);
  for (size_t i = 0; i < writer.segments_.size(); ++i)
    writer.edge_index_[EdgeStoreKey(writer.segments_[i].in_arr,
                               writer.segments_[i].out_arr)] = i;
  return writer;
}

void LogStoreWriter::PutArray(const std::string& name,
                              std::vector<int64_t> shape) {
  arrays_[name] = std::move(shape);
}

bool LogStoreWriter::HasEdge(const std::string& in_arr,
                             const std::string& out_arr) const {
  return edge_index_.count(EdgeStoreKey(in_arr, out_arr)) > 0;
}

const LogStore::SegmentInfo* LogStoreWriter::FindSegment(
    const std::string& in_arr, const std::string& out_arr) const {
  auto it = edge_index_.find(EdgeStoreKey(in_arr, out_arr));
  return it == edge_index_.end() ? nullptr : &segments_[it->second];
}

Status LogStoreWriter::AppendEdge(const std::string& in_arr,
                                  const std::string& out_arr,
                                  const std::string& op_name,
                                  const CompressedTable& table,
                                  SegmentLayout layout) {
  return AppendRawSegment(in_arr, out_arr, op_name,
                          layout == SegmentLayout::kColumnar
                              ? SerializeCompressedTableColumnar(table)
                              : SerializeCompressedTableGzip(table),
                          layout, table.num_rows(), ComputeOut0Stats(table));
}

Status LogStoreWriter::AppendRawSegment(const std::string& in_arr,
                                        const std::string& out_arr,
                                        const std::string& op_name,
                                        std::string_view bytes,
                                        SegmentLayout layout,
                                        int64_t row_count,
                                        const IntervalColumnStats& out0_stats) {
  if (finished_) return Status::Internal("logstore writer already finished");
  // Columnar segments must start 8-aligned in the file so a mapped reader
  // can reinterpret the arenas in place; pad with dead bytes if the write
  // cursor (header is already 8) sits mid-word after gzip segments.
  if (layout == SegmentLayout::kColumnar) {
    while ((base_offset_ + new_bytes_.size()) % 8 != 0)
      new_bytes_.push_back('\0');
  }
  LogStore::SegmentInfo seg;
  seg.in_arr = in_arr;
  seg.out_arr = out_arr;
  seg.op_name = op_name;
  seg.offset = base_offset_ + new_bytes_.size();
  seg.length = bytes.size();
  seg.checksum = Hash64(bytes);
  seg.layout = layout;
  seg.row_count = row_count;
  seg.out0_stats = out0_stats;
  new_bytes_.append(bytes);
  auto [it, inserted] =
      edge_index_.try_emplace(EdgeStoreKey(in_arr, out_arr), segments_.size());
  if (inserted) {
    segments_.push_back(std::move(seg));
  } else {
    // Replacement: newest segment wins; the old bytes become dead space
    // (reclaimed by a future Create()-based rewrite).
    segments_[it->second] = std::move(seg);
  }
  return Status::OK();
}

void LogStoreWriter::SetPredictorState(std::string blob) {
  predictor_state_ = std::move(blob);
}

Status LogStoreWriter::Finish() {
  if (finished_) return Status::Internal("logstore writer already finished");
  finished_ = true;
  const uint64_t footer_offset = base_offset_ + new_bytes_.size();
  std::string footer = EncodeFooter(arrays_, segments_, predictor_state_);
  std::string trailer = EncodeTrailer(footer_offset, footer);

  if (!appending_) {
    std::string file;
    file.reserve(kHeaderSize + new_bytes_.size() + footer.size() +
                 trailer.size());
    file.append(kHeaderMagic, kHeaderSize);
    file.append(new_bytes_);
    file.append(footer);
    file.append(trailer);
    return WriteFileAtomic(path_, file);
  }

  std::fstream out(path_,
                   std::ios::in | std::ios::out | std::ios::binary);
  if (!out) return Status::IOError("cannot open for append: " + path_);
  out.seekp(static_cast<std::streamoff>(base_offset_));
  out.write(new_bytes_.data(),
            static_cast<std::streamsize>(new_bytes_.size()));
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  out.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  out.flush();
  if (!out) return Status::IOError("short append: " + path_);
  out.close();
  const uint64_t new_size = footer_offset + footer.size() + trailer.size();
  if (new_size < old_file_size_) {
    std::error_code ec;
    std::filesystem::resize_file(path_, new_size, ec);
    if (ec) return Status::IOError("truncate failed: " + path_);
  }
  return Status::OK();
}

}  // namespace dslog
