#include "storage/dslog.h"

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <set>

#include "common/hash.h"
#include "common/io.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "compress/varint.h"
#include "provrc/provrc.h"
#include "provrc/serialize.h"

namespace dslog {

namespace {

/// Everything a query hop must keep alive after the shard lock drops:
/// the edge's refcounted payloads plus (for lazy edges) the store's cache
/// pin and the store itself (a concurrent Load may drop the catalog's
/// reference mid-query).
struct HopPin {
  std::shared_ptr<const CompressedTable> table;
  std::shared_ptr<const ForwardTable> forward;
  std::shared_ptr<const void> store_pin;
  std::shared_ptr<const LogStore> store;
};

}  // namespace

void DSLog::InitShards() {
  const int n = std::max(1, options_.edge_shards);
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<EdgeShard>());
}

DSLog::EdgeShard& DSLog::ShardFor(const std::string& out_arr) const {
  return *shards_[Hash64(out_arr) % shards_.size()];
}

DSLog::DSLog(DSLog&& other) noexcept {
  std::unique_lock catalog_lock(other.catalog_mu_);
  std::vector<std::unique_lock<std::shared_mutex>> shard_locks;
  shard_locks.reserve(other.shards_.size());
  for (auto& shard : other.shards_) shard_locks.emplace_back(shard->mu);
  options_ = other.options_;
  arrays_ = std::move(other.arrays_);
  predictor_ = std::move(other.predictor_);
  store_ = std::move(other.store_);
  findedge_pins_ = std::move(other.findedge_pins_);
  shards_ = std::move(other.shards_);
  shard_locks.clear();  // release before other re-initializes
  catalog_lock.unlock();
  other.shards_.clear();
  other.InitShards();  // leave other valid (empty), as move-from promises
}

DSLog& DSLog::operator=(DSLog&& other) noexcept {
  if (this == &other) return *this;
  {
    std::scoped_lock catalog_locks(catalog_mu_, other.catalog_mu_);
    std::vector<std::unique_lock<std::shared_mutex>> shard_locks;
    shard_locks.reserve(shards_.size() + other.shards_.size());
    for (auto& shard : shards_) shard_locks.emplace_back(shard->mu);
    for (auto& shard : other.shards_) shard_locks.emplace_back(shard->mu);
    options_ = other.options_;
    arrays_ = std::move(other.arrays_);
    predictor_ = std::move(other.predictor_);
    store_ = std::move(other.store_);
    {
      std::scoped_lock pins(findedge_pins_mu_, other.findedge_pins_mu_);
      findedge_pins_ = std::move(other.findedge_pins_);
    }
    shards_.swap(other.shards_);
  }
  other.shards_.clear();
  other.InitShards();
  return *this;
}

Status DSLog::DefineArray(const std::string& name, std::vector<int64_t> shape) {
  if (name.empty()) return Status::InvalidArgument("array name empty");
  std::unique_lock lock(catalog_mu_);
  auto [it, inserted] = arrays_.try_emplace(name, std::move(shape));
  if (!inserted) return Status::AlreadyExists("array already defined: " + name);
  return Status::OK();
}

bool DSLog::HasArray(const std::string& name) const {
  std::shared_lock lock(catalog_mu_);
  return arrays_.count(name) > 0;
}

Result<std::vector<int64_t>> DSLog::ArrayShape(const std::string& name) const {
  std::shared_lock lock(catalog_mu_);
  auto it = arrays_.find(name);
  if (it == arrays_.end()) return Status::NotFound("array not defined: " + name);
  return it->second;
}

void DSLog::CommitEdges(std::vector<Edge> edges) {
  // Group by shard so each shard's writer lock is taken exactly once —
  // with ingest batches this is the only serialization point left, and
  // it is held just for map inserts (tables were compressed long before).
  std::sort(edges.begin(), edges.end(), [this](const Edge& a, const Edge& b) {
    return &ShardFor(a.out_arr) < &ShardFor(b.out_arr);
  });
  size_t i = 0;
  while (i < edges.size()) {
    EdgeShard& shard = ShardFor(edges[i].out_arr);
    size_t j = i;
    while (j < edges.size() && &ShardFor(edges[j].out_arr) == &shard) ++j;
    std::unique_lock lock(shard.mu);
    for (size_t k = i; k < j; ++k) {
      std::string key = EdgeKey(edges[k].in_arr, edges[k].out_arr);
      shard.edges[std::move(key)] = std::move(edges[k]);
    }
    i = j;
  }
}

Result<ReuseOutcome> DSLog::RegisterOperation(OperationRegistration reg) {
  if (!reg.captured.empty() && reg.captured.size() != reg.in_arrs.size())
    return Status::InvalidArgument("one captured relation per input required");
  // Fast-fail on unknown arrays before paying for compression. Advisory
  // only: a concurrent Load() can replace the catalog, so the same check is
  // repeated under the writer lock below.
  {
    std::shared_lock lock(catalog_mu_);
    if (arrays_.count(reg.out_arr) == 0)
      return Status::NotFound("output array not defined: " + reg.out_arr);
    for (const auto& in : reg.in_arrs)
      if (arrays_.count(in) == 0)
        return Status::NotFound("input array not defined: " + in);
  }

  // Compress the captured lineage — and materialize its forward
  // representation when configured — before taking any lock: these are the
  // expensive parts of ingest and touch no shared state, so concurrent
  // readers are only blocked for the catalog update.
  std::vector<CompressedTable> captured_tables;
  std::vector<std::shared_ptr<const ForwardTable>> captured_forward;
  captured_tables.reserve(reg.captured.size());
  for (const LineageRelation& rel : reg.captured) {
    captured_tables.push_back(ProvRcCompress(rel));
    if (options_.materialize_forward)
      captured_forward.push_back(std::make_shared<const ForwardTable>(
          ForwardTable::FromBackward(captured_tables.back())));
  }

  std::vector<CompressedTable> tables;
  std::vector<std::shared_ptr<const ForwardTable>> forward = captured_forward;
  ReuseOutcome outcome;
  {
    std::unique_lock lock(catalog_mu_);
    auto out_it = arrays_.find(reg.out_arr);
    if (out_it == arrays_.end())
      return Status::NotFound("output array not defined: " + reg.out_arr);
    std::vector<std::vector<int64_t>> in_shapes;
    for (const auto& in : reg.in_arrs) {
      auto in_it = arrays_.find(in);
      if (in_it == arrays_.end())
        return Status::NotFound("input array not defined: " + in);
      in_shapes.push_back(in_it->second);
    }
    const std::vector<int64_t>& out_shape = out_it->second;

    if (!reg.captured.empty()) {
      tables = std::move(captured_tables);
      if (reg.reuse) {
        outcome = predictor_.ProcessRegistration(
            reg.op_name, reg.args, in_shapes, out_shape, reg.content_hash,
            tables);
      }
    } else {
      if (!reg.reuse)
        return Status::InvalidArgument(
            "no capture provided and reuse disabled for " + reg.op_name);
      tables = predictor_.Predict(reg.op_name, reg.args, in_shapes, out_shape);
      if (tables.empty())
        return Status::NotFound("no promoted reuse mapping for " + reg.op_name);
      outcome.dim_hit = true;  // served from the reuse index
      if (options_.materialize_forward) {
        forward.clear();
        for (const CompressedTable& table : tables)
          forward.push_back(std::make_shared<const ForwardTable>(
              ForwardTable::FromBackward(table)));
      }
    }
  }  // catalog lock released: edge commit takes only the target shard.

  if (tables.size() != reg.in_arrs.size())
    return Status::Internal("table count mismatch");
  std::vector<Edge> edges;
  edges.reserve(reg.in_arrs.size());
  for (size_t i = 0; i < reg.in_arrs.size(); ++i) {
    Edge edge;
    edge.in_arr = reg.in_arrs[i];
    edge.out_arr = reg.out_arr;
    edge.op_name = reg.op_name;
    edge.table =
        std::make_shared<const CompressedTable>(std::move(tables[i]));
    if (options_.materialize_forward) edge.forward = std::move(forward[i]);
    edges.push_back(std::move(edge));
  }
  CommitEdges(std::move(edges));
  return outcome;
}

// ----------------------------------------------------------- staged ingest --

Status StagedIngest::Add(OperationRegistration reg) {
  if (reg.captured.empty())
    return Status::InvalidArgument(
        "StagedIngest requires captured lineage (predicted ingest reads the "
        "reuse index; use RegisterOperation): " +
        reg.op_name);
  if (reg.captured.size() != reg.in_arrs.size())
    return Status::InvalidArgument("one captured relation per input required");
  StagedOp op;
  op.tables.reserve(reg.captured.size());
  for (const LineageRelation& rel : reg.captured) {
    op.tables.push_back(ProvRcCompress(rel));
    if (log_->options_.materialize_forward)
      op.forward.push_back(std::make_shared<const ForwardTable>(
          ForwardTable::FromBackward(op.tables.back())));
  }
  reg.captured.clear();
  op.reg = std::move(reg);
  ops_.push_back(std::move(op));
  return Status::OK();
}

Result<std::vector<ReuseOutcome>> StagedIngest::Drain() {
  static metrics::Counter& drains =
      metrics::Registry::Global().counter("dslog.ingest.drains");
  static metrics::Counter& drained_ops =
      metrics::Registry::Global().counter("dslog.ingest.ops_drained");
  static metrics::Histogram& drain_us =
      metrics::Registry::Global().histogram("dslog.ingest.drain_us");
  trace::Span span("StagedIngest.Drain", "ingest");
  span.Arg("ops", staged());
  WallTimer timer;
  std::vector<ReuseOutcome> outcomes(ops_.size());
  {
    // One catalog-lock round trip for the whole batch: validate every
    // array, then run reuse bookkeeping for the ops that asked for it.
    // Validation completes before the first predictor mutation so an error
    // drain leaves the catalog untouched.
    std::unique_lock lock(log_->catalog_mu_);
    for (const StagedOp& op : ops_) {
      if (log_->arrays_.count(op.reg.out_arr) == 0)
        return Status::NotFound("output array not defined: " + op.reg.out_arr);
      for (const auto& in : op.reg.in_arrs)
        if (log_->arrays_.count(in) == 0)
          return Status::NotFound("input array not defined: " + in);
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      StagedOp& op = ops_[i];
      if (!op.reg.reuse) continue;
      std::vector<std::vector<int64_t>> in_shapes;
      for (const auto& in : op.reg.in_arrs)
        in_shapes.push_back(log_->arrays_.at(in));
      outcomes[i] = log_->predictor_.ProcessRegistration(
          op.reg.op_name, op.reg.args, in_shapes,
          log_->arrays_.at(op.reg.out_arr), op.reg.content_hash, op.tables);
    }
  }

  std::vector<DSLog::Edge> edges;
  for (StagedOp& op : ops_) {
    for (size_t i = 0; i < op.reg.in_arrs.size(); ++i) {
      DSLog::Edge edge;
      edge.in_arr = op.reg.in_arrs[i];
      edge.out_arr = op.reg.out_arr;
      edge.op_name = op.reg.op_name;
      edge.table =
          std::make_shared<const CompressedTable>(std::move(op.tables[i]));
      if (i < op.forward.size()) edge.forward = std::move(op.forward[i]);
      edges.push_back(std::move(edge));
    }
  }
  drained_ops.Add(static_cast<int64_t>(ops_.size()));
  log_->CommitEdges(std::move(edges));
  ops_.clear();
  drains.Increment();
  drain_us.Record(static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
  return outcomes;
}

// ----------------------------------------------------------------- queries --

Result<bool> DSLog::FindEdgeCopy(const std::string& in_arr,
                                 const std::string& out_arr,
                                 const LogStore* store, Edge* out) const {
  {
    EdgeShard& shard = ShardFor(out_arr);
    std::shared_lock lock(shard.mu);
    auto it = shard.edges.find(EdgeKey(in_arr, out_arr));
    if (it != shard.edges.end()) {
      *out = it->second;  // string + shared_ptr copies only
      return true;
    }
  }
  // Shard miss: probe the store's segment index (the v4 perfect-hash index
  // is O(1) and touches no segment bytes; v1–v3 files build their name map
  // on first probe). Mapped edges are never materialized into the shards,
  // so this is the common path for an in-situ catalog.
  if (store == nullptr) return false;
  DSLOG_ASSIGN_OR_RETURN(int64_t segment,
                         store->FindSegmentId(in_arr, out_arr));
  if (segment < 0) return false;
  const LogStore::SegmentInfo seg =
      store->segment_info(static_cast<size_t>(segment));
  out->in_arr = seg.in_arr;
  out->out_arr = seg.out_arr;
  out->op_name = seg.op_name;
  out->table = nullptr;
  out->forward = nullptr;
  out->segment = static_cast<int32_t>(segment);
  return true;
}

Result<LogStore::PinnedTable> DSLog::ResolveEdgeView(
    const Edge& edge, const LogStore* store, LogStore::ViewEvent* ev) const {
  if (edge.segment < 0) {
    // Resident edge: view the pinned table's arenas. The pin carries the
    // lazily-built index so eviction semantics match lazy edges.
    LogStore::PinnedTable pinned;
    pinned.view = edge.table->view();
    auto index = edge.table->BackwardIndex();
    pinned.index = index.get();
    pinned.pin = std::move(index);
    return pinned;
  }
  if (store == nullptr)
    return Status::Internal("lazy edge without a backing store: " +
                            edge.in_arr + " -> " + edge.out_arr);
  return store->View(static_cast<size_t>(edge.segment), ev);
}

const CompressedTable* DSLog::FindEdge(const std::string& in_arr,
                                       const std::string& out_arr) const {
  std::shared_ptr<const LogStore> store = log_store();
  Edge edge;
  auto found = FindEdgeCopy(in_arr, out_arr, store.get(), &edge);
  if (!found.ok() || !found.value()) return nullptr;
  const std::string key = EdgeKey(in_arr, out_arr);
  {
    std::lock_guard<std::mutex> pins_lock(findedge_pins_mu_);
    auto pin_it = findedge_pins_.find(key);
    if (pin_it != findedge_pins_.end()) return pin_it->second.get();
  }
  std::shared_ptr<const CompressedTable> table;
  if (edge.segment < 0) {
    table = edge.table;
  } else {
    if (store == nullptr) return nullptr;
    auto materialized = store->Table(static_cast<size_t>(edge.segment));
    if (!materialized.ok()) return nullptr;
    table = std::move(materialized).ValueOrDie();
  }
  std::lock_guard<std::mutex> pins_lock(findedge_pins_mu_);
  return findedge_pins_.emplace(key, std::move(table)).first->second.get();
}

Result<BoxTable> DSLog::ProvQuery(const std::vector<std::string>& path,
                                  const BoxTable& query,
                                  const QueryOptions& options,
                                  QueryProfile* profile) const {
  if (path.size() < 2)
    return Status::InvalidArgument("query path needs >= 2 arrays");
  const bool prof = options.profile && profile != nullptr;
  if (prof) profile->hops.clear();
  // One brief catalog-lock acquisition to pin the backing store for the
  // query's duration; every hop after this touches only its own shard.
  std::shared_ptr<const LogStore> store = log_store();
  std::vector<QueryHop> hops;
  for (size_t k = 0; k + 1 < path.size(); ++k) {
    // Cancellation boundary: poll before paying for this hop's edge lookup,
    // segment resolve, and index build. Already-built hops' pins release on
    // return (the hops vector destructs here).
    if (options.cancel != nullptr && options.cancel->ShouldStop())
      return Status::Cancelled("query cancelled before hop " +
                               std::to_string(k));
    Edge edge;
    bool forward;
    // Forward hop: path[k] is the relation's input array; backward hop:
    // path[k] is its output array. Each lookup copies the edge out under
    // its shard's reader lock — the lock is dropped before any decode or
    // index build (the "shard lock never held across decode" contract) —
    // then falls back to the pinned store's segment index.
    DSLOG_ASSIGN_OR_RETURN(
        bool fwd, FindEdgeCopy(path[k], path[k + 1], store.get(), &edge));
    if (fwd) {
      forward = true;
    } else {
      DSLOG_ASSIGN_OR_RETURN(
          bool bwd, FindEdgeCopy(path[k + 1], path[k], store.get(), &edge));
      if (!bwd)
        return Status::NotFound("no lineage between " + path[k] + " and " +
                                path[k + 1]);
      forward = false;
    }
    LogStore::ViewEvent ev;
    DSLOG_ASSIGN_OR_RETURN(
        auto pinned, ResolveEdgeView(edge, store.get(), prof ? &ev : nullptr));
    if (prof) {
      // Pre-fill this hop's edge identity + segment-resolution fields;
      // InSituQuery keeps them and adds the join-execution fields.
      HopProfile hp;
      hp.in_arr = edge.in_arr;
      hp.out_arr = edge.out_arr;
      hp.op_name = edge.op_name;
      hp.from_store = edge.segment >= 0;
      hp.cache_hit = ev.cache_hit;
      hp.borrowed = ev.borrowed;
      hp.segment_bytes = ev.segment_bytes;
      hp.bytes_decompressed = ev.bytes_decompressed;
      hp.rows_materialized = ev.rows_materialized;
      hp.resolve_us = ev.resolve_us;
      profile->hops.push_back(std::move(hp));
    }
    QueryHop hop;
    hop.table = pinned.view;
    hop.forward = forward;
    if (forward) hop.forward_table = edge.forward.get();
    hop.index = pinned.index;
    // Planner stats from the segment's footer entry, for backward hops
    // only (a forward hop probes a per-call derived column, not out-attr
    // 0). Read id-addressed so a v4 store never materializes its segment
    // vector on the query path; pre-v3 stores yield the default-invalid
    // stats and the joins fall back to the hop index's exact stats.
    if (!forward && edge.segment >= 0 && store != nullptr)
      hop.stats =
          store->segment_out0_stats(static_cast<size_t>(edge.segment));
    auto pin = std::make_shared<HopPin>();
    pin->table = std::move(edge.table);
    pin->forward = std::move(edge.forward);
    pin->store_pin = std::move(pinned.pin);
    if (edge.segment >= 0) pin->store = store;
    hop.pin = std::move(pin);
    hops.push_back(std::move(hop));
  }
  BoxTable result = InSituQuery(hops, query, options, prof ? profile : nullptr);
  // A token armed mid-execution made InSituQuery bail between hops with an
  // empty table; surface that as a typed status rather than an (incorrect)
  // empty answer. Pins release with `hops` on return either way.
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    static metrics::Counter& cancelled =
        metrics::Registry::Global().counter("dslog.query.cancelled");
    cancelled.Increment();
    return Status::Cancelled("query cancelled between hops");
  }
  return result;
}

Result<std::vector<BoxTable>> DSLog::ProvQueryBatch(
    const std::vector<std::vector<std::string>>& paths,
    const std::vector<BoxTable>& queries, const QueryOptions& options,
    std::vector<QueryProfile>* profiles) const {
  if (paths.size() != queries.size())
    return Status::InvalidArgument(
        "ProvQueryBatch: paths/queries size mismatch (" +
        std::to_string(paths.size()) + " vs " +
        std::to_string(queries.size()) + ")");
  const int64_t n = static_cast<int64_t>(paths.size());
  if (n == 0) return std::vector<BoxTable>{};

  const int num_threads = std::max(1, options.num_threads);
  QueryOptions per_query = options;
  // Batch-level parallelism first: with enough entries to occupy every
  // thread, each query's joins run single-threaded. For smaller batches the
  // entries still fan out (n-way), and the leftover threads additionally
  // serve the caller-executed entries' partitioned joins; entries that land
  // on pool workers keep single-threaded joins, since the fixed pool cannot
  // be re-entered (a nested ParallelFor from a worker runs inline).
  if (n >= num_threads) per_query.num_threads = 1;

  const bool prof = options.profile && profiles != nullptr;
  if (prof) {
    profiles->clear();
    profiles->resize(paths.size());
  }
  std::vector<BoxTable> results(paths.size());
  std::vector<Status> statuses(paths.size(), Status::OK());
  ThreadPool::Shared().ParallelFor(
      n,
      [&](int64_t i) {
        const size_t idx = static_cast<size_t>(i);
        // Entries lock nothing beyond per-hop shard reads, so concurrent
        // writers make progress throughout a long batch. Each profiled
        // entry writes only its own pre-sized slot.
        auto r = ProvQuery(paths[idx], queries[idx], per_query,
                           prof ? &(*profiles)[idx] : nullptr);
        if (r.ok())
          results[idx] = std::move(r).value();
        else
          statuses[idx] = r.status();
      },
      num_threads);

  for (size_t i = 0; i < statuses.size(); ++i)
    if (!statuses[i].ok())
      return statuses[i].WithMessagePrefix("batch entry " +
                                           std::to_string(i) + ": ");
  return results;
}

// --------------------------------------------------------------- snapshots --

std::map<std::string, DSLog::Edge> DSLog::SnapshotEdges() const {
  std::map<std::string, Edge> all;
  // Mapped edges first: the store's segments are immutable, so enumerating
  // them takes no lock. Resident edges overwrite same-key entries below —
  // a re-registered edge shadows the stale persisted segment.
  if (std::shared_ptr<const LogStore> store = log_store()) {
    for (size_t i = 0; i < store->segment_count(); ++i) {
      const LogStore::SegmentInfo seg = store->segment_info(i);
      Edge edge;
      edge.in_arr = seg.in_arr;
      edge.out_arr = seg.out_arr;
      edge.op_name = seg.op_name;
      edge.segment = static_cast<int32_t>(i);
      all[EdgeKey(seg.in_arr, seg.out_arr)] = std::move(edge);
    }
  }
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& [key, edge] : shard->edges) all[key] = edge;
  }
  return all;
}

int64_t DSLog::StorageFootprintBytes() const {
  std::map<std::string, Edge> edges = SnapshotEdges();
  std::shared_ptr<const LogStore> store = log_store();
  int64_t total = 0;
  for (const auto& [key, edge] : edges) {
    if (edge.segment >= 0)
      total += store->segment_length(static_cast<size_t>(edge.segment));
    else
      total += static_cast<int64_t>(
          SerializeCompressedTableGzip(*edge.table).size());
  }
  return total;
}

ReuseStats DSLog::reuse_stats() const {
  std::shared_lock lock(catalog_mu_);
  return predictor_.stats();
}

namespace {

/// One edge's bytes ready for a LogStoreWriter: resident tables serialize
/// in the caller's preferred layout; in-situ segments are shuttled raw
/// (whatever layout they already have), no decode/re-encode.
struct EdgeSegmentBytes {
  std::string bytes;
  SegmentLayout layout = SegmentLayout::kProvRcGzip;
  int64_t row_count = -1;
  IntervalColumnStats out0_stats;  // planner stats; invalid when unknown
};

EdgeSegmentBytes SerializedEdgeSegment(const LogStore* store, int32_t segment,
                                       const CompressedTable* table,
                                       SegmentLayout preferred) {
  if (segment >= 0) {
    const LogStore::SegmentInfo seg =
        store->segment_info(static_cast<size_t>(segment));
    return {std::string(store->SegmentView(static_cast<size_t>(segment))),
            seg.layout, seg.row_count, seg.out0_stats};
  }
  if (preferred == SegmentLayout::kColumnar)
    return {SerializeCompressedTableColumnar(*table), SegmentLayout::kColumnar,
            table->num_rows(), ComputeOut0Stats(*table)};
  return {SerializeCompressedTableGzip(*table), SegmentLayout::kProvRcGzip,
          table->num_rows(), ComputeOut0Stats(*table)};
}

/// ProvRC-GZip bytes of an edge for the legacy directory format, which
/// knows no other encoding: v1 in-situ segments copy straight out of the
/// mapping; columnar ones transcode through an owned table.
Result<std::string> GzipEdgeBytes(const LogStore* store, int32_t segment,
                                  const CompressedTable* table) {
  if (segment < 0) return SerializeCompressedTableGzip(*table);
  const LogStore::SegmentInfo seg =
      store->segment_info(static_cast<size_t>(segment));
  std::string_view raw = store->SegmentView(static_cast<size_t>(segment));
  if (seg.layout == SegmentLayout::kProvRcGzip) return std::string(raw);
  DSLOG_ASSIGN_OR_RETURN(CompressedTable owned,
                         DeserializeCompressedTableColumnar(raw));
  return SerializeCompressedTableGzip(owned);
}

constexpr char kPredictorFile[] = "predictor.bin";

}  // namespace

Status DSLog::Save(const std::string& dir) const {
  // Point-in-time snapshots, edges first: arrays are add-only (outside
  // Load), so every snapshotted edge's arrays are present in the array
  // snapshot taken after it.
  std::map<std::string, Edge> edges = SnapshotEdges();
  std::shared_ptr<const LogStore> store = log_store();
  std::map<std::string, std::vector<int64_t>> arrays;
  std::string predictor_state;
  {
    std::shared_lock lock(catalog_mu_);
    arrays = arrays_;
    predictor_state = predictor_.SerializeState();
  }

  DSLOG_RETURN_IF_ERROR(CreateDirs(dir));
  // Catalog file: arrays and edge index.
  std::string catalog;
  PutVarint64(&catalog, arrays.size());
  for (const auto& [name, shape] : arrays) {
    PutVarint64(&catalog, name.size());
    catalog += name;
    PutVarint64(&catalog, shape.size());
    for (int64_t d : shape) PutVarint64(&catalog, static_cast<uint64_t>(d));
  }
  PutVarint64(&catalog, edges.size());
  std::set<std::string> referenced;
  for (const auto& [key, edge] : edges) {
    PutVarint64(&catalog, edge.in_arr.size());
    catalog += edge.in_arr;
    PutVarint64(&catalog, edge.out_arr.size());
    catalog += edge.out_arr;
    PutVarint64(&catalog, edge.op_name.size());
    catalog += edge.op_name;
    // File names are content-addressed: an updated edge lands in a *new*
    // file while the file the previous catalog.bin references keeps its
    // bytes, so a crash anywhere mid-save restores the previous catalog
    // exactly (never a rebound or updated table). Identical tables dedup
    // to one file as a side effect.
    DSLOG_ASSIGN_OR_RETURN(
        std::string bytes,
        GzipEdgeBytes(store.get(), edge.segment, edge.table.get()));
    std::string file = Format(
        "edge_%016llx.prc", static_cast<unsigned long long>(Hash64(bytes)));
    referenced.insert(file);
    PutVarint64(&catalog, file.size());
    catalog += file;
    DSLOG_RETURN_IF_ERROR(WriteFileAtomic(dir + "/" + file, bytes));
  }
  DSLOG_RETURN_IF_ERROR(
      WriteFileAtomic(dir + "/" + kPredictorFile, predictor_state));
  // The catalog commits last: a crash before this point leaves the previous
  // catalog.bin (if any) intact and loadable.
  DSLOG_RETURN_IF_ERROR(WriteFileAtomic(dir + "/catalog.bin", catalog));
  // Only after the commit: garbage-collect edge files no catalog references
  // (leftovers of earlier saves of a catalog that since dropped or renamed
  // edges). A crash here merely leaves unreferenced files for next time.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.starts_with("edge_") && name.ends_with(".prc") &&
        referenced.count(name) == 0)
      (void)RemoveFileIfExists(entry.path().string());
  }
  return Status::OK();
}

namespace {

/// One edge entry of a legacy catalog.bin: names plus the blob file name.
struct LegacyEdgeRef {
  std::string in_arr;
  std::string out_arr;
  std::string op_name;
  std::string file;
};

Status ParseLegacyCatalog(const std::string& catalog,
                          std::map<std::string, std::vector<int64_t>>* arrays,
                          std::vector<LegacyEdgeRef>* edges) {
  size_t pos = 0;
  auto read_string = [&](std::string* out) {
    uint64_t n;
    if (!GetVarint64(catalog, &pos, &n)) return false;
    if (pos + n > catalog.size()) return false;
    *out = catalog.substr(pos, n);
    pos += n;
    return true;
  };
  uint64_t num_arrays;
  if (!GetVarint64(catalog, &pos, &num_arrays))
    return Status::Corruption("catalog: array count");
  for (uint64_t i = 0; i < num_arrays; ++i) {
    std::string name;
    if (!read_string(&name)) return Status::Corruption("catalog: array name");
    uint64_t nd;
    if (!GetVarint64(catalog, &pos, &nd))
      return Status::Corruption("catalog: ndim");
    std::vector<int64_t> shape(nd);
    for (auto& d : shape) {
      uint64_t v;
      if (!GetVarint64(catalog, &pos, &v))
        return Status::Corruption("catalog: shape");
      d = static_cast<int64_t>(v);
    }
    (*arrays)[name] = std::move(shape);
  }
  uint64_t num_edges;
  if (!GetVarint64(catalog, &pos, &num_edges))
    return Status::Corruption("catalog: edge count");
  for (uint64_t i = 0; i < num_edges; ++i) {
    LegacyEdgeRef edge;
    if (!read_string(&edge.in_arr) || !read_string(&edge.out_arr) ||
        !read_string(&edge.op_name) || !read_string(&edge.file))
      return Status::Corruption("catalog: edge entry");
    edges->push_back(std::move(edge));
  }
  return Status::OK();
}

}  // namespace

Status DSLog::Load(const std::string& dir) {
  DSLOG_ASSIGN_OR_RETURN(std::string catalog,
                         ReadFileToString(dir + "/catalog.bin"));
  std::map<std::string, std::vector<int64_t>> arrays;
  std::vector<LegacyEdgeRef> refs;
  DSLOG_RETURN_IF_ERROR(ParseLegacyCatalog(catalog, &arrays, &refs));

  std::map<std::string, Edge> edges;
  for (const LegacyEdgeRef& ref : refs) {
    Edge edge;
    edge.in_arr = ref.in_arr;
    edge.out_arr = ref.out_arr;
    edge.op_name = ref.op_name;
    DSLOG_ASSIGN_OR_RETURN(std::string data,
                           ReadFileToString(dir + "/" + ref.file));
    DSLOG_ASSIGN_OR_RETURN(CompressedTable table,
                           DeserializeCompressedTableGzip(data));
    edge.table = std::make_shared<const CompressedTable>(std::move(table));
    edges[EdgeKey(edge.in_arr, edge.out_arr)] = std::move(edge);
  }

  // Reuse-predictor state rides in a sibling file; directories written
  // before predictor persistence simply reset the predictor.
  ReusePredictor predictor;
  auto predictor_blob = ReadFileToString(dir + "/" + kPredictorFile);
  if (predictor_blob.ok())
    DSLOG_RETURN_IF_ERROR(predictor.RestoreState(predictor_blob.value()));

  // Whole-catalog barrier: catalog lock then every shard, in the fixed
  // global order, so readers see either the old catalog or the new one.
  std::unique_lock lock(catalog_mu_);
  std::vector<std::unique_lock<std::shared_mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (auto& shard : shards_) shard_locks.emplace_back(shard->mu);
  arrays_ = std::move(arrays);
  predictor_ = std::move(predictor);
  store_.reset();
  for (auto& shard : shards_) shard->edges.clear();
  for (auto& [key, edge] : edges) {
    EdgeShard& shard = ShardFor(edge.out_arr);
    shard.edges[key] = std::move(edge);
  }
  return Status::OK();
}

// ------------------------------------------------- single-file LogStore --

Result<DSLog> DSLog::OpenInSitu(const std::string& path,
                                const InSituOptions& options) {
  DSLOG_ASSIGN_OR_RETURN(std::unique_ptr<LogStore> store,
                         LogStore::Open(path, options.store));
  DSLog log(options.catalog);
  log.arrays_ = store->arrays();
  // No per-edge state is built here: lookups resolve through the store's
  // segment index (FindEdgeCopy's fallback), so open cost is the footer
  // parse + index bind, independent of the number of stored edges.
  if (!store->predictor_state().empty())
    DSLOG_RETURN_IF_ERROR(
        log.predictor_.RestoreState(store->predictor_state()));
  log.store_ = std::move(store);
  return log;
}

Status DSLog::SaveLogStore(const std::string& path, SegmentLayout layout,
                           const LogStoreWriterOptions& writer_options) const {
  std::map<std::string, Edge> edges = SnapshotEdges();
  std::shared_ptr<const LogStore> store = log_store();
  DSLOG_ASSIGN_OR_RETURN(LogStoreWriter writer,
                         LogStoreWriter::Create(path, writer_options));
  {
    std::shared_lock lock(catalog_mu_);
    for (const auto& [name, shape] : arrays_) writer.PutArray(name, shape);
    writer.SetPredictorState(predictor_.SerializeState());
  }
  for (const auto& [key, edge] : edges) {
    EdgeSegmentBytes seg = SerializedEdgeSegment(store.get(), edge.segment,
                                                 edge.table.get(), layout);
    DSLOG_RETURN_IF_ERROR(
        writer.AppendRawSegment(edge.in_arr, edge.out_arr, edge.op_name,
                                seg.bytes, seg.layout, seg.row_count,
                                seg.out0_stats));
  }
  return writer.Finish();
}

Status DSLog::AppendLogStore(
    const std::string& path, SegmentLayout layout,
    const LogStoreWriterOptions& writer_options) const {
  std::map<std::string, Edge> edges = SnapshotEdges();
  std::shared_ptr<const LogStore> store = log_store();
  DSLOG_ASSIGN_OR_RETURN(LogStoreWriter writer,
                         LogStoreWriter::OpenForAppend(path, writer_options));
  {
    std::shared_lock lock(catalog_mu_);
    for (const auto& [name, shape] : arrays_) writer.PutArray(name, shape);
    writer.SetPredictorState(predictor_.SerializeState());
  }
  for (const auto& [key, edge] : edges) {
    // Skip only byte-identical segments: a re-registered edge whose
    // lineage changed must be re-persisted, not silently kept stale. The
    // comparison serializes in the *existing* segment's layout so an
    // unchanged edge is never rewritten just because the preferred layout
    // differs (appends extend mixed-version stores, they don't migrate
    // them — use SaveLogStore for a full rewrite).
    const LogStore::SegmentInfo* existing =
        writer.FindSegment(edge.in_arr, edge.out_arr);
    EdgeSegmentBytes seg;
    bool have_bytes = false;
    if (existing != nullptr) {
      EdgeSegmentBytes probe = SerializedEdgeSegment(
          store.get(), edge.segment, edge.table.get(), existing->layout);
      if (probe.layout == existing->layout &&
          existing->length == probe.bytes.size() &&
          existing->checksum == Hash64(probe.bytes))
        continue;
      // Changed edge: reuse the probe bytes when they are already in the
      // layout we would write, instead of serializing twice.
      if (probe.layout == layout) {
        seg = std::move(probe);
        have_bytes = true;
      }
    }
    if (!have_bytes)
      seg = SerializedEdgeSegment(store.get(), edge.segment, edge.table.get(),
                                  layout);
    DSLOG_RETURN_IF_ERROR(
        writer.AppendRawSegment(edge.in_arr, edge.out_arr, edge.op_name,
                                seg.bytes, seg.layout, seg.row_count,
                                seg.out0_stats));
  }
  return writer.Finish();
}

std::shared_ptr<const LogStore> DSLog::log_store() const {
  std::shared_lock lock(catalog_mu_);
  return store_;
}

Status ConvertLegacyDirToLogStore(const std::string& dir,
                                  const std::string& path) {
  DSLOG_ASSIGN_OR_RETURN(std::string catalog,
                         ReadFileToString(dir + "/catalog.bin"));
  std::map<std::string, std::vector<int64_t>> arrays;
  std::vector<LegacyEdgeRef> refs;
  DSLOG_RETURN_IF_ERROR(ParseLegacyCatalog(catalog, &arrays, &refs));
  DSLOG_ASSIGN_OR_RETURN(LogStoreWriter writer, LogStoreWriter::Create(path));
  for (const auto& [name, shape] : arrays) writer.PutArray(name, shape);
  for (const LegacyEdgeRef& ref : refs) {
    // Legacy edge blobs are already ProvRC-GZip — shuttle the bytes as-is.
    DSLOG_ASSIGN_OR_RETURN(std::string data,
                           ReadFileToString(dir + "/" + ref.file));
    DSLOG_RETURN_IF_ERROR(
        writer.AppendRawSegment(ref.in_arr, ref.out_arr, ref.op_name, data));
  }
  auto predictor_blob = ReadFileToString(dir + "/" + kPredictorFile);
  if (predictor_blob.ok())
    writer.SetPredictorState(std::move(predictor_blob).ValueOrDie());
  return writer.Finish();
}

}  // namespace dslog
