#include "storage/dslog.h"

#include <filesystem>

#include "common/io.h"
#include "common/strings.h"
#include "compress/varint.h"
#include "provrc/provrc.h"
#include "provrc/serialize.h"

namespace dslog {

Status DSLog::DefineArray(const std::string& name, std::vector<int64_t> shape) {
  if (name.empty()) return Status::InvalidArgument("array name empty");
  auto [it, inserted] = arrays_.try_emplace(name, std::move(shape));
  if (!inserted) return Status::AlreadyExists("array already defined: " + name);
  return Status::OK();
}

bool DSLog::HasArray(const std::string& name) const {
  return arrays_.count(name) > 0;
}

Result<std::vector<int64_t>> DSLog::ArrayShape(const std::string& name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) return Status::NotFound("array not defined: " + name);
  return it->second;
}

Result<ReuseOutcome> DSLog::RegisterOperation(OperationRegistration reg) {
  if (!HasArray(reg.out_arr))
    return Status::NotFound("output array not defined: " + reg.out_arr);
  for (const auto& in : reg.in_arrs)
    if (!HasArray(in)) return Status::NotFound("input array not defined: " + in);

  std::vector<std::vector<int64_t>> in_shapes;
  for (const auto& in : reg.in_arrs) in_shapes.push_back(arrays_.at(in));
  const std::vector<int64_t>& out_shape = arrays_.at(reg.out_arr);

  std::vector<CompressedTable> tables;
  ReuseOutcome outcome;
  if (!reg.captured.empty()) {
    if (reg.captured.size() != reg.in_arrs.size())
      return Status::InvalidArgument("one captured relation per input required");
    for (const LineageRelation& rel : reg.captured)
      tables.push_back(ProvRcCompress(rel));
    if (reg.reuse) {
      outcome = predictor_.ProcessRegistration(reg.op_name, reg.args, in_shapes,
                                               out_shape, reg.content_hash,
                                               tables);
    }
  } else {
    if (!reg.reuse)
      return Status::InvalidArgument(
          "no capture provided and reuse disabled for " + reg.op_name);
    tables = predictor_.Predict(reg.op_name, reg.args, in_shapes, out_shape);
    if (tables.empty())
      return Status::NotFound("no promoted reuse mapping for " + reg.op_name);
    outcome.dim_hit = true;  // served from the reuse index
  }

  if (tables.size() != reg.in_arrs.size())
    return Status::Internal("table count mismatch");
  for (size_t i = 0; i < reg.in_arrs.size(); ++i) {
    Edge edge;
    edge.in_arr = reg.in_arrs[i];
    edge.out_arr = reg.out_arr;
    edge.op_name = reg.op_name;
    edge.table = std::move(tables[i]);
    if (options_.materialize_forward)
      edge.forward = std::make_shared<const ForwardTable>(
          ForwardTable::FromBackward(edge.table));
    edges_[EdgeKey(reg.in_arrs[i], reg.out_arr)] = std::move(edge);
  }
  return outcome;
}

const CompressedTable* DSLog::FindEdge(const std::string& in_arr,
                                       const std::string& out_arr) const {
  auto it = edges_.find(EdgeKey(in_arr, out_arr));
  return it == edges_.end() ? nullptr : &it->second.table;
}

Result<BoxTable> DSLog::ProvQuery(const std::vector<std::string>& path,
                                  const BoxTable& query,
                                  const QueryOptions& options) const {
  if (path.size() < 2)
    return Status::InvalidArgument("query path needs >= 2 arrays");
  std::vector<QueryHop> hops;
  for (size_t k = 0; k + 1 < path.size(); ++k) {
    // Forward hop: path[k] is the relation's input array.
    auto fwd_it = edges_.find(EdgeKey(path[k], path[k + 1]));
    if (fwd_it != edges_.end()) {
      hops.push_back({&fwd_it->second.table, /*forward=*/true,
                      fwd_it->second.forward.get()});
      continue;
    }
    // Backward hop: path[k] is the relation's output array.
    const CompressedTable* bwd = FindEdge(path[k + 1], path[k]);
    if (bwd != nullptr) {
      hops.push_back({bwd, /*forward=*/false, nullptr});
      continue;
    }
    return Status::NotFound("no lineage between " + path[k] + " and " +
                            path[k + 1]);
  }
  return InSituQuery(hops, query, options);
}

int64_t DSLog::StorageFootprintBytes() const {
  int64_t total = 0;
  for (const auto& [key, edge] : edges_)
    total += static_cast<int64_t>(SerializeCompressedTableGzip(edge.table).size());
  return total;
}

Status DSLog::Save(const std::string& dir) const {
  DSLOG_RETURN_IF_ERROR(CreateDirs(dir));
  // Catalog file: arrays and edge index.
  std::string catalog;
  PutVarint64(&catalog, arrays_.size());
  for (const auto& [name, shape] : arrays_) {
    PutVarint64(&catalog, name.size());
    catalog += name;
    PutVarint64(&catalog, shape.size());
    for (int64_t d : shape) PutVarint64(&catalog, static_cast<uint64_t>(d));
  }
  PutVarint64(&catalog, edges_.size());
  int file_id = 0;
  for (const auto& [key, edge] : edges_) {
    PutVarint64(&catalog, edge.in_arr.size());
    catalog += edge.in_arr;
    PutVarint64(&catalog, edge.out_arr.size());
    catalog += edge.out_arr;
    PutVarint64(&catalog, edge.op_name.size());
    catalog += edge.op_name;
    std::string file = Format("edge_%04d.prc", file_id++);
    PutVarint64(&catalog, file.size());
    catalog += file;
    DSLOG_RETURN_IF_ERROR(WriteFile(
        dir + "/" + file, SerializeCompressedTableGzip(edge.table)));
  }
  return WriteFile(dir + "/catalog.bin", catalog);
}

Status DSLog::Load(const std::string& dir) {
  DSLOG_ASSIGN_OR_RETURN(std::string catalog,
                         ReadFileToString(dir + "/catalog.bin"));
  arrays_.clear();
  edges_.clear();
  size_t pos = 0;
  auto read_string = [&](std::string* out) {
    uint64_t n;
    if (!GetVarint64(catalog, &pos, &n)) return false;
    if (pos + n > catalog.size()) return false;
    *out = catalog.substr(pos, n);
    pos += n;
    return true;
  };
  uint64_t num_arrays;
  if (!GetVarint64(catalog, &pos, &num_arrays))
    return Status::Corruption("catalog: array count");
  for (uint64_t i = 0; i < num_arrays; ++i) {
    std::string name;
    if (!read_string(&name)) return Status::Corruption("catalog: array name");
    uint64_t nd;
    if (!GetVarint64(catalog, &pos, &nd))
      return Status::Corruption("catalog: ndim");
    std::vector<int64_t> shape(nd);
    for (auto& d : shape) {
      uint64_t v;
      if (!GetVarint64(catalog, &pos, &v))
        return Status::Corruption("catalog: shape");
      d = static_cast<int64_t>(v);
    }
    arrays_[name] = std::move(shape);
  }
  uint64_t num_edges;
  if (!GetVarint64(catalog, &pos, &num_edges))
    return Status::Corruption("catalog: edge count");
  for (uint64_t i = 0; i < num_edges; ++i) {
    Edge edge;
    std::string file;
    if (!read_string(&edge.in_arr) || !read_string(&edge.out_arr) ||
        !read_string(&edge.op_name) || !read_string(&file))
      return Status::Corruption("catalog: edge entry");
    DSLOG_ASSIGN_OR_RETURN(std::string data, ReadFileToString(dir + "/" + file));
    DSLOG_ASSIGN_OR_RETURN(edge.table, DeserializeCompressedTableGzip(data));
    std::string key = EdgeKey(edge.in_arr, edge.out_arr);
    edges_[key] = std::move(edge);
  }
  return Status::OK();
}

}  // namespace dslog
