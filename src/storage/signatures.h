// Operation signatures and automatic reuse prediction (ICDE'24 §VI):
// base_sig (exact input arrays), dim_sig (input shapes only), and gen_sig
// (shape-independent via index reshaping), with the m = 1 promotion
// heuristic of §VI.C.

#ifndef DSLOG_STORAGE_SIGNATURES_H_
#define DSLOG_STORAGE_SIGNATURES_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "array/op.h"
#include "common/phf.h"
#include "common/status.h"
#include "provrc/compressed_table.h"
#include "provrc/reshape.h"

namespace dslog {

/// Reuse bookkeeping counters (reported by Table IX's bench).
struct ReuseStats {
  int64_t base_hits = 0;
  int64_t dim_hits = 0;
  int64_t gen_hits = 0;
  int64_t dim_promotions = 0;
  int64_t gen_promotions = 0;
  int64_t dim_rejections = 0;
  int64_t gen_rejections = 0;
  /// Promoted mappings later observed to disagree with captured lineage
  /// (mispredictions — the `cross` failure mode).
  int64_t mispredictions = 0;
};

/// What the predictor decided for one registration.
struct ReuseOutcome {
  bool base_hit = false;
  bool dim_hit = false;   // lineage served from a promoted dim_sig mapping
  bool gen_hit = false;   // lineage served from a promoted gen_sig mapping
};

/// Signature-keyed store of compressed lineage tables with automatic reuse
/// prediction. One instance per DSLog catalog; Predict and
/// ProcessRegistration are always called under the catalog's exclusive
/// lock, so the predictor itself takes none.
///
/// Promoted dim/gen signatures can additionally be *sealed*: a perfect
/// hash (common/phf.h) over the promoted keys' 64-bit hashes, built
/// when state is restored from a persisted blob (or carried inside the blob
/// itself). A sealed Predict never materializes a key string — it streams
/// the key bytes through the hash and probes the PHF, so a lookup (hit or
/// miss) is O(key length) with zero allocation. The first
/// promotion-state change after sealing drops back to the ordinary map
/// index. Movable, not copyable (the sealed indexes hold pointers into the
/// signature maps).
class ReusePredictor {
 public:
  ReusePredictor() = default;
  ReusePredictor(ReusePredictor&&) = default;
  ReusePredictor& operator=(ReusePredictor&&) = default;
  ReusePredictor(const ReusePredictor&) = delete;
  ReusePredictor& operator=(const ReusePredictor&) = delete;

  /// Processes a registration of `op_name(args)` whose captured, compressed
  /// lineage tables (one per input array) are `tables`. `in_shapes` are
  /// the input array shapes; `content_hash` identifies exact input content
  /// (base_sig). Verifies/promotes tentative mappings (m = 1) and reports
  /// whether this call could have been served without capture.
  ReuseOutcome ProcessRegistration(
      const std::string& op_name, const OpArgs& args,
      const std::vector<std::vector<int64_t>>& in_shapes,
      const std::vector<int64_t>& out_shape, uint64_t content_hash,
      const std::vector<CompressedTable>& tables);

  /// Looks up a promoted mapping without registering anything. Returns the
  /// predicted tables (instantiated for the given shapes when gen_sig) or
  /// an empty vector when no promoted signature applies.
  std::vector<CompressedTable> Predict(
      const std::string& op_name, const OpArgs& args,
      const std::vector<std::vector<int64_t>>& in_shapes,
      const std::vector<int64_t>& out_shape) const;

  const ReuseStats& stats() const { return stats_; }

  /// Serializes the full predictor state (signature stores, promotion
  /// states, counters) into a self-describing binary blob, so persistence
  /// layers can restore reuse behaviour across process restarts. With
  /// `seal` set (the default) a SEAL section — the perfect-hash lookup
  /// tables over the promoted signatures — is appended after the legacy
  /// payload; readers that predate sealing ignore trailing bytes, so the
  /// blob stays backward compatible. seal = false reproduces the legacy
  /// RPS1 bytes exactly.
  std::string SerializeState(bool seal = true) const;

  /// Inverse of SerializeState: replaces this predictor's state with the
  /// decoded blob. Returns Corruption on malformed input (state unchanged
  /// on failure). A blob carrying a SEAL section binds it directly; a
  /// legacy blob is sealed in memory after the restore, so either way the
  /// restored predictor answers promoted lookups through the PHF.
  Status RestoreState(std::string_view blob);

  /// True when promoted dim and gen lookups are served by the sealed
  /// perfect-hash indexes (test/inspect hook).
  bool sealed() const { return dim_sealed_.valid && gen_sealed_.valid; }

 private:
  enum class State { kTentative, kPromoted, kRejected };

  struct DimEntry {
    State state = State::kTentative;
    std::vector<CompressedTable> tables;
  };
  struct GenEntry {
    State state = State::kTentative;
    std::vector<GeneralizedTable> tables;
    // Shapes seen at the tentative stage; gen promotion requires a
    // *different* shape on the confirming call (§VI.C).
    std::vector<std::vector<int64_t>> first_shapes;
    std::vector<int64_t> first_out_shape;
  };

  /// One sealed signature map: a PHF over the promoted entries' key
  /// hashes, plus the full 64-bit hash and entry pointer per PHF position.
  /// Find confirms a candidate position against the stored 64-bit hash, so
  /// a wrong entry requires a full Hash64 collision between distinct keys
  /// (~2^-64 per probe; the keys are not attacker-controlled). Entry
  /// pointers stay valid across map insertions (std::map nodes are
  /// stable); promotion-state changes invalidate the seal instead.
  template <typename Entry>
  struct SealedIndex {
    bool valid = false;
    std::string phf_block;  // heap-allocated (>= 48 bytes): stable on move
    PhfView view;
    std::vector<uint64_t> hashes;       // PHF-position order
    std::vector<const Entry*> entries;  // PHF-position order
    const Entry* Find(uint64_t key_hash) const {
      if (!valid) return nullptr;
      const int64_t pos = view.Lookup(key_hash);
      if (pos < 0 || hashes[static_cast<size_t>(pos)] != key_hash)
        return nullptr;
      return entries[static_cast<size_t>(pos)];
    }
  };

  static std::string DimKey(const std::string& op_name, uint64_t args_hash,
                            const std::vector<std::vector<int64_t>>& in_shapes);
  static std::string GenKey(const std::string& op_name, uint64_t args_hash);
  static std::string BaseKey(const std::string& op_name, uint64_t args_hash,
                             uint64_t content_hash);

  /// (Re)builds both sealed indexes from the current maps. No-op failure:
  /// an unsealable map (duplicate 64-bit key hashes) stays on the map path.
  void Seal();
  void Unseal();

  /// Builds one map's sealed index; false (out untouched) when the
  /// promoted keys cannot be perfect-hashed.
  template <typename Entry>
  static bool BuildSealedIndex(const std::map<std::string, Entry>& sig,
                               SealedIndex<Entry>* out);
  /// Appends one sealed index to a state blob: slot count, then per PHF
  /// position the key hash (fixed64) + the entry's ordinal in `sig`'s
  /// iteration order (varint), then the length-prefixed PHF block.
  template <typename Entry>
  static void AppendSealedIndex(std::string* out,
                                const std::map<std::string, Entry>& sig,
                                const SealedIndex<Entry>& sealed);
  /// Inverse of AppendSealedIndex, cross-checked against the restored map
  /// (ordinals in range, sealed entries promoted, hashes match the keys,
  /// PHF consistent). Corruption on any mismatch.
  template <typename Entry>
  static Status ParseSealedIndex(std::string_view blob, size_t* pos,
                                 const std::map<std::string, Entry>& sig,
                                 SealedIndex<Entry>* out);

  std::map<std::string, std::vector<CompressedTable>> base_sig_;
  std::map<std::string, DimEntry> dim_sig_;
  std::map<std::string, GenEntry> gen_sig_;
  SealedIndex<DimEntry> dim_sealed_;
  SealedIndex<GenEntry> gen_sealed_;
  ReuseStats stats_;
};

}  // namespace dslog

#endif  // DSLOG_STORAGE_SIGNATURES_H_
