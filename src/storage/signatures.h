// Operation signatures and automatic reuse prediction (ICDE'24 §VI):
// base_sig (exact input arrays), dim_sig (input shapes only), and gen_sig
// (shape-independent via index reshaping), with the m = 1 promotion
// heuristic of §VI.C.

#ifndef DSLOG_STORAGE_SIGNATURES_H_
#define DSLOG_STORAGE_SIGNATURES_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "array/op.h"
#include "common/status.h"
#include "provrc/compressed_table.h"
#include "provrc/reshape.h"

namespace dslog {

/// Reuse bookkeeping counters (reported by Table IX's bench).
struct ReuseStats {
  int64_t base_hits = 0;
  int64_t dim_hits = 0;
  int64_t gen_hits = 0;
  int64_t dim_promotions = 0;
  int64_t gen_promotions = 0;
  int64_t dim_rejections = 0;
  int64_t gen_rejections = 0;
  /// Promoted mappings later observed to disagree with captured lineage
  /// (mispredictions — the `cross` failure mode).
  int64_t mispredictions = 0;
};

/// What the predictor decided for one registration.
struct ReuseOutcome {
  bool base_hit = false;
  bool dim_hit = false;   // lineage served from a promoted dim_sig mapping
  bool gen_hit = false;   // lineage served from a promoted gen_sig mapping
};

/// Signature-keyed store of compressed lineage tables with automatic reuse
/// prediction. One instance per DSLog catalog.
class ReusePredictor {
 public:
  /// Processes a registration of `op_name(args)` whose captured, compressed
  /// lineage tables (one per input array) are `tables`. `in_shapes` are
  /// the input array shapes; `content_hash` identifies exact input content
  /// (base_sig). Verifies/promotes tentative mappings (m = 1) and reports
  /// whether this call could have been served without capture.
  ReuseOutcome ProcessRegistration(
      const std::string& op_name, const OpArgs& args,
      const std::vector<std::vector<int64_t>>& in_shapes,
      const std::vector<int64_t>& out_shape, uint64_t content_hash,
      const std::vector<CompressedTable>& tables);

  /// Looks up a promoted mapping without registering anything. Returns the
  /// predicted tables (instantiated for the given shapes when gen_sig) or
  /// an empty vector when no promoted signature applies.
  std::vector<CompressedTable> Predict(
      const std::string& op_name, const OpArgs& args,
      const std::vector<std::vector<int64_t>>& in_shapes,
      const std::vector<int64_t>& out_shape) const;

  const ReuseStats& stats() const { return stats_; }

  /// Serializes the full predictor state (signature stores, promotion
  /// states, counters) into a self-describing binary blob, so persistence
  /// layers can restore reuse behaviour across process restarts.
  std::string SerializeState() const;

  /// Inverse of SerializeState: replaces this predictor's state with the
  /// decoded blob. Returns Corruption on malformed input (state unchanged
  /// on failure).
  Status RestoreState(std::string_view blob);

 private:
  enum class State { kTentative, kPromoted, kRejected };

  struct DimEntry {
    State state = State::kTentative;
    std::vector<CompressedTable> tables;
  };
  struct GenEntry {
    State state = State::kTentative;
    std::vector<GeneralizedTable> tables;
    // Shapes seen at the tentative stage; gen promotion requires a
    // *different* shape on the confirming call (§VI.C).
    std::vector<std::vector<int64_t>> first_shapes;
    std::vector<int64_t> first_out_shape;
  };

  static std::string DimKey(const std::string& op_name, const OpArgs& args,
                            const std::vector<std::vector<int64_t>>& in_shapes);
  static std::string GenKey(const std::string& op_name, const OpArgs& args);
  static std::string BaseKey(const std::string& op_name, const OpArgs& args,
                             uint64_t content_hash);

  std::map<std::string, std::vector<CompressedTable>> base_sig_;
  std::map<std::string, DimEntry> dim_sig_;
  std::map<std::string, GenEntry> gen_sig_;
  ReuseStats stats_;
};

}  // namespace dslog

#endif  // DSLOG_STORAGE_SIGNATURES_H_
