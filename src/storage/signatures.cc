#include "storage/signatures.h"

#include <charconv>
#include <cstring>
#include <utility>

#include "common/hash.h"
#include "common/strings.h"
#include "compress/varint.h"
#include "provrc/serialize.h"

namespace dslog {

namespace {

// Predictor-state blob format (versioned; see SerializeState).
constexpr char kStateMagic[4] = {'R', 'P', 'S', '1'};
// Sealed-index section appended after the legacy payload (optional).
constexpr char kSealMagic[4] = {'S', 'E', 'A', 'L'};
constexpr uint64_t kSealVersion = 1;

// Signature keys are emitted piecewise through a sink so the same emitter
// yields either the key string (StringSink, for map inserts) or its FNV-1a
// hash (HashSink, for sealed lookups) with the invariant
// HashSink(key pieces) == Hash64(StringSink(key pieces)) — FNV chains
// byte-sequentially, so hashing the pieces under the running seed equals
// hashing the concatenation.
struct StringSink {
  std::string* out;
  void Append(std::string_view s) { out->append(s.data(), s.size()); }
};

struct HashSink {
  uint64_t hash = kFnvOffset;
  void Append(std::string_view s) { hash = Hash64(s, hash); }
};

template <typename Sink>
void AppendDecimal(Sink& sink, uint64_t v) {
  char buf[20];
  char* end = std::to_chars(buf, buf + sizeof(buf), v).ptr;
  sink.Append(std::string_view(buf, static_cast<size_t>(end - buf)));
}

template <typename Sink>
void AppendDecimal(Sink& sink, int64_t v) {
  char buf[21];
  char* end = std::to_chars(buf, buf + sizeof(buf), v).ptr;
  sink.Append(std::string_view(buf, static_cast<size_t>(end - buf)));
}

// Key formats are byte-identical to the historical string builders (they
// are persisted inside base/dim/gen map keys of serialized state).
template <typename Sink>
void EmitGenKey(Sink& sink, const std::string& op_name, uint64_t args_hash) {
  // Shape-bearing arguments stay in the key (they define the lineage
  // pattern "up to pseudo-randomness", §VI.A).
  sink.Append(op_name);
  sink.Append("#");
  AppendDecimal(sink, args_hash);
}

template <typename Sink>
void EmitDimKey(Sink& sink, const std::string& op_name, uint64_t args_hash,
                const std::vector<std::vector<int64_t>>& in_shapes) {
  EmitGenKey(sink, op_name, args_hash);
  for (const auto& shape : in_shapes) {
    sink.Append("|");
    for (size_t i = 0; i < shape.size(); ++i) {
      if (i > 0) sink.Append(",");
      AppendDecimal(sink, shape[i]);
    }
  }
}

template <typename Sink>
void EmitBaseKey(Sink& sink, const std::string& op_name, uint64_t args_hash,
                 uint64_t content_hash) {
  EmitGenKey(sink, op_name, args_hash);
  sink.Append("#");
  AppendDecimal(sink, content_hash);
}

void PutTable(std::string* dst, const CompressedTable& table) {
  PutLengthPrefixed(dst, SerializeCompressedTable(table));
}

Result<CompressedTable> GetTable(std::string_view src, size_t* pos) {
  std::string bytes;
  if (!GetLengthPrefixed(src, pos, &bytes))
    return Status::Corruption("predictor state: truncated table");
  return DeserializeCompressedTable(bytes);
}

void PutShape(std::string* dst, const std::vector<int64_t>& shape) {
  PutVarint64(dst, shape.size());
  for (int64_t d : shape) PutVarint64(dst, static_cast<uint64_t>(d));
}

bool GetShape(std::string_view src, size_t* pos, std::vector<int64_t>* out) {
  uint64_t n;
  if (!GetVarint64(src, pos, &n) || n > 64) return false;
  out->resize(n);
  for (auto& d : *out) {
    uint64_t v;
    if (!GetVarint64(src, pos, &v)) return false;
    d = static_cast<int64_t>(v);
  }
  return true;
}

}  // namespace

std::string ReusePredictor::SerializeState(bool seal) const {
  std::string out;
  out.append(kStateMagic, 4);
  // Counters, in declaration order.
  PutVarint64(&out, static_cast<uint64_t>(stats_.base_hits));
  PutVarint64(&out, static_cast<uint64_t>(stats_.dim_hits));
  PutVarint64(&out, static_cast<uint64_t>(stats_.gen_hits));
  PutVarint64(&out, static_cast<uint64_t>(stats_.dim_promotions));
  PutVarint64(&out, static_cast<uint64_t>(stats_.gen_promotions));
  PutVarint64(&out, static_cast<uint64_t>(stats_.dim_rejections));
  PutVarint64(&out, static_cast<uint64_t>(stats_.gen_rejections));
  PutVarint64(&out, static_cast<uint64_t>(stats_.mispredictions));

  PutVarint64(&out, base_sig_.size());
  for (const auto& [key, tables] : base_sig_) {
    PutLengthPrefixed(&out, key);
    PutVarint64(&out, tables.size());
    for (const CompressedTable& t : tables) PutTable(&out, t);
  }

  PutVarint64(&out, dim_sig_.size());
  for (const auto& [key, entry] : dim_sig_) {
    PutLengthPrefixed(&out, key);
    out.push_back(static_cast<char>(entry.state));
    PutVarint64(&out, entry.tables.size());
    for (const CompressedTable& t : entry.tables) PutTable(&out, t);
  }

  PutVarint64(&out, gen_sig_.size());
  for (const auto& [key, entry] : gen_sig_) {
    PutLengthPrefixed(&out, key);
    out.push_back(static_cast<char>(entry.state));
    PutVarint64(&out, entry.tables.size());
    for (const GeneralizedTable& t : entry.tables) t.AppendTo(&out);
    PutVarint64(&out, entry.first_shapes.size());
    for (const auto& shape : entry.first_shapes) PutShape(&out, shape);
    PutShape(&out, entry.first_out_shape);
  }
  if (!seal) return out;

  // SEAL section: the perfect-hash lookup tables over the promoted
  // entries, so a restore binds them instead of rebuilding. Reuses the
  // live sealed indexes when valid; otherwise builds throwaway ones.
  // Skipped entirely (legacy blob) if either map is unsealable.
  SealedIndex<DimEntry> dim_local;
  SealedIndex<GenEntry> gen_local;
  const SealedIndex<DimEntry>* dim = &dim_sealed_;
  if (!dim->valid)
    dim = BuildSealedIndex(dim_sig_, &dim_local) ? &dim_local : nullptr;
  const SealedIndex<GenEntry>* gen = &gen_sealed_;
  if (!gen->valid)
    gen = BuildSealedIndex(gen_sig_, &gen_local) ? &gen_local : nullptr;
  if (dim == nullptr || gen == nullptr) return out;
  out.append(kSealMagic, 4);
  PutVarint64(&out, kSealVersion);
  AppendSealedIndex(&out, dim_sig_, *dim);
  AppendSealedIndex(&out, gen_sig_, *gen);
  return out;
}

Status ReusePredictor::RestoreState(std::string_view blob) {
  if (blob.size() < 4 || std::memcmp(blob.data(), kStateMagic, 4) != 0)
    return Status::Corruption("predictor state: bad magic");
  size_t pos = 4;
  ReusePredictor restored;
  int64_t* counters[] = {
      &restored.stats_.base_hits,      &restored.stats_.dim_hits,
      &restored.stats_.gen_hits,       &restored.stats_.dim_promotions,
      &restored.stats_.gen_promotions, &restored.stats_.dim_rejections,
      &restored.stats_.gen_rejections, &restored.stats_.mispredictions};
  for (int64_t* counter : counters) {
    uint64_t v;
    if (!GetVarint64(blob, &pos, &v))
      return Status::Corruption("predictor state: truncated counters");
    *counter = static_cast<int64_t>(v);
  }

  auto get_state = [&](State* out) {
    if (pos >= blob.size()) return false;
    uint8_t raw = static_cast<uint8_t>(blob[pos++]);
    if (raw > static_cast<uint8_t>(State::kRejected)) return false;
    *out = static_cast<State>(raw);
    return true;
  };

  uint64_t num_base;
  if (!GetVarint64(blob, &pos, &num_base))
    return Status::Corruption("predictor state: base count");
  for (uint64_t i = 0; i < num_base; ++i) {
    std::string key;
    uint64_t num_tables;
    if (!GetLengthPrefixed(blob, &pos, &key) || !GetVarint64(blob, &pos, &num_tables))
      return Status::Corruption("predictor state: base entry");
    std::vector<CompressedTable> tables;
    for (uint64_t t = 0; t < num_tables; ++t) {
      DSLOG_ASSIGN_OR_RETURN(CompressedTable table, GetTable(blob, &pos));
      tables.push_back(std::move(table));
    }
    restored.base_sig_[std::move(key)] = std::move(tables);
  }

  uint64_t num_dim;
  if (!GetVarint64(blob, &pos, &num_dim))
    return Status::Corruption("predictor state: dim count");
  for (uint64_t i = 0; i < num_dim; ++i) {
    std::string key;
    DimEntry entry;
    uint64_t num_tables;
    if (!GetLengthPrefixed(blob, &pos, &key) || !get_state(&entry.state) ||
        !GetVarint64(blob, &pos, &num_tables))
      return Status::Corruption("predictor state: dim entry");
    for (uint64_t t = 0; t < num_tables; ++t) {
      DSLOG_ASSIGN_OR_RETURN(CompressedTable table, GetTable(blob, &pos));
      entry.tables.push_back(std::move(table));
    }
    restored.dim_sig_[std::move(key)] = std::move(entry);
  }

  uint64_t num_gen;
  if (!GetVarint64(blob, &pos, &num_gen))
    return Status::Corruption("predictor state: gen count");
  for (uint64_t i = 0; i < num_gen; ++i) {
    std::string key;
    GenEntry entry;
    uint64_t num_tables;
    if (!GetLengthPrefixed(blob, &pos, &key) || !get_state(&entry.state) ||
        !GetVarint64(blob, &pos, &num_tables))
      return Status::Corruption("predictor state: gen entry");
    for (uint64_t t = 0; t < num_tables; ++t) {
      DSLOG_ASSIGN_OR_RETURN(GeneralizedTable table,
                             GeneralizedTable::ParseFrom(blob, &pos));
      entry.tables.push_back(std::move(table));
    }
    uint64_t num_shapes;
    if (!GetVarint64(blob, &pos, &num_shapes))
      return Status::Corruption("predictor state: gen shapes");
    entry.first_shapes.resize(num_shapes);
    for (auto& shape : entry.first_shapes)
      if (!GetShape(blob, &pos, &shape))
        return Status::Corruption("predictor state: gen shape");
    if (!GetShape(blob, &pos, &entry.first_out_shape))
      return Status::Corruption("predictor state: gen out shape");
    restored.gen_sig_[std::move(key)] = std::move(entry);
  }

  // Trailing SEAL section (newer blobs): bind the persisted sealed
  // indexes, failing loudly if they don't match the restored maps. Other
  // trailing bytes are ignored as before (forward compatibility), and a
  // legacy blob is sealed in memory so promoted lookups go through the
  // PHF either way.
  if (blob.size() - pos >= 4 &&
      std::memcmp(blob.data() + pos, kSealMagic, 4) == 0) {
    pos += 4;
    uint64_t version;
    if (!GetVarint64(blob, &pos, &version) || version != kSealVersion)
      return Status::Corruption("predictor state: seal version");
    DSLOG_RETURN_IF_ERROR(ParseSealedIndex(blob, &pos, restored.dim_sig_,
                                           &restored.dim_sealed_));
    DSLOG_RETURN_IF_ERROR(ParseSealedIndex(blob, &pos, restored.gen_sig_,
                                           &restored.gen_sealed_));
  } else {
    restored.Seal();
  }

  *this = std::move(restored);
  return Status::OK();
}

std::string ReusePredictor::DimKey(
    const std::string& op_name, uint64_t args_hash,
    const std::vector<std::vector<int64_t>>& in_shapes) {
  std::string key;
  key.reserve(op_name.size() + 21 + 21 * in_shapes.size());
  StringSink sink{&key};
  EmitDimKey(sink, op_name, args_hash, in_shapes);
  return key;
}

std::string ReusePredictor::GenKey(const std::string& op_name,
                                   uint64_t args_hash) {
  std::string key;
  key.reserve(op_name.size() + 21);
  StringSink sink{&key};
  EmitGenKey(sink, op_name, args_hash);
  return key;
}

std::string ReusePredictor::BaseKey(const std::string& op_name,
                                    uint64_t args_hash,
                                    uint64_t content_hash) {
  std::string key;
  key.reserve(op_name.size() + 42);
  StringSink sink{&key};
  EmitBaseKey(sink, op_name, args_hash, content_hash);
  return key;
}

template <typename Entry>
bool ReusePredictor::BuildSealedIndex(const std::map<std::string, Entry>& sig,
                                      SealedIndex<Entry>* out) {
  std::vector<uint64_t> hashes;
  std::vector<const Entry*> promoted;
  for (const auto& [key, entry] : sig) {
    if (entry.state != State::kPromoted) continue;
    hashes.push_back(Hash64(key));
    promoted.push_back(&entry);
  }
  auto block = PhfBuilder::Build(hashes);
  if (!block.ok()) return false;  // distinct keys collided at 64 bits
  SealedIndex<Entry> built;
  built.phf_block = std::move(block).ValueOrDie();
  auto view = PhfView::Bind(built.phf_block);
  if (!view.ok()) return false;
  built.view = view.ValueOrDie();
  built.hashes.resize(hashes.size());
  built.entries.resize(hashes.size());
  for (size_t i = 0; i < hashes.size(); ++i) {
    const int64_t pos = built.view.Lookup(hashes[i]);
    if (pos < 0 || pos >= static_cast<int64_t>(hashes.size())) return false;
    built.hashes[static_cast<size_t>(pos)] = hashes[i];
    built.entries[static_cast<size_t>(pos)] = promoted[i];
  }
  built.valid = true;
  *out = std::move(built);
  return true;
}

template <typename Entry>
void ReusePredictor::AppendSealedIndex(std::string* out,
                                       const std::map<std::string, Entry>& sig,
                                       const SealedIndex<Entry>& sealed) {
  std::map<const Entry*, uint64_t> ordinals;
  uint64_t ordinal = 0;
  for (const auto& [key, entry] : sig) ordinals[&entry] = ordinal++;
  PutVarint64(out, sealed.hashes.size());
  for (size_t i = 0; i < sealed.hashes.size(); ++i) {
    PutFixed64(out, sealed.hashes[i]);
    PutVarint64(out, ordinals.at(sealed.entries[i]));
  }
  PutLengthPrefixed(out, sealed.phf_block);
}

template <typename Entry>
Status ReusePredictor::ParseSealedIndex(
    std::string_view blob, size_t* pos,
    const std::map<std::string, Entry>& sig, SealedIndex<Entry>* out) {
  uint64_t n;
  if (!GetVarint64(blob, pos, &n) || n > sig.size())
    return Status::Corruption("predictor state: seal slot count");
  std::vector<const std::string*> keys;
  std::vector<const Entry*> slots;
  uint64_t num_promoted = 0;
  keys.reserve(sig.size());
  slots.reserve(sig.size());
  for (const auto& [key, entry] : sig) {
    keys.push_back(&key);
    slots.push_back(&entry);
    if (entry.state == State::kPromoted) ++num_promoted;
  }
  // The seal must cover the promoted set exactly: a partial seal would
  // silently turn promoted mappings into misses.
  if (n != num_promoted)
    return Status::Corruption("predictor state: seal/promoted mismatch");
  SealedIndex<Entry> built;
  built.hashes.resize(n);
  built.entries.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t hash, ordinal;
    if (!GetFixed64(blob, pos, &hash) || !GetVarint64(blob, pos, &ordinal) ||
        ordinal >= slots.size())
      return Status::Corruption("predictor state: seal slot");
    if (slots[ordinal]->state != State::kPromoted ||
        Hash64(*keys[ordinal]) != hash)
      return Status::Corruption("predictor state: seal slot mismatch");
    built.hashes[i] = hash;
    built.entries[i] = slots[ordinal];
  }
  std::string block;
  if (!GetLengthPrefixed(blob, pos, &block))
    return Status::Corruption("predictor state: seal phf block");
  built.phf_block = std::move(block);
  auto view = PhfView::Bind(built.phf_block);
  if (!view.ok()) return view.status();
  built.view = std::move(view).ValueOrDie();
  if (built.view.size() != n)
    return Status::Corruption("predictor state: seal phf size");
  for (uint64_t i = 0; i < n; ++i)
    if (built.view.Lookup(built.hashes[i]) != static_cast<int64_t>(i))
      return Status::Corruption("predictor state: seal phf inconsistent");
  built.valid = true;
  *out = std::move(built);
  return Status::OK();
}

void ReusePredictor::Seal() {
  Unseal();
  BuildSealedIndex(dim_sig_, &dim_sealed_);
  BuildSealedIndex(gen_sig_, &gen_sealed_);
}

void ReusePredictor::Unseal() {
  dim_sealed_ = SealedIndex<DimEntry>();
  gen_sealed_ = SealedIndex<GenEntry>();
}

std::vector<CompressedTable> ReusePredictor::Predict(
    const std::string& op_name, const OpArgs& args,
    const std::vector<std::vector<int64_t>>& in_shapes,
    const std::vector<int64_t>& out_shape) const {
  const uint64_t args_hash = args.Hash();
  const DimEntry* dim = nullptr;
  if (dim_sealed_.valid) {
    // Sealed path: stream the key through the hash — no string, no map
    // walk; the PHF answers hit and miss alike in O(1).
    HashSink sink;
    EmitDimKey(sink, op_name, args_hash, in_shapes);
    dim = dim_sealed_.Find(sink.hash);
  } else {
    auto dim_it = dim_sig_.find(DimKey(op_name, args_hash, in_shapes));
    if (dim_it != dim_sig_.end() && dim_it->second.state == State::kPromoted)
      dim = &dim_it->second;
  }
  if (dim != nullptr) return dim->tables;

  const GenEntry* gen = nullptr;
  if (gen_sealed_.valid) {
    HashSink sink;
    EmitGenKey(sink, op_name, args_hash);
    gen = gen_sealed_.Find(sink.hash);
  } else {
    auto gen_it = gen_sig_.find(GenKey(op_name, args_hash));
    if (gen_it != gen_sig_.end() && gen_it->second.state == State::kPromoted)
      gen = &gen_it->second;
  }
  if (gen != nullptr && gen->tables.size() <= in_shapes.size()) {
    std::vector<CompressedTable> tables;
    for (size_t i = 0; i < gen->tables.size(); ++i) {
      auto t = gen->tables[i].Instantiate(out_shape, in_shapes[i]);
      if (!t.ok()) return {};
      tables.push_back(std::move(t).ValueOrDie());
    }
    return tables;
  }
  return {};
}

ReuseOutcome ReusePredictor::ProcessRegistration(
    const std::string& op_name, const OpArgs& args,
    const std::vector<std::vector<int64_t>>& in_shapes,
    const std::vector<int64_t>& out_shape, uint64_t content_hash,
    const std::vector<CompressedTable>& tables) {
  ReuseOutcome outcome;
  // One argument hash serves all three keys (it used to be recomputed per
  // key builder; OpArgs::Hash walks every argument).
  const uint64_t args_hash = args.Hash();

  // ---- base_sig: exact input match (Lima-style). -------------------------
  std::string base_key = BaseKey(op_name, args_hash, content_hash);
  auto base_it = base_sig_.find(base_key);
  if (base_it != base_sig_.end()) {
    outcome.base_hit = true;
    ++stats_.base_hits;
  } else {
    base_sig_[base_key] = tables;
  }

  // ---- dim_sig: shape-based reuse. ---------------------------------------
  // Promotions and demotions change the promoted set, so they invalidate
  // the sealed indexes; plain inserts don't (std::map nodes are stable and
  // a tentative entry is invisible to sealed lookups).
  std::string dim_key = DimKey(op_name, args_hash, in_shapes);
  auto [dim_it, dim_new] = dim_sig_.try_emplace(dim_key);
  DimEntry& dim = dim_it->second;
  if (dim_new) {
    dim.tables = tables;
  } else {
    switch (dim.state) {
      case State::kTentative:
        if (dim.tables == tables) {
          dim.state = State::kPromoted;
          Unseal();
          ++stats_.dim_promotions;
          outcome.dim_hit = true;
          ++stats_.dim_hits;
        } else {
          dim.state = State::kRejected;
          ++stats_.dim_rejections;
        }
        break;
      case State::kPromoted:
        if (dim.tables == tables) {
          outcome.dim_hit = true;
          ++stats_.dim_hits;
        } else {
          ++stats_.mispredictions;
          dim.state = State::kRejected;
          Unseal();
        }
        break;
      case State::kRejected:
        break;
    }
  }

  // ---- gen_sig: shape-independent reuse via index reshaping. -------------
  std::string gen_key = GenKey(op_name, args_hash);
  auto [gen_it, gen_new] = gen_sig_.try_emplace(gen_key);
  GenEntry& gen = gen_it->second;
  if (gen_new) {
    for (const CompressedTable& t : tables)
      gen.tables.push_back(GeneralizedTable::Generalize(t));
    gen.first_shapes = in_shapes;
    gen.first_out_shape = out_shape;
  } else {
    auto verify = [&]() {
      for (size_t i = 0; i < gen.tables.size() && i < tables.size(); ++i) {
        auto inst = gen.tables[i].Instantiate(out_shape, in_shapes[i]);
        if (!inst.ok()) return false;
        if (!(inst.value() == tables[i])) return false;
      }
      return gen.tables.size() == tables.size();
    };
    switch (gen.state) {
      case State::kTentative: {
        // Promotion requires a *different* shape than the first call.
        bool different_shape = in_shapes != gen.first_shapes;
        if (different_shape) {
          if (verify()) {
            gen.state = State::kPromoted;
            Unseal();
            ++stats_.gen_promotions;
            outcome.gen_hit = true;
            ++stats_.gen_hits;
          } else {
            gen.state = State::kRejected;
            ++stats_.gen_rejections;
          }
        }
        break;
      }
      case State::kPromoted:
        if (verify()) {
          outcome.gen_hit = true;
          ++stats_.gen_hits;
        } else {
          ++stats_.mispredictions;
          gen.state = State::kRejected;
          Unseal();
        }
        break;
      case State::kRejected:
        break;
    }
  }
  return outcome;
}

}  // namespace dslog
