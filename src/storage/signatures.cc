#include "storage/signatures.h"

#include <cstring>
#include <sstream>
#include <utility>

#include "common/strings.h"
#include "compress/varint.h"
#include "provrc/serialize.h"

namespace dslog {

namespace {

// Predictor-state blob format (versioned; see SerializeState).
constexpr char kStateMagic[4] = {'R', 'P', 'S', '1'};

void PutTable(std::string* dst, const CompressedTable& table) {
  PutLengthPrefixed(dst, SerializeCompressedTable(table));
}

Result<CompressedTable> GetTable(std::string_view src, size_t* pos) {
  std::string bytes;
  if (!GetLengthPrefixed(src, pos, &bytes))
    return Status::Corruption("predictor state: truncated table");
  return DeserializeCompressedTable(bytes);
}

void PutShape(std::string* dst, const std::vector<int64_t>& shape) {
  PutVarint64(dst, shape.size());
  for (int64_t d : shape) PutVarint64(dst, static_cast<uint64_t>(d));
}

bool GetShape(std::string_view src, size_t* pos, std::vector<int64_t>* out) {
  uint64_t n;
  if (!GetVarint64(src, pos, &n) || n > 64) return false;
  out->resize(n);
  for (auto& d : *out) {
    uint64_t v;
    if (!GetVarint64(src, pos, &v)) return false;
    d = static_cast<int64_t>(v);
  }
  return true;
}

}  // namespace

std::string ReusePredictor::SerializeState() const {
  std::string out;
  out.append(kStateMagic, 4);
  // Counters, in declaration order.
  PutVarint64(&out, static_cast<uint64_t>(stats_.base_hits));
  PutVarint64(&out, static_cast<uint64_t>(stats_.dim_hits));
  PutVarint64(&out, static_cast<uint64_t>(stats_.gen_hits));
  PutVarint64(&out, static_cast<uint64_t>(stats_.dim_promotions));
  PutVarint64(&out, static_cast<uint64_t>(stats_.gen_promotions));
  PutVarint64(&out, static_cast<uint64_t>(stats_.dim_rejections));
  PutVarint64(&out, static_cast<uint64_t>(stats_.gen_rejections));
  PutVarint64(&out, static_cast<uint64_t>(stats_.mispredictions));

  PutVarint64(&out, base_sig_.size());
  for (const auto& [key, tables] : base_sig_) {
    PutLengthPrefixed(&out, key);
    PutVarint64(&out, tables.size());
    for (const CompressedTable& t : tables) PutTable(&out, t);
  }

  PutVarint64(&out, dim_sig_.size());
  for (const auto& [key, entry] : dim_sig_) {
    PutLengthPrefixed(&out, key);
    out.push_back(static_cast<char>(entry.state));
    PutVarint64(&out, entry.tables.size());
    for (const CompressedTable& t : entry.tables) PutTable(&out, t);
  }

  PutVarint64(&out, gen_sig_.size());
  for (const auto& [key, entry] : gen_sig_) {
    PutLengthPrefixed(&out, key);
    out.push_back(static_cast<char>(entry.state));
    PutVarint64(&out, entry.tables.size());
    for (const GeneralizedTable& t : entry.tables) t.AppendTo(&out);
    PutVarint64(&out, entry.first_shapes.size());
    for (const auto& shape : entry.first_shapes) PutShape(&out, shape);
    PutShape(&out, entry.first_out_shape);
  }
  return out;
}

Status ReusePredictor::RestoreState(std::string_view blob) {
  if (blob.size() < 4 || std::memcmp(blob.data(), kStateMagic, 4) != 0)
    return Status::Corruption("predictor state: bad magic");
  size_t pos = 4;
  ReusePredictor restored;
  int64_t* counters[] = {
      &restored.stats_.base_hits,      &restored.stats_.dim_hits,
      &restored.stats_.gen_hits,       &restored.stats_.dim_promotions,
      &restored.stats_.gen_promotions, &restored.stats_.dim_rejections,
      &restored.stats_.gen_rejections, &restored.stats_.mispredictions};
  for (int64_t* counter : counters) {
    uint64_t v;
    if (!GetVarint64(blob, &pos, &v))
      return Status::Corruption("predictor state: truncated counters");
    *counter = static_cast<int64_t>(v);
  }

  auto get_state = [&](State* out) {
    if (pos >= blob.size()) return false;
    uint8_t raw = static_cast<uint8_t>(blob[pos++]);
    if (raw > static_cast<uint8_t>(State::kRejected)) return false;
    *out = static_cast<State>(raw);
    return true;
  };

  uint64_t num_base;
  if (!GetVarint64(blob, &pos, &num_base))
    return Status::Corruption("predictor state: base count");
  for (uint64_t i = 0; i < num_base; ++i) {
    std::string key;
    uint64_t num_tables;
    if (!GetLengthPrefixed(blob, &pos, &key) || !GetVarint64(blob, &pos, &num_tables))
      return Status::Corruption("predictor state: base entry");
    std::vector<CompressedTable> tables;
    for (uint64_t t = 0; t < num_tables; ++t) {
      DSLOG_ASSIGN_OR_RETURN(CompressedTable table, GetTable(blob, &pos));
      tables.push_back(std::move(table));
    }
    restored.base_sig_[std::move(key)] = std::move(tables);
  }

  uint64_t num_dim;
  if (!GetVarint64(blob, &pos, &num_dim))
    return Status::Corruption("predictor state: dim count");
  for (uint64_t i = 0; i < num_dim; ++i) {
    std::string key;
    DimEntry entry;
    uint64_t num_tables;
    if (!GetLengthPrefixed(blob, &pos, &key) || !get_state(&entry.state) ||
        !GetVarint64(blob, &pos, &num_tables))
      return Status::Corruption("predictor state: dim entry");
    for (uint64_t t = 0; t < num_tables; ++t) {
      DSLOG_ASSIGN_OR_RETURN(CompressedTable table, GetTable(blob, &pos));
      entry.tables.push_back(std::move(table));
    }
    restored.dim_sig_[std::move(key)] = std::move(entry);
  }

  uint64_t num_gen;
  if (!GetVarint64(blob, &pos, &num_gen))
    return Status::Corruption("predictor state: gen count");
  for (uint64_t i = 0; i < num_gen; ++i) {
    std::string key;
    GenEntry entry;
    uint64_t num_tables;
    if (!GetLengthPrefixed(blob, &pos, &key) || !get_state(&entry.state) ||
        !GetVarint64(blob, &pos, &num_tables))
      return Status::Corruption("predictor state: gen entry");
    for (uint64_t t = 0; t < num_tables; ++t) {
      DSLOG_ASSIGN_OR_RETURN(GeneralizedTable table,
                             GeneralizedTable::ParseFrom(blob, &pos));
      entry.tables.push_back(std::move(table));
    }
    uint64_t num_shapes;
    if (!GetVarint64(blob, &pos, &num_shapes))
      return Status::Corruption("predictor state: gen shapes");
    entry.first_shapes.resize(num_shapes);
    for (auto& shape : entry.first_shapes)
      if (!GetShape(blob, &pos, &shape))
        return Status::Corruption("predictor state: gen shape");
    if (!GetShape(blob, &pos, &entry.first_out_shape))
      return Status::Corruption("predictor state: gen out shape");
    restored.gen_sig_[std::move(key)] = std::move(entry);
  }

  *this = std::move(restored);
  return Status::OK();
}

std::string ReusePredictor::DimKey(
    const std::string& op_name, const OpArgs& args,
    const std::vector<std::vector<int64_t>>& in_shapes) {
  std::ostringstream os;
  os << op_name << "#" << args.Hash();
  for (const auto& s : in_shapes) os << "|" << JoinInts(s, ",");
  return os.str();
}

std::string ReusePredictor::GenKey(const std::string& op_name,
                                   const OpArgs& args) {
  // Shape-bearing arguments stay in the key (they define the lineage
  // pattern "up to pseudo-randomness", §VI.A).
  return op_name + "#" + std::to_string(args.Hash());
}

std::string ReusePredictor::BaseKey(const std::string& op_name,
                                    const OpArgs& args, uint64_t content_hash) {
  return op_name + "#" + std::to_string(args.Hash()) + "#" +
         std::to_string(content_hash);
}

std::vector<CompressedTable> ReusePredictor::Predict(
    const std::string& op_name, const OpArgs& args,
    const std::vector<std::vector<int64_t>>& in_shapes,
    const std::vector<int64_t>& out_shape) const {
  auto dim_it = dim_sig_.find(DimKey(op_name, args, in_shapes));
  if (dim_it != dim_sig_.end() && dim_it->second.state == State::kPromoted)
    return dim_it->second.tables;
  auto gen_it = gen_sig_.find(GenKey(op_name, args));
  if (gen_it != gen_sig_.end() && gen_it->second.state == State::kPromoted) {
    std::vector<CompressedTable> tables;
    for (size_t i = 0; i < gen_it->second.tables.size(); ++i) {
      auto t = gen_it->second.tables[i].Instantiate(out_shape, in_shapes[i]);
      if (!t.ok()) return {};
      tables.push_back(std::move(t).ValueOrDie());
    }
    return tables;
  }
  return {};
}

ReuseOutcome ReusePredictor::ProcessRegistration(
    const std::string& op_name, const OpArgs& args,
    const std::vector<std::vector<int64_t>>& in_shapes,
    const std::vector<int64_t>& out_shape, uint64_t content_hash,
    const std::vector<CompressedTable>& tables) {
  ReuseOutcome outcome;

  // ---- base_sig: exact input match (Lima-style). -------------------------
  std::string base_key = BaseKey(op_name, args, content_hash);
  auto base_it = base_sig_.find(base_key);
  if (base_it != base_sig_.end()) {
    outcome.base_hit = true;
    ++stats_.base_hits;
  } else {
    base_sig_[base_key] = tables;
  }

  // ---- dim_sig: shape-based reuse. ---------------------------------------
  std::string dim_key = DimKey(op_name, args, in_shapes);
  auto [dim_it, dim_new] = dim_sig_.try_emplace(dim_key);
  DimEntry& dim = dim_it->second;
  if (dim_new) {
    dim.tables = tables;
  } else {
    switch (dim.state) {
      case State::kTentative:
        if (dim.tables == tables) {
          dim.state = State::kPromoted;
          ++stats_.dim_promotions;
          outcome.dim_hit = true;
          ++stats_.dim_hits;
        } else {
          dim.state = State::kRejected;
          ++stats_.dim_rejections;
        }
        break;
      case State::kPromoted:
        if (dim.tables == tables) {
          outcome.dim_hit = true;
          ++stats_.dim_hits;
        } else {
          ++stats_.mispredictions;
          dim.state = State::kRejected;
        }
        break;
      case State::kRejected:
        break;
    }
  }

  // ---- gen_sig: shape-independent reuse via index reshaping. -------------
  std::string gen_key = GenKey(op_name, args);
  auto [gen_it, gen_new] = gen_sig_.try_emplace(gen_key);
  GenEntry& gen = gen_it->second;
  if (gen_new) {
    for (const CompressedTable& t : tables)
      gen.tables.push_back(GeneralizedTable::Generalize(t));
    gen.first_shapes = in_shapes;
    gen.first_out_shape = out_shape;
  } else {
    auto verify = [&]() {
      for (size_t i = 0; i < gen.tables.size() && i < tables.size(); ++i) {
        auto inst = gen.tables[i].Instantiate(out_shape, in_shapes[i]);
        if (!inst.ok()) return false;
        if (!(inst.value() == tables[i])) return false;
      }
      return gen.tables.size() == tables.size();
    };
    switch (gen.state) {
      case State::kTentative: {
        // Promotion requires a *different* shape than the first call.
        bool different_shape = in_shapes != gen.first_shapes;
        if (different_shape) {
          if (verify()) {
            gen.state = State::kPromoted;
            ++stats_.gen_promotions;
            outcome.gen_hit = true;
            ++stats_.gen_hits;
          } else {
            gen.state = State::kRejected;
            ++stats_.gen_rejections;
          }
        }
        break;
      }
      case State::kPromoted:
        if (verify()) {
          outcome.gen_hit = true;
          ++stats_.gen_hits;
        } else {
          ++stats_.mispredictions;
          gen.state = State::kRejected;
        }
        break;
      case State::kRejected:
        break;
    }
  }
  return outcome;
}

}  // namespace dslog
