#include "storage/signatures.h"

#include <sstream>

#include "common/strings.h"

namespace dslog {

std::string ReusePredictor::DimKey(
    const std::string& op_name, const OpArgs& args,
    const std::vector<std::vector<int64_t>>& in_shapes) {
  std::ostringstream os;
  os << op_name << "#" << args.Hash();
  for (const auto& s : in_shapes) os << "|" << JoinInts(s, ",");
  return os.str();
}

std::string ReusePredictor::GenKey(const std::string& op_name,
                                   const OpArgs& args) {
  // Shape-bearing arguments stay in the key (they define the lineage
  // pattern "up to pseudo-randomness", §VI.A).
  return op_name + "#" + std::to_string(args.Hash());
}

std::string ReusePredictor::BaseKey(const std::string& op_name,
                                    const OpArgs& args, uint64_t content_hash) {
  return op_name + "#" + std::to_string(args.Hash()) + "#" +
         std::to_string(content_hash);
}

std::vector<CompressedTable> ReusePredictor::Predict(
    const std::string& op_name, const OpArgs& args,
    const std::vector<std::vector<int64_t>>& in_shapes,
    const std::vector<int64_t>& out_shape) const {
  auto dim_it = dim_sig_.find(DimKey(op_name, args, in_shapes));
  if (dim_it != dim_sig_.end() && dim_it->second.state == State::kPromoted)
    return dim_it->second.tables;
  auto gen_it = gen_sig_.find(GenKey(op_name, args));
  if (gen_it != gen_sig_.end() && gen_it->second.state == State::kPromoted) {
    std::vector<CompressedTable> tables;
    for (size_t i = 0; i < gen_it->second.tables.size(); ++i) {
      auto t = gen_it->second.tables[i].Instantiate(out_shape, in_shapes[i]);
      if (!t.ok()) return {};
      tables.push_back(std::move(t).ValueOrDie());
    }
    return tables;
  }
  return {};
}

ReuseOutcome ReusePredictor::ProcessRegistration(
    const std::string& op_name, const OpArgs& args,
    const std::vector<std::vector<int64_t>>& in_shapes,
    const std::vector<int64_t>& out_shape, uint64_t content_hash,
    const std::vector<CompressedTable>& tables) {
  ReuseOutcome outcome;

  // ---- base_sig: exact input match (Lima-style). -------------------------
  std::string base_key = BaseKey(op_name, args, content_hash);
  auto base_it = base_sig_.find(base_key);
  if (base_it != base_sig_.end()) {
    outcome.base_hit = true;
    ++stats_.base_hits;
  } else {
    base_sig_[base_key] = tables;
  }

  // ---- dim_sig: shape-based reuse. ---------------------------------------
  std::string dim_key = DimKey(op_name, args, in_shapes);
  auto [dim_it, dim_new] = dim_sig_.try_emplace(dim_key);
  DimEntry& dim = dim_it->second;
  if (dim_new) {
    dim.tables = tables;
  } else {
    switch (dim.state) {
      case State::kTentative:
        if (dim.tables == tables) {
          dim.state = State::kPromoted;
          ++stats_.dim_promotions;
          outcome.dim_hit = true;
          ++stats_.dim_hits;
        } else {
          dim.state = State::kRejected;
          ++stats_.dim_rejections;
        }
        break;
      case State::kPromoted:
        if (dim.tables == tables) {
          outcome.dim_hit = true;
          ++stats_.dim_hits;
        } else {
          ++stats_.mispredictions;
          dim.state = State::kRejected;
        }
        break;
      case State::kRejected:
        break;
    }
  }

  // ---- gen_sig: shape-independent reuse via index reshaping. -------------
  std::string gen_key = GenKey(op_name, args);
  auto [gen_it, gen_new] = gen_sig_.try_emplace(gen_key);
  GenEntry& gen = gen_it->second;
  if (gen_new) {
    for (const CompressedTable& t : tables)
      gen.tables.push_back(GeneralizedTable::Generalize(t));
    gen.first_shapes = in_shapes;
    gen.first_out_shape = out_shape;
  } else {
    auto verify = [&]() {
      for (size_t i = 0; i < gen.tables.size() && i < tables.size(); ++i) {
        auto inst = gen.tables[i].Instantiate(out_shape, in_shapes[i]);
        if (!inst.ok()) return false;
        if (!(inst.value() == tables[i])) return false;
      }
      return gen.tables.size() == tables.size();
    };
    switch (gen.state) {
      case State::kTentative: {
        // Promotion requires a *different* shape than the first call.
        bool different_shape = in_shapes != gen.first_shapes;
        if (different_shape) {
          if (verify()) {
            gen.state = State::kPromoted;
            ++stats_.gen_promotions;
            outcome.gen_hit = true;
            ++stats_.gen_hits;
          } else {
            gen.state = State::kRejected;
            ++stats_.gen_rejections;
          }
        }
        break;
      }
      case State::kPromoted:
        if (verify()) {
          outcome.gen_hit = true;
          ++stats_.gen_hits;
        } else {
          ++stats_.mispredictions;
          gen.state = State::kRejected;
        }
        break;
      case State::kRejected:
        break;
    }
  }
  return outcome;
}

}  // namespace dslog
