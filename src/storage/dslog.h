// DSLog: the lineage storage, indexing, and query system (ICDE'24 §III).
// Tracks named arrays, ingests per-operation cell-level lineage (compressed
// with ProvRC on ingest), answers forward/backward path queries in situ,
// reuses lineage across repeated operations, and persists the catalog.
//
// Thread-safety: a DSLog is safe for any number of concurrent readers
// (ProvQuery, ProvQueryBatch, and the const accessors) interleaved with
// writers (DefineArray, RegisterOperation, Load). Reads take the catalog
// lock shared; ingest and reuse-predictor updates take it exclusive. See
// docs/ARCHITECTURE.md ("Concurrency model") for the full contract.

#ifndef DSLOG_STORAGE_DSLOG_H_
#define DSLOG_STORAGE_DSLOG_H_

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lineage/lineage_relation.h"
#include "provrc/compressed_table.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "query/theta_join.h"
#include "storage/signatures.h"

namespace dslog {

/// Per-operation registration payload: the lineage captured between one
/// output array and each input array (nullptr capture = rely on reuse).
struct OperationRegistration {
  std::string op_name;
  std::vector<std::string> in_arrs;
  std::string out_arr;
  /// One relation per input array; may be empty when reuse is expected.
  std::vector<LineageRelation> captured;
  OpArgs args;
  /// Content hash of the input arrays (base_sig identity); 0 = unknown.
  uint64_t content_hash = 0;
  /// Enables signature bookkeeping and automatic reuse (§VI.C).
  bool reuse = true;
};

/// Configuration of a DSLog catalog.
struct DSLogOptions {
  /// Materialize the forward representation (§IV.C, Table III) next to the
  /// stored backward table, trading memory for faster forward hops. The
  /// paper stores "either or both versions depending on the distribution of
  /// forward and reverse queries"; this flag is the "both" configuration.
  bool materialize_forward = false;
};

/// The DSLog storage manager.
class DSLog {
 public:
  DSLog() = default;
  explicit DSLog(DSLogOptions options) : options_(options) {}

  /// Movable (each instance keeps its own lock; the catalog state moves).
  /// Moving a DSLog that other threads are still using is a data race, as
  /// with any container.
  DSLog(DSLog&& other) noexcept;
  DSLog& operator=(DSLog&& other) noexcept;

  /// Defines a tracked array with a fixed shape (the Array() API of §III.A).
  Status DefineArray(const std::string& name, std::vector<int64_t> shape);

  /// True when `name` is a tracked array.
  bool HasArray(const std::string& name) const;
  Result<std::vector<int64_t>> ArrayShape(const std::string& name) const;

  /// Registers an executed operation (register_operation of §III.A).
  /// Lineage is ProvRC-compressed on ingest; when `registration.captured`
  /// is empty and a promoted signature matches, lineage is served from the
  /// reuse index instead.
  Result<ReuseOutcome> RegisterOperation(OperationRegistration registration);

  /// Answers prov_query(X, query_cells): lineage between cells of the first
  /// array on `path` and cells of the last (§III.A / §V). `query` holds
  /// boxes over the first array's indices.
  Result<BoxTable> ProvQuery(const std::vector<std::string>& path,
                             const BoxTable& query,
                             const QueryOptions& options = {}) const;

  /// Answers a batch of path queries (`paths[i]` evaluated against
  /// `queries[i]`), fanning the entries across the shared ThreadPool with
  /// up to `options.num_threads` concurrent workers. Entry i of the result
  /// equals ProvQuery(paths[i], queries[i]) exactly; on any entry failure
  /// the first (lowest-index) error is returned, annotated with its index.
  /// When the batch is smaller than num_threads, entries still fan out and
  /// the leftover threads serve the caller-executed entries' partitioned
  /// θ-joins.
  Result<std::vector<BoxTable>> ProvQueryBatch(
      const std::vector<std::vector<std::string>>& paths,
      const std::vector<BoxTable>& queries,
      const QueryOptions& options = {}) const;

  /// Direct access to a stored edge's compressed table (bench/test hook).
  /// The pointer is only stable while no writer runs; callers that overlap
  /// writers should treat it as a presence check.
  const CompressedTable* FindEdge(const std::string& in_arr,
                                  const std::string& out_arr) const;

  /// Total serialized size of all stored lineage tables (ProvRC-GZip).
  int64_t StorageFootprintBytes() const;

  /// Snapshot of the reuse-predictor counters. Returned by value: a
  /// reference would race concurrent RegisterOperation updates.
  ReuseStats reuse_stats() const;

  /// Persists the catalog (arrays + compressed tables) to a directory.
  Status Save(const std::string& dir) const;
  /// Restores a catalog persisted by Save.
  Status Load(const std::string& dir);

 private:
  struct Edge {
    std::string in_arr;
    std::string out_arr;
    std::string op_name;
    CompressedTable table;  // backward representation (outputs absolute)
    /// Forward representation (§IV.C), present when
    /// options_.materialize_forward is set.
    std::shared_ptr<const ForwardTable> forward;
  };

  static std::string EdgeKey(const std::string& in_arr,
                             const std::string& out_arr) {
    return in_arr + "\x1f" + out_arr;
  }

  /// ProvQuery body; caller must hold mu_ (shared or exclusive).
  Result<BoxTable> ProvQueryLocked(const std::vector<std::string>& path,
                                   const BoxTable& query,
                                   const QueryOptions& options) const;

  DSLogOptions options_;
  /// Guards every member below. Readers (queries, const accessors) hold it
  /// shared for their whole duration — including θ-join evaluation, so the
  /// compressed tables they reference cannot be replaced mid-query;
  /// writers (ingest, predictor updates, Load) hold it exclusive.
  mutable std::shared_mutex mu_;
  std::map<std::string, std::vector<int64_t>> arrays_;
  std::map<std::string, Edge> edges_;
  ReusePredictor predictor_;
};

}  // namespace dslog

#endif  // DSLOG_STORAGE_DSLOG_H_
