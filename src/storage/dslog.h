// DSLog: the lineage storage, indexing, and query system (ICDE'24 §III).
// Tracks named arrays, ingests per-operation cell-level lineage (compressed
// with ProvRC on ingest), answers forward/backward path queries in situ,
// reuses lineage across repeated operations, and persists the catalog.

#ifndef DSLOG_STORAGE_DSLOG_H_
#define DSLOG_STORAGE_DSLOG_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lineage/lineage_relation.h"
#include "provrc/compressed_table.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "query/theta_join.h"
#include "storage/signatures.h"

namespace dslog {

/// Per-operation registration payload: the lineage captured between one
/// output array and each input array (nullptr capture = rely on reuse).
struct OperationRegistration {
  std::string op_name;
  std::vector<std::string> in_arrs;
  std::string out_arr;
  /// One relation per input array; may be empty when reuse is expected.
  std::vector<LineageRelation> captured;
  OpArgs args;
  /// Content hash of the input arrays (base_sig identity); 0 = unknown.
  uint64_t content_hash = 0;
  /// Enables signature bookkeeping and automatic reuse (§VI.C).
  bool reuse = true;
};

/// Configuration of a DSLog catalog.
struct DSLogOptions {
  /// Materialize the forward representation (§IV.C, Table III) next to the
  /// stored backward table, trading memory for faster forward hops. The
  /// paper stores "either or both versions depending on the distribution of
  /// forward and reverse queries"; this flag is the "both" configuration.
  bool materialize_forward = false;
};

/// The DSLog storage manager.
class DSLog {
 public:
  DSLog() = default;
  explicit DSLog(DSLogOptions options) : options_(options) {}

  /// Defines a tracked array with a fixed shape (the Array() API of §III.A).
  Status DefineArray(const std::string& name, std::vector<int64_t> shape);

  /// True when `name` is a tracked array.
  bool HasArray(const std::string& name) const;
  Result<std::vector<int64_t>> ArrayShape(const std::string& name) const;

  /// Registers an executed operation (register_operation of §III.A).
  /// Lineage is ProvRC-compressed on ingest; when `registration.captured`
  /// is empty and a promoted signature matches, lineage is served from the
  /// reuse index instead.
  Result<ReuseOutcome> RegisterOperation(OperationRegistration registration);

  /// Answers prov_query(X, query_cells): lineage between cells of the first
  /// array on `path` and cells of the last (§III.A / §V). `query` holds
  /// boxes over the first array's indices.
  Result<BoxTable> ProvQuery(const std::vector<std::string>& path,
                             const BoxTable& query,
                             const QueryOptions& options = {}) const;

  /// Direct access to a stored edge's compressed table (bench/test hook).
  const CompressedTable* FindEdge(const std::string& in_arr,
                                  const std::string& out_arr) const;

  /// Total serialized size of all stored lineage tables (ProvRC-GZip).
  int64_t StorageFootprintBytes() const;

  const ReuseStats& reuse_stats() const { return predictor_.stats(); }

  /// Persists the catalog (arrays + compressed tables) to a directory.
  Status Save(const std::string& dir) const;
  /// Restores a catalog persisted by Save.
  Status Load(const std::string& dir);

 private:
  struct Edge {
    std::string in_arr;
    std::string out_arr;
    std::string op_name;
    CompressedTable table;  // backward representation (outputs absolute)
    /// Forward representation (§IV.C), present when
    /// options_.materialize_forward is set.
    std::shared_ptr<const ForwardTable> forward;
  };

  static std::string EdgeKey(const std::string& in_arr,
                             const std::string& out_arr) {
    return in_arr + "\x1f" + out_arr;
  }

  DSLogOptions options_;
  std::map<std::string, std::vector<int64_t>> arrays_;
  std::map<std::string, Edge> edges_;
  ReusePredictor predictor_;
};

}  // namespace dslog

#endif  // DSLOG_STORAGE_DSLOG_H_
