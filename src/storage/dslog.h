// DSLog: the lineage storage, indexing, and query system (ICDE'24 §III).
// Tracks named arrays, ingests per-operation cell-level lineage (compressed
// with ProvRC on ingest), answers forward/backward path queries in situ,
// reuses lineage across repeated operations, and persists the catalog.
//
// Thread-safety: a DSLog is safe for any number of concurrent readers
// (ProvQuery, ProvQueryBatch, and the const accessors) interleaved with
// writers (DefineArray, RegisterOperation, Load). Reads take the catalog
// lock shared; ingest and reuse-predictor updates take it exclusive. See
// docs/ARCHITECTURE.md ("Concurrency model") for the full contract.

#ifndef DSLOG_STORAGE_DSLOG_H_
#define DSLOG_STORAGE_DSLOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lineage/lineage_relation.h"
#include "provrc/compressed_table.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "query/theta_join.h"
#include "storage/logstore.h"
#include "storage/signatures.h"

namespace dslog {

/// Per-operation registration payload: the lineage captured between one
/// output array and each input array (nullptr capture = rely on reuse).
struct OperationRegistration {
  std::string op_name;
  std::vector<std::string> in_arrs;
  std::string out_arr;
  /// One relation per input array; may be empty when reuse is expected.
  std::vector<LineageRelation> captured;
  OpArgs args;
  /// Content hash of the input arrays (base_sig identity); 0 = unknown.
  uint64_t content_hash = 0;
  /// Enables signature bookkeeping and automatic reuse (§VI.C).
  bool reuse = true;
};

/// Configuration of a DSLog catalog.
struct DSLogOptions {
  /// Materialize the forward representation (§IV.C, Table III) next to the
  /// stored backward table, trading memory for faster forward hops. The
  /// paper stores "either or both versions depending on the distribution of
  /// forward and reverse queries"; this flag is the "both" configuration.
  bool materialize_forward = false;
};

/// Configuration of DSLog::OpenInSitu.
struct InSituOptions {
  /// Mapping, checksum, and decode-cache behaviour of the backing LogStore.
  LogStoreOptions store;
};

/// The DSLog storage manager.
class DSLog {
 public:
  DSLog() = default;
  explicit DSLog(DSLogOptions options) : options_(options) {}

  /// Movable (each instance keeps its own lock; the catalog state moves).
  /// Moving a DSLog that other threads are still using is a data race, as
  /// with any container.
  DSLog(DSLog&& other) noexcept;
  DSLog& operator=(DSLog&& other) noexcept;

  /// Defines a tracked array with a fixed shape (the Array() API of §III.A).
  Status DefineArray(const std::string& name, std::vector<int64_t> shape);

  /// True when `name` is a tracked array.
  bool HasArray(const std::string& name) const;
  Result<std::vector<int64_t>> ArrayShape(const std::string& name) const;

  /// Registers an executed operation (register_operation of §III.A).
  /// Lineage is ProvRC-compressed on ingest; when `registration.captured`
  /// is empty and a promoted signature matches, lineage is served from the
  /// reuse index instead.
  Result<ReuseOutcome> RegisterOperation(OperationRegistration registration);

  /// Answers prov_query(X, query_cells): lineage between cells of the first
  /// array on `path` and cells of the last (§III.A / §V). `query` holds
  /// boxes over the first array's indices.
  Result<BoxTable> ProvQuery(const std::vector<std::string>& path,
                             const BoxTable& query,
                             const QueryOptions& options = {}) const;

  /// Answers a batch of path queries (`paths[i]` evaluated against
  /// `queries[i]`), fanning the entries across the shared ThreadPool with
  /// up to `options.num_threads` concurrent workers. Entry i of the result
  /// equals ProvQuery(paths[i], queries[i]) exactly; on any entry failure
  /// the first (lowest-index) error is returned, annotated with its index.
  /// When the batch is smaller than num_threads, entries still fan out and
  /// the leftover threads serve the caller-executed entries' partitioned
  /// θ-joins.
  Result<std::vector<BoxTable>> ProvQueryBatch(
      const std::vector<std::vector<std::string>>& paths,
      const std::vector<BoxTable>& queries,
      const QueryOptions& options = {}) const;

  /// Direct access to a stored edge's compressed table (bench/test hook).
  /// The pointer is only stable while no writer runs; callers that overlap
  /// writers should treat it as a presence check. On an in-situ catalog
  /// this materializes the edge's segment into an owned table on first
  /// call (even for zero-copy columnar segments — queries never pay this)
  /// and keeps it pinned for the catalog's lifetime (nullptr if the
  /// segment is corrupt).
  const CompressedTable* FindEdge(const std::string& in_arr,
                                  const std::string& out_arr) const;

  /// Total serialized size of all stored lineage tables (ProvRC-GZip).
  /// In-situ edges report their on-disk segment length (no decode).
  int64_t StorageFootprintBytes() const;

  /// Snapshot of the reuse-predictor counters. Returned by value: a
  /// reference would race concurrent RegisterOperation updates.
  ReuseStats reuse_stats() const;

  /// Persists the catalog (arrays + compressed tables + reuse-predictor
  /// state) to a directory, one gzip blob per edge (columnar in-situ
  /// segments are transcoded — the legacy dir format is ProvRC-GZip only).
  /// Every file is written atomically (temp + rename), so a crash mid-save
  /// never leaves a torn file; catalog.bin is committed last.
  Status Save(const std::string& dir) const;
  /// Restores a catalog persisted by Save. Reuse-predictor state is
  /// restored when the directory carries it (directories written before
  /// predictor persistence load with an empty predictor).
  Status Load(const std::string& dir);

  // ---------------------------------------------- single-file LogStore --

  /// Opens a LogStore file for in-situ querying: the file is mapped, the
  /// edge index and reuse-predictor state are restored, and edge tables
  /// are decompressed lazily — a path query only decodes the segments it
  /// traverses (LRU-cached, size-bounded). The catalog stays writable:
  /// RegisterOperation adds ordinary in-memory edges next to the mapped
  /// ones (persist them with AppendLogStore). materialize_forward is not
  /// applied to mapped edges; forward hops run directly on the backward
  /// representation.
  static Result<DSLog> OpenInSitu(const std::string& path,
                                  const InSituOptions& options = {});

  /// Writes the catalog as a single LogStore file (atomic: temp + rename).
  /// Resident edges serialize in `layout` — kColumnar (the default) makes
  /// every segment the zero-copy scan format; kProvRcGzip reproduces the
  /// compact v1 store. In-situ edges are shuttled as raw segments without
  /// re-encoding, keeping whatever layout they already have (so a store
  /// can legitimately mix versions; dslog_inspect shows which is which).
  Status SaveLogStore(const std::string& path,
                      SegmentLayout layout = SegmentLayout::kColumnar) const;

  /// Incremental persistence: appends edges not yet present in the file at
  /// `path` (plus new arrays and the current predictor state) through
  /// LogStoreWriter::OpenForAppend. Existing segments are not rewritten.
  Status AppendLogStore(const std::string& path,
                        SegmentLayout layout = SegmentLayout::kColumnar) const;

  /// The backing LogStore of an in-situ catalog (decode/cache stats), or
  /// nullptr for a fully in-memory catalog.
  std::shared_ptr<const LogStore> log_store() const;

 private:
  struct Edge {
    std::string in_arr;
    std::string out_arr;
    std::string op_name;
    CompressedTable table;  // backward representation (outputs absolute)
    /// Forward representation (§IV.C), present when
    /// options_.materialize_forward is set.
    std::shared_ptr<const ForwardTable> forward;
    /// LogStore segment id backing this edge, or -1 when the table is
    /// resident in `table`. Lazy edges keep `table` empty and resolve
    /// through store_ on first touch.
    int32_t segment = -1;
  };

  static std::string EdgeKey(const std::string& in_arr,
                             const std::string& out_arr) {
    return EdgeStoreKey(in_arr, out_arr);
  }

  /// ProvQuery body; caller must hold mu_ (shared or exclusive).
  Result<BoxTable> ProvQueryLocked(const std::vector<std::string>& path,
                                   const BoxTable& query,
                                   const QueryOptions& options) const;

  /// The edge's scan view + backward index + lifetime pin: resident edges
  /// view the catalog's arenas (pin carries only the cached index), lazy
  /// edges resolve through the store's cache — a v2 segment borrows the
  /// mapped bytes directly, a v1 segment decodes to an owned table held by
  /// the pin. Caller must hold mu_ (shared suffices).
  Result<LogStore::PinnedTable> ResolveEdgeView(const Edge& edge) const;

  DSLogOptions options_;
  /// Guards every member below. Readers (queries, const accessors) hold it
  /// shared for their whole duration — including θ-join evaluation, so the
  /// compressed tables they reference cannot be replaced mid-query;
  /// writers (ingest, predictor updates, Load) hold it exclusive.
  mutable std::shared_mutex mu_;
  std::map<std::string, std::vector<int64_t>> arrays_;
  std::map<std::string, Edge> edges_;
  ReusePredictor predictor_;
  /// Backing store of an in-situ catalog (nullptr otherwise). Const: the
  /// store's decode cache synchronizes internally, so readers holding mu_
  /// shared can decode concurrently.
  std::shared_ptr<const LogStore> store_;

  /// Decoded tables handed out by FindEdge on lazy edges, pinned for the
  /// catalog's lifetime so the returned raw pointers stay valid. Keyed by
  /// segment id: repeat calls reuse one pin (bounded by segment count).
  mutable std::mutex findedge_pins_mu_;
  mutable std::map<int32_t, std::shared_ptr<const CompressedTable>>
      findedge_pins_;
};

/// Rewrites a legacy Save() directory as a single LogStore file at `path`
/// (arrays, every edge blob shuttled without recompression, predictor
/// state). The directory is left untouched.
Status ConvertLegacyDirToLogStore(const std::string& dir,
                                  const std::string& path);

}  // namespace dslog

#endif  // DSLOG_STORAGE_DSLOG_H_
