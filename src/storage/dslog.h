// DSLog: the lineage storage, indexing, and query system (ICDE'24 §III).
// Tracks named arrays, ingests per-operation cell-level lineage (compressed
// with ProvRC on ingest), answers forward/backward path queries in situ,
// reuses lineage across repeated operations, and persists the catalog.
//
// Thread-safety: a DSLog is safe for any number of concurrent readers
// (ProvQuery, ProvQueryBatch, and the const accessors) interleaved with
// writers (DefineArray, RegisterOperation, StagedIngest, Load). The edge
// catalog is lock-striped: edges live in N shards (hash of the edge's
// output array), each under its own shared_mutex, so concurrent readers
// and an ingesting writer only contend when they touch the same shard —
// and even then a hop holds the shard lock just long enough to copy out
// the edge's (refcounted) payload, never across a segment decode or a
// θ-join. See docs/ARCHITECTURE.md ("Concurrency model") for the full
// contract.

#ifndef DSLOG_STORAGE_DSLOG_H_
#define DSLOG_STORAGE_DSLOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lineage/lineage_relation.h"
#include "provrc/compressed_table.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "query/theta_join.h"
#include "storage/logstore.h"
#include "storage/signatures.h"

namespace dslog {

class StagedIngest;

/// Per-operation registration payload: the lineage captured between one
/// output array and each input array (nullptr capture = rely on reuse).
struct OperationRegistration {
  std::string op_name;
  std::vector<std::string> in_arrs;
  std::string out_arr;
  /// One relation per input array; may be empty when reuse is expected.
  std::vector<LineageRelation> captured;
  OpArgs args;
  /// Content hash of the input arrays (base_sig identity); 0 = unknown.
  uint64_t content_hash = 0;
  /// Enables signature bookkeeping and automatic reuse (§VI.C).
  bool reuse = true;
};

/// Configuration of a DSLog catalog.
struct DSLogOptions {
  /// Materialize the forward representation (§IV.C, Table III) next to the
  /// stored backward table, trading memory for faster forward hops. The
  /// paper stores "either or both versions depending on the distribution of
  /// forward and reverse queries"; this flag is the "both" configuration.
  bool materialize_forward = false;
  /// Number of lock-striped shards the edge catalog is split across (each
  /// shard has its own shared_mutex). Edges hash to a shard by output
  /// array, so one RegisterOperation commits all its edges under a single
  /// shard lock while readers of other shards proceed untouched. Clamped
  /// to >= 1; 1 reproduces the old single-lock catalog (contention tests
  /// sweep this).
  int edge_shards = 16;
};

/// Configuration of DSLog::OpenInSitu.
struct InSituOptions {
  /// Mapping, checksum, and decode-cache behaviour of the backing LogStore.
  LogStoreOptions store;
  /// Catalog behaviour of the opened DSLog (shard count; the
  /// materialize_forward flag is not applied to mapped edges).
  DSLogOptions catalog;
};

/// The DSLog storage manager.
class DSLog {
 public:
  DSLog() { InitShards(); }
  explicit DSLog(DSLogOptions options) : options_(options) { InitShards(); }

  /// Movable (each instance keeps its own locks; the catalog state moves).
  /// Moving a DSLog that other threads are still using is a data race, as
  /// with any container.
  DSLog(DSLog&& other) noexcept;
  DSLog& operator=(DSLog&& other) noexcept;

  /// Defines a tracked array with a fixed shape (the Array() API of §III.A).
  Status DefineArray(const std::string& name, std::vector<int64_t> shape);

  /// True when `name` is a tracked array.
  bool HasArray(const std::string& name) const;
  Result<std::vector<int64_t>> ArrayShape(const std::string& name) const;

  /// Registers an executed operation (register_operation of §III.A).
  /// Lineage is ProvRC-compressed on ingest; when `registration.captured`
  /// is empty and a promoted signature matches, lineage is served from the
  /// reuse index instead.
  Result<ReuseOutcome> RegisterOperation(OperationRegistration registration);

  /// Answers prov_query(X, query_cells): lineage between cells of the first
  /// array on `path` and cells of the last (§III.A / §V). `query` holds
  /// boxes over the first array's indices.
  ///
  /// Isolation: each traversed edge is read atomically (a hop sees a fully
  /// registered edge or none), and the hop pins the edge's table for the
  /// query's duration, so a concurrent re-registration can never free data
  /// mid-join. Across hops the query is *not* a snapshot: an edge
  /// registered after the query started may be visible to a later hop.
  ///
  /// With `options.profile` set and `profile` non-null, fills `profile`
  /// with per-hop observability: edge identity and how each hop's segment
  /// resolved (cache hit / zero-copy borrow / decode, bytes, resolve time)
  /// from this layer, plus the join-execution fields from InSituQuery.
  ///
  /// With `options.cancel` set, the query polls the token at every hop
  /// boundary (before resolving a hop's segment and before running its
  /// θ-join) and returns Status::Cancelled once it observes cancellation,
  /// releasing every pin it holds; work inside a hop always runs to
  /// completion. A query whose token is cancelled concurrently with its
  /// final hop may return either the full result or Cancelled.
  Result<BoxTable> ProvQuery(const std::vector<std::string>& path,
                             const BoxTable& query,
                             const QueryOptions& options = {},
                             QueryProfile* profile = nullptr) const;

  /// Answers a batch of path queries (`paths[i]` evaluated against
  /// `queries[i]`), fanning the entries across the shared ThreadPool with
  /// up to `options.num_threads` concurrent workers. Entry i of the result
  /// equals ProvQuery(paths[i], queries[i]) exactly; on any entry failure
  /// the first (lowest-index) error is returned, annotated with its index.
  /// When the batch is smaller than num_threads, entries still fan out and
  /// the leftover threads serve the caller-executed entries' partitioned
  /// θ-joins.
  ///
  /// With `options.profile` set and `profiles` non-null, `profiles` is
  /// resized to the batch size and entry i receives entry i's
  /// QueryProfile (each batch worker writes only its own slot).
  Result<std::vector<BoxTable>> ProvQueryBatch(
      const std::vector<std::vector<std::string>>& paths,
      const std::vector<BoxTable>& queries,
      const QueryOptions& options = {},
      std::vector<QueryProfile>* profiles = nullptr) const;

  /// Direct access to a stored edge's compressed table (bench/test hook).
  /// The returned pointer stays valid for the catalog's lifetime (the
  /// catalog pins the table), but reflects the edge at first call: callers
  /// that overlap re-registrations should treat it as a presence check. On
  /// an in-situ catalog this materializes the edge's segment into an owned
  /// table on first call (even for zero-copy columnar segments — queries
  /// never pay this); nullptr if the edge is absent or its segment corrupt.
  const CompressedTable* FindEdge(const std::string& in_arr,
                                  const std::string& out_arr) const;

  /// Total serialized size of all stored lineage tables (ProvRC-GZip).
  /// In-situ edges report their on-disk segment length (no decode).
  int64_t StorageFootprintBytes() const;

  /// Snapshot of the reuse-predictor counters. Returned by value: a
  /// reference would race concurrent RegisterOperation updates.
  ReuseStats reuse_stats() const;

  /// Persists the catalog (arrays + compressed tables + reuse-predictor
  /// state) to a directory, one gzip blob per edge (columnar in-situ
  /// segments are transcoded — the legacy dir format is ProvRC-GZip only).
  /// Every file is written atomically (temp + rename), so a crash mid-save
  /// never leaves a torn file; catalog.bin is committed last. Concurrent
  /// ingest is safe; the saved edge set is a point-in-time snapshot.
  Status Save(const std::string& dir) const;
  /// Restores a catalog persisted by Save. Reuse-predictor state is
  /// restored when the directory carries it (directories written before
  /// predictor persistence load with an empty predictor).
  Status Load(const std::string& dir);

  // ---------------------------------------------- single-file LogStore --

  /// Opens a LogStore file for in-situ querying: the file is mapped, the
  /// reuse-predictor state is restored, and edge tables are decompressed
  /// lazily — a path query only decodes the segments it traverses
  /// (LRU-cached, size-bounded). No per-edge catalog state is materialized
  /// at open: mapped edges resolve through the store's own segment index
  /// (the v4 perfect-hash index, or a lazily built name map for v1–v3
  /// files), so open cost is independent of the number of stored edges.
  /// The catalog stays writable: RegisterOperation adds ordinary in-memory
  /// edges next to the mapped ones (persist them with AppendLogStore); a
  /// resident edge shadows the mapped segment with the same key.
  /// materialize_forward is not applied to mapped edges; forward hops run
  /// directly on the backward representation.
  static Result<DSLog> OpenInSitu(const std::string& path,
                                  const InSituOptions& options = {});

  /// Writes the catalog as a single LogStore file (atomic: temp + rename).
  /// Resident edges serialize in `layout` — kColumnar (the default) makes
  /// every segment the zero-copy scan format; kProvRcGzip reproduces the
  /// compact v1 store. In-situ edges are shuttled as raw segments without
  /// re-encoding, keeping whatever layout they already have (so a store
  /// can legitimately mix versions; dslog_inspect shows which is which).
  /// `writer_options` selects the footer version (v4 + perfect-hash index
  /// by default; footer_version = 3 writes the legacy map-indexed form for
  /// compatibility A/B runs).
  Status SaveLogStore(const std::string& path,
                      SegmentLayout layout = SegmentLayout::kColumnar,
                      const LogStoreWriterOptions& writer_options = {}) const;

  /// Incremental persistence: appends edges not yet present in the file at
  /// `path` (plus new arrays and the current predictor state) through
  /// LogStoreWriter::OpenForAppend. Existing segments are not rewritten,
  /// but the footer is: an appended v1–v3 store is resealed with
  /// `writer_options.footer_version` (v4 by default), upgrading it to the
  /// perfect-hash index in place.
  Status AppendLogStore(
      const std::string& path,
      SegmentLayout layout = SegmentLayout::kColumnar,
      const LogStoreWriterOptions& writer_options = {}) const;

  /// The backing LogStore of an in-situ catalog (decode/cache stats), or
  /// nullptr for a fully in-memory catalog.
  std::shared_ptr<const LogStore> log_store() const;

  int edge_shard_count() const { return static_cast<int>(shards_.size()); }

 private:
  friend class StagedIngest;

  struct Edge {
    std::string in_arr;
    std::string out_arr;
    std::string op_name;
    /// Backward representation (outputs absolute). Refcounted so a query
    /// hop (or FindEdge pin) keeps the arenas alive after the shard lock
    /// is released, even across a concurrent re-registration. nullptr for
    /// lazy edges, which resolve through store_ by `segment`.
    std::shared_ptr<const CompressedTable> table;
    /// Forward representation (§IV.C), present when
    /// options_.materialize_forward is set.
    std::shared_ptr<const ForwardTable> forward;
    /// LogStore segment id backing this edge, or -1 when resident.
    int32_t segment = -1;
  };

  /// One lock stripe of the edge catalog.
  struct EdgeShard {
    mutable std::shared_mutex mu;
    std::map<std::string, Edge> edges;
  };

  static std::string EdgeKey(const std::string& in_arr,
                             const std::string& out_arr) {
    return EdgeStoreKey(in_arr, out_arr);
  }

  void InitShards();
  EdgeShard& ShardFor(const std::string& out_arr) const;

  /// Resolves edge in_arr -> out_arr: the shard map first (shard lock held
  /// only for the copy; the shared_ptr payloads outlive the lock), then —
  /// on a miss, when `store` is non-null — the store's segment index,
  /// synthesizing a lazy Edge from the matched segment's metadata. Returns
  /// false when neither holds the edge; an error only on store-index
  /// corruption. The shard lock is released before the store probe, so a
  /// concurrently committed resident edge may shadow the store's segment
  /// for one lookup but never produces a torn edge.
  Result<bool> FindEdgeCopy(const std::string& in_arr,
                            const std::string& out_arr, const LogStore* store,
                            Edge* out) const;

  /// Resolves a copied edge into a query hop's view + index + pin. Takes
  /// no catalog locks: resident edges view their pinned table, lazy edges
  /// resolve through `store` (which synchronizes internally). `ev`, when
  /// non-null, receives how a lazy edge's segment resolved (untouched for
  /// resident edges).
  Result<LogStore::PinnedTable> ResolveEdgeView(
      const Edge& edge, const LogStore* store,
      LogStore::ViewEvent* ev = nullptr) const;

  /// Commits edges into their shards, one writer-lock acquisition per
  /// distinct shard (edges of one operation share a shard by design).
  void CommitEdges(std::vector<Edge> edges);

  /// Point-in-time copy of every edge, keyed by EdgeKey: the backing
  /// store's segments (as lazy edges) merged with the resident shard
  /// overlay, resident edges shadowing same-key segments. Each shard lock
  /// is held shared only while that shard is copied.
  std::map<std::string, Edge> SnapshotEdges() const;

  DSLogOptions options_;
  /// Guards arrays_, predictor_, and store_ (the catalog-level state).
  /// Lock order: catalog_mu_ before any shard mu; a shard lock is never
  /// held while taking catalog_mu_, another shard's mu (except the
  /// ascending-order multi-lock of Load/move), or a LogStore decode.
  mutable std::shared_mutex catalog_mu_;
  std::map<std::string, std::vector<int64_t>> arrays_;
  ReusePredictor predictor_;
  /// Backing store of an in-situ catalog (nullptr otherwise). Const: the
  /// store's decode cache synchronizes internally, so readers can decode
  /// concurrently with no catalog lock held.
  std::shared_ptr<const LogStore> store_;

  /// The lock-striped edge catalog. The vector itself is immutable between
  /// construction and destruction (Load/move replace contents under all
  /// locks), so ShardFor needs no lock.
  std::vector<std::unique_ptr<EdgeShard>> shards_;

  /// Tables handed out by FindEdge, pinned for the catalog's lifetime so
  /// the returned raw pointers stay valid across re-registration and LRU
  /// eviction. Keyed by edge: repeat calls reuse one pin.
  mutable std::mutex findedge_pins_mu_;
  mutable std::map<std::string, std::shared_ptr<const CompressedTable>>
      findedge_pins_;
};

/// Per-thread staging log for batched ingest — the SmokedDuck
/// per-thread-log-then-PostProcess capture pattern: Add() validates and
/// ProvRC-compresses a captured registration with *no* catalog locks held;
/// Drain() groups the staged edges by catalog shard and commits them,
/// taking each shard's writer lock exactly once (and the catalog lock once
/// for array validation + reuse bookkeeping). K ingesting threads each own
/// a stager, so ingest convoys on neither one global mutex nor a
/// per-operation lock round trip.
///
/// Only captured-lineage registrations can be staged (`captured` non-empty):
/// serving lineage *from* the reuse index would require reading the
/// predictor at Add() time, which is exactly the shared state staging
/// avoids — use DSLog::RegisterOperation for predicted ingest. A stager is
/// single-threaded; the DSLog must outlive it.
class StagedIngest {
 public:
  explicit StagedIngest(DSLog* log) : log_(log) {}

  /// Compresses `registration` and stages its edges. Takes no locks.
  /// Array existence is validated at Drain() time (arrays may legitimately
  /// be defined between Add and Drain).
  Status Add(OperationRegistration registration);

  /// Commits everything staged since the last Drain, in Add() order, and
  /// returns one ReuseOutcome per staged registration. On error (e.g. an
  /// undefined array) nothing is committed and the staged ops are kept.
  Result<std::vector<ReuseOutcome>> Drain();

  int64_t staged() const { return static_cast<int64_t>(ops_.size()); }

 private:
  struct StagedOp {
    OperationRegistration reg;  // captured relations already consumed
    std::vector<CompressedTable> tables;
    std::vector<std::shared_ptr<const ForwardTable>> forward;
  };

  DSLog* log_;
  std::vector<StagedOp> ops_;
};

/// Rewrites a legacy Save() directory as a single LogStore file at `path`
/// (arrays, every edge blob shuttled without recompression, predictor
/// state). The directory is left untouched.
Status ConvertLegacyDirToLogStore(const std::string& dir,
                                  const std::string& path);

}  // namespace dslog

#endif  // DSLOG_STORAGE_DSLOG_H_
