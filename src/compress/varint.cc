#include "compress/varint.h"

#include <string_view>

namespace dslog {

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

bool GetVarint64(std::string_view src, size_t* pos, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  size_t p = *pos;
  while (p < src.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(src[p++]);
    // At shift 63 only the low bit of the payload fits in 64 bits; a 10th
    // byte carrying any higher bit (or a continuation bit, caught by the
    // shift bound) would silently wrap — reject it as malformed instead
    // of decoding a value the encoder never wrote.
    if (shift == 63 && (byte & 0xFE)) return false;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) {
      *pos = p;
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

void PutFixed32(std::string* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void PutFixed64(std::string* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

bool GetFixed32(std::string_view src, size_t* pos, uint32_t* out) {
  if (*pos + 4 > src.size()) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<uint8_t>(src[*pos + i])) << (8 * i);
  *pos += 4;
  *out = v;
  return true;
}

bool GetFixed64(std::string_view src, size_t* pos, uint64_t* out) {
  if (*pos + 8 > src.size()) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<uint8_t>(src[*pos + i])) << (8 * i);
  *pos += 8;
  *out = v;
  return true;
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s);
}

bool GetLengthPrefixed(std::string_view src, size_t* pos, std::string* out) {
  uint64_t n;
  if (!GetVarint64(src, pos, &n) || n > src.size() - *pos) return false;
  out->assign(src.substr(*pos, n));
  *pos += n;
  return true;
}

}  // namespace dslog
