// Fixed-width bit packing (LSB-first within each byte, Parquet layout).

#ifndef DSLOG_COMPRESS_BITPACK_H_
#define DSLOG_COMPRESS_BITPACK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dslog {

/// Minimum bit width able to represent `max_value` (>= 1 even for 0).
int BitWidthFor(uint64_t max_value);

/// Appends `values` packed at `bit_width` bits each. Values must fit.
void BitPack(const std::vector<uint64_t>& values, int bit_width,
             std::string* dst);

/// Unpacks `count` values of `bit_width` bits starting at byte offset `*pos`;
/// advances `*pos` past the packed region. Returns false on truncation.
bool BitUnpack(const std::string& src, size_t* pos, size_t count,
               int bit_width, std::vector<uint64_t>* out);

}  // namespace dslog

#endif  // DSLOG_COMPRESS_BITPACK_H_
