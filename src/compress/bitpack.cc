#include "compress/bitpack.h"

#include "common/check.h"

namespace dslog {

int BitWidthFor(uint64_t max_value) {
  int w = 1;
  while (w < 64 && (max_value >> w) != 0) ++w;
  return w;
}

void BitPack(const std::vector<uint64_t>& values, int bit_width,
             std::string* dst) {
  DSLOG_CHECK(bit_width >= 1 && bit_width <= 64);
  size_t total_bits = values.size() * static_cast<size_t>(bit_width);
  size_t start = dst->size();
  dst->resize(start + (total_bits + 7) / 8, '\0');
  auto* p = reinterpret_cast<unsigned char*>(dst->data() + start);
  size_t bit_pos = 0;
  for (uint64_t v : values) {
    DSLOG_DCHECK(bit_width == 64 || (v >> bit_width) == 0);
    for (int b = 0; b < bit_width; ++b, ++bit_pos) {
      if ((v >> b) & 1) p[bit_pos >> 3] |= static_cast<unsigned char>(1u << (bit_pos & 7));
    }
  }
}

bool BitUnpack(const std::string& src, size_t* pos, size_t count,
               int bit_width, std::vector<uint64_t>* out) {
  DSLOG_CHECK(bit_width >= 1 && bit_width <= 64);
  size_t total_bits = count * static_cast<size_t>(bit_width);
  size_t total_bytes = (total_bits + 7) / 8;
  if (*pos + total_bytes > src.size()) return false;
  out->reserve(out->size() + count);
  const auto* p = reinterpret_cast<const unsigned char*>(src.data() + *pos);
  size_t bit_pos = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    for (int b = 0; b < bit_width; ++b, ++bit_pos) {
      uint64_t bit = (p[bit_pos >> 3] >> (bit_pos & 7)) & 1;
      v |= bit << b;
    }
    out->push_back(v);
  }
  *pos += total_bytes;
  return true;
}

}  // namespace dslog
