// Run-length encodings:
//  - RlePairs:   (value, run) pairs, zigzag-delta varints — the front end of
//                the Turbo-RC baseline (run-length + entropy coding).
//  - HybridRle:  Parquet-style RLE / bit-packed hybrid used for dictionary
//                indices in the Colstore baseline.

#ifndef DSLOG_COMPRESS_RLE_H_
#define DSLOG_COMPRESS_RLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dslog {

/// Encodes `values` as (delta-coded value, run-length) varint pairs.
void RlePairsEncode(const std::vector<int64_t>& values, std::string* dst);

/// Decodes a RlePairsEncode stream (whole buffer from `*pos`).
bool RlePairsDecode(const std::string& src, size_t* pos,
                    std::vector<int64_t>* out);

/// Parquet-style hybrid encoding of non-negative values at a fixed bit width:
/// runs of >= 8 identical values become RLE runs; other regions are
/// bit-packed in groups of 8.
void HybridRleEncode(const std::vector<uint64_t>& values, int bit_width,
                     std::string* dst);

/// Decodes `count` values from a HybridRleEncode stream.
bool HybridRleDecode(const std::string& src, size_t* pos, size_t count,
                     int bit_width, std::vector<uint64_t>* out);

}  // namespace dslog

#endif  // DSLOG_COMPRESS_RLE_H_
