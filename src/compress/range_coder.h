// Adaptive order-0 byte range coder (LZMA-style carry handling). This is the
// "integer entropy coding" stage of the Turbo-RC baseline: a real arithmetic
// coder over the byte stream produced by the RLE front end.

#ifndef DSLOG_COMPRESS_RANGE_CODER_H_
#define DSLOG_COMPRESS_RANGE_CODER_H_

#include <string>

#include "common/result.h"

namespace dslog {

/// Compresses `input` with an adaptive order-0 model.
std::string RangeCoderCompress(const std::string& input);

/// Inverse of RangeCoderCompress.
Result<std::string> RangeCoderDecompress(const std::string& input);

}  // namespace dslog

#endif  // DSLOG_COMPRESS_RANGE_CODER_H_
