#include "compress/deflate.h"

#include <string_view>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "compress/bitstream.h"
#include "compress/huffman.h"
#include "compress/varint.h"

namespace dslog {

namespace {

// --- LZ77 parameters (RFC 1951 geometry) ---------------------------------
constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kWindowSize = 32768;
constexpr int kHashBits = 15;
constexpr int kHashSize = 1 << kHashBits;
constexpr int kMaxChain = 64;

// Literal/length alphabet: 0..255 literals, 256 end-of-block,
// 257..285 length codes. Distance alphabet: 0..29.
constexpr int kNumLitLen = 286;
constexpr int kNumDist = 30;
constexpr int kEob = 256;
constexpr int kMaxCodeLen = 15;

// RFC 1951 length code table: base length and extra bits per code 257+i.
constexpr int kLengthBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11,  13,
                                 15, 17, 19, 23, 27, 31, 35, 43, 51,  59,
                                 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr int kLengthExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                                  2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// RFC 1951 distance code table: base distance and extra bits per code.
constexpr int kDistBase[30] = {1,    2,    3,    4,    5,    7,     9,    13,
                               17,   25,   33,   49,   65,   97,    129,  193,
                               257,  385,  513,  769,  1025, 1537,  2049, 3073,
                               4097, 6145, 8193, 12289, 16385, 24577};
constexpr int kDistExtra[30] = {0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5, 5, 6,
                                6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

int LengthToCode(int len) {
  DSLOG_DCHECK(len >= kMinMatch && len <= kMaxMatch);
  for (int i = 28; i >= 0; --i)
    if (len >= kLengthBase[i]) return i;
  return 0;
}

int DistToCode(int dist) {
  DSLOG_DCHECK(dist >= 1 && dist <= kWindowSize);
  for (int i = 29; i >= 0; --i)
    if (dist >= kDistBase[i]) return i;
  return 0;
}

struct Token {
  bool is_match;
  // Literal payload:
  uint8_t literal;
  // Match payload:
  int length;
  int distance;
};

uint32_t HashAt(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Greedy hash-chain LZ77 tokenizer.
std::vector<Token> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  const auto* data = reinterpret_cast<const unsigned char*>(input.data());
  const size_t n = input.size();
  tokens.reserve(n / 4);

  std::vector<int64_t> head(kHashSize, -1);
  std::vector<int64_t> prev(n, -1);

  size_t i = 0;
  while (i < n) {
    int best_len = 0;
    int64_t best_pos = -1;
    if (i + 4 <= n) {
      uint32_t h = HashAt(data + i);
      int64_t cand = head[h];
      int chain = 0;
      while (cand >= 0 && i - static_cast<size_t>(cand) <= kWindowSize &&
             chain < kMaxChain) {
        // Extend the match.
        size_t max_len = std::min<size_t>(kMaxMatch, n - i);
        size_t l = 0;
        const unsigned char* a = data + cand;
        const unsigned char* b = data + i;
        while (l < max_len && a[l] == b[l]) ++l;
        if (static_cast<int>(l) > best_len) {
          best_len = static_cast<int>(l);
          best_pos = cand;
          if (best_len >= kMaxMatch) break;
        }
        cand = prev[static_cast<size_t>(cand)];
        ++chain;
      }
      prev[i] = head[h];
      head[h] = static_cast<int64_t>(i);
    }
    if (best_len >= kMinMatch) {
      tokens.push_back(Token{true, 0, best_len,
                             static_cast<int>(i - static_cast<size_t>(best_pos))});
      // Insert hash entries for skipped positions (cheap variant: only a few).
      size_t end = i + static_cast<size_t>(best_len);
      for (size_t j = i + 1; j < end && j + 4 <= n; ++j) {
        uint32_t h = HashAt(data + j);
        prev[j] = head[h];
        head[h] = static_cast<int64_t>(j);
      }
      i = end;
    } else {
      tokens.push_back(Token{false, data[i], 0, 0});
      ++i;
    }
  }
  return tokens;
}

void WriteCodeLengths(const std::vector<int>& lengths, std::string* out) {
  // Nibble-packed code lengths (max 15 fits in 4 bits).
  for (size_t i = 0; i < lengths.size(); i += 2) {
    int lo = lengths[i];
    int hi = (i + 1 < lengths.size()) ? lengths[i + 1] : 0;
    out->push_back(static_cast<char>((lo & 0xF) | ((hi & 0xF) << 4)));
  }
}

bool ReadCodeLengths(std::string_view src, size_t* pos, size_t count,
                     std::vector<int>* lengths) {
  size_t bytes = (count + 1) / 2;
  if (*pos + bytes > src.size()) return false;
  lengths->resize(count);
  for (size_t i = 0; i < count; i += 2) {
    uint8_t b = static_cast<uint8_t>(src[*pos + i / 2]);
    (*lengths)[i] = b & 0xF;
    if (i + 1 < count) (*lengths)[i + 1] = (b >> 4) & 0xF;
  }
  *pos += bytes;
  return true;
}

constexpr char kMagic[4] = {'D', 'S', 'L', 'Z'};
constexpr uint8_t kFormatStored = 0;
constexpr uint8_t kFormatHuffman = 1;

}  // namespace

std::string DeflateCompress(const std::string& input) {
  std::string out;
  out.append(kMagic, 4);
  PutVarint64(&out, input.size());
  if (input.empty()) {
    out.push_back(static_cast<char>(kFormatStored));
    return out;
  }

  std::vector<Token> tokens = Tokenize(input);

  // Gather symbol statistics.
  std::vector<uint64_t> lit_freq(kNumLitLen, 0);
  std::vector<uint64_t> dist_freq(kNumDist, 0);
  for (const Token& t : tokens) {
    if (t.is_match) {
      lit_freq[static_cast<size_t>(257 + LengthToCode(t.length))]++;
      dist_freq[static_cast<size_t>(DistToCode(t.distance))]++;
    } else {
      lit_freq[t.literal]++;
    }
  }
  lit_freq[kEob]++;

  std::vector<int> lit_lens = BuildHuffmanCodeLengths(lit_freq, kMaxCodeLen);
  std::vector<int> dist_lens = BuildHuffmanCodeLengths(dist_freq, kMaxCodeLen);
  std::vector<uint32_t> lit_codes = CanonicalCodes(lit_lens);
  std::vector<uint32_t> dist_codes = CanonicalCodes(dist_lens);

  std::string body;
  WriteCodeLengths(lit_lens, &body);
  WriteCodeLengths(dist_lens, &body);
  BitWriter writer(&body);
  for (const Token& t : tokens) {
    if (t.is_match) {
      int lc = LengthToCode(t.length);
      int sym = 257 + lc;
      writer.Write(lit_codes[static_cast<size_t>(sym)],
                   lit_lens[static_cast<size_t>(sym)]);
      if (kLengthExtra[lc] > 0)
        writer.Write(static_cast<uint64_t>(t.length - kLengthBase[lc]),
                     kLengthExtra[lc]);
      int dc = DistToCode(t.distance);
      writer.Write(dist_codes[static_cast<size_t>(dc)],
                   dist_lens[static_cast<size_t>(dc)]);
      if (kDistExtra[dc] > 0)
        writer.Write(static_cast<uint64_t>(t.distance - kDistBase[dc]),
                     kDistExtra[dc]);
    } else {
      writer.Write(lit_codes[t.literal], lit_lens[t.literal]);
    }
  }
  writer.Write(lit_codes[kEob], lit_lens[kEob]);
  writer.Finish();

  if (body.size() + 1 >= input.size() + 1) {
    // Incompressible: store raw.
    out.push_back(static_cast<char>(kFormatStored));
    out.append(input);
  } else {
    out.push_back(static_cast<char>(kFormatHuffman));
    out.append(body);
  }
  return out;
}

Result<std::string> DeflateDecompress(std::string_view input) {
  size_t pos = 0;
  if (input.size() < 5 || std::memcmp(input.data(), kMagic, 4) != 0)
    return Status::Corruption("DSLZ: bad magic");
  pos = 4;
  uint64_t raw_size;
  if (!GetVarint64(input, &pos, &raw_size))
    return Status::Corruption("DSLZ: bad size varint");
  if (pos >= input.size() && raw_size > 0)
    return Status::Corruption("DSLZ: truncated header");
  uint8_t format = raw_size == 0 && pos >= input.size()
                       ? kFormatStored
                       : static_cast<uint8_t>(input[pos++]);
  if (format == kFormatStored) {
    if (input.size() - pos != raw_size)
      return Status::Corruption("DSLZ: stored size mismatch");
    return std::string(input.substr(pos));
  }
  if (format != kFormatHuffman) return Status::Corruption("DSLZ: bad format");

  std::vector<int> lit_lens, dist_lens;
  if (!ReadCodeLengths(input, &pos, kNumLitLen, &lit_lens) ||
      !ReadCodeLengths(input, &pos, kNumDist, &dist_lens))
    return Status::Corruption("DSLZ: truncated code lengths");

  HuffmanDecoder lit_dec;
  if (!lit_dec.Init(lit_lens)) return Status::Corruption("DSLZ: bad lit tree");
  HuffmanDecoder dist_dec;
  bool has_dist = false;
  for (int l : dist_lens) has_dist |= (l > 0);
  if (has_dist && !dist_dec.Init(dist_lens))
    return Status::Corruption("DSLZ: bad dist tree");

  std::string out;
  out.reserve(raw_size);
  BitReader reader(input, pos);
  while (out.size() < raw_size) {
    int sym;
    if (!lit_dec.Decode(&reader, &sym))
      return Status::Corruption("DSLZ: truncated stream");
    if (sym < 256) {
      out.push_back(static_cast<char>(sym));
    } else if (sym == kEob) {
      return Status::Corruption("DSLZ: early end of block");
    } else {
      int lc = sym - 257;
      if (lc >= 29) return Status::Corruption("DSLZ: bad length code");
      uint64_t extra = 0;
      if (kLengthExtra[lc] > 0 && !reader.Read(kLengthExtra[lc], &extra))
        return Status::Corruption("DSLZ: truncated length extra");
      int length = kLengthBase[lc] + static_cast<int>(extra);
      int dc;
      if (!has_dist || !dist_dec.Decode(&reader, &dc))
        return Status::Corruption("DSLZ: truncated distance");
      if (dc >= 30) return Status::Corruption("DSLZ: bad distance code");
      extra = 0;
      if (kDistExtra[dc] > 0 && !reader.Read(kDistExtra[dc], &extra))
        return Status::Corruption("DSLZ: truncated distance extra");
      int dist = kDistBase[dc] + static_cast<int>(extra);
      if (static_cast<size_t>(dist) > out.size())
        return Status::Corruption("DSLZ: distance before start");
      size_t from = out.size() - static_cast<size_t>(dist);
      for (int k = 0; k < length; ++k) out.push_back(out[from + static_cast<size_t>(k)]);
    }
  }
  // Expect the end-of-block marker.
  int sym;
  if (!lit_dec.Decode(&reader, &sym) || sym != kEob)
    return Status::Corruption("DSLZ: missing end of block");
  return out;
}

}  // namespace dslog
