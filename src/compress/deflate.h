// Deflate-style general-purpose compressor: LZ77 (hash-chain matcher, 32 KiB
// window) + canonical Huffman coding of literal/length and distance
// alphabets. This is the repository's substitute for GZip — same algorithm
// family as RFC 1951, with a simplified self-describing container (explicit
// code-length tables, single stream, stored-block fallback).

#ifndef DSLOG_COMPRESS_DEFLATE_H_
#define DSLOG_COMPRESS_DEFLATE_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace dslog {

/// Compresses `input` into the DSLZ container format.
std::string DeflateCompress(const std::string& input);

/// Decompresses a DSLZ buffer (any contiguous byte view, e.g. a mapped
/// file range). Fails with Corruption on malformed input.
Result<std::string> DeflateDecompress(std::string_view input);

}  // namespace dslog

#endif  // DSLOG_COMPRESS_DEFLATE_H_
