// Canonical, length-limited Huffman coding over arbitrary small alphabets.
// Shared by the Deflate-style compressor (literal/length + distance trees).

#ifndef DSLOG_COMPRESS_HUFFMAN_H_
#define DSLOG_COMPRESS_HUFFMAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "compress/bitstream.h"

namespace dslog {

/// Computes canonical code lengths (<= max_len) for the given symbol
/// frequencies. Symbols with zero frequency get length 0 (no code). If the
/// optimal tree exceeds max_len, frequencies are damped and rebuilt (the
/// zlib heuristic), preserving optimality within the depth limit closely.
std::vector<int> BuildHuffmanCodeLengths(const std::vector<uint64_t>& freqs,
                                         int max_len);

/// Assigns canonical codes (LSB-first bit-reversed, deflate convention) for
/// code lengths. codes[i] is valid when lengths[i] > 0.
std::vector<uint32_t> CanonicalCodes(const std::vector<int>& lengths);

/// Canonical Huffman decoder built from code lengths.
class HuffmanDecoder {
 public:
  /// Returns false if the code lengths do not form a valid prefix code
  /// (over- or under-subscribed Kraft sum), except the degenerate 1-symbol
  /// alphabet which is handled specially.
  bool Init(const std::vector<int>& lengths);

  /// Decodes one symbol from the reader. Returns false on stream error.
  bool Decode(BitReader* reader, int* symbol) const;

 private:
  // first_code_[l], first_index_[l]: canonical decoding tables per length.
  std::vector<uint32_t> first_code_;
  std::vector<int> first_index_;
  std::vector<int> count_per_len_;
  std::vector<int> sorted_symbols_;
  int max_len_ = 0;
  int single_symbol_ = -1;  // degenerate alphabet with one used symbol
};

}  // namespace dslog

#endif  // DSLOG_COMPRESS_HUFFMAN_H_
