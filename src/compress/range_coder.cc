#include "compress/range_coder.h"

#include <cstdint>
#include <vector>

#include "compress/varint.h"

namespace dslog {

namespace {

constexpr uint32_t kTop = 1u << 24;
constexpr int kNumSymbols = 256;
constexpr uint32_t kIncrement = 24;
constexpr uint32_t kMaxTotal = 1u << 16;

/// Adaptive order-0 frequency model with periodic halving.
class ByteModel {
 public:
  ByteModel() : freq_(kNumSymbols, 1), total_(kNumSymbols) {}

  /// Cumulative frequency below `symbol`.
  uint32_t CumFreq(int symbol) const {
    uint32_t c = 0;
    for (int i = 0; i < symbol; ++i) c += freq_[static_cast<size_t>(i)];
    return c;
  }

  uint32_t Freq(int symbol) const { return freq_[static_cast<size_t>(symbol)]; }
  uint32_t Total() const { return total_; }

  /// Finds the symbol covering cumulative value `f`, returning its low bound.
  int FindSymbol(uint32_t f, uint32_t* cum_lo) const {
    uint32_t c = 0;
    for (int i = 0; i < kNumSymbols; ++i) {
      uint32_t nf = freq_[static_cast<size_t>(i)];
      if (f < c + nf) {
        *cum_lo = c;
        return i;
      }
      c += nf;
    }
    *cum_lo = c - freq_[kNumSymbols - 1];
    return kNumSymbols - 1;
  }

  void Update(int symbol) {
    freq_[static_cast<size_t>(symbol)] += kIncrement;
    total_ += kIncrement;
    if (total_ >= kMaxTotal) {
      total_ = 0;
      for (auto& f : freq_) {
        f = (f + 1) >> 1;
        total_ += f;
      }
    }
  }

 private:
  std::vector<uint32_t> freq_;
  uint32_t total_;
};

class RangeEncoder {
 public:
  explicit RangeEncoder(std::string* out) : out_(out) {}

  void Encode(uint32_t cum_lo, uint32_t freq, uint32_t total) {
    uint32_t r = range_ / total;
    low_ += static_cast<uint64_t>(r) * cum_lo;
    range_ = r * freq;
    while (range_ < kTop) {
      range_ <<= 8;
      ShiftLow();
    }
  }

  void Flush() {
    for (int i = 0; i < 5; ++i) ShiftLow();
  }

 private:
  void ShiftLow() {
    if (static_cast<uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
      uint8_t carry = static_cast<uint8_t>(low_ >> 32);
      uint8_t temp = cache_;
      do {
        out_->push_back(static_cast<char>(temp + carry));
        temp = 0xFF;
      } while (--cache_size_ != 0);
      cache_ = static_cast<uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ & 0x00FFFFFFull) << 8;
  }

  std::string* out_;
  uint64_t low_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint8_t cache_ = 0;
  uint64_t cache_size_ = 1;
};

class RangeDecoder {
 public:
  /// Initializes from the stream; consumes 5 bytes (first is a pad byte).
  bool Init(const std::string& src, size_t* pos) {
    if (*pos + 5 > src.size()) return false;
    ++(*pos);  // skip encoder pad byte
    code_ = 0;
    for (int i = 0; i < 4; ++i)
      code_ = (code_ << 8) | static_cast<uint8_t>(src[(*pos)++]);
    src_ = &src;
    pos_ = *pos;
    return true;
  }

  uint32_t GetFreq(uint32_t total) {
    range_ /= total;
    uint32_t f = code_ / range_;
    return f >= total ? total - 1 : f;
  }

  void Decode(uint32_t cum_lo, uint32_t freq) {
    code_ -= cum_lo * range_;
    range_ *= freq;
    while (range_ < kTop) {
      uint8_t next = pos_ < src_->size() ? static_cast<uint8_t>((*src_)[pos_++]) : 0;
      code_ = (code_ << 8) | next;
      range_ <<= 8;
    }
  }

 private:
  const std::string* src_ = nullptr;
  size_t pos_ = 0;
  uint32_t code_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
};

}  // namespace

std::string RangeCoderCompress(const std::string& input) {
  std::string out;
  PutVarint64(&out, input.size());
  ByteModel model;
  RangeEncoder enc(&out);
  for (char c : input) {
    int sym = static_cast<uint8_t>(c);
    enc.Encode(model.CumFreq(sym), model.Freq(sym), model.Total());
    model.Update(sym);
  }
  enc.Flush();
  return out;
}

Result<std::string> RangeCoderDecompress(const std::string& input) {
  size_t pos = 0;
  uint64_t n;
  if (!GetVarint64(input, &pos, &n))
    return Status::Corruption("range coder: bad header");
  std::string out;
  out.reserve(n);
  if (n == 0) return out;
  ByteModel model;
  RangeDecoder dec;
  if (!dec.Init(input, &pos))
    return Status::Corruption("range coder: truncated stream");
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t f = dec.GetFreq(model.Total());
    uint32_t cum_lo;
    int sym = model.FindSymbol(f, &cum_lo);
    dec.Decode(cum_lo, model.Freq(sym));
    out.push_back(static_cast<char>(sym));
    model.Update(sym);
  }
  return out;
}

}  // namespace dslog
