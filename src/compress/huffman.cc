#include "compress/huffman.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace dslog {

namespace {

struct Node {
  uint64_t freq;
  int symbol;  // -1 for internal
  int left = -1, right = -1;
};

// Depth-assignment over the explicit tree (iterative DFS).
void AssignDepths(const std::vector<Node>& nodes, int root,
                  std::vector<int>* depths) {
  std::vector<std::pair<int, int>> stack = {{root, 0}};
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    const Node& n = nodes[idx];
    if (n.symbol >= 0) {
      (*depths)[n.symbol] = std::max(d, 1);
    } else {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
}

// One round of Huffman construction; returns per-symbol depths (0 = unused).
std::vector<int> BuildOnce(const std::vector<uint64_t>& freqs) {
  int n = static_cast<int>(freqs.size());
  std::vector<Node> nodes;
  using Entry = std::pair<uint64_t, int>;  // (freq, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int i = 0; i < n; ++i) {
    if (freqs[i] > 0) {
      nodes.push_back({freqs[i], i});
      heap.push({freqs[i], static_cast<int>(nodes.size()) - 1});
    }
  }
  std::vector<int> depths(n, 0);
  if (nodes.empty()) return depths;
  if (nodes.size() == 1) {
    depths[nodes[0].symbol] = 1;
    return depths;
  }
  while (heap.size() > 1) {
    auto [fa, a] = heap.top();
    heap.pop();
    auto [fb, b] = heap.top();
    heap.pop();
    nodes.push_back({fa + fb, -1, a, b});
    heap.push({fa + fb, static_cast<int>(nodes.size()) - 1});
  }
  AssignDepths(nodes, heap.top().second, &depths);
  return depths;
}

}  // namespace

std::vector<int> BuildHuffmanCodeLengths(const std::vector<uint64_t>& freqs,
                                         int max_len) {
  std::vector<uint64_t> f = freqs;
  while (true) {
    std::vector<int> depths = BuildOnce(f);
    int deepest = 0;
    for (int d : depths) deepest = std::max(deepest, d);
    if (deepest <= max_len) return depths;
    // Damp frequencies (zlib heuristic) and retry; converges because all
    // frequencies tend to 1 and the alphabet is small.
    for (auto& v : f)
      if (v > 0) v = (v + 1) / 2;
  }
}

std::vector<uint32_t> CanonicalCodes(const std::vector<int>& lengths) {
  int n = static_cast<int>(lengths.size());
  int max_len = 0;
  for (int l : lengths) max_len = std::max(max_len, l);
  std::vector<int> count(static_cast<size_t>(max_len) + 1, 0);
  for (int l : lengths)
    if (l > 0) count[static_cast<size_t>(l)]++;
  std::vector<uint32_t> next(static_cast<size_t>(max_len) + 1, 0);
  uint32_t code = 0;
  for (int l = 1; l <= max_len; ++l) {
    code = (code + static_cast<uint32_t>(count[static_cast<size_t>(l) - 1])) << 1;
    next[static_cast<size_t>(l)] = code;
  }
  std::vector<uint32_t> codes(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    int l = lengths[static_cast<size_t>(i)];
    if (l == 0) continue;
    uint32_t c = next[static_cast<size_t>(l)]++;
    // Bit-reverse to length l so the code can be emitted into the LSB-first
    // bitstream and decoded MSB-of-code-first.
    uint32_t r = 0;
    for (int b = 0; b < l; ++b) r |= ((c >> b) & 1u) << (l - 1 - b);
    codes[static_cast<size_t>(i)] = r;
  }
  return codes;
}

bool HuffmanDecoder::Init(const std::vector<int>& lengths) {
  max_len_ = 0;
  for (int l : lengths) max_len_ = std::max(max_len_, l);
  single_symbol_ = -1;
  int used = 0, last = -1;
  for (size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] > 0) {
      ++used;
      last = static_cast<int>(i);
    }
  }
  if (used == 0) return false;
  if (used == 1) {
    single_symbol_ = last;
    return true;
  }
  std::vector<int> count(static_cast<size_t>(max_len_) + 1, 0);
  for (int l : lengths)
    if (l > 0) count[static_cast<size_t>(l)]++;
  // Kraft check.
  uint64_t kraft = 0;
  for (int l = 1; l <= max_len_; ++l)
    kraft += static_cast<uint64_t>(count[static_cast<size_t>(l)])
             << (max_len_ - l);
  if (kraft != (1ULL << max_len_)) return false;

  first_code_.assign(static_cast<size_t>(max_len_) + 1, 0);
  first_index_.assign(static_cast<size_t>(max_len_) + 1, 0);
  uint32_t code = 0;
  int index = 0;
  for (int l = 1; l <= max_len_; ++l) {
    code = (code + static_cast<uint32_t>(count[static_cast<size_t>(l) - 1])) << 1;
    first_code_[static_cast<size_t>(l)] = code;
    first_index_[static_cast<size_t>(l)] = index;
    index += count[static_cast<size_t>(l)];
  }
  sorted_symbols_.clear();
  for (int l = 1; l <= max_len_; ++l)
    for (size_t i = 0; i < lengths.size(); ++i)
      if (lengths[i] == l) sorted_symbols_.push_back(static_cast<int>(i));
  // Rebuild count for decode bounds.
  count_per_len_ = count;
  return true;
}

bool HuffmanDecoder::Decode(BitReader* reader, int* symbol) const {
  if (single_symbol_ >= 0) {
    // Degenerate tree: one 1-bit code.
    uint64_t bit;
    if (!reader->ReadBit(&bit)) return false;
    *symbol = single_symbol_;
    return true;
  }
  uint32_t code = 0;
  for (int l = 1; l <= max_len_; ++l) {
    uint64_t bit;
    if (!reader->ReadBit(&bit)) return false;
    code = (code << 1) | static_cast<uint32_t>(bit);
    int cnt = count_per_len_[static_cast<size_t>(l)];
    if (cnt > 0 && code >= first_code_[static_cast<size_t>(l)] &&
        code < first_code_[static_cast<size_t>(l)] + static_cast<uint32_t>(cnt)) {
      *symbol = sorted_symbols_[static_cast<size_t>(
          first_index_[static_cast<size_t>(l)] +
          static_cast<int>(code - first_code_[static_cast<size_t>(l)]))];
      return true;
    }
  }
  return false;
}

}  // namespace dslog
