#include "compress/rle.h"

#include "common/check.h"
#include "compress/bitpack.h"
#include "compress/varint.h"

namespace dslog {

void RlePairsEncode(const std::vector<int64_t>& values, std::string* dst) {
  PutVarint64(dst, values.size());
  int64_t prev = 0;
  size_t i = 0;
  while (i < values.size()) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i]) ++j;
    PutVarintSigned(dst, values[i] - prev);
    PutVarint64(dst, j - i);
    prev = values[i];
    i = j;
  }
}

bool RlePairsDecode(const std::string& src, size_t* pos,
                    std::vector<int64_t>* out) {
  uint64_t n;
  if (!GetVarint64(src, pos, &n)) return false;
  out->reserve(out->size() + n);
  int64_t prev = 0;
  uint64_t produced = 0;
  while (produced < n) {
    int64_t delta;
    uint64_t run;
    if (!GetVarintSigned(src, pos, &delta)) return false;
    if (!GetVarint64(src, pos, &run)) return false;
    if (run == 0 || produced + run > n) return false;
    int64_t v = prev + delta;
    for (uint64_t k = 0; k < run; ++k) out->push_back(v);
    prev = v;
    produced += run;
  }
  return true;
}

namespace {

// Emits a bit-packed group header + payload for values[start, end).
// The group is padded to a multiple of 8 values with zeros.
void EmitBitPackedGroup(const std::vector<uint64_t>& values, size_t start,
                        size_t end, int bit_width, std::string* dst) {
  size_t n = end - start;
  size_t groups = (n + 7) / 8;
  PutVarint64(dst, (groups << 1) | 1);
  std::vector<uint64_t> padded(values.begin() + static_cast<long>(start),
                               values.begin() + static_cast<long>(end));
  padded.resize(groups * 8, 0);
  BitPack(padded, bit_width, dst);
}

}  // namespace

void HybridRleEncode(const std::vector<uint64_t>& values, int bit_width,
                     std::string* dst) {
  // Bit-packed groups hold a multiple of 8 *real* values; zero padding is
  // legal only at the very end of the stream (Parquet rule). A run may
  // therefore donate its first few values to pad the pending bit-packed
  // region up to a group boundary before switching to RLE.
  constexpr size_t kMinRun = 8;
  size_t i = 0;
  size_t pending_start = 0;  // start of an unfinished bit-packed region
  while (i < values.size()) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i]) ++j;
    size_t run = j - i;
    size_t pad = (8 - (i - pending_start) % 8) % 8;
    if (run >= pad + kMinRun) {
      if (pending_start < i + pad)
        EmitBitPackedGroup(values, pending_start, i + pad, bit_width, dst);
      PutVarint64(dst, (run - pad) << 1);  // RLE run header (lsb 0)
      // Value stored in ceil(bit_width / 8) little-endian bytes.
      int value_bytes = (bit_width + 7) / 8;
      uint64_t v = values[i];
      for (int b = 0; b < value_bytes; ++b)
        dst->push_back(static_cast<char>((v >> (8 * b)) & 0xFF));
      pending_start = j;
    }
    i = j;
  }
  if (pending_start < values.size())
    EmitBitPackedGroup(values, pending_start, values.size(), bit_width, dst);
}

bool HybridRleDecode(const std::string& src, size_t* pos, size_t count,
                     int bit_width, std::vector<uint64_t>* out) {
  out->reserve(out->size() + count);
  size_t produced = 0;
  while (produced < count) {
    uint64_t header;
    if (!GetVarint64(src, pos, &header)) return false;
    if (header & 1) {
      size_t groups = header >> 1;
      std::vector<uint64_t> vals;
      if (!BitUnpack(src, pos, groups * 8, bit_width, &vals)) return false;
      size_t take = std::min(vals.size(), count - produced);
      out->insert(out->end(), vals.begin(), vals.begin() + static_cast<long>(take));
      produced += take;
    } else {
      uint64_t run = header >> 1;
      if (run == 0 || produced + run > count) return false;
      int value_bytes = (bit_width + 7) / 8;
      if (*pos + static_cast<size_t>(value_bytes) > src.size()) return false;
      uint64_t v = 0;
      for (int b = 0; b < value_bytes; ++b)
        v |= static_cast<uint64_t>(static_cast<uint8_t>(src[*pos + static_cast<size_t>(b)]))
             << (8 * b);
      *pos += static_cast<size_t>(value_bytes);
      for (uint64_t k = 0; k < run; ++k) out->push_back(v);
      produced += run;
    }
  }
  return produced == count;
}

}  // namespace dslog
