// LSB-first bit stream reader/writer used by the Huffman/Deflate codecs.

#ifndef DSLOG_COMPRESS_BITSTREAM_H_
#define DSLOG_COMPRESS_BITSTREAM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/check.h"

namespace dslog {

/// Writes bit fields LSB-first into a byte buffer.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Appends the low `nbits` of `bits` (LSB-first).
  void Write(uint64_t bits, int nbits) {
    DSLOG_DCHECK(nbits >= 0 && nbits <= 57);
    acc_ |= bits << filled_;
    filled_ += nbits;
    while (filled_ >= 8) {
      out_->push_back(static_cast<char>(acc_ & 0xFF));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Flushes any partial byte (zero-padded).
  void Finish() {
    if (filled_ > 0) {
      out_->push_back(static_cast<char>(acc_ & 0xFF));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  std::string* out_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

/// Reads bit fields LSB-first from a byte view (the caller keeps the bytes
/// alive — e.g. a std::string or a memory-mapped file range).
class BitReader {
 public:
  BitReader(std::string_view src, size_t byte_pos)
      : src_(src), pos_(byte_pos) {}

  /// Reads `nbits` bits; returns false past end of buffer.
  bool Read(int nbits, uint64_t* out) {
    while (filled_ < nbits) {
      if (pos_ >= src_.size()) return false;
      acc_ |= static_cast<uint64_t>(static_cast<uint8_t>(src_[pos_++]))
              << filled_;
      filled_ += 8;
    }
    *out = acc_ & ((nbits == 64) ? ~0ULL : ((1ULL << nbits) - 1));
    acc_ >>= nbits;
    filled_ -= nbits;
    return true;
  }

  /// Reads a single bit.
  bool ReadBit(uint64_t* out) { return Read(1, out); }

  /// Byte position of the next unread byte (after discarding bit remainder).
  size_t ByteAlignedPos() const { return pos_; }

 private:
  std::string_view src_;
  size_t pos_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace dslog

#endif  // DSLOG_COMPRESS_BITSTREAM_H_
