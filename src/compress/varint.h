// LEB128 varint and zigzag coding. The byte-buffer type across the
// compression layer is std::string (RocksDB convention).

#ifndef DSLOG_COMPRESS_VARINT_H_
#define DSLOG_COMPRESS_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dslog {

/// Appends an unsigned varint (LEB128, 1-10 bytes).
void PutVarint64(std::string* dst, uint64_t v);

/// Decodes a varint at `*pos`, advancing it. Returns false on truncation.
/// Accepts any contiguous byte view (std::string converts implicitly), so
/// decoders can run directly over memory-mapped file ranges.
bool GetVarint64(std::string_view src, size_t* pos, uint64_t* out);

/// Zigzag maps signed to unsigned so small magnitudes stay small.
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Appends a zigzag-varint signed value.
inline void PutVarintSigned(std::string* dst, int64_t v) {
  PutVarint64(dst, ZigzagEncode(v));
}
/// Decodes a zigzag-varint signed value.
inline bool GetVarintSigned(std::string_view src, size_t* pos, int64_t* out) {
  uint64_t u;
  if (!GetVarint64(src, pos, &u)) return false;
  *out = ZigzagDecode(u);
  return true;
}

/// Appends a fixed-width little-endian integer.
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
bool GetFixed32(std::string_view src, size_t* pos, uint32_t* out);
bool GetFixed64(std::string_view src, size_t* pos, uint64_t* out);

/// Appends a varint length followed by the raw bytes (the shared
/// string-field encoding of the storage formats).
void PutLengthPrefixed(std::string* dst, std::string_view s);
/// Decodes one length-prefixed string at `*pos`, advancing it. Returns
/// false on truncation.
bool GetLengthPrefixed(std::string_view src, size_t* pos, std::string* out);

}  // namespace dslog

#endif  // DSLOG_COMPRESS_VARINT_H_
