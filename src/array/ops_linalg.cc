// Linear-algebra operations (part of the Table IX "complex" set): matmul,
// dot, inner, outer, vdot, kron, cross, trace, diagonal, diag, triu, tril.

#include <cmath>

#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"

namespace dslog {
namespace {

// Small helper making 1-arity index spans readable.
inline std::span<const int64_t> Idx1(const int64_t& v) { return {&v, 1}; }

class MatmulOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "matmul";
    return kName;
  }
  int num_inputs() const override { return 2; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& b = *inputs[1];
    // 2-D x 2-D, 2-D x 1-D (matrix-vector).
    if (a.ndim() != 2) return Status::InvalidArgument("matmul: A must be 2-D");
    int64_t m = a.shape()[0], k = a.shape()[1];
    if (b.ndim() == 1) {
      if (b.shape()[0] != k)
        return Status::InvalidArgument("matmul: inner dim mismatch");
      NDArray out({m});
      for (int64_t i = 0; i < m; ++i) {
        double acc = 0;
        for (int64_t t = 0; t < k; ++t) acc += a[i * k + t] * b[t];
        out[i] = acc;
      }
      return out;
    }
    if (b.ndim() != 2 || b.shape()[0] != k)
      return Status::InvalidArgument("matmul: inner dim mismatch");
    int64_t n = b.shape()[1];
    NDArray out({m, n});
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < n; ++j) {
        double acc = 0;
        for (int64_t t = 0; t < k; ++t) acc += a[i * k + t] * b[t * n + j];
        out[i * n + j] = acc;
      }
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& b = *inputs[1];
    int64_t m = a.shape()[0], k = a.shape()[1];
    std::vector<LineageRelation> rels;
    if (b.ndim() == 1) {
      // out(i) <- A(i, 0..k-1);  out(i) <- v(0..k-1)
      LineageRelation ra(1, 2);
      ra.set_shapes(output.shape(), a.shape());
      ra.Reserve(m * k);
      LineageRelation rb(1, 1);
      rb.set_shapes(output.shape(), b.shape());
      rb.Reserve(m * k);
      for (int64_t i = 0; i < m; ++i)
        for (int64_t t = 0; t < k; ++t) {
          int64_t ai[2] = {i, t};
          ra.Add(Idx1(i), ai);
          rb.Add(Idx1(i), Idx1(t));
        }
      rels.push_back(std::move(ra));
      rels.push_back(std::move(rb));
      return rels;
    }
    int64_t n = b.shape()[1];
    // out(i,j) <- A(i, 0..k-1);  out(i,j) <- B(0..k-1, j)
    LineageRelation ra(2, 2);
    ra.set_shapes(output.shape(), a.shape());
    ra.Reserve(m * n * k);
    LineageRelation rb(2, 2);
    rb.set_shapes(output.shape(), b.shape());
    rb.Reserve(m * n * k);
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < n; ++j)
        for (int64_t t = 0; t < k; ++t) {
          int64_t oi[2] = {i, j};
          int64_t ai[2] = {i, t};
          int64_t bi[2] = {t, j};
          ra.Add(oi, ai);
          rb.Add(oi, bi);
        }
    rels.push_back(std::move(ra));
    rels.push_back(std::move(rb));
    return rels;
  }
};

/// dot: 1-D x 1-D inner product -> 1 cell; 2-D falls back to matmul rules.
class DotOp : public ArrayOp {
 public:
  explicit DotOp(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  int num_inputs() const override { return 2; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& b = *inputs[1];
    if (a.size() != b.size())
      return Status::InvalidArgument(name_ + ": size mismatch");
    NDArray out({1});
    double acc = 0;
    for (int64_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    out[0] = acc;
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    std::vector<LineageRelation> rels;
    rels.push_back(AllToAllLineage(output, *inputs[0]));
    rels.push_back(AllToAllLineage(output, *inputs[1]));
    return rels;
  }

 private:
  std::string name_;
};

class OuterOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "outer";
    return kName;
  }
  int num_inputs() const override { return 2; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& b = *inputs[1];
    NDArray out({a.size(), b.size()});
    for (int64_t i = 0; i < a.size(); ++i)
      for (int64_t j = 0; j < b.size(); ++j) out[i * b.size() + j] = a[i] * b[j];
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& b = *inputs[1];
    LineageRelation ra(2, 1), rb(2, 1);
    ra.set_shapes(output.shape(), {a.size()});
    rb.set_shapes(output.shape(), {b.size()});
    ra.Reserve(output.size());
    rb.Reserve(output.size());
    for (int64_t i = 0; i < a.size(); ++i)
      for (int64_t j = 0; j < b.size(); ++j) {
        int64_t oi[2] = {i, j};
        ra.Add(oi, Idx1(i));
        rb.Add(oi, Idx1(j));
      }
    std::vector<LineageRelation> rels;
    rels.push_back(std::move(ra));
    rels.push_back(std::move(rb));
    return rels;
  }
};

class KronOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "kron";
    return kName;
  }
  int num_inputs() const override { return 2; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& b = *inputs[1];
    if (a.ndim() != 2 || b.ndim() != 2)
      return Status::InvalidArgument("kron: expects 2-D inputs");
    int64_t m = a.shape()[0], n = a.shape()[1];
    int64_t p = b.shape()[0], q = b.shape()[1];
    NDArray out({m * p, n * q});
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < n; ++j)
        for (int64_t r = 0; r < p; ++r)
          for (int64_t s = 0; s < q; ++s)
            out[(i * p + r) * n * q + (j * q + s)] =
                a[i * n + j] * b[r * q + s];
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& b = *inputs[1];
    int64_t m = a.shape()[0], n = a.shape()[1];
    int64_t p = b.shape()[0], q = b.shape()[1];
    LineageRelation ra(2, 2), rb(2, 2);
    ra.set_shapes(output.shape(), a.shape());
    rb.set_shapes(output.shape(), b.shape());
    ra.Reserve(output.size());
    rb.Reserve(output.size());
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < n; ++j)
        for (int64_t r = 0; r < p; ++r)
          for (int64_t s = 0; s < q; ++s) {
            int64_t oi[2] = {i * p + r, j * q + s};
            int64_t ai[2] = {i, j};
            int64_t bi[2] = {r, s};
            ra.Add(oi, ai);
            rb.Add(oi, bi);
          }
    std::vector<LineageRelation> rels;
    rels.push_back(std::move(ra));
    rels.push_back(std::move(rb));
    return rels;
  }
};

/// cross over the last axis of (n, d) arrays; d = 3 gives the usual cross
/// product with output (n, 3); d = 2 degenerates to a scalar per row with
/// output (n). The lineage pattern *differs* between the two cases, which is
/// exactly what breaks gen_sig reuse prediction in the paper (Table IX's
/// single misprediction).
class CrossOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "cross";
    return kName;
  }
  int num_inputs() const override { return 2; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& b = *inputs[1];
    if (a.ndim() != 2 || !a.SameShape(b))
      return Status::InvalidArgument("cross: expects matching (n,d) inputs");
    int64_t n = a.shape()[0], d = a.shape()[1];
    if (d == 3) {
      NDArray out({n, 3});
      for (int64_t i = 0; i < n; ++i) {
        const double* x = a.data() + i * 3;
        const double* y = b.data() + i * 3;
        out[i * 3 + 0] = x[1] * y[2] - x[2] * y[1];
        out[i * 3 + 1] = x[2] * y[0] - x[0] * y[2];
        out[i * 3 + 2] = x[0] * y[1] - x[1] * y[0];
      }
      return out;
    }
    if (d == 2) {
      NDArray out({n});
      for (int64_t i = 0; i < n; ++i)
        out[i] = a[i * 2] * b[i * 2 + 1] - a[i * 2 + 1] * b[i * 2];
      return out;
    }
    return Status::InvalidArgument("cross: last dimension must be 2 or 3");
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    int64_t n = a.shape()[0], d = a.shape()[1];
    std::vector<LineageRelation> rels;
    if (d == 3) {
      for (int which = 0; which < 2; ++which) {
        LineageRelation rel(2, 2);
        rel.set_shapes(output.shape(), a.shape());
        rel.Reserve(n * 3 * 2);
        for (int64_t i = 0; i < n; ++i)
          for (int64_t k = 0; k < 3; ++k) {
            int64_t oi[2] = {i, k};
            int64_t i1[2] = {i, (k + 1) % 3};
            int64_t i2[2] = {i, (k + 2) % 3};
            rel.Add(oi, i1);
            rel.Add(oi, i2);
          }
        rels.push_back(std::move(rel));
      }
      return rels;
    }
    // d == 2: out(i) <- a(i, 0..1), b(i, 0..1).
    for (int which = 0; which < 2; ++which) {
      LineageRelation rel(1, 2);
      rel.set_shapes(output.shape(), a.shape());
      rel.Reserve(n * 2);
      for (int64_t i = 0; i < n; ++i)
        for (int64_t k = 0; k < 2; ++k) {
          int64_t ii[2] = {i, k};
          rel.Add(Idx1(i), ii);
        }
      rels.push_back(std::move(rel));
    }
    return rels;
  }
};

class TraceOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "trace";
    return kName;
  }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    if (x.ndim() != 2) return Status::InvalidArgument("trace: 2-D input");
    int64_t n = std::min(x.shape()[0], x.shape()[1]);
    NDArray out({1});
    for (int64_t i = 0; i < n; ++i) out[0] += x[i * x.shape()[1] + i];
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    int64_t n = std::min(x.shape()[0], x.shape()[1]);
    LineageRelation rel(1, 2);
    rel.set_shapes(output.shape(), x.shape());
    rel.Reserve(n);
    int64_t zero = 0;
    for (int64_t i = 0; i < n; ++i) {
      int64_t ii[2] = {i, i};
      rel.Add(Idx1(zero), ii);
    }
    return std::vector<LineageRelation>{std::move(rel)};
  }

  bool SupportsUnaryShape(const std::vector<int64_t>& shape) const override {
    return shape.size() == 2;
  }
};

class DiagonalOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "diagonal";
    return kName;
  }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    if (x.ndim() != 2) return Status::InvalidArgument("diagonal: 2-D input");
    int64_t n = std::min(x.shape()[0], x.shape()[1]);
    NDArray out({n});
    for (int64_t i = 0; i < n; ++i) out[i] = x[i * x.shape()[1] + i];
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    int64_t n = output.size();
    LineageRelation rel(1, 2);
    rel.set_shapes(output.shape(), x.shape());
    rel.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      int64_t ii[2] = {i, i};
      rel.Add(Idx1(i), ii);
    }
    return std::vector<LineageRelation>{std::move(rel)};
  }

  bool SupportsUnaryShape(const std::vector<int64_t>& shape) const override {
    return shape.size() == 2;
  }
};

/// diag: 1-D vector -> 2-D matrix with the vector on the diagonal.
class DiagOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "diag";
    return kName;
  }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    if (x.ndim() != 1) return Status::InvalidArgument("diag: 1-D input");
    int64_t n = x.size();
    NDArray out({n, n});
    for (int64_t i = 0; i < n; ++i) out[i * n + i] = x[i];
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    int64_t n = x.size();
    LineageRelation rel(2, 1);
    rel.set_shapes(output.shape(), x.shape());
    rel.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      int64_t oi[2] = {i, i};
      rel.Add(oi, Idx1(i));
    }
    return std::vector<LineageRelation>{std::move(rel)};
  }

  bool SupportsUnaryShape(const std::vector<int64_t>& shape) const override {
    return shape.size() == 1 && shape[0] <= 512;
  }
};

class TriOp : public ArrayOp {
 public:
  explicit TriOp(bool upper) : name_(upper ? "triu" : "tril"), upper_(upper) {}
  const std::string& name() const override { return name_; }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    if (x.ndim() != 2) return Status::InvalidArgument(name_ + ": 2-D input");
    NDArray out(x.shape());
    int64_t cols = x.shape()[1];
    for (int64_t i = 0; i < x.shape()[0]; ++i)
      for (int64_t j = 0; j < cols; ++j) {
        bool keep = upper_ ? (j >= i) : (j <= i);
        out[i * cols + j] = keep ? x[i * cols + j] : 0.0;
      }
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    LineageRelation rel(2, 2);
    rel.set_shapes(output.shape(), x.shape());
    int64_t cols = x.shape()[1];
    for (int64_t i = 0; i < x.shape()[0]; ++i)
      for (int64_t j = 0; j < cols; ++j) {
        bool keep = upper_ ? (j >= i) : (j <= i);
        if (!keep) continue;  // zeroed cells have no contributing input
        int64_t idx[2] = {i, j};
        rel.Add(idx, idx);
      }
    return std::vector<LineageRelation>{std::move(rel)};
  }

  bool SupportsUnaryShape(const std::vector<int64_t>& shape) const override {
    return shape.size() == 2;
  }

 private:
  std::string name_;
  bool upper_;
};

}  // namespace

void RegisterLinalgOps(OpRegistry* r) {
  r->Register(std::make_unique<MatmulOp>());
  r->Register(std::make_unique<DotOp>("dot"));
  r->Register(std::make_unique<DotOp>("inner"));
  r->Register(std::make_unique<DotOp>("vdot"));
  r->Register(std::make_unique<OuterOp>());
  r->Register(std::make_unique<KronOp>());
  r->Register(std::make_unique<CrossOp>());
  r->Register(std::make_unique<TraceOp>());
  r->Register(std::make_unique<DiagonalOp>());
  r->Register(std::make_unique<DiagOp>());
  r->Register(std::make_unique<TriOp>(/*upper=*/true));
  r->Register(std::make_unique<TriOp>(/*upper=*/false));
}

}  // namespace dslog
