// ArrayOp: one numpy-equivalent array operation with value application and
// cell-level lineage capture. The catalogue built on this interface mirrors
// the 136 numpy API operations evaluated in ICDE'24 Table IX.

#ifndef DSLOG_ARRAY_OP_H_
#define DSLOG_ARRAY_OP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "array/ndarray.h"
#include "common/result.h"
#include "lineage/lineage_relation.h"

namespace dslog {

class Rng;

/// Scalar-only operation arguments (axis, shift, clip bounds, ...). The
/// paper restricts the evaluated numpy API to ops taking scalar-only
/// arguments outside of float64 arrays (§VII.E); OpArgs models exactly that.
class OpArgs {
 public:
  OpArgs& SetInt(const std::string& name, int64_t v) {
    ints_[name] = v;
    return *this;
  }
  OpArgs& SetDouble(const std::string& name, double v) {
    doubles_[name] = v;
    return *this;
  }
  OpArgs& SetIntList(const std::string& name, std::vector<int64_t> v) {
    int_lists_[name] = std::move(v);
    return *this;
  }

  int64_t GetIntOr(const std::string& name, int64_t def) const {
    auto it = ints_.find(name);
    return it == ints_.end() ? def : it->second;
  }
  double GetDoubleOr(const std::string& name, double def) const {
    auto it = doubles_.find(name);
    return it == doubles_.end() ? def : it->second;
  }
  const std::vector<int64_t>* GetIntList(const std::string& name) const {
    auto it = int_lists_.find(name);
    return it == int_lists_.end() ? nullptr : &it->second;
  }

  bool empty() const {
    return ints_.empty() && doubles_.empty() && int_lists_.empty();
  }

  /// Stable hash over all arguments (part of the operation signature).
  uint64_t Hash() const;
  std::string ToString() const;

  /// Appends a self-delimiting binary encoding (map sizes + varint-coded
  /// entries, deterministic map order) — the wire form of the network
  /// ingest path. ParseFrom decodes one encoding at `*pos`, advancing it;
  /// false on truncation or malformed bytes (`*this` unspecified then).
  void AppendTo(std::string* dst) const;
  bool ParseFrom(std::string_view src, size_t* pos);

  bool operator==(const OpArgs& other) const {
    return ints_ == other.ints_ && doubles_ == other.doubles_ &&
           int_lists_ == other.int_lists_;
  }

 private:
  std::map<std::string, int64_t> ints_;
  std::map<std::string, double> doubles_;
  std::map<std::string, std::vector<int64_t>> int_lists_;
};

/// Table IX classification.
enum class OpCategory { kElementwise, kComplex };

/// A single array operation: value semantics plus lineage capture.
class ArrayOp {
 public:
  virtual ~ArrayOp() = default;

  virtual const std::string& name() const = 0;
  virtual int num_inputs() const = 0;
  virtual OpCategory category() const = 0;

  /// True when the lineage pattern depends on cell *values* (sort, where,
  /// median, ...). Such ops cannot be covered by dim_sig/gen_sig reuse.
  virtual bool value_dependent() const { return false; }

  /// Computes the output array.
  virtual Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                                const OpArgs& args) const = 0;

  /// Captures cell-level lineage: one LineageRelation per input array (same
  /// order as `inputs`), each relating `output` cells to that input's cells.
  virtual Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs& args) const = 0;

  /// Whether the op accepts a single input of this shape (used by the random
  /// pipeline generator, which chains unary-compatible ops).
  virtual bool SupportsUnaryShape(const std::vector<int64_t>& shape) const {
    return num_inputs() == 1 && !shape.empty();
  }

  /// Randomized-but-valid arguments for a given input shape.
  virtual OpArgs SampleArgs(const std::vector<int64_t>& shape, Rng* rng) const;
};

/// Convenience: capture an identity (cell-to-same-cell) relation between two
/// same-shaped arrays.
LineageRelation IdentityLineage(const NDArray& output, const NDArray& input);

/// Convenience: every output cell depends on every input cell.
LineageRelation AllToAllLineage(const NDArray& output, const NDArray& input);

}  // namespace dslog

#endif  // DSLOG_ARRAY_OP_H_
