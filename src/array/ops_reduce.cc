// Reduction and scan operations (part of the Table IX "complex" set):
// full / per-axis reductions with all-to-one lineage, extremal reductions
// with value-dependent lineage, and prefix/stencil scans.

#include <algorithm>
#include <cmath>
#include <numeric>

#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"

namespace dslog {
namespace {

// Shared iteration helper: enumerate output indices for a reduction over
// `axis` of `shape`, yielding the matching input indices.
struct AxisReduction {
  std::vector<int64_t> in_shape;
  int axis;  // reduced axis
  std::vector<int64_t> out_shape;

  AxisReduction(const std::vector<int64_t>& shape, int ax)
      : in_shape(shape), axis(ax) {
    for (int i = 0; i < static_cast<int>(shape.size()); ++i)
      if (i != axis) out_shape.push_back(shape[static_cast<size_t>(i)]);
    if (out_shape.empty()) out_shape.push_back(1);
  }

  /// Input index for an output index and a position along the reduced axis.
  std::vector<int64_t> InIndex(std::span<const int64_t> out_idx, int64_t k) const {
    std::vector<int64_t> in_idx;
    in_idx.reserve(in_shape.size());
    size_t oi = 0;
    bool degenerate = in_shape.size() == 1;
    for (int i = 0; i < static_cast<int>(in_shape.size()); ++i) {
      if (i == axis) {
        in_idx.push_back(k);
      } else {
        in_idx.push_back(degenerate ? 0 : out_idx[oi++]);
      }
    }
    return in_idx;
  }
};

enum class Reducer {
  kSum,
  kProd,
  kMean,
  kStd,
  kVar,
  kAverage,
  kMin,
  kMax,
  kPtp,
  kMedian,
  kCountNonzero,
  kTrapz,
};

bool ReducerIsValueDependent(Reducer r) {
  switch (r) {
    case Reducer::kMin:
    case Reducer::kMax:
    case Reducer::kPtp:
    case Reducer::kMedian:
      return true;
    default:
      return false;
  }
}

double ReduceValues(Reducer r, const std::vector<double>& v) {
  switch (r) {
    case Reducer::kSum:
      return std::accumulate(v.begin(), v.end(), 0.0);
    case Reducer::kProd: {
      double p = 1.0;
      for (double x : v) p *= x;
      return p;
    }
    case Reducer::kMean:
    case Reducer::kAverage:
      return v.empty() ? 0.0
                       : std::accumulate(v.begin(), v.end(), 0.0) /
                             static_cast<double>(v.size());
    case Reducer::kStd:
    case Reducer::kVar: {
      if (v.empty()) return 0.0;
      double mean = std::accumulate(v.begin(), v.end(), 0.0) /
                    static_cast<double>(v.size());
      double acc = 0.0;
      for (double x : v) acc += (x - mean) * (x - mean);
      double var = acc / static_cast<double>(v.size());
      return r == Reducer::kVar ? var : std::sqrt(var);
    }
    case Reducer::kMin:
      return *std::min_element(v.begin(), v.end());
    case Reducer::kMax:
      return *std::max_element(v.begin(), v.end());
    case Reducer::kPtp:
      return *std::max_element(v.begin(), v.end()) -
             *std::min_element(v.begin(), v.end());
    case Reducer::kMedian: {
      std::vector<double> s = v;
      std::sort(s.begin(), s.end());
      size_t n = s.size();
      return n % 2 == 1 ? s[n / 2] : 0.5 * (s[n / 2 - 1] + s[n / 2]);
    }
    case Reducer::kCountNonzero: {
      int64_t c = 0;
      for (double x : v) c += (x != 0.0);
      return static_cast<double>(c);
    }
    case Reducer::kTrapz: {
      double acc = 0.0;
      for (size_t i = 1; i < v.size(); ++i) acc += 0.5 * (v[i - 1] + v[i]);
      return acc;
    }
  }
  return 0.0;
}

/// Positions (along the reduced slice) that contribute to the result.
/// For value-independent reducers this is every position; for extremal ones
/// only the positions achieving the extremum/median.
std::vector<int64_t> ContributingPositions(Reducer r,
                                           const std::vector<double>& v) {
  std::vector<int64_t> pos;
  int64_t n = static_cast<int64_t>(v.size());
  switch (r) {
    case Reducer::kMin: {
      double m = *std::min_element(v.begin(), v.end());
      for (int64_t i = 0; i < n; ++i)
        if (v[static_cast<size_t>(i)] == m) pos.push_back(i);
      return pos;
    }
    case Reducer::kMax: {
      double m = *std::max_element(v.begin(), v.end());
      for (int64_t i = 0; i < n; ++i)
        if (v[static_cast<size_t>(i)] == m) pos.push_back(i);
      return pos;
    }
    case Reducer::kPtp: {
      double lo = *std::min_element(v.begin(), v.end());
      double hi = *std::max_element(v.begin(), v.end());
      for (int64_t i = 0; i < n; ++i)
        if (v[static_cast<size_t>(i)] == lo || v[static_cast<size_t>(i)] == hi)
          pos.push_back(i);
      return pos;
    }
    case Reducer::kMedian: {
      std::vector<int64_t> order(static_cast<size_t>(n));
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
        return v[static_cast<size_t>(a)] < v[static_cast<size_t>(b)];
      });
      if (n % 2 == 1) {
        pos.push_back(order[static_cast<size_t>(n / 2)]);
      } else {
        pos.push_back(order[static_cast<size_t>(n / 2 - 1)]);
        pos.push_back(order[static_cast<size_t>(n / 2)]);
      }
      std::sort(pos.begin(), pos.end());
      return pos;
    }
    default:
      pos.resize(static_cast<size_t>(n));
      std::iota(pos.begin(), pos.end(), 0);
      return pos;
  }
}

class ReduceOp : public ArrayOp {
 public:
  ReduceOp(std::string name, Reducer reducer)
      : name_(std::move(name)), reducer_(reducer) {}

  const std::string& name() const override { return name_; }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }
  bool value_dependent() const override {
    return ReducerIsValueDependent(reducer_);
  }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs& args) const override {
    if (inputs.size() != 1)
      return Status::InvalidArgument(name_ + ": expects 1 input");
    const NDArray& x = *inputs[0];
    int64_t axis = args.GetIntOr("axis", -1);
    if (axis < 0) {
      // Full reduction -> 1-cell array.
      NDArray out({1});
      out[0] = ReduceValues(reducer_, x.values());
      return out;
    }
    if (axis >= x.ndim())
      return Status::InvalidArgument(name_ + ": axis out of range");
    AxisReduction red(x.shape(), static_cast<int>(axis));
    NDArray out(red.out_shape);
    std::vector<int64_t> out_idx(static_cast<size_t>(out.ndim()));
    int64_t extent = x.shape()[static_cast<size_t>(axis)];
    std::vector<double> slice(static_cast<size_t>(extent));
    for (int64_t of = 0; of < out.size(); ++of) {
      out.UnravelIndex(of, out_idx);
      for (int64_t k = 0; k < extent; ++k)
        slice[static_cast<size_t>(k)] = x.At(red.InIndex(out_idx, k));
      out[of] = ReduceValues(reducer_, slice);
    }
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs& args) const override {
    const NDArray& x = *inputs[0];
    int64_t axis = args.GetIntOr("axis", -1);
    LineageRelation rel(output.ndim(), x.ndim());
    rel.set_shapes(output.shape(), x.shape());
    std::vector<int64_t> out_idx(static_cast<size_t>(output.ndim()));
    if (axis < 0) {
      // Full reduction: single output cell.
      std::vector<double> v = x.values();
      std::vector<int64_t> contributors = ContributingPositions(reducer_, v);
      std::vector<int64_t> in_idx(static_cast<size_t>(x.ndim()));
      out_idx.assign(out_idx.size(), 0);
      rel.Reserve(static_cast<int64_t>(contributors.size()));
      for (int64_t flat : contributors) {
        x.UnravelIndex(flat, in_idx);
        rel.Add(out_idx, in_idx);
      }
      return std::vector<LineageRelation>{std::move(rel)};
    }
    AxisReduction red(x.shape(), static_cast<int>(axis));
    int64_t extent = x.shape()[static_cast<size_t>(axis)];
    std::vector<double> slice(static_cast<size_t>(extent));
    rel.Reserve(output.size() * extent);
    for (int64_t of = 0; of < output.size(); ++of) {
      output.UnravelIndex(of, out_idx);
      for (int64_t k = 0; k < extent; ++k)
        slice[static_cast<size_t>(k)] = x.At(red.InIndex(out_idx, k));
      for (int64_t k : ContributingPositions(reducer_, slice)) {
        std::vector<int64_t> in_idx = red.InIndex(out_idx, k);
        rel.Add(out_idx, in_idx);
      }
    }
    return std::vector<LineageRelation>{std::move(rel)};
  }

  bool SupportsUnaryShape(const std::vector<int64_t>& shape) const override {
    return !shape.empty();
  }

  OpArgs SampleArgs(const std::vector<int64_t>& shape, Rng* rng) const override {
    OpArgs args;
    // Mix full and per-axis reductions.
    if (shape.size() > 1 && rng->Bernoulli(0.6))
      args.SetInt("axis", static_cast<int64_t>(rng->Uniform(shape.size())));
    return args;
  }

 private:
  std::string name_;
  Reducer reducer_;
};

// -------------------------------------------------------------------- scans --

enum class ScanKind { kCumsum, kCumprod };

class ScanOp : public ArrayOp {
 public:
  ScanOp(std::string name, ScanKind kind) : name_(std::move(name)), kind_(kind) {}

  const std::string& name() const override { return name_; }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    // numpy default: operate over the flattened array.
    const NDArray& x = *inputs[0];
    NDArray out({x.size()});
    double acc = kind_ == ScanKind::kCumsum ? 0.0 : 1.0;
    for (int64_t i = 0; i < x.size(); ++i) {
      acc = kind_ == ScanKind::kCumsum ? acc + x[i] : acc * x[i];
      out[i] = acc;
    }
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    LineageRelation rel(1, x.ndim());
    rel.set_shapes(output.shape(), x.shape());
    rel.Reserve(output.size() * (output.size() + 1) / 2);
    std::vector<int64_t> in_idx(static_cast<size_t>(x.ndim()));
    for (int64_t i = 0; i < output.size(); ++i) {
      for (int64_t j = 0; j <= i; ++j) {
        x.UnravelIndex(j, in_idx);
        int64_t oi[1] = {i};
        rel.Add(oi, in_idx);
      }
    }
    return std::vector<LineageRelation>{std::move(rel)};
  }

  bool SupportsUnaryShape(const std::vector<int64_t>& shape) const override {
    // Prefix lineage is quadratic in cells; keep pipelines tractable.
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n <= 2048;
  }

 private:
  std::string name_;
  ScanKind kind_;
};

class DiffOp : public ArrayOp {
 public:
  explicit DiffOp(bool flattened)
      : name_(flattened ? "ediff1d" : "diff"), flattened_(flattened) {}

  const std::string& name() const override { return name_; }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    // diff along the last axis; ediff1d over the flattened array. For 1-D
    // inputs they coincide.
    if (flattened_ || x.ndim() == 1) {
      if (x.size() < 2) return Status::InvalidArgument(name_ + ": too small");
      NDArray out({x.size() - 1});
      for (int64_t i = 0; i + 1 < x.size(); ++i) out[i] = x[i + 1] - x[i];
      return out;
    }
    std::vector<int64_t> shape = x.shape();
    int64_t last = shape.back();
    if (last < 2) return Status::InvalidArgument(name_ + ": last axis too small");
    shape.back() = last - 1;
    NDArray out(shape);
    std::vector<int64_t> idx(static_cast<size_t>(x.ndim()));
    for (int64_t of = 0; of < out.size(); ++of) {
      out.UnravelIndex(of, idx);
      std::vector<int64_t> hi = idx;
      hi.back() += 1;
      out[of] = x.At(hi) - x.At(idx);
    }
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    LineageRelation rel(output.ndim(), x.ndim());
    rel.set_shapes(output.shape(), x.shape());
    rel.Reserve(output.size() * 2);
    std::vector<int64_t> out_idx(static_cast<size_t>(output.ndim()));
    std::vector<int64_t> in_idx(static_cast<size_t>(x.ndim()));
    for (int64_t of = 0; of < output.size(); ++of) {
      output.UnravelIndex(of, out_idx);
      if (flattened_ || x.ndim() == 1) {
        x.UnravelIndex(of, in_idx);
        rel.Add(out_idx, in_idx);
        x.UnravelIndex(of + 1, in_idx);
        rel.Add(out_idx, in_idx);
      } else {
        in_idx.assign(out_idx.begin(), out_idx.end());
        rel.Add(out_idx, in_idx);
        in_idx.back() += 1;
        rel.Add(out_idx, in_idx);
      }
    }
    return std::vector<LineageRelation>{std::move(rel)};
  }

  bool SupportsUnaryShape(const std::vector<int64_t>& shape) const override {
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n >= 2 && shape.back() >= 2;
  }

 private:
  std::string name_;
  bool flattened_;
};

class GradientOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "gradient";
    return kName;
  }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    if (x.ndim() != 1 || x.size() < 2)
      return Status::InvalidArgument("gradient: 1-D input with >= 2 cells");
    NDArray out({x.size()});
    int64_t n = x.size();
    out[0] = x[1] - x[0];
    out[n - 1] = x[n - 1] - x[n - 2];
    for (int64_t i = 1; i + 1 < n; ++i) out[i] = 0.5 * (x[i + 1] - x[i - 1]);
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    LineageRelation rel(1, 1);
    rel.set_shapes(output.shape(), x.shape());
    int64_t n = x.size();
    rel.Reserve(n * 2);
    auto add = [&rel](int64_t o, int64_t i) {
      int64_t oi[1] = {o};
      int64_t ii[1] = {i};
      rel.Add(oi, ii);
    };
    add(0, 0);
    add(0, 1);
    add(n - 1, n - 2);
    add(n - 1, n - 1);
    for (int64_t i = 1; i + 1 < n; ++i) {
      add(i, i - 1);
      add(i, i + 1);
    }
    return std::vector<LineageRelation>{std::move(rel)};
  }

  bool SupportsUnaryShape(const std::vector<int64_t>& shape) const override {
    return shape.size() == 1 && shape[0] >= 3;
  }
};

}  // namespace

void RegisterReduceOps(OpRegistry* r) {
  // 12 reductions.
  r->Register(std::make_unique<ReduceOp>("sum", Reducer::kSum));
  r->Register(std::make_unique<ReduceOp>("prod", Reducer::kProd));
  r->Register(std::make_unique<ReduceOp>("mean", Reducer::kMean));
  r->Register(std::make_unique<ReduceOp>("std", Reducer::kStd));
  r->Register(std::make_unique<ReduceOp>("var", Reducer::kVar));
  r->Register(std::make_unique<ReduceOp>("average", Reducer::kAverage));
  r->Register(std::make_unique<ReduceOp>("amin", Reducer::kMin));
  r->Register(std::make_unique<ReduceOp>("amax", Reducer::kMax));
  r->Register(std::make_unique<ReduceOp>("ptp", Reducer::kPtp));
  r->Register(std::make_unique<ReduceOp>("median", Reducer::kMedian));
  r->Register(std::make_unique<ReduceOp>("count_nonzero", Reducer::kCountNonzero));
  r->Register(std::make_unique<ReduceOp>("trapz", Reducer::kTrapz));
  // 5 scans / stencils.
  r->Register(std::make_unique<ScanOp>("cumsum", ScanKind::kCumsum));
  r->Register(std::make_unique<ScanOp>("cumprod", ScanKind::kCumprod));
  r->Register(std::make_unique<DiffOp>(/*flattened=*/false));
  r->Register(std::make_unique<DiffOp>(/*flattened=*/true));
  r->Register(std::make_unique<GradientOp>());
}

}  // namespace dslog
