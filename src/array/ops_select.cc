// Value-dependent selection ops (sort, argsort, where, unique, searchsorted,
// nonzero), argument-driven gather (take), and 1-D convolution/correlation.
// Completes the 61-op "complex" set of Table IX.

#include <algorithm>
#include <cmath>
#include <numeric>

#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"

namespace dslog {
namespace {

inline std::span<const int64_t> Idx1(const int64_t& v) { return {&v, 1}; }

/// Stable sort permutation of the flattened input.
std::vector<int64_t> SortPermutation(const NDArray& x) {
  std::vector<int64_t> order(static_cast<size_t>(x.size()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&x](int64_t a, int64_t b) { return x[a] < x[b]; });
  return order;
}

class SortOp : public ArrayOp {
 public:
  explicit SortOp(bool arg) : name_(arg ? "argsort" : "sort"), arg_(arg) {}

  const std::string& name() const override { return name_; }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }
  bool value_dependent() const override { return true; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    std::vector<int64_t> order = SortPermutation(x);
    NDArray out({x.size()});
    for (int64_t i = 0; i < x.size(); ++i)
      out[i] = arg_ ? static_cast<double>(order[static_cast<size_t>(i)])
                    : x[order[static_cast<size_t>(i)]];
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    std::vector<int64_t> order = SortPermutation(x);
    LineageRelation rel(1, x.ndim());
    rel.set_shapes(output.shape(), x.shape());
    rel.Reserve(x.size());
    std::vector<int64_t> in_idx(static_cast<size_t>(x.ndim()));
    for (int64_t i = 0; i < x.size(); ++i) {
      x.UnravelIndex(order[static_cast<size_t>(i)], in_idx);
      rel.Add(Idx1(i), in_idx);
    }
    return std::vector<LineageRelation>{std::move(rel)};
  }

 private:
  std::string name_;
  bool arg_;
};

/// take: gather by an index list given in op_args (value-independent; the
/// signature includes the indices).
class TakeOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "take";
    return kName;
  }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs& args) const override {
    const NDArray& x = *inputs[0];
    const std::vector<int64_t>* indices = args.GetIntList("indices");
    if (indices == nullptr)
      return Status::InvalidArgument("take: missing 'indices'");
    NDArray out({static_cast<int64_t>(indices->size())});
    for (size_t i = 0; i < indices->size(); ++i) {
      int64_t j = (*indices)[i];
      if (j < 0 || j >= x.size())
        return Status::OutOfRange("take: index out of range");
      out[static_cast<int64_t>(i)] = x[j];
    }
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs& args) const override {
    const NDArray& x = *inputs[0];
    const std::vector<int64_t>* indices = args.GetIntList("indices");
    if (indices == nullptr)
      return Status::InvalidArgument("take: missing 'indices'");
    LineageRelation rel(1, x.ndim());
    rel.set_shapes(output.shape(), x.shape());
    rel.Reserve(static_cast<int64_t>(indices->size()));
    std::vector<int64_t> in_idx(static_cast<size_t>(x.ndim()));
    for (size_t i = 0; i < indices->size(); ++i) {
      x.UnravelIndex((*indices)[i], in_idx);
      int64_t oi = static_cast<int64_t>(i);
      rel.Add(Idx1(oi), in_idx);
    }
    return std::vector<LineageRelation>{std::move(rel)};
  }

  OpArgs SampleArgs(const std::vector<int64_t>& shape, Rng* rng) const override {
    OpArgs args;
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    int64_t k = std::max<int64_t>(1, n / 2);
    std::vector<int64_t> idx(static_cast<size_t>(k));
    for (auto& v : idx) v = rng->UniformRange(0, n - 1);
    args.SetIntList("indices", std::move(idx));
    return args;
  }
};

/// where(cond, a, b): out(i) = cond(i) ? a(i) : b(i). Lineage is the
/// condition cell plus the selected branch cell (value-dependent).
class WhereOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "where";
    return kName;
  }
  int num_inputs() const override { return 3; }
  OpCategory category() const override { return OpCategory::kComplex; }
  bool value_dependent() const override { return true; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& c = *inputs[0];
    const NDArray& a = *inputs[1];
    const NDArray& b = *inputs[2];
    if (!c.SameShape(a) || !c.SameShape(b))
      return Status::InvalidArgument("where: shape mismatch");
    NDArray out(c.shape());
    for (int64_t i = 0; i < c.size(); ++i) out[i] = c[i] != 0 ? a[i] : b[i];
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& c = *inputs[0];
    const NDArray& a = *inputs[1];
    const NDArray& b = *inputs[2];
    LineageRelation rc(output.ndim(), c.ndim());
    rc.set_shapes(output.shape(), c.shape());
    LineageRelation ra(output.ndim(), a.ndim());
    ra.set_shapes(output.shape(), a.shape());
    LineageRelation rb(output.ndim(), b.ndim());
    rb.set_shapes(output.shape(), b.shape());
    std::vector<int64_t> idx(static_cast<size_t>(c.ndim()));
    for (int64_t i = 0; i < c.size(); ++i) {
      c.UnravelIndex(i, idx);
      rc.Add(idx, idx);
      if (c[i] != 0) {
        ra.Add(idx, idx);
      } else {
        rb.Add(idx, idx);
      }
    }
    std::vector<LineageRelation> rels;
    rels.push_back(std::move(rc));
    rels.push_back(std::move(ra));
    rels.push_back(std::move(rb));
    return rels;
  }
};

class UniqueOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "unique";
    return kName;
  }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }
  bool value_dependent() const override { return true; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    std::vector<double> v = x.values();
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    int64_t n = static_cast<int64_t>(v.size());
    return NDArray::FromValues({n}, std::move(v));
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    LineageRelation rel(1, x.ndim());
    rel.set_shapes(output.shape(), x.shape());
    std::vector<int64_t> in_idx(static_cast<size_t>(x.ndim()));
    for (int64_t j = 0; j < output.size(); ++j) {
      for (int64_t i = 0; i < x.size(); ++i) {
        if (x[i] == output[j]) {
          x.UnravelIndex(i, in_idx);
          rel.Add(Idx1(j), in_idx);
        }
      }
    }
    return std::vector<LineageRelation>{std::move(rel)};
  }

  bool SupportsUnaryShape(const std::vector<int64_t>& shape) const override {
    // Quadratic capture; keep pipeline arrays small.
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n <= 4096;
  }
};

/// searchsorted(a, v): insertion positions of v's cells into sorted a.
/// Lineage: out(i) <- v(i) plus the one or two cells of `a` bracketing the
/// insertion point (those pin the returned position).
class SearchSortedOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "searchsorted";
    return kName;
  }
  int num_inputs() const override { return 2; }
  OpCategory category() const override { return OpCategory::kComplex; }
  bool value_dependent() const override { return true; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& v = *inputs[1];
    if (a.ndim() != 1 || v.ndim() != 1)
      return Status::InvalidArgument("searchsorted: 1-D inputs");
    NDArray out({v.size()});
    for (int64_t i = 0; i < v.size(); ++i) {
      const double* begin = a.data();
      const double* end = a.data() + a.size();
      out[i] = static_cast<double>(std::lower_bound(begin, end, v[i]) - begin);
    }
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& v = *inputs[1];
    LineageRelation ra(1, 1), rv(1, 1);
    ra.set_shapes(output.shape(), a.shape());
    rv.set_shapes(output.shape(), v.shape());
    for (int64_t i = 0; i < v.size(); ++i) {
      int64_t pos = static_cast<int64_t>(output[i]);
      if (pos > 0) {
        int64_t p = pos - 1;
        ra.Add(Idx1(i), Idx1(p));
      }
      if (pos < a.size()) ra.Add(Idx1(i), Idx1(pos));
      rv.Add(Idx1(i), Idx1(i));
    }
    std::vector<LineageRelation> rels;
    rels.push_back(std::move(ra));
    rels.push_back(std::move(rv));
    return rels;
  }
};

class NonzeroOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "nonzero";
    return kName;
  }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }
  bool value_dependent() const override { return true; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    std::vector<double> pos;
    for (int64_t i = 0; i < x.size(); ++i)
      if (x[i] != 0) pos.push_back(static_cast<double>(i));
    if (pos.empty()) pos.push_back(0);  // keep outputs non-empty for chaining
    int64_t n = static_cast<int64_t>(pos.size());
    return NDArray::FromValues({n}, std::move(pos));
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& x = *inputs[0];
    LineageRelation rel(1, x.ndim());
    rel.set_shapes(output.shape(), x.shape());
    std::vector<int64_t> in_idx(static_cast<size_t>(x.ndim()));
    for (int64_t j = 0; j < output.size(); ++j) {
      int64_t flat = static_cast<int64_t>(output[j]);
      if (flat < x.size()) {
        x.UnravelIndex(flat, in_idx);
        rel.Add(Idx1(j), in_idx);
      }
    }
    return std::vector<LineageRelation>{std::move(rel)};
  }
};

/// 1-D convolution ("full" mode) and correlation ("valid" mode).
class Conv1DOp : public ArrayOp {
 public:
  explicit Conv1DOp(bool correlate)
      : name_(correlate ? "correlate" : "convolve"), correlate_(correlate) {}

  const std::string& name() const override { return name_; }
  int num_inputs() const override { return 2; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& v = *inputs[1];
    if (a.ndim() != 1 || v.ndim() != 1 || v.size() == 0 || a.size() < v.size())
      return Status::InvalidArgument(name_ + ": bad shapes");
    int64_t n = a.size(), m = v.size();
    if (correlate_) {
      // 'valid': output size n - m + 1.
      NDArray out({n - m + 1});
      for (int64_t k = 0; k < out.size(); ++k) {
        double acc = 0;
        for (int64_t j = 0; j < m; ++j) acc += a[k + j] * v[j];
        out[k] = acc;
      }
      return out;
    }
    // 'full': output size n + m - 1; out[k] = sum_i a[i] v[k-i].
    NDArray out({n + m - 1});
    for (int64_t k = 0; k < out.size(); ++k) {
      double acc = 0;
      int64_t ilo = std::max<int64_t>(0, k - m + 1);
      int64_t ihi = std::min(n - 1, k);
      for (int64_t i = ilo; i <= ihi; ++i) acc += a[i] * v[k - i];
      out[k] = acc;
    }
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& v = *inputs[1];
    int64_t n = a.size(), m = v.size();
    LineageRelation ra(1, 1), rv(1, 1);
    ra.set_shapes(output.shape(), a.shape());
    rv.set_shapes(output.shape(), v.shape());
    for (int64_t k = 0; k < output.size(); ++k) {
      if (correlate_) {
        for (int64_t j = 0; j < m; ++j) {
          int64_t i = k + j;
          ra.Add(Idx1(k), Idx1(i));
          rv.Add(Idx1(k), Idx1(j));
        }
      } else {
        int64_t ilo = std::max<int64_t>(0, k - m + 1);
        int64_t ihi = std::min(n - 1, k);
        for (int64_t i = ilo; i <= ihi; ++i) {
          int64_t j = k - i;
          ra.Add(Idx1(k), Idx1(i));
          rv.Add(Idx1(k), Idx1(j));
        }
      }
    }
    std::vector<LineageRelation> rels;
    rels.push_back(std::move(ra));
    rels.push_back(std::move(rv));
    return rels;
  }

 private:
  std::string name_;
  bool correlate_;
};

}  // namespace

void RegisterSelectOps(OpRegistry* r) {
  r->Register(std::make_unique<SortOp>(/*arg=*/false));
  r->Register(std::make_unique<SortOp>(/*arg=*/true));
  r->Register(std::make_unique<TakeOp>());
  r->Register(std::make_unique<WhereOp>());
  r->Register(std::make_unique<UniqueOp>());
  r->Register(std::make_unique<SearchSortedOp>());
  r->Register(std::make_unique<NonzeroOp>());
  r->Register(std::make_unique<Conv1DOp>(/*correlate=*/false));
  r->Register(std::make_unique<Conv1DOp>(/*correlate=*/true));
}

}  // namespace dslog
