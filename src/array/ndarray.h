// NDArray: a dense, row-major, n-dimensional array of float64 — the
// substrate standing in for numpy arrays. Arrays are the universal data type
// tracked by DSLog (ICDE'24 §II.A).

#ifndef DSLOG_ARRAY_NDARRAY_H_
#define DSLOG_ARRAY_NDARRAY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace dslog {

class Rng;

/// Dense row-major float64 n-dimensional array.
class NDArray {
 public:
  /// Empty 0-cell array.
  NDArray() = default;

  /// Zero-initialized array of the given shape. All extents must be >= 0.
  explicit NDArray(std::vector<int64_t> shape);

  static NDArray Zeros(std::vector<int64_t> shape) { return NDArray(std::move(shape)); }
  static NDArray Full(std::vector<int64_t> shape, double value);
  /// Takes ownership of flat row-major data; size must match the shape.
  static NDArray FromValues(std::vector<int64_t> shape, std::vector<double> values);
  /// Uniform [0, 1) values.
  static NDArray Random(std::vector<int64_t> shape, Rng* rng);
  /// Uniform integers in [lo, hi] stored as doubles.
  static NDArray RandomInts(std::vector<int64_t> shape, int64_t lo, int64_t hi, Rng* rng);
  /// 0, 1, 2, ... in row-major order.
  static NDArray Arange(int64_t n);

  int ndim() const { return static_cast<int>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  const std::vector<int64_t>& strides() const { return strides_; }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& values() { return data_; }
  const std::vector<double>& values() const { return data_; }

  double operator[](int64_t flat) const { return data_[static_cast<size_t>(flat)]; }
  double& operator[](int64_t flat) { return data_[static_cast<size_t>(flat)]; }

  /// Row-major flat offset of a multidimensional index.
  int64_t FlatIndex(std::span<const int64_t> idx) const;
  /// Inverse of FlatIndex; writes ndim() coordinates into `idx`.
  void UnravelIndex(int64_t flat, std::span<int64_t> idx) const;

  double At(std::span<const int64_t> idx) const { return data_[static_cast<size_t>(FlatIndex(idx))]; }
  double& At(std::span<const int64_t> idx) { return data_[static_cast<size_t>(FlatIndex(idx))]; }

  bool SameShape(const NDArray& other) const { return shape_ == other.shape_; }

  /// Content hash over shape and bit patterns (for base_sig matching).
  uint64_t ContentHash() const;

  std::string ShapeToString() const;

 private:
  std::vector<int64_t> shape_;
  std::vector<int64_t> strides_;
  std::vector<double> data_;

  void ComputeStrides();
};

}  // namespace dslog

#endif  // DSLOG_ARRAY_NDARRAY_H_
