// Global catalogue of array operations (the numpy API surface evaluated in
// Table IX: 75 element-wise + 61 complex operations).

#ifndef DSLOG_ARRAY_OP_REGISTRY_H_
#define DSLOG_ARRAY_OP_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "array/op.h"

namespace dslog {

/// Name -> op catalogue. Thread-compatible (built once, read-only after).
class OpRegistry {
 public:
  /// The process-wide registry with all built-in ops registered.
  static const OpRegistry& Global();

  /// Looks up an op by name; nullptr when absent.
  const ArrayOp* Find(const std::string& name) const;

  /// All registered op names in registration order.
  std::vector<std::string> AllNames() const;

  /// Names filtered by category.
  std::vector<std::string> NamesByCategory(OpCategory category) const;

  /// Ops usable in random unary pipelines (1 input array in, array out).
  std::vector<std::string> UnaryPipelineNames() const;

  int size() const { return static_cast<int>(ops_.size()); }

  /// Registers an op; CHECK-fails on duplicate names.
  void Register(std::unique_ptr<ArrayOp> op);

 private:
  std::vector<std::unique_ptr<ArrayOp>> ops_;
};

/// Registration hooks implemented by the ops_*.cc translation units.
void RegisterElementwiseOps(OpRegistry* registry);
void RegisterReduceOps(OpRegistry* registry);
void RegisterLinalgOps(OpRegistry* registry);
void RegisterShapeOps(OpRegistry* registry);
void RegisterSelectOps(OpRegistry* registry);

}  // namespace dslog

#endif  // DSLOG_ARRAY_OP_REGISTRY_H_
