// Shape-manipulation operations (part of the Table IX "complex" set).
// Most are pure index maps: each output cell copies exactly one input cell,
// so they share the IndexMapOp base below. Multi-input combinators
// (concatenate, stack, ...) are implemented separately.

#include <algorithm>
#include <numeric>

#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"

namespace dslog {
namespace {

int64_t NumCells(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

// ------------------------------------------------------------ IndexMapOp --

/// Base for unary ops where out[idx] = in[Map(idx)] (one source cell per
/// output cell; Map may return no cell for padding zeros).
class IndexMapOp : public ArrayOp {
 public:
  explicit IndexMapOp(std::string name) : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kComplex; }

  /// Output shape for an input shape; error when unsupported.
  virtual Result<std::vector<int64_t>> OutShape(
      const std::vector<int64_t>& in_shape, const OpArgs& args) const = 0;

  /// Maps an output index to its single source input index. Returns false
  /// when the output cell has no source (e.g. padding).
  virtual bool MapToInput(std::span<const int64_t> out_idx,
                          const std::vector<int64_t>& in_shape,
                          const OpArgs& args,
                          std::vector<int64_t>* in_idx) const = 0;

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs& args) const override {
    if (inputs.size() != 1)
      return Status::InvalidArgument(name_ + ": expects 1 input");
    const NDArray& x = *inputs[0];
    DSLOG_ASSIGN_OR_RETURN(std::vector<int64_t> out_shape,
                           OutShape(x.shape(), args));
    NDArray out(out_shape);
    std::vector<int64_t> out_idx(out_shape.size());
    std::vector<int64_t> in_idx;
    for (int64_t of = 0; of < out.size(); ++of) {
      out.UnravelIndex(of, out_idx);
      if (MapToInput(out_idx, x.shape(), args, &in_idx)) out[of] = x.At(in_idx);
    }
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs& args) const override {
    const NDArray& x = *inputs[0];
    LineageRelation rel(output.ndim(), x.ndim());
    rel.set_shapes(output.shape(), x.shape());
    rel.Reserve(output.size());
    std::vector<int64_t> out_idx(static_cast<size_t>(output.ndim()));
    std::vector<int64_t> in_idx;
    for (int64_t of = 0; of < output.size(); ++of) {
      output.UnravelIndex(of, out_idx);
      if (MapToInput(out_idx, x.shape(), args, &in_idx)) rel.Add(out_idx, in_idx);
    }
    return std::vector<LineageRelation>{std::move(rel)};
  }

  bool SupportsUnaryShape(const std::vector<int64_t>& shape) const override {
    OpArgs none;
    return OutShape(shape, none).ok();
  }

 private:
  std::string name_;
};

// ------------------------------------------------------ concrete index maps --

class TransposeOp : public IndexMapOp {
 public:
  explicit TransposeOp(std::string name) : IndexMapOp(std::move(name)) {}
  Result<std::vector<int64_t>> OutShape(const std::vector<int64_t>& s,
                                        const OpArgs&) const override {
    if (s.size() != 2)
      return Status::InvalidArgument(name() + ": expects 2-D input");
    return std::vector<int64_t>{s[1], s[0]};
  }
  bool MapToInput(std::span<const int64_t> o, const std::vector<int64_t>&,
                  const OpArgs&, std::vector<int64_t>* in) const override {
    *in = {o[1], o[0]};
    return true;
  }
};

class ReshapeOp : public IndexMapOp {
 public:
  explicit ReshapeOp(std::string name, bool to_1d)
      : IndexMapOp(std::move(name)), to_1d_(to_1d) {}

  Result<std::vector<int64_t>> OutShape(const std::vector<int64_t>& s,
                                        const OpArgs& args) const override {
    int64_t n = NumCells(s);
    if (to_1d_) return std::vector<int64_t>{n};
    const std::vector<int64_t>* ns = args.GetIntList("newshape");
    if (ns == nullptr) return std::vector<int64_t>{n};  // default: ravel
    if (NumCells(*ns) != n)
      return Status::InvalidArgument(name() + ": cell count mismatch");
    return *ns;
  }

  bool MapToInput(std::span<const int64_t> o, const std::vector<int64_t>& s,
                  const OpArgs& args, std::vector<int64_t>* in) const override {
    // Flat row-major identity.
    std::vector<int64_t> out_shape =
        OutShape(s, args).ValueOrDie();  // validated by Apply/Capture already
    int64_t flat = 0;
    int64_t stride = 1;
    for (int i = static_cast<int>(out_shape.size()) - 1; i >= 0; --i) {
      flat += o[static_cast<size_t>(i)] * stride;
      stride *= out_shape[static_cast<size_t>(i)];
    }
    in->assign(s.size(), 0);
    for (int i = static_cast<int>(s.size()) - 1; i >= 0; --i) {
      (*in)[static_cast<size_t>(i)] = flat % s[static_cast<size_t>(i)];
      flat /= s[static_cast<size_t>(i)];
    }
    return true;
  }

  OpArgs SampleArgs(const std::vector<int64_t>& shape, Rng* rng) const override {
    OpArgs args;
    if (to_1d_) return args;
    int64_t n = NumCells(shape);
    // Find a random divisor-based 2-D factorization.
    std::vector<int64_t> divisors;
    for (int64_t d = 1; d * d <= n; ++d)
      if (n % d == 0) divisors.push_back(d);
    int64_t rows = divisors[rng->Uniform(divisors.size())];
    args.SetIntList("newshape", {rows, n / rows});
    return args;
  }

 private:
  bool to_1d_;
};

class ExpandDimsOp : public IndexMapOp {
 public:
  ExpandDimsOp() : IndexMapOp("expand_dims") {}
  Result<std::vector<int64_t>> OutShape(const std::vector<int64_t>& s,
                                        const OpArgs&) const override {
    std::vector<int64_t> out = {1};
    out.insert(out.end(), s.begin(), s.end());
    return out;
  }
  bool MapToInput(std::span<const int64_t> o, const std::vector<int64_t>&,
                  const OpArgs&, std::vector<int64_t>* in) const override {
    in->assign(o.begin() + 1, o.end());
    return true;
  }
};

class SqueezeOp : public IndexMapOp {
 public:
  SqueezeOp() : IndexMapOp("squeeze") {}
  Result<std::vector<int64_t>> OutShape(const std::vector<int64_t>& s,
                                        const OpArgs&) const override {
    std::vector<int64_t> out;
    for (int64_t d : s)
      if (d != 1) out.push_back(d);
    if (out.empty()) out.push_back(1);
    return out;
  }
  bool MapToInput(std::span<const int64_t> o, const std::vector<int64_t>& s,
                  const OpArgs&, std::vector<int64_t>* in) const override {
    in->clear();
    size_t oi = 0;
    bool all_ones = std::all_of(s.begin(), s.end(),
                                [](int64_t d) { return d == 1; });
    for (int64_t d : s) {
      if (d == 1) {
        in->push_back(0);
      } else {
        in->push_back(o[oi++]);
      }
    }
    (void)all_ones;
    return true;
  }
};

class FlipOp : public IndexMapOp {
 public:
  /// axis = -1 flips every axis (numpy default); 0/1 flips one axis.
  FlipOp(std::string name, int axis) : IndexMapOp(std::move(name)), axis_(axis) {}

  Result<std::vector<int64_t>> OutShape(const std::vector<int64_t>& s,
                                        const OpArgs&) const override {
    if (axis_ >= static_cast<int>(s.size()))
      return Status::InvalidArgument(name() + ": axis out of range");
    return s;
  }
  bool MapToInput(std::span<const int64_t> o, const std::vector<int64_t>& s,
                  const OpArgs&, std::vector<int64_t>* in) const override {
    in->assign(o.begin(), o.end());
    for (size_t i = 0; i < s.size(); ++i) {
      if (axis_ < 0 || static_cast<int>(i) == axis_)
        (*in)[i] = s[i] - 1 - o[i];
    }
    return true;
  }

 private:
  int axis_;
};

class Rot90Op : public IndexMapOp {
 public:
  Rot90Op() : IndexMapOp("rot90") {}
  Result<std::vector<int64_t>> OutShape(const std::vector<int64_t>& s,
                                        const OpArgs&) const override {
    if (s.size() != 2) return Status::InvalidArgument("rot90: 2-D input");
    return std::vector<int64_t>{s[1], s[0]};
  }
  bool MapToInput(std::span<const int64_t> o, const std::vector<int64_t>& s,
                  const OpArgs&, std::vector<int64_t>* in) const override {
    // Counter-clockwise: out[i][j] = in[j][cols-1-i] with out shape (cols, rows).
    *in = {o[1], s[1] - 1 - o[0]};
    return true;
  }
};

class RollOp : public IndexMapOp {
 public:
  RollOp() : IndexMapOp("roll") {}
  Result<std::vector<int64_t>> OutShape(const std::vector<int64_t>& s,
                                        const OpArgs&) const override {
    if (s.size() != 1) return Status::InvalidArgument("roll: 1-D input");
    return s;
  }
  bool MapToInput(std::span<const int64_t> o, const std::vector<int64_t>& s,
                  const OpArgs& args, std::vector<int64_t>* in) const override {
    int64_t n = s[0];
    int64_t shift = args.GetIntOr("shift", 1) % n;
    *in = {(o[0] - shift % n + n) % n};
    return true;
  }
  OpArgs SampleArgs(const std::vector<int64_t>& shape, Rng* rng) const override {
    OpArgs args;
    args.SetInt("shift", rng->UniformRange(1, std::max<int64_t>(1, shape[0] - 1)));
    return args;
  }
};

class TileOp : public IndexMapOp {
 public:
  TileOp() : IndexMapOp("tile") {}
  Result<std::vector<int64_t>> OutShape(const std::vector<int64_t>& s,
                                        const OpArgs& args) const override {
    if (s.size() != 1) return Status::InvalidArgument("tile: 1-D input");
    int64_t reps = args.GetIntOr("reps", 2);
    if (s[0] * reps > (1 << 21))
      return Status::InvalidArgument("tile: output too large");
    return std::vector<int64_t>{s[0] * reps};
  }
  bool MapToInput(std::span<const int64_t> o, const std::vector<int64_t>& s,
                  const OpArgs&, std::vector<int64_t>* in) const override {
    *in = {o[0] % s[0]};
    return true;
  }
  OpArgs SampleArgs(const std::vector<int64_t>&, Rng* rng) const override {
    OpArgs args;
    args.SetInt("reps", rng->UniformRange(2, 4));
    return args;
  }
};

class RepeatOp : public IndexMapOp {
 public:
  RepeatOp() : IndexMapOp("repeat") {}
  Result<std::vector<int64_t>> OutShape(const std::vector<int64_t>& s,
                                        const OpArgs& args) const override {
    int64_t reps = args.GetIntOr("repeats", 2);
    int64_t n = NumCells(s);
    if (n * reps > (1 << 21))
      return Status::InvalidArgument("repeat: output too large");
    return std::vector<int64_t>{n * reps};  // numpy repeat flattens
  }
  bool MapToInput(std::span<const int64_t> o, const std::vector<int64_t>& s,
                  const OpArgs& args, std::vector<int64_t>* in) const override {
    int64_t reps = args.GetIntOr("repeats", 2);
    int64_t flat = o[0] / reps;
    in->assign(s.size(), 0);
    for (int i = static_cast<int>(s.size()) - 1; i >= 0; --i) {
      (*in)[static_cast<size_t>(i)] = flat % s[static_cast<size_t>(i)];
      flat /= s[static_cast<size_t>(i)];
    }
    return true;
  }
  OpArgs SampleArgs(const std::vector<int64_t>&, Rng* rng) const override {
    OpArgs args;
    args.SetInt("repeats", rng->UniformRange(2, 4));
    return args;
  }
};

class PadOp : public IndexMapOp {
 public:
  PadOp() : IndexMapOp("pad") {}
  Result<std::vector<int64_t>> OutShape(const std::vector<int64_t>& s,
                                        const OpArgs& args) const override {
    int64_t w = args.GetIntOr("pad_width", 1);
    std::vector<int64_t> out = s;
    for (auto& d : out) d += 2 * w;
    return out;
  }
  bool MapToInput(std::span<const int64_t> o, const std::vector<int64_t>& s,
                  const OpArgs& args, std::vector<int64_t>* in) const override {
    int64_t w = args.GetIntOr("pad_width", 1);
    in->assign(o.begin(), o.end());
    for (size_t i = 0; i < s.size(); ++i) {
      (*in)[i] -= w;
      if ((*in)[i] < 0 || (*in)[i] >= s[i]) return false;  // constant pad cell
    }
    return true;
  }
  OpArgs SampleArgs(const std::vector<int64_t>&, Rng* rng) const override {
    OpArgs args;
    args.SetInt("pad_width", rng->UniformRange(1, 3));
    return args;
  }
};

class BroadcastToOp : public IndexMapOp {
 public:
  BroadcastToOp() : IndexMapOp("broadcast_to") {}
  Result<std::vector<int64_t>> OutShape(const std::vector<int64_t>& s,
                                        const OpArgs& args) const override {
    if (s.size() != 1)
      return Status::InvalidArgument("broadcast_to: 1-D input");
    int64_t k = args.GetIntOr("rows", 2);
    if (s[0] * k > (1 << 21))
      return Status::InvalidArgument("broadcast_to: output too large");
    return std::vector<int64_t>{k, s[0]};
  }
  bool MapToInput(std::span<const int64_t> o, const std::vector<int64_t>&,
                  const OpArgs&, std::vector<int64_t>* in) const override {
    *in = {o[1]};
    return true;
  }
  OpArgs SampleArgs(const std::vector<int64_t>&, Rng* rng) const override {
    OpArgs args;
    args.SetInt("rows", rng->UniformRange(2, 4));
    return args;
  }
};

class SwapAxesOp : public IndexMapOp {
 public:
  SwapAxesOp(std::string name) : IndexMapOp(std::move(name)) {}
  Result<std::vector<int64_t>> OutShape(const std::vector<int64_t>& s,
                                        const OpArgs&) const override {
    if (s.size() != 2)
      return Status::InvalidArgument(name() + ": expects 2-D input");
    return std::vector<int64_t>{s[1], s[0]};
  }
  bool MapToInput(std::span<const int64_t> o, const std::vector<int64_t>&,
                  const OpArgs&, std::vector<int64_t>* in) const override {
    *in = {o[1], o[0]};
    return true;
  }
};

// --------------------------------------------------- two-input combinators --

/// concatenate/append (axis 0 for same-ndim inputs) and the stack family.
class CombineOp : public ArrayOp {
 public:
  enum class Kind { kConcat, kAppendFlat, kStack, kVstack, kHstack, kColumnStack };

  CombineOp(std::string name, Kind kind) : name_(std::move(name)), kind_(kind) {}

  const std::string& name() const override { return name_; }
  int num_inputs() const override { return 2; }
  OpCategory category() const override { return OpCategory::kComplex; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    if (inputs.size() != 2)
      return Status::InvalidArgument(name_ + ": expects 2 inputs");
    const NDArray& a = *inputs[0];
    const NDArray& b = *inputs[1];
    switch (kind_) {
      case Kind::kAppendFlat: {
        NDArray out({a.size() + b.size()});
        for (int64_t i = 0; i < a.size(); ++i) out[i] = a[i];
        for (int64_t i = 0; i < b.size(); ++i) out[a.size() + i] = b[i];
        return out;
      }
      case Kind::kConcat:
      case Kind::kVstack: {
        if (a.ndim() == 1 && kind_ == Kind::kVstack) {
          if (!a.SameShape(b))
            return Status::InvalidArgument(name_ + ": shape mismatch");
          NDArray out({2, a.size()});
          for (int64_t i = 0; i < a.size(); ++i) out[i] = a[i];
          for (int64_t i = 0; i < b.size(); ++i) out[a.size() + i] = b[i];
          return out;
        }
        if (a.ndim() != b.ndim() || a.ndim() < 1)
          return Status::InvalidArgument(name_ + ": ndim mismatch");
        std::vector<int64_t> shape = a.shape();
        for (int i = 1; i < a.ndim(); ++i)
          if (a.shape()[static_cast<size_t>(i)] != b.shape()[static_cast<size_t>(i)])
            return Status::InvalidArgument(name_ + ": trailing shape mismatch");
        shape[0] += b.shape()[0];
        NDArray out(shape);
        for (int64_t i = 0; i < a.size(); ++i) out[i] = a[i];
        for (int64_t i = 0; i < b.size(); ++i) out[a.size() + i] = b[i];
        return out;
      }
      case Kind::kHstack: {
        if (a.ndim() == 1) {
          NDArray out({a.size() + b.size()});
          for (int64_t i = 0; i < a.size(); ++i) out[i] = a[i];
          for (int64_t i = 0; i < b.size(); ++i) out[a.size() + i] = b[i];
          return out;
        }
        if (a.ndim() != 2 || b.ndim() != 2 || a.shape()[0] != b.shape()[0])
          return Status::InvalidArgument("hstack: row mismatch");
        int64_t rows = a.shape()[0], ca = a.shape()[1], cb = b.shape()[1];
        NDArray out({rows, ca + cb});
        for (int64_t i = 0; i < rows; ++i) {
          for (int64_t j = 0; j < ca; ++j) out[i * (ca + cb) + j] = a[i * ca + j];
          for (int64_t j = 0; j < cb; ++j)
            out[i * (ca + cb) + ca + j] = b[i * cb + j];
        }
        return out;
      }
      case Kind::kStack: {
        if (!a.SameShape(b))
          return Status::InvalidArgument("stack: shape mismatch");
        std::vector<int64_t> shape = {2};
        shape.insert(shape.end(), a.shape().begin(), a.shape().end());
        NDArray out(shape);
        for (int64_t i = 0; i < a.size(); ++i) out[i] = a[i];
        for (int64_t i = 0; i < b.size(); ++i) out[a.size() + i] = b[i];
        return out;
      }
      case Kind::kColumnStack: {
        if (a.ndim() != 1 || !a.SameShape(b))
          return Status::InvalidArgument("column_stack: 1-D equal shapes");
        NDArray out({a.size(), 2});
        for (int64_t i = 0; i < a.size(); ++i) {
          out[i * 2] = a[i];
          out[i * 2 + 1] = b[i];
        }
        return out;
      }
    }
    return Status::Internal("unreachable");
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    const NDArray& a = *inputs[0];
    const NDArray& b = *inputs[1];
    LineageRelation ra(output.ndim(), a.ndim());
    ra.set_shapes(output.shape(), a.shape());
    LineageRelation rb(output.ndim(), b.ndim());
    rb.set_shapes(output.shape(), b.shape());
    std::vector<int64_t> out_idx(static_cast<size_t>(output.ndim()));
    std::vector<int64_t> in_idx_a(static_cast<size_t>(a.ndim()));
    std::vector<int64_t> in_idx_b(static_cast<size_t>(b.ndim()));
    switch (kind_) {
      case Kind::kAppendFlat:
      case Kind::kConcat:
      case Kind::kVstack:
      case Kind::kStack: {
        // Row-major: a occupies the first a.size() flats, b the rest.
        for (int64_t of = 0; of < output.size(); ++of) {
          output.UnravelIndex(of, out_idx);
          if (of < a.size()) {
            a.UnravelIndex(of, in_idx_a);
            ra.Add(out_idx, in_idx_a);
          } else {
            b.UnravelIndex(of - a.size(), in_idx_b);
            rb.Add(out_idx, in_idx_b);
          }
        }
        break;
      }
      case Kind::kHstack: {
        if (a.ndim() == 1) {
          for (int64_t of = 0; of < output.size(); ++of) {
            output.UnravelIndex(of, out_idx);
            if (of < a.size()) {
              in_idx_a[0] = of;
              ra.Add(out_idx, in_idx_a);
            } else {
              in_idx_b[0] = of - a.size();
              rb.Add(out_idx, in_idx_b);
            }
          }
        } else {
          int64_t ca = a.shape()[1];
          for (int64_t of = 0; of < output.size(); ++of) {
            output.UnravelIndex(of, out_idx);
            if (out_idx[1] < ca) {
              in_idx_a = {out_idx[0], out_idx[1]};
              ra.Add(out_idx, in_idx_a);
            } else {
              in_idx_b = {out_idx[0], out_idx[1] - ca};
              rb.Add(out_idx, in_idx_b);
            }
          }
        }
        break;
      }
      case Kind::kColumnStack: {
        for (int64_t i = 0; i < a.size(); ++i) {
          out_idx = {i, 0};
          in_idx_a[0] = i;
          ra.Add(out_idx, in_idx_a);
          out_idx = {i, 1};
          in_idx_b[0] = i;
          rb.Add(out_idx, in_idx_b);
        }
        break;
      }
    }
    std::vector<LineageRelation> rels;
    rels.push_back(std::move(ra));
    rels.push_back(std::move(rb));
    return rels;
  }

 private:
  std::string name_;
  Kind kind_;
};

}  // namespace

void RegisterShapeOps(OpRegistry* r) {
  // 17 unary index maps.
  r->Register(std::make_unique<TransposeOp>("transpose"));
  r->Register(std::make_unique<SwapAxesOp>("swapaxes"));
  r->Register(std::make_unique<SwapAxesOp>("moveaxis"));
  r->Register(std::make_unique<ReshapeOp>("reshape", /*to_1d=*/false));
  r->Register(std::make_unique<ReshapeOp>("ravel", /*to_1d=*/true));
  r->Register(std::make_unique<ReshapeOp>("flatten", /*to_1d=*/true));
  r->Register(std::make_unique<ExpandDimsOp>());
  r->Register(std::make_unique<SqueezeOp>());
  r->Register(std::make_unique<FlipOp>("flip", /*axis=*/-1));
  r->Register(std::make_unique<FlipOp>("flipud", /*axis=*/0));
  r->Register(std::make_unique<FlipOp>("fliplr", /*axis=*/1));
  r->Register(std::make_unique<Rot90Op>());
  r->Register(std::make_unique<RollOp>());
  r->Register(std::make_unique<TileOp>());
  r->Register(std::make_unique<RepeatOp>());
  r->Register(std::make_unique<PadOp>());
  r->Register(std::make_unique<BroadcastToOp>());
  // 6 combinators.
  r->Register(std::make_unique<CombineOp>("concatenate", CombineOp::Kind::kConcat));
  r->Register(std::make_unique<CombineOp>("append", CombineOp::Kind::kAppendFlat));
  r->Register(std::make_unique<CombineOp>("stack", CombineOp::Kind::kStack));
  r->Register(std::make_unique<CombineOp>("vstack", CombineOp::Kind::kVstack));
  r->Register(std::make_unique<CombineOp>("hstack", CombineOp::Kind::kHstack));
  r->Register(std::make_unique<CombineOp>("column_stack", CombineOp::Kind::kColumnStack));
}

}  // namespace dslog
